package ordxml

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ordxml/internal/failpoint"
)

// Crash-torture harness: the parent test generates a deterministic randomized
// update session, computes the expected store state after every operation
// prefix by simulating against a memory-only store, then re-executes the test
// binary as a child process with a crash failpoint armed. The child applies
// the same session against a durable store, appending a synced ack line after
// each completed operation, and dies mid-operation at the armed point (exit
// code 86). The parent reopens the directory and asserts:
//
//   - recovery succeeds and the deep integrity check is clean, and
//   - the recovered state equals the expected state after exactly k or k+1
//     operations, where k is the ack count — the +1 covers a crash landing
//     after the operation's WAL record was fsynced (durably promised) but
//     before the ack.
//
// Process kill cannot simulate page-cache loss, so a missing fsync is not
// literally detectable here; what the harness proves is that recovery from a
// crash at every registered failure point is correct.

// tortureOp is one step of a torture session, with pre-resolved node ids
// (id allocation is deterministic, so the simulation's ids are the child's).
type tortureOp struct {
	Kind   string `json:"kind"` // load, insert, delete, setvalue, rename, move, checkpoint
	Doc    int64  `json:"doc,omitempty"`
	ID     int64  `json:"id,omitempty"`
	Target int64  `json:"target,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Name   string `json:"name,omitempty"`
	XML    string `json:"xml,omitempty"`
	Value  string `json:"value,omitempty"`
}

// applyTortureOp runs one op. Errors are returned but a failed op is still a
// completed op: failures are deterministic, so the simulation and the child
// fail identically and the state stays in lockstep.
func applyTortureOp(s *Store, op tortureOp) (UpdateReport, error) {
	switch op.Kind {
	case "load":
		doc, err := s.LoadString(op.Name, op.XML)
		return UpdateReport{NewID: doc}, err
	case "insert":
		m, err := ParsePosition(op.Mode)
		if err != nil {
			return UpdateReport{}, err
		}
		return s.Insert(op.Doc, op.Target, m, op.XML)
	case "delete":
		return s.Delete(op.Doc, op.ID)
	case "setvalue":
		return UpdateReport{}, s.SetValue(op.Doc, op.ID, op.Value)
	case "rename":
		return UpdateReport{}, s.Rename(op.Doc, op.ID, op.Name)
	case "move":
		m, err := ParsePosition(op.Mode)
		if err != nil {
			return UpdateReport{}, err
		}
		return s.Move(op.Doc, op.ID, op.Target, m)
	case "checkpoint":
		if !s.Durable() {
			return UpdateReport{}, nil // no-op in the parent's simulation
		}
		return UpdateReport{}, s.Checkpoint()
	default:
		return UpdateReport{}, fmt.Errorf("torture: unknown op kind %q", op.Kind)
	}
}

// tortureEnvInt reads a bounded integer knob from the environment.
func tortureEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// generateTortureSession builds the op list and the expected fingerprint
// after every prefix, by simulating against a memory-only store.
func generateTortureSession(t *testing.T, seed int64, nOps int) ([]tortureOp, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sim, err := Open(Options{Encoding: Dewey})
	if err != nil {
		t.Fatal(err)
	}
	modes := []Position{FirstChild, LastChild, Before, After}

	var ops []tortureOp
	var fps []string
	record := func(op tortureOp) UpdateReport {
		rep, _ := applyTortureOp(sim, op) // failures are part of the session
		ops = append(ops, op)
		fps = append(fps, fingerprint(t, sim))
		return rep
	}

	rep := record(tortureOp{Kind: "load", Name: "torture",
		XML: "<R><A>alpha</A><B>beta</B></R>"})
	doc := rep.NewID
	// Tracked element ids: the root and its two children (ids are assigned in
	// document order starting at the root). Deleted or stale ids are pruned
	// lazily — an op against a stale id simply fails on both sides.
	elems := []int64{1, 2, 4}

	pick := func(from []int64) int64 { return from[rng.Intn(len(from))] }
	for i := len(ops); i < nOps; i++ {
		if i == nOps/2 {
			record(tortureOp{Kind: "checkpoint"})
			continue
		}
		switch w := rng.Intn(100); {
		case w < 40:
			op := tortureOp{Kind: "insert", Doc: doc, Target: pick(elems),
				Mode: modes[rng.Intn(len(modes))].String(),
				XML:  fmt.Sprintf("<E%d>t%d</E%d>", i, i, i)}
			if rep := record(op); rep.NewID != 0 {
				elems = append(elems, rep.NewID)
			}
		case w < 55 && len(elems) > 3:
			id := pick(elems[1:])
			record(tortureOp{Kind: "delete", Doc: doc, ID: id})
		case w < 70:
			// The text child of an element is allocated right after it; if
			// this id is not a text node the op fails deterministically.
			record(tortureOp{Kind: "setvalue", Doc: doc, ID: pick(elems) + 1,
				Value: fmt.Sprintf("v%d", i)})
		case w < 80:
			record(tortureOp{Kind: "rename", Doc: doc, ID: pick(elems),
				Name: fmt.Sprintf("N%d", i)})
		case w < 90 && len(elems) > 3:
			op := tortureOp{Kind: "move", Doc: doc, ID: pick(elems[1:]),
				Target: pick(elems), Mode: modes[rng.Intn(len(modes))].String()}
			if rep := record(op); rep.NewID != 0 {
				elems = append(elems, rep.NewID)
			}
		default:
			record(tortureOp{Kind: "checkpoint"})
		}
	}
	return ops, fps
}

// runTortureChild re-executes the test binary running only the child test,
// with the given failpoint spec armed, and returns its exit code. With
// readers > 0 the child also runs that many concurrent snapshot readers
// alongside the update session, so the crash lands while reads are in
// flight.
func runTortureChild(t *testing.T, dir, spec string, recoverOnly bool, readers int, extraEnv ...string) int {
	t.Helper()
	cmd := osexec.Command(os.Args[0], "-test.run=^TestCrashTortureChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"ORDXML_TORTURE_DIR="+dir,
		failpoint.EnvVar+"="+spec)
	cmd.Env = append(cmd.Env, extraEnv...)
	if readers > 0 {
		cmd.Env = append(cmd.Env, "ORDXML_TORTURE_READERS="+strconv.Itoa(readers))
	}
	if recoverOnly {
		cmd.Env = append(cmd.Env, "ORDXML_TORTURE_RECOVER=1")
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*osexec.ExitError); ok {
		if code := ee.ExitCode(); code == failpoint.CrashExitCode {
			return code
		}
		t.Fatalf("child (spec %s) exited %d, want 0 or %d:\n%s",
			spec, ee.ExitCode(), failpoint.CrashExitCode, out)
	}
	t.Fatalf("child (spec %s): %v\n%s", spec, err, out)
	return -1
}

// countAcks returns how many operations the child acknowledged.
func countAcks(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "acks"))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

// verifyRecovered reopens the torture store and checks it against the
// expected prefix states.
func verifyRecovered(t *testing.T, dir, spec string, acked int, fps []string) {
	t.Helper()
	s, err := OpenDurable(filepath.Join(dir, "store"), Options{Encoding: Dewey})
	if err != nil {
		t.Fatalf("spec %s: recovery failed: %v", spec, err)
	}
	defer s.Close()
	mustIntact(t, s)
	got := fingerprint(t, s)
	// fps[i] is the state after ops[0..i]: k acked ops mean fps[k-1], and the
	// in-flight op may have become durable, giving fps[k]. Zero acks mean the
	// empty store (or the in-flight load).
	var want []string
	if acked == 0 {
		want = append(want, "")
	} else {
		want = append(want, fps[acked-1])
	}
	if acked < len(fps) {
		want = append(want, fps[acked])
	}
	for _, w := range want {
		if got == w {
			return
		}
	}
	t.Fatalf("spec %s: recovered state after %d acks matches neither prefix:\n got %q\nwant %q",
		spec, acked, got, want[0])
}

// TestCrashTorture is the parent: one round per crash failpoint. Bound the
// work with ORDXML_TORTURE_OPS (ops per round, default 24) and
// ORDXML_TORTURE_SEED.
func TestCrashTorture(t *testing.T) {
	if os.Getenv("ORDXML_TORTURE_DIR") != "" {
		t.Skip("torture child process")
	}
	seed := int64(tortureEnvInt("ORDXML_TORTURE_SEED", 1))
	nOps := tortureEnvInt("ORDXML_TORTURE_OPS", 24)
	ops, fps := generateTortureSession(t, seed, nOps)
	opsJSON, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}

	specs := []string{
		"wal.append=crash@3",
		"wal.sync.partial-write=crash@2",
		"wal.sync.before-fsync=crash@1",
		"wal.sync.before-fsync=crash@5",
		"wal.sync.after-fsync=crash@5",
		"checkpoint.before-snapshot=crash@1",
		"checkpoint.before-rename=crash@1",
		"checkpoint.after-rename=crash@1",
		"wal.rotate.before=crash@1",
		"wal.rotate.before-rename=crash@1",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "ops.json"), opsJSON, 0o644); err != nil {
				t.Fatal(err)
			}
			runTortureChild(t, dir, spec, false, 0)
			verifyRecovered(t, dir, spec, countAcks(t, dir), fps)
		})
	}

	// Crash during recovery itself: kill one child mid-session, then kill a
	// second child mid-replay, then recover for real. Replay never mutates
	// the store files (beyond idempotent torn-tail truncation), so an
	// interrupted recovery must change nothing.
	t.Run("wal.replay.record", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ops.json"), opsJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if code := runTortureChild(t, dir, "wal.sync.after-fsync=crash@4", false, 0); code == 0 {
			t.Fatal("first child did not crash")
		}
		acked := countAcks(t, dir)
		if code := runTortureChild(t, dir, "wal.replay.record=crash@1", true, 0); code == 0 {
			t.Fatal("recovery child did not crash (no records to replay?)")
		}
		verifyRecovered(t, dir, "wal.replay.record", acked, fps)
	})
}

// TestCrashTortureConcurrentReaders repeats the WAL-failpoint rounds with
// snapshot readers running inside the child while it crashes: lock-free
// reads must neither corrupt the store nor change what recovery promises,
// and the readers themselves must never observe a torn document.
func TestCrashTortureConcurrentReaders(t *testing.T) {
	if os.Getenv("ORDXML_TORTURE_DIR") != "" {
		t.Skip("torture child process")
	}
	seed := int64(tortureEnvInt("ORDXML_TORTURE_SEED", 1))
	nOps := tortureEnvInt("ORDXML_TORTURE_OPS", 24)
	ops, fps := generateTortureSession(t, seed, nOps)
	opsJSON, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"wal.sync.before-fsync=crash@5",
		"wal.sync.after-fsync=crash@5",
		"wal.append=crash@6",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "ops.json"), opsJSON, 0o644); err != nil {
				t.Fatal(err)
			}
			runTortureChild(t, dir, spec, false, 3)
			verifyRecovered(t, dir, spec, countAcks(t, dir), fps)
		})
	}
}

// TestCrashTorturePaged repeats the torture rounds against the buffer-pooled
// durable tier with a pool small enough that the session evicts constantly.
// The crash points cover the paged-specific windows: a dirty-page flush, an
// eviction under memory pressure, and each step of the incremental-checkpoint
// protocol (before the pool flush, between flush and manifest install, and
// after the manifest is installed but before the allocator commits).
func TestCrashTorturePaged(t *testing.T) {
	if os.Getenv("ORDXML_TORTURE_DIR") != "" {
		t.Skip("torture child process")
	}
	seed := int64(tortureEnvInt("ORDXML_TORTURE_SEED", 1))
	nOps := tortureEnvInt("ORDXML_TORTURE_OPS", 24)
	ops, fps := generateTortureSession(t, seed, nOps)
	opsJSON, err := json.Marshal(ops)
	if err != nil {
		t.Fatal(err)
	}

	poolEnv := "ORDXML_TORTURE_POOL=8"
	specs := []string{
		"bufpool.flush=crash@1",
		"bufpool.flush=crash@5",
		"bufpool.evict=crash@1",
		"bufpool.evict=crash@20",
		"checkpoint.paged.before-flush=crash@1",
		"checkpoint.paged.before-meta=crash@1",
		"checkpoint.paged.after-meta=crash@1",
		"wal.sync.after-fsync=crash@5",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "ops.json"), opsJSON, 0o644); err != nil {
				t.Fatal(err)
			}
			runTortureChild(t, dir, spec, false, 0, poolEnv)
			// verifyRecovered reopens without a pool option: pages.db on disk
			// makes recovery pick the paged tier on its own.
			verifyRecovered(t, dir, spec, countAcks(t, dir), fps)
		})
	}

	// Crash mid-replay on a paged store, then recover for real.
	t.Run("wal.replay.record", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ops.json"), opsJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if code := runTortureChild(t, dir, "wal.sync.after-fsync=crash@4", false, 0, poolEnv); code == 0 {
			t.Fatal("first child did not crash")
		}
		acked := countAcks(t, dir)
		if code := runTortureChild(t, dir, "wal.replay.record=crash@1", true, 0, poolEnv); code == 0 {
			t.Fatal("recovery child did not crash (no records to replay?)")
		}
		verifyRecovered(t, dir, "wal.replay.record", acked, fps)
	})
}

// TestCrashTortureChild is the re-executed half of TestCrashTorture; it only
// runs when the harness points it at a session directory.
func TestCrashTortureChild(t *testing.T) {
	dir := os.Getenv("ORDXML_TORTURE_DIR")
	if dir == "" {
		t.Skip("crash-torture child (spawned by TestCrashTorture)")
	}
	opts := Options{Encoding: Dewey}
	// ORDXML_TORTURE_POOL switches the child to the buffer-pooled durable
	// tier with that many frames — small values force evictions mid-session.
	if n, _ := strconv.Atoi(os.Getenv("ORDXML_TORTURE_POOL")); n > 0 {
		opts.BufferPoolFrames = n
	}
	s, err := OpenDurable(filepath.Join(dir, "store"), opts)
	if err != nil {
		t.Fatalf("torture child: open: %v", err)
	}
	defer s.Close()
	if os.Getenv("ORDXML_TORTURE_RECOVER") != "" {
		return // recovery-only round: opening was the whole job
	}
	data, err := os.ReadFile(filepath.Join(dir, "ops.json"))
	if err != nil {
		t.Fatalf("torture child: %v", err)
	}
	var ops []tortureOp
	if err := json.Unmarshal(data, &ops); err != nil {
		t.Fatalf("torture child: %v", err)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "acks"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("torture child: %v", err)
	}
	defer ack.Close()
	if n, _ := strconv.Atoi(os.Getenv("ORDXML_TORTURE_READERS")); n > 0 {
		// Concurrent snapshot readers racing the update session right up to
		// the crash. Serialization of a vanished document fails cleanly; a
		// torn tree would fail inside the publisher with a structure error.
		for r := 0; r < n; r++ {
			go func() {
				for {
					docs, err := s.Documents()
					if err != nil {
						t.Errorf("torture reader: %v", err)
						return
					}
					for _, d := range docs {
						s.SerializeDocument(d.ID)
						s.Query(d.ID, "/R/A")
					}
				}
			}()
		}
	}
	for i, op := range ops {
		applyTortureOp(s, op) // a deterministic failure still completes the op
		if _, err := fmt.Fprintf(ack, "%d\n", i); err != nil {
			t.Fatalf("torture child: ack %d: %v", i, err)
		}
		if err := ack.Sync(); err != nil {
			t.Fatalf("torture child: ack sync %d: %v", i, err)
		}
	}
}
