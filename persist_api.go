package ordxml

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/publish"
	"ordxml/internal/core/shred"
	"ordxml/internal/core/translate"
	"ordxml/internal/core/update"
	"ordxml/internal/sqldb"
	"ordxml/internal/wal"
)

// This file implements snapshot persistence for stores: Save streams the
// entire database (documents, schemas, configuration) and OpenSnapshot
// restores it, including the store's encoding options, which are kept in a
// store_meta relation.

// installMeta records the store's options inside the database so a snapshot
// is self-describing.
func installMeta(db *sqldb.DB, o encoding.Options) error {
	if db.Catalog().Table("store_meta") != nil {
		return nil
	}
	if _, err := db.Exec(`CREATE TABLE store_meta (k TEXT PRIMARY KEY, v TEXT NOT NULL)`); err != nil {
		return err
	}
	rows := [][2]string{
		{"encoding", o.Kind.String()},
		{"gap", strconv.FormatUint(uint64(o.EffectiveGap()), 10)},
		{"dewey_text", strconv.FormatBool(o.DeweyAsText)},
		{"format", "1"},
	}
	for _, kv := range rows {
		if _, err := db.Exec(`INSERT INTO store_meta VALUES (?, ?)`,
			sqldb.S(kv[0]), sqldb.S(kv[1])); err != nil {
			return err
		}
	}
	return nil
}

func readMeta(db *sqldb.DB) (encoding.Options, error) {
	var o encoding.Options
	if db.Catalog().Table("store_meta") == nil {
		return o, fmt.Errorf("snapshot has no store_meta table (not an ordxml store?)")
	}
	res, err := db.Query(`SELECT k, v FROM store_meta`)
	if err != nil {
		return o, err
	}
	vals := map[string]string{}
	for _, r := range res.Rows {
		vals[r[0].Text()] = r[1].Text()
	}
	kind, err := encoding.ParseKind(vals["encoding"])
	if err != nil {
		return o, fmt.Errorf("snapshot meta: %w", err)
	}
	gap, err := strconv.ParseUint(vals["gap"], 10, 32)
	if err != nil {
		return o, fmt.Errorf("snapshot meta gap: %w", err)
	}
	o = encoding.Options{Kind: kind, Gap: uint32(gap), DeweyAsText: vals["dewey_text"] == "true"}
	return o, o.Validate()
}

// newStoreOn builds the component stack over an existing database.
func newStoreOn(db *sqldb.DB, iopts encoding.Options) (*Store, error) {
	s := &Store{db: db, opts: iopts}
	var err error
	if s.shredder, err = shred.New(db, iopts); err != nil {
		return nil, err
	}
	if s.publisher, err = publish.New(db, iopts); err != nil {
		return nil, err
	}
	if s.evaluator, err = translate.New(db, iopts); err != nil {
		return nil, err
	}
	if s.manager, err = update.New(db, iopts); err != nil {
		return nil, err
	}
	db.Registry().RegisterFunc("store.degraded", func() int64 {
		if s.gov.degraded.Load() {
			return 1
		}
		return 0
	})
	return s, nil
}

// Save streams a snapshot of the whole store (documents, indexes,
// configuration) to w. The snapshot is consistent: it takes the engine's
// read lock for its duration.
func (s *Store) Save(w io.Writer) error {
	return s.db.Dump(w)
}

// SaveFile writes a snapshot to path, replacing any existing file. The
// replacement is atomic: the snapshot is written to a temporary file in the
// same directory, synced, and renamed over path, so a crash mid-save leaves
// either the old complete snapshot or the new one — never a partial file.
func (s *Store) SaveFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("save snapshot: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("save snapshot: %w", err)
	}
	if err := s.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("save snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("save snapshot: %w", err)
	}
	return wal.SyncDir(filepath.Dir(path))
}

// OpenSnapshot restores a store from a snapshot produced by Save. The
// encoding options travel with the snapshot. Truncated or corrupt snapshots
// are rejected: the format carries a checksum trailer that Load verifies.
func OpenSnapshot(r io.Reader) (*Store, error) {
	db, err := sqldb.Load(r)
	if err != nil {
		return nil, fmt.Errorf("open snapshot: %w", err)
	}
	iopts, err := readMeta(db)
	if err != nil {
		return nil, err
	}
	if !encoding.Installed(db, iopts) {
		return nil, fmt.Errorf("snapshot lacks the %s node table", iopts.Kind)
	}
	return newStoreOn(db, iopts)
}

// OpenFile restores a store from a snapshot file.
func OpenFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenSnapshot(f)
}
