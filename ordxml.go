// Package ordxml stores and queries ordered XML in an embedded relational
// database, reproducing Tatarinov et al., "Storing and Querying Ordered XML
// Using a Relational Database System" (SIGMOD 2002).
//
// A Store shreds XML documents into relations under one of three order
// encodings — Global, Local or Dewey — translates an ordered XPath fragment
// into SQL over those relations, applies order-preserving updates, and
// reconstructs documents or subtrees. The encodings differ only in how
// document order is represented as data, which drives the paper's
// query/update trade-offs; the API is identical across them.
//
// Quick start:
//
//	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
//	doc, _ := store.LoadString("plays", "<PLAY>...</PLAY>")
//	hits, _ := store.Query(doc, "/PLAY/ACT[2]/SCENE[1]/SPEECH/SPEAKER")
//	speaker, _ := store.Serialize(doc, hits[0].ID)
//	store.Insert(doc, hits[0].ID, ordxml.After, "<LINE>O brave new world</LINE>")
package ordxml

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ordxml/internal/core/check"
	"ordxml/internal/core/encoding"
	"ordxml/internal/core/publish"
	"ordxml/internal/core/shred"
	"ordxml/internal/core/translate"
	"ordxml/internal/core/update"
	"ordxml/internal/obs"
	olog "ordxml/internal/obs/log"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/wal"
	"ordxml/internal/xmltree"
)

// Encoding selects the order encoding.
type Encoding int

// The three order encodings of the paper.
const (
	// Global encodes each node's absolute position in document order.
	// Ordered queries are cheap; inserts may renumber the whole document.
	Global Encoding = iota
	// Local encodes each node's position among its siblings. Inserts only
	// renumber following siblings; materializing document order requires
	// joining ancestors.
	Local
	// Dewey encodes the full path of sibling ordinals. Ancestry and
	// document order are both byte comparisons on the key; inserts renumber
	// following siblings together with their subtrees.
	Dewey
)

// String returns the encoding name.
func (e Encoding) String() string { return encoding.Kind(e).String() }

// ParseEncoding reads an encoding name ("global", "local", "dewey").
func ParseEncoding(s string) (Encoding, error) {
	k, err := encoding.ParseKind(s)
	return Encoding(k), err
}

// Options configure a Store.
type Options struct {
	Encoding Encoding
	// Gap spaces consecutive order values (default 1, dense). Larger gaps
	// let inserts claim unused values and amortize renumbering.
	Gap uint32
	// DeweyAsText stores Dewey keys as padded strings instead of the binary
	// codec (larger, slower; kept for the paper's codec ablation).
	DeweyAsText bool
	// BufferPoolFrames, when positive, makes OpenDurable back the store's
	// heaps and indexes with a fixed-capacity buffer pool over an on-disk
	// page file, so the store can hold datasets larger than RAM and
	// checkpoint incrementally (only dirty pages are written). Zero keeps
	// the default all-in-RAM storage with full-snapshot checkpoints.
	// Ignored by the memory-only Open.
	BufferPoolFrames int
}

// WithBufferPool returns default Options with an n-frame buffer pool, for
// the common ordxml.OpenDurable(dir, ordxml.WithBufferPool(n)) call.
func WithBufferPool(n int) Options { return Options{BufferPoolFrames: n} }

// DocID identifies a stored document.
type DocID = int64

// NodeID identifies a node within a document.
type NodeID = int64

// NodeKind classifies a matched node.
type NodeKind int

// Node kinds.
const (
	ElementNode NodeKind = iota
	AttributeNode
	TextNode
)

// String returns the kind name.
func (k NodeKind) String() string {
	return [...]string{"element", "attribute", "text"}[k]
}

// Node is one XPath query match.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Tag is the element tag or attribute name (empty for text nodes).
	Tag string
	// Value is the attribute value or text content (empty for elements;
	// use Serialize or QueryValues for element content).
	Value string
	// OrderKey is a human-readable rendering of the encoding's order key
	// (e.g. "1.2.3" for Dewey).
	OrderKey string
}

// Position places an inserted fragment relative to the target node.
type Position = update.Mode

// Insert positions.
const (
	FirstChild = update.FirstChild
	LastChild  = update.LastChild
	Before     = update.Before
	After      = update.After
)

// ParsePosition reads a position name as spelled by Position.String
// ("first-child", "last-child", "before", "after").
func ParsePosition(s string) (Position, error) { return update.ParseMode(s) }

// UpdateReport describes the work an update performed.
type UpdateReport struct {
	// NewID is the inserted subtree root's node id (inserts only).
	NewID NodeID
	// RowsInserted, RowsRenumbered and RowsDeleted quantify the update per
	// the paper's cost model: renumbering is the order-maintenance cost.
	RowsInserted   int64
	RowsRenumbered int64
	RowsDeleted    int64
}

// DocInfo describes one stored document.
type DocInfo struct {
	ID    DocID
	Name  string
	Nodes int64
}

// WorkCounters snapshot the engine's logical work counters; subtract two
// snapshots to measure an operation in hardware-independent units.
type WorkCounters struct {
	RowsScanned  int64
	IndexProbes  int64
	RowsInserted int64
	RowsDeleted  int64
	RowsUpdated  int64
}

// Sub returns c - prev field-wise.
func (c WorkCounters) Sub(prev WorkCounters) WorkCounters {
	return WorkCounters{
		RowsScanned:  c.RowsScanned - prev.RowsScanned,
		IndexProbes:  c.IndexProbes - prev.IndexProbes,
		RowsInserted: c.RowsInserted - prev.RowsInserted,
		RowsDeleted:  c.RowsDeleted - prev.RowsDeleted,
		RowsUpdated:  c.RowsUpdated - prev.RowsUpdated,
	}
}

// Store is one ordered-XML store over an embedded relational database.
// A Store is safe for concurrent use: updates serialize on the engine's
// writer lock per statement, while readers (Query, QueryValues, Serialize,
// SQL) run lock-free against immutable storage snapshots the engine
// publishes after every mutation. A multi-statement read — an XPath query's
// segment pipeline, a document serialization, QueryValues' value extraction
// — pins one snapshot for its whole run, so concurrent updates can never
// tear its view of a document.
type Store struct {
	db   *sqldb.DB
	opts encoding.Options

	shredder  *shred.Shredder
	publisher *publish.Publisher
	evaluator *translate.Evaluator
	manager   *update.Manager

	// dur is the durability state for stores opened with OpenDurable; nil
	// for memory-only stores. See durable.go.
	dur *durState

	// gov is the store's governance state: query timeout, admission gate and
	// the degraded read-only flag. See govern.go.
	gov storeGovern
}

// Open creates an empty store with its own embedded database.
func Open(opts Options) (*Store, error) {
	iopts, err := internalOpts(opts)
	if err != nil {
		return nil, err
	}
	return bootstrapStore(sqldb.Open(), iopts)
}

// internalOpts validates the public options and converts them to the
// internal encoding options.
func internalOpts(opts Options) (encoding.Options, error) {
	iopts := encoding.Options{
		Kind:        encoding.Kind(opts.Encoding),
		Gap:         opts.Gap,
		DeweyAsText: opts.DeweyAsText,
	}
	return iopts, iopts.Validate()
}

// bootstrapStore installs the node schema and store metadata on a fresh
// database and builds the component stack over it.
func bootstrapStore(db *sqldb.DB, iopts encoding.Options) (*Store, error) {
	if err := encoding.Install(db, iopts); err != nil {
		return nil, err
	}
	if err := installMeta(db, iopts); err != nil {
		return nil, err
	}
	return newStoreOn(db, iopts)
}

// Encoding returns the store's order encoding.
func (s *Store) Encoding() Encoding { return Encoding(s.opts.Kind) }

// Load parses an XML document from r and stores it. On a durable store the
// raw document bytes are logged (and fsynced) before shredding, so the
// reader is consumed fully up front.
func (s *Store) Load(name string, r io.Reader) (DocID, error) {
	return s.LoadCtx(context.Background(), name, r)
}

// LoadCtx is Load with a caller context: cancellation is observed before the
// operation is logged (a mutation is never aborted mid-apply — once its WAL
// record is durable, it completes), and the load joins the request trace.
func (s *Store) LoadCtx(ctx context.Context, name string, r io.Reader) (DocID, error) {
	ctx, root := s.rootSpan(ctx, "store.load")
	defer root.End()
	if s.dur == nil {
		return s.shredder.Load(name, r)
	}
	xml, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	unlock, err := s.logOp(ctx, recLoad, func(w *wal.BodyWriter) {
		w.String(name)
		w.Bytes(xml)
	})
	if err != nil {
		return 0, err
	}
	defer unlock()
	return s.applyLoad(name, xml)
}

// LoadString stores a document held in a string.
func (s *Store) LoadString(name, xml string) (DocID, error) {
	return s.Load(name, strings.NewReader(xml))
}

// Drop removes a document.
func (s *Store) Drop(doc DocID) error {
	return s.DropCtx(context.Background(), doc)
}

// DropCtx is Drop with a caller context (see LoadCtx for mutation semantics).
func (s *Store) DropCtx(ctx context.Context, doc DocID) error {
	ctx, root := s.rootSpan(ctx, "store.drop")
	defer root.End()
	unlock, err := s.logOp(ctx, recDrop, func(w *wal.BodyWriter) { w.Int(doc) })
	if err != nil {
		return err
	}
	defer unlock()
	return s.shredder.DropDocument(doc)
}

// Documents lists stored documents.
func (s *Store) Documents() ([]DocInfo, error) {
	infos, err := shred.Documents(s.db)
	if err != nil {
		return nil, err
	}
	out := make([]DocInfo, len(infos))
	for i, d := range infos {
		out[i] = DocInfo{ID: d.Doc, Name: d.Name, Nodes: d.Nodes}
	}
	return out, nil
}

// Query evaluates an absolute XPath expression, returning matches in
// document order.
func (s *Store) Query(doc DocID, xpathExpr string) ([]Node, error) {
	return s.QueryCtx(context.Background(), doc, xpathExpr)
}

// QueryCtx is Query with a caller context. When the store's request tracer
// is enabled (see Tracer), the evaluation records a span tree — pipeline
// stages, per-statement planner and operator spans, buffer-pool and WAL
// activity — retrievable as Chrome trace-event JSON via WriteTrace.
func (s *Store) QueryCtx(ctx context.Context, doc DocID, xpathExpr string) ([]Node, error) {
	ctx, end, err := s.beginRead(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	refs, err := s.evaluator.QueryCtx(ctx, doc, xpathExpr)
	if err != nil {
		return nil, err
	}
	out := make([]Node, len(refs))
	for i, r := range refs {
		out[i] = Node{
			ID:       r.ID,
			Kind:     kindOf(r.Kind),
			Tag:      r.Tag,
			Value:    r.Value,
			OrderKey: s.renderOrderKey(r.Order),
		}
	}
	return out, nil
}

// Tracer is the bounded request tracer: enable it, run requests, then dump
// the span buffer as Chrome trace-event JSON.
type Tracer = obs.Tracer

// SpanRecord is one completed span in the trace buffer.
type SpanRecord = obs.SpanRecord

// Tracer returns the store's request tracer. Recording is off by default;
// Tracer().SetEnabled(true) turns it on (one atomic load per request when
// off).
func (s *Store) Tracer() *Tracer { return s.db.Tracer() }

// WriteTrace writes the buffered request spans as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing) and returns the span count.
func (s *Store) WriteTrace(w io.Writer) (int, error) {
	return s.db.Tracer().DumpChrome(w)
}

// rootSpan opens a trace root for a store-level operation when tracing is
// enabled and ctx carries no span; otherwise (ctx, nil).
func (s *Store) rootSpan(ctx context.Context, name string) (context.Context, *obs.ActiveSpan) {
	if obs.FromContext(ctx) != nil {
		return ctx, nil
	}
	return s.db.Tracer().StartRoot(ctx, name)
}

func kindOf(k xmltree.Kind) NodeKind {
	switch k {
	case xmltree.Attr:
		return AttributeNode
	case xmltree.Text:
		return TextNode
	default:
		return ElementNode
	}
}

func (s *Store) renderOrderKey(v sqltypes.Value) string {
	if s.opts.Kind != encoding.Dewey || s.opts.DeweyAsText {
		return v.String()
	}
	p, err := deweyPathString(v.Blob())
	if err != nil {
		return v.String()
	}
	return p
}

// QueryValues evaluates a query and returns the XPath string value of each
// match (text content for elements). The query and the per-element content
// extraction share one pinned snapshot, so the values always belong to the
// same store version as the match set.
func (s *Store) QueryValues(doc DocID, xpathExpr string) ([]string, error) {
	return s.QueryValuesCtx(context.Background(), doc, xpathExpr)
}

// QueryValuesCtx is QueryValues with a caller context: the query and the
// per-element content extraction both run governed, sharing the request's
// deadline and memory budget.
func (s *Store) QueryValuesCtx(ctx context.Context, doc DocID, xpathExpr string) ([]string, error) {
	ctx, end, err := s.beginRead(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	snap := s.db.Snapshot()
	refs, err := s.evaluator.QueryAtCtx(ctx, snap, doc, xpathExpr)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(refs))
	for i, r := range refs {
		if kindOf(r.Kind) == ElementNode {
			sub, err := s.publisher.SubtreeCtx(ctx, snap, doc, r.ID)
			if err != nil {
				return nil, err
			}
			out[i] = sub.TextContent()
		} else {
			out[i] = r.Value
		}
	}
	return out, nil
}

// ExplainQuery returns the SQL statements the store generates for a query
// (one per path segment), without executing the post-processing steps.
func (s *Store) ExplainQuery(doc DocID, xpathExpr string) ([]string, error) {
	if _, err := s.evaluator.Query(doc, xpathExpr); err != nil {
		return nil, err
	}
	return append([]string(nil), s.evaluator.LastSQL()...), nil
}

// Serialize reconstructs the subtree rooted at id as XML.
func (s *Store) Serialize(doc DocID, id NodeID) (string, error) {
	return s.SerializeCtx(context.Background(), doc, id)
}

// SerializeCtx is Serialize with a caller context: reconstruction observes
// the request deadline and memory budget and joins the request trace.
func (s *Store) SerializeCtx(ctx context.Context, doc DocID, id NodeID) (string, error) {
	ctx, end, err := s.beginRead(ctx)
	if err != nil {
		return "", err
	}
	defer end()
	n, err := s.publisher.SubtreeCtx(ctx, nil, doc, id)
	if err != nil {
		return "", err
	}
	return n.String(), nil
}

// SerializeDocument reconstructs the whole document.
func (s *Store) SerializeDocument(doc DocID) (string, error) {
	return s.SerializeDocumentCtx(context.Background(), doc)
}

// SerializeDocumentCtx is SerializeDocument with a caller context (see
// SerializeCtx).
func (s *Store) SerializeDocumentCtx(ctx context.Context, doc DocID) (string, error) {
	ctx, end, err := s.beginRead(ctx)
	if err != nil {
		return "", err
	}
	defer end()
	n, err := s.publisher.DocumentCtx(ctx, nil, doc)
	if err != nil {
		return "", err
	}
	return n.String(), nil
}

// Insert places an XML fragment relative to the target node.
func (s *Store) Insert(doc DocID, target NodeID, pos Position, fragment string) (UpdateReport, error) {
	return s.InsertCtx(context.Background(), doc, target, pos, fragment)
}

// InsertCtx is Insert with a caller context (see LoadCtx for mutation
// semantics).
func (s *Store) InsertCtx(ctx context.Context, doc DocID, target NodeID, pos Position, fragment string) (UpdateReport, error) {
	ctx, root := s.rootSpan(ctx, "store.insert")
	defer root.End()
	unlock, err := s.logOp(ctx, recInsert, func(w *wal.BodyWriter) {
		w.Int(doc)
		w.Int(target)
		w.String(pos.String())
		w.String(fragment)
	})
	if err != nil {
		return UpdateReport{}, err
	}
	defer unlock()
	st, err := s.manager.InsertXML(doc, target, pos, fragment)
	return report(st), err
}

// Delete removes the subtree rooted at id.
func (s *Store) Delete(doc DocID, id NodeID) (UpdateReport, error) {
	return s.DeleteCtx(context.Background(), doc, id)
}

// DeleteCtx is Delete with a caller context (see LoadCtx for mutation
// semantics).
func (s *Store) DeleteCtx(ctx context.Context, doc DocID, id NodeID) (UpdateReport, error) {
	ctx, root := s.rootSpan(ctx, "store.delete")
	defer root.End()
	unlock, err := s.logOp(ctx, recDelete, func(w *wal.BodyWriter) {
		w.Int(doc)
		w.Int(id)
	})
	if err != nil {
		return UpdateReport{}, err
	}
	defer unlock()
	st, err := s.manager.Delete(doc, id)
	return report(st), err
}

func report(st update.Stats) UpdateReport {
	return UpdateReport{
		NewID:          st.NewID,
		RowsInserted:   st.RowsInserted,
		RowsRenumbered: st.RowsRenumbered,
		RowsDeleted:    st.RowsDeleted,
	}
}

// SetParallelism sets the number of workers the SQL planner may use for
// parallel operators (exchange/Gather, partitioned hash join); 1 (the
// default) plans serially. It only affects raw-SQL queries big enough to
// clear the planner's row threshold — the XPath pipeline's generated
// statements are indexed point and range lookups that stay serial.
func (s *Store) SetParallelism(n int) { s.db.SetParallelism(n) }

// Parallelism returns the current planner worker count.
func (s *Store) Parallelism() int { return s.db.Parallelism() }

// Counters returns the engine's cumulative work counters.
func (s *Store) Counters() WorkCounters {
	c := s.db.Counters()
	return WorkCounters{
		RowsScanned:  c.RowsScanned,
		IndexProbes:  c.IndexProbes,
		RowsInserted: c.RowsInserted,
		RowsDeleted:  c.RowsDeleted,
		RowsUpdated:  c.RowsUpdated,
	}
}

// PlanCacheStats re-exports the engine's plan cache counters: hits are
// statements that ran without parsing or planning, misses cover absent
// entries and entries invalidated by schema changes.
type PlanCacheStats = sqldb.PlanCacheStats

// PlanCache returns the engine's plan cache counters for this store's
// database. It is a shim over Metrics(): the same values appear there as the
// sqldb.plancache.* counters and gauge.
func (s *Store) PlanCache() PlanCacheStats { return s.db.PlanCacheStats() }

// Metrics is a point-in-time snapshot of every engine metric: counters,
// gauges and latency histograms (with p50/p95/p99). It marshals to JSON.
type Metrics = obs.Snapshot

// HistogramStats summarizes one latency histogram inside a Metrics snapshot.
type HistogramStats = obs.HistogramSnapshot

// StageTiming is one XPath pipeline stage's cumulative wall time within a
// single query: parse, translate, exec, post or sort. Count is the number of
// times the stage ran (e.g. one exec per generated statement execution).
type StageTiming = obs.Stage

// SlowQuery is one slow-query log entry. Rows is -1 for non-SELECT
// statements.
type SlowQuery = sqldb.SlowQuery

// Metrics returns a snapshot of the store's engine metrics: statement counts
// and latency histograms (sqldb.*), XPath pipeline stage histograms
// (xpath.*), plan-cache counters (sqldb.plancache.*) and storage-layer
// heap-page/btree-node read counters (storage.*).
func (s *Store) Metrics() Metrics { return s.db.Metrics() }

// QueryTrace evaluates a query like Query and additionally returns the
// per-stage wall-time breakdown of this evaluation.
func (s *Store) QueryTrace(doc DocID, xpathExpr string) ([]Node, []StageTiming, error) {
	refs, stages, err := s.evaluator.QueryTraced(doc, xpathExpr)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Node, len(refs))
	for i, r := range refs {
		out[i] = Node{
			ID:       r.ID,
			Kind:     kindOf(r.Kind),
			Tag:      r.Tag,
			Value:    r.Value,
			OrderKey: s.renderOrderKey(r.Order),
		}
	}
	return out, stages, nil
}

// ExplainSQL returns the physical plan of a SQL statement as text.
func (s *Store) ExplainSQL(query string) (string, error) {
	return s.db.Explain(query)
}

// ExplainAnalyzeSQL executes a SELECT with per-operator instrumentation and
// returns the plan tree annotated with actual row counts, loop counts and
// wall time per operator. Equivalent to running `EXPLAIN ANALYZE <query>`
// through SQL.
func (s *Store) ExplainAnalyzeSQL(query string, args ...any) (string, error) {
	params, err := toValues(args)
	if err != nil {
		return "", err
	}
	return s.db.ExplainAnalyze(query, params...)
}

// SlowQueries returns the engine's slow-query log, oldest first.
func (s *Store) SlowQueries() []SlowQuery { return s.db.SlowQueries() }

// SetSlowQueryThreshold sets the slow-query log threshold; 0 disables the
// log.
func (s *Store) SetSlowQueryThreshold(d time.Duration) { s.db.SetSlowQueryThreshold(d) }

// StorageStats reports the node table's size.
type StorageStats struct {
	Rows      int
	HeapPages int
	HeapBytes int
}

// Storage returns size statistics for the store's node table, as of the last
// published snapshot (safe against concurrent writers).
func (s *Store) Storage() StorageStats {
	hs, ok := s.db.TableStats(s.opts.NodesTable())
	if !ok {
		return StorageStats{}
	}
	return StorageStats{Rows: hs.Rows, HeapPages: hs.Pages, HeapBytes: hs.LiveBytes}
}

// Rows is a generic SQL result for the escape-hatch SQL method.
type Rows struct {
	Columns []string
	Values  [][]string
}

// SQL runs a raw SELECT against the underlying engine — the escape hatch
// for inspecting the shredded relations. Arguments bind to `?` placeholders
// and may be int, int64, float64, string, []byte, bool or nil.
func (s *Store) SQL(query string, args ...any) (*Rows, error) {
	return s.SQLCtx(context.Background(), query, args...)
}

// SQLCtx is SQL with a caller context: the statement runs governed
// (cancellation, deadline, memory budget, admission control).
func (s *Store) SQLCtx(ctx context.Context, query string, args ...any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	ctx, end, err := s.beginRead(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	res, err := s.db.QueryCtx(ctx, query, params...)
	if err != nil {
		return nil, err
	}
	out := &Rows{Columns: res.Columns}
	for _, r := range res.Rows {
		row := make([]string, len(r))
		for i, v := range r {
			row[i] = v.String()
		}
		out.Values = append(out.Values, row)
	}
	return out, nil
}

// Exec runs a raw non-SELECT SQL statement against the underlying engine —
// the mutating counterpart of SQL. On a durable store the statement and its
// bound parameters are write-ahead logged, so raw DML survives crash
// recovery like every API-level mutation. It returns the affected row count.
func (s *Store) Exec(query string, args ...any) (int, error) {
	return s.ExecCtx(context.Background(), query, args...)
}

// ExecCtx is Exec with a caller context. When the store's request tracer is
// enabled the statement records a span tree covering the WAL append+fsync
// and the engine-side execution.
func (s *Store) ExecCtx(ctx context.Context, query string, args ...any) (int, error) {
	params, err := toValues(args)
	if err != nil {
		return 0, err
	}
	ctx, root := s.rootSpan(ctx, "store.exec")
	defer root.End()
	unlock, err := s.logOp(ctx, recExec, func(w *wal.BodyWriter) {
		w.String(query)
		w.Bytes(sqltypes.EncodeRow(nil, params))
	})
	if err != nil {
		return 0, err
	}
	defer unlock()
	return s.db.ExecCtx(ctx, query, params...)
}

// toValues binds Go arguments to SQL parameter values.
func toValues(args []any) (sqltypes.Row, error) {
	params := make(sqltypes.Row, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		params[i] = v
	}
	return params, nil
}

func toValue(a any) (sqltypes.Value, error) {
	switch v := a.(type) {
	case nil:
		return sqltypes.NullValue(), nil
	case int:
		return sqltypes.NewInt(int64(v)), nil
	case int64:
		return sqltypes.NewInt(v), nil
	case float64:
		return sqltypes.NewReal(v), nil
	case string:
		return sqltypes.NewText(v), nil
	case []byte:
		return sqltypes.NewBlob(v), nil
	case bool:
		return sqltypes.NewBool(v), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("unsupported type %T", a)
	}
}

// SetValue rewrites a text or attribute node's value in place (no order
// keys change, so no renumbering under any encoding).
func (s *Store) SetValue(doc DocID, id NodeID, value string) error {
	return s.SetValueCtx(context.Background(), doc, id, value)
}

// SetValueCtx is SetValue with a caller context (see LoadCtx for mutation
// semantics).
func (s *Store) SetValueCtx(ctx context.Context, doc DocID, id NodeID, value string) error {
	ctx, root := s.rootSpan(ctx, "store.set_value")
	defer root.End()
	unlock, err := s.logOp(ctx, recSetValue, func(w *wal.BodyWriter) {
		w.Int(doc)
		w.Int(id)
		w.String(value)
	})
	if err != nil {
		return err
	}
	defer unlock()
	return s.manager.SetValue(doc, id, value)
}

// Rename changes an element tag or attribute name in place.
func (s *Store) Rename(doc DocID, id NodeID, name string) error {
	return s.RenameCtx(context.Background(), doc, id, name)
}

// RenameCtx is Rename with a caller context (see LoadCtx for mutation
// semantics).
func (s *Store) RenameCtx(ctx context.Context, doc DocID, id NodeID, name string) error {
	ctx, root := s.rootSpan(ctx, "store.rename")
	defer root.End()
	unlock, err := s.logOp(ctx, recRename, func(w *wal.BodyWriter) {
		w.Int(doc)
		w.Int(id)
		w.String(name)
	})
	if err != nil {
		return err
	}
	defer unlock()
	return s.manager.Rename(doc, id, name)
}

// Move relocates the subtree rooted at id to a new position relative to
// target, preserving its content. It composes Serialize + Delete + Insert
// atomically with respect to other statements; the report aggregates the
// delete and insert costs. The returned NewID identifies the relocated
// subtree root (node ids are not preserved across a move).
func (s *Store) Move(doc DocID, id, target NodeID, pos Position) (UpdateReport, error) {
	return s.MoveCtx(context.Background(), doc, id, target, pos)
}

// MoveCtx is Move with a caller context (see LoadCtx for mutation semantics).
func (s *Store) MoveCtx(ctx context.Context, doc DocID, id, target NodeID, pos Position) (UpdateReport, error) {
	ctx, root := s.rootSpan(ctx, "store.move")
	defer root.End()
	unlock, err := s.logOp(ctx, recMove, func(w *wal.BodyWriter) {
		w.Int(doc)
		w.Int(id)
		w.Int(target)
		w.String(pos.String())
	})
	if err != nil {
		return UpdateReport{}, err
	}
	defer unlock()
	return s.moveTree(doc, id, target, pos)
}

// moveTree is Move's engine-side body, shared with WAL replay.
func (s *Store) moveTree(doc DocID, id, target NodeID, pos Position) (UpdateReport, error) {
	if id == target {
		return UpdateReport{}, fmt.Errorf("cannot move a node relative to itself")
	}
	sub, err := s.publisher.Subtree(doc, id)
	if err != nil {
		return UpdateReport{}, err
	}
	// Reject moves into the subtree being moved (the target would be
	// deleted out from under the insert): walk up from the target and fail
	// if the moved node appears on the ancestor chain.
	cur := target
	for cur != 0 {
		if cur == id {
			return UpdateReport{}, fmt.Errorf("cannot move node %d into its own subtree", id)
		}
		parent, err := s.manager.Node(doc, cur)
		if err != nil {
			return UpdateReport{}, err
		}
		cur = parent
	}
	delRep, err := s.manager.Delete(doc, id)
	if err != nil {
		return UpdateReport{}, err
	}
	insRep, err := s.manager.InsertTree(doc, target, pos, sub)
	if err != nil {
		return UpdateReport{}, fmt.Errorf("move lost the subtree after delete (reinsert failed): %w", err)
	}
	return UpdateReport{
		NewID:          insRep.NewID,
		RowsInserted:   insRep.RowsInserted,
		RowsRenumbered: delRep.RowsRenumbered + insRep.RowsRenumbered,
		RowsDeleted:    delRep.RowsDeleted,
	}, nil
}

// Check verifies the document's structural invariants — parent links, node
// shapes, registry counts, and the encoding's order-key contract (unique
// global orders, per-parent sibling orders, or parent-prefix Dewey paths).
// It returns the list of violations; an empty list means the stored form is
// consistent.
func (s *Store) Check(doc DocID) ([]string, error) {
	c, err := check.New(s.db, s.opts)
	if err != nil {
		return nil, err
	}
	return c.Document(doc)
}

// CheckIntegrity is the deep, store-wide integrity check. It validates the
// physical storage invariants of every table — heap page structure, B+tree
// key order, fill and balance, leaf chaining, and index/heap agreement —
// then runs Check's logical document invariants for every stored document,
// and sweeps for orphan node rows missing from the document registry. It
// returns the list of violations; an empty list means the store is fully
// consistent. Expect a full read of every table and index: this is a
// diagnostic for tests, the shell's \check command, and post-crash triage,
// not a hot path.
// Integrity-status gauge values published as integrity.last_status
// (integrity.last_run_unix records when the check ran).
const (
	integrityNever      = 0 // no check has run since open
	integrityOK         = 1
	integrityViolations = 2
	integrityError      = 3 // the check itself failed
)

func (s *Store) CheckIntegrity() ([]string, error) {
	reg := s.db.Registry()
	problems, err := check.Verify(s.db, s.opts)
	reg.Gauge("integrity.last_run_unix").Set(time.Now().Unix())
	status := reg.Gauge("integrity.last_status")
	switch {
	case err != nil:
		status.Set(integrityError)
		reg.Log().Error("integrity check failed", olog.Err(err))
	case len(problems) > 0:
		status.Set(integrityViolations)
		reg.Log().Warn("integrity check found violations",
			olog.Int("violations", int64(len(problems))),
			olog.Str("first", problems[0]))
	default:
		status.Set(integrityOK)
	}
	return problems, err
}
