package ordxml

import (
	"strings"
	"testing"
)

const testDoc = `<PLAY><TITLE>Hamlet</TITLE>
<ACT><TITLE>ACT 1</TITLE>
  <SCENE><TITLE>SCENE 1</TITLE>
    <SPEECH><SPEAKER>BERNARDO</SPEAKER><LINE>Who is there?</LINE></SPEECH>
    <SPEECH><SPEAKER>FRANCISCO</SPEAKER><LINE>Nay, answer me</LINE></SPEECH>
  </SCENE>
</ACT>
<ACT><TITLE>ACT 2</TITLE>
  <SCENE><TITLE>SCENE 1</TITLE>
    <SPEECH><SPEAKER>HAMLET</SPEAKER><LINE>To be</LINE><LINE>or not to be</LINE></SPEECH>
  </SCENE>
</ACT>
</PLAY>`

func openAll(t *testing.T) []*Store {
	t.Helper()
	var stores []*Store
	for _, enc := range []Encoding{Global, Local, Dewey} {
		s, err := Open(Options{Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, s)
	}
	return stores
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{Encoding: Encoding(9)}); err == nil {
		t.Error("bad encoding accepted")
	}
	if _, err := Open(Options{Encoding: Global, DeweyAsText: true}); err == nil {
		t.Error("DeweyAsText with Global accepted")
	}
}

func TestLoadQuerySerialize(t *testing.T) {
	for _, s := range openAll(t) {
		doc, err := s.LoadString("hamlet", testDoc)
		if err != nil {
			t.Fatal(err)
		}
		speakers, err := s.QueryValues(doc, "/PLAY/ACT/SCENE/SPEECH/SPEAKER")
		if err != nil {
			t.Fatal(err)
		}
		want := "BERNARDO,FRANCISCO,HAMLET"
		if got := strings.Join(speakers, ","); got != want {
			t.Errorf("%s: speakers = %s, want %s", s.Encoding(), got, want)
		}
		// Positional query.
		lines, err := s.QueryValues(doc, "/PLAY/ACT[2]/SCENE[1]/SPEECH/LINE[2]")
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != 1 || lines[0] != "or not to be" {
			t.Errorf("%s: lines = %v", s.Encoding(), lines)
		}
		// Serialize a subtree.
		hits, err := s.Query(doc, "//SPEECH[SPEAKER = 'HAMLET']")
		if err != nil || len(hits) != 1 {
			t.Fatalf("%s: hamlet speech: %v, %v", s.Encoding(), hits, err)
		}
		xml, err := s.Serialize(doc, hits[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(xml, "<LINE>To be</LINE><LINE>or not to be</LINE>") {
			t.Errorf("%s: serialized speech = %s", s.Encoding(), xml)
		}
		// Whole document round trip.
		full, err := s.SerializeDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(full, "<TITLE>Hamlet</TITLE>") {
			t.Errorf("%s: document = %.80s", s.Encoding(), full)
		}
	}
}

func TestNodeMetadata(t *testing.T) {
	s, _ := Open(Options{Encoding: Dewey})
	doc, _ := s.LoadString("d", `<a x="1"><b>hi</b></a>`)
	nodes, err := s.Query(doc, "/a/@x")
	if err != nil || len(nodes) != 1 {
		t.Fatalf("attr query: %v, %v", nodes, err)
	}
	n := nodes[0]
	if n.Kind != AttributeNode || n.Tag != "x" || n.Value != "1" {
		t.Errorf("attr node = %+v", n)
	}
	if n.OrderKey != "1.1" {
		t.Errorf("attr OrderKey = %s", n.OrderKey)
	}
	texts, _ := s.Query(doc, "/a/b/text()")
	if len(texts) != 1 || texts[0].Kind != TextNode || texts[0].Value != "hi" {
		t.Errorf("text node = %+v", texts)
	}
	if texts[0].Kind.String() != "text" {
		t.Errorf("kind string = %s", texts[0].Kind)
	}
}

func TestUpdatesThroughAPI(t *testing.T) {
	for _, s := range openAll(t) {
		doc, _ := s.LoadString("d", `<list><item>a</item><item>c</item></list>`)
		items, _ := s.Query(doc, "/list/item")
		rep, err := s.Insert(doc, items[1].ID, Before, "<item>b</item>")
		if err != nil {
			t.Fatalf("%s: %v", s.Encoding(), err)
		}
		if rep.RowsInserted != 2 {
			t.Errorf("%s: RowsInserted = %d", s.Encoding(), rep.RowsInserted)
		}
		vals, _ := s.QueryValues(doc, "/list/item")
		if strings.Join(vals, ",") != "a,b,c" {
			t.Errorf("%s: after insert: %v", s.Encoding(), vals)
		}
		// Delete the first item.
		items, _ = s.Query(doc, "/list/item")
		if _, err := s.Delete(doc, items[0].ID); err != nil {
			t.Fatal(err)
		}
		vals, _ = s.QueryValues(doc, "/list/item")
		if strings.Join(vals, ",") != "b,c" {
			t.Errorf("%s: after delete: %v", s.Encoding(), vals)
		}
	}
}

func TestDocumentsAndDrop(t *testing.T) {
	s, _ := Open(Options{Encoding: Local})
	d1, _ := s.LoadString("one", "<a/>")
	d2, _ := s.LoadString("two", "<b><c/></b>")
	docs, err := s.Documents()
	if err != nil || len(docs) != 2 {
		t.Fatalf("Documents = %v, %v", docs, err)
	}
	if docs[0].Name != "one" || docs[1].Nodes != 2 {
		t.Errorf("docs = %+v", docs)
	}
	if err := s.Drop(d1); err != nil {
		t.Fatal(err)
	}
	docs, _ = s.Documents()
	if len(docs) != 1 || docs[0].ID != d2 {
		t.Errorf("after drop: %+v", docs)
	}
}

func TestExplainQuery(t *testing.T) {
	s, _ := Open(Options{Encoding: Dewey})
	doc, _ := s.LoadString("d", "<a><b/></a>")
	sqls, err := s.ExplainQuery(doc, "/a/b")
	if err != nil || len(sqls) != 1 {
		t.Fatalf("ExplainQuery = %v, %v", sqls, err)
	}
	if !strings.Contains(sqls[0], "xd_nodes") {
		t.Errorf("SQL = %s", sqls[0])
	}
}

func TestRawSQL(t *testing.T) {
	s, _ := Open(Options{Encoding: Global})
	doc, _ := s.LoadString("d", "<a><b/><b/></a>")
	rows, err := s.SQL("SELECT COUNT(*) FROM xg_nodes WHERE doc = ? AND tag = ?", doc, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Values) != 1 || rows.Values[0][0] != "2" {
		t.Errorf("SQL result = %+v", rows)
	}
	if _, err := s.SQL("SELECT * FROM xg_nodes WHERE doc = ?", struct{}{}); err == nil {
		t.Error("bad arg type accepted")
	}
	if _, err := s.SQL("DELETE FROM xg_nodes"); err == nil {
		t.Error("non-SELECT accepted by SQL")
	}
}

func TestCountersAndStorage(t *testing.T) {
	s, _ := Open(Options{Encoding: Dewey})
	doc, _ := s.LoadString("d", "<a><b/><b/><b/></a>")
	before := s.Counters()
	if _, err := s.Query(doc, "//b"); err != nil {
		t.Fatal(err)
	}
	d := s.Counters().Sub(before)
	if d.IndexProbes == 0 {
		t.Errorf("query did no index probes: %+v", d)
	}
	st := s.Storage()
	if st.Rows != 4 || st.HeapBytes == 0 || st.HeapPages == 0 {
		t.Errorf("storage = %+v", st)
	}
}

func TestEncodingNames(t *testing.T) {
	for _, e := range []Encoding{Global, Local, Dewey} {
		back, err := ParseEncoding(e.String())
		if err != nil || back != e {
			t.Errorf("encoding round trip %v: %v, %v", e, back, err)
		}
	}
	if _, err := ParseEncoding("nope"); err == nil {
		t.Error("bad encoding name parsed")
	}
}

func TestErrorsSurface(t *testing.T) {
	s, _ := Open(Options{Encoding: Dewey})
	if _, err := s.LoadString("bad", "<unclosed"); err == nil {
		t.Error("malformed XML loaded")
	}
	doc, _ := s.LoadString("d", "<a/>")
	if _, err := s.Query(doc, "///"); err == nil {
		t.Error("malformed XPath accepted")
	}
	if _, err := s.Serialize(doc, 999); err == nil {
		t.Error("missing node serialized")
	}
	if err := s.Drop(999); err == nil {
		t.Error("missing doc dropped")
	}
}

func TestSetValueRenameAPI(t *testing.T) {
	s, _ := Open(Options{Encoding: Dewey})
	doc, _ := s.LoadString("d", `<cfg debug="false"><level>info</level></cfg>`)
	attrs, _ := s.Query(doc, "/cfg/@debug")
	if err := s.SetValue(doc, attrs[0].ID, "true"); err != nil {
		t.Fatal(err)
	}
	texts, _ := s.Query(doc, "/cfg/level/text()")
	if err := s.SetValue(doc, texts[0].ID, "debug"); err != nil {
		t.Fatal(err)
	}
	elems, _ := s.Query(doc, "/cfg/level")
	if err := s.Rename(doc, elems[0].ID, "verbosity"); err != nil {
		t.Fatal(err)
	}
	xml, _ := s.SerializeDocument(doc)
	want := `<cfg debug="true"><verbosity>debug</verbosity></cfg>`
	if xml != want {
		t.Errorf("document = %s, want %s", xml, want)
	}
}

func TestMove(t *testing.T) {
	for _, s := range openAll(t) {
		doc, _ := s.LoadString("d",
			`<doc><a><x>1</x></a><b/><c><y>2</y></c></doc>`)
		find := func(q string) NodeID {
			hits, err := s.Query(doc, q)
			if err != nil || len(hits) != 1 {
				t.Fatalf("%s: find %s: %v (%d)", s.Encoding(), q, err, len(hits))
			}
			return hits[0].ID
		}
		// Move <c> (with its subtree) before <a>.
		rep, err := s.Move(doc, find("/doc/c"), find("/doc/a"), Before)
		if err != nil {
			t.Fatalf("%s: %v", s.Encoding(), err)
		}
		if rep.RowsDeleted != 3 || rep.RowsInserted != 3 {
			t.Errorf("%s: move report = %+v", s.Encoding(), rep)
		}
		xml, _ := s.SerializeDocument(doc)
		want := `<doc><c><y>2</y></c><a><x>1</x></a><b/></doc>`
		if xml != want {
			t.Errorf("%s: after move: %s", s.Encoding(), xml)
		}
		// Move into a child position.
		if _, err := s.Move(doc, find("/doc/b"), find("/doc/a"), FirstChild); err != nil {
			t.Fatal(err)
		}
		xml, _ = s.SerializeDocument(doc)
		want = `<doc><c><y>2</y></c><a><b/><x>1</x></a></doc>`
		if xml != want {
			t.Errorf("%s: after second move: %s", s.Encoding(), xml)
		}
		// Cyclic and self moves are rejected with the document intact.
		aID := find("/doc/a")
		if _, err := s.Move(doc, aID, find("/doc/a/x"), After); err == nil {
			t.Errorf("%s: cyclic move accepted", s.Encoding())
		}
		if _, err := s.Move(doc, aID, aID, After); err == nil {
			t.Errorf("%s: self move accepted", s.Encoding())
		}
		after, _ := s.SerializeDocument(doc)
		if after != want {
			t.Errorf("%s: rejected move mutated the document: %s", s.Encoding(), after)
		}
	}
}

func TestCheckAPI(t *testing.T) {
	for _, s := range openAll(t) {
		doc, _ := s.LoadString("d", testDoc)
		problems, err := s.Check(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 0 {
			t.Errorf("%s: %v", s.Encoding(), problems)
		}
		// Updates keep the store consistent.
		hits, _ := s.Query(doc, "//SPEECH[1]")
		s.Insert(doc, hits[0].ID, After, "<SPEECH><SPEAKER>X</SPEAKER></SPEECH>")
		hits, _ = s.Query(doc, "//SPEECH[2]")
		s.Delete(doc, hits[0].ID)
		problems, _ = s.Check(doc)
		if len(problems) != 0 {
			t.Errorf("%s after updates: %v", s.Encoding(), problems)
		}
	}
}
