package ordxml_test

import (
	"testing"

	"ordxml/internal/bench"
)

// TestQuerySuitePlanCacheWarm runs the E3 query suite twice over one store
// per encoding: the second pass must execute entirely from the plan cache —
// hits only, no new parse or plan work — and return identical result counts.
func TestQuerySuitePlanCacheWarm(t *testing.T) {
	const items = 20
	doc := bench.CatalogDoc(items)
	suite := bench.QuerySuite(items)
	for _, cfg := range bench.Encodings() {
		t.Run(cfg.Name, func(t *testing.T) {
			s, id, err := bench.NewStore(cfg, doc)
			if err != nil {
				t.Fatal(err)
			}
			first := make(map[string]int)
			for _, q := range suite {
				nodes, err := s.Query(id, q.XPath)
				if err != nil {
					t.Fatalf("%s: %v", q.ID, err)
				}
				first[q.ID] = len(nodes)
			}
			warm := s.PlanCache()

			for _, q := range suite {
				nodes, err := s.Query(id, q.XPath)
				if err != nil {
					t.Fatalf("%s second pass: %v", q.ID, err)
				}
				if len(nodes) != first[q.ID] {
					t.Fatalf("%s: second pass returned %d nodes, first %d", q.ID, len(nodes), first[q.ID])
				}
			}
			second := s.PlanCache()

			if second.Misses != warm.Misses {
				t.Fatalf("second pass planned %d statements, want 0 (stats %+v -> %+v)",
					second.Misses-warm.Misses, warm, second)
			}
			if second.Hits <= warm.Hits {
				t.Fatalf("second pass recorded no cache hits (stats %+v -> %+v)", warm, second)
			}
		})
	}
}
