package ordxml_test

import (
	"testing"

	"ordxml"
	"ordxml/internal/xmlgen"
)

// TestScale loads a ~50k-node document into every encoding and exercises
// queries, updates and reconstruction at a size past any page/split
// boundaries the small tests reach.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-document test")
	}
	doc := xmlgen.Play(xmlgen.PlayConfig{
		Acts: 12, ScenesPerAct: 12, SpeechesPerScene: 24, LinesPerSpeech: 6, Seed: 9,
	})
	xml := doc.String()
	nodes := doc.Size()
	if nodes < 40000 {
		t.Fatalf("workload too small: %d nodes", nodes)
	}
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		store, err := ordxml.Open(ordxml.Options{Encoding: enc, Gap: 4})
		if err != nil {
			t.Fatal(err)
		}
		id, err := store.LoadString("big", xml)
		if err != nil {
			t.Fatalf("%s: load: %v", enc, err)
		}
		if st := store.Storage(); st.Rows != nodes || st.HeapPages < 100 {
			t.Errorf("%s: storage = %+v, want %d rows across many pages", enc, st, nodes)
		}
		// Deep positional query.
		vals, err := store.QueryValues(id, "/PLAY/ACT[7]/SCENE[3]/SPEECH[11]/SPEAKER")
		if err != nil || len(vals) != 1 {
			t.Fatalf("%s: deep query: %v, %v", enc, vals, err)
		}
		// Wide descendant query.
		lines, err := store.Query(id, "//LINE")
		if err != nil {
			t.Fatal(err)
		}
		if want := 12 * 12 * 24 * 6; len(lines) != want {
			t.Errorf("%s: //LINE = %d, want %d", enc, len(lines), want)
		}
		// Update in the middle, then verify placement.
		hits, err := store.Query(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[10]")
		if err != nil || len(hits) != 1 {
			t.Fatalf("%s: target: %v", enc, err)
		}
		if _, err := store.Insert(id, hits[0].ID, ordxml.After,
			"<SPEECH><SPEAKER>PROBE</SPEAKER><LINE>marker</LINE></SPEECH>"); err != nil {
			t.Fatalf("%s: insert: %v", enc, err)
		}
		speakers, err := store.QueryValues(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[11]/SPEAKER")
		if err != nil || len(speakers) != 1 || speakers[0] != "PROBE" {
			t.Fatalf("%s: probe not at position 11: %v, %v", enc, speakers, err)
		}
		// Subtree reconstruction of a full act.
		acts, err := store.Query(id, "/PLAY/ACT[2]")
		if err != nil || len(acts) != 1 {
			t.Fatal(err)
		}
		actXML, err := store.Serialize(id, acts[0].ID)
		if err != nil {
			t.Fatalf("%s: serialize: %v", enc, err)
		}
		if len(actXML) < 10000 {
			t.Errorf("%s: act serialization suspiciously small: %d bytes", enc, len(actXML))
		}
	}
}
