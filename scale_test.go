package ordxml_test

import (
	"testing"

	"ordxml"
	"ordxml/internal/xmlgen"
)

// TestScalePaged runs a beyond-RAM version of the scale workload: the same
// ~50k-node document is loaded into a durable store whose buffer pool holds
// only 64 frames (512 KiB), a small fraction of the data, so the pool must
// evict throughout. Queries, incremental checkpoints, the on-disk CRC sweep
// and a close/reopen all have to work while most pages live only on disk.
func TestScalePaged(t *testing.T) {
	if testing.Short() {
		t.Skip("large-document test")
	}
	doc := xmlgen.Play(xmlgen.PlayConfig{
		Acts: 12, ScenesPerAct: 12, SpeechesPerScene: 24, LinesPerSpeech: 6, Seed: 9,
	})
	xml := doc.String()
	nodes := doc.Size()
	const frames = 64
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		t.Run(enc.String(), func(t *testing.T) {
			dir := t.TempDir()
			store, err := ordxml.OpenDurable(dir, ordxml.Options{
				Encoding: enc, Gap: 4, BufferPoolFrames: frames,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			id, err := store.LoadString("big", xml)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			st := store.Storage()
			if st.Rows != nodes {
				t.Errorf("storage = %+v, want %d rows", st, nodes)
			}
			if st.HeapPages < 3*frames {
				t.Fatalf("workload not beyond-RAM: %d heap pages vs %d pool frames",
					st.HeapPages, frames)
			}
			ps, ok := store.PoolStats()
			if !ok {
				t.Fatal("no pool stats")
			}
			if ps.Resident > int64(ps.Capacity) {
				t.Fatalf("resident frames %d exceed pool capacity %d", ps.Resident, ps.Capacity)
			}
			if ps.Evictions == 0 {
				t.Fatal("no evictions despite beyond-RAM load")
			}

			// First checkpoint writes the whole store; a checkpoint after one
			// point update must flush only a sliver of that.
			if err := store.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ps, _ = store.PoolStats()
			full := ps.DirtyFlushes
			hits, err := store.Query(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[10]/SPEAKER")
			if err != nil || len(hits) != 1 {
				t.Fatalf("target: %v, %v", hits, err)
			}
			if err := store.Rename(id, hits[0].ID, "PROBE"); err != nil {
				t.Fatal(err)
			}
			if err := store.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ps, _ = store.PoolStats()
			if delta := ps.DirtyFlushes - full; delta == 0 || delta > full/4 {
				t.Fatalf("incremental checkpoint flushed %d of %d pages", delta, full)
			}

			// Queries against the mostly-on-disk store.
			vals, err := store.QueryValues(id, "/PLAY/ACT[7]/SCENE[3]/SPEECH[11]/SPEAKER")
			if err != nil || len(vals) != 1 {
				t.Fatalf("deep query: %v, %v", vals, err)
			}
			lines, err := store.Query(id, "//LINE")
			if err != nil {
				t.Fatal(err)
			}
			if want := 12 * 12 * 24 * 6; len(lines) != want {
				t.Errorf("//LINE = %d, want %d", len(lines), want)
			}
			ps, _ = store.PoolStats()
			if ps.Resident > int64(ps.Capacity) {
				t.Fatalf("resident frames %d exceed pool capacity %d after scan", ps.Resident, ps.Capacity)
			}

			// Deep integrity check includes the on-disk page CRC sweep.
			problems, err := store.CheckIntegrity()
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) > 0 {
				t.Fatalf("integrity: %v", problems)
			}

			// Reopen from disk and spot-check the update survived.
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			back, err := ordxml.OpenDurable(dir, ordxml.Options{
				Encoding: enc, BufferPoolFrames: frames,
			})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer back.Close()
			probe, err := back.Query(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[10]/PROBE")
			if err != nil || len(probe) != 1 {
				t.Fatalf("update lost after reopen: %v, %v", probe, err)
			}
		})
	}
}

// TestScale loads a ~50k-node document into every encoding and exercises
// queries, updates and reconstruction at a size past any page/split
// boundaries the small tests reach.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-document test")
	}
	doc := xmlgen.Play(xmlgen.PlayConfig{
		Acts: 12, ScenesPerAct: 12, SpeechesPerScene: 24, LinesPerSpeech: 6, Seed: 9,
	})
	xml := doc.String()
	nodes := doc.Size()
	if nodes < 40000 {
		t.Fatalf("workload too small: %d nodes", nodes)
	}
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		store, err := ordxml.Open(ordxml.Options{Encoding: enc, Gap: 4})
		if err != nil {
			t.Fatal(err)
		}
		id, err := store.LoadString("big", xml)
		if err != nil {
			t.Fatalf("%s: load: %v", enc, err)
		}
		if st := store.Storage(); st.Rows != nodes || st.HeapPages < 100 {
			t.Errorf("%s: storage = %+v, want %d rows across many pages", enc, st, nodes)
		}
		// Deep positional query.
		vals, err := store.QueryValues(id, "/PLAY/ACT[7]/SCENE[3]/SPEECH[11]/SPEAKER")
		if err != nil || len(vals) != 1 {
			t.Fatalf("%s: deep query: %v, %v", enc, vals, err)
		}
		// Wide descendant query.
		lines, err := store.Query(id, "//LINE")
		if err != nil {
			t.Fatal(err)
		}
		if want := 12 * 12 * 24 * 6; len(lines) != want {
			t.Errorf("%s: //LINE = %d, want %d", enc, len(lines), want)
		}
		// Update in the middle, then verify placement.
		hits, err := store.Query(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[10]")
		if err != nil || len(hits) != 1 {
			t.Fatalf("%s: target: %v", enc, err)
		}
		if _, err := store.Insert(id, hits[0].ID, ordxml.After,
			"<SPEECH><SPEAKER>PROBE</SPEAKER><LINE>marker</LINE></SPEECH>"); err != nil {
			t.Fatalf("%s: insert: %v", enc, err)
		}
		speakers, err := store.QueryValues(id, "/PLAY/ACT[5]/SCENE[5]/SPEECH[11]/SPEAKER")
		if err != nil || len(speakers) != 1 || speakers[0] != "PROBE" {
			t.Fatalf("%s: probe not at position 11: %v, %v", enc, speakers, err)
		}
		// Subtree reconstruction of a full act.
		acts, err := store.Query(id, "/PLAY/ACT[2]")
		if err != nil || len(acts) != 1 {
			t.Fatal(err)
		}
		actXML, err := store.Serialize(id, acts[0].ID)
		if err != nil {
			t.Fatalf("%s: serialize: %v", enc, err)
		}
		if len(actXML) < 10000 {
			t.Errorf("%s: act serialization suspiciously small: %d bytes", enc, len(actXML))
		}
	}
}
