package ordxml_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ordxml"
	"ordxml/internal/core/xpath"
	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

// This file holds the end-to-end session tests: long random sequences of
// queries and updates, run through the public API against every encoding in
// parallel with an in-memory oracle document. After every mutation the
// stores must serialize to the oracle's exact XML, and every query must
// return the oracle's exact node sequence.

// session pairs a store with the oracle node -> store id mapping.
type session struct {
	name  string
	store *ordxml.Store
	doc   ordxml.DocID
	ids   map[*xmltree.Node]int64
}

func newSessions(t *testing.T, tree *xmltree.Node) []*session {
	t.Helper()
	configs := []struct {
		name string
		opts ordxml.Options
	}{
		{"global", ordxml.Options{Encoding: ordxml.Global}},
		{"local", ordxml.Options{Encoding: ordxml.Local}},
		{"dewey", ordxml.Options{Encoding: ordxml.Dewey}},
		{"global_gap", ordxml.Options{Encoding: ordxml.Global, Gap: 8}},
		{"dewey_gap", ordxml.Options{Encoding: ordxml.Dewey, Gap: 8}},
		{"dewey_text", ordxml.Options{Encoding: ordxml.Dewey, DeweyAsText: true}},
	}
	var out []*session
	for _, cfg := range configs {
		store, err := ordxml.Open(cfg.opts)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := store.LoadString("session", tree.String())
		if err != nil {
			t.Fatal(err)
		}
		s := &session{name: cfg.name, store: store, doc: doc, ids: map[*xmltree.Node]int64{}}
		next := int64(1)
		tree.Walk(func(n *xmltree.Node) bool {
			s.ids[n] = next
			next++
			return true
		})
		out = append(out, s)
	}
	return out
}

func (s *session) mapFragment(frag *xmltree.Node, base int64) {
	next := base
	frag.Walk(func(n *xmltree.Node) bool {
		s.ids[n] = next
		next++
		return true
	})
}

// checkQuery compares the store result with the oracle.
func (s *session) checkQuery(t *testing.T, oracle *xmltree.Node, q string) {
	t.Helper()
	wantNodes, err := xpath.EvalString(oracle, q)
	if err != nil {
		t.Fatalf("oracle %q: %v", q, err)
	}
	want := make([]int64, len(wantNodes))
	for i, n := range wantNodes {
		want[i] = s.ids[n]
	}
	got, err := s.store.Query(s.doc, q)
	if err != nil {
		t.Fatalf("%s: %q: %v", s.name, q, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %q: %d results, oracle has %d", s.name, q, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("%s: %q: result %d = node %d, oracle %d", s.name, q, i, got[i].ID, want[i])
		}
	}
}

// TestRandomSessions runs mixed query/update sessions; the main end-to-end
// property of the library.
func TestRandomSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("long session sweep")
	}
	queries := []string{
		"//ins", "//leaf", "//a", "//b/c", "/%s", "//a[1]", "//b[last()]",
		"//a/following-sibling::*", "//c/preceding-sibling::*[1]",
		"//leaf/ancestor::ins", "//c/parent::*", "//ins[@n = '3']",
		"//ins[leaf = 'v2']", "//a//b", "//*[2]",
	}
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed + 55))
		oracle := xmlgen.Random(xmlgen.DefaultRandom(seed + 300))
		sessions := newSessions(t, oracle)
		rootQ := fmt.Sprintf(queries[4], oracle.Tag)
		for op := 0; op < 30; op++ {
			var elems []*xmltree.Node
			oracle.Walk(func(n *xmltree.Node) bool {
				if n.Kind == xmltree.Element {
					elems = append(elems, n)
				}
				return true
			})
			target := elems[r.Intn(len(elems))]
			isRoot := target.Parent == nil
			switch r.Intn(5) {
			case 0: // query round
				q := queries[r.Intn(len(queries))]
				if strings.Contains(q, "%s") {
					q = rootQ
				}
				for _, s := range sessions {
					s.checkQuery(t, oracle, q)
				}
			case 1: // delete
				if isRoot || len(elems) < 4 {
					continue
				}
				for _, s := range sessions {
					if _, err := s.store.Delete(s.doc, s.ids[target]); err != nil {
						t.Fatalf("seed %d op %d %s: delete: %v", seed, op, s.name, err)
					}
				}
				p := target.Parent
				idx := target.ChildIndex()
				p.Children = append(p.Children[:idx], p.Children[idx+1:]...)
			case 2: // set value / rename
				var leaves []*xmltree.Node
				oracle.Walk(func(n *xmltree.Node) bool {
					if n.Kind != xmltree.Element {
						leaves = append(leaves, n)
					}
					return true
				})
				if len(leaves) == 0 {
					continue
				}
				leaf := leaves[r.Intn(len(leaves))]
				val := fmt.Sprintf("edit%d", op)
				for _, s := range sessions {
					if err := s.store.SetValue(s.doc, s.ids[leaf], val); err != nil {
						t.Fatalf("seed %d op %d %s: setvalue: %v", seed, op, s.name, err)
					}
				}
				leaf.Value = val
			default: // insert
				mode := []ordxml.Position{ordxml.FirstChild, ordxml.LastChild, ordxml.Before, ordxml.After}[r.Intn(4)]
				if isRoot && (mode == ordxml.Before || mode == ordxml.After) {
					mode = ordxml.FirstChild
				}
				fragXML := fmt.Sprintf(`<ins n="%d"><leaf>v%d</leaf><b><c/></b></ins>`, op, op)
				oracleFrag, _ := xmltree.ParseString(fragXML)
				for _, s := range sessions {
					rep, err := s.store.Insert(s.doc, s.ids[target], mode, fragXML)
					if err != nil {
						t.Fatalf("seed %d op %d %s: insert: %v", seed, op, s.name, err)
					}
					s.mapFragment(oracleFrag, rep.NewID)
				}
				// Mirror on the oracle.
				switch mode {
				case ordxml.FirstChild:
					oracleFrag.Parent = target
					target.Children = append([]*xmltree.Node{oracleFrag}, target.Children...)
				case ordxml.LastChild:
					target.AddChild(oracleFrag)
				default:
					p := target.Parent
					idx := target.ChildIndex()
					if mode == ordxml.After {
						idx++
					}
					oracleFrag.Parent = p
					p.Children = append(p.Children, nil)
					copy(p.Children[idx+1:], p.Children[idx:])
					p.Children[idx] = oracleFrag
				}
			}
		}
		want := oracle.String()
		for _, s := range sessions {
			got, err := s.store.SerializeDocument(s.doc)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.name, err)
			}
			if got != want {
				t.Fatalf("seed %d %s: final document diverged", seed, s.name)
			}
			// Deep check: logical per-document invariants plus heap-page and
			// B+tree structural invariants and index/heap agreement.
			problems, err := s.store.CheckIntegrity()
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != 0 {
				t.Fatalf("seed %d %s: invariants violated: %v", seed, s.name, problems)
			}
		}
	}
}

// TestConcurrentReaders checks the documented concurrency contract: many
// goroutines querying one store while results stay consistent.
func TestConcurrentReaders(t *testing.T) {
	store, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := store.LoadString("c", xmlgen.Catalog(xmlgen.DefaultCatalog()).String())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := store.QueryValues(doc, "/site/regions/namerica/item/name")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := store.QueryValues(doc, "/site/regions/namerica/item/name")
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(baseline) || got[0] != baseline[0] {
					errs <- fmt.Errorf("goroutine %d: inconsistent result", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixed interleaves readers with a writer; the engine's
// statement-level locking must keep every observed state coherent.
func TestConcurrentMixed(t *testing.T) {
	store, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Global, Gap: 16})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := store.LoadString("m", "<list><item>seed</item></list>")
	if err != nil {
		t.Fatal(err)
	}
	listID := int64(1)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := store.Insert(doc, listID, ordxml.LastChild,
				fmt.Sprintf("<item>w%d</item>", i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				vals, err := store.QueryValues(doc, "/list/item")
				if err != nil {
					errs <- err
					return
				}
				if len(vals) == 0 || vals[0] != "seed" {
					errs <- fmt.Errorf("reader saw incoherent state: %v", vals)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	vals, _ := store.QueryValues(doc, "/list/item")
	if len(vals) != 31 {
		t.Errorf("final item count = %d", len(vals))
	}
}
