// Corrupted-store tests for the deep integrity checker: each subtest seeds
// one class of corruption — logical (bad sibling order, broken Dewey
// prefixes, registry drift) through raw SQL, physical (unsorted B+tree
// nodes, index/heap disagreement) by reaching under the catalog — and
// asserts CheckIntegrity names it. The checker is only trustworthy if every
// violation class it promises to detect is demonstrably detected.
package ordxml

import (
	"strings"
	"testing"

	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

const integrityXML = `<a><b x="1">t1</b><c>t2</c><d><e>t3</e><f>t4</f></d></a>`

func newIntegrityStore(t *testing.T, enc Encoding) (*Store, DocID) {
	t.Helper()
	s, err := Open(Options{Encoding: enc})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	doc, err := s.LoadString("doc", integrityXML)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return s, doc
}

func expectProblem(t *testing.T, s *Store, substr string) {
	t.Helper()
	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	if len(problems) == 0 {
		t.Fatalf("CheckIntegrity found nothing, want a problem mentioning %q", substr)
	}
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Fatalf("no problem mentions %q in:\n%s", substr, strings.Join(problems, "\n"))
}

// exec runs a raw statement against the store's engine, bypassing the
// update layer — the corruption vector these tests simulate.
func exec(t *testing.T, s *Store, sql string, args ...int64) {
	t.Helper()
	params := make([]sqltypes.Value, len(args))
	for i, a := range args {
		params[i] = sqldb.I(a)
	}
	if _, err := s.db.Exec(sql, params...); err != nil {
		t.Fatalf("exec %s: %v", sql, err)
	}
}

func TestCheckIntegrityHealthy(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		t.Run(enc.String(), func(t *testing.T) {
			s, _ := newIntegrityStore(t, enc)
			problems, err := s.CheckIntegrity()
			if err != nil {
				t.Fatalf("CheckIntegrity: %v", err)
			}
			if len(problems) != 0 {
				t.Fatalf("healthy store reported problems:\n%s", strings.Join(problems, "\n"))
			}
		})
	}
}

func TestCheckIntegrityBadSiblingOrder(t *testing.T) {
	// The unique index on (doc, parent, lorder) blocks duplicate sibling
	// orders even through raw SQL, so seed the other local-order violation:
	// a non-positive lorder, which makes renumber arithmetic go wrong.
	s, doc := newIntegrityStore(t, Local)
	res, err := s.db.Query(`SELECT id FROM xl_nodes WHERE doc = ? AND parent = ? ORDER BY lorder`,
		sqldb.I(int64(doc)), sqldb.I(1))
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("seed rows: %v", err)
	}
	exec(t, s, `UPDATE xl_nodes SET lorder = ? WHERE doc = ? AND id = ?`,
		-5, int64(doc), res.Rows[0][0].Int())
	expectProblem(t, s, "non-positive lorder")
}

func TestCheckIntegrityBadGlobalOrder(t *testing.T) {
	// A node ordered before its parent breaks the pre-order contract of the
	// global encoding. gorder 0 is below the root's (the first assigned
	// order is 1) and collides with no existing key.
	s, doc := newIntegrityStore(t, Global)
	res, err := s.db.Query(`SELECT id FROM xg_nodes WHERE doc = ? AND parent = ? ORDER BY gorder`,
		sqldb.I(int64(doc)), sqldb.I(1))
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("seed rows: %v", err)
	}
	exec(t, s, `UPDATE xg_nodes SET gorder = ? WHERE doc = ? AND id = ?`,
		0, int64(doc), res.Rows[0][0].Int())
	expectProblem(t, s, "does not follow its parent")
}

func TestCheckIntegrityBrokenDeweyPrefix(t *testing.T) {
	// Re-pointing a child's path outside its parent's prefix breaks the
	// ancestry-by-prefix property every Dewey axis test relies on.
	s, doc := newIntegrityStore(t, Dewey)
	res, err := s.db.Query(`SELECT id, path FROM xd_nodes WHERE doc = ? AND parent = ? ORDER BY path`,
		sqldb.I(int64(doc)), sqldb.I(1))
	if err != nil || len(res.Rows) < 2 {
		t.Fatalf("seed rows: %v", err)
	}
	// Give the first child a doubled path (components are self-delimiting,
	// so the concatenation decodes as a valid depth-4 path): its stored
	// parent is the root, but its path claims a great-grandchild position.
	child := res.Rows[0][0].Int()
	deep := append(append([]byte{}, res.Rows[1][1].Blob()...), res.Rows[1][1].Blob()...)
	if _, err := s.db.Exec(`UPDATE xd_nodes SET path = ? WHERE doc = ? AND id = ?`,
		sqldb.B(deep), sqldb.I(int64(doc)), sqldb.I(child)); err != nil {
		t.Fatalf("corrupt path: %v", err)
	}
	expectProblem(t, s, "not a direct extension")
}

func TestCheckIntegrityUnsortedBtreeNode(t *testing.T) {
	// Iterator.Key aliases tree memory; overwriting it in place reorders a
	// leaf without the tree noticing — exactly the kind of silent structural
	// damage Validate exists to catch.
	s, _ := newIntegrityStore(t, Global)
	tbl := s.db.Catalog().Table("xg_nodes")
	if tbl == nil || len(tbl.Indexes) == 0 {
		t.Fatal("xg_nodes has no indexes")
	}
	it := tbl.Indexes[0].Tree.Seek(nil, nil)
	if !it.Valid() {
		t.Fatal("empty index")
	}
	key := it.Key()
	for i := range key {
		key[i] = 0xFF
	}
	expectProblem(t, s, "out of order")
}

func TestCheckIntegrityIndexHeapDisagreement(t *testing.T) {
	// Deleting straight from the heap strands index entries pointing at dead
	// rows and skews the entry/row count.
	s, _ := newIntegrityStore(t, Global)
	tbl := s.db.Catalog().Table("xg_nodes")
	var deleted bool
	tbl.Heap.Scan(func(rid heap.RID, _ []byte) bool {
		if err := tbl.Heap.Delete(rid); err != nil {
			t.Fatalf("heap delete: %v", err)
		}
		deleted = true
		return false
	})
	if !deleted {
		t.Fatal("nothing to delete")
	}
	expectProblem(t, s, "dead row")
}

func TestCheckIntegrityOrphanRows(t *testing.T) {
	// Dropping the registry row while node rows remain leaves unreachable
	// data behind.
	s, doc := newIntegrityStore(t, Dewey)
	exec(t, s, `DELETE FROM docs WHERE doc = ?`, int64(doc))
	expectProblem(t, s, "no docs registry entry")
}

func TestCheckIntegrityRegistryDrift(t *testing.T) {
	// docs.nodes disagreeing with the stored row count.
	s, doc := newIntegrityStore(t, Local)
	exec(t, s, `UPDATE docs SET nodes = ? WHERE doc = ?`, 999, int64(doc))
	expectProblem(t, s, "docs.nodes")
}
