package ordxml

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// parallelDoc builds a flat document big enough to clear the planner's
// parallel row threshold (2048): 1+2*n nodes for n items.
func parallelDoc(items int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, "<item>v%d</item>", i)
	}
	b.WriteString("</catalog>")
	return b.String()
}

// parallelGoldenQueries are raw-SQL shapes that exercise every parallel
// operator: a Gather under an aggregate, a Gather under a Sort, and a
// partitioned hash join. All run against the Global encoding's node table.
var parallelGoldenQueries = []struct {
	id  string
	sql string
}{
	{"agg-gather", `SELECT kind, COUNT(*) n FROM xg_nodes GROUP BY kind ORDER BY kind`},
	{"sort-gather", `SELECT id FROM xg_nodes WHERE kind = 'text' ORDER BY value`},
	{"partitioned-join", `SELECT COUNT(*) FROM xg_nodes a JOIN xg_nodes b ON a.id = b.parent`},
}

// workerRows matches the per-worker row breakdown of EXPLAIN ANALYZE. The
// split of rows across workers depends on which worker claims which pages,
// so the counts are normalized while the degree of parallelism (the number
// of entries) is kept.
var workerRows = regexp.MustCompile(`workers rows=[0-9]+(/[0-9]+)*`)

func normalizeParallelAnalyze(s string) string {
	s = normalizeAnalyze(s)
	return workerRows.ReplaceAllStringFunc(s, func(m string) string {
		n := strings.Count(m, "/") + 1
		return "workers rows=" + strings.TrimSuffix(strings.Repeat("<n>/", n), "/")
	})
}

// TestExplainParallelGolden locks the EXPLAIN and EXPLAIN ANALYZE output of
// the parallel plans at parallelism 4, plus the serial fallback of the same
// statements on a table below the row threshold. Regenerate with `go test
// -run TestExplainParallelGolden -update`.
func TestExplainParallelGolden(t *testing.T) {
	section := func(out *strings.Builder, store *Store, label string) {
		for _, q := range parallelGoldenQueries {
			fmt.Fprintf(out, "== %s %s ==\n%s\n", label, q.id, q.sql)
			plan, err := store.ExplainSQL(q.sql)
			if err != nil {
				t.Fatalf("%s %s explain: %v", label, q.id, err)
			}
			out.WriteString(plan)
			analyzed, err := store.ExplainAnalyzeSQL(q.sql)
			if err != nil {
				t.Fatalf("%s %s analyze: %v", label, q.id, err)
			}
			out.WriteString("-- analyze\n")
			out.WriteString(normalizeParallelAnalyze(analyzed))
			out.WriteByte('\n')
		}
	}

	big, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.LoadString("big", parallelDoc(1500)); err != nil {
		t.Fatal(err)
	}
	big.SetParallelism(4)

	small, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.LoadString("small", parallelDoc(20)); err != nil {
		t.Fatal(err)
	}
	small.SetParallelism(4)

	var out strings.Builder
	section(&out, big, "parallel")
	section(&out, small, "serial-fallback")
	got := out.String()

	path := filepath.Join("testdata", "explain_parallel.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeParallelActuals is the acceptance check: EXPLAIN ANALYZE
// on a parallel plan must show the exchange operator with its worker count
// and a per-worker actual-row breakdown, and the parallel plan must return
// the same rows as the serial one.
func TestExplainAnalyzeParallelActuals(t *testing.T) {
	store, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadString("big", parallelDoc(1500)); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT kind, COUNT(*) n FROM xg_nodes GROUP BY kind ORDER BY kind`
	serial, err := store.SQL(sql)
	if err != nil {
		t.Fatal(err)
	}

	store.SetParallelism(4)
	if got := store.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}
	analyzed, err := store.ExplainAnalyzeSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyzed, "Gather workers=4") {
		t.Errorf("no exchange operator in analyze output:\n%s", analyzed)
	}
	if !workerRows.MatchString(analyzed) {
		t.Errorf("no per-worker actuals in analyze output:\n%s", analyzed)
	}

	par, err := store.SQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(par.Values) != fmt.Sprint(serial.Values) {
		t.Errorf("parallel result diverged:\nserial: %v\nparallel: %v", serial.Values, par.Values)
	}

	join := `SELECT COUNT(*) FROM xg_nodes a JOIN xg_nodes b ON a.id = b.parent`
	analyzed, err = store.ExplainAnalyzeSQL(join)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyzed, "PartitionedHashJoin workers=4") {
		t.Errorf("join did not partition:\n%s", analyzed)
	}
}
