package ordxml_test

import (
	"fmt"

	"ordxml"
)

// The package-level example: load, query, update, reconstruct.
func Example() {
	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	doc, _ := store.LoadString("menu", `<menu>
		<dish><name>soup</name></dish>
		<dish><name>roast</name></dish>
	</menu>`)

	names, _ := store.QueryValues(doc, "/menu/dish/name")
	fmt.Println(names)

	dishes, _ := store.Query(doc, "/menu/dish[2]")
	store.Insert(doc, dishes[0].ID, ordxml.Before, "<dish><name>salad</name></dish>")

	names, _ = store.QueryValues(doc, "/menu/dish/name")
	fmt.Println(names)
	// Output:
	// [soup roast]
	// [soup salad roast]
}

func ExampleStore_Query() {
	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	doc, _ := store.LoadString("d", `<list><i k="a"/><i k="b"/><i k="c"/></list>`)
	// Ordered axes: everything after the first item.
	nodes, _ := store.Query(doc, "/list/i[1]/following-sibling::i/@k")
	for _, n := range nodes {
		fmt.Println(n.Value, n.OrderKey)
	}
	// Output:
	// b 1.2.1
	// c 1.3.1
}

func ExampleStore_ExplainQuery() {
	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Global})
	doc, _ := store.LoadString("d", `<a><b/></a>`)
	sqls, _ := store.ExplainQuery(doc, "/a/b")
	fmt.Println(sqls[0])
	// Output:
	// SELECT n1.id, n1.parent, n1.gorder, n2.id, n2.parent, n2.gorder, n2.kind, n2.tag, n2.value FROM xg_nodes n1, xg_nodes n2 WHERE n1.doc = 1 AND n1.parent IS NULL AND n1.kind = 'elem' AND n1.tag = 'a' AND n2.doc = 1 AND n2.parent = n1.id AND n2.kind = 'elem' AND n2.tag = 'b' ORDER BY n2.gorder
}

func ExampleStore_Insert() {
	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Local})
	doc, _ := store.LoadString("d", `<log><e>1</e><e>3</e></log>`)
	entries, _ := store.Query(doc, "/log/e[2]")
	rep, _ := store.Insert(doc, entries[0].ID, ordxml.Before, "<e>2</e>")
	fmt.Println("renumbered:", rep.RowsRenumbered)
	xml, _ := store.SerializeDocument(doc)
	fmt.Println(xml)
	// Output:
	// renumbered: 1
	// <log><e>1</e><e>2</e><e>3</e></log>
}

func ExampleStore_Move() {
	store, _ := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	doc, _ := store.LoadString("d", `<q><job n="1"/><job n="2"/><job n="3"/></q>`)
	third, _ := store.Query(doc, "/q/job[3]")
	first, _ := store.Query(doc, "/q/job[1]")
	store.Move(doc, third[0].ID, first[0].ID, ordxml.Before)
	order, _ := store.Query(doc, "/q/job/@n")
	for _, n := range order {
		fmt.Print(n.Value, " ")
	}
	// Output:
	// 3 1 2
}
