package sqldb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/pagefile"
	"ordxml/internal/sqldb/sqltypes"
)

func newTestPool(t *testing.T, frames int) *bufpool.Pool {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return bufpool.New(pf, frames)
}

// checkpointPaged runs the full paged-checkpoint protocol against an
// in-memory manifest buffer, the way ordxml's durable layer does.
func checkpointPaged(t *testing.T, db *DB, pool *bufpool.Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.DumpPaged(&buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool.CommitCheckpoint()
	return buf.Bytes()
}

func TestPagedManifestRoundTrip(t *testing.T) {
	pool := newTestPool(t, 16)
	db := OpenPooled(pool)
	mustExec(t, db, `CREATE TABLE t (
		i INT PRIMARY KEY, r REAL, s TEXT NOT NULL, b BLOB, f BOOL)`)
	mustExec(t, db, `CREATE INDEX t_s ON t (s, i)`)
	mustExec(t, db, `CREATE TABLE empty (x INT)`)
	ins, _ := db.Prepare("INSERT INTO t VALUES (?, ?, ?, ?, ?)")
	for i := int64(0); i < 500; i++ {
		var blob sqltypes.Value = B([]byte{byte(i), 0x00, 0xFF})
		if i%7 == 0 {
			blob = Null()
		}
		if _, err := ins.Exec(I(i), F(float64(i)/3), S("row"), blob, sqltypes.NewBool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	manifest := checkpointPaged(t, db, pool)

	back, err := LoadPaged(bytes.NewReader(manifest), pool)
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, back, "SELECT i, r, s, b, f FROM t WHERE i = 3")
	r := res.Rows[0]
	if r[0].Int() != 3 || r[1].Real() != 1.0 || r[2].Text() != "row" ||
		!bytes.Equal(r[3].Blob(), []byte{3, 0, 0xFF}) || r[4].Bool() {
		t.Fatalf("row 3 = %v", r)
	}
	res = mustQuery(t, back, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 500 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Indexes were restored as page-backed trees, not rebuilt: plans use them
	// and uniqueness still holds.
	p, err := back.Explain("SELECT s FROM t WHERE i = 9")
	if err != nil || !contains(p, "IndexScan t using t_pkey") {
		t.Errorf("restored plan:\n%s (%v)", p, err)
	}
	if _, err := back.Exec("INSERT INTO t VALUES (3, 0, 'dup', NULL, FALSE)"); err == nil {
		t.Error("unique constraint lost after restore")
	}
	if _, err := back.Exec("INSERT INTO t VALUES (1000, 0, NULL, NULL, FALSE)"); err == nil {
		t.Error("NOT NULL lost after restore")
	}
	res = mustQuery(t, back, "SELECT COUNT(*) FROM empty")
	if res.Rows[0][0].Int() != 0 {
		t.Error("empty table corrupted")
	}
	if problems := back.CheckIntegrity(); len(problems) > 0 {
		t.Fatalf("integrity: %v", problems)
	}
}

// TestPagedManifestIncremental: a second checkpoint after touching one row
// reuses the unchanged pages — it must not rewrite the whole store.
func TestPagedManifestIncremental(t *testing.T) {
	pool := newTestPool(t, 64)
	db := OpenPooled(pool)
	mustExec(t, db, "CREATE TABLE t (i INT PRIMARY KEY, s TEXT)")
	ins, _ := db.Prepare("INSERT INTO t VALUES (?, ?)")
	for i := int64(0); i < 2000; i++ {
		if _, err := ins.Exec(I(i), S("some row padding text for page fill")); err != nil {
			t.Fatal(err)
		}
	}
	checkpointPaged(t, db, pool)
	full := pool.Stats().DirtyFlushes
	if full < 10 {
		t.Fatalf("first checkpoint flushed only %d pages", full)
	}
	mustExec(t, db, "UPDATE t SET s = 'changed' WHERE i = 42")
	checkpointPaged(t, db, pool)
	if delta := pool.Stats().DirtyFlushes - full; delta == 0 || delta > full/4 {
		t.Fatalf("incremental checkpoint flushed %d of %d pages", delta, full)
	}
}

func TestPagedManifestBadInput(t *testing.T) {
	pool := newTestPool(t, 16)
	db := OpenPooled(pool)
	mustExec(t, db, "CREATE TABLE t (i INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t VALUES (7)")
	manifest := checkpointPaged(t, db, pool)

	fresh := func() *bufpool.Pool { return newTestPool(t, 16) }
	if _, err := LoadPaged(bytes.NewReader(nil), fresh()); err == nil {
		t.Error("empty manifest accepted")
	}
	if _, err := LoadPaged(bytes.NewReader([]byte("ordxmlDB rest")), fresh()); err == nil {
		t.Error("snapshot magic accepted as manifest")
	}
	// Truncation anywhere must fail the checksum or hit EOF.
	for _, cut := range []int{len(manifest) / 2, len(manifest) - 1} {
		if _, err := LoadPaged(bytes.NewReader(manifest[:cut]), fresh()); err == nil {
			t.Errorf("truncated manifest (%d of %d bytes) accepted", cut, len(manifest))
		}
	}
	// A flipped byte in the body must fail the CRC.
	bad := append([]byte(nil), manifest...)
	bad[len(bad)/2] ^= 0x40
	if _, err := LoadPaged(bytes.NewReader(bad), fresh()); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

// TestPagedBeyondRAM loads far more data than the pool can hold and checks
// that queries still answer correctly while the pool stays at capacity.
func TestPagedBeyondRAM(t *testing.T) {
	dir := t.TempDir()
	pf, err := pagefile.Create(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	const frames = 8
	pool := bufpool.New(pf, frames)
	db := OpenPooled(pool)
	mustExec(t, db, "CREATE TABLE t (i INT PRIMARY KEY, s TEXT)")
	ins, _ := db.Prepare("INSERT INTO t VALUES (?, ?)")
	pad := string(bytes.Repeat([]byte("x"), 200))
	const rows = 4000 // ~800KB of row data vs a 64KB pool
	for i := int64(0); i < rows; i++ {
		if _, err := ins.Exec(I(i), S(pad)); err != nil {
			t.Fatal(err)
		}
	}
	manifest := checkpointPaged(t, db, pool)
	fi, err := os.Stat(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	if poolBytes := int64(frames) * pagefile.PageSize; fi.Size() < 4*poolBytes {
		t.Fatalf("page file %d bytes is not beyond-RAM for a %d-byte pool", fi.Size(), poolBytes)
	}

	back, err := LoadPaged(bytes.NewReader(manifest), pool)
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, back, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != rows {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	for _, probe := range []int64{0, rows / 2, rows - 1} {
		res = mustQuery(t, back, "SELECT s FROM t WHERE i = ?", I(probe))
		if len(res.Rows) != 1 || res.Rows[0][0].Text() != pad {
			t.Fatalf("probe %d wrong", probe)
		}
	}
	st := pool.Stats()
	if st.Resident > int64(st.Capacity) {
		t.Fatalf("resident frames %d exceed capacity %d", st.Resident, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite beyond-RAM workload")
	}
	if problems := back.CheckIntegrity(); len(problems) > 0 {
		t.Fatalf("integrity: %v", problems)
	}
}
