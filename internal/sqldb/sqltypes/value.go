// Package sqltypes defines the value and type system shared by every layer of
// the relational engine: storage, indexing, expression evaluation and query
// results. Values are small immutable variants; the package also provides an
// order-preserving byte encoding used for index keys.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies a column or value type.
type Type uint8

// The supported SQL types.
const (
	Null Type = iota // the type of the NULL literal
	Int              // 64-bit signed integer
	Real             // 64-bit IEEE float
	Text             // UTF-8 string
	Blob             // raw bytes
	Bool             // boolean
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Real:
		return "REAL"
	case Text:
		return "TEXT"
	case Blob:
		return "BLOB"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps a SQL type name to a Type. It accepts the common aliases so
// that dumps from other systems load without editing.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return Int, nil
	case "REAL", "FLOAT", "DOUBLE":
		return Real, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return Text, nil
	case "BLOB", "BYTES", "BINARY", "VARBINARY":
		return Blob, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	default:
		return Null, fmt.Errorf("unknown type %q", s)
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64 // Int, Bool (0/1)
	f   float64
	s   string // Text
	b   []byte // Blob
}

// NewInt returns an Int value.
func NewInt(v int64) Value { return Value{typ: Int, i: v} }

// NewReal returns a Real value.
func NewReal(v float64) Value { return Value{typ: Real, f: v} }

// NewText returns a Text value.
func NewText(v string) Value { return Value{typ: Text, s: v} }

// NewBlob returns a Blob value. The slice is not copied; callers must not
// mutate it afterwards.
func NewBlob(v []byte) Value { return Value{typ: Blob, b: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{typ: Bool, i: i}
}

// NullValue returns the NULL value.
func NullValue() Value { return Value{} }

// Type reports the value's type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == Null }

// Int returns the integer payload. It panics if the value is not Int or Bool.
func (v Value) Int() int64 {
	if v.typ != Int && v.typ != Bool {
		panic(fmt.Sprintf("sqltypes: Int() on %s value", v.typ))
	}
	return v.i
}

// Real returns the float payload. Int values are widened.
func (v Value) Real() float64 {
	switch v.typ {
	case Real:
		return v.f
	case Int, Bool:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("sqltypes: Real() on %s value", v.typ))
	}
}

// Text returns the string payload. It panics if the value is not Text.
func (v Value) Text() string {
	if v.typ != Text {
		panic(fmt.Sprintf("sqltypes: Text() on %s value", v.typ))
	}
	return v.s
}

// Blob returns the bytes payload. It panics if the value is not Blob.
func (v Value) Blob() []byte {
	if v.typ != Blob {
		panic(fmt.Sprintf("sqltypes: Blob() on %s value", v.typ))
	}
	return v.b
}

// Bool returns the boolean payload. It panics if the value is not Bool.
func (v Value) Bool() bool {
	if v.typ != Bool {
		panic(fmt.Sprintf("sqltypes: Bool() on %s value", v.typ))
	}
	return v.i != 0
}

// String renders the value for display and EXPLAIN output.
func (v Value) String() string {
	switch v.typ {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Real:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Text:
		return v.s
	case Blob:
		return fmt.Sprintf("x'%x'", v.b)
	case Bool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal (quoting text).
func (v Value) SQLLiteral() string {
	switch v.typ {
	case Text:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.String()
	}
}

// numericRank orders types for cross-type numeric comparison.
func numeric(t Type) bool { return t == Int || t == Real || t == Bool }

// Compare orders two values. NULL sorts before everything; values of
// incomparable types order by type tag (a total order is required for
// sorting). Int/Real/Bool compare numerically.
func Compare(a, b Value) int {
	if a.typ == Null || b.typ == Null {
		switch {
		case a.typ == Null && b.typ == Null:
			return 0
		case a.typ == Null:
			return -1
		default:
			return 1
		}
	}
	if numeric(a.typ) && numeric(b.typ) {
		if a.typ == Real || b.typ == Real {
			af, bf := a.Real(), b.Real()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	if a.typ != b.typ {
		if a.typ < b.typ {
			return -1
		}
		return 1
	}
	switch a.typ {
	case Text:
		return strings.Compare(a.s, b.s)
	case Blob:
		return compareBytes(a.b, b.b)
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to type t when a lossless or conventional conversion
// exists (the conversions INSERT applies when a literal meets a column type).
func Coerce(v Value, t Type) (Value, error) {
	if v.typ == t || v.typ == Null {
		return v, nil
	}
	switch t {
	case Int:
		switch v.typ {
		case Real:
			if v.f == math.Trunc(v.f) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
				return NewInt(int64(v.f)), nil
			}
		case Bool:
			return NewInt(v.i), nil
		case Text:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return NewInt(i), nil
			}
		}
	case Real:
		switch v.typ {
		case Int, Bool:
			return NewReal(float64(v.i)), nil
		case Text:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return NewReal(f), nil
			}
		}
	case Text:
		return NewText(v.String()), nil
	case Blob:
		if v.typ == Text {
			return NewBlob([]byte(v.s)), nil
		}
	case Bool:
		switch v.typ {
		case Int:
			return NewBool(v.i != 0), nil
		}
	}
	return Value{}, fmt.Errorf("cannot coerce %s value %s to %s", v.typ, v, t)
}

// valueOverhead approximates the in-memory size of the Value struct itself
// (tag + three payload fields + string/slice headers, rounded up to cover
// allocator slack). Used by the query memory accountant.
const valueOverhead = 64

// Memory estimates the value's in-memory footprint in bytes: the struct
// plus any out-of-line text or blob payload.
func (v Value) Memory() int64 {
	n := int64(valueOverhead)
	switch v.typ {
	case Text:
		n += int64(len(v.s))
	case Blob:
		n += int64(len(v.b))
	}
	return n
}

// Row is a tuple of values.
type Row []Value

// Memory estimates the row's in-memory footprint in bytes (slice header
// plus every value). Used to charge query memory budgets when a row is
// materialized into a hash table, sort buffer or result set.
func (r Row) Memory() int64 {
	n := int64(24)
	for _, v := range r {
		n += v.Memory()
	}
	return n
}

// Clone returns a deep-enough copy of the row (blob payloads are shared; the
// engine treats value payloads as immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
