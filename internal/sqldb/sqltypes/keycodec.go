package sqltypes

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// This file implements the order-preserving byte encoding for index keys.
// EncodeKey(a) < EncodeKey(b) lexicographically iff Row a < Row b under
// column-wise Compare. The encoding is also self-delimiting, so composite
// keys are simple concatenations and prefix scans over a key prefix work.
//
// Layout per value: a one-byte type tag (chosen so NULL < numbers < text <
// blob < bool matches Compare's cross-type order for same-type columns;
// within an index all entries of a column have one type, so only the
// NULL-vs-non-NULL distinction matters in practice), followed by a payload:
//
//	NULL:  tag only
//	Int:   8 bytes big-endian with the sign bit flipped
//	Real:  8 bytes big-endian IEEE, sign-adjusted so byte order = numeric order
//	Text:  escaped bytes terminated by 0x00 0x01 (0x00 in data -> 0x00 0xFF)
//	Blob:  same escaping as Text
//	Bool:  one byte 0/1

const (
	tagNull byte = 0x05
	tagNum  byte = 0x10 // Int, Real and Bool share a tag so they compare numerically
	tagText byte = 0x20
	tagBlob byte = 0x30
)

// EncodeKey appends the order-preserving encoding of vals to dst and returns
// the extended slice.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = encodeKeyValue(dst, v)
	}
	return dst
}

func encodeKeyValue(dst []byte, v Value) []byte {
	switch v.typ {
	case Null:
		return append(dst, tagNull)
	case Int, Bool:
		dst = append(dst, tagNum)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		return append(dst, buf[:]...)
	case Real:
		dst = append(dst, tagNum)
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // positive: set sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case Text:
		dst = append(dst, tagText)
		return appendEscapedString(dst, v.s)
	case Blob:
		dst = append(dst, tagBlob)
		return appendEscaped(dst, v.b)
	default:
		panic(fmt.Sprintf("sqltypes: cannot key-encode %s", v.typ))
	}
}

// appendEscaped writes data with 0x00 escaped as 0x00 0xFF and a 0x00 0x01
// terminator. Lexicographic order of escaped forms equals order of raw forms,
// and a key that is a prefix of another sorts first. Zero-free runs (the
// overwhelmingly common case) are appended wholesale.
func appendEscaped(dst, data []byte) []byte {
	for len(data) > 0 {
		i := bytes.IndexByte(data, 0x00)
		if i < 0 {
			dst = append(dst, data...)
			break
		}
		dst = append(dst, data[:i]...)
		dst = append(dst, 0x00, 0xFF)
		data = data[i+1:]
	}
	return append(dst, 0x00, 0x01)
}

// appendEscapedString is appendEscaped for string payloads, avoiding the
// []byte conversion.
func appendEscapedString(dst []byte, s string) []byte {
	for len(s) > 0 {
		i := strings.IndexByte(s, 0x00)
		if i < 0 {
			dst = append(dst, s...)
			break
		}
		dst = append(dst, s[:i]...)
		dst = append(dst, 0x00, 0xFF)
		s = s[i+1:]
	}
	return append(dst, 0x00, 0x01)
}

// DecodeKey decodes n values from key, returning the values and the number of
// bytes consumed. It is the inverse of EncodeKey.
func DecodeKey(key []byte, n int) ([]Value, int, error) {
	vals := make([]Value, 0, n)
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(key) {
			return nil, 0, fmt.Errorf("key too short: want %d values, got %d", n, i)
		}
		tag := key[pos]
		pos++
		switch tag {
		case tagNull:
			vals = append(vals, NullValue())
		case tagNum:
			if pos+8 > len(key) {
				return nil, 0, fmt.Errorf("truncated numeric key")
			}
			u := binary.BigEndian.Uint64(key[pos : pos+8])
			pos += 8
			// Int and Real share a tag; keys round-trip as Int when the
			// stored column was Int. We cannot distinguish here, so numeric
			// keys decode as raw bits and callers that need exact values
			// decode through the column type with DecodeKeyTyped.
			vals = append(vals, NewInt(int64(u^(1<<63))))
		case tagText:
			raw, used, err := decodeEscaped(key[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			vals = append(vals, NewText(string(raw)))
		case tagBlob:
			raw, used, err := decodeEscaped(key[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			vals = append(vals, NewBlob(raw))
		default:
			return nil, 0, fmt.Errorf("bad key tag 0x%02x", tag)
		}
	}
	return vals, pos, nil
}

// DecodeKeyTyped decodes values of the given column types from key.
func DecodeKeyTyped(key []byte, types []Type) ([]Value, int, error) {
	vals, pos, err := DecodeKey(key, len(types))
	if err != nil {
		return nil, 0, err
	}
	for i, t := range types {
		if vals[i].IsNull() {
			continue
		}
		switch t {
		case Real:
			if vals[i].typ == Int {
				stored := uint64(vals[i].i) ^ (1 << 63) // raw stored bytes
				var bits uint64
				if stored&(1<<63) != 0 {
					bits = stored ^ (1 << 63) // was positive: sign bit had been set
				} else {
					bits = ^stored // was negative: all bits had been flipped
				}
				vals[i] = NewReal(math.Float64frombits(bits))
			}
		case Bool:
			if vals[i].typ == Int {
				vals[i] = NewBool(vals[i].i != 0)
			}
		}
	}
	return vals, pos, nil
}

func decodeEscaped(data []byte) (raw []byte, used int, err error) {
	out := make([]byte, 0, len(data))
	i := 0
	for i < len(data) {
		b := data[i]
		if b != 0x00 {
			out = append(out, b)
			i++
			continue
		}
		if i+1 >= len(data) {
			return nil, 0, fmt.Errorf("truncated escaped key")
		}
		switch data[i+1] {
		case 0x01:
			return out, i + 2, nil
		case 0xFF:
			out = append(out, 0x00)
			i += 2
		default:
			return nil, 0, fmt.Errorf("bad escape 0x00 0x%02x", data[i+1])
		}
	}
	return nil, 0, fmt.Errorf("unterminated escaped key")
}

// PrefixSuccessor returns the smallest byte string greater than every string
// having prefix p, or nil when no such string exists (p is all 0xFF). It is
// used to turn prefix scans into [p, successor) range scans.
func PrefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}
