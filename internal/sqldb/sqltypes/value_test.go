package sqltypes

import (
	"math"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Null: "NULL", Int: "INT", Real: "REAL", Text: "TEXT", Blob: "BLOB", Bool: "BOOL",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": Int, "INTEGER": Int, "BIGINT": Int,
		"real": Real, "DOUBLE": Real,
		"text": Text, "VARCHAR": Text,
		"blob": Blob, "BOOL": Bool,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("FROB"); err == nil {
		t.Error("ParseType(FROB) succeeded, want error")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d", got)
	}
	if got := NewReal(2.5).Real(); got != 2.5 {
		t.Errorf("Real() = %g", got)
	}
	if got := NewInt(3).Real(); got != 3 {
		t.Errorf("Int widened Real() = %g", got)
	}
	if got := NewText("hi").Text(); got != "hi" {
		t.Errorf("Text() = %q", got)
	}
	if got := NewBlob([]byte{1, 2}).Blob(); len(got) != 2 {
		t.Errorf("Blob() = %v", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool() roundtrip failed")
	}
	if !NullValue().IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misreports")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on Text", func() { NewText("x").Int() })
	mustPanic("Text on Int", func() { NewInt(1).Text() })
	mustPanic("Blob on Text", func() { NewText("x").Blob() })
	mustPanic("Bool on Int", func() { NewInt(1).Bool() })
	mustPanic("Real on Text", func() { NewText("x").Real() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewReal(1.5), NewInt(2), -1},
		{NewInt(2), NewReal(1.5), 1},
		{NewReal(2), NewInt(2), 0},
		{NullValue(), NewInt(-100), -1},
		{NewInt(-100), NullValue(), 1},
		{NullValue(), NullValue(), 0},
		{NewText("abc"), NewText("abd"), -1},
		{NewText("abc"), NewText("abc"), 0},
		{NewBlob([]byte{1}), NewBlob([]byte{1, 0}), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(1), 0}, // bool compares numerically
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	ok := []struct {
		in   Value
		t    Type
		want Value
	}{
		{NewText("42"), Int, NewInt(42)},
		{NewText(" 42 "), Int, NewInt(42)},
		{NewReal(3), Int, NewInt(3)},
		{NewInt(3), Real, NewReal(3)},
		{NewText("2.5"), Real, NewReal(2.5)},
		{NewInt(7), Text, NewText("7")},
		{NewText("ab"), Blob, NewBlob([]byte("ab"))},
		{NewInt(0), Bool, NewBool(false)},
		{NewInt(5), Bool, NewBool(true)},
		{NullValue(), Int, NullValue()},
	}
	for _, c := range ok {
		got, err := Coerce(c.in, c.t)
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.t, err)
			continue
		}
		if !Equal(got, c.want) || got.Type() != c.want.Type() {
			t.Errorf("Coerce(%v, %v) = %v (%v), want %v", c.in, c.t, got, got.Type(), c.want)
		}
	}
	bad := []struct {
		in Value
		t  Type
	}{
		{NewText("xyz"), Int},
		{NewReal(2.5), Int},
		{NewReal(math.Inf(1)), Int},
		{NewText("x"), Bool},
	}
	for _, c := range bad {
		if _, err := Coerce(c.in, c.t); err == nil {
			t.Errorf("Coerce(%v, %v) succeeded, want error", c.in, c.t)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "NULL"},
		{NewInt(-5), "-5"},
		{NewReal(2.5), "2.5"},
		{NewText("hi"), "hi"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewBlob([]byte{0xab}), "x'ab'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Type(), got, c.want)
		}
	}
	if got := NewText("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestRowCloneAndString(t *testing.T) {
	r := Row{NewInt(1), NewText("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone aliased the original")
	}
	if got := r.String(); got != "(1, x)" {
		t.Errorf("Row.String() = %q", got)
	}
}
