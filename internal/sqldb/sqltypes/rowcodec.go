package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the storage encoding for heap rows: compact,
// length-prefixed, not order-preserving. Each value is a type byte followed
// by a payload; integers use varints.

const (
	rowNull byte = 0
	rowInt  byte = 1
	rowReal byte = 2
	rowText byte = 3
	rowBlob byte = 4
	rowBool byte = 5
)

// EncodeRow appends the storage encoding of r to dst.
func EncodeRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		switch v.typ {
		case Null:
			dst = append(dst, rowNull)
		case Int:
			dst = append(dst, rowInt)
			dst = binary.AppendVarint(dst, v.i)
		case Real:
			dst = append(dst, rowReal)
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
			dst = append(dst, buf[:]...)
		case Text:
			dst = append(dst, rowText)
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case Blob:
			dst = append(dst, rowBlob)
			dst = binary.AppendUvarint(dst, uint64(len(v.b)))
			dst = append(dst, v.b...)
		case Bool:
			dst = append(dst, rowBool)
			dst = append(dst, byte(v.i))
		default:
			panic(fmt.Sprintf("sqltypes: cannot row-encode %s", v.typ))
		}
	}
	return dst
}

// DecodeRow decodes a row previously produced by EncodeRow. Text and Blob
// payloads are copied out of data, so the result does not alias the input.
func DecodeRow(data []byte) (Row, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("bad row header")
	}
	pos := used
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("truncated row: value %d of %d", i, n)
		}
		tag := data[pos]
		pos++
		switch tag {
		case rowNull:
			row = append(row, NullValue())
		case rowInt:
			v, used := binary.Varint(data[pos:])
			if used <= 0 {
				return nil, fmt.Errorf("bad int at value %d", i)
			}
			pos += used
			row = append(row, NewInt(v))
		case rowReal:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("truncated real at value %d", i)
			}
			bits := binary.LittleEndian.Uint64(data[pos : pos+8])
			pos += 8
			row = append(row, NewReal(math.Float64frombits(bits)))
		case rowText:
			l, used := binary.Uvarint(data[pos:])
			if used <= 0 || pos+used+int(l) > len(data) {
				return nil, fmt.Errorf("bad text at value %d", i)
			}
			pos += used
			row = append(row, NewText(string(data[pos:pos+int(l)])))
			pos += int(l)
		case rowBlob:
			l, used := binary.Uvarint(data[pos:])
			if used <= 0 || pos+used+int(l) > len(data) {
				return nil, fmt.Errorf("bad blob at value %d", i)
			}
			pos += used
			b := make([]byte, l)
			copy(b, data[pos:pos+int(l)])
			pos += int(l)
			row = append(row, NewBlob(b))
		case rowBool:
			if pos >= len(data) {
				return nil, fmt.Errorf("truncated bool at value %d", i)
			}
			row = append(row, NewBool(data[pos] != 0))
			pos++
		default:
			return nil, fmt.Errorf("bad row tag 0x%02x at value %d", tag, i)
		}
	}
	return row, nil
}
