package sqltypes

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randValue draws a random value covering every type, with adversarial
// content for strings/blobs (embedded zero bytes, shared prefixes).
func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return NullValue()
	case 1:
		return NewInt(r.Int63() - r.Int63())
	case 2:
		f := math.Float64frombits(r.Uint64())
		for math.IsNaN(f) {
			f = math.Float64frombits(r.Uint64())
		}
		return NewReal(f)
	case 3:
		return NewText(randBytesString(r))
	case 4:
		return NewBlob([]byte(randBytesString(r)))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

func randBytesString(r *rand.Rand) string {
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		// Bias toward 0x00, 0xFF and 'a' to stress escaping and prefixes.
		switch r.Intn(4) {
		case 0:
			b[i] = 0x00
		case 1:
			b[i] = 0xFF
		case 2:
			b[i] = 'a'
		default:
			b[i] = byte(r.Intn(256))
		}
	}
	return string(b)
}

// sameTypeRandRow draws rows whose i-th values share a type, as within an
// index column.
func randTypedRows(r *rand.Rand, width int) (Row, Row, []Type) {
	types := make([]Type, width)
	a := make(Row, width)
	b := make(Row, width)
	for i := range types {
		types[i] = Type(1 + r.Intn(5)) // Int..Bool
		gen := func() Value {
			if r.Intn(8) == 0 {
				return NullValue()
			}
			switch types[i] {
			case Int:
				return NewInt(int64(r.Intn(64) - 32))
			case Real:
				return NewReal(float64(r.Intn(64)-32) / 4)
			case Text:
				return NewText(randBytesString(r))
			case Blob:
				return NewBlob([]byte(randBytesString(r)))
			default:
				return NewBool(r.Intn(2) == 0)
			}
		}
		a[i], b[i] = gen(), gen()
	}
	return a, b, types
}

func compareRows(a, b Row) int {
	for i := range a {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Property: key encoding preserves row order.
func TestKeyEncodingOrderProperty(t *testing.T) {
	f := func(seed int64, width8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + int(width8%4)
		a, b, _ := randTypedRows(r, width)
		ka := EncodeKey(nil, a...)
		kb := EncodeKey(nil, b...)
		return sign(bytes.Compare(ka, kb)) == sign(compareRows(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Property: typed key decode round-trips.
func TestKeyRoundTripProperty(t *testing.T) {
	f := func(seed int64, width8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		width := 1 + int(width8%4)
		a, _, types := randTypedRows(r, width)
		key := EncodeKey(nil, a...)
		got, used, err := DecodeKeyTyped(key, types)
		if err != nil || used != len(key) {
			return false
		}
		for i := range a {
			if Compare(got[i], a[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestKeyCompositePrefix(t *testing.T) {
	// A composite key must sort by first column, then second.
	k1 := EncodeKey(nil, NewText("ab"), NewInt(9))
	k2 := EncodeKey(nil, NewText("ab"), NewInt(10))
	k3 := EncodeKey(nil, NewText("b"), NewInt(0))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Errorf("composite order broken: %x %x %x", k1, k2, k3)
	}
	// Prefix of a composite key is a byte prefix.
	p := EncodeKey(nil, NewText("ab"))
	if !bytes.HasPrefix(k1, p) {
		t.Error("column prefix is not a byte prefix")
	}
}

func TestKeyRealEdgeCases(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -0.5, 0, 0.5, 1, 1e300, math.Inf(1)}
	var prev []byte
	for i, f := range vals {
		k := EncodeKey(nil, NewReal(f))
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Errorf("real order broken at %g", f)
		}
		got, _, err := DecodeKeyTyped(k, []Type{Real})
		if err != nil || got[0].Real() != f {
			t.Errorf("real round trip %g -> %v, %v", f, got, err)
		}
		prev = k
	}
	// -0.0 and +0.0 must compare equal numerically.
	kneg := EncodeKey(nil, NewReal(math.Copysign(0, -1)))
	kpos := EncodeKey(nil, NewReal(0))
	if bytes.Compare(kneg, kpos) >= 0 {
		t.Error("-0.0 must sort before +0.0 in byte form (distinct bit patterns)")
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	if _, _, err := DecodeKey([]byte{}, 1); err == nil {
		t.Error("empty key decoded")
	}
	if _, _, err := DecodeKey([]byte{tagNum, 1, 2}, 1); err == nil {
		t.Error("truncated numeric decoded")
	}
	if _, _, err := DecodeKey([]byte{tagText, 'a'}, 1); err == nil {
		t.Error("unterminated text decoded")
	}
	if _, _, err := DecodeKey([]byte{tagText, 0x00, 0x02}, 1); err == nil {
		t.Error("bad escape decoded")
	}
	if _, _, err := DecodeKey([]byte{0x77}, 1); err == nil {
		t.Error("bad tag decoded")
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		got := PrefixSuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	// Successor must bound exactly the prefix range.
	p := []byte{5, 0xFF}
	s := PrefixSuccessor(p)
	inRange := [][]byte{{5, 0xFF}, {5, 0xFF, 0}, {5, 0xFF, 0xFF, 0xFF}}
	for _, k := range inRange {
		if !(bytes.Compare(k, p) >= 0 && bytes.Compare(k, s) < 0) {
			t.Errorf("key %x not in [%x, %x)", k, p, s)
		}
	}
	if bytes.Compare([]byte{6, 0}, s) < 0 {
		t.Errorf("key outside prefix fell inside range")
	}
}

// Property: row codec round-trips arbitrary rows.
func TestRowCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8 % 10)
		row := make(Row, n)
		for i := range row {
			row[i] = randValue(r)
		}
		data := EncodeRow(nil, row)
		got, err := DecodeRow(data)
		if err != nil || len(got) != len(row) {
			return false
		}
		for i := range row {
			if row[i].Type() != got[i].Type() || Compare(row[i], got[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	bad := [][]byte{
		{},                 // no header
		{2, rowInt},        // missing payload
		{1, rowReal, 1, 2}, // truncated real
		{1, rowText, 5, 'a'},
		{1, rowBlob, 200},
		{1, rowBool},
		{1, 0x63},
	}
	for _, d := range bad {
		if _, err := DecodeRow(d); err == nil {
			t.Errorf("DecodeRow(%x) succeeded, want error", d)
		}
	}
}

func TestDecodeRowNoAlias(t *testing.T) {
	row := Row{NewBlob([]byte{1, 2, 3})}
	data := EncodeRow(nil, row)
	got, err := DecodeRow(data)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] = 99 // mutate buffer
	if !reflect.DeepEqual(got[0].Blob(), []byte{1, 2, 3}) {
		t.Error("decoded blob aliases the input buffer")
	}
}
