package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ordxml/internal/sqldb/sqltypes"
)

// concurrentFixture builds a table big enough to clear the parallel planner
// threshold, with every row's v column set to 0.
func concurrentFixture(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	batch := make([]sqltypes.Row, rows)
	for i := range batch {
		batch[i] = sqltypes.Row{I(int64(i)), I(0)}
	}
	if _, err := db.BulkInsert("t", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestReaderRunsWhileWriteLockHeld is the no-store-wide-lock acceptance
// test: a reader must complete while the engine's write lock is held for the
// whole duration of the read. Holding db.mu directly stands in for the
// longest possible mutation.
func TestReaderRunsWhileWriteLockHeld(t *testing.T) {
	db := concurrentFixture(t, 100)

	db.mu.Lock()
	done := make(chan error, 1)
	go func() {
		res, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err == nil && res.Rows[0][0].Int() != 100 {
			err = fmt.Errorf("count = %d, want 100", res.Rows[0][0].Int())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read under held write lock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked behind the write lock")
	}
	db.mu.Unlock()
}

// TestSnapshotReadsAreNotTorn drives one writer that atomically rewrites
// every row's v to the same new value (one UPDATE statement = one published
// view) against concurrent readers asserting MIN(v) == MAX(v). A reader that
// mixed pages from different versions would observe a torn pair. Runs with
// parallelism enabled so the parallel scan path reads snapshots too.
func TestSnapshotReadsAreNotTorn(t *testing.T) {
	const rows = 4096
	db := concurrentFixture(t, rows)
	db.SetParallelism(4)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(1); !stop.Load(); k++ {
			if _, err := db.Exec(`UPDATE t SET v = ?`, I(k)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	readers := 4
	var rg sync.WaitGroup
	rg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				res, err := db.Query(`SELECT MIN(v), MAX(v), COUNT(*) FROM t`)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				lo, hi, n := res.Rows[0][0].Int(), res.Rows[0][1].Int(), res.Rows[0][2].Int()
				if lo != hi {
					t.Errorf("torn read: min v=%d, max v=%d", lo, hi)
					return
				}
				if n != rows {
					t.Errorf("row count %d, want %d", n, rows)
					return
				}
			}
		}()
	}
	rg.Wait()
	stop.Store(true)
	wg.Wait()
}

// TestSnapshotRepeatableRead pins a Snap and checks it keeps serving the
// version it was taken at while the live view moves on.
func TestSnapshotRepeatableRead(t *testing.T) {
	db := concurrentFixture(t, 10)

	snap := db.Snapshot()
	mustExec(t, db, `UPDATE t SET v = 7`)

	res, err := snap.Query(`SELECT MAX(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 0 {
		t.Errorf("pinned snapshot saw v=%d, want 0", got)
	}
	res, err = db.Query(`SELECT MAX(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 7 {
		t.Errorf("live view saw v=%d, want 7", got)
	}

	// Prepared statements pin the same way.
	stmt, err := db.Prepare(`SELECT MIN(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = stmt.QueryAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 0 {
		t.Errorf("prepared QueryAt saw v=%d, want 0", got)
	}
}

// TestSnapshotSeesDDL checks version-keyed plans across concurrent DDL: a
// query planned before an index drop must not reuse the dropped index's
// plan after the version bump.
func TestSnapshotSeesDDL(t *testing.T) {
	db := concurrentFixture(t, 100)
	mustExec(t, db, `CREATE INDEX t_v ON t (v)`)
	q := `SELECT COUNT(*) FROM t WHERE v = 0`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
	mustExec(t, db, `DROP INDEX t_v`)
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 100 {
		t.Fatalf("count after drop = %d", res.Rows[0][0].Int())
	}
}

// TestSetParallelismInvalidatesPlans flips parallelism and checks cached
// plans are rebuilt with the new setting (the cache is keyed by version,
// which DDL bumps but SetParallelism does not — it must invalidate instead).
func TestSetParallelismInvalidatesPlans(t *testing.T) {
	db := concurrentFixture(t, 4096)
	q := `SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v`

	p, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p, "Gather") {
		t.Fatalf("serial plan already parallel:\n%s", p)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	db.SetParallelism(4)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	p, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "Gather workers=4") {
		t.Fatalf("plan not parallel after SetParallelism(4):\n%s", p)
	}

	db.SetParallelism(1)
	p, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p, "Gather") {
		t.Fatalf("plan still parallel after SetParallelism(1):\n%s", p)
	}
}

// TestAtomicallyPublishesOnce checks that mutations inside an Atomically
// window are invisible to readers until the window closes, then all appear
// in one published view.
func TestAtomicallyPublishesOnce(t *testing.T) {
	db := concurrentFixture(t, 8)

	inWindow := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- db.Atomically(func() error {
			if _, err := db.Exec(`UPDATE t SET v = 1 WHERE id = 0`); err != nil {
				return err
			}
			if _, err := db.Exec(`UPDATE t SET v = 1 WHERE id = 1`); err != nil {
				return err
			}
			close(inWindow)
			<-release
			return nil
		})
	}()

	<-inWindow
	res, err := db.Query(`SELECT SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 0 {
		t.Errorf("reader saw %d mid-window, want 0", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`SELECT SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Errorf("after window SUM(v) = %d, want 2", got)
	}

	// Nested windows publish at the outermost exit only — but they do
	// publish: the inner window's write must be visible afterwards.
	err = db.Atomically(func() error {
		return db.Atomically(func() error {
			_, err := db.Exec(`UPDATE t SET v = 7 WHERE id = 0`)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(`SELECT v FROM t WHERE id = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 7 {
		t.Errorf("after nested windows v = %d, want 7 (nested Atomically never published)", got)
	}
}
