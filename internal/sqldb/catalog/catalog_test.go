package catalog

import (
	"fmt"
	"strings"
	"testing"

	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

func newTestTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	tbl, err := c.CreateTable("users", []Column{
		{Name: "id", Type: sqltypes.Int, NotNull: true},
		{Name: "name", Type: sqltypes.Text},
		{Name: "age", Type: sqltypes.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func row(id int64, name string, age int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewText(name), sqltypes.NewInt(age)}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil); err == nil {
		t.Error("empty table created")
	}
	c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.Int}})
	if _, err := c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.Int}}); err == nil {
		t.Error("duplicate table created")
	}
	if _, err := c.CreateTable("u", []Column{
		{Name: "a", Type: sqltypes.Int}, {Name: "a", Type: sqltypes.Int},
	}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestInsertFetch(t *testing.T) {
	_, tbl := newTestTable(t)
	rid, err := tbl.Insert(row(1, "ann", 30))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Text() != "ann" || got[2].Int() != 30 {
		t.Fatalf("Fetch = %v", got)
	}
}

func TestInsertCoercionAndNotNull(t *testing.T) {
	_, tbl := newTestTable(t)
	// Text "42" coerces into INT column.
	rid, err := tbl.Insert(sqltypes.Row{sqltypes.NewText("42"), sqltypes.NewText("b"), sqltypes.NullValue()})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Fetch(rid)
	if got[0].Int() != 42 || !got[2].IsNull() {
		t.Fatalf("coerced row = %v", got)
	}
	// NULL into NOT NULL column.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NullValue(), sqltypes.NewText("x"), sqltypes.NewInt(1)}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	// Arity mismatch.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	// Bad coercion.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NewText("nope"), sqltypes.NewText("x"), sqltypes.NewInt(1)}); err == nil {
		t.Error("uncoercible value accepted")
	}
}

func TestUniqueIndex(t *testing.T) {
	c, tbl := newTestTable(t)
	if _, err := c.CreateIndex("users_pk", "users", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(row(1, "ann", 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(row(1, "bob", 40)); err == nil {
		t.Error("duplicate key accepted")
	}
	if tbl.RowCount() != 1 {
		t.Errorf("RowCount = %d after rejected insert", tbl.RowCount())
	}
	// Update to a conflicting key must fail, non-conflicting must pass.
	rid2, _ := tbl.Insert(row(2, "bob", 40))
	if _, err := tbl.Update(rid2, row(1, "bob", 40)); err == nil {
		t.Error("update to duplicate key accepted")
	}
	if _, err := tbl.Update(rid2, row(2, "bob", 41)); err != nil {
		t.Errorf("self-conflicting update rejected: %v", err)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	var rids []heap.RID
	for i := 0; i < 10; i++ {
		rid, _ := tbl.Insert(row(int64(i), fmt.Sprintf("u%d", i), int64(i%3)))
		rids = append(rids, rid)
	}
	if err := tbl.Delete(rids[4]); err != nil {
		t.Fatal(err)
	}
	count := 0
	tbl.IndexScan(ix, nil, nil, nil, false, false, func(heap.RID) bool { count++; return true })
	if count != 9 {
		t.Errorf("index has %d entries after delete, want 9", count)
	}
	if _, err := tbl.Fetch(rids[4]); err == nil {
		t.Error("deleted row still fetchable")
	}
}

func TestUpdateMovesIndexEntries(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	rid, _ := tbl.Insert(row(1, "ann", 30))
	nrid, err := tbl.Update(rid, row(1, "ann", 35))
	if err != nil {
		t.Fatal(err)
	}
	// Old key gone, new key present.
	for _, probe := range []struct {
		age  int64
		want int
	}{{30, 0}, {35, 1}} {
		count := 0
		v := sqltypes.NewInt(probe.age)
		tbl.IndexScan(ix, []sqltypes.Value{v}, nil, nil, false, false,
			func(got heap.RID) bool {
				if got != nrid {
					t.Errorf("index points at %v, row is at %v", got, nrid)
				}
				count++
				return true
			})
		if count != probe.want {
			t.Errorf("age=%d has %d entries, want %d", probe.age, count, probe.want)
		}
	}
}

func TestIndexScanRanges(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	for i := 0; i < 20; i++ {
		tbl.Insert(row(int64(i), "x", int64(i)))
	}
	collect := func(low, high *sqltypes.Value, lx, hx bool) []int64 {
		var ages []int64
		tbl.IndexScan(ix, nil, low, high, lx, hx, func(rid heap.RID) bool {
			r, _ := tbl.Fetch(rid)
			ages = append(ages, r[2].Int())
			return true
		})
		return ages
	}
	iv := func(i int64) *sqltypes.Value { v := sqltypes.NewInt(i); return &v }
	check := func(got []int64, from, to int64) {
		t.Helper()
		want := []int64{}
		for i := from; i <= to; i++ {
			want = append(want, i)
		}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
	check(collect(iv(5), iv(10), false, false), 5, 10)
	check(collect(iv(5), iv(10), true, false), 6, 10)
	check(collect(iv(5), iv(10), false, true), 5, 9)
	check(collect(iv(5), iv(10), true, true), 6, 9)
	check(collect(iv(15), nil, false, false), 15, 19)
	check(collect(nil, iv(3), false, false), 0, 3)
	check(collect(nil, nil, false, false), 0, 19)
}

func TestIndexScanEqualityPrefix(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.Int},
	})
	ix, _ := c.CreateIndex("ab", "t", []string{"a", "b"}, false)
	for a := 0; a < 3; a++ {
		for b := 0; b < 5; b++ {
			tbl.Insert(sqltypes.Row{sqltypes.NewInt(int64(a)), sqltypes.NewInt(int64(b))})
		}
	}
	// a=1 AND b in [2,3]
	lo, hi := sqltypes.NewInt(2), sqltypes.NewInt(3)
	var got [][2]int64
	tbl.IndexScan(ix, []sqltypes.Value{sqltypes.NewInt(1)}, &lo, &hi, false, false, func(rid heap.RID) bool {
		r, _ := tbl.Fetch(rid)
		got = append(got, [2]int64{r[0].Int(), r[1].Int()})
		return true
	})
	if len(got) != 2 || got[0] != [2]int64{1, 2} || got[1] != [2]int64{1, 3} {
		t.Fatalf("composite range scan = %v", got)
	}
}

func TestCreateIndexOnExistingData(t *testing.T) {
	c, tbl := newTestTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", int64(i)))
	}
	ix, err := c.CreateIndex("late", "users", []string{"id"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 10 {
		t.Errorf("backfilled index has %d entries", ix.Tree.Len())
	}
	// Backfill must detect uniqueness violations.
	tbl2, _ := c.CreateTable("dups", []Column{{Name: "v", Type: sqltypes.Int}})
	tbl2.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	tbl2.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	if _, err := c.CreateIndex("dup_ix", "dups", []string{"v"}, true); err == nil {
		t.Error("unique index built over duplicate data")
	}
}

func TestCreateIndexErrors(t *testing.T) {
	c, _ := newTestTable(t)
	if _, err := c.CreateIndex("i", "missing", []string{"id"}, false); err == nil {
		t.Error("index on missing table created")
	}
	if _, err := c.CreateIndex("i", "users", []string{"bogus"}, false); err == nil {
		t.Error("index on missing column created")
	}
	c.CreateIndex("i", "users", []string{"id"}, false)
	if _, err := c.CreateIndex("i", "users", []string{"age"}, false); err == nil {
		t.Error("duplicate index name accepted")
	}
}

func TestDropTableAndIndex(t *testing.T) {
	c, _ := newTestTable(t)
	c.CreateIndex("i", "users", []string{"id"}, false)
	if err := c.DropIndex("i"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("i"); err == nil {
		t.Error("double drop index succeeded")
	}
	if err := c.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if c.Table("users") != nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("users"); err == nil {
		t.Error("double drop table succeeded")
	}
}

func TestCounters(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	before := c.Counters.Snapshot()
	rid, _ := tbl.Insert(row(1, "a", 10))
	tbl.Insert(row(2, "b", 20))
	tbl.Update(rid, row(1, "a", 11))
	tbl.Scan(func(heap.RID, sqltypes.Row) bool { return true })
	tbl.IndexScan(ix, nil, nil, nil, false, false, func(heap.RID) bool { return true })
	d := c.Counters.Snapshot().Sub(before)
	if d.RowsInserted != 2 || d.RowsUpdated != 1 || d.RowsScanned != 2 || d.IndexProbes != 2 {
		t.Errorf("counter delta = %+v", d)
	}
}

func TestTableNames(t *testing.T) {
	c := New()
	c.CreateTable("zeta", []Column{{Name: "a", Type: sqltypes.Int}})
	c.CreateTable("alpha", []Column{{Name: "a", Type: sqltypes.Int}})
	got := strings.Join(c.TableNames(), ",")
	if got != "alpha,zeta" {
		t.Errorf("TableNames = %s", got)
	}
}

// bulkTable creates a table shaped like the node tables: a unique pkey plus
// a non-unique secondary whose keys arrive out of row order.
func bulkTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c, tbl := newTestTable(t)
	if _, err := c.CreateIndex("users_pkey", "users", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("users_name", "users", []string{"name"}, false); err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

// TestBulkInsertMatchesInsert: a bulk batch must leave table and indexes in
// the same observable state as row-at-a-time Insert, for both presorted and
// shuffled key orders.
func TestBulkInsertMatchesInsert(t *testing.T) {
	_, bulk := bulkTable(t)
	_, ref := bulkTable(t)

	const n = 500
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		// id ascending (presorted for the pkey), name descending (forces the
		// permutation-sort path on the secondary index).
		rows[i] = row(int64(i), fmt.Sprintf("name-%04d", n-i), int64(i%90))
	}
	rids, err := bulk.BulkInsert(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != n {
		t.Fatalf("got %d rids", len(rids))
	}
	for _, r := range rows {
		if _, err := ref.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	for _, tbl := range []*Table{bulk, ref} {
		if tbl.RowCount() != n {
			t.Fatalf("RowCount = %d", tbl.RowCount())
		}
	}
	// RIDs come back in row order and resolve to their rows.
	for i, rid := range rids {
		got, err := bulk.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Int() != int64(i) {
			t.Fatalf("rid %d fetches id %d", i, got[0].Int())
		}
	}
	// Both indexes agree with the reference table, in order.
	for _, ixName := range []string{"users_pkey", "users_name"} {
		var a, b []string
		scan := func(tbl *Table, out *[]string) {
			var ix *Index
			for _, cand := range tbl.Indexes {
				if cand.Name == ixName {
					ix = cand
				}
			}
			tbl.IndexScan(ix, nil, nil, nil, false, false, func(rid heap.RID) bool {
				r, err := tbl.Fetch(rid)
				if err != nil {
					t.Fatal(err)
				}
				*out = append(*out, fmt.Sprintf("%d|%s", r[0].Int(), r[1].Text()))
				return true
			})
		}
		scan(bulk, &a)
		scan(ref, &b)
		if len(a) != n || len(b) != n {
			t.Fatalf("%s: scans returned %d and %d entries", ixName, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s entry %d: %s != %s", ixName, i, a[i], b[i])
			}
		}
	}
}

// TestBulkInsertIntoPopulatedTable exercises the trickle path: the target
// indexes already hold rows, so the batch inserts key by key.
func TestBulkInsertIntoPopulatedTable(t *testing.T) {
	_, tbl := bulkTable(t)
	if _, err := tbl.Insert(row(1000, "pre", 1)); err != nil {
		t.Fatal(err)
	}
	rows := []sqltypes.Row{row(1, "a", 1), row(2, "b", 2), row(3, "c", 3)}
	if _, err := tbl.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 4 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	// Unique violation against the pre-existing row must reject the whole
	// batch.
	before := tbl.RowCount()
	if _, err := tbl.BulkInsert([]sqltypes.Row{row(50, "x", 0), row(1000, "dup", 0)}); err == nil {
		t.Fatal("duplicate against existing row succeeded")
	}
	if tbl.RowCount() != before {
		t.Fatalf("failed batch changed RowCount to %d", tbl.RowCount())
	}
}

// TestBulkInsertCoercion: bulk rows go through the same coercion and NOT
// NULL checks as Insert.
func TestBulkInsertCoercion(t *testing.T) {
	_, tbl := newTestTable(t)
	rows := []sqltypes.Row{
		{sqltypes.NewText("7"), sqltypes.NewText("seven"), sqltypes.NewInt(1)},
	}
	if _, err := tbl.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	var got int64
	tbl.Scan(func(_ heap.RID, r sqltypes.Row) bool { got = r[0].Int(); return true })
	if got != 7 {
		t.Fatalf("coerced id = %d", got)
	}
	if _, err := tbl.BulkInsert([]sqltypes.Row{{sqltypes.NullValue(), sqltypes.NewText("x"), sqltypes.NewInt(1)}}); err == nil {
		t.Fatal("NULL id accepted")
	}
	if _, err := tbl.BulkInsert([]sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewText("x")}}); err == nil {
		t.Fatal("short row accepted")
	}
}
