package catalog

import (
	"fmt"
	"strings"
	"testing"

	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

func newTestTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	tbl, err := c.CreateTable("users", []Column{
		{Name: "id", Type: sqltypes.Int, NotNull: true},
		{Name: "name", Type: sqltypes.Text},
		{Name: "age", Type: sqltypes.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl
}

func row(id int64, name string, age int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewText(name), sqltypes.NewInt(age)}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil); err == nil {
		t.Error("empty table created")
	}
	c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.Int}})
	if _, err := c.CreateTable("t", []Column{{Name: "a", Type: sqltypes.Int}}); err == nil {
		t.Error("duplicate table created")
	}
	if _, err := c.CreateTable("u", []Column{
		{Name: "a", Type: sqltypes.Int}, {Name: "a", Type: sqltypes.Int},
	}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestInsertFetch(t *testing.T) {
	_, tbl := newTestTable(t)
	rid, err := tbl.Insert(row(1, "ann", 30))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Text() != "ann" || got[2].Int() != 30 {
		t.Fatalf("Fetch = %v", got)
	}
}

func TestInsertCoercionAndNotNull(t *testing.T) {
	_, tbl := newTestTable(t)
	// Text "42" coerces into INT column.
	rid, err := tbl.Insert(sqltypes.Row{sqltypes.NewText("42"), sqltypes.NewText("b"), sqltypes.NullValue()})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Fetch(rid)
	if got[0].Int() != 42 || !got[2].IsNull() {
		t.Fatalf("coerced row = %v", got)
	}
	// NULL into NOT NULL column.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NullValue(), sqltypes.NewText("x"), sqltypes.NewInt(1)}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	// Arity mismatch.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	// Bad coercion.
	if _, err := tbl.Insert(sqltypes.Row{sqltypes.NewText("nope"), sqltypes.NewText("x"), sqltypes.NewInt(1)}); err == nil {
		t.Error("uncoercible value accepted")
	}
}

func TestUniqueIndex(t *testing.T) {
	c, tbl := newTestTable(t)
	if _, err := c.CreateIndex("users_pk", "users", []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(row(1, "ann", 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(row(1, "bob", 40)); err == nil {
		t.Error("duplicate key accepted")
	}
	if tbl.RowCount() != 1 {
		t.Errorf("RowCount = %d after rejected insert", tbl.RowCount())
	}
	// Update to a conflicting key must fail, non-conflicting must pass.
	rid2, _ := tbl.Insert(row(2, "bob", 40))
	if _, err := tbl.Update(rid2, row(1, "bob", 40)); err == nil {
		t.Error("update to duplicate key accepted")
	}
	if _, err := tbl.Update(rid2, row(2, "bob", 41)); err != nil {
		t.Errorf("self-conflicting update rejected: %v", err)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	var rids []heap.RID
	for i := 0; i < 10; i++ {
		rid, _ := tbl.Insert(row(int64(i), fmt.Sprintf("u%d", i), int64(i%3)))
		rids = append(rids, rid)
	}
	if err := tbl.Delete(rids[4]); err != nil {
		t.Fatal(err)
	}
	count := 0
	tbl.IndexScan(ix, nil, nil, nil, false, false, func(heap.RID) bool { count++; return true })
	if count != 9 {
		t.Errorf("index has %d entries after delete, want 9", count)
	}
	if _, err := tbl.Fetch(rids[4]); err == nil {
		t.Error("deleted row still fetchable")
	}
}

func TestUpdateMovesIndexEntries(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	rid, _ := tbl.Insert(row(1, "ann", 30))
	nrid, err := tbl.Update(rid, row(1, "ann", 35))
	if err != nil {
		t.Fatal(err)
	}
	// Old key gone, new key present.
	for _, probe := range []struct {
		age  int64
		want int
	}{{30, 0}, {35, 1}} {
		count := 0
		v := sqltypes.NewInt(probe.age)
		tbl.IndexScan(ix, []sqltypes.Value{v}, nil, nil, false, false,
			func(got heap.RID) bool {
				if got != nrid {
					t.Errorf("index points at %v, row is at %v", got, nrid)
				}
				count++
				return true
			})
		if count != probe.want {
			t.Errorf("age=%d has %d entries, want %d", probe.age, count, probe.want)
		}
	}
}

func TestIndexScanRanges(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	for i := 0; i < 20; i++ {
		tbl.Insert(row(int64(i), "x", int64(i)))
	}
	collect := func(low, high *sqltypes.Value, lx, hx bool) []int64 {
		var ages []int64
		tbl.IndexScan(ix, nil, low, high, lx, hx, func(rid heap.RID) bool {
			r, _ := tbl.Fetch(rid)
			ages = append(ages, r[2].Int())
			return true
		})
		return ages
	}
	iv := func(i int64) *sqltypes.Value { v := sqltypes.NewInt(i); return &v }
	check := func(got []int64, from, to int64) {
		t.Helper()
		want := []int64{}
		for i := from; i <= to; i++ {
			want = append(want, i)
		}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
	check(collect(iv(5), iv(10), false, false), 5, 10)
	check(collect(iv(5), iv(10), true, false), 6, 10)
	check(collect(iv(5), iv(10), false, true), 5, 9)
	check(collect(iv(5), iv(10), true, true), 6, 9)
	check(collect(iv(15), nil, false, false), 15, 19)
	check(collect(nil, iv(3), false, false), 0, 3)
	check(collect(nil, nil, false, false), 0, 19)
}

func TestIndexScanEqualityPrefix(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("t", []Column{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.Int},
	})
	ix, _ := c.CreateIndex("ab", "t", []string{"a", "b"}, false)
	for a := 0; a < 3; a++ {
		for b := 0; b < 5; b++ {
			tbl.Insert(sqltypes.Row{sqltypes.NewInt(int64(a)), sqltypes.NewInt(int64(b))})
		}
	}
	// a=1 AND b in [2,3]
	lo, hi := sqltypes.NewInt(2), sqltypes.NewInt(3)
	var got [][2]int64
	tbl.IndexScan(ix, []sqltypes.Value{sqltypes.NewInt(1)}, &lo, &hi, false, false, func(rid heap.RID) bool {
		r, _ := tbl.Fetch(rid)
		got = append(got, [2]int64{r[0].Int(), r[1].Int()})
		return true
	})
	if len(got) != 2 || got[0] != [2]int64{1, 2} || got[1] != [2]int64{1, 3} {
		t.Fatalf("composite range scan = %v", got)
	}
}

func TestCreateIndexOnExistingData(t *testing.T) {
	c, tbl := newTestTable(t)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "x", int64(i)))
	}
	ix, err := c.CreateIndex("late", "users", []string{"id"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 10 {
		t.Errorf("backfilled index has %d entries", ix.Tree.Len())
	}
	// Backfill must detect uniqueness violations.
	tbl2, _ := c.CreateTable("dups", []Column{{Name: "v", Type: sqltypes.Int}})
	tbl2.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	tbl2.Insert(sqltypes.Row{sqltypes.NewInt(1)})
	if _, err := c.CreateIndex("dup_ix", "dups", []string{"v"}, true); err == nil {
		t.Error("unique index built over duplicate data")
	}
}

func TestCreateIndexErrors(t *testing.T) {
	c, _ := newTestTable(t)
	if _, err := c.CreateIndex("i", "missing", []string{"id"}, false); err == nil {
		t.Error("index on missing table created")
	}
	if _, err := c.CreateIndex("i", "users", []string{"bogus"}, false); err == nil {
		t.Error("index on missing column created")
	}
	c.CreateIndex("i", "users", []string{"id"}, false)
	if _, err := c.CreateIndex("i", "users", []string{"age"}, false); err == nil {
		t.Error("duplicate index name accepted")
	}
}

func TestDropTableAndIndex(t *testing.T) {
	c, _ := newTestTable(t)
	c.CreateIndex("i", "users", []string{"id"}, false)
	if err := c.DropIndex("i"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("i"); err == nil {
		t.Error("double drop index succeeded")
	}
	if err := c.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if c.Table("users") != nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("users"); err == nil {
		t.Error("double drop table succeeded")
	}
}

func TestCounters(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	before := c.Counters.Snapshot()
	rid, _ := tbl.Insert(row(1, "a", 10))
	tbl.Insert(row(2, "b", 20))
	tbl.Update(rid, row(1, "a", 11))
	tbl.Scan(func(heap.RID, sqltypes.Row) bool { return true })
	tbl.IndexScan(ix, nil, nil, nil, false, false, func(heap.RID) bool { return true })
	d := c.Counters.Snapshot().Sub(before)
	if d.RowsInserted != 2 || d.RowsUpdated != 1 || d.RowsScanned != 2 || d.IndexProbes != 2 {
		t.Errorf("counter delta = %+v", d)
	}
}

func TestTableNames(t *testing.T) {
	c := New()
	c.CreateTable("zeta", []Column{{Name: "a", Type: sqltypes.Int}})
	c.CreateTable("alpha", []Column{{Name: "a", Type: sqltypes.Int}})
	got := strings.Join(c.TableNames(), ",")
	if got != "alpha,zeta" {
		t.Errorf("TableNames = %s", got)
	}
}
