package catalog

import (
	"sort"

	"ordxml/internal/sqldb/btree"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// TableData is a point-in-time readable view of one table's storage: either
// the live heap and trees (writer side, under the engine's write lock) or
// immutable copy-on-write snapshots (reader side, no lock). Query operators
// read rows exclusively through a TableData so the same operator tree serves
// both sides.
type TableData struct {
	t *Table
	// indexes is the table's index list captured at publish time; the live
	// t.Indexes may change under concurrent DDL.
	indexes []*Index
	heap    *heap.Snapshot // nil → read the live heap
	// trees maps each index to its snapshot; nil → read the live trees.
	trees map[*Index]*btree.Snapshot
}

// LiveData returns a TableData that reads the table's live storage. Only
// safe where table mutations are excluded (the engine's writer lock).
func LiveData(t *Table) *TableData { return &TableData{t: t} }

// snapshotData publishes immutable snapshots of the table's heap and index
// trees. Must run on the writer side; snapshots are cached by the storage
// layer, so an unchanged table costs a few pointer loads.
func (t *Table) snapshotData() *TableData {
	td := &TableData{t: t, indexes: t.Indexes, heap: t.Heap.Snapshot()}
	if len(t.Indexes) > 0 {
		td.trees = make(map[*Index]*btree.Snapshot, len(t.Indexes))
		for _, ix := range t.Indexes {
			td.trees[ix] = ix.Tree.Snapshot()
		}
	}
	return td
}

// Table returns the schema object this data belongs to.
func (td *TableData) Table() *Table { return td.t }

// Indexes returns the table's indexes as of this view. Callers must not
// mutate the slice.
func (td *TableData) Indexes() []*Index {
	if td.heap != nil {
		return td.indexes
	}
	return td.t.Indexes
}

// RowCount returns the number of live rows in the view.
func (td *TableData) RowCount() int {
	if td.heap != nil {
		return td.heap.Rows()
	}
	return td.t.RowCount()
}

// CanPartition reports whether the view supports page-range partitioned
// scans (only storage snapshots do; live storage is writer-side and serial).
func (td *TableData) CanPartition() bool { return td.heap != nil }

// Pages returns the number of heap pages, the partitioning domain for
// page-range parallel scans. Zero-parallelism callers need not check.
func (td *TableData) Pages() int {
	if td.heap != nil {
		return td.heap.Pages()
	}
	return td.t.Heap.Stats().Pages
}

// HeapStats returns heap occupancy for the view.
func (td *TableData) HeapStats() heap.Stats {
	if td.heap != nil {
		return td.heap.Stats()
	}
	return td.t.Heap.Stats()
}

// Fetch returns the decoded row at rid.
func (td *TableData) Fetch(rid heap.RID) (sqltypes.Row, error) {
	if td.heap == nil {
		return td.t.Fetch(rid)
	}
	data, err := td.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return sqltypes.DecodeRow(data)
}

// seekTree opens a range iterator on the index tree this view reads: the
// snapshot when the view holds one, the live tree otherwise. A snapshot view
// can only lack an index if the caller mixed schema versions, which
// version-keyed plans prevent.
func (td *TableData) seekTree(ix *Index, start, end []byte) *btree.Iterator {
	if td.trees != nil {
		if snap, ok := td.trees[ix]; ok {
			return snap.Seek(start, end)
		}
	}
	return ix.Tree.Seek(start, end)
}

// View is an immutable snapshot of a whole database: the schema objects at
// one catalog version plus a TableData snapshot per table. Readers obtain a
// View from an atomic pointer and then run entirely against it — planning,
// execution, serialization — with no lock held, while the writer keeps
// mutating the live catalog and republishing new Views.
type View struct {
	version uint64
	tables  map[string]*Table
	data    map[*Table]*TableData
}

// BuildView publishes the current catalog state as an immutable View. Must
// run on the writer side (it snapshots each table's storage); the returned
// View is safe for arbitrary concurrent use. Unchanged tables reuse their
// cached storage snapshots, so republishing after a small write is cheap.
func (c *Catalog) BuildView() *View {
	v := &View{
		version: c.version.Load(),
		tables:  c.tables,
		data:    make(map[*Table]*TableData, len(c.tables)),
	}
	for _, t := range c.tables {
		v.data[t] = t.snapshotData()
	}
	return v
}

// Version returns the catalog version the view was built at. Plans cached
// at the same version hold exactly the *Table pointers found in this view.
func (v *View) Version() uint64 { return v.version }

// Table returns the named table's schema object, or nil.
func (v *View) Table(name string) *Table { return v.tables[name] }

// TableNames returns all table names in the view, sorted.
func (v *View) TableNames() []string {
	names := make([]string, 0, len(v.tables))
	for n := range v.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Data returns the snapshot data for a table of this view. A nil *View is
// the writer-side "no snapshot" case: operators then read live storage.
func (v *View) Data(t *Table) *TableData {
	if v == nil {
		return LiveData(t)
	}
	if td, ok := v.data[t]; ok {
		return td
	}
	// Unreachable when plans are version-matched to the view; reading live
	// data is the conservative fallback for mixed-version callers.
	return LiveData(t)
}

// TableIndexes and TableRows let the planner consume either a live Catalog
// (writer side, DML replanning) or a published View (lock-free readers)
// through one interface.

// TableIndexes returns the indexes of t as of this view.
func (v *View) TableIndexes(t *Table) []*Index { return v.Data(t).Indexes() }

// TableRows returns the live row count of t as of this view.
func (v *View) TableRows(t *Table) int { return v.Data(t).RowCount() }

// TableIndexes returns the current indexes of t. Writer side only.
func (c *Catalog) TableIndexes(t *Table) []*Index { return t.Indexes }

// TableRows returns the current row count of t. Writer side only.
func (c *Catalog) TableRows(t *Table) int { return t.RowCount() }
