package catalog

import (
	"testing"

	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

func TestRowIterSnapshot(t *testing.T) {
	_, tbl := newTestTable(t)
	var rids []heap.RID
	for i := 0; i < 10; i++ {
		rid, _ := tbl.Insert(row(int64(i), "u", int64(i)))
		rids = append(rids, rid)
	}
	it := tbl.RowIter()
	// Delete a row after the snapshot: the iterator must skip it, not fail.
	if err := tbl.Delete(rids[5]); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		_, r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r[0].Int() == 5 {
			t.Error("iterator returned the deleted row")
		}
		seen++
	}
	if seen != 9 {
		t.Errorf("iterator saw %d rows, want 9", seen)
	}
	// Rows inserted after the snapshot are not seen.
	it2 := tbl.RowIter()
	tbl.Insert(row(100, "new", 1))
	count := 0
	for {
		_, _, ok, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 9 {
		t.Errorf("post-insert snapshot saw %d rows, want 9", count)
	}
}

func TestIndexIterRanges(t *testing.T) {
	c, tbl := newTestTable(t)
	ix, _ := c.CreateIndex("by_age", "users", []string{"age"}, false)
	for i := 0; i < 10; i++ {
		tbl.Insert(row(int64(i), "u", int64(i*2)))
	}
	collect := func(low, high *sqltypes.Value, lx, hx bool) []int64 {
		var out []int64
		it := tbl.IndexIter(ix, nil, low, high, lx, hx)
		for {
			rid, ok := it.Next()
			if !ok {
				break
			}
			r, _ := tbl.Fetch(rid)
			out = append(out, r[2].Int())
		}
		return out
	}
	iv := func(v int64) *sqltypes.Value { x := sqltypes.NewInt(v); return &x }
	got := collect(iv(4), iv(10), false, true)
	if len(got) != 3 || got[0] != 4 || got[2] != 8 {
		t.Errorf("range [4,10) = %v", got)
	}
	if got := collect(nil, nil, false, false); len(got) != 10 {
		t.Errorf("full scan = %v", got)
	}
	// Exclusive low skips duplicates of the bound value.
	tbl.Insert(row(100, "dup", 4))
	got = collect(iv(4), nil, true, false)
	for _, v := range got {
		if v == 4 {
			t.Errorf("exclusive low returned bound value: %v", got)
		}
	}
}
