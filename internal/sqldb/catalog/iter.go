package catalog

import (
	"ordxml/internal/sqldb/btree"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// RowIter is a pull iterator over all live rows of a table. It snapshots the
// RID list at creation, so callers that mutate the table while iterating see
// a stable view.
type RowIter struct {
	t    *Table
	rids []heap.RID
	pos  int
}

// RowIter returns an iterator over the table's rows in RID order.
func (t *Table) RowIter() *RowIter {
	it := &RowIter{t: t, rids: make([]heap.RID, 0, t.RowCount())}
	t.Heap.Scan(func(rid heap.RID, _ []byte) bool {
		it.rids = append(it.rids, rid)
		return true
	})
	return it
}

// Next returns the next row, or ok=false at the end. Rows deleted since the
// snapshot are skipped.
func (it *RowIter) Next() (heap.RID, sqltypes.Row, bool, error) {
	for it.pos < len(it.rids) {
		rid := it.rids[it.pos]
		it.pos++
		data, err := it.t.Heap.Get(rid)
		if err != nil {
			continue // deleted since snapshot
		}
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			return heap.RID{}, nil, false, err
		}
		it.t.counters.RowsScanned.Add(1)
		return rid, row, true, nil
	}
	return heap.RID{}, nil, false, nil
}

// IndexIter is a pull iterator over an index range.
type IndexIter struct {
	t  *Table
	it *btree.Iterator
}

// IndexIter returns a pull iterator with the same range semantics as
// IndexScan: an equality prefix over the leading index columns, then an
// optional range on the next column.
func (t *Table) IndexIter(ix *Index, eq []sqltypes.Value, low, high *sqltypes.Value, lowExcl, highExcl bool) *IndexIter {
	prefix := ix.prefixFor(eq)
	start := prefix
	var end []byte
	if low != nil {
		start = sqltypes.EncodeKey(append([]byte{}, prefix...), *low)
		if lowExcl {
			start = sqltypes.PrefixSuccessor(start)
		}
	}
	if high != nil {
		hk := sqltypes.EncodeKey(append([]byte{}, prefix...), *high)
		if highExcl {
			end = hk
		} else {
			end = sqltypes.PrefixSuccessor(hk)
		}
	} else {
		end = sqltypes.PrefixSuccessor(prefix)
	}
	return &IndexIter{t: t, it: ix.Tree.Seek(start, end)}
}

// Next returns the next matching RID, or ok=false at the end.
func (it *IndexIter) Next() (heap.RID, bool) {
	if !it.it.Valid() {
		return heap.RID{}, false
	}
	rid := it.it.RID()
	it.t.counters.IndexProbes.Add(1)
	it.it.Next()
	return rid, true
}
