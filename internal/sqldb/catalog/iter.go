package catalog

import (
	"ordxml/internal/sqldb/btree"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// RowIter is a pull iterator over all live rows of a table view. Over a
// storage snapshot it streams pages directly; over live storage it snapshots
// the RID list at creation, so callers that mutate the table while iterating
// see a stable view.
type RowIter struct {
	t  *Table
	it *heap.Iter // snapshot path
	// live path
	rids []heap.RID
	pos  int
}

// RowIter returns an iterator over the table's live rows in RID order.
func (t *Table) RowIter() *RowIter {
	it := &RowIter{t: t, rids: make([]heap.RID, 0, t.RowCount())}
	t.Heap.Scan(func(rid heap.RID, _ []byte) bool {
		it.rids = append(it.rids, rid)
		return true
	})
	return it
}

// RowIter returns an iterator over the view's rows in RID order.
func (td *TableData) RowIter() *RowIter {
	if td.heap != nil {
		return &RowIter{t: td.t, it: td.heap.Iter()}
	}
	return td.t.RowIter()
}

// RowIterRange returns an iterator over rows on heap pages [lo, hi) — one
// worker's share of a page-range partitioned parallel scan. Only snapshot
// views support it; parallel plans never run against live storage.
func (td *TableData) RowIterRange(lo, hi int) *RowIter {
	return &RowIter{t: td.t, it: td.heap.IterRange(lo, hi)}
}

// Next returns the next row, or ok=false at the end. Rows deleted since the
// snapshot are skipped.
func (it *RowIter) Next() (heap.RID, sqltypes.Row, bool, error) {
	if it.it != nil {
		rid, data, ok := it.it.Next()
		if !ok {
			return heap.RID{}, nil, false, nil
		}
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			return heap.RID{}, nil, false, err
		}
		it.t.counters.RowsScanned.Add(1)
		return rid, row, true, nil
	}
	for it.pos < len(it.rids) {
		rid := it.rids[it.pos]
		it.pos++
		data, err := it.t.Heap.Get(rid)
		if err != nil {
			continue // deleted since snapshot
		}
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			return heap.RID{}, nil, false, err
		}
		it.t.counters.RowsScanned.Add(1)
		return rid, row, true, nil
	}
	return heap.RID{}, nil, false, nil
}

// indexRange builds the [start, end) key range for an index scan: an
// equality prefix over the leading index columns, then an optional residual
// range on the next column (nil bounds are open).
func indexRange(ix *Index, eq []sqltypes.Value, low, high *sqltypes.Value, lowExcl, highExcl bool) (start, end []byte) {
	prefix := ix.prefixFor(eq)
	start = prefix
	if low != nil {
		start = sqltypes.EncodeKey(append([]byte{}, prefix...), *low)
		if lowExcl {
			// Skip all entries equal to low: successor of the encoded value
			// within this column (works because keys are self-delimiting).
			start = sqltypes.PrefixSuccessor(start)
		}
	}
	if high != nil {
		hk := sqltypes.EncodeKey(append([]byte{}, prefix...), *high)
		if highExcl {
			end = hk
		} else {
			end = sqltypes.PrefixSuccessor(hk)
		}
	} else {
		end = sqltypes.PrefixSuccessor(prefix)
	}
	return start, end
}

// IndexIter is a pull iterator over an index range.
type IndexIter struct {
	t  *Table
	it *btree.Iterator
}

// IndexIter returns a pull iterator with the same range semantics as
// IndexScan: an equality prefix over the leading index columns, then an
// optional range on the next column.
func (t *Table) IndexIter(ix *Index, eq []sqltypes.Value, low, high *sqltypes.Value, lowExcl, highExcl bool) *IndexIter {
	start, end := indexRange(ix, eq, low, high, lowExcl, highExcl)
	return &IndexIter{t: t, it: ix.Tree.Seek(start, end)}
}

// IndexIter returns a pull iterator over the view's index data with the same
// range semantics as Table.IndexIter.
func (td *TableData) IndexIter(ix *Index, eq []sqltypes.Value, low, high *sqltypes.Value, lowExcl, highExcl bool) *IndexIter {
	start, end := indexRange(ix, eq, low, high, lowExcl, highExcl)
	return &IndexIter{t: td.t, it: td.seekTree(ix, start, end)}
}

// Next returns the next matching RID, or ok=false at the end.
func (it *IndexIter) Next() (heap.RID, bool) {
	if !it.it.Valid() {
		return heap.RID{}, false
	}
	rid := it.it.RID()
	it.t.counters.IndexProbes.Add(1)
	it.it.Next()
	return rid, true
}
