// Package catalog holds the live schema objects of a database: tables with
// their heap storage, columns, and B+tree indexes. All row mutations go
// through Table methods so index maintenance and uniqueness enforcement live
// in one place. The catalog also maintains the work counters that the
// benchmark harness reads (rows scanned, index probes, rows written), which
// give a hardware-independent view of query and update cost.
package catalog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"ordxml/internal/sqldb/btree"
	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    sqltypes.Type
	NotNull bool
}

// Counters accumulates engine work. All fields are updated atomically; the
// benchmark harness snapshots them around operations to report logical cost
// independent of hardware.
type Counters struct {
	RowsScanned  atomic.Int64 // rows produced by sequential scans
	IndexProbes  atomic.Int64 // index entries visited by index scans/lookups
	RowsInserted atomic.Int64
	RowsDeleted  atomic.Int64
	RowsUpdated  atomic.Int64
	// HeapPageReads and BtreeNodeReads are the storage-layer access counters:
	// every table heap and index tree created through the catalog points its
	// read counter here, so page/node traffic aggregates per database.
	HeapPageReads  atomic.Int64
	BtreeNodeReads atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	RowsScanned    int64
	IndexProbes    int64
	RowsInserted   int64
	RowsDeleted    int64
	RowsUpdated    int64
	HeapPageReads  int64
	BtreeNodeReads int64
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		RowsScanned:    c.RowsScanned.Load(),
		IndexProbes:    c.IndexProbes.Load(),
		RowsInserted:   c.RowsInserted.Load(),
		RowsDeleted:    c.RowsDeleted.Load(),
		RowsUpdated:    c.RowsUpdated.Load(),
		HeapPageReads:  c.HeapPageReads.Load(),
		BtreeNodeReads: c.BtreeNodeReads.Load(),
	}
}

// Sub returns the per-field difference s - prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		RowsScanned:    s.RowsScanned - prev.RowsScanned,
		IndexProbes:    s.IndexProbes - prev.IndexProbes,
		RowsInserted:   s.RowsInserted - prev.RowsInserted,
		RowsDeleted:    s.RowsDeleted - prev.RowsDeleted,
		RowsUpdated:    s.RowsUpdated - prev.RowsUpdated,
		HeapPageReads:  s.HeapPageReads - prev.HeapPageReads,
		BtreeNodeReads: s.BtreeNodeReads - prev.BtreeNodeReads,
	}
}

// Index is a live secondary (or primary) index.
type Index struct {
	Name    string
	Table   *Table
	Columns []int // positions into Table.Columns
	Unique  bool
	Tree    *btree.Tree
}

// ColumnNames returns the indexed column names in order.
func (ix *Index) ColumnNames() []string {
	out := make([]string, len(ix.Columns))
	for i, c := range ix.Columns {
		out[i] = ix.Table.Columns[c].Name
	}
	return out
}

// keyFor builds the B+tree key for row at rid: the order-preserving encoding
// of the indexed columns, suffixed with the RID for non-unique indexes so
// duplicate column values remain distinct tree keys.
func (ix *Index) keyFor(row sqltypes.Row, rid heap.RID) []byte {
	key := make([]byte, 0, 32)
	for _, c := range ix.Columns {
		key = sqltypes.EncodeKey(key, row[c])
	}
	if !ix.Unique {
		key = AppendRID(key, rid)
	}
	return key
}

// prefixFor builds the column-value part of the key only (for lookups).
func (ix *Index) prefixFor(vals []sqltypes.Value) []byte {
	key := make([]byte, 0, 32)
	for _, v := range vals {
		key = sqltypes.EncodeKey(key, v)
	}
	return key
}

// AppendRID appends the fixed-width big-endian encoding of rid to key.
func AppendRID(key []byte, rid heap.RID) []byte {
	var buf [6]byte
	binary.BigEndian.PutUint32(buf[0:4], rid.Page)
	binary.BigEndian.PutUint16(buf[4:6], rid.Slot)
	return append(key, buf[:]...)
}

// DecodeRIDSuffix reads the RID from the last 6 bytes of a non-unique key.
func DecodeRIDSuffix(key []byte) heap.RID {
	n := len(key)
	return heap.RID{
		Page: binary.BigEndian.Uint32(key[n-6 : n-2]),
		Slot: binary.BigEndian.Uint16(key[n-2:]),
	}
}

// Table is a live table: schema plus heap storage plus indexes.
type Table struct {
	Name    string
	Columns []Column
	Heap    *heap.Heap
	Indexes []*Index

	counters *Counters
	colIdx   map[string]int
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// ColumnTypes returns the column types in declaration order.
func (t *Table) ColumnTypes() []sqltypes.Type {
	out := make([]sqltypes.Type, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Type
	}
	return out
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.Heap.Stats().Rows }

// checkRow validates arity, coerces values to column types and enforces
// NOT NULL. When no value needs coercion (the common case for rows built by
// the XML layer) the input row is returned as-is, copy-free; callers must not
// mutate the result.
func (t *Table) checkRow(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != len(t.Columns) {
		return nil, fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(row), len(t.Columns))
	}
	out := row
	copied := false
	for i, v := range row {
		if v.IsNull() {
			if t.Columns[i].NotNull {
				return nil, fmt.Errorf("table %s column %s: NULL violates NOT NULL", t.Name, t.Columns[i].Name)
			}
			continue
		}
		if v.Type() == t.Columns[i].Type {
			continue
		}
		cv, err := sqltypes.Coerce(v, t.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("table %s column %s: %w", t.Name, t.Columns[i].Name, err)
		}
		if !copied {
			out = append(sqltypes.Row(nil), row...)
			copied = true
		}
		out[i] = cv
	}
	return out, nil
}

// Insert validates and stores row, maintaining every index.
func (t *Table) Insert(row sqltypes.Row) (heap.RID, error) {
	row, err := t.checkRow(row)
	if err != nil {
		return heap.RID{}, err
	}
	// Check unique constraints before touching storage.
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		key := ix.keyFor(row, heap.RID{})
		if _, exists := ix.Tree.Get(key); exists {
			return heap.RID{}, fmt.Errorf("unique index %s: duplicate key %s", ix.Name, describeKey(ix, row))
		}
	}
	rid, err := t.Heap.Insert(sqltypes.EncodeRow(nil, row))
	if err != nil {
		return heap.RID{}, err
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.keyFor(row, rid), rid); err != nil {
			// Unique violation was pre-checked; any error here is corruption.
			panic(fmt.Sprintf("catalog: index %s insert: %v", ix.Name, err))
		}
	}
	t.counters.RowsInserted.Add(1)
	return rid, nil
}

// BulkInsert validates and stores a batch of rows: every row is checked
// (arity, types, NOT NULL, uniqueness — against the table and within the
// batch) before any storage is touched, so an error leaves the table
// unchanged. Rows go to the heap through one batch append, and each index is
// maintained with one sorted pass — bulk-built bottom-up when the index is
// empty, sorted inserts otherwise. Returns the RIDs in row order.
func (t *Table) BulkInsert(rows []sqltypes.Row) ([]heap.RID, error) {
	n := len(rows)
	if n == 0 {
		return nil, nil
	}
	checked := make([]sqltypes.Row, n)
	for i, row := range rows {
		cr, err := t.checkRow(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i+1, err)
		}
		checked[i] = cr
	}

	// Build every index key up front, arena-backed (one allocation per batch
	// instead of one per key). Non-unique keys get a zeroed RID-suffix
	// placeholder patched after the heap append; because the key encoding is
	// self-delimiting, placeholder keys compare exactly like patched ones
	// except on full-prefix ties, which the real RIDs (ascending in row
	// order) then break. Each index records whether its keys already arrive
	// in tree order — true for the (doc,id) and document-order indexes fed by
	// the shredder's pre-order walk — and a sort permutation otherwise.
	type ixBuild struct {
		keys [][]byte
		perm []int // nil when keys are already sorted in row order
	}
	builds := make([]ixBuild, len(t.Indexes))
	arena := make([]byte, 0, 24*n*max(len(t.Indexes), 1))
	allKeys := make([][]byte, len(t.Indexes)*n)
	for xi, ix := range t.Indexes {
		keys := allKeys[xi*n : (xi+1)*n : (xi+1)*n]
		sorted := true
		for i, row := range checked {
			start := len(arena)
			for _, c := range ix.Columns {
				arena = sqltypes.EncodeKey(arena, row[c])
			}
			if !ix.Unique {
				arena = AppendRID(arena, heap.RID{})
			}
			keys[i] = arena[start:len(arena):len(arena)]
			if i > 0 && sorted {
				cmp := bytes.Compare(keys[i-1], keys[i])
				if cmp > 0 {
					sorted = false
				} else if cmp == 0 && ix.Unique {
					return nil, fmt.Errorf("unique index %s: duplicate key %s within batch", ix.Name, describeKey(ix, row))
				}
			}
		}
		b := ixBuild{keys: keys}
		if !sorted {
			b.perm = make([]int, n)
			for i := range b.perm {
				b.perm[i] = i
			}
			// Ties break by row order so patched RID suffixes stay ascending.
			slices.SortFunc(b.perm, func(i, j int) int {
				if c := bytes.Compare(keys[i], keys[j]); c != 0 {
					return c
				}
				return i - j
			})
			if ix.Unique {
				for i := 1; i < n; i++ {
					if bytes.Equal(keys[b.perm[i-1]], keys[b.perm[i]]) {
						return nil, fmt.Errorf("unique index %s: duplicate key %s within batch", ix.Name, describeKey(ix, checked[b.perm[i]]))
					}
				}
			}
		}
		if ix.Unique && ix.Tree.Len() > 0 {
			for i, key := range keys {
				if _, exists := ix.Tree.Get(key); exists {
					return nil, fmt.Errorf("unique index %s: duplicate key %s", ix.Name, describeKey(ix, checked[i]))
				}
			}
		}
		builds[xi] = b
	}

	payloads := make([][]byte, n)
	rowArena := make([]byte, 0, 48*n)
	for i, row := range checked {
		start := len(rowArena)
		rowArena = sqltypes.EncodeRow(rowArena, row)
		payloads[i] = rowArena[start:len(rowArena):len(rowArena)]
	}
	rids, err := t.Heap.AppendBatch(payloads)
	if err != nil {
		return nil, err
	}

	items := make([]btree.Item, n)
	for xi, ix := range t.Indexes {
		b := builds[xi]
		if !ix.Unique {
			for i, key := range b.keys {
				patchRID(key, rids[i])
			}
		}
		for i := range items {
			src := i
			if b.perm != nil {
				src = b.perm[i]
			}
			items[i] = btree.Item{Key: b.keys[src], RID: rids[src]}
		}
		if ix.Tree.Len() == 0 {
			tree, err := btree.BulkLoad(items)
			if err != nil {
				// Uniqueness was pre-checked; a collision here is corruption.
				panic(fmt.Sprintf("catalog: index %s bulk load: %v", ix.Name, err))
			}
			tree.NodeReads = ix.Tree.NodeReads
			tree.AdoptFrom(ix.Tree)
			ix.Tree = tree
			continue
		}
		for _, it := range items {
			if err := ix.Tree.Insert(it.Key, it.RID); err != nil {
				panic(fmt.Sprintf("catalog: index %s insert: %v", ix.Name, err))
			}
		}
	}
	t.counters.RowsInserted.Add(int64(n))
	return rids, nil
}

// patchRID overwrites the zeroed RID-suffix placeholder at the end of a
// non-unique index key with the row's real RID.
func patchRID(key []byte, rid heap.RID) {
	n := len(key)
	binary.BigEndian.PutUint32(key[n-6:n-2], rid.Page)
	binary.BigEndian.PutUint16(key[n-2:], rid.Slot)
}

func describeKey(ix *Index, row sqltypes.Row) string {
	s := "("
	for i, c := range ix.Columns {
		if i > 0 {
			s += ", "
		}
		s += row[c].String()
	}
	return s + ")"
}

// Fetch returns the decoded row at rid.
func (t *Table) Fetch(rid heap.RID) (sqltypes.Row, error) {
	data, err := t.Heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return sqltypes.DecodeRow(data)
}

// Delete removes the row at rid and its index entries.
func (t *Table) Delete(rid heap.RID) error {
	row, err := t.Fetch(rid)
	if err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Delete(ix.keyFor(row, rid)); err != nil {
			panic(fmt.Sprintf("catalog: index %s delete: %v", ix.Name, err))
		}
	}
	if err := t.Heap.Delete(rid); err != nil {
		return err
	}
	t.counters.RowsDeleted.Add(1)
	return nil
}

// Update replaces the row at rid with newRow, returning the row's (possibly
// new) RID.
func (t *Table) Update(rid heap.RID, newRow sqltypes.Row) (heap.RID, error) {
	newRow, err := t.checkRow(newRow)
	if err != nil {
		return heap.RID{}, err
	}
	oldRow, err := t.Fetch(rid)
	if err != nil {
		return heap.RID{}, err
	}
	// Unique pre-check, ignoring our own entry.
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		newKey := ix.keyFor(newRow, heap.RID{})
		if got, exists := ix.Tree.Get(newKey); exists && got != rid {
			return heap.RID{}, fmt.Errorf("unique index %s: duplicate key %s", ix.Name, describeKey(ix, newRow))
		}
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Delete(ix.keyFor(oldRow, rid)); err != nil {
			panic(fmt.Sprintf("catalog: index %s delete during update: %v", ix.Name, err))
		}
	}
	newRID, err := t.Heap.Update(rid, sqltypes.EncodeRow(nil, newRow))
	if err != nil {
		// Restore old entries to keep the table consistent.
		for _, ix := range t.Indexes {
			_ = ix.Tree.Insert(ix.keyFor(oldRow, rid), rid)
		}
		return heap.RID{}, err
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.keyFor(newRow, newRID), newRID); err != nil {
			panic(fmt.Sprintf("catalog: index %s insert during update: %v", ix.Name, err))
		}
	}
	t.counters.RowsUpdated.Add(1)
	return newRID, nil
}

// Scan iterates all rows, bumping the scan counter.
func (t *Table) Scan(fn func(rid heap.RID, row sqltypes.Row) bool) error {
	var derr error
	t.Heap.Scan(func(rid heap.RID, data []byte) bool {
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			derr = err
			return false
		}
		t.counters.RowsScanned.Add(1)
		return fn(rid, row)
	})
	return derr
}

// IndexScan iterates index entries with the given column-value prefix and
// optional residual range on the next column: entries where the column after
// the equality prefix lies in [low, high] (nil bounds are open). fn receives
// the RID; loading the row is the caller's choice.
func (t *Table) IndexScan(ix *Index, eq []sqltypes.Value, low, high *sqltypes.Value, lowExcl, highExcl bool, fn func(rid heap.RID) bool) {
	start, end := indexRange(ix, eq, low, high, lowExcl, highExcl)
	it := ix.Tree.Seek(start, end)
	for ; it.Valid(); it.Next() {
		t.counters.IndexProbes.Add(1)
		if !fn(it.RID()) {
			return
		}
	}
}

// Catalog is the set of tables and indexes of one database.
//
// DDL is copy-on-write: every schema change replaces the tables map (and,
// for index changes, the affected *Table) with fresh objects rather than
// mutating the ones in place. Schema objects reachable from a published
// View are therefore immutable, which is what lets readers plan and execute
// against a View without holding any lock while DDL proceeds.
type Catalog struct {
	tables   map[string]*Table
	Counters Counters
	// pool, when set, backs every heap and index tree created through this
	// catalog with buffer-pool pages instead of plain RAM.
	pool *bufpool.Pool
	// version counts schema changes (DDL). Plan caches key their entries by
	// it, so a CREATE/DROP TABLE/INDEX invalidates every cached plan.
	version atomic.Uint64
}

// replaceTables swaps in a copy of the tables map with name remapped to t
// (or removed when t is nil) and bumps the schema version.
func (c *Catalog) replaceTables(name string, t *Table) {
	m := make(map[string]*Table, len(c.tables)+1)
	for n, old := range c.tables {
		m[n] = old
	}
	if t == nil {
		delete(m, name)
	} else {
		m[name] = t
	}
	c.tables = m
	c.version.Add(1)
}

// Version returns the schema version counter, bumped by every DDL change.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// NewPooled returns an empty catalog whose storage pages through pool.
func NewPooled(pool *bufpool.Pool) *Catalog {
	return &Catalog{tables: map[string]*Table{}, pool: pool}
}

// Pool returns the buffer pool backing this catalog's storage, or nil for an
// all-RAM catalog.
func (c *Catalog) Pool() *bufpool.Pool { return c.pool }

// newHeap returns an empty heap on the catalog's storage tier.
func (c *Catalog) newHeap() *heap.Heap {
	if c.pool != nil {
		return heap.NewPaged(c.pool)
	}
	return heap.New()
}

// newTree returns an empty tree on the catalog's storage tier.
func (c *Catalog) newTree() *btree.Tree {
	if c.pool != nil {
		return btree.NewPaged(c.pool)
	}
	return btree.New()
}

// CreateTable defines a new table.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %s: no columns", name)
	}
	t := &Table{
		Name:     name,
		Columns:  cols,
		Heap:     c.newHeap(),
		counters: &c.Counters,
		colIdx:   map[string]int{},
	}
	t.Heap.PageReads = &c.Counters.HeapPageReads
	for i, col := range cols {
		if _, dup := t.colIdx[col.Name]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %s", name, col.Name)
		}
		t.colIdx[col.Name] = i
	}
	c.replaceTables(name, t)
	return t, nil
}

// AttachTable registers a table over already-restored heap storage, without
// scanning or copying rows. Used by paged-checkpoint recovery, which rebuilds
// each heap from its manifest page list.
func (c *Catalog) AttachTable(name string, cols []Column, h *heap.Heap) (*Table, error) {
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("table %s already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %s: no columns", name)
	}
	t := &Table{
		Name:     name,
		Columns:  cols,
		Heap:     h,
		counters: &c.Counters,
		colIdx:   map[string]int{},
	}
	t.Heap.PageReads = &c.Counters.HeapPageReads
	for i, col := range cols {
		if _, dup := t.colIdx[col.Name]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %s", name, col.Name)
		}
		t.colIdx[col.Name] = i
	}
	c.replaceTables(name, t)
	return t, nil
}

// AttachIndex registers an index over an already-restored tree, without
// re-reading the table. The recovery counterpart of CreateIndex.
func (c *Catalog) AttachIndex(name, tableName string, colNames []string, unique bool, tree *btree.Tree) (*Index, error) {
	t := c.Table(tableName)
	if t == nil {
		return nil, fmt.Errorf("table %s does not exist", tableName)
	}
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return nil, fmt.Errorf("index %s already exists", name)
		}
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		pos := t.ColumnIndex(cn)
		if pos < 0 {
			return nil, fmt.Errorf("index %s: no column %s in table %s", name, cn, tableName)
		}
		cols[i] = pos
	}
	tree.NodeReads = &c.Counters.BtreeNodeReads
	ix := &Index{Name: name, Table: t, Columns: cols, Unique: unique, Tree: tree}
	t.Indexes = append(append([]*Index(nil), t.Indexes...), ix)
	c.version.Add(1)
	return ix, nil
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	t, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("table %s does not exist", name)
	}
	// Index pages return to the pool once the last snapshot drops the trees;
	// heap pages do the same through their own per-page finalizers.
	for _, ix := range t.Indexes {
		ix.Tree.ReleaseOnGC()
	}
	c.replaceTables(name, nil)
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex builds an index over the named columns, populating it from
// existing rows.
func (c *Catalog) CreateIndex(name, tableName string, colNames []string, unique bool) (*Index, error) {
	t := c.Table(tableName)
	if t == nil {
		return nil, fmt.Errorf("table %s does not exist", tableName)
	}
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return nil, fmt.Errorf("index %s already exists", name)
		}
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		pos := t.ColumnIndex(cn)
		if pos < 0 {
			return nil, fmt.Errorf("index %s: no column %s in table %s", name, cn, tableName)
		}
		cols[i] = pos
	}
	ix := &Index{Name: name, Table: t, Columns: cols, Unique: unique, Tree: c.newTree()}
	ix.Tree.NodeReads = &c.Counters.BtreeNodeReads
	// Populate bottom-up: collect and sort every (key, rid) pair, then build
	// the tree leaves-first instead of one top-down insert per row.
	items := make([]btree.Item, 0, t.RowCount())
	var buildErr error
	t.Heap.Scan(func(rid heap.RID, data []byte) bool {
		row, err := sqltypes.DecodeRow(data)
		if err != nil {
			buildErr = err
			return false
		}
		items = append(items, btree.Item{Key: ix.keyFor(row, rid), RID: rid})
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	sort.Slice(items, func(i, j int) bool { return bytes.Compare(items[i].Key, items[j].Key) < 0 })
	tree, err := btree.BulkLoad(items)
	if err != nil {
		// Keys only collide on a unique index (non-unique keys carry a RID
		// suffix), so ErrUnsorted here means a uniqueness violation.
		return nil, fmt.Errorf("index %s: %w (existing data violates uniqueness?)", name, btree.ErrDuplicate)
	}
	tree.NodeReads = &c.Counters.BtreeNodeReads
	// The bulk-built tree replaces the empty pooled one wholesale; AdoptFrom
	// moves the pool over and releases the superseded tree's pages.
	tree.AdoptFrom(ix.Tree)
	ix.Tree = tree
	// Replace the Indexes slice with a fresh copy rather than appending in
	// place: published Views capture the old slice at snapshot time, so its
	// backing array must never be written again.
	t.Indexes = append(append([]*Index(nil), t.Indexes...), ix)
	c.version.Add(1)
	return ix, nil
}

// DropIndex removes the named index from whichever table holds it.
func (c *Catalog) DropIndex(name string) error {
	for _, t := range c.tables {
		for i, ix := range t.Indexes {
			if ix.Name == name {
				// Fresh slice for the same reason as CreateIndex: Views hold
				// the old one.
				keep := make([]*Index, 0, len(t.Indexes)-1)
				keep = append(keep, t.Indexes[:i]...)
				keep = append(keep, t.Indexes[i+1:]...)
				t.Indexes = keep
				ix.Tree.ReleaseOnGC()
				c.version.Add(1)
				return nil
			}
		}
	}
	return fmt.Errorf("index %s does not exist", name)
}
