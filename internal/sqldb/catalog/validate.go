package catalog

import (
	"bytes"
	"fmt"

	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// Validate checks the table's physical invariants across its storage
// structures and returns a description of every violation found (nil for a
// healthy table):
//
//   - the heap's page invariants (heap.Validate);
//   - each index tree's structural invariants (btree.Validate);
//   - each index holds exactly one entry per live heap row: entry count
//     equals row count, every entry's RID resolves to a live row, no RID
//     appears twice, and re-encoding the row reproduces the entry's key.
//
// Validate reads every row once per index; it is a diagnostic, not a hot
// path.
func (t *Table) Validate() []string {
	var problems []string
	report := func(format string, args ...any) {
		if len(problems) < 64 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	for _, p := range t.Heap.Validate() {
		report("table %s heap: %s", t.Name, p)
	}
	rows := t.RowCount()
	for _, ix := range t.Indexes {
		for _, p := range ix.Tree.Validate() {
			report("index %s: %s", ix.Name, p)
		}
		if ix.Tree.Len() != rows {
			report("index %s holds %d entries for %d table rows", ix.Name, ix.Tree.Len(), rows)
		}
		seen := make(map[heap.RID]bool, rows)
		for it := ix.Tree.Seek(nil, nil); it.Valid(); it.Next() {
			rid := it.RID()
			if seen[rid] {
				report("index %s references row %s twice", ix.Name, rid)
				continue
			}
			seen[rid] = true
			data, err := t.Heap.Get(rid)
			if err != nil {
				report("index %s entry points at dead row %s", ix.Name, rid)
				continue
			}
			row, err := sqltypes.DecodeRow(data)
			if err != nil {
				report("index %s: row %s does not decode: %v", ix.Name, rid, err)
				continue
			}
			if want := ix.keyFor(row, rid); !bytes.Equal(it.Key(), want) {
				report("index %s entry for row %s has key %x, want %x (stale entry?)", ix.Name, rid, it.Key(), want)
			}
		}
	}
	return problems
}

// Validate checks every table in the catalog.
func (c *Catalog) Validate() []string {
	var problems []string
	for _, name := range c.TableNames() {
		problems = append(problems, c.tables[name].Validate()...)
	}
	return problems
}
