package sqldb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ordxml/internal/sqldb/btree"
	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// Paged-checkpoint manifest: the durable root of a database whose storage
// lives in a buffer-pooled page file. Unlike the full snapshot (persist.go),
// which streams every row, the manifest records only *references* — the
// page-id allocator state, each table's heap page list, and each index
// tree's root page — so checkpointing a large store writes the dirty pages
// plus a few kilobytes of manifest, not the whole database.
//
// Layout: magic, version, allocator state (next id, free list), table count,
// then per table: name, columns, row count, heap page ids, and per index:
// name, columns, uniqueness, root page id, entry count. All integers are
// uvarints; the file ends with the same CRC32 trailer as the snapshot format.

const (
	pagedMagic   = "ordxmlPM"
	pagedVersion = 1
	// manifestMaxList bounds list lengths read from a manifest so a corrupt
	// count fails cleanly instead of attempting a huge allocation.
	manifestMaxList = 1 << 26
)

// DumpPaged assigns pages to every index tree and writes the checkpoint
// manifest to w. The caller owns the rest of the checkpoint protocol: flush
// the pool, sync the page file, atomically install the manifest, then commit
// the pool's allocator (bufpool.Pool.CommitCheckpoint). Takes the engine's
// write lock: tree serialization assigns page ids.
func (db *DB) DumpPaged(w io.Writer) error {
	pool := db.cat.Pool()
	if pool == nil {
		return errors.New("sqldb: DumpPaged on a database without a buffer pool")
	}
	db.mu.Lock()
	defer db.mu.Unlock()

	// Serialize every index tree first: WritePages allocates pages for
	// changed nodes and releases superseded ones, and the allocator state
	// written below must reflect all of it.
	names := db.cat.TableNames()
	roots := map[*catalog.Index]bufpool.PageID{}
	for _, name := range names {
		t := db.cat.Table(name)
		for _, ix := range t.Indexes {
			root, err := ix.Tree.WritePages()
			if err != nil {
				return fmt.Errorf("index %s: %w", ix.Name, err)
			}
			roots[ix] = root
		}
	}
	st := pool.PlannedState()

	sum := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, sum))
	out := &perr{w: bw}
	out.bytes([]byte(pagedMagic))
	out.uvarint(pagedVersion)
	out.uvarint(uint64(st.Next))
	out.uvarint(uint64(len(st.Free)))
	for _, id := range st.Free {
		out.uvarint(uint64(id))
	}
	out.uvarint(uint64(len(names)))
	for _, name := range names {
		t := db.cat.Table(name)
		out.str(name)
		out.uvarint(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			out.str(c.Name)
			out.uvarint(uint64(c.Type))
			out.bool(c.NotNull)
		}
		out.uvarint(uint64(t.RowCount()))
		ids := t.Heap.PageIDs()
		out.uvarint(uint64(len(ids)))
		for _, id := range ids {
			out.uvarint(uint64(id))
		}
		out.uvarint(uint64(len(t.Indexes)))
		for _, ix := range t.Indexes {
			out.str(ix.Name)
			cols := ix.ColumnNames()
			out.uvarint(uint64(len(cols)))
			for _, c := range cols {
				out.str(c)
			}
			out.bool(ix.Unique)
			out.uvarint(uint64(roots[ix]))
			out.uvarint(uint64(ix.Tree.Len()))
		}
	}
	if out.err != nil {
		return out.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tr [len(trailerMagic) + 4]byte
	copy(tr[:], trailerMagic)
	binary.LittleEndian.PutUint32(tr[len(trailerMagic):], sum.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// manifest is the fully-parsed form of a paged checkpoint, decoded and
// checksum-verified before any pool or catalog state is touched.
type manifest struct {
	alloc  bufpool.AllocState
	tables []manifestTable
}

type manifestTable struct {
	name    string
	columns []catalog.Column
	rows    int
	pages   []bufpool.PageID
	indexes []manifestIndex
}

type manifestIndex struct {
	name   string
	cols   []string
	unique bool
	root   bufpool.PageID
	size   int
}

// LoadPaged reads a checkpoint manifest and opens the database it describes
// over pool. No table data is read here: heaps adopt their page lists and
// index trees start as root stubs, both faulting pages in on first touch, so
// opening a beyond-RAM store is O(manifest), not O(data).
func LoadPaged(r io.Reader, pool *bufpool.Pool) (*DB, error) {
	m, err := readManifest(r)
	if err != nil {
		return nil, err
	}
	pool.Restore(m.alloc)
	db := OpenPooled(pool)
	for _, mt := range m.tables {
		h := heap.RestorePaged(pool, mt.pages, mt.rows)
		t, err := db.cat.AttachTable(mt.name, mt.columns, h)
		if err != nil {
			return nil, fmt.Errorf("manifest: %w", err)
		}
		for _, mi := range mt.indexes {
			tree := btree.Restore(pool, mi.root, mi.size)
			if _, err := db.cat.AttachIndex(mi.name, t.Name, mi.cols, mi.unique, tree); err != nil {
				return nil, fmt.Errorf("manifest: %w", err)
			}
		}
	}
	db.publish()
	return db, nil
}

func readManifest(r io.Reader) (*manifest, error) {
	br := bufio.NewReader(r)
	in := &pread{r: br, sum: crc32.NewIEEE()}
	magic := in.bytes(len(pagedMagic))
	if in.err == nil && string(magic) != pagedMagic {
		return nil, fmt.Errorf("not an ordxml paged-checkpoint manifest")
	}
	if version := in.uvarint(); in.err == nil && version != pagedVersion {
		return nil, fmt.Errorf("unsupported manifest version %d (this build reads version %d)",
			version, pagedVersion)
	}
	listLen := func(what string) int {
		n := in.uvarint()
		if in.err == nil && n > manifestMaxList {
			in.err = fmt.Errorf("corrupt manifest: %d %s", n, what)
		}
		return int(n)
	}
	m := &manifest{}
	m.alloc.Next = bufpool.PageID(in.uvarint())
	nFree := listLen("free ids")
	for i := 0; i < nFree && in.err == nil; i++ {
		m.alloc.Free = append(m.alloc.Free, bufpool.PageID(in.uvarint()))
	}
	nTables := listLen("tables")
	for ti := 0; ti < nTables && in.err == nil; ti++ {
		var mt manifestTable
		mt.name = in.str()
		nCols := listLen("columns")
		for ci := 0; ci < nCols && in.err == nil; ci++ {
			mt.columns = append(mt.columns, catalog.Column{
				Name:    in.str(),
				Type:    sqltypes.Type(in.uvarint()),
				NotNull: in.bool(),
			})
		}
		mt.rows = int(in.uvarint())
		nPages := listLen("heap pages")
		for pi := 0; pi < nPages && in.err == nil; pi++ {
			mt.pages = append(mt.pages, bufpool.PageID(in.uvarint()))
		}
		nIdx := listLen("indexes")
		for ii := 0; ii < nIdx && in.err == nil; ii++ {
			var mi manifestIndex
			mi.name = in.str()
			nc := listLen("index columns")
			for c := 0; c < nc && in.err == nil; c++ {
				mi.cols = append(mi.cols, in.str())
			}
			mi.unique = in.bool()
			mi.root = bufpool.PageID(in.uvarint())
			mi.size = int(in.uvarint())
			mt.indexes = append(mt.indexes, mi)
		}
		m.tables = append(m.tables, mt)
	}
	if in.err != nil {
		return nil, fmt.Errorf("manifest read: %w", in.err)
	}
	got := in.sum.Sum32()
	tr := in.bytes(len(trailerMagic) + 4)
	if in.err != nil {
		return nil, fmt.Errorf("manifest is truncated (missing checksum trailer): %w", in.err)
	}
	if string(tr[:len(trailerMagic)]) != trailerMagic {
		return nil, fmt.Errorf("manifest is truncated or corrupt (bad checksum trailer magic %q)",
			tr[:len(trailerMagic)])
	}
	if want := binary.LittleEndian.Uint32(tr[len(trailerMagic):]); want != got {
		return nil, fmt.Errorf("manifest checksum mismatch (computed %08x, stored %08x)", got, want)
	}
	return m, nil
}
