package sqldb

import (
	"container/list"
	"sync"

	"ordxml/internal/obs"
	"ordxml/internal/sqldb/sqlparse"
)

// planCacheCap bounds the number of cached statements. The XML layer
// generates a closed family of SQL shapes (a few dozen per encoding), so the
// cap exists only to bound ad-hoc query churn.
const planCacheCap = 512

// cacheEntry is one cached statement: the parsed AST plus the compiled plan
// and the catalog version the plan was built against.
type cacheEntry struct {
	sql     string
	stmt    sqlparse.Statement
	version uint64
	plan    any // plan.Node for SELECT; *plan.InsertPlan etc. for DML
}

// planCache is an LRU map from SQL text to parsed statement + compiled plan.
// Every lookup revalidates the entry against the current catalog version,
// which DDL bumps — so CREATE/DROP TABLE/INDEX can never serve a stale plan.
// A stale entry still yields its parsed AST (parsing is schema-independent),
// so only planning repeats after DDL.
//
// Plans are shared across executions and across concurrent queries: plan
// trees are read-only after planning (parameters bind at execution inside
// the operator tree), which is what makes the cache safe under the engine's
// reader lock.
type planCache struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used

	// hits/misses live in the DB's metrics registry (sqldb.plancache.*) so
	// cache behaviour shows up in Metrics() snapshots; PlanCacheStats reads
	// them back for the legacy accessor.
	hits   *obs.Counter
	misses *obs.Counter
}

func newPlanCache(reg *obs.Registry) *planCache {
	pc := &planCache{
		items:  map[string]*list.Element{},
		lru:    list.New(),
		hits:   reg.Counter("sqldb.plancache.hits"),
		misses: reg.Counter("sqldb.plancache.misses"),
	}
	reg.RegisterFunc("sqldb.plancache.entries", func() int64 { return int64(pc.len()) })
	return pc
}

// lookup returns the cached parse and plan for sql. plan is non-nil only
// when the entry was built against catalog version ver (a hit); a stale or
// absent entry counts as a miss, returning the parsed statement when one is
// cached so the caller can skip re-parsing.
func (pc *planCache) lookup(sql string, ver uint64) (stmt sqlparse.Statement, plan any) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.items[sql]
	if !ok {
		pc.misses.Inc()
		return nil, nil
	}
	pc.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	if e.version != ver {
		pc.misses.Inc()
		return e.stmt, nil
	}
	pc.hits.Inc()
	return e.stmt, e.plan
}

// store records a freshly compiled plan, evicting the least recently used
// entry past capacity.
func (pc *planCache) store(sql string, stmt sqlparse.Statement, ver uint64, plan any) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[sql]; ok {
		e := el.Value.(*cacheEntry)
		e.stmt, e.version, e.plan = stmt, ver, plan
		pc.lru.MoveToFront(el)
		return
	}
	pc.items[sql] = pc.lru.PushFront(&cacheEntry{sql: sql, stmt: stmt, version: ver, plan: plan})
	if pc.lru.Len() > planCacheCap {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.items, oldest.Value.(*cacheEntry).sql)
	}
}

func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// PlanCacheStats is a snapshot of the plan cache counters. A hit means a
// statement executed without parsing or planning; a miss covers both absent
// entries and entries invalidated by DDL.
type PlanCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// PlanCacheStats returns the cache counters. It is a thin shim over the
// metrics registry (sqldb.plancache.hits / .misses / .entries), kept for
// callers that predate Metrics().
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:    db.plans.hits.Value(),
		Misses:  db.plans.misses.Value(),
		Entries: db.plans.len(),
	}
}
