package sqldb

import (
	"container/list"
	"sync"

	"ordxml/internal/obs"
	"ordxml/internal/sqldb/sqlparse"
)

// planCacheCap bounds the number of cached statements. The XML layer
// generates a closed family of SQL shapes (a few dozen per encoding), so the
// cap exists only to bound ad-hoc query churn.
const planCacheCap = 512

// planCacheShards splits the cache into independently locked shards so
// concurrent readers on different statements never contend on one mutex.
// Must be a power of two.
const planCacheShards = 16

// cacheEntry is one cached statement: the parsed AST plus the compiled plan
// and the catalog version the plan was built against.
type cacheEntry struct {
	sql     string
	stmt    sqlparse.Statement
	version uint64
	plan    any // plan.Node for SELECT; *plan.InsertPlan etc. for DML
}

// cacheShard is one independently locked LRU slice of the cache.
type cacheShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
}

// planCache is a sharded LRU map from SQL text to parsed statement +
// compiled plan. Every lookup revalidates the entry against the current
// catalog version, which DDL bumps — so CREATE/DROP TABLE/INDEX can never
// serve a stale plan. A stale entry still yields its parsed AST (parsing is
// schema-independent), so only planning repeats after DDL.
//
// Plans are shared across executions and across concurrent queries: plan
// trees are read-only after planning (parameters bind at execution inside
// the operator tree), which is what makes the cache safe for the engine's
// lock-free readers. Statements hash to shards by SQL text, so the hot
// prepared statements of concurrent readers spread across
// planCacheShards mutexes instead of serializing on one.
type planCache struct {
	shards [planCacheShards]cacheShard

	// hits/misses live in the DB's metrics registry (sqldb.plancache.*) so
	// cache behaviour shows up in Metrics() snapshots; PlanCacheStats reads
	// them back for the legacy accessor. obs counters are atomic, so the
	// counts stay exact across shards.
	hits   *obs.Counter
	misses *obs.Counter
}

func newPlanCache(reg *obs.Registry) *planCache {
	pc := &planCache{
		hits:   reg.Counter("sqldb.plancache.hits"),
		misses: reg.Counter("sqldb.plancache.misses"),
	}
	for i := range pc.shards {
		pc.shards[i].items = map[string]*list.Element{}
		pc.shards[i].lru = list.New()
	}
	reg.RegisterFunc("sqldb.plancache.entries", func() int64 { return int64(pc.len()) })
	return pc
}

// shardFor hashes the SQL text (FNV-1a) onto a shard.
func (pc *planCache) shardFor(sql string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(sql); i++ {
		h ^= uint32(sql[i])
		h *= 16777619
	}
	return &pc.shards[h&(planCacheShards-1)]
}

// lookup returns the cached parse and plan for sql. plan is non-nil only
// when the entry was built against catalog version ver (a hit); a stale or
// absent entry counts as a miss, returning the parsed statement when one is
// cached so the caller can skip re-parsing.
func (pc *planCache) lookup(sql string, ver uint64) (stmt sqlparse.Statement, plan any) {
	sh := pc.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[sql]
	if !ok {
		pc.misses.Inc()
		return nil, nil
	}
	sh.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	if e.version != ver {
		pc.misses.Inc()
		return e.stmt, nil
	}
	pc.hits.Inc()
	return e.stmt, e.plan
}

// store records a freshly compiled plan, evicting the least recently used
// entry of the shard past its share of the capacity.
func (pc *planCache) store(sql string, stmt sqlparse.Statement, ver uint64, plan any) {
	sh := pc.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[sql]; ok {
		e := el.Value.(*cacheEntry)
		e.stmt, e.version, e.plan = stmt, ver, plan
		sh.lru.MoveToFront(el)
		return
	}
	sh.items[sql] = sh.lru.PushFront(&cacheEntry{sql: sql, stmt: stmt, version: ver, plan: plan})
	if sh.lru.Len() > planCacheCap/planCacheShards {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.items, oldest.Value.(*cacheEntry).sql)
	}
}

// invalidate drops every cached plan (parsed ASTs included). Used when a
// planner setting changes (SetParallelism) — version revalidation only
// catches schema changes, not option changes.
func (pc *planCache) invalidate() {
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		sh.items = map[string]*list.Element{}
		sh.lru = list.New()
		sh.mu.Unlock()
	}
}

func (pc *planCache) len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// PlanCacheStats is a snapshot of the plan cache counters. A hit means a
// statement executed without parsing or planning; a miss covers both absent
// entries and entries invalidated by DDL.
type PlanCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// PlanCacheStats returns the cache counters. It is a thin shim over the
// metrics registry (sqldb.plancache.hits / .misses / .entries), kept for
// callers that predate Metrics().
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:    db.plans.hits.Value(),
		Misses:  db.plans.misses.Value(),
		Entries: db.plans.len(),
	}
}
