package sqldb

import (
	"strings"
	"testing"
	"time"
)

func metricsTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE node (id INT PRIMARY KEY, parent INT, tag TEXT, ord INT)`)
	mustExec(`CREATE INDEX node_parent ON node (parent, ord)`)
	for i := 1; i <= 50; i++ {
		if _, err := db.Exec(`INSERT INTO node (id, parent, tag, ord) VALUES (?, ?, ?, ?)`,
			I(int64(i)), I(int64(i/10)), S("item"), I(int64(i%10))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db
}

func TestMetricsSnapshotCounts(t *testing.T) {
	db := metricsTestDB(t)
	for i := 0; i < 5; i++ {
		if _, err := db.Query(`SELECT id FROM node WHERE parent = ?`, I(1)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if got := m.Counters["sqldb.queries"]; got != 5 {
		t.Errorf("sqldb.queries = %d, want 5", got)
	}
	if got := m.Histograms["sqldb.query.latency"].Count; got != 5 {
		t.Errorf("query latency count = %d, want 5", got)
	}
	if m.Counters["sqldb.execs"] == 0 {
		t.Error("sqldb.execs not counted")
	}
	// Storage access counters must be visible as gauges and move with reads.
	if _, ok := m.Gauges["storage.btree.node_reads"]; !ok {
		t.Fatalf("storage.btree.node_reads missing from snapshot gauges: %v", m.GaugeNames())
	}
	if got := m.Gauges["storage.btree.node_reads"]; got == 0 {
		t.Error("btree node reads stayed zero despite index probes")
	}
	// Plan cache counters live in the same registry; the shim agrees.
	pcs := db.PlanCacheStats()
	if m.Counters["sqldb.plancache.hits"] != pcs.Hits {
		t.Errorf("registry hits %d != shim hits %d", m.Counters["sqldb.plancache.hits"], pcs.Hits)
	}
	if m.Counters["sqldb.plancache.misses"] != pcs.Misses {
		t.Errorf("registry misses %d != shim misses %d", m.Counters["sqldb.plancache.misses"], pcs.Misses)
	}
	if m.Gauges["sqldb.plancache.entries"] != int64(pcs.Entries) {
		t.Errorf("registry entries %d != shim entries %d", m.Gauges["sqldb.plancache.entries"], pcs.Entries)
	}
	if pcs.Hits < 4 {
		t.Errorf("expected >=4 plan cache hits from repeated query, got %d", pcs.Hits)
	}
}

func TestExplainAnalyzeViaQuery(t *testing.T) {
	db := metricsTestDB(t)
	res, err := db.Query(`EXPLAIN ANALYZE SELECT id FROM node WHERE parent = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", res.Columns)
	}
	var text strings.Builder
	for _, row := range res.Rows {
		text.WriteString(row[0].Text())
		text.WriteByte('\n')
	}
	out := text.String()
	if !strings.Contains(out, "actual rows=") || !strings.Contains(out, "loops=") {
		t.Errorf("EXPLAIN ANALYZE output missing actuals:\n%s", out)
	}
	if !strings.Contains(out, "Total: rows=") {
		t.Errorf("EXPLAIN ANALYZE output missing total line:\n%s", out)
	}
	// Plain EXPLAIN through Query still works and carries no actuals.
	res, err = db.Query(`EXPLAIN SELECT id FROM node WHERE parent = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || strings.Contains(res.Rows[0][0].Text(), "actual") {
		t.Errorf("plain EXPLAIN unexpected output: %v", res.Rows)
	}
}

func TestExplainAnalyzeRejectsDML(t *testing.T) {
	db := metricsTestDB(t)
	if _, err := db.Query(`EXPLAIN ANALYZE DELETE FROM node WHERE id = 1`); err == nil {
		t.Fatal("EXPLAIN ANALYZE of DML should error")
	}
	// The row must still exist: ANALYZE of DML never executes.
	res, err := db.Query(`SELECT id FROM node WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("row 1 disappeared after rejected EXPLAIN ANALYZE DELETE")
	}
}

func TestExplainAnalyzeMethod(t *testing.T) {
	db := metricsTestDB(t)
	out, err := db.ExplainAnalyze(`SELECT id FROM node WHERE parent = ? AND ord >= ?`, I(1), I(0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndexScan") && !strings.Contains(out, "SeqScan") {
		t.Errorf("no scan operator in output:\n%s", out)
	}
	if !strings.Contains(out, "actual rows=") {
		t.Errorf("missing actuals:\n%s", out)
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := metricsTestDB(t)
	db.SetSlowQueryThreshold(1) // 1ns: everything is slow
	if _, err := db.Query(`SELECT id FROM node WHERE parent = 1`); err != nil {
		t.Fatal(err)
	}
	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries logged at 1ns threshold")
	}
	last := slow[len(slow)-1]
	if last.SQL != `SELECT id FROM node WHERE parent = 1` {
		t.Errorf("logged SQL = %q", last.SQL)
	}
	if last.Duration <= 0 {
		t.Errorf("non-positive duration %v", last.Duration)
	}
	db.SetSlowQueryThreshold(0) // disabled
	before := len(db.SlowQueries())
	if _, err := db.Query(`SELECT id FROM node WHERE parent = 2`); err != nil {
		t.Fatal(err)
	}
	if got := len(db.SlowQueries()); got != before {
		t.Errorf("log grew to %d while disabled", got)
	}
	db.SetSlowQueryThreshold(DefaultSlowQueryThreshold)
}

func TestSlowLogRingWraps(t *testing.T) {
	m := newDBMetrics(Open().Registry())
	for i := 0; i < slowLogCap+10; i++ {
		m.recordSlow("q", time.Duration(i+1), i)
	}
	got := m.slowQueries()
	if len(got) != slowLogCap {
		t.Fatalf("len = %d, want %d", len(got), slowLogCap)
	}
	// Oldest surviving entry is #10 (0-based), newest is #slowLogCap+9.
	if got[0].Rows != 10 || got[len(got)-1].Rows != slowLogCap+9 {
		t.Errorf("ring order wrong: first=%d last=%d", got[0].Rows, got[len(got)-1].Rows)
	}
}

// TestRecordingZeroAlloc guards the per-statement instrumentation overhead:
// with tracing off (the default), metrics recording must not allocate.
func TestRecordingZeroAlloc(t *testing.T) {
	m := newDBMetrics(Open().Registry())
	sql := "SELECT 1"
	if n := testing.AllocsPerRun(200, func() {
		m.recordQuery(sql, 5*time.Microsecond, 1, nil)
	}); n != 0 {
		t.Errorf("recordQuery allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		m.recordExec(sql, 5*time.Microsecond, nil)
	}); n != 0 {
		t.Errorf("recordExec allocates %.1f per call, want 0", n)
	}
}
