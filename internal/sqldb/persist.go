package sqldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/sqltypes"
)

// Snapshot persistence: Dump streams the whole database — schemas, rows
// and index definitions — in a compact binary format; Load reads it back,
// rebuilding indexes. The format is a snapshot, not a log: it captures a
// point-in-time state (the WAL in internal/wal logs the mutations between
// snapshots; see ordxml.OpenDurable).
//
// Layout: magic, version, table count, then per table: name, columns,
// row count, row payloads (sqltypes row codec), then per table its index
// definitions. All strings and blobs are uvarint-length-prefixed. Version 2
// appends a checksum trailer — trailer magic plus the CRC32 (IEEE) of every
// body byte before it — so Load detects truncated or corrupt snapshots
// instead of misreading them. Version-1 snapshots (no trailer) still load.

const (
	persistMagic   = "ordxmlDB"
	persistVersion = 2
	trailerMagic   = "ordxmlCK"
)

// WriteTo serializes the database. It takes the engine's read lock, so the
// snapshot is consistent with respect to concurrent statements.
func (db *DB) Dump(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sum := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, sum))
	out := &perr{w: bw}

	out.bytes([]byte(persistMagic))
	out.uvarint(persistVersion)
	names := db.cat.TableNames()
	out.uvarint(uint64(len(names)))
	for _, name := range names {
		t := db.cat.Table(name)
		out.str(name)
		out.uvarint(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			out.str(c.Name)
			out.uvarint(uint64(c.Type))
			out.bool(c.NotNull)
		}
		out.uvarint(uint64(t.RowCount()))
		t.Heap.Scan(func(_ heap.RID, data []byte) bool {
			out.blob(data)
			return out.err == nil
		})
		out.uvarint(uint64(len(t.Indexes)))
		for _, ix := range t.Indexes {
			out.str(ix.Name)
			cols := ix.ColumnNames()
			out.uvarint(uint64(len(cols)))
			for _, c := range cols {
				out.str(c)
			}
			out.bool(ix.Unique)
		}
	}
	if out.err != nil {
		return out.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: written past the hashed body, directly to w.
	var tr [len(trailerMagic) + 4]byte
	copy(tr[:], trailerMagic)
	binary.LittleEndian.PutUint32(tr[len(trailerMagic):], sum.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// Load reads a snapshot produced by Dump into a fresh database. For
// version-2 snapshots the checksum trailer is verified: a truncated or
// bit-flipped snapshot fails with a descriptive error instead of loading a
// silently wrong database.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	in := &pread{r: br, sum: crc32.NewIEEE()}

	magic := in.bytes(len(persistMagic))
	if in.err == nil && string(magic) != persistMagic {
		return nil, fmt.Errorf("not an ordxml database snapshot")
	}
	version := in.uvarint()
	if in.err == nil && version != 1 && version != persistVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d (this build reads versions 1 and %d)",
			version, persistVersion)
	}
	db := Open()
	nTables := in.uvarint()
	type pendingIndex struct {
		name, table string
		cols        []string
		unique      bool
	}
	var indexes []pendingIndex
	for ti := uint64(0); ti < nTables && in.err == nil; ti++ {
		name := in.str()
		nCols := in.uvarint()
		cols := make([]catalog.Column, nCols)
		for ci := range cols {
			cols[ci] = catalog.Column{
				Name:    in.str(),
				Type:    sqltypes.Type(in.uvarint()),
				NotNull: in.bool(),
			}
		}
		if in.err != nil {
			break
		}
		t, err := db.cat.CreateTable(name, cols)
		if err != nil {
			return nil, err
		}
		// Rows go through the batch fast path (heap append, no per-row
		// parse/plan or index churn — indexes are rebuilt bottom-up below),
		// chunked to bound peak memory.
		nRows := in.uvarint()
		const loadChunk = 4096
		batch := make([]sqltypes.Row, 0, loadChunk)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			if _, err := t.BulkInsert(batch); err != nil {
				return fmt.Errorf("table %s: %w", name, err)
			}
			batch = batch[:0]
			return nil
		}
		for ri := uint64(0); ri < nRows && in.err == nil; ri++ {
			data := in.blobCopy()
			if in.err != nil {
				break
			}
			row, err := sqltypes.DecodeRow(data)
			if err != nil {
				return nil, fmt.Errorf("table %s row %d: %w", name, ri, err)
			}
			batch = append(batch, row)
			if len(batch) == loadChunk {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
		nIdx := in.uvarint()
		for ii := uint64(0); ii < nIdx && in.err == nil; ii++ {
			pi := pendingIndex{name: in.str(), table: name}
			nc := in.uvarint()
			for c := uint64(0); c < nc; c++ {
				pi.cols = append(pi.cols, in.str())
			}
			pi.unique = in.bool()
			indexes = append(indexes, pi)
		}
	}
	if in.err != nil {
		return nil, fmt.Errorf("snapshot read: %w", in.err)
	}
	if version >= 2 {
		got := in.sum.Sum32() // body CRC; the trailer itself is not hashed
		tr := in.bytes(len(trailerMagic) + 4)
		if in.err != nil {
			return nil, fmt.Errorf("snapshot is truncated (missing checksum trailer): %w", in.err)
		}
		if string(tr[:len(trailerMagic)]) != trailerMagic {
			return nil, fmt.Errorf("snapshot is truncated or corrupt (bad checksum trailer magic %q)",
				tr[:len(trailerMagic)])
		}
		if want := binary.LittleEndian.Uint32(tr[len(trailerMagic):]); want != got {
			return nil, fmt.Errorf("snapshot checksum mismatch (corrupt snapshot: computed %08x, stored %08x)",
				got, want)
		}
	}
	for _, pi := range indexes {
		if _, err := db.cat.CreateIndex(pi.name, pi.table, pi.cols, pi.unique); err != nil {
			return nil, fmt.Errorf("rebuild index %s: %w", pi.name, err)
		}
	}
	db.publish()
	return db, nil
}

// perr is a sticky-error binary writer.
type perr struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (p *perr) bytes(b []byte) {
	if p.err == nil {
		_, p.err = p.w.Write(b)
	}
}

func (p *perr) uvarint(v uint64) {
	n := binary.PutUvarint(p.buf[:], v)
	p.bytes(p.buf[:n])
}

func (p *perr) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	p.bytes([]byte{b})
}

func (p *perr) blob(b []byte) {
	p.uvarint(uint64(len(b)))
	p.bytes(b)
}

func (p *perr) str(s string) { p.blob([]byte(s)) }

// pread is the matching sticky-error reader. It maintains a running CRC of
// the bytes it has consumed so Load can verify the trailer; uvarints are
// hashed by re-encoding the value, which is exact because PutUvarint's
// minimal encoding is the only one Dump ever writes.
type pread struct {
	r   *bufio.Reader
	sum hash.Hash32
	err error
}

func (p *pread) bytes(n int) []byte {
	if p.err != nil {
		return nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(p.r, out); err != nil {
		p.err = err
		return nil
	}
	p.sum.Write(out)
	return out
}

func (p *pread) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(p.r)
	if err != nil {
		p.err = err
		return 0
	}
	var buf [binary.MaxVarintLen64]byte
	p.sum.Write(buf[:binary.PutUvarint(buf[:], v)])
	return v
}

func (p *pread) bool() bool {
	b := p.bytes(1)
	return p.err == nil && b[0] != 0
}

func (p *pread) blobCopy() []byte {
	n := p.uvarint()
	if p.err != nil {
		return nil
	}
	const maxBlob = 1 << 24
	if n > maxBlob {
		p.err = fmt.Errorf("corrupt snapshot: %d-byte record", n)
		return nil
	}
	return p.bytes(int(n))
}

func (p *pread) str() string { return string(p.blobCopy()) }
