package heap

import (
	"fmt"
	"sort"
)

// Validate checks the heap's page-level invariants and returns a description
// of every violation found (nil for a healthy heap):
//
//   - header sanity: the slot directory ends exactly at freeStart, and
//     freeStart <= freeEnd <= PageSize;
//   - slot sanity: every live payload lies inside [freeEnd, PageSize);
//   - no overlap: live payloads do not overlap one another;
//   - row count: the cached rowCount equals the number of live slots.
//
// Validate is a diagnostic: it reads every page directory and is not meant
// for hot paths.
func (h *Heap) Validate() []string {
	var problems []string
	report := func(format string, args ...any) {
		if len(problems) < 64 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	live := 0
	for pi, p := range h.pages {
		b := p.bytes()
		ns := numSlots(b)
		if want := headerSize + ns*slotSize; freeStart(b) != want {
			report("page %d: freeStart %d does not match %d slots (want %d)", pi, freeStart(b), ns, want)
		}
		if freeStart(b) > freeEnd(b) || freeEnd(b) > len(b) {
			report("page %d: free window [%d, %d) invalid", pi, freeStart(b), freeEnd(b))
		}
		type span struct{ off, end, slot int }
		var spans []span
		for si := 0; si < ns; si++ {
			off, l := slot(b, si)
			if l == 0 {
				continue // dead slot
			}
			live++
			if off < freeEnd(b) || off+l > len(b) {
				report("page %d slot %d: payload [%d, %d) outside live area [%d, %d)", pi, si, off, off+l, freeEnd(b), len(b))
				continue
			}
			spans = append(spans, span{off, off + l, si})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
		for i := 1; i < len(spans); i++ {
			if spans[i].off < spans[i-1].end {
				report("page %d: slots %d and %d overlap", pi, spans[i-1].slot, spans[i].slot)
			}
		}
	}
	if live != h.rowCount {
		report("row count %d but %d live slots", h.rowCount, live)
	}
	return problems
}
