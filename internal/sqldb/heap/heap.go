// Package heap implements slotted-page heap storage for table rows. Rows are
// stored as opaque byte strings (the engine encodes them with the sqltypes
// row codec) addressed by record ids (RIDs). Pages follow the classic slotted
// layout: a slot directory growing forward from the header and row payloads
// growing backward from the end of the page.
//
// Page memory lives in buffer-pool frames (internal/sqldb/bufpool). In the
// default in-RAM mode every page owns an unpooled frame that is resident
// forever, so behaviour and cost match the pre-pool heap. In paged mode
// (NewPaged) frames belong to a fixed-capacity pool over a page file: cold
// pages fault in on access and clean pages are evicted under memory
// pressure, so a heap can exceed RAM. Logical page numbers (RID.Page) are
// positions in the heap's page table; the frame knows its physical page-file
// id, and the mapping is persisted by the checkpoint manifest.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"ordxml/internal/sqldb/bufpool"
)

// PageSize is the usable size of an in-RAM heap page in bytes. It predates
// the buffer pool and stays at the legacy 8 KiB so snapshots written by
// earlier all-RAM builds — whose rows may approach the matching MaxRowSize —
// still load bit-for-bit. Pooled pages are slightly smaller: their frames
// mirror disk pages, which lose pagefile header bytes (bufpool.PayloadSize).
const PageSize = 8192

const (
	headerSize = 6 // numSlots(2) freeStart(2) freeEnd(2)
	slotSize   = 4 // offset(2) length(2)
)

// MaxRowSize is the largest payload a single in-RAM page can hold. Paged
// heaps (NewPaged) cap rows at pooledMaxRow instead; see Heap.maxRow.
const MaxRowSize = PageSize - headerSize - slotSize

// pooledMaxRow is the largest payload a pooled page can hold: pooled frames
// match the on-disk page payload, which is smaller than PageSize.
const pooledMaxRow = bufpool.PayloadSize - headerSize - slotSize

// RID addresses a record: page number and slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Less orders RIDs by page, then slot.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// ErrRowTooLarge is returned when a payload exceeds MaxRowSize.
var ErrRowTooLarge = errors.New("heap: row larger than page")

// ErrNotFound is returned for RIDs that do not address a live record.
var ErrNotFound = errors.New("heap: record not found")

// page pairs a buffer-pool frame with the copy-on-write stamp the heap uses
// for snapshot isolation. The slotted layout lives in the frame's payload.
type page struct {
	fr *bufpool.Frame
	// stamp is the heap epoch the page was allocated or cloned in. Pages
	// stamped before the current epoch may be referenced by a published
	// Snapshot and must be cloned (copy-on-write) before mutation.
	stamp uint64
}

// bytes returns the page's payload for reading, faulting it in if evicted.
// The returned slice stays valid even if the frame is evicted afterwards
// (evicted buffers are dropped, never recycled).
func (p *page) bytes() []byte { return p.fr.Bytes() }

// dirty returns the page's payload for writing, marking the frame dirty so
// the pool will not drop it before flushing. Writer side only.
func (p *page) dirty() []byte { return p.fr.MarkDirty() }

// Slotted-page helpers operate on a raw payload buffer so they serve both
// the heap's resident pages and diagnostic tools reading raw page images.

func initPage(b []byte) {
	setNumSlots(b, 0)
	setFreeStart(b, headerSize)
	setFreeEnd(b, len(b))
}

func numSlots(b []byte) int        { return int(binary.LittleEndian.Uint16(b[0:2])) }
func setNumSlots(b []byte, n int)  { binary.LittleEndian.PutUint16(b[0:2], uint16(n)) }
func freeStart(b []byte) int       { return int(binary.LittleEndian.Uint16(b[2:4])) }
func setFreeStart(b []byte, n int) { binary.LittleEndian.PutUint16(b[2:4], uint16(n)) }
func freeEnd(b []byte) int         { return int(binary.LittleEndian.Uint16(b[4:6])) }
func setFreeEnd(b []byte, n int)   { binary.LittleEndian.PutUint16(b[4:6], uint16(n)) }
func contiguousFree(b []byte) int  { return freeEnd(b) - freeStart(b) }

func slot(b []byte, i int) (off, length int) {
	base := headerSize + i*slotSize
	return int(binary.LittleEndian.Uint16(b[base : base+2])),
		int(binary.LittleEndian.Uint16(b[base+2 : base+4]))
}

func setSlot(b []byte, i, off, length int) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(b[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(b[base+2:base+4], uint16(length))
}

// deadSlot returns the index of a reusable dead slot, or -1.
func deadSlot(b []byte) int {
	for i := 0; i < numSlots(b); i++ {
		if _, l := slot(b, i); l == 0 {
			return i
		}
	}
	return -1
}

// liveBytes returns the total payload bytes referenced by live slots.
func liveBytes(b []byte) int {
	live := 0
	for i := 0; i < numSlots(b); i++ {
		_, l := slot(b, i)
		live += l
	}
	return live
}

// deadBytes returns payload bytes no longer referenced by a live slot.
func deadBytes(b []byte) int {
	return (len(b) - freeEnd(b)) - liveBytes(b)
}

// compactedFree returns the contiguous free space the page would have after
// compaction, without mutating it.
func compactedFree(b []byte) int {
	return (len(b) - liveBytes(b)) - freeStart(b)
}

// pageFits reports whether data would fit in the page (directly or after
// compaction) without mutating it, so callers can probe a possibly
// snapshot-shared page before paying for a copy-on-write clone.
func pageFits(b []byte, data []byte) bool {
	need := len(data)
	if deadSlot(b) == -1 {
		need += slotSize
	}
	if contiguousFree(b) >= need {
		return true
	}
	return deadBytes(b) > 0 && compactedFree(b) >= need
}

// pageInsert places data in the page, reusing a dead slot when one exists.
// It reports the slot used and whether the insert fit.
func pageInsert(b []byte, data []byte) (int, bool) {
	si := deadSlot(b)
	need := len(data)
	if si == -1 {
		need += slotSize
	}
	if contiguousFree(b) < need {
		if deadBytes(b) > 0 && compactedFree(b) >= need {
			compact(b)
		} else {
			return 0, false
		}
	}
	if si == -1 {
		si = numSlots(b)
		setNumSlots(b, si+1)
		setFreeStart(b, freeStart(b)+slotSize)
	}
	off := freeEnd(b) - len(data)
	copy(b[off:], data)
	setFreeEnd(b, off)
	setSlot(b, si, off, len(data))
	return si, true
}

// compact rewrites live payloads to the end of the page, reclaiming dead
// space. Slot numbers (and therefore RIDs) are preserved.
func compact(b []byte) {
	type rec struct {
		slot int
		data []byte
	}
	var recs []rec
	for i := 0; i < numSlots(b); i++ {
		off, l := slot(b, i)
		if l == 0 {
			continue
		}
		d := make([]byte, l)
		copy(d, b[off:off+l])
		recs = append(recs, rec{i, d})
	}
	end := len(b)
	for _, r := range recs {
		end -= len(r.data)
		copy(b[end:], r.data)
		setSlot(b, r.slot, end, len(r.data))
	}
	setFreeEnd(b, end)
}

// appendRecord places data in a fresh slot at the end of the directory.
// The caller guarantees the payload plus a new slot fit the page.
func appendRecord(b []byte, data []byte) int {
	si := numSlots(b)
	setNumSlots(b, si+1)
	setFreeStart(b, freeStart(b)+slotSize)
	off := freeEnd(b) - len(data)
	copy(b[off:], data)
	setFreeEnd(b, off)
	setSlot(b, si, off, len(data))
	return si
}

// Heap is an append-friendly collection of slotted pages. Mutations are
// copy-on-write against the most recently published Snapshot: pages stamped
// in an earlier epoch are cloned before being written, so a Snapshot stays
// immutable for as long as any reader holds it.
type Heap struct {
	// pool backs paged heaps; nil means in-RAM mode (unpooled frames).
	pool     *bufpool.Pool
	pages    []*page
	rowCount int
	// insertHint is the page most recently found to have space; inserts try
	// it first so bulk loads stay O(1) per row.
	insertHint int
	// epoch advances each time a Snapshot is published; pages stamped before
	// the current epoch are frozen and cloned on write.
	epoch uint64
	// snap caches the last published Snapshot; mutations invalidate it, so
	// snapshotting an unchanged heap costs one pointer load.
	snap *Snapshot
	// PageReads, when set, is incremented once per page accessed by reads
	// (Get and Scan). The catalog points it at a shared engine counter; the
	// nil check keeps the package dependency-free.
	PageReads *atomic.Int64
}

// New returns an empty in-RAM heap.
func New() *Heap { return &Heap{} }

// NewPaged returns an empty heap whose pages live in pool frames over the
// pool's page file, so the heap can exceed RAM.
func NewPaged(pool *bufpool.Pool) *Heap { return &Heap{pool: pool} }

// Pooled reports whether the heap is backed by a buffer pool.
func (h *Heap) Pooled() bool { return h.pool != nil }

// maxRow returns the heap's per-row size bound: the legacy MaxRowSize for
// the in-RAM tier, the smaller disk-page bound for pooled heaps.
func (h *Heap) maxRow() int {
	if h.pool != nil {
		return pooledMaxRow
	}
	return MaxRowSize
}

// newPage allocates a fresh initialized page stamped with the current epoch.
func (h *Heap) newPage() (*page, error) {
	if h.pool == nil {
		fr := bufpool.NewFrameSize(PageSize)
		initPage(fr.MarkDirty())
		return &page{fr: fr, stamp: h.epoch}, nil
	}
	fr, err := h.pool.Alloc()
	if err != nil {
		return nil, err
	}
	initPage(fr.MarkDirty())
	fr.Unpin()
	p := &page{fr: fr, stamp: h.epoch}
	h.freeOnGC(p)
	return p, nil
}

// freeOnGC arranges for the page's physical id to be released back to the
// pool's allocator once no page table or snapshot references the wrapper.
// The pool routes ids still referenced by the last durable checkpoint to a
// pending list, so on-disk shadow pages outlive any crash window.
func (h *Heap) freeOnGC(p *page) {
	pool, id := h.pool, p.fr.ID()
	if pool == nil || id == 0 {
		return
	}
	runtime.SetFinalizer(p, func(*page) { pool.FreeID(id) })
}

// writable returns page pi ready for mutation, cloning it first if it is
// frozen in an earlier epoch (and therefore possibly shared with a published
// Snapshot). The clone gets a fresh frame (and, in paged mode, a fresh
// physical page id — shadow paging), leaving the old frame to its snapshots.
func (h *Heap) writable(pi int) (*page, error) {
	p := h.pages[pi]
	if p.stamp == h.epoch {
		return p, nil
	}
	np, err := h.newPage()
	if err != nil {
		return nil, err
	}
	copy(np.dirty(), p.bytes())
	h.pages[pi] = np
	return np, nil
}

// Insert stores data and returns its RID.
func (h *Heap) Insert(data []byte) (RID, error) {
	if len(data) > h.maxRow() {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	h.snap = nil
	// Probe fit read-only before cloning: a full page must not trigger a
	// wasted copy-on-write of a whole page.
	tryPage := func(pi int) (int, bool, error) {
		if !pageFits(h.pages[pi].bytes(), data) {
			return 0, false, nil
		}
		p, err := h.writable(pi)
		if err != nil {
			return 0, false, err
		}
		si, ok := pageInsert(p.dirty(), data)
		return si, ok, nil
	}
	if h.insertHint < len(h.pages) {
		slot, ok, err := tryPage(h.insertHint)
		if err != nil {
			return RID{}, err
		}
		if ok {
			h.rowCount++
			return RID{Page: uint32(h.insertHint), Slot: uint16(slot)}, nil
		}
	}
	// Try the last page, then allocate.
	if n := len(h.pages); n > 0 && n-1 != h.insertHint {
		slot, ok, err := tryPage(n - 1)
		if err != nil {
			return RID{}, err
		}
		if ok {
			h.insertHint = n - 1
			h.rowCount++
			return RID{Page: uint32(n - 1), Slot: uint16(slot)}, nil
		}
	}
	p, err := h.newPage()
	if err != nil {
		return RID{}, err
	}
	h.pages = append(h.pages, p)
	h.insertHint = len(h.pages) - 1
	slot, ok := pageInsert(p.dirty(), data)
	if !ok {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	h.rowCount++
	return RID{Page: uint32(len(h.pages) - 1), Slot: uint16(slot)}, nil
}

// AppendBatch stores every payload in order and returns one RID per payload.
// It is the bulk-load fast path: records are appended to the tail page (no
// dead-slot search, no compaction probing), and a new page is allocated the
// moment one does not fit. All payloads are validated before any is stored,
// so an error means the heap is unchanged (page allocation failures in paged
// mode can leave a fresh empty tail page, which is harmless).
func (h *Heap) AppendBatch(payloads [][]byte) ([]RID, error) {
	for _, d := range payloads {
		if len(d) > h.maxRow() {
			return nil, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(d))
		}
	}
	h.snap = nil
	rids := make([]RID, 0, len(payloads))
	var p *page
	pi := len(h.pages) - 1
	if pi >= 0 {
		p = h.pages[pi]
	}
	for _, d := range payloads {
		if p == nil || contiguousFree(p.bytes()) < len(d)+slotSize {
			np, err := h.newPage()
			if err != nil {
				return nil, err
			}
			p = np
			h.pages = append(h.pages, p)
			pi = len(h.pages) - 1
		} else if p.stamp != h.epoch {
			wp, err := h.writable(pi)
			if err != nil {
				return nil, err
			}
			p = wp
		}
		slot := appendRecord(p.dirty(), d)
		rids = append(rids, RID{Page: uint32(pi), Slot: uint16(slot)})
		h.rowCount++
	}
	return rids, nil
}

// Get returns the payload stored at rid. The returned slice aliases page
// memory and is only valid until the next mutation; callers that retain it
// must copy.
func (h *Heap) Get(rid RID) ([]byte, error) {
	b, off, l, err := locate(h.pages, rid)
	if err != nil {
		return nil, err
	}
	if h.PageReads != nil {
		h.PageReads.Add(1)
	}
	return b[off : off+l], nil
}

// Delete removes the record at rid.
func (h *Heap) Delete(rid RID) error {
	if _, _, _, err := locate(h.pages, rid); err != nil {
		return err
	}
	h.snap = nil
	p, err := h.writable(int(rid.Page))
	if err != nil {
		return err
	}
	setSlot(p.dirty(), int(rid.Slot), 0, 0)
	h.rowCount--
	if int(rid.Page) < h.insertHint {
		h.insertHint = int(rid.Page)
	}
	return nil
}

// Update replaces the payload at rid. When the new payload fits the page it
// stays in place and the same RID remains valid; otherwise the record moves
// and the new RID is returned. Callers must use the returned RID.
func (h *Heap) Update(rid RID, data []byte) (RID, error) {
	if len(data) > h.maxRow() {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	_, _, l, err := locate(h.pages, rid)
	if err != nil {
		return RID{}, err
	}
	h.snap = nil
	p, err := h.writable(int(rid.Page))
	if err != nil {
		return RID{}, err
	}
	b := p.dirty()
	off, _ := slot(b, int(rid.Slot))
	if len(data) <= l {
		copy(b[off:], data)
		setSlot(b, int(rid.Slot), off, len(data))
		return rid, nil
	}
	// Try to keep it on the same page (slot reuse preserves the RID only if
	// insert happens to pick this slot; simplest correct behaviour: delete
	// then insert, possibly on the same page).
	setSlot(b, int(rid.Slot), 0, 0)
	if slot, ok := pageInsert(b, data); ok {
		return RID{Page: rid.Page, Slot: uint16(slot)}, nil
	}
	h.rowCount--
	return h.Insert(data)
}

func locate(pages []*page, rid RID) ([]byte, int, int, error) {
	if int(rid.Page) >= len(pages) {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	b := pages[rid.Page].bytes()
	if int(rid.Slot) >= numSlots(b) {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	off, l := slot(b, int(rid.Slot))
	if l == 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	return b, off, l, nil
}

// Scan calls fn for every live record in RID order. The payload slice aliases
// page memory; fn must not retain it. Scanning stops when fn returns false.
func (h *Heap) Scan(fn func(rid RID, data []byte) bool) {
	scanPages(h.pages, 0, len(h.pages), h.PageReads, fn)
}

func scanPages(pages []*page, lo, hi int, reads *atomic.Int64, fn func(rid RID, data []byte) bool) {
	for pi := lo; pi < hi; pi++ {
		b := pages[pi].bytes()
		if reads != nil {
			reads.Add(1)
		}
		for si := 0; si < numSlots(b); si++ {
			off, l := slot(b, si)
			if l == 0 {
				continue
			}
			if !fn(RID{Page: uint32(pi), Slot: uint16(si)}, b[off:off+l]) {
				return
			}
		}
	}
}

// Stats describes heap occupancy.
type Stats struct {
	Pages     int
	Rows      int
	LiveBytes int
}

// Stats returns occupancy counters.
func (h *Heap) Stats() Stats {
	return pageStats(h.pages, h.rowCount)
}

func pageStats(pages []*page, rows int) Stats {
	s := Stats{Pages: len(pages), Rows: rows}
	for _, p := range pages {
		s.LiveBytes += liveBytes(p.bytes())
	}
	return s
}

// PageIDs returns the physical page-file id of every page in logical order,
// for the checkpoint manifest. Zero ids (unpooled frames) never appear in a
// paged heap.
func (h *Heap) PageIDs() []bufpool.PageID {
	ids := make([]bufpool.PageID, len(h.pages))
	for i, p := range h.pages {
		ids[i] = p.fr.ID()
	}
	return ids
}

// RestorePaged rebuilds a paged heap from a checkpoint manifest: ids are the
// physical page-file ids in logical page order, rows the live record count.
// No page I/O happens here — payloads fault in on first access. Restored
// pages are frozen (epoch 1, stamp 0) so the first mutation copies them to
// fresh physical pages, preserving the checkpoint's on-disk image.
func RestorePaged(pool *bufpool.Pool, ids []bufpool.PageID, rows int) *Heap {
	h := &Heap{pool: pool, rowCount: rows, epoch: 1}
	h.pages = make([]*page, len(ids))
	for i, id := range ids {
		p := &page{fr: pool.Adopt(id), stamp: 0}
		h.freeOnGC(p)
		h.pages[i] = p
	}
	return h
}

// Snapshot is an immutable point-in-time view of a heap. It shares page
// memory with the heap via copy-on-write: the heap clones any frozen page
// before mutating it, so a Snapshot can be read concurrently, without locks,
// while the heap keeps changing. Old pages are reclaimed by the garbage
// collector once the last Snapshot referencing them is dropped (and, in
// paged mode, their physical page slots are returned to the allocator).
type Snapshot struct {
	pages []*page
	rows  int
	reads *atomic.Int64
}

// Snapshot publishes the current contents as an immutable Snapshot and
// advances the copy-on-write epoch. The result is cached: snapshotting an
// unmodified heap returns the same Snapshot without copying anything.
// Snapshot must be called from the writer side (it is not safe to race with
// mutations); the returned Snapshot itself is safe for concurrent use.
func (h *Heap) Snapshot() *Snapshot {
	if h.snap == nil {
		h.epoch++
		h.snap = &Snapshot{
			pages: append([]*page(nil), h.pages...),
			rows:  h.rowCount,
			reads: h.PageReads,
		}
	}
	return h.snap
}

// Rows returns the number of live records in the snapshot.
func (s *Snapshot) Rows() int { return s.rows }

// Pages returns the number of pages in the snapshot, for page-range
// partitioned parallel scans.
func (s *Snapshot) Pages() int { return len(s.pages) }

// Get returns the payload stored at rid. The returned slice aliases
// immutable snapshot memory and stays valid for the snapshot's lifetime.
func (s *Snapshot) Get(rid RID) ([]byte, error) {
	b, off, l, err := locate(s.pages, rid)
	if err != nil {
		return nil, err
	}
	if s.reads != nil {
		s.reads.Add(1)
	}
	return b[off : off+l], nil
}

// Scan calls fn for every live record in RID order, like Heap.Scan.
func (s *Snapshot) Scan(fn func(rid RID, data []byte) bool) {
	scanPages(s.pages, 0, len(s.pages), s.reads, fn)
}

// ScanRange scans only pages [lo, hi), the unit of work handed to one worker
// of a parallel heap scan. Bounds are clamped to the snapshot.
func (s *Snapshot) ScanRange(lo, hi int, fn func(rid RID, data []byte) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.pages) {
		hi = len(s.pages)
	}
	scanPages(s.pages, lo, hi, s.reads, fn)
}

// Stats returns occupancy counters for the snapshot.
func (s *Snapshot) Stats() Stats {
	return pageStats(s.pages, s.rows)
}

// Iter is a pull iterator over a snapshot's live records in RID order.
type Iter struct {
	pages  []*page
	pi, hi int // current page, exclusive page bound
	si     int // next slot on the current page
	reads  *atomic.Int64
}

// Iter returns a pull iterator over every live record.
func (s *Snapshot) Iter() *Iter { return s.IterRange(0, len(s.pages)) }

// IterRange returns a pull iterator over pages [lo, hi), clamped to the
// snapshot — the unit of work handed to one worker of a parallel heap scan.
func (s *Snapshot) IterRange(lo, hi int) *Iter {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.pages) {
		hi = len(s.pages)
	}
	it := &Iter{pages: s.pages, pi: lo, hi: hi, reads: s.reads}
	if lo < hi && it.reads != nil {
		it.reads.Add(1)
	}
	return it
}

// Next returns the next live record, or ok=false at the end. The payload
// aliases immutable snapshot memory and stays valid for the snapshot's
// lifetime.
func (it *Iter) Next() (RID, []byte, bool) {
	for it.pi < it.hi {
		b := it.pages[it.pi].bytes()
		for it.si < numSlots(b) {
			si := it.si
			it.si++
			off, l := slot(b, si)
			if l == 0 {
				continue
			}
			return RID{Page: uint32(it.pi), Slot: uint16(si)}, b[off : off+l], true
		}
		it.pi++
		it.si = 0
		if it.pi < it.hi && it.reads != nil {
			it.reads.Add(1)
		}
	}
	return RID{}, nil, false
}
