// Package heap implements slotted-page heap storage for table rows. Rows are
// stored as opaque byte strings (the engine encodes them with the sqltypes
// row codec) addressed by record ids (RIDs). Pages follow the classic slotted
// layout: a slot directory growing forward from the header and row payloads
// growing backward from the end of the page.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// PageSize is the size of a heap page in bytes.
const PageSize = 8192

const (
	headerSize = 6 // numSlots(2) freeStart(2) freeEnd(2)
	slotSize   = 4 // offset(2) length(2)
)

// MaxRowSize is the largest payload a single page can hold.
const MaxRowSize = PageSize - headerSize - slotSize

// RID addresses a record: page number and slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Less orders RIDs by page, then slot.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// ErrRowTooLarge is returned when a payload exceeds MaxRowSize.
var ErrRowTooLarge = errors.New("heap: row larger than page")

// ErrNotFound is returned for RIDs that do not address a live record.
var ErrNotFound = errors.New("heap: record not found")

type page struct {
	buf []byte
	// stamp is the heap epoch the page was allocated or cloned in. Pages
	// stamped before the current epoch may be referenced by a published
	// Snapshot and must be cloned (copy-on-write) before mutation.
	stamp uint64
}

func newPage(stamp uint64) *page {
	p := &page{buf: make([]byte, PageSize), stamp: stamp}
	p.setNumSlots(0)
	p.setFreeStart(headerSize)
	p.setFreeEnd(PageSize)
	return p
}

// clone returns a mutable copy of the page stamped with the given epoch.
func (p *page) clone(stamp uint64) *page {
	c := &page{buf: make([]byte, PageSize), stamp: stamp}
	copy(c.buf, p.buf)
	return c
}

func (p *page) numSlots() int       { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *page) setNumSlots(n int)   { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *page) freeStart() int      { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *page) setFreeStart(n int)  { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }
func (p *page) freeEnd() int        { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }
func (p *page) setFreeEnd(n int)    { binary.LittleEndian.PutUint16(p.buf[4:6], uint16(n)) }
func (p *page) contiguousFree() int { return p.freeEnd() - p.freeStart() }

func (p *page) slot(i int) (off, length int) {
	base := headerSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *page) setSlot(i, off, length int) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// deadSlot returns the index of a reusable dead slot, or -1.
func (p *page) deadSlot() int {
	for i := 0; i < p.numSlots(); i++ {
		if _, l := p.slot(i); l == 0 {
			return i
		}
	}
	return -1
}

// fits reports whether data would fit in the page (directly or after
// compaction) without mutating it, so callers can probe a possibly
// snapshot-shared page before paying for a copy-on-write clone.
func (p *page) fits(data []byte) bool {
	need := len(data)
	if p.deadSlot() == -1 {
		need += slotSize
	}
	if p.contiguousFree() >= need {
		return true
	}
	return p.deadBytes() > 0 && p.compacted().contiguousFree() >= need
}

// insert places data in the page, reusing a dead slot when one exists.
// It reports the slot used and whether the insert fit.
func (p *page) insert(data []byte) (int, bool) {
	slot := p.deadSlot()
	need := len(data)
	if slot == -1 {
		need += slotSize
	}
	if p.contiguousFree() < need {
		if p.deadBytes() > 0 && p.compacted().contiguousFree() >= need {
			p.compact()
		} else {
			return 0, false
		}
	}
	if slot == -1 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
		p.setFreeStart(p.freeStart() + slotSize)
	}
	off := p.freeEnd() - len(data)
	copy(p.buf[off:], data)
	p.setFreeEnd(off)
	p.setSlot(slot, off, len(data))
	return slot, true
}

// deadBytes returns payload bytes no longer referenced by a live slot.
func (p *page) deadBytes() int {
	live := 0
	for i := 0; i < p.numSlots(); i++ {
		_, l := p.slot(i)
		live += l
	}
	return (PageSize - p.freeEnd()) - live
}

// compacted returns a logical view of free space after compaction without
// mutating the page.
func (p *page) compacted() *page {
	live := 0
	for i := 0; i < p.numSlots(); i++ {
		_, l := p.slot(i)
		live += l
	}
	c := &page{buf: make([]byte, headerSize)}
	c.buf = append(c.buf, make([]byte, PageSize-headerSize)...)
	c.setNumSlots(p.numSlots())
	c.setFreeStart(p.freeStart())
	c.setFreeEnd(PageSize - live)
	return c
}

// compact rewrites live payloads to the end of the page, reclaiming dead
// space. Slot numbers (and therefore RIDs) are preserved.
func (p *page) compact() {
	type rec struct {
		slot int
		data []byte
	}
	var recs []rec
	for i := 0; i < p.numSlots(); i++ {
		off, l := p.slot(i)
		if l == 0 {
			continue
		}
		d := make([]byte, l)
		copy(d, p.buf[off:off+l])
		recs = append(recs, rec{i, d})
	}
	end := PageSize
	for _, r := range recs {
		end -= len(r.data)
		copy(p.buf[end:], r.data)
		p.setSlot(r.slot, end, len(r.data))
	}
	p.setFreeEnd(end)
}

// Heap is an append-friendly collection of slotted pages. Mutations are
// copy-on-write against the most recently published Snapshot: pages stamped
// in an earlier epoch are cloned before being written, so a Snapshot stays
// immutable for as long as any reader holds it.
type Heap struct {
	pages    []*page
	rowCount int
	// insertHint is the page most recently found to have space; inserts try
	// it first so bulk loads stay O(1) per row.
	insertHint int
	// epoch advances each time a Snapshot is published; pages stamped before
	// the current epoch are frozen and cloned on write.
	epoch uint64
	// snap caches the last published Snapshot; mutations invalidate it, so
	// snapshotting an unchanged heap costs one pointer load.
	snap *Snapshot
	// PageReads, when set, is incremented once per page accessed by reads
	// (Get and Scan). The catalog points it at a shared engine counter; the
	// nil check keeps the package dependency-free.
	PageReads *atomic.Int64
}

// New returns an empty heap.
func New() *Heap { return &Heap{} }

// writable returns page pi, cloning it first if it is frozen in an earlier
// epoch (and therefore possibly shared with a published Snapshot).
func (h *Heap) writable(pi int) *page {
	p := h.pages[pi]
	if p.stamp != h.epoch {
		p = p.clone(h.epoch)
		h.pages[pi] = p
	}
	return p
}

// Insert stores data and returns its RID.
func (h *Heap) Insert(data []byte) (RID, error) {
	if len(data) > MaxRowSize {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	h.snap = nil
	// Probe fit read-only before cloning: a full page must not trigger a
	// wasted copy-on-write of 8 KiB.
	tryPage := func(pi int) (int, bool) {
		if !h.pages[pi].fits(data) {
			return 0, false
		}
		return h.writable(pi).insert(data)
	}
	if h.insertHint < len(h.pages) {
		if slot, ok := tryPage(h.insertHint); ok {
			h.rowCount++
			return RID{Page: uint32(h.insertHint), Slot: uint16(slot)}, nil
		}
	}
	// Try the last page, then allocate.
	if n := len(h.pages); n > 0 && n-1 != h.insertHint {
		if slot, ok := tryPage(n - 1); ok {
			h.insertHint = n - 1
			h.rowCount++
			return RID{Page: uint32(n - 1), Slot: uint16(slot)}, nil
		}
	}
	p := newPage(h.epoch)
	h.pages = append(h.pages, p)
	h.insertHint = len(h.pages) - 1
	slot, ok := p.insert(data)
	if !ok {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	h.rowCount++
	return RID{Page: uint32(len(h.pages) - 1), Slot: uint16(slot)}, nil
}

// AppendBatch stores every payload in order and returns one RID per payload.
// It is the bulk-load fast path: records are appended to the tail page (no
// dead-slot search, no compaction probing), and a new page is allocated the
// moment one does not fit. All payloads are validated before any is stored,
// so an error means the heap is unchanged.
func (h *Heap) AppendBatch(payloads [][]byte) ([]RID, error) {
	for _, d := range payloads {
		if len(d) > MaxRowSize {
			return nil, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(d))
		}
	}
	h.snap = nil
	rids := make([]RID, 0, len(payloads))
	var p *page
	pi := len(h.pages) - 1
	if pi >= 0 {
		p = h.pages[pi]
	}
	for _, d := range payloads {
		if p == nil || p.contiguousFree() < len(d)+slotSize {
			p = newPage(h.epoch)
			h.pages = append(h.pages, p)
			pi = len(h.pages) - 1
		} else if p.stamp != h.epoch {
			p = h.writable(pi)
		}
		slot := p.appendRecord(d)
		rids = append(rids, RID{Page: uint32(pi), Slot: uint16(slot)})
		h.rowCount++
	}
	return rids, nil
}

// appendRecord places data in a fresh slot at the end of the directory.
// The caller guarantees the payload plus a new slot fit the page.
func (p *page) appendRecord(data []byte) int {
	slot := p.numSlots()
	p.setNumSlots(slot + 1)
	p.setFreeStart(p.freeStart() + slotSize)
	off := p.freeEnd() - len(data)
	copy(p.buf[off:], data)
	p.setFreeEnd(off)
	p.setSlot(slot, off, len(data))
	return slot
}

// Get returns the payload stored at rid. The returned slice aliases page
// memory and is only valid until the next mutation; callers that retain it
// must copy.
func (h *Heap) Get(rid RID) ([]byte, error) {
	p, off, l, err := h.locate(rid)
	if err != nil {
		return nil, err
	}
	if h.PageReads != nil {
		h.PageReads.Add(1)
	}
	return p.buf[off : off+l], nil
}

// Delete removes the record at rid.
func (h *Heap) Delete(rid RID) error {
	if _, _, _, err := h.locate(rid); err != nil {
		return err
	}
	h.snap = nil
	h.writable(int(rid.Page)).setSlot(int(rid.Slot), 0, 0)
	h.rowCount--
	if int(rid.Page) < h.insertHint {
		h.insertHint = int(rid.Page)
	}
	return nil
}

// Update replaces the payload at rid. When the new payload fits the page it
// stays in place and the same RID remains valid; otherwise the record moves
// and the new RID is returned. Callers must use the returned RID.
func (h *Heap) Update(rid RID, data []byte) (RID, error) {
	if len(data) > MaxRowSize {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRowTooLarge, len(data))
	}
	_, _, l, err := h.locate(rid)
	if err != nil {
		return RID{}, err
	}
	h.snap = nil
	p := h.writable(int(rid.Page))
	off, _ := p.slot(int(rid.Slot))
	if len(data) <= l {
		copy(p.buf[off:], data)
		p.setSlot(int(rid.Slot), off, len(data))
		return rid, nil
	}
	// Try to keep it on the same page (slot reuse preserves the RID only if
	// insert happens to pick this slot; simplest correct behaviour: delete
	// then insert, possibly on the same page).
	p.setSlot(int(rid.Slot), 0, 0)
	if slot, ok := p.insert(data); ok {
		return RID{Page: rid.Page, Slot: uint16(slot)}, nil
	}
	h.rowCount--
	return h.Insert(data)
}

func (h *Heap) locate(rid RID) (*page, int, int, error) {
	return locate(h.pages, rid)
}

func locate(pages []*page, rid RID) (*page, int, int, error) {
	if int(rid.Page) >= len(pages) {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	p := pages[rid.Page]
	if int(rid.Slot) >= p.numSlots() {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	off, l := p.slot(int(rid.Slot))
	if l == 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	return p, off, l, nil
}

// Scan calls fn for every live record in RID order. The payload slice aliases
// page memory; fn must not retain it. Scanning stops when fn returns false.
func (h *Heap) Scan(fn func(rid RID, data []byte) bool) {
	scanPages(h.pages, 0, len(h.pages), h.PageReads, fn)
}

func scanPages(pages []*page, lo, hi int, reads *atomic.Int64, fn func(rid RID, data []byte) bool) {
	for pi := lo; pi < hi; pi++ {
		p := pages[pi]
		if reads != nil {
			reads.Add(1)
		}
		for si := 0; si < p.numSlots(); si++ {
			off, l := p.slot(si)
			if l == 0 {
				continue
			}
			if !fn(RID{Page: uint32(pi), Slot: uint16(si)}, p.buf[off:off+l]) {
				return
			}
		}
	}
}

// Stats describes heap occupancy.
type Stats struct {
	Pages     int
	Rows      int
	LiveBytes int
}

// Stats returns occupancy counters.
func (h *Heap) Stats() Stats {
	return pageStats(h.pages, h.rowCount)
}

func pageStats(pages []*page, rows int) Stats {
	s := Stats{Pages: len(pages), Rows: rows}
	for _, p := range pages {
		for i := 0; i < p.numSlots(); i++ {
			_, l := p.slot(i)
			s.LiveBytes += l
		}
	}
	return s
}

// Snapshot is an immutable point-in-time view of a heap. It shares page
// memory with the heap via copy-on-write: the heap clones any frozen page
// before mutating it, so a Snapshot can be read concurrently, without locks,
// while the heap keeps changing. Old pages are reclaimed by the garbage
// collector once the last Snapshot referencing them is dropped.
type Snapshot struct {
	pages []*page
	rows  int
	reads *atomic.Int64
}

// Snapshot publishes the current contents as an immutable Snapshot and
// advances the copy-on-write epoch. The result is cached: snapshotting an
// unmodified heap returns the same Snapshot without copying anything.
// Snapshot must be called from the writer side (it is not safe to race with
// mutations); the returned Snapshot itself is safe for concurrent use.
func (h *Heap) Snapshot() *Snapshot {
	if h.snap == nil {
		h.epoch++
		h.snap = &Snapshot{
			pages: append([]*page(nil), h.pages...),
			rows:  h.rowCount,
			reads: h.PageReads,
		}
	}
	return h.snap
}

// Rows returns the number of live records in the snapshot.
func (s *Snapshot) Rows() int { return s.rows }

// Pages returns the number of pages in the snapshot, for page-range
// partitioned parallel scans.
func (s *Snapshot) Pages() int { return len(s.pages) }

// Get returns the payload stored at rid. The returned slice aliases
// immutable snapshot memory and stays valid for the snapshot's lifetime.
func (s *Snapshot) Get(rid RID) ([]byte, error) {
	p, off, l, err := locate(s.pages, rid)
	if err != nil {
		return nil, err
	}
	if s.reads != nil {
		s.reads.Add(1)
	}
	return p.buf[off : off+l], nil
}

// Scan calls fn for every live record in RID order, like Heap.Scan.
func (s *Snapshot) Scan(fn func(rid RID, data []byte) bool) {
	scanPages(s.pages, 0, len(s.pages), s.reads, fn)
}

// ScanRange scans only pages [lo, hi), the unit of work handed to one worker
// of a parallel heap scan. Bounds are clamped to the snapshot.
func (s *Snapshot) ScanRange(lo, hi int, fn func(rid RID, data []byte) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.pages) {
		hi = len(s.pages)
	}
	scanPages(s.pages, lo, hi, s.reads, fn)
}

// Stats returns occupancy counters for the snapshot.
func (s *Snapshot) Stats() Stats {
	return pageStats(s.pages, s.rows)
}

// Iter is a pull iterator over a snapshot's live records in RID order.
type Iter struct {
	pages  []*page
	pi, hi int // current page, exclusive page bound
	si     int // next slot on the current page
	reads  *atomic.Int64
}

// Iter returns a pull iterator over every live record.
func (s *Snapshot) Iter() *Iter { return s.IterRange(0, len(s.pages)) }

// IterRange returns a pull iterator over pages [lo, hi), clamped to the
// snapshot — the unit of work handed to one worker of a parallel heap scan.
func (s *Snapshot) IterRange(lo, hi int) *Iter {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.pages) {
		hi = len(s.pages)
	}
	it := &Iter{pages: s.pages, pi: lo, hi: hi, reads: s.reads}
	if lo < hi && it.reads != nil {
		it.reads.Add(1)
	}
	return it
}

// Next returns the next live record, or ok=false at the end. The payload
// aliases immutable snapshot memory and stays valid for the snapshot's
// lifetime.
func (it *Iter) Next() (RID, []byte, bool) {
	for it.pi < it.hi {
		p := it.pages[it.pi]
		for it.si < p.numSlots() {
			si := it.si
			it.si++
			off, l := p.slot(si)
			if l == 0 {
				continue
			}
			return RID{Page: uint32(it.pi), Slot: uint16(si)}, p.buf[off : off+l], true
		}
		it.pi++
		it.si = 0
		if it.pi < it.hi && it.reads != nil {
			it.reads.Add(1)
		}
	}
	return RID{}, nil, false
}
