package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/pagefile"
)

func TestInsertGet(t *testing.T) {
	h := New()
	rid, err := h.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestInsertEmptyPayload(t *testing.T) {
	h := New()
	// Zero-length payloads are indistinguishable from dead slots in the
	// slotted layout; the engine never stores them (rows always encode a
	// header byte), but the heap must not corrupt itself.
	rid, err := h.Insert([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err != nil {
		t.Fatal(err)
	}
}

func TestRowTooLarge(t *testing.T) {
	h := New()
	if _, err := h.Insert(make([]byte, MaxRowSize+1)); err == nil {
		t.Fatal("oversize insert succeeded")
	}
	if _, err := h.Insert(make([]byte, MaxRowSize)); err != nil {
		t.Fatalf("max-size insert failed: %v", err)
	}
}

func TestDelete(t *testing.T) {
	h := New()
	rid, _ := h.Insert([]byte("abc"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
	if err := h.Delete(rid); err == nil {
		t.Fatal("double Delete succeeded")
	}
	if s := h.Stats(); s.Rows != 0 {
		t.Fatalf("Rows = %d after delete", s.Rows)
	}
}

func TestGetBadRID(t *testing.T) {
	h := New()
	if _, err := h.Get(RID{Page: 5, Slot: 0}); err == nil {
		t.Fatal("Get on missing page succeeded")
	}
	h.Insert([]byte("x"))
	if _, err := h.Get(RID{Page: 0, Slot: 99}); err == nil {
		t.Fatal("Get on missing slot succeeded")
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := New()
	rid, _ := h.Insert([]byte("abcdef"))
	nrid, err := h.Update(rid, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Fatalf("shrinking update moved the row: %v -> %v", rid, nrid)
	}
	got, _ := h.Get(nrid)
	if string(got) != "xyz" {
		t.Fatalf("Get = %q", got)
	}
}

func TestUpdateGrow(t *testing.T) {
	h := New()
	rid, _ := h.Insert([]byte("ab"))
	big := bytes.Repeat([]byte("z"), 100)
	nrid, err := h.Update(rid, big)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(nrid)
	if !bytes.Equal(got, big) {
		t.Fatal("grown update lost data")
	}
	if s := h.Stats(); s.Rows != 1 {
		t.Fatalf("Rows = %d after grow", s.Rows)
	}
}

func TestMultiPageAndScan(t *testing.T) {
	h := New()
	const n = 5000
	want := map[RID][]byte{}
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf("row-%06d-%s", i, bytes.Repeat([]byte("p"), i%50)))
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		want[rid] = data
	}
	if s := h.Stats(); s.Pages < 2 || s.Rows != n {
		t.Fatalf("Stats = %+v", s)
	}
	seen := 0
	var prev RID
	first := true
	h.Scan(func(rid RID, data []byte) bool {
		if !first && !prev.Less(rid) {
			t.Fatalf("scan out of RID order: %v then %v", prev, rid)
		}
		prev, first = rid, false
		if !bytes.Equal(want[rid], data) {
			t.Fatalf("scan mismatch at %v", rid)
		}
		seen++
		return true
	})
	if seen != n {
		t.Fatalf("scan saw %d rows, want %d", seen, n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	h := New()
	for i := 0; i < 10; i++ {
		h.Insert([]byte{byte(i)})
	}
	count := 0
	h.Scan(func(RID, []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("scan visited %d, want 3", count)
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	h := New()
	rid1, _ := h.Insert([]byte("one"))
	h.Insert([]byte("two"))
	h.Delete(rid1)
	rid3, _ := h.Insert([]byte("three"))
	if rid3 != rid1 {
		t.Fatalf("dead slot not reused: got %v want %v", rid3, rid1)
	}
}

func TestCompaction(t *testing.T) {
	h := New()
	// Fill a page with ~40 records, delete every other one, then insert a
	// record that only fits after compaction.
	payload := bytes.Repeat([]byte("x"), 190)
	var rids []RID
	for {
		rid, err := h.Insert(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page > 0 {
			break
		}
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i += 2 {
		h.Delete(rids[i])
	}
	big := bytes.Repeat([]byte("y"), 2000)
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != 0 {
		t.Fatalf("insert after deletes went to page %d, compaction failed", rid.Page)
	}
	// Survivors must be intact.
	for i := 1; i < len(rids); i += 2 {
		got, err := h.Get(rids[i])
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("record %v corrupted after compaction: %v", rids[i], err)
		}
	}
	got, _ := h.Get(rid)
	if !bytes.Equal(got, big) {
		t.Fatal("big record corrupted")
	}
}

// Torture test: random inserts/updates/deletes checked against a map.
func TestRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := New()
	ref := map[RID][]byte{}
	var live []RID
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || r.Intn(10) < 5:
			data := make([]byte, r.Intn(300)+1)
			r.Read(data)
			rid, err := h.Insert(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := ref[rid]; dup {
				t.Fatalf("op %d: RID %v handed out twice", op, rid)
			}
			ref[rid] = data
			live = append(live, rid)
		case r.Intn(10) < 5:
			i := r.Intn(len(live))
			rid := live[i]
			data := make([]byte, r.Intn(300)+1)
			r.Read(data)
			nrid, err := h.Update(rid, data)
			if err != nil {
				t.Fatal(err)
			}
			if nrid != rid {
				if _, dup := ref[nrid]; dup {
					t.Fatalf("op %d: moved to live RID %v", op, nrid)
				}
				delete(ref, rid)
				live[i] = nrid
			}
			ref[nrid] = data
		default:
			i := r.Intn(len(live))
			rid := live[i]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(ref, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%2000 == 0 {
			verify(t, h, ref)
		}
	}
	verify(t, h, ref)
}

func verify(t *testing.T, h *Heap, ref map[RID][]byte) {
	t.Helper()
	seen := 0
	h.Scan(func(rid RID, data []byte) bool {
		want, ok := ref[rid]
		if !ok {
			t.Fatalf("scan found unexpected RID %v", rid)
		}
		if !bytes.Equal(want, data) {
			t.Fatalf("data mismatch at %v", rid)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("scan saw %d rows, want %d", seen, len(ref))
	}
	if s := h.Stats(); s.Rows != len(ref) {
		t.Fatalf("Stats.Rows = %d, want %d", s.Rows, len(ref))
	}
}

func TestAppendBatch(t *testing.T) {
	h := New()
	// Seed one record through the normal path so the batch continues on a
	// partially filled tail page.
	first, err := h.Insert([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 5000)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batch-record-%05d", i))
	}
	rids, err := h.AppendBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != len(payloads) {
		t.Fatalf("got %d rids", len(rids))
	}
	for i, rid := range rids {
		if i > 0 {
			prev := rids[i-1]
			if rid.Page < prev.Page || (rid.Page == prev.Page && rid.Slot <= prev.Slot) {
				t.Fatalf("rids not ascending at %d: %v then %v", i, prev, rid)
			}
		}
		data, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(payloads[i]) {
			t.Fatalf("record %d: got %q", i, data)
		}
	}
	if data, err := h.Get(first); err != nil || string(data) != "seed" {
		t.Fatalf("seed record lost: %q, %v", data, err)
	}
	if got := h.Stats().Rows; got != len(payloads)+1 {
		t.Fatalf("Rows = %d, want %d", got, len(payloads)+1)
	}
	if h.Stats().Pages < 2 {
		t.Fatalf("batch of %d records fit one page", len(payloads))
	}
}

func TestAppendBatchAllOrNothing(t *testing.T) {
	h := New()
	before := h.Stats()
	_, err := h.AppendBatch([][]byte{
		[]byte("fine"),
		make([]byte, MaxRowSize+1),
	})
	if err == nil {
		t.Fatal("oversized batch succeeded")
	}
	if got := h.Stats(); got != before {
		t.Fatalf("failed batch mutated heap: %+v", got)
	}
	rids, err := h.AppendBatch(nil)
	if err != nil || len(rids) != 0 {
		t.Fatalf("empty batch: %v, %v", rids, err)
	}
}

// newTestPool returns a tiny pool over a fresh page file.
func newTestPool(t *testing.T, frames int) *bufpool.Pool {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return bufpool.New(pf, frames)
}

func TestPagedHeapBeyondPool(t *testing.T) {
	pool := newTestPool(t, 8)
	h := NewPaged(pool)
	const n = 400
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("row-%04d-%s", i, strings.Repeat("x", 200)))
	}
	rids, err := h.AppendBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats().Pages <= pool.Capacity() {
		t.Fatalf("want more pages (%d) than pool frames (%d)", h.Stats().Pages, pool.Capacity())
	}
	// Flush so clean pages become evictable, then read everything back
	// through faults.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(payloads[i]) {
			t.Fatalf("record %d: got %q", i, got)
		}
	}
	st := pool.Stats()
	if st.Misses == 0 {
		t.Fatal("expected faults reading a heap larger than the pool")
	}
	if st.Resident > int64(pool.Capacity())+8 {
		t.Fatalf("resident frames %d far exceed capacity %d", st.Resident, pool.Capacity())
	}
	if problems := h.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
}

func TestPagedHeapRestoreRoundTrip(t *testing.T) {
	pool := newTestPool(t, 16)
	h := NewPaged(pool)
	var want []string
	var rids []RID
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("payload-%d-%s", i, strings.Repeat("y", 150))
		rid, err := h.Insert([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, s)
		rids = append(rids, rid)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ids := h.PageIDs()
	for _, id := range ids {
		if id == 0 {
			t.Fatal("paged heap produced a zero page id")
		}
	}

	// A restored heap (same pool, as recovery would build it) sees the data.
	h2 := RestorePaged(pool, ids, h.Stats().Rows)
	for i, rid := range rids {
		got, err := h2.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want[i] {
			t.Fatalf("restored record %d: got %q", i, got)
		}
	}
	// Mutating the restored heap copies pages to fresh ids (shadow paging).
	if err := h2.Delete(rids[0]); err != nil {
		t.Fatal(err)
	}
	if h2.PageIDs()[0] == ids[0] {
		t.Fatal("mutation did not shadow-copy the restored page")
	}
	if problems := h2.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
}
