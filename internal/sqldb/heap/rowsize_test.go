package heap

import (
	"errors"
	"testing"
)

// The in-RAM tier keeps the legacy 8 KiB page so snapshots written by
// pre-pool builds — whose rows may reach the old MaxRowSize — still load;
// pooled pages mirror disk pages and cap rows slightly lower.
func TestRowSizeBoundsPerTier(t *testing.T) {
	if PageSize != 8192 {
		t.Fatalf("in-RAM PageSize = %d, want the legacy 8192", PageSize)
	}

	// Legacy-size rows fit the in-RAM tier (Insert and the batch path).
	h := New()
	if _, err := h.Insert(make([]byte, MaxRowSize)); err != nil {
		t.Fatalf("in-RAM MaxRowSize insert: %v", err)
	}
	if _, err := h.AppendBatch([][]byte{make([]byte, MaxRowSize)}); err != nil {
		t.Fatalf("in-RAM MaxRowSize batch: %v", err)
	}

	// The pooled tier rejects them cleanly at its smaller bound.
	ph := NewPaged(newTestPool(t, 8))
	if _, err := ph.Insert(make([]byte, pooledMaxRow+1)); !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("pooled oversize insert: %v", err)
	}
	if _, err := ph.AppendBatch([][]byte{make([]byte, MaxRowSize)}); !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("pooled legacy-size batch: %v", err)
	}
	rid, err := ph.Insert(make([]byte, pooledMaxRow))
	if err != nil {
		t.Fatalf("pooled pooledMaxRow insert: %v", err)
	}
	if got, err := ph.Get(rid); err != nil || len(got) != pooledMaxRow {
		t.Fatalf("pooled max row read back: len %d, err %v", len(got), err)
	}
	if _, err := ph.Update(rid, make([]byte, pooledMaxRow+1)); !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("pooled oversize update: %v", err)
	}
}
