package sqldb

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ordxml/internal/govern"
)

// waitGoroutines polls until the process goroutine count drops back to base,
// failing with a full stack dump if it does not — the leak detector for the
// streaming-cursor tests.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

func TestQueryRowsStreams(t *testing.T) {
	db := concurrentFixture(t, 100)
	rows, err := db.QueryRows(context.Background(), `SELECT id, v FROM t WHERE id < ?`, I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 2 || got[0] != "id" {
		t.Fatalf("columns = %v", got)
	}
	n := 0
	for rows.Next() {
		if rows.Row()[0].Int() >= 10 {
			t.Fatalf("unexpected row %v", rows.Row())
		}
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("streamed %d rows, want 10", n)
	}
	if got := db.Metrics().Gauges["sqldb.cursors.open"]; got != 0 {
		t.Fatalf("open cursors after Close = %d", got)
	}
}

// TestQueryRowsEarlyCloseParallel is the cursor-leak regression test: a
// parallel plan's Gather workers must be stopped and reaped when the cursor
// is closed after reading only part of the result. Before streaming cursors
// owned their operator tree, an early close left the workers parked on the
// row channel forever.
func TestQueryRowsEarlyCloseParallel(t *testing.T) {
	db := concurrentFixture(t, 4096)
	db.SetParallelism(4)
	base := runtime.NumGoroutine()

	// ORDER BY over a big filtered scan is the shape the planner parallelizes:
	// Sort(Gather(Filter(SeqScan))).
	rows, err := db.QueryRows(context.Background(), `SELECT id, v FROM t WHERE v = ? ORDER BY v`, I(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Counters["sqldb.query.parallel"]; got != 1 {
		t.Fatalf("plan did not go parallel (parallel queries = %d)", got)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("row %d: Next = false, err %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
	if got := db.Metrics().Gauges["sqldb.cursors.open"]; got != 0 {
		t.Fatalf("open cursors after early close = %d", got)
	}
	// Close is idempotent, and Next after Close stays false.
	if rows.Next() {
		t.Fatal("Next succeeded after Close")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRowsCancellation(t *testing.T) {
	db := concurrentFixture(t, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRows(ctx, `SELECT id, v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cancel()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); !errors.Is(err, govern.ErrCanceled) {
		t.Fatalf("after cancel: %d rows, err %v", n, err)
	}
}

func TestQueryRowsDeadline(t *testing.T) {
	db := concurrentFixture(t, 4096)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rows, err := db.QueryRows(ctx, `SELECT id, v FROM t`)
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if !errors.Is(err, govern.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	waitGoroutines(t, base)
}

func TestQueryRowsMemoryBudget(t *testing.T) {
	db := concurrentFixture(t, 4096)
	db.SetMemoryBudget(1024)
	rows, err := db.QueryRows(context.Background(), `SELECT id, v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	if got := db.Metrics().Counters["mem.budget_aborts"]; got < 1 {
		t.Fatalf("budget aborts = %d", got)
	}
}

// TestQueryAbortsReleaseWorkersUnderRace floods a parallel plan with
// cancellations: many short-deadline queries against a table big enough to
// spawn Gather workers, all of which must unwind without leaking.
func TestQueryAbortsReleaseWorkersUnderRace(t *testing.T) {
	db := concurrentFixture(t, 4096)
	db.SetParallelism(4)
	base := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
		_, err := db.QueryCtx(ctx, `SELECT id, v FROM t WHERE v = ? ORDER BY v`, I(0))
		cancel()
		if err != nil && !errors.Is(err, govern.ErrDeadlineExceeded) && !errors.Is(err, govern.ErrCanceled) {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	waitGoroutines(t, base)
}
