package sqldb

import (
	"bytes"
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

func TestPersistRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (
		i INT PRIMARY KEY, r REAL, s TEXT NOT NULL, b BLOB, f BOOL)`)
	mustExec(t, db, `CREATE INDEX t_s ON t (s, i)`)
	mustExec(t, db, `CREATE TABLE empty (x INT)`)
	ins, _ := db.Prepare("INSERT INTO t VALUES (?, ?, ?, ?, ?)")
	for i := int64(0); i < 500; i++ {
		var blob sqltypes.Value = B([]byte{byte(i), 0x00, 0xFF})
		if i%7 == 0 {
			blob = Null()
		}
		if _, err := ins.Exec(I(i), F(float64(i)/3), S("row"), blob, sqltypes.NewBool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Row data and types survive.
	res := mustQuery(t, back, "SELECT i, r, s, b, f FROM t WHERE i = 3")
	r := res.Rows[0]
	if r[0].Int() != 3 || r[1].Real() != 1.0 || r[2].Text() != "row" ||
		!bytes.Equal(r[3].Blob(), []byte{3, 0, 0xFF}) || r[4].Bool() {
		t.Fatalf("row 3 = %v", r)
	}
	res = mustQuery(t, back, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 500 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Indexes were rebuilt: plans use them and uniqueness is enforced.
	p, err := back.Explain("SELECT s FROM t WHERE i = 9")
	if err != nil || !contains(p, "IndexScan t using t_pkey") {
		t.Errorf("restored plan:\n%s (%v)", p, err)
	}
	if _, err := back.Exec("INSERT INTO t VALUES (3, 0, 'dup', NULL, FALSE)"); err == nil {
		t.Error("unique constraint lost after restore")
	}
	// NOT NULL constraint survives.
	if _, err := back.Exec("INSERT INTO t VALUES (1000, 0, NULL, NULL, FALSE)"); err == nil {
		t.Error("NOT NULL lost after restore")
	}
	// Empty table exists.
	res = mustQuery(t, back, "SELECT COUNT(*) FROM empty")
	if res.Rows[0][0].Int() != 0 {
		t.Error("empty table corrupted")
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

func TestPersistBadInput(t *testing.T) {
	for _, data := range []string{"", "short", "ordxmlDB\xff\xff\xff\xff\xff"} {
		if _, err := Load(bytes.NewReader([]byte(data))); err == nil {
			t.Errorf("Load(%q) succeeded", data)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("ordxmlDB")
	buf.WriteByte(99) // uvarint version 99
	if _, err := Load(&buf); err == nil {
		t.Error("future version accepted")
	}
}
