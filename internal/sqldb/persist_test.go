package sqldb

import (
	"bytes"
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

func TestPersistRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (
		i INT PRIMARY KEY, r REAL, s TEXT NOT NULL, b BLOB, f BOOL)`)
	mustExec(t, db, `CREATE INDEX t_s ON t (s, i)`)
	mustExec(t, db, `CREATE TABLE empty (x INT)`)
	ins, _ := db.Prepare("INSERT INTO t VALUES (?, ?, ?, ?, ?)")
	for i := int64(0); i < 500; i++ {
		var blob sqltypes.Value = B([]byte{byte(i), 0x00, 0xFF})
		if i%7 == 0 {
			blob = Null()
		}
		if _, err := ins.Exec(I(i), F(float64(i)/3), S("row"), blob, sqltypes.NewBool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Row data and types survive.
	res := mustQuery(t, back, "SELECT i, r, s, b, f FROM t WHERE i = 3")
	r := res.Rows[0]
	if r[0].Int() != 3 || r[1].Real() != 1.0 || r[2].Text() != "row" ||
		!bytes.Equal(r[3].Blob(), []byte{3, 0, 0xFF}) || r[4].Bool() {
		t.Fatalf("row 3 = %v", r)
	}
	res = mustQuery(t, back, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 500 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Indexes were rebuilt: plans use them and uniqueness is enforced.
	p, err := back.Explain("SELECT s FROM t WHERE i = 9")
	if err != nil || !contains(p, "IndexScan t using t_pkey") {
		t.Errorf("restored plan:\n%s (%v)", p, err)
	}
	if _, err := back.Exec("INSERT INTO t VALUES (3, 0, 'dup', NULL, FALSE)"); err == nil {
		t.Error("unique constraint lost after restore")
	}
	// NOT NULL constraint survives.
	if _, err := back.Exec("INSERT INTO t VALUES (1000, 0, NULL, NULL, FALSE)"); err == nil {
		t.Error("NOT NULL lost after restore")
	}
	// Empty table exists.
	res = mustQuery(t, back, "SELECT COUNT(*) FROM empty")
	if res.Rows[0][0].Int() != 0 {
		t.Error("empty table corrupted")
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

func TestPersistBadInput(t *testing.T) {
	for _, data := range []string{"", "short", "ordxmlDB\xff\xff\xff\xff\xff"} {
		if _, err := Load(bytes.NewReader([]byte(data))); err == nil {
			t.Errorf("Load(%q) succeeded", data)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("ordxmlDB")
	buf.WriteByte(99) // uvarint version 99
	if _, err := Load(&buf); err == nil {
		t.Error("future version accepted")
	}
}

// dumpSample builds a small database and returns its snapshot bytes.
func dumpSample(t *testing.T) []byte {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, S(kv[0]), S(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPersistTruncatedRejected(t *testing.T) {
	data := dumpSample(t)
	// Every proper prefix must be rejected: with the checksum trailer a
	// truncation can no longer masquerade as a smaller valid snapshot.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) loaded", cut, len(data))
		}
	}
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

func TestPersistCorruptionRejected(t *testing.T) {
	data := dumpSample(t)
	// Flip one bit somewhere in the body (past the magic, before the
	// trailer) and the checksum must catch it.
	for _, pos := range []int{len(persistMagic) + 1, len(data) / 2, len(data) - 13} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at %d not detected", pos)
		}
	}
}

func TestPersistReadsVersion1(t *testing.T) {
	data := dumpSample(t)
	// Rewrite the version byte to 1 and strip the trailer — the layout of
	// version 1 is identical minus the checksum, so this reconstructs a
	// legacy snapshot exactly.
	v1 := append([]byte(nil), data[:len(data)-len(trailerMagic)-4]...)
	if v1[len(persistMagic)] != persistVersion {
		t.Fatalf("version byte = %d", v1[len(persistMagic)])
	}
	v1[len(persistMagic)] = 1
	db, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM kv")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
