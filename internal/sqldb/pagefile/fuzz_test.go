package pagefile

import (
	"bytes"
	"testing"
)

// FuzzVerifyPage checks the page header codec never panics on arbitrary
// page-sized input, and that seal→verify is an identity: re-sealing any
// page that verified must reproduce the same header bytes.
func FuzzVerifyPage(f *testing.F) {
	sealed := make([]byte, PageSize)
	copy(sealed[HeaderSize:], "seed payload")
	SealPage(sealed, 7, 0)
	f.Add(sealed)
	f.Add(make([]byte, PageSize))
	short := make([]byte, 15)
	f.Add(short)
	flipped := append([]byte(nil), sealed...)
	flipped[0] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := VerifyPage(data)
		if err != nil {
			return
		}
		// The page verified: sealing the same payload under the same LSN and
		// flags must be byte-identical (the codec is canonical).
		resealed := append([]byte(nil), data...)
		SealPage(resealed, h.LSN, h.Flags)
		if !bytes.Equal(resealed, data) {
			t.Fatalf("seal/verify not canonical:\n in %x\nout %x", data[:HeaderSize], resealed[:HeaderSize])
		}
	})
}
