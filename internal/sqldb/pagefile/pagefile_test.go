package pagefile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "pages.db")
}

func TestCreateOpenRoundTrip(t *testing.T) {
	path := tempFile(t)
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, PayloadSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := pf.WritePage(3, 42, payload); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	h, got, err := pf.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if h.LSN != 42 {
		t.Fatalf("LSN = %d, want 42", h.LSN)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload round trip mismatch")
	}
}

func TestUnwrittenPageFailsChecksum(t *testing.T) {
	pf, err := Create(tempFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := pf.EnsureSize(10); err != nil {
		t.Fatal(err)
	}
	// Slot 5 was preallocated but never written: all-zero pages must not
	// verify (CRC of a zero page is nonzero).
	if _, _, err := pf.ReadPage(5); err == nil {
		t.Fatal("reading an unwritten page succeeded; want checksum error")
	}
}

func TestCorruptPageDetected(t *testing.T) {
	path := tempFile(t)
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, PayloadSize)
	copy(payload, "hello pages")
	if err := pf.WritePage(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[PageSize+HeaderSize+4] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, _, err := pf.ReadPage(1); err == nil {
		t.Fatal("corrupt page read succeeded; want checksum error")
	}
}

func TestHeaderPageRejected(t *testing.T) {
	pf, err := Create(tempFile(t))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := pf.WritePage(0, 0, make([]byte, PayloadSize)); err == nil {
		t.Fatal("WritePage(0) succeeded; page 0 is reserved")
	}
	if _, _, err := pf.ReadPage(0); err == nil {
		t.Fatal("ReadPage(0) succeeded; page 0 is reserved")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := tempFile(t)
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a zeroed file")
	}
}

func TestSealVerifyHeaderFields(t *testing.T) {
	page := make([]byte, PageSize)
	copy(page[HeaderSize:], "payload bytes")
	SealPage(page, 123456789, 0)
	h, err := VerifyPage(page)
	if err != nil {
		t.Fatal(err)
	}
	if h.LSN != 123456789 {
		t.Fatalf("LSN = %d", h.LSN)
	}
	if h.CRC != binary.LittleEndian.Uint32(page[0:4]) {
		t.Fatal("decoded CRC does not match stored CRC")
	}
	// Any header or payload flip must break verification.
	for _, off := range []int{4, 11, 12, HeaderSize, PageSize - 1} {
		page[off] ^= 1
		if _, err := VerifyPage(page); err == nil {
			t.Fatalf("flip at %d not detected", off)
		}
		page[off] ^= 1
	}
}

func TestEnsureSizeGrowsInChunks(t *testing.T) {
	path := tempFile(t)
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if err := pf.EnsureSize(1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%PageSize != 0 {
		t.Fatalf("file size %d not page aligned", st.Size())
	}
	if st.Size() < 2*PageSize {
		t.Fatalf("file did not grow: %d bytes", st.Size())
	}
}
