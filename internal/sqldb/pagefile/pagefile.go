// Package pagefile implements the on-disk page store underneath the buffer
// pool: a single preallocated file of fixed 8 KiB pages, each carrying a
// small header with a CRC32 of its contents and the WAL LSN it was last
// written under. Page 0 is the file header (magic, version, page size);
// data pages start at id 1. All I/O is page-aligned positional reads and
// writes (ReadAt/WriteAt), so concurrent access to distinct pages never
// interferes and the kernel sees aligned 8 KiB requests.
//
// The page header makes torn or bit-rotted pages detectable: ReadPage
// verifies the checksum and refuses to return a corrupt payload. The LSN
// field records the last WAL position that touched the page, which the
// buffer pool uses to enforce WAL-before-data ordering on dirty page
// flushes and which recovery tooling can use to reason about page age.
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"ordxml/internal/failpoint"
)

// Failpoints on the page I/O paths. The write point supports enospc mode
// (full-disk simulation) to drive the store's degraded read-only transition;
// the read point exercises fault handling above the pool.
var (
	fpWrite = failpoint.New("pagefile.write")
	fpRead  = failpoint.New("pagefile.read")
)

// PageID names one page slot in the file. ID 0 is the file header page and
// is never handed out for data.
type PageID uint32

const (
	// PageSize is the on-disk size of every page, header included.
	PageSize = 8192
	// HeaderSize is the per-page header: crc32(4) lsn(8) flags(2) reserved(2).
	HeaderSize = 16
	// PayloadSize is the usable payload of a data page.
	PayloadSize = PageSize - HeaderSize
)

// Header is the decoded form of a page header.
type Header struct {
	// CRC is the IEEE CRC32 of the page bytes after the CRC field itself
	// (LSN, flags, reserved, payload).
	CRC uint32
	// LSN is the WAL sequence number the page was last written under.
	LSN uint64
	// Flags is reserved for page-type bits; currently only FlagHeader is set
	// on page 0.
	Flags uint16
}

// Flags values.
const (
	// FlagHeader marks the file header page (page 0).
	FlagHeader uint16 = 1 << 0
)

// File-header payload layout (inside page 0's payload): magic, format
// version, page size. Everything else is reserved zeroes.
const (
	fileMagic   = "ordxmlPG"
	fileVersion = 1
)

// ErrCorrupt reports a page whose checksum does not match its contents.
var ErrCorrupt = errors.New("pagefile: page checksum mismatch")

// ErrBadPage reports a structurally invalid page access (id out of range).
var ErrBadPage = errors.New("pagefile: page id out of range")

// SealPage writes the header fields and checksum into page, which must be a
// full PageSize buffer whose payload (page[HeaderSize:]) is already in
// place. Exposed (with VerifyPage) so the header codec can be fuzzed.
func SealPage(page []byte, lsn uint64, flags uint16) {
	_ = page[PageSize-1]
	binary.LittleEndian.PutUint64(page[4:12], lsn)
	binary.LittleEndian.PutUint16(page[12:14], flags)
	binary.LittleEndian.PutUint16(page[14:16], 0)
	binary.LittleEndian.PutUint32(page[0:4], crc32.ChecksumIEEE(page[4:]))
}

// VerifyPage checks the checksum of a full PageSize buffer and returns the
// decoded header. It never panics on arbitrary input of the right length.
func VerifyPage(page []byte) (Header, error) {
	if len(page) != PageSize {
		return Header{}, fmt.Errorf("pagefile: page buffer is %d bytes, want %d", len(page), PageSize)
	}
	h := Header{
		CRC:   binary.LittleEndian.Uint32(page[0:4]),
		LSN:   binary.LittleEndian.Uint64(page[4:12]),
		Flags: binary.LittleEndian.Uint16(page[12:14]),
	}
	if got := crc32.ChecksumIEEE(page[4:]); got != h.CRC {
		return h, fmt.Errorf("%w: computed %08x, stored %08x", ErrCorrupt, got, h.CRC)
	}
	if page[14] != 0 || page[15] != 0 {
		return h, fmt.Errorf("pagefile: reserved header bytes are nonzero")
	}
	return h, nil
}

// File is one open page file.
type File struct {
	f    *os.File
	path string
	// pages is the current number of page slots the file has room for
	// (including the header page). Grown in chunks by EnsureSize.
	pages PageID
}

// growChunk is how many pages EnsureSize preallocates at a time, so bulk
// loads extend the file in 2 MiB steps instead of one ftruncate per page.
const growChunk = 256

// Create initializes a fresh page file at path (truncating any existing
// file) and writes the header page.
func Create(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: create: %w", err)
	}
	pf := &File{f: f, path: path, pages: 1}
	var page [PageSize]byte
	copy(page[HeaderSize:], fileMagic)
	binary.LittleEndian.PutUint16(page[HeaderSize+8:], fileVersion)
	binary.LittleEndian.PutUint32(page[HeaderSize+10:], PageSize)
	SealPage(page[:], 0, FlagHeader)
	if _, err := f.WriteAt(page[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: sync header: %w", err)
	}
	return pf, nil
}

// Open opens an existing page file and validates its header page.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat: %w", err)
	}
	var page [PageSize]byte
	if _, err := f.ReadAt(page[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: read header page: %w", err)
	}
	h, err := VerifyPage(page[:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: header page: %w", err)
	}
	if h.Flags&FlagHeader == 0 || string(page[HeaderSize:HeaderSize+len(fileMagic)]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s is not a page file", path)
	}
	if v := binary.LittleEndian.Uint16(page[HeaderSize+8:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("pagefile: unsupported format version %d", v)
	}
	if ps := binary.LittleEndian.Uint32(page[HeaderSize+10:]); ps != PageSize {
		f.Close()
		return nil, fmt.Errorf("pagefile: file has %d-byte pages, this build uses %d", ps, PageSize)
	}
	return &File{f: f, path: path, pages: PageID(st.Size() / PageSize)}, nil
}

// Path returns the file's path.
func (pf *File) Path() string { return pf.path }

// EnsureSize grows the file (in growChunk steps) until it has room for page
// id. Growth is metadata-only preallocation; new slots read back as zeroes
// and fail checksum verification until written, which is exactly the
// "never trust an unwritten page" property recovery wants.
func (pf *File) EnsureSize(id PageID) error {
	if id < pf.pages {
		return nil
	}
	want := (PageID(id)/growChunk + 1) * growChunk
	if err := pf.f.Truncate(int64(want) * PageSize); err != nil {
		return fmt.Errorf("pagefile: grow to %d pages: %w", want, err)
	}
	pf.pages = want
	return nil
}

// WritePage seals payload under lsn and writes it to page id. payload must
// be exactly PayloadSize bytes; id must be a data page (not 0).
func (pf *File) WritePage(id PageID, lsn uint64, payload []byte) error {
	if id == 0 {
		return fmt.Errorf("%w: 0 is the file header", ErrBadPage)
	}
	if len(payload) != PayloadSize {
		return fmt.Errorf("pagefile: payload is %d bytes, want %d", len(payload), PayloadSize)
	}
	if err := pf.EnsureSize(id); err != nil {
		return err
	}
	if err := fpWrite.Hit(); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	var page [PageSize]byte
	copy(page[HeaderSize:], payload)
	SealPage(page[:], lsn, 0)
	if _, err := pf.f.WriteAt(page[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	return nil
}

// ReadPage reads page id, verifies its checksum, and returns its header and
// a fresh copy of the payload.
func (pf *File) ReadPage(id PageID) (Header, []byte, error) {
	if id == 0 {
		return Header{}, nil, fmt.Errorf("%w: 0 is the file header", ErrBadPage)
	}
	if err := fpRead.Hit(); err != nil {
		return Header{}, nil, fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	var page [PageSize]byte
	if _, err := pf.f.ReadAt(page[:], int64(id)*PageSize); err != nil {
		return Header{}, nil, fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	h, err := VerifyPage(page[:])
	if err != nil {
		return h, nil, fmt.Errorf("page %d: %w", id, err)
	}
	payload := make([]byte, PayloadSize)
	copy(payload, page[HeaderSize:])
	return h, payload, nil
}

// Sync flushes all written pages to stable storage.
func (pf *File) Sync() error {
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("pagefile: sync: %w", err)
	}
	return nil
}

// Close releases the file handle without syncing.
func (pf *File) Close() error { return pf.f.Close() }
