package sqldb

import (
	"context"
	"fmt"

	"ordxml/internal/govern"
	"ordxml/internal/obs"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/exec"
	"ordxml/internal/sqldb/sqltypes"
)

// Rows is a streaming query cursor: the operator tree stays open between
// Next calls, so a caller can consume a large result incrementally (or stop
// early) without materializing it. The cursor pins the catalog snapshot it
// reads for its whole lifetime and — unlike the materializing Query path —
// may hold live resources under it: buffer-pool pins in the scans and, for a
// parallel plan, running Gather worker goroutines.
//
// Close is therefore not optional. Closing a partially-consumed cursor stops
// and reaps any Gather workers, releases operator buffers, and drops the
// pinned view so the snapshot can be reclaimed; it is idempotent and safe
// after Next has returned false. The sqldb.cursors.open gauge counts live
// cursors, so a leak shows up in metrics before it shows up as memory.
type Rows struct {
	db   *DB
	op   exec.Operator
	cols []string
	v    *catalog.View // pins the snapshot while the cursor is open
	gov  *govTickProxy

	cur    sqltypes.Row
	err    error
	done   bool
	closed bool
}

// govTickProxy carries the cursor's result-loop governance (context polling
// and per-row memory charges) without re-exporting exec internals.
type govTickProxy struct {
	ctx  context.Context
	mem  *govern.Accountant
	rows int
}

func (g *govTickProxy) step(r sqltypes.Row) error {
	if g == nil {
		return nil
	}
	if err := g.mem.Charge(r.Memory()); err != nil {
		return err
	}
	g.rows++
	if g.ctx != nil && g.rows%govern.PollInterval == 0 {
		return govern.CtxErr(g.ctx)
	}
	return nil
}

// QueryRows opens a streaming cursor over a SELECT against the latest
// published view. The caller must Close the returned Rows; see the type
// documentation. ctx governs the cursor's whole lifetime: cancellation is
// observed by the scans inside the operator tree and by the cursor's own
// Next loop.
func (db *DB) QueryRows(ctx context.Context, sql string, params ...sqltypes.Value) (*Rows, error) {
	return db.queryRowsAt(ctx, db.view.Load(), sql, params)
}

// QueryRows opens a streaming cursor against the pinned snapshot.
func (s *Snap) QueryRows(ctx context.Context, sql string, params ...sqltypes.Value) (*Rows, error) {
	return s.db.queryRowsAt(ctx, s.v, sql, params)
}

func (db *DB) queryRowsAt(ctx context.Context, v *catalog.View, sql string, params []sqltypes.Value) (rows *Rows, err error) {
	// Same statement-boundary containment as queryAt: a panic while planning
	// or opening the tree fails the statement, not the process.
	defer func() {
		if p := recover(); p != nil {
			rows, err = nil, govern.Recovered(p)
		}
	}()
	node, ex, err := db.selectPlan(v, sql, nil)
	if err != nil {
		return nil, err
	}
	if ex != nil {
		return nil, fmt.Errorf("QueryRows does not support EXPLAIN; use Query")
	}
	if planParallelism(node) > 0 {
		db.metrics.parallelQ.Inc()
	}
	mem := db.accountant(ctx)
	op, err := exec.OpenGoverned(ctx, node, params, v, obs.FromContext(ctx), mem)
	if err != nil {
		return nil, err
	}
	schema := node.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Column
	}
	var gov *govTickProxy
	if ctx != nil || mem != nil {
		gov = &govTickProxy{ctx: ctx, mem: mem}
	}
	db.openCursors.Add(1)
	return &Rows{db: db, op: op, cols: cols, v: v, gov: gov}, nil
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances the cursor. It returns false at the end of the result set or
// on error; check Err after the loop. Panics inside the operator tree are
// contained and surfaced through Err as govern.ErrInternal.
func (r *Rows) Next() bool {
	if r.closed || r.done || r.err != nil {
		return false
	}
	row, ok, err := r.nextRow()
	if err != nil {
		r.err = err
		r.done = true
		return false
	}
	if !ok {
		r.done = true
		return false
	}
	if err := r.gov.step(row); err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.cur = row
	return true
}

// nextRow pulls one row with panic containment around the operator call.
func (r *Rows) nextRow() (row sqltypes.Row, ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			row, ok, err = nil, false, govern.Recovered(p)
		}
	}()
	return r.op.Next()
}

// Row returns the current row. It is valid only until the next call to Next
// or Close; Clone it to retain it.
func (r *Rows) Row() sqltypes.Row { return r.cur }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor: it stops and reaps Gather workers (even on a
// partially-consumed parallel query), releases operator buffers, and unpins
// the snapshot view. Idempotent; returns the iteration error, if any, so
// `defer rows.Close()` callers who check Err lose nothing.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.op.Close()
	r.db.openCursors.Add(-1)
	r.cur, r.v = nil, nil
	return r.err
}
