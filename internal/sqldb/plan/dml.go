package plan

import (
	"fmt"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqlparse"
)

func planInsert(pc Context, s *sqlparse.Insert) (*InsertPlan, error) {
	t := pc.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("no such table %s", s.Table)
	}
	var cols []int
	if len(s.Columns) == 0 {
		cols = make([]int, len(t.Columns))
		for i := range cols {
			cols[i] = i
		}
	} else {
		cols = make([]int, len(s.Columns))
		seen := map[int]bool{}
		for i, name := range s.Columns {
			idx := t.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("table %s has no column %s", t.Name, name)
			}
			if seen[idx] {
				return nil, fmt.Errorf("column %s mentioned twice", name)
			}
			seen[idx] = true
			cols[i] = idx
		}
	}
	for ri, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("row %d has %d values, want %d", ri+1, len(row), len(cols))
		}
		for _, e := range row {
			if !isConstExpr(e) {
				return nil, fmt.Errorf("INSERT values must be constant, got %s", e)
			}
		}
	}
	return &InsertPlan{Table: t, Columns: cols, Rows: s.Rows}, nil
}

// planDMLScan builds the row-producing scan for UPDATE/DELETE: the table's
// rows (with the hidden _rid column) filtered by the WHERE clause, using an
// index when one matches.
func planDMLScan(pc Context, ref sqlparse.TableRef, where expr.Expr) (*catalog.Table, Node, error) {
	t := pc.Table(ref.Table)
	if t == nil {
		return nil, nil, fmt.Errorf("no such table %s", ref.Table)
	}
	schema := tableSchema(t, ref.Name(), true)
	var conjuncts []expr.Expr
	if where != nil {
		conjuncts = splitConjuncts(expr.Clone(where))
		for _, c := range conjuncts {
			if err := expr.Resolve(c, schema); err != nil {
				return nil, nil, err
			}
		}
	}
	entry := tableEntry{ref: ref, table: t, indexes: pc.TableIndexes(t)}
	access, _, err := buildAccess(entry, conjuncts, nil)
	if err != nil {
		return nil, nil, err
	}
	switch a := access.(type) {
	case *SeqScan:
		a.EmitRID = true
	case *IndexScan:
		a.EmitRID = true
	}
	return t, access, nil
}

func planUpdate(pc Context, s *sqlparse.Update) (*UpdatePlan, error) {
	t, scan, err := planDMLScan(pc, s.Table, s.Where)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(t, s.Table.Name(), true)
	p := &UpdatePlan{Table: t, Scan: scan}
	seen := map[int]bool{}
	for _, set := range s.Sets {
		idx := t.ColumnIndex(set.Column)
		if idx < 0 {
			return nil, fmt.Errorf("table %s has no column %s", t.Name, set.Column)
		}
		if seen[idx] {
			return nil, fmt.Errorf("column %s assigned twice", set.Column)
		}
		seen[idx] = true
		val := expr.Clone(set.Value)
		if err := expr.Resolve(val, schema); err != nil {
			return nil, err
		}
		p.SetCols = append(p.SetCols, idx)
		p.SetExprs = append(p.SetExprs, val)
	}
	return p, nil
}

func planDelete(pc Context, s *sqlparse.Delete) (*DeletePlan, error) {
	t, scan, err := planDMLScan(pc, s.Table, s.Where)
	if err != nil {
		return nil, err
	}
	return &DeletePlan{Table: t, Scan: scan}, nil
}
