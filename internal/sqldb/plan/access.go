package plan

import (
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqlparse"
	"ordxml/internal/sqldb/sqltypes"
)

// candidate classifies one pushed-down conjunct for index matching. All
// expressions are table-local.
type candidate struct {
	conj   expr.Expr // the original conjunct
	col    int       // table column index
	eq     expr.Expr // non-nil for col = const
	low    expr.Expr
	lowEx  bool
	high   expr.Expr
	highEx bool
	// exact reports whether using the candidate as an index bound fully
	// subsumes the conjunct (false for LIKE with a non-trivial suffix).
	exact bool
}

// classify extracts an index-matching candidate from a conjunct, or nil.
func classify(c expr.Expr) *candidate {
	switch x := c.(type) {
	case *expr.Binary:
		col, other, flipped := colAndConst(x.L, x.R)
		if other == nil {
			return nil
		}
		op := x.Op
		if flipped {
			op = flipOp(op)
		}
		switch op {
		case expr.OpEq:
			return &candidate{conj: c, col: col.Idx, eq: other, exact: true}
		case expr.OpGt:
			return &candidate{conj: c, col: col.Idx, low: other, lowEx: true, exact: true}
		case expr.OpGe:
			return &candidate{conj: c, col: col.Idx, low: other, exact: true}
		case expr.OpLt:
			return &candidate{conj: c, col: col.Idx, high: other, highEx: true, exact: true}
		case expr.OpLe:
			return &candidate{conj: c, col: col.Idx, high: other, exact: true}
		case expr.OpLike:
			return classifyLike(c, col, other)
		}
	case *expr.Between:
		if x.Not {
			return nil
		}
		col, ok := x.X.(*expr.ColRef)
		if !ok || !isConstExpr(x.Lo) || !isConstExpr(x.Hi) {
			return nil
		}
		return &candidate{conj: c, col: col.Idx, low: x.Lo, high: x.Hi, exact: true}
	}
	return nil
}

// colAndConst identifies which side is a bare column and which is constant.
func colAndConst(l, r expr.Expr) (col *expr.ColRef, other expr.Expr, flipped bool) {
	if c, ok := l.(*expr.ColRef); ok && isConstExpr(r) {
		return c, r, false
	}
	if c, ok := r.(*expr.ColRef); ok && isConstExpr(l) {
		return c, l, true
	}
	return nil, nil, false
}

func flipOp(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default:
		return op
	}
}

// classifyLike turns col LIKE 'prefix%' into a range candidate. Only literal
// patterns qualify (a parameter pattern is unknown at plan time).
func classifyLike(conj expr.Expr, col *expr.ColRef, pattern expr.Expr) *candidate {
	lit, ok := pattern.(*expr.Literal)
	if !ok || lit.Val.Type() != sqltypes.Text {
		return nil
	}
	prefix, exact := expr.LikePrefix(lit.Val.Text())
	if prefix == "" {
		return nil
	}
	cand := &candidate{
		conj:  conj,
		col:   col.Idx,
		low:   &expr.Literal{Val: sqltypes.NewText(prefix)},
		exact: exact,
	}
	if succ := textSuccessor(prefix); succ != "" {
		cand.high = &expr.Literal{Val: sqltypes.NewText(succ)}
		cand.highEx = true
	}
	return cand
}

// textSuccessor returns the smallest string greater than every string with
// the given prefix, or "" when none exists.
func textSuccessor(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// buildAccess picks the cheapest access path for one table given its
// pushed-down conjuncts. orderHint, when non-empty, lets the access path
// volunteer to produce rows in that order; the second result reports whether
// it did.
func buildAccess(e tableEntry, conjuncts []expr.Expr, orderHint []sqlparse.OrderItem) (Node, bool, error) {
	t := e.table
	alias := e.ref.Name()
	schema := tableSchema(t, alias, false)

	cands := make([]*candidate, len(conjuncts))
	for i, c := range conjuncts {
		cands[i] = classify(c)
	}

	// Resolve the order hint to table columns (best effort).
	orderCols, orderOK := resolveOrderHint(orderHint, schema)

	type choice struct {
		ix      *catalog.Index
		eq      []expr.Expr
		eqCands []int
		lowIdx  int // candidate supplying the lower bound, or -1
		highIdx int // candidate supplying the upper bound, or -1
		score   int
		ordered bool
	}
	best := choice{lowIdx: -1, highIdx: -1}
	for _, ix := range e.indexes {
		ch := choice{ix: ix, lowIdx: -1, highIdx: -1}
		usedCand := map[int]bool{}
		// Longest equality prefix.
		for _, col := range ix.Columns {
			found := -1
			for ci, cand := range cands {
				if cand != nil && !usedCand[ci] && cand.col == col && cand.eq != nil {
					found = ci
					break
				}
			}
			if found < 0 {
				break
			}
			usedCand[found] = true
			ch.eq = append(ch.eq, cands[found].eq)
			ch.eqCands = append(ch.eqCands, found)
		}
		// Range on the next index column: a lower and an upper bound may
		// come from different conjuncts (col >= ? AND col < ?).
		if len(ch.eq) < len(ix.Columns) {
			next := ix.Columns[len(ch.eq)]
			for ci, cand := range cands {
				if cand == nil || usedCand[ci] || cand.col != next || cand.eq != nil {
					continue
				}
				took := false
				if cand.low != nil && ch.lowIdx < 0 {
					ch.lowIdx = ci
					took = true
				}
				if cand.high != nil && ch.highIdx < 0 {
					// A BETWEEN candidate supplies both bounds at once.
					if cand.low == nil || ch.lowIdx == ci {
						ch.highIdx = ci
						took = true
					}
				}
				if took {
					usedCand[ci] = true
				}
			}
		}
		ch.score = len(ch.eq) * 4
		if ch.lowIdx >= 0 {
			ch.score++
		}
		if ch.highIdx >= 0 {
			ch.score++
		}
		// Interesting order: do the index columns after the equality prefix
		// match the requested order?
		if orderOK && indexDeliversOrder(ix.Columns[len(ch.eq):], orderCols) {
			ch.ordered = true
			ch.score++
		}
		if ch.score > best.score || (best.ix == nil && ch.score > 0) {
			best = ch
		}
	}

	if best.ix == nil || best.score == 0 {
		// Pure order-driven index use: a full scan of an index whose prefix
		// matches the order still beats an explicit sort.
		if orderOK {
			for _, ix := range e.indexes {
				if indexDeliversOrder(ix.Columns, orderCols) {
					return &IndexScan{Table: t, Alias: alias, Index: ix, Filters: conjuncts}, true, nil
				}
			}
		}
		return &SeqScan{Table: t, Alias: alias, Filters: conjuncts}, false, nil
	}

	scan := &IndexScan{Table: t, Alias: alias, Index: best.ix, Eq: best.eq}
	consumed := map[int]bool{}
	for _, ci := range best.eqCands {
		consumed[ci] = true
	}
	if best.lowIdx >= 0 {
		cand := cands[best.lowIdx]
		scan.Low, scan.LowExcl = cand.low, cand.lowEx
		if cand.exact && (cand.high == nil || best.highIdx == best.lowIdx) {
			consumed[best.lowIdx] = true
		}
	}
	if best.highIdx >= 0 {
		cand := cands[best.highIdx]
		scan.High, scan.HighExcl = cand.high, cand.highEx
		if cand.exact && cand.low == nil {
			consumed[best.highIdx] = true
		}
	}
	for ci, c := range conjuncts {
		if !consumed[ci] {
			scan.Filters = append(scan.Filters, c)
		}
	}
	return scan, best.ordered, nil
}

// resolveOrderHint maps ORDER BY items to table column indexes; ok is false
// when any item is not a plain ascending column of this table.
func resolveOrderHint(items []sqlparse.OrderItem, schema expr.Schema) ([]int, bool) {
	if len(items) == 0 {
		return nil, false
	}
	cols := make([]int, 0, len(items))
	for _, it := range items {
		if it.Desc {
			return nil, false
		}
		c, ok := it.Expr.(*expr.ColRef)
		if !ok {
			return nil, false
		}
		idx, err := schema.Find(c.Table, c.Column)
		if err != nil {
			return nil, false
		}
		cols = append(cols, idx)
	}
	return cols, true
}

// indexDeliversOrder reports whether scanning index columns (after any
// equality prefix) yields rows ordered by orderCols.
func indexDeliversOrder(remaining []int, orderCols []int) bool {
	if len(orderCols) == 0 || len(orderCols) > len(remaining) {
		return false
	}
	for i, oc := range orderCols {
		if remaining[i] != oc {
			return false
		}
	}
	return true
}
