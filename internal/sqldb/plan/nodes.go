// Package plan defines the physical query plan nodes and the rule-based
// planner that compiles parsed statements into them. Plans are trees of Node
// values; the exec package interprets them with Volcano-style iterators.
//
// The planner implements the optimizations the paper's workload depends on:
// predicate pushdown into scans, index selection over an equality prefix plus
// one range (including LIKE-prefix rewriting, which is what makes Dewey
// descendant queries index range scans), hash joins for equi-predicates, and
// use of index order to satisfy ORDER BY without sorting.
package plan

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqltypes"
)

// Node is a physical plan operator.
type Node interface {
	// Schema describes the rows the node produces.
	Schema() expr.Schema
	// describe appends the node's own one-line description (no children, no
	// indent, no newline) to b.
	describe(b *strings.Builder)
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// Explain renders the plan tree, one indented line per operator.
func Explain(n Node) string {
	var b strings.Builder
	explainInto(n, &b, 0, nil)
	return b.String()
}

// ExplainNode renders just one operator's description line.
func ExplainNode(n Node) string {
	var b strings.Builder
	n.describe(&b)
	return b.String()
}

// Annotator appends extra per-node text (e.g. runtime statistics) to a plan
// line; see ExplainAnnotated.
type Annotator func(n Node, b *strings.Builder)

// ExplainAnnotated renders the plan tree like Explain, calling annotate after
// each node's description — this is how EXPLAIN ANALYZE attaches actual row
// counts and timings to the same tree shape.
func ExplainAnnotated(n Node, annotate Annotator) string {
	var b strings.Builder
	explainInto(n, &b, 0, annotate)
	return b.String()
}

func explainInto(n Node, b *strings.Builder, depth int, annotate Annotator) {
	indent(b, depth)
	n.describe(b)
	if annotate != nil {
		annotate(n, b)
	}
	b.WriteByte('\n')
	for _, c := range Children(n) {
		explainInto(c, b, depth+1, annotate)
	}
}

// Children returns a node's input operators in display order.
func Children(n Node) []Node {
	switch x := n.(type) {
	case *SeqScan, *IndexScan:
		return nil
	case *Filter:
		return []Node{x.Input}
	case *Project:
		return []Node{x.Input}
	case *Trim:
		return []Node{x.Input}
	case *Sort:
		return []Node{x.Input}
	case *Limit:
		return []Node{x.Input}
	case *Distinct:
		return []Node{x.Input}
	case *HashAggregate:
		return []Node{x.Input}
	case *HashJoin:
		return []Node{x.Left, x.Right}
	case *PartitionedHashJoin:
		return []Node{x.Left, x.Right}
	case *Gather:
		return []Node{x.Input}
	case *NLJoin:
		return []Node{x.Left, x.Right}
	case *IndexNLJoin:
		return []Node{x.Left}
	default:
		return nil
	}
}

// tableSchema builds the schema of a base-table access under an alias,
// optionally extended with the hidden _rid column used by UPDATE/DELETE.
func tableSchema(t *catalog.Table, alias string, emitRID bool) expr.Schema {
	s := make(expr.Schema, 0, len(t.Columns)+1)
	for _, c := range t.Columns {
		s = append(s, expr.SchemaColumn{Table: alias, Column: c.Name, Type: c.Type})
	}
	if emitRID {
		s = append(s, expr.SchemaColumn{Table: alias, Column: "_rid", Type: sqltypes.Int})
	}
	return s
}

// SeqScan reads every row of a table, applying residual filters.
type SeqScan struct {
	Table   *catalog.Table
	Alias   string
	Filters []expr.Expr // resolved against Schema()
	EmitRID bool        // append encoded RID as a hidden trailing column
	// Parallel marks the scan as page-range partitioned across the workers
	// of an enclosing Gather; each worker claims page chunks from a shared
	// cursor. Only set beneath a Gather.
	Parallel bool
}

// Schema implements Node.
func (s *SeqScan) Schema() expr.Schema { return tableSchema(s.Table, s.Alias, s.EmitRID) }

func (s *SeqScan) describe(b *strings.Builder) {
	b.WriteString("SeqScan")
	if s.Parallel {
		b.WriteString(" parallel")
	}
	fmt.Fprintf(b, " %s", s.Table.Name)
	if s.Alias != s.Table.Name {
		fmt.Fprintf(b, " AS %s", s.Alias)
	}
	for _, f := range s.Filters {
		fmt.Fprintf(b, " filter=%s", f)
	}
}

// IndexScan reads rows via an index: an equality prefix over the first
// len(Eq) index columns, then an optional range on the next column. Eq, Low
// and High are row-independent expressions (literals, parameters, arithmetic
// over them) evaluated once at open time.
type IndexScan struct {
	Table    *catalog.Table
	Alias    string
	Index    *catalog.Index
	Eq       []expr.Expr
	Low      expr.Expr // nil = unbounded
	High     expr.Expr // nil = unbounded
	LowExcl  bool
	HighExcl bool
	Filters  []expr.Expr
	EmitRID  bool
	// Parallel marks the scan as RID-batch partitioned across the workers of
	// an enclosing Gather: one shared index cursor hands out RID batches,
	// heap fetches run concurrently. Only set beneath a Gather (never on an
	// order-satisfying scan).
	Parallel bool
}

// Schema implements Node.
func (s *IndexScan) Schema() expr.Schema { return tableSchema(s.Table, s.Alias, s.EmitRID) }

func (s *IndexScan) describe(b *strings.Builder) {
	b.WriteString("IndexScan")
	if s.Parallel {
		b.WriteString(" parallel")
	}
	fmt.Fprintf(b, " %s using %s", s.Table.Name, s.Index.Name)
	if s.Alias != s.Table.Name {
		fmt.Fprintf(b, " AS %s", s.Alias)
	}
	names := s.Index.ColumnNames()
	for i, e := range s.Eq {
		fmt.Fprintf(b, " %s=%s", names[i], e)
	}
	if s.Low != nil {
		op := ">="
		if s.LowExcl {
			op = ">"
		}
		fmt.Fprintf(b, " %s%s%s", names[len(s.Eq)], op, s.Low)
	}
	if s.High != nil {
		op := "<="
		if s.HighExcl {
			op = "<"
		}
		fmt.Fprintf(b, " %s%s%s", names[len(s.Eq)], op, s.High)
	}
	for _, f := range s.Filters {
		fmt.Fprintf(b, " filter=%s", f)
	}
}

// Filter drops rows for which Pred is not TRUE.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() expr.Schema { return f.Input.Schema() }

func (f *Filter) describe(b *strings.Builder) {
	fmt.Fprintf(b, "Filter %s", f.Pred)
}

// HashJoin joins on equality keys; Residual (optional) is evaluated on the
// combined row. Outer makes it a left outer join.
type HashJoin struct {
	Left, Right Node
	LeftKeys    []expr.Expr // resolved against Left schema
	RightKeys   []expr.Expr // resolved against Right schema
	Residual    expr.Expr   // resolved against combined schema; may be nil
	Outer       bool
}

// Schema implements Node.
func (j *HashJoin) Schema() expr.Schema {
	return append(append(expr.Schema{}, j.Left.Schema()...), j.Right.Schema()...)
}

func (j *HashJoin) describe(b *strings.Builder) {
	kind := "HashJoin"
	if j.Outer {
		kind = "HashLeftJoin"
	}
	b.WriteString(kind)
	for i := range j.LeftKeys {
		fmt.Fprintf(b, " %s=%s", j.LeftKeys[i], j.RightKeys[i])
	}
	if j.Residual != nil {
		fmt.Fprintf(b, " residual=%s", j.Residual)
	}
}

// PartitionedHashJoin is the parallel form of an inner HashJoin: both inputs
// are materialized and hash-partitioned on the join keys into Workers
// buckets, then each bucket pair is built and probed by its own worker.
// Output order is nondeterministic, so the planner only places it beneath an
// order-insensitive consumer (Sort or HashAggregate).
type PartitionedHashJoin struct {
	Left, Right Node
	LeftKeys    []expr.Expr // resolved against Left schema
	RightKeys   []expr.Expr // resolved against Right schema
	Residual    expr.Expr   // resolved against combined schema; may be nil
	Workers     int
}

// Schema implements Node.
func (j *PartitionedHashJoin) Schema() expr.Schema {
	return append(append(expr.Schema{}, j.Left.Schema()...), j.Right.Schema()...)
}

func (j *PartitionedHashJoin) describe(b *strings.Builder) {
	fmt.Fprintf(b, "PartitionedHashJoin workers=%d", j.Workers)
	for i := range j.LeftKeys {
		fmt.Fprintf(b, " %s=%s", j.LeftKeys[i], j.RightKeys[i])
	}
	if j.Residual != nil {
		fmt.Fprintf(b, " residual=%s", j.Residual)
	}
}

// Gather is the exchange operator: it runs Workers instances of its input
// subtree concurrently (each instance reading a disjoint partition of the
// underlying parallel scan) and merges their outputs in arrival order. The
// merged stream is unordered, so the planner only places a Gather beneath an
// order-insensitive consumer (Sort or HashAggregate).
type Gather struct {
	Input   Node
	Workers int
}

// Schema implements Node.
func (g *Gather) Schema() expr.Schema { return g.Input.Schema() }

func (g *Gather) describe(b *strings.Builder) {
	fmt.Fprintf(b, "Gather workers=%d", g.Workers)
}

// NLJoin is a nested-loops join with an arbitrary ON predicate.
type NLJoin struct {
	Left, Right Node
	On          expr.Expr // resolved against combined schema; may be nil (cross)
	Outer       bool
}

// Schema implements Node.
func (j *NLJoin) Schema() expr.Schema {
	return append(append(expr.Schema{}, j.Left.Schema()...), j.Right.Schema()...)
}

func (j *NLJoin) describe(b *strings.Builder) {
	kind := "NestedLoopJoin"
	if j.Outer {
		kind = "NestedLoopLeftJoin"
	}
	b.WriteString(kind)
	if j.On != nil {
		fmt.Fprintf(b, " on=%s", j.On)
	}
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort materializes and sorts its input.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() expr.Schema { return s.Input.Schema() }

func (s *Sort) describe(b *strings.Builder) {
	b.WriteString("Sort")
	for _, k := range s.Keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		fmt.Fprintf(b, " %s%s", k.Expr, dir)
	}
}

// Project evaluates output expressions. The last Hidden expressions are
// auxiliary sort keys trimmed by a Trim node above the Sort.
type Project struct {
	Input  Node
	Exprs  []expr.Expr
	Names  []string
	Hidden int
}

// Schema implements Node.
func (p *Project) Schema() expr.Schema {
	s := make(expr.Schema, len(p.Exprs))
	for i := range p.Exprs {
		s[i] = expr.SchemaColumn{Column: p.Names[i], Type: exprType(p.Exprs[i])}
	}
	return s
}

// exprType does a best-effort static type inference used only for schema
// display; execution is dynamically typed.
func exprType(e expr.Expr) sqltypes.Type {
	switch x := e.(type) {
	case *expr.Literal:
		return x.Val.Type()
	default:
		return sqltypes.Null
	}
}

func (p *Project) describe(b *strings.Builder) {
	b.WriteString("Project")
	n := len(p.Exprs) - p.Hidden
	for i := 0; i < n; i++ {
		fmt.Fprintf(b, " %s", p.Exprs[i])
	}
	if p.Hidden > 0 {
		fmt.Fprintf(b, " (+%d sort keys)", p.Hidden)
	}
}

// Trim keeps the first Keep columns, dropping hidden sort keys.
type Trim struct {
	Input Node
	Keep  int
}

// Schema implements Node.
func (t *Trim) Schema() expr.Schema { return t.Input.Schema()[:t.Keep] }

func (t *Trim) describe(b *strings.Builder) {
	fmt.Fprintf(b, "Trim %d", t.Keep)
}

// HashAggregate groups rows by GroupBy values and computes Aggs per group.
// Output rows are the group-by values followed by aggregate results; Having
// (optional) is resolved against that output layout.
type HashAggregate struct {
	Input   Node
	GroupBy []expr.Expr
	Aggs    []*expr.Aggregate
	Having  expr.Expr
	// Global marks aggregation without GROUP BY: exactly one output row even
	// for empty input.
	Global bool
}

// Schema implements Node.
func (a *HashAggregate) Schema() expr.Schema {
	s := make(expr.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		s = append(s, expr.SchemaColumn{Column: g.String()})
	}
	for _, ag := range a.Aggs {
		s = append(s, expr.SchemaColumn{Column: ag.String()})
	}
	return s
}

func (a *HashAggregate) describe(b *strings.Builder) {
	b.WriteString("HashAggregate")
	for _, g := range a.GroupBy {
		fmt.Fprintf(b, " by=%s", g)
	}
	for _, ag := range a.Aggs {
		fmt.Fprintf(b, " %s", ag)
	}
	if a.Having != nil {
		fmt.Fprintf(b, " having=%s", a.Having)
	}
}

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
}

// Schema implements Node.
func (d *Distinct) Schema() expr.Schema { return d.Input.Schema() }

func (d *Distinct) describe(b *strings.Builder) {
	b.WriteString("Distinct")
}

// Limit applies LIMIT/OFFSET; the bound expressions are row-independent.
type Limit struct {
	Input  Node
	Limit  expr.Expr // nil = unlimited
	Offset expr.Expr // nil = 0
}

// Schema implements Node.
func (l *Limit) Schema() expr.Schema { return l.Input.Schema() }

func (l *Limit) describe(b *strings.Builder) {
	b.WriteString("Limit")
	if l.Limit != nil {
		fmt.Fprintf(b, " limit=%s", l.Limit)
	}
	if l.Offset != nil {
		fmt.Fprintf(b, " offset=%s", l.Offset)
	}
}

// InsertPlan is a compiled INSERT.
type InsertPlan struct {
	Table *catalog.Table
	// Columns maps each value position to a table column index.
	Columns []int
	Rows    [][]expr.Expr
}

// UpdatePlan is a compiled UPDATE: Scan produces the table's rows plus the
// hidden _rid column; Sets assign new values per column index.
type UpdatePlan struct {
	Table *catalog.Table
	Scan  Node
	// SetCols are target column indexes, parallel to SetExprs.
	SetCols  []int
	SetExprs []expr.Expr // resolved against the table schema (with _rid)
}

// DeletePlan is a compiled DELETE.
type DeletePlan struct {
	Table *catalog.Table
	Scan  Node
}
