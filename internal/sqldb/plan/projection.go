package plan

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqlparse"
)

// planProjection builds the upper part of a SELECT plan: aggregation,
// projection, DISTINCT, ORDER BY (with hidden sort keys), and LIMIT.
func planProjection(s *sqlparse.Select, input Node, inputSchema expr.Schema) (Node, error) {
	items, names, err := expandItems(s, inputSchema)
	if err != nil {
		return nil, err
	}

	hasAgg := len(s.GroupBy) > 0
	for _, it := range items {
		if expr.HasAggregate(it) {
			hasAgg = true
		}
	}
	if s.Having != nil {
		hasAgg = true
	}

	var projExprs []expr.Expr
	var projInput Node
	var aggInfo *aggregateInfo
	if hasAgg {
		projInput, projExprs, aggInfo, err = planAggregate(s, input, inputSchema, items)
		if err != nil {
			return nil, err
		}
	} else {
		for _, it := range items {
			if err := expr.Resolve(it, inputSchema); err != nil {
				return nil, err
			}
		}
		projInput, projExprs = input, items
	}

	// ORDER BY: prefer referencing a visible output column; otherwise append
	// the key expression as a hidden projection column.
	visible := len(projExprs)
	var sortKeys []SortKey
	for _, oi := range s.OrderBy {
		keyExpr, err := orderKeyExpr(oi.Expr, names, projExprs[:visible], inputSchema, aggInfo)
		if err != nil {
			return nil, err
		}
		idx := -1
		for i := 0; i < visible; i++ {
			if equalExpr(keyExpr, projExprs[i]) {
				idx = i
				break
			}
		}
		if idx < 0 {
			if s.Distinct {
				return nil, fmt.Errorf("ORDER BY expression %s must appear in the SELECT DISTINCT list", oi.Expr)
			}
			projExprs = append(projExprs, keyExpr)
			idx = len(projExprs) - 1
		}
		sortKeys = append(sortKeys, SortKey{
			Expr: &expr.ColRef{Column: fmt.Sprintf("$sort%d", idx), Idx: idx},
			Desc: oi.Desc,
		})
	}

	projNames := make([]string, len(projExprs))
	copy(projNames, names)
	for i := visible; i < len(projExprs); i++ {
		projNames[i] = fmt.Sprintf("$hidden%d", i-visible)
	}
	var root Node = &Project{Input: projInput, Exprs: projExprs, Names: projNames, Hidden: len(projExprs) - visible}

	if s.Distinct {
		root = &Distinct{Input: root}
	}
	if len(sortKeys) > 0 {
		root = &Sort{Input: root, Keys: sortKeys}
	}
	if len(projExprs) > visible {
		root = &Trim{Input: root, Keep: visible}
	}
	if s.Limit != nil || s.Offset != nil {
		if s.Limit != nil && !isConstExpr(s.Limit) {
			return nil, fmt.Errorf("LIMIT must be constant")
		}
		if s.Offset != nil && !isConstExpr(s.Offset) {
			return nil, fmt.Errorf("OFFSET must be constant")
		}
		root = &Limit{Input: root, Limit: s.Limit, Offset: s.Offset}
	}
	return root, nil
}

// expandItems resolves `*` and `t.*`, returning cloned item expressions and
// their output names.
func expandItems(s *sqlparse.Select, inputSchema expr.Schema) ([]expr.Expr, []string, error) {
	var items []expr.Expr
	var names []string
	for _, it := range s.Items {
		if it.Star {
			matched := false
			for i, col := range inputSchema {
				if it.StarTable != "" && !strings.EqualFold(col.Table, it.StarTable) {
					continue
				}
				items = append(items, &expr.ColRef{Table: col.Table, Column: col.Column, Idx: i})
				names = append(names, col.Column)
				matched = true
			}
			if !matched {
				return nil, nil, fmt.Errorf("no table %s for %s.*", it.StarTable, it.StarTable)
			}
			continue
		}
		e := expr.Clone(it.Expr)
		items = append(items, e)
		name := it.Alias
		if name == "" {
			name = e.String()
		}
		names = append(names, name)
	}
	return items, names, nil
}

// aggregateInfo carries the aggregate layout for ORDER BY rewriting.
type aggregateInfo struct {
	groupBy []expr.Expr
	aggs    []*expr.Aggregate
}

// planAggregate builds the HashAggregate node and rewrites the item
// expressions to reference its output.
func planAggregate(s *sqlparse.Select, input Node, inputSchema expr.Schema, items []expr.Expr) (Node, []expr.Expr, *aggregateInfo, error) {
	groupBy := make([]expr.Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		groupBy[i] = expr.Clone(g)
		if err := expr.Resolve(groupBy[i], inputSchema); err != nil {
			return nil, nil, nil, err
		}
	}
	var having expr.Expr
	if s.Having != nil {
		having = expr.Clone(s.Having)
	}

	// Resolve items/having against the input schema (aggregate arguments
	// reference input columns), then collect the distinct aggregates.
	var aggs []*expr.Aggregate
	collect := func(e expr.Expr) error {
		if err := expr.Resolve(e, inputSchema); err != nil {
			return err
		}
		expr.Walk(e, func(n expr.Expr) bool {
			if a, ok := n.(*expr.Aggregate); ok {
				for _, known := range aggs {
					if known.String() == a.String() {
						return true
					}
				}
				aggs = append(aggs, a)
			}
			return true
		})
		return nil
	}
	for _, it := range items {
		if err := collect(it); err != nil {
			return nil, nil, nil, err
		}
	}
	if having != nil {
		if err := collect(having); err != nil {
			return nil, nil, nil, err
		}
	}

	node := &HashAggregate{
		Input:   input,
		GroupBy: groupBy,
		Aggs:    aggs,
		Global:  len(groupBy) == 0,
	}
	if having != nil {
		rewritten, err := rewriteAgg(having, groupBy, aggs)
		if err != nil {
			return nil, nil, nil, err
		}
		node.Having = rewritten
	}
	out := make([]expr.Expr, len(items))
	for i, it := range items {
		rewritten, err := rewriteAgg(it, groupBy, aggs)
		if err != nil {
			return nil, nil, nil, err
		}
		out[i] = rewritten
	}
	return node, out, &aggregateInfo{groupBy: groupBy, aggs: aggs}, nil
}

// equalExpr compares resolved expressions: column references by index,
// everything else structurally via String.
func equalExpr(a, b expr.Expr) bool {
	ca, aok := a.(*expr.ColRef)
	cb, bok := b.(*expr.ColRef)
	if aok && bok {
		return ca.Idx == cb.Idx
	}
	if aok != bok {
		return false
	}
	return a.String() == b.String()
}

// rewriteAgg maps an expression over input rows to one over the aggregate
// output layout (group-by values, then aggregate results). Any column
// reference that is not part of a GROUP BY expression is an error.
func rewriteAgg(e expr.Expr, groupBy []expr.Expr, aggs []*expr.Aggregate) (expr.Expr, error) {
	for gi, g := range groupBy {
		if equalExpr(e, g) {
			return &expr.ColRef{Column: g.String(), Idx: gi}, nil
		}
	}
	switch x := e.(type) {
	case *expr.Aggregate:
		for ai, a := range aggs {
			if a.String() == x.String() {
				return &expr.ColRef{Column: a.String(), Idx: len(groupBy) + ai}, nil
			}
		}
		return nil, fmt.Errorf("internal: aggregate %s not collected", x)
	case *expr.ColRef:
		return nil, fmt.Errorf("column %s must appear in GROUP BY or inside an aggregate", x)
	case *expr.Literal, *expr.Param:
		return e, nil
	case *expr.Unary:
		sub, err := rewriteAgg(x.X, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: x.Op, X: sub}, nil
	case *expr.Binary:
		l, err := rewriteAgg(x.L, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAgg(x.R, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: x.Op, L: l, R: r}, nil
	case *expr.Between:
		xx, err := rewriteAgg(x.X, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteAgg(x.Lo, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteAgg(x.Hi, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: xx, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *expr.In:
		xx, err := rewriteAgg(x.X, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, it := range x.List {
			if list[i], err = rewriteAgg(it, groupBy, aggs); err != nil {
				return nil, err
			}
		}
		return &expr.In{X: xx, List: list, Not: x.Not}, nil
	case *expr.IsNull:
		xx, err := rewriteAgg(x.X, groupBy, aggs)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: xx, Not: x.Not}, nil
	case *expr.Call:
		args := make([]expr.Expr, len(x.Args))
		var err error
		for i, a := range x.Args {
			if args[i], err = rewriteAgg(a, groupBy, aggs); err != nil {
				return nil, err
			}
		}
		return &expr.Call{Name: x.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("cannot rewrite %T over aggregate output", e)
	}
}

// orderKeyExpr maps one ORDER BY expression to the projection context: a
// bare identifier naming a SELECT alias refers to that item; otherwise the
// expression is resolved against the input schema and, for aggregate
// queries, rewritten onto the aggregate output layout.
func orderKeyExpr(e expr.Expr, names []string, visibleExprs []expr.Expr,
	inputSchema expr.Schema, agg *aggregateInfo) (expr.Expr, error) {

	if c, ok := e.(*expr.ColRef); ok && c.Table == "" {
		for i, n := range names {
			if strings.EqualFold(n, c.Column) {
				return visibleExprs[i], nil
			}
		}
	}
	clone := expr.Clone(e)
	if err := expr.Resolve(clone, inputSchema); err != nil {
		return nil, err
	}
	if agg != nil {
		rewritten, err := rewriteAgg(clone, agg.groupBy, agg.aggs)
		if err != nil {
			return nil, fmt.Errorf("ORDER BY %s: %w", e, err)
		}
		return rewritten, nil
	}
	return clone, nil
}
