package plan

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
)

// IndexNLJoin is a correlated index nested-loop join: for every left row it
// evaluates the bound expressions (which may reference left columns) and
// performs an index range scan on the inner table. It is the operator behind
// the paper's structural joins — parent/child lookups, sibling ranges and
// Dewey descendant prefixes all become index probes.
type IndexNLJoin struct {
	Left  Node
	Table *catalog.Table
	Alias string
	Index *catalog.Index
	// Eq are the equality-prefix bounds; Low/High the optional range on the
	// next index column. All are resolved against the LEFT schema (plus
	// parameters/constants).
	Eq       []expr.Expr
	Low      expr.Expr
	High     expr.Expr
	LowExcl  bool
	HighExcl bool
	// Filters are residual predicates over the combined (left ++ right) row.
	Filters []expr.Expr
}

// Schema implements Node.
func (j *IndexNLJoin) Schema() expr.Schema {
	return append(append(expr.Schema{}, j.Left.Schema()...), tableSchema(j.Table, j.Alias, false)...)
}

func (j *IndexNLJoin) describe(b *strings.Builder) {
	fmt.Fprintf(b, "IndexNLJoin %s using %s", j.Table.Name, j.Index.Name)
	if j.Alias != j.Table.Name {
		fmt.Fprintf(b, " AS %s", j.Alias)
	}
	names := j.Index.ColumnNames()
	for i, e := range j.Eq {
		fmt.Fprintf(b, " %s=%s", names[i], e)
	}
	if j.Low != nil {
		op := ">="
		if j.LowExcl {
			op = ">"
		}
		fmt.Fprintf(b, " %s%s%s", names[len(j.Eq)], op, j.Low)
	}
	if j.High != nil {
		op := "<="
		if j.HighExcl {
			op = "<"
		}
		fmt.Fprintf(b, " %s%s%s", names[len(j.Eq)], op, j.High)
	}
	for _, f := range j.Filters {
		fmt.Fprintf(b, " filter=%s", f)
	}
}

// nlCand is one conjunct usable as an index bound for the inner table. The
// bound expressions are evaluable against left rows (constants, parameters,
// or left-column expressions).
type nlCand struct {
	ci         int // index into the planner's conjunct list
	col        int // right-table column (local position)
	eq         expr.Expr
	low, high  expr.Expr
	lowEx      bool
	highEx     bool
	exact      bool
	correlated bool
}

// tryIndexNLJoin attempts to turn the join into a correlated index lookup.
// It returns nil when no index of the inner table matches with at least one
// correlated bound.
func tryIndexNLJoin(left Node, e *tableEntry, perTable []int, cross []int,
	conjuncts []expr.Expr, used []bool, combined expr.Schema) Node {

	var cands []nlCand
	// Constant single-table conjuncts: reuse the access-path classifier on a
	// rebased clone (its bound expressions are column-free).
	for _, ci := range perTable {
		if used[ci] {
			continue
		}
		local := shiftToLocal([]expr.Expr{conjuncts[ci]}, e.offset)[0]
		if c := classify(local); c != nil {
			cands = append(cands, nlCand{ci: ci, col: c.col, eq: c.eq,
				low: c.low, high: c.high, lowEx: c.lowEx, highEx: c.highEx, exact: c.exact})
		}
	}
	// Correlated conjuncts: rightCol op leftExpr.
	leftAllowed := map[string]bool{}
	for _, col := range left.Schema() {
		leftAllowed[col.Table] = true
	}
	rightLocalCol := func(x expr.Expr) int {
		c, ok := x.(*expr.ColRef)
		if !ok {
			return -1
		}
		if c.Idx < e.offset || c.Idx >= e.offset+len(e.table.Columns) {
			return -1
		}
		return c.Idx - e.offset
	}
	for _, ci := range cross {
		if used[ci] {
			continue
		}
		b, ok := conjuncts[ci].(*expr.Binary)
		if !ok {
			continue
		}
		col, other := -1, expr.Expr(nil)
		op := b.Op
		if c := rightLocalCol(b.L); c >= 0 && refsOnly(b.R, combined, leftAllowed) {
			col, other = c, b.R
		} else if c := rightLocalCol(b.R); c >= 0 && refsOnly(b.L, combined, leftAllowed) {
			col, other = c, b.L
			op = flipOp(op)
		} else {
			continue
		}
		cand := nlCand{ci: ci, col: col, exact: true, correlated: true}
		switch op {
		case expr.OpEq:
			cand.eq = other
		case expr.OpGt:
			cand.low, cand.lowEx = other, true
		case expr.OpGe:
			cand.low = other
		case expr.OpLt:
			cand.high, cand.highEx = other, true
		case expr.OpLe:
			cand.high = other
		default:
			continue
		}
		cands = append(cands, cand)
	}
	if len(cands) == 0 {
		return nil
	}

	type choice struct {
		ix         *catalog.Index
		eq         []expr.Expr
		consumed   []int // candidate list positions
		low, high  expr.Expr
		lowEx      bool
		highEx     bool
		rangeExact bool
		correlated bool
		score      int
	}
	var best *choice
	for _, ix := range e.indexes {
		ch := choice{ix: ix, rangeExact: true}
		usedCand := map[int]bool{}
		for _, col := range ix.Columns {
			found := -1
			for pi, cand := range cands {
				if !usedCand[pi] && cand.col == col && cand.eq != nil {
					found = pi
					break
				}
			}
			if found < 0 {
				break
			}
			usedCand[found] = true
			ch.eq = append(ch.eq, cands[found].eq)
			ch.consumed = append(ch.consumed, found)
			ch.correlated = ch.correlated || cands[found].correlated
		}
		if len(ch.eq) < len(ix.Columns) {
			next := ix.Columns[len(ch.eq)]
			for pi, cand := range cands {
				if usedCand[pi] || cand.col != next || cand.eq != nil {
					continue
				}
				take := false
				if cand.low != nil && ch.low == nil {
					ch.low, ch.lowEx = cand.low, cand.lowEx
					take = true
				}
				if cand.high != nil && ch.high == nil {
					ch.high, ch.highEx = cand.high, cand.highEx
					take = true
				}
				if take {
					usedCand[pi] = true
					ch.consumed = append(ch.consumed, pi)
					ch.correlated = ch.correlated || cand.correlated
					ch.rangeExact = ch.rangeExact && cand.exact
				}
			}
		}
		ch.score = len(ch.eq) * 4
		if ch.low != nil {
			ch.score++
		}
		if ch.high != nil {
			ch.score++
		}
		if !ch.correlated || ch.score == 0 {
			continue
		}
		if best == nil || ch.score > best.score {
			c := ch
			best = &c
		}
	}
	if best == nil {
		return nil
	}

	node := &IndexNLJoin{
		Left: left, Table: e.table, Alias: e.ref.Name(), Index: best.ix,
		Eq: best.eq, Low: best.low, High: best.high,
		LowExcl: best.lowEx, HighExcl: best.highEx,
	}
	// Mark fully subsumed conjuncts used; keep inexact ones (LIKE with a
	// suffix) as residual filters too.
	consumedCI := map[int]bool{}
	for _, pi := range best.consumed {
		cand := cands[pi]
		if cand.eq != nil || cand.exact {
			used[cand.ci] = true
		}
		consumedCI[cand.ci] = true
	}
	// Remaining single-table and cross conjuncts become residual filters on
	// the combined row (its layout extends the combined schema prefix).
	for _, ci := range append(append([]int{}, perTable...), cross...) {
		if used[ci] {
			continue
		}
		node.Filters = append(node.Filters, conjuncts[ci])
		used[ci] = true
	}
	return node
}
