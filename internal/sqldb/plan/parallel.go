package plan

// Parallelization rewrite. After the serial plan is built, parallelize walks
// it top-down looking for order-insensitive consumers (Sort, HashAggregate)
// whose input is a simple scan chain or an inner hash join, and rewrites
//
//	Sort(chain)          → Sort(Gather(chain))            scan marked parallel
//	HashAggregate(chain) → HashAggregate(Gather(chain))
//	... HashJoin ...     → ... PartitionedHashJoin ...
//
// when the planning context estimates enough input rows to amortize worker
// startup. Plans whose access path already satisfies the query order (the
// planner elided the Sort) are never rewritten — there is no order-
// insensitive consumer to hide the nondeterministic merge behind — and DML
// scans never pass through here at all.

// parallelize applies the parallel rewrite to a finished SELECT plan.
func parallelize(n Node, pc Context, opts Options) Node {
	if opts.Workers <= 1 {
		return n
	}
	return rewriteParallel(n, pc, opts)
}

// rewriteParallel descends through order-preserving wrappers to find the
// order-insensitive consumers where a Gather can be introduced.
func rewriteParallel(n Node, pc Context, opts Options) Node {
	switch x := n.(type) {
	case *Limit:
		x.Input = rewriteParallel(x.Input, pc, opts)
	case *Trim:
		x.Input = rewriteParallel(x.Input, pc, opts)
	case *Distinct:
		x.Input = rewriteParallel(x.Input, pc, opts)
	case *Project:
		x.Input = rewriteParallel(x.Input, pc, opts)
	case *Sort:
		x.Input = parallelInput(x.Input, pc, opts)
	case *HashAggregate:
		x.Input = parallelInput(x.Input, pc, opts)
	}
	return n
}

// parallelInput rewrites the input of an order-insensitive consumer: a plain
// scan chain becomes Gather(chain), eligible inner hash joins anywhere in the
// subtree become partitioned, and the descent continues for consumers nested
// deeper (an aggregate below a Sort's projection).
func parallelInput(n Node, pc Context, opts Options) Node {
	if g := gatherChain(n, pc, opts); g != nil {
		return g
	}
	n = parallelJoins(n, pc, opts)
	return rewriteParallel(n, pc, opts)
}

// gatherChain wraps n in a Gather when it is a chain of Project/Filter nodes
// over a single partitionable scan estimated big enough to share out. It
// returns nil when the shape or the estimate says no.
func gatherChain(n Node, pc Context, opts Options) Node {
	leaf := chainLeaf(n)
	if leaf == nil || estimateRows(leaf, pc) < opts.minRows() {
		return nil
	}
	switch s := leaf.(type) {
	case *SeqScan:
		s.Parallel = true
	case *IndexScan:
		s.Parallel = true
	}
	return &Gather{Input: n, Workers: opts.Workers}
}

// chainLeaf returns the scan at the bottom of a pure Project/Filter chain,
// or nil when the subtree has any other shape. DML scans (EmitRID) are
// excluded: updates and deletes must observe live storage serially.
func chainLeaf(n Node) Node {
	for {
		switch x := n.(type) {
		case *Project:
			n = x.Input
		case *Filter:
			n = x.Input
		case *SeqScan:
			if x.EmitRID {
				return nil
			}
			return x
		case *IndexScan:
			if x.EmitRID {
				return nil
			}
			return x
		default:
			return nil
		}
	}
}

// parallelJoins replaces eligible inner HashJoins in the subtree with
// PartitionedHashJoin. The caller guarantees an order-insensitive consumer
// sits above the whole subtree, so the joins' nondeterministic output order
// is invisible.
func parallelJoins(n Node, pc Context, opts Options) Node {
	switch x := n.(type) {
	case *Project:
		x.Input = parallelJoins(x.Input, pc, opts)
	case *Filter:
		x.Input = parallelJoins(x.Input, pc, opts)
	case *HashJoin:
		x.Left = parallelJoins(x.Left, pc, opts)
		x.Right = parallelJoins(x.Right, pc, opts)
		if !x.Outer && estimateRows(x.Left, pc)+estimateRows(x.Right, pc) >= opts.minRows() {
			return &PartitionedHashJoin{
				Left: x.Left, Right: x.Right,
				LeftKeys: x.LeftKeys, RightKeys: x.RightKeys,
				Residual: x.Residual, Workers: opts.Workers,
			}
		}
	case *NLJoin:
		x.Left = parallelJoins(x.Left, pc, opts)
		x.Right = parallelJoins(x.Right, pc, opts)
	case *IndexNLJoin:
		x.Left = parallelJoins(x.Left, pc, opts)
	}
	return n
}

// estimateRows is the coarse cardinality estimate driving the parallel
// decision. It only needs to separate "a handful" from "worth sharing out":
// equality prefixes divide, ranges halve, unique point lookups pin to one.
func estimateRows(n Node, pc Context) int {
	switch x := n.(type) {
	case *SeqScan:
		return pc.TableRows(x.Table)
	case *IndexScan:
		if x.Index.Unique && len(x.Eq) == len(x.Index.Columns) {
			return 1
		}
		rows := pc.TableRows(x.Table)
		for range x.Eq {
			rows /= 4
		}
		if x.Low != nil || x.High != nil {
			rows /= 2
		}
		return rows
	case *Filter:
		return estimateRows(x.Input, pc)
	case *Project:
		return estimateRows(x.Input, pc)
	case *HashJoin:
		return max(estimateRows(x.Left, pc), estimateRows(x.Right, pc))
	case *PartitionedHashJoin:
		return max(estimateRows(x.Left, pc), estimateRows(x.Right, pc))
	case *NLJoin:
		return max(estimateRows(x.Left, pc), estimateRows(x.Right, pc))
	case *IndexNLJoin:
		return estimateRows(x.Left, pc)
	case *Gather:
		return estimateRows(x.Input, pc)
	default:
		return 0
	}
}
