package plan

import (
	"fmt"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqlparse"
)

// Context is the planner's window onto the schema: either the live
// *catalog.Catalog (writer side, under the engine's write lock) or a
// published *catalog.View (lock-free readers planning against a snapshot).
// Planning must go through it rather than reading catalog objects directly,
// because index lists and row counts may change under concurrent DDL/DML.
type Context interface {
	Table(name string) *catalog.Table
	TableIndexes(t *catalog.Table) []*catalog.Index
	TableRows(t *catalog.Table) int
}

// Options tunes planning. The zero value plans serially.
type Options struct {
	// Workers > 1 enables parallel operators (Gather, PartitionedHashJoin)
	// where the plan shape allows and row estimates justify them.
	Workers int
	// MinRows is the estimated-row threshold below which a scan stays
	// serial; 0 means DefaultMinParallelRows.
	MinRows int
}

// DefaultMinParallelRows is the estimated input size below which spawning
// workers costs more than it saves.
const DefaultMinParallelRows = 2048

func (o Options) minRows() int {
	if o.MinRows > 0 {
		return o.MinRows
	}
	return DefaultMinParallelRows
}

// Plan compiles a parsed statement into an executable plan. The result is a
// Node for SELECT and one of InsertPlan/UpdatePlan/DeletePlan for DML; DDL
// statements are handled directly by the engine facade and rejected here.
func Plan(pc Context, stmt sqlparse.Statement) (any, error) {
	return PlanOpts(pc, stmt, Options{})
}

// PlanOpts is Plan with planner options. DML plans are always serial; the
// options only affect SELECT.
func PlanOpts(pc Context, stmt sqlparse.Statement, opts Options) (any, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return PlanSelectOpts(pc, s, opts)
	case *sqlparse.Insert:
		return planInsert(pc, s)
	case *sqlparse.Update:
		return planUpdate(pc, s)
	case *sqlparse.Delete:
		return planDelete(pc, s)
	default:
		return nil, fmt.Errorf("cannot plan %T", stmt)
	}
}

// tableEntry is one FROM-clause table with its resolved catalog object.
type tableEntry struct {
	ref   sqlparse.TableRef
	table *catalog.Table
	// indexes is the table's index list as of the planning context; access
	// paths must use it instead of table.Indexes, which may change under
	// concurrent DDL.
	indexes []*catalog.Index
	// leftOuter marks the table as the nullable side of a LEFT JOIN: WHERE
	// predicates on it cannot be pushed below the join.
	leftOuter bool
	join      *sqlparse.Join // nil for the first table
	offset    int            // column offset in the combined schema
}

// PlanSelect compiles a SELECT statement with default options.
func PlanSelect(pc Context, s *sqlparse.Select) (Node, error) {
	return PlanSelectOpts(pc, s, Options{})
}

// PlanSelectOpts compiles a SELECT statement.
func PlanSelectOpts(pc Context, s *sqlparse.Select, opts Options) (Node, error) {
	entries, err := resolveTables(pc, s)
	if err != nil {
		return nil, err
	}
	combined := combinedSchema(entries)

	// Gather conjuncts: WHERE plus the ON conditions of inner joins (for an
	// inner join, ON and WHERE are interchangeable). LEFT JOIN ONs stay
	// attached to their join.
	var conjuncts []expr.Expr
	if s.Where != nil {
		conjuncts = append(conjuncts, splitConjuncts(expr.Clone(s.Where))...)
	}
	for _, e := range entries {
		if e.join != nil && e.join.Kind == sqlparse.JoinInner && e.join.On != nil {
			conjuncts = append(conjuncts, splitConjuncts(expr.Clone(e.join.On))...)
		}
	}
	// Resolve every conjunct against the combined schema so it can be
	// classified by the tables it touches.
	for _, c := range conjuncts {
		if err := expr.Resolve(c, combined); err != nil {
			return nil, err
		}
	}
	used := make([]bool, len(conjuncts))

	// Classify single-table conjuncts per table (not yet consumed; the join
	// builder decides where each lands).
	perTable := make([][]int, len(entries))
	for ci, c := range conjuncts {
		refs := referencedTables(c, combined)
		if len(refs) != 1 {
			continue
		}
		for ti, e := range entries {
			if refs[e.ref.Name()] && !e.leftOuter {
				perTable[ti] = append(perTable[ti], ci)
			}
		}
	}

	// Build the left-deep join tree in FROM order.
	var root Node
	leftTables := map[string]bool{}
	singleTable := len(entries) == 1
	for ti := range entries {
		e := &entries[ti]
		if ti == 0 {
			var orderHint []sqlparse.OrderItem
			if singleTable && len(s.GroupBy) == 0 && !s.Distinct {
				orderHint = s.OrderBy
			}
			local := localConjuncts(conjuncts, perTable[0], e.offset, used)
			access, satisfiesOrder, err := buildAccess(*e, local, orderHint)
			if err != nil {
				return nil, err
			}
			if satisfiesOrder {
				s = shallowCopyWithoutOrder(s)
			}
			root = access
		} else {
			root, err = buildJoin(root, leftTables, e, perTable[ti], conjuncts, used, combined)
			if err != nil {
				return nil, err
			}
		}
		leftTables[e.ref.Name()] = true
	}

	// Any conjunct not consumed becomes a post-join filter.
	var residual []expr.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		root = &Filter{Input: root, Pred: andAll(residual)}
	}

	root, err = planProjection(s, root, combined)
	if err != nil {
		return nil, err
	}
	return parallelize(root, pc, opts), nil
}

// localConjuncts clones the given conjuncts rebased to a table-local layout
// and marks them used.
func localConjuncts(conjuncts []expr.Expr, idxs []int, offset int, used []bool) []expr.Expr {
	var out []expr.Expr
	for _, ci := range idxs {
		if used[ci] {
			continue
		}
		out = append(out, shiftToLocal([]expr.Expr{conjuncts[ci]}, offset)[0])
		used[ci] = true
	}
	return out
}

// shallowCopyWithoutOrder returns s minus its ORDER BY (the access path
// already delivers that order).
func shallowCopyWithoutOrder(s *sqlparse.Select) *sqlparse.Select {
	c := *s
	c.OrderBy = nil
	return &c
}

func resolveTables(pc Context, s *sqlparse.Select) ([]tableEntry, error) {
	var entries []tableEntry
	seen := map[string]bool{}
	offset := 0
	add := func(ref sqlparse.TableRef, j *sqlparse.Join) error {
		t := pc.Table(ref.Table)
		if t == nil {
			return fmt.Errorf("no such table %s", ref.Table)
		}
		name := ref.Name()
		if seen[name] {
			return fmt.Errorf("duplicate table name %s in FROM (use an alias)", name)
		}
		seen[name] = true
		entries = append(entries, tableEntry{
			ref: ref, table: t, indexes: pc.TableIndexes(t), join: j,
			leftOuter: j != nil && j.Kind == sqlparse.JoinLeft,
			offset:    offset,
		})
		offset += len(t.Columns)
		return nil
	}
	if err := add(s.From, nil); err != nil {
		return nil, err
	}
	for i := range s.Joins {
		if err := add(s.Joins[i].Table, &s.Joins[i]); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

func combinedSchema(entries []tableEntry) expr.Schema {
	var s expr.Schema
	for _, e := range entries {
		s = append(s, tableSchema(e.table, e.ref.Name(), false)...)
	}
	return s
}

// splitConjuncts flattens a conjunction into its AND-ed parts.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

func andAll(conjuncts []expr.Expr) expr.Expr {
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &expr.Binary{Op: expr.OpAnd, L: out, R: c}
	}
	return out
}

// referencedTables returns the set of table aliases a resolved expression
// touches.
func referencedTables(e expr.Expr, schema expr.Schema) map[string]bool {
	out := map[string]bool{}
	expr.Walk(e, func(n expr.Expr) bool {
		if c, ok := n.(*expr.ColRef); ok {
			out[schema[c.Idx].Table] = true
		}
		return true
	})
	return out
}

// isConstExpr reports whether e is row-independent (no columns, no
// aggregates). Parameters are allowed: they are bound before execution.
func isConstExpr(e expr.Expr) bool {
	ok := true
	expr.Walk(e, func(n expr.Expr) bool {
		switch n.(type) {
		case *expr.ColRef, *expr.Aggregate:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// refsOnly reports whether every column in e belongs to the allowed tables.
func refsOnly(e expr.Expr, schema expr.Schema, allowed map[string]bool) bool {
	ok := true
	expr.Walk(e, func(n expr.Expr) bool {
		if c, isCol := n.(*expr.ColRef); isCol {
			if !allowed[schema[c.Idx].Table] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// buildJoin attaches the next table to the accumulated left side. It tries,
// in order: an index nested-loop join (correlated index lookup on the new
// table — the workhorse for parent/child and sibling-range joins), a hash
// join on equality keys, and finally a nested-loop join.
func buildJoin(left Node, leftTables map[string]bool, e *tableEntry, perTable []int,
	conjuncts []expr.Expr, used []bool, combined expr.Schema) (Node, error) {

	rightName := e.ref.Name()
	leftWidth := len(left.Schema())

	// For LEFT JOIN the ON predicate is the join condition; WHERE conjuncts
	// stay above and per-table pushdown was disabled.
	if e.leftOuter {
		right := accessForJoin(e, nil)
		on := expr.Clone(e.join.On)
		if err := expr.Resolve(on, combined); err != nil {
			return nil, err
		}
		if lk, rk, residual, ok := equiKeys(splitConjuncts(on), leftTables, rightName, combined, nil); ok {
			return &HashJoin{Left: left, Right: right,
				LeftKeys: shiftToLocal(lk, 0), RightKeys: shiftToLocal(rk, leftWidth),
				Residual: residual, Outer: true}, nil
		}
		return &NLJoin{Left: left, Right: right, On: on, Outer: true}, nil
	}

	// Cross conjuncts connecting the new table to the left side (or constants
	// over the new table alone are in perTable).
	var cross []int
	for ci, c := range conjuncts {
		if used[ci] {
			continue
		}
		refs := referencedTables(c, combined)
		if !refs[rightName] {
			continue
		}
		ok := true
		for r := range refs {
			if r != rightName && !leftTables[r] {
				ok = false
			}
		}
		if ok && len(refs) > 1 {
			cross = append(cross, ci)
		}
	}

	// 1. Correlated index nested-loop join.
	if n := tryIndexNLJoin(left, e, perTable, cross, conjuncts, used, combined); n != nil {
		return n, nil
	}

	// 2. Hash join on equality keys.
	local := localConjuncts(conjuncts, perTable, e.offset, used)
	right := accessForJoin(e, local)
	var candidates []expr.Expr
	var candidateIdx []int
	for _, ci := range cross {
		if !used[ci] {
			candidates = append(candidates, conjuncts[ci])
			candidateIdx = append(candidateIdx, ci)
		}
	}
	if lk, rk, residual, ok := equiKeys(candidates, leftTables, rightName, combined,
		func(i int) { used[candidateIdx[i]] = true }); ok {
		return &HashJoin{Left: left, Right: right,
			LeftKeys: shiftToLocal(lk, 0), RightKeys: shiftToLocal(rk, leftWidth),
			Residual: residual, Outer: false}, nil
	}

	// 3. Nested loops with whatever predicates exist.
	var on expr.Expr
	if len(candidates) > 0 {
		on = andAll(candidates)
		for _, ci := range candidateIdx {
			used[ci] = true
		}
	}
	return &NLJoin{Left: left, Right: right, On: on, Outer: false}, nil
}

// accessForJoin builds the inner access path for hash/NL joins.
func accessForJoin(e *tableEntry, local []expr.Expr) Node {
	access, _, err := buildAccess(*e, local, nil)
	if err != nil {
		// buildAccess only errors on order hints, which are nil here.
		panic(fmt.Sprintf("plan: accessForJoin: %v", err))
	}
	return access
}

// equiKeys extracts equality key pairs (leftExpr = rightExpr) from conjuncts.
// Non-key conjuncts become the residual. markUsed, when non-nil, is called
// with the index of every consumed conjunct (keys and residual alike).
func equiKeys(conjuncts []expr.Expr, leftTables map[string]bool, rightName string,
	combined expr.Schema, markUsed func(int)) (lk, rk []expr.Expr, residual expr.Expr, ok bool) {

	rightOnly := map[string]bool{rightName: true}
	var rest []expr.Expr
	var restIdx []int
	for i, c := range conjuncts {
		if b, isBin := c.(*expr.Binary); isBin && b.Op == expr.OpEq {
			lrefs := referencedTables(b.L, combined)
			rrefs := referencedTables(b.R, combined)
			switch {
			case len(lrefs) > 0 && len(rrefs) > 0 && onlyIn(lrefs, leftTables) && onlyIn(rrefs, rightOnly):
				lk = append(lk, b.L)
				rk = append(rk, b.R)
				if markUsed != nil {
					markUsed(i)
				}
				continue
			case len(lrefs) > 0 && len(rrefs) > 0 && onlyIn(rrefs, leftTables) && onlyIn(lrefs, rightOnly):
				lk = append(lk, b.R)
				rk = append(rk, b.L)
				if markUsed != nil {
					markUsed(i)
				}
				continue
			}
		}
		rest = append(rest, c)
		restIdx = append(restIdx, i)
	}
	if len(lk) == 0 {
		return nil, nil, nil, false
	}
	if len(rest) > 0 {
		residual = andAll(rest)
		if markUsed != nil {
			for _, i := range restIdx {
				markUsed(i)
			}
		}
	}
	return lk, rk, residual, true
}

func onlyIn(refs map[string]bool, allowed map[string]bool) bool {
	for r := range refs {
		if !allowed[r] {
			return false
		}
	}
	return true
}

// shiftToLocal clones key expressions and rebases their column indexes from
// the combined layout to a node-local layout starting at base.
func shiftToLocal(keys []expr.Expr, base int) []expr.Expr {
	out := make([]expr.Expr, len(keys))
	for i, k := range keys {
		c := expr.Clone(k)
		expr.Walk(c, func(n expr.Expr) bool {
			if cr, ok := n.(*expr.ColRef); ok {
				cr.Idx -= base
			}
			return true
		})
		out[i] = c
	}
	return out
}
