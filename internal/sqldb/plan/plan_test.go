package plan_test

import (
	"strings"
	"testing"

	"ordxml/internal/sqldb"
)

// The planner is exercised through the engine facade: execute real SQL and
// assert on EXPLAIN output and on counter-visible behaviour.

func setup(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	stmts := []string{
		"CREATE TABLE n (doc INT NOT NULL, id INT NOT NULL, parent INT, tag TEXT, ord INT NOT NULL)",
		"CREATE UNIQUE INDEX n_ord ON n (doc, ord)",
		"CREATE UNIQUE INDEX n_id ON n (doc, id)",
		"CREATE INDEX n_parent ON n (doc, parent, ord)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	ins, err := db.Prepare("INSERT INTO n VALUES (1, ?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		parent := sqldb.Null()
		if i > 1 {
			parent = sqldb.I(1)
		}
		if _, err := ins.Exec(sqldb.I(i), parent, sqldb.S("t"), sqldb.I(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func explain(t *testing.T, db *sqldb.DB, sql string) string {
	t.Helper()
	p, err := db.Explain(sql)
	if err != nil {
		t.Fatalf("Explain(%q): %v", sql, err)
	}
	return p
}

// Regression: both range bounds on one index column must become scan bounds
// (an unbounded high end made Dewey subtree scans read to end-of-document).
func TestRangeUsesBothBounds(t *testing.T) {
	db := setup(t)
	before := db.Counters()
	res, err := db.Query("SELECT id FROM n WHERE doc = 1 AND ord >= ? AND ord < ?",
		sqldb.I(200), sqldb.I(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	d := db.Counters().Sub(before)
	if d.IndexProbes != 10 {
		t.Errorf("probes = %d, want 10 (upper bound not pushed into scan?)", d.IndexProbes)
	}
	p := explain(t, db, "SELECT id FROM n WHERE doc = 1 AND ord >= 200 AND ord < 300")
	if !strings.Contains(p, "ord>=200") || !strings.Contains(p, "ord<300") {
		t.Errorf("bounds missing from plan:\n%s", p)
	}
	if strings.Contains(p, "filter=") {
		t.Errorf("range became residual filter:\n%s", p)
	}
}

func TestBetweenConsumed(t *testing.T) {
	db := setup(t)
	p := explain(t, db, "SELECT id FROM n WHERE doc = 1 AND ord BETWEEN 200 AND 300")
	if !strings.Contains(p, "ord>=200") || !strings.Contains(p, "ord<=300") || strings.Contains(p, "filter=") {
		t.Errorf("BETWEEN not fully pushed:\n%s", p)
	}
}

func TestEqPrefixPlusRange(t *testing.T) {
	db := setup(t)
	p := explain(t, db, "SELECT id FROM n WHERE doc = 1 AND parent = 1 AND ord > 500")
	if !strings.Contains(p, "using n_parent") {
		t.Errorf("composite index unused:\n%s", p)
	}
	if !strings.Contains(p, "ord>500") {
		t.Errorf("range not pushed:\n%s", p)
	}
}

func TestOrderSatisfiedByIndex(t *testing.T) {
	db := setup(t)
	p := explain(t, db, "SELECT id FROM n WHERE doc = 1 AND parent = 1 ORDER BY ord")
	if strings.Contains(p, "Sort") {
		t.Errorf("sort not elided:\n%s", p)
	}
	// DESC order cannot ride the (ascending) index.
	p = explain(t, db, "SELECT id FROM n WHERE doc = 1 AND parent = 1 ORDER BY ord DESC")
	if !strings.Contains(p, "Sort") {
		t.Errorf("DESC wrongly elided sort:\n%s", p)
	}
}

func TestIndexNLJoinRangePair(t *testing.T) {
	db := setup(t)
	// Correlated range with both bounds from the left row.
	p := explain(t, db, `SELECT b.id FROM n a JOIN n b
		ON b.doc = 1 AND b.ord > a.ord AND b.ord < a.ord + 50
		WHERE a.doc = 1 AND a.id = 5`)
	if !strings.Contains(p, "IndexNLJoin") {
		t.Errorf("correlated range pair did not use IndexNLJoin:\n%s", p)
	}
	if !strings.Contains(p, "ord>a.ord") || !strings.Contains(p, "ord<(a.ord + 50)") {
		t.Errorf("bounds missing:\n%s", p)
	}
	res, err := db.Query(`SELECT b.id FROM n a JOIN n b
		ON b.doc = 1 AND b.ord > a.ord AND b.ord < a.ord + 50
		WHERE a.doc = 1 AND a.id = 5 ORDER BY b.id`)
	if err != nil {
		t.Fatal(err)
	}
	// a.ord = 50; b.ord in (50, 100) -> ids 6..9.
	if len(res.Rows) != 4 || res.Rows[0][0].Int() != 6 || res.Rows[3][0].Int() != 9 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := setup(t)
	res, err := db.Query(`SELECT c.id FROM n p, n c
		WHERE p.doc = 1 AND c.doc = 1 AND p.id = 1 AND c.parent = p.id AND c.ord <= 30
		ORDER BY c.ord`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // children ids 2,3 (ord 20,30)
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNullBoundYieldsEmpty(t *testing.T) {
	db := setup(t)
	res, err := db.Query("SELECT id FROM n WHERE doc = 1 AND ord > ?", sqldb.Null())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL bound matched %d rows", len(res.Rows))
	}
	res, err = db.Query("SELECT id FROM n WHERE doc = 1 AND id = ?", sqldb.Null())
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("NULL eq matched %d rows, %v", len(res.Rows), err)
	}
}

func TestLikePrefixBoundary(t *testing.T) {
	db := sqldb.Open()
	db.Exec("CREATE TABLE s (v TEXT PRIMARY KEY)")
	for _, v := range []string{"ab", "ab0", "ab\xff", "ac", "b"} {
		if _, err := db.Exec("INSERT INTO s VALUES (?)", sqldb.S(v)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("SELECT COUNT(*) FROM s WHERE v LIKE 'ab%'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("LIKE ab%% matched %v", res.Rows[0][0])
	}
	// Inexact pattern keeps the residual LIKE filter.
	p, _ := db.Explain("SELECT v FROM s WHERE v LIKE 'a%0'")
	if !strings.Contains(p, "IndexScan") || !strings.Contains(p, "filter=") {
		t.Errorf("inexact LIKE plan:\n%s", p)
	}
	res, _ = db.Query("SELECT v FROM s WHERE v LIKE 'a%0'")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ab0" {
		t.Fatalf("inexact LIKE rows = %v", res.Rows)
	}
}

func TestConflictingRangesStaySound(t *testing.T) {
	db := setup(t)
	// Two lower bounds: one is a scan bound, the other must remain a filter.
	res, err := db.Query("SELECT COUNT(*) FROM n WHERE doc = 1 AND ord > 100 AND ord > 500")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 50 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Contradictory bounds yield zero rows, not an error.
	res, err = db.Query("SELECT COUNT(*) FROM n WHERE doc = 1 AND ord > 500 AND ord < 100")
	if err != nil || res.Rows[0][0].Int() != 0 {
		t.Fatalf("contradiction: %v, %v", res.Rows, err)
	}
}

func TestAggregateOverIndexRange(t *testing.T) {
	db := setup(t)
	res, err := db.Query("SELECT MIN(ord), MAX(ord), COUNT(*) FROM n WHERE doc = 1 AND parent = 1")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 20 || r[1].Int() != 1000 || r[2].Int() != 99 {
		t.Fatalf("agg row = %v", r)
	}
}
