package exec

import (
	"fmt"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// indexNLJoinOp probes the inner table's index once per left row, with
// bounds computed from that row.
type indexNLJoinOp struct {
	node *plan.IndexNLJoin
	left Operator
	env  *expr.Env
	data *catalog.TableData
	gov  *govTick

	leftRow sqltypes.Row
	inner   *catalog.IndexIter
	buf     sqltypes.Row
	width   int // right width
}

func newIndexNLJoin(n *plan.IndexNLJoin, left Operator, params []sqltypes.Value, env buildEnv) *indexNLJoinOp {
	return &indexNLJoinOp{node: n, left: left, env: &expr.Env{Params: params},
		data: env.data(n.Table), width: len(n.Table.Columns), gov: env.newTick()}
}

func (j *indexNLJoinOp) Open() error {
	j.buf = make(sqltypes.Row, len(j.node.Left.Schema())+j.width)
	j.inner = nil
	return j.left.Open()
}

// bound evaluates a bound expression against the current left row, coercing
// to the index column type. nil result means "no rows can match".
func (j *indexNLJoinOp) bound(e expr.Expr, col int) (*sqltypes.Value, error) {
	j.env.Row = j.leftRow
	v, err := expr.Eval(e, j.env)
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	t := j.node.Table.Columns[j.node.Index.Columns[col]].Type
	cv, err := sqltypes.Coerce(v, t)
	if err != nil {
		return nil, fmt.Errorf("index %s column %d: %w", j.node.Index.Name, col, err)
	}
	return &cv, nil
}

// openInner starts the index scan for the current left row; ok=false means
// the row cannot match (NULL bound).
func (j *indexNLJoinOp) openInner() (bool, error) {
	eq := make([]sqltypes.Value, len(j.node.Eq))
	for i, e := range j.node.Eq {
		v, err := j.bound(e, i)
		if err != nil {
			return false, err
		}
		if v == nil {
			return false, nil
		}
		eq[i] = *v
	}
	var low, high *sqltypes.Value
	if j.node.Low != nil {
		v, err := j.bound(j.node.Low, len(eq))
		if err != nil {
			return false, err
		}
		if v == nil {
			return false, nil
		}
		low = v
	}
	if j.node.High != nil {
		v, err := j.bound(j.node.High, len(eq))
		if err != nil {
			return false, err
		}
		if v == nil {
			// An open upper bound from PREFIX_SUCC of an all-0xFF prefix:
			// scan to the end of the equality prefix.
			high = nil
		} else {
			high = v
		}
	}
	j.inner = j.data.IndexIter(j.node.Index, eq, low, high, j.node.LowExcl, j.node.HighExcl)
	return true, nil
}

func (j *indexNLJoinOp) Next() (sqltypes.Row, bool, error) {
	for {
		// The inner index probe bypasses the leaf scans, so this loop polls
		// for cancellation itself.
		if err := j.gov.step(); err != nil {
			return nil, false, err
		}
		if j.inner == nil {
			leftRow, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = leftRow.Clone()
			ok, err = j.openInner()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		rid, ok := j.inner.Next()
		if !ok {
			j.inner = nil
			continue
		}
		row, err := j.data.Fetch(rid)
		if err != nil {
			return nil, false, fmt.Errorf("index %s points at missing row: %w", j.node.Index.Name, err)
		}
		copy(j.buf, j.leftRow)
		copy(j.buf[len(j.leftRow):], row)
		j.env.Row = j.buf
		pass, err := passesAll(j.node.Filters, j.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return j.buf, true, nil
		}
	}
}

func (j *indexNLJoinOp) Close() { j.left.Close() }
