package exec

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"ordxml/internal/govern"
	"ordxml/internal/obs"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// Parallel execution: the Gather exchange operator and the partitioned hash
// join. A Gather builds one operator subtree per worker from the same plan
// nodes; the scan at the bottom of each subtree pulls disjoint slices of the
// table through shared cursor state, so the workers collectively cover the
// input exactly once.

// pageChunk is how many heap pages a parallel seq-scan worker claims per
// cursor round-trip: big enough to amortize the atomic, small enough to
// balance skewed page fills.
const pageChunk = 8

// ridBatchSize is how many RIDs a parallel index-scan worker pulls per
// acquisition of the shared cursor lock.
const ridBatchSize = 64

// pageCursor hands out disjoint heap page ranges to parallel scan workers.
type pageCursor struct {
	next  atomic.Int64
	pages int
}

func (c *pageCursor) claim() (lo, hi int, ok bool) {
	lo = int(c.next.Add(pageChunk)) - pageChunk
	if lo >= c.pages {
		return 0, 0, false
	}
	hi = lo + pageChunk
	if hi > c.pages {
		hi = c.pages
	}
	return lo, hi, true
}

// ridCursor serializes one shared index iterator; workers drain it in
// batches so the lock is held for handout only, not for heap fetches.
type ridCursor struct {
	mu sync.Mutex
	it *catalog.IndexIter // nil when the scan bounds matched nothing
}

func (c *ridCursor) nextBatch(buf []heap.RID) []heap.RID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.it == nil {
		return buf
	}
	for len(buf) < cap(buf) {
		rid, ok := c.it.Next()
		if !ok {
			c.it = nil
			break
		}
		buf = append(buf, rid)
	}
	return buf
}

// gatherShared is the per-Gather-execution partition state, keyed by plan
// node so every worker's instance of the same scan shares one cursor.
type gatherShared struct {
	mu      sync.Mutex
	cursors map[plan.Node]any
}

func newGatherShared() *gatherShared {
	return &gatherShared{cursors: map[plan.Node]any{}}
}

func (g *gatherShared) pageCursor(n plan.Node, pages int) *pageCursor {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.cursors[n].(*pageCursor); ok {
		return c
	}
	c := &pageCursor{pages: pages}
	g.cursors[n] = c
	return c
}

// ridCursor returns the shared cursor for an index scan node, opening the
// underlying iterator (with the first worker's evaluated bounds) exactly
// once. All workers evaluate identical bounds, so whoever arrives first wins.
func (g *gatherShared) ridCursor(n plan.Node, open func() (*catalog.IndexIter, error)) (*ridCursor, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.cursors[n].(*ridCursor); ok {
		return c, nil
	}
	it, err := open()
	if err != nil {
		return nil, err
	}
	c := &ridCursor{it: it}
	g.cursors[n] = c
	return c, nil
}

// gatherOp is the exchange operator: it builds Workers instances of its
// input subtree, runs them concurrently, and streams their merged output.
type gatherOp struct {
	node   *plan.Gather
	params []sqltypes.Value
	env    buildEnv

	rows        chan sqltypes.Row
	stop        chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
	workerErrs  []error
	workerStats []map[plan.Node]*OpStats
	merged      bool
}

func (g *gatherOp) Open() error {
	workers := g.node.Workers
	if workers < 1 {
		workers = 1
	}
	shared := newGatherShared()
	ops := make([]Operator, workers)
	spans := make([]*obs.ActiveSpan, workers)
	g.workerErrs = make([]error, workers)
	g.workerStats = nil
	g.merged = false
	for i := 0; i < workers; i++ {
		wenv := g.env
		wenv.shared = shared
		wenv.worker = i
		// Each worker's subtree hangs under its own "gather.worker" span on
		// a fresh lane, so overlapping workers render as parallel tracks.
		wenv.span = g.env.span.StartWorker("gather.worker", i)
		spans[i] = wenv.span
		if g.env.stats != nil {
			ws := make(map[plan.Node]*OpStats)
			wenv.stats = ws
			g.workerStats = append(g.workerStats, ws)
		}
		op, err := build(g.node.Input, g.params, wenv)
		if err != nil {
			for _, sp := range spans {
				sp.End()
			}
			return err
		}
		ops[i] = op
	}
	g.rows = make(chan sqltypes.Row, workers*4)
	g.stop = make(chan struct{})
	g.stopOnce = sync.Once{}
	for i, op := range ops {
		g.wg.Add(1)
		go func(i int, op Operator, wsp *obs.ActiveSpan) {
			defer g.wg.Done()
			defer wsp.End()
			// Contain worker panics: an executor bug (or a poisoned page read)
			// in one worker must fail this query, not the process. Registered
			// before op.Close so a panic during Close is caught too.
			defer func() {
				if p := recover(); p != nil {
					g.workerErrs[i] = govern.Recovered(p)
				}
			}()
			defer op.Close()
			if err := op.Open(); err != nil {
				g.workerErrs[i] = err
				return
			}
			for {
				row, ok, err := op.Next()
				if err != nil {
					g.workerErrs[i] = err
					return
				}
				if !ok {
					return
				}
				select {
				case g.rows <- row.Clone():
				case <-g.stop:
					return
				}
			}
		}(i, op, spans[i])
	}
	go func() {
		g.wg.Wait()
		close(g.rows)
	}()
	return nil
}

func (g *gatherOp) Next() (sqltypes.Row, bool, error) {
	row, ok := <-g.rows
	if ok {
		return row, true, nil
	}
	// All workers drained: surface the first error, fold worker stats into
	// the parent's map.
	g.finish()
	for _, err := range g.workerErrs {
		if err != nil {
			return nil, false, err
		}
	}
	return nil, false, nil
}

func (g *gatherOp) Close() {
	if g.stop == nil {
		return // Open never started the workers (build error upstream)
	}
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	g.finish()
}

// finish merges per-worker instrumentation into the parent stats map: rows
// and loops sum across workers, time reports the slowest worker (the
// operator's wall-clock contribution), and the per-worker breakdown is kept
// for EXPLAIN ANALYZE.
func (g *gatherOp) finish() {
	if g.merged || g.env.stats == nil {
		return
	}
	g.merged = true
	for _, ws := range g.workerStats {
		for n, st := range ws {
			dst := g.env.stats[n]
			if dst == nil {
				dst = &OpStats{}
				g.env.stats[n] = dst
			}
			dst.Rows += st.Rows
			dst.Loops += st.Loops
			if st.Time > dst.Time {
				dst.Time = st.Time
			}
			dst.Workers = append(dst.Workers, st)
		}
	}
}

// partHashJoinOp executes a PartitionedHashJoin: both inputs are drained
// serially and hash-partitioned on the join keys, then one worker per
// partition builds and probes its bucket pair. Rows with NULL keys are
// dropped on both sides (inner-join equality semantics).
type partHashJoinOp struct {
	node       *plan.PartitionedHashJoin
	left       Operator
	right      Operator
	params     []sqltypes.Value
	env        buildEnv
	rightWidth int

	out []sqltypes.Row
	pos int
}

type partRow struct {
	key string
	row sqltypes.Row
}

func (j *partHashJoinOp) Open() error {
	j.out = nil
	j.pos = 0
	workers := j.node.Workers
	if workers < 1 {
		workers = 1
	}
	env := &expr.Env{Params: j.params}
	rightParts, err := j.partition(j.right, j.node.RightKeys, env, workers)
	if err != nil {
		return err
	}
	leftParts, err := j.partition(j.left, j.node.LeftKeys, env, workers)
	if err != nil {
		return err
	}
	outs := make([][]sqltypes.Row, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[w] = govern.Recovered(p)
				}
			}()
			outs[w], errs[w] = j.joinPartition(leftParts[w], rightParts[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	j.out = make([]sqltypes.Row, 0, total)
	for _, o := range outs {
		j.out = append(j.out, o...)
	}
	if j.env.stats != nil {
		if st := j.env.stats[plan.Node(j.node)]; st != nil {
			st.Workers = st.Workers[:0]
			for _, o := range outs {
				st.Workers = append(st.Workers, &OpStats{Rows: int64(len(o)), Loops: 1})
			}
		}
	}
	return nil
}

// partition drains an input into workers buckets keyed by the join-key hash.
func (j *partHashJoinOp) partition(in Operator, keys []expr.Expr, env *expr.Env, workers int) ([][]partRow, error) {
	if err := in.Open(); err != nil {
		return nil, err
	}
	defer in.Close()
	parts := make([][]partRow, workers)
	h := fnv.New32a()
	tick := j.env.newTick()
	for {
		row, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return parts, nil
		}
		env.Row = row
		var buf []byte
		null := false
		for _, k := range keys {
			v, err := expr.Eval(k, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.EncodeKey(buf, v)
		}
		if null {
			continue
		}
		// Both inputs are fully materialized into partitions: charge each row.
		if err := tick.chargeRow(row); err != nil {
			return nil, err
		}
		h.Reset()
		h.Write(buf)
		p := int(h.Sum32()) % workers
		parts[p] = append(parts[p], partRow{key: string(buf), row: row.Clone()})
	}
}

// joinPartition builds a hash table over one right bucket and probes it with
// the matching left bucket. Runs on its own worker goroutine with its own
// expression environment.
func (j *partHashJoinOp) joinPartition(left, right []partRow) ([]sqltypes.Row, error) {
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	table := make(map[string][]sqltypes.Row, len(right))
	for _, r := range right {
		table[r.key] = append(table[r.key], r.row)
	}
	env := &expr.Env{Params: j.params}
	var out []sqltypes.Row
	for _, l := range left {
		for _, cand := range table[l.key] {
			combined := make(sqltypes.Row, len(l.row)+len(cand))
			copy(combined, l.row)
			copy(combined[len(l.row):], cand)
			if j.node.Residual != nil {
				env.Row = combined
				pass, err := expr.EvalBool(j.node.Residual, env)
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
			}
			out = append(out, combined)
		}
	}
	return out, nil
}

func (j *partHashJoinOp) Next() (sqltypes.Row, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

func (j *partHashJoinOp) Close() {}
