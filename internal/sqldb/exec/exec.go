// Package exec interprets physical plans with Volcano-style iterators and
// runs DML statements. It is deliberately simple: every operator implements
// Open/Next/Close over sqltypes.Row values.
package exec

import (
	"context"
	"fmt"
	"strings"

	"ordxml/internal/govern"
	"ordxml/internal/obs"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// Operator is one executable plan node.
type Operator interface {
	Open() error
	// Next returns the next row; ok=false signals the end of the stream.
	// The returned row must not be retained across calls unless cloned.
	Next() (row sqltypes.Row, ok bool, err error)
	Close()
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    []sqltypes.Row
}

// EncodeRIDInt packs a heap RID into an int64 for the hidden _rid column.
func EncodeRIDInt(rid heap.RID) int64 {
	return int64(rid.Page)<<16 | int64(rid.Slot)
}

// DecodeRIDInt unpacks a hidden _rid value.
func DecodeRIDInt(v int64) heap.RID {
	return heap.RID{Page: uint32(v >> 16), Slot: uint16(v & 0xFFFF)}
}

// buildEnv carries the per-query execution context through operator
// construction: the catalog view the query reads (nil means live storage,
// the writer side), the optional instrumentation map, and — inside a Gather
// worker subtree — the shared partition state and the worker's ordinal.
type buildEnv struct {
	view   *catalog.View
	stats  map[plan.Node]*OpStats
	shared *gatherShared
	worker int
	// span, when non-nil, is the request span the operator tree hangs off:
	// every operator gets a child span (Open→Close wall interval, row count
	// arg), and Gather workers open their own lanes under it.
	span *obs.ActiveSpan
	// ctx, when non-nil, is the statement context scans poll for
	// cancellation; mem, when non-nil, is the query's shared memory
	// accountant charged by pipeline-breaking operators.
	ctx context.Context
	mem *govern.Accountant
}

// data resolves the table's readable storage for this query.
func (e buildEnv) data(t *catalog.Table) *catalog.TableData { return e.view.Data(t) }

// Build compiles a plan node into an operator tree reading from view (nil
// for live storage under the engine's write lock).
func Build(n plan.Node, params []sqltypes.Value, view *catalog.View) (Operator, error) {
	return build(n, params, buildEnv{view: view})
}

// build compiles one node (recursively). When env.stats is non-nil every
// operator is wrapped with a stats decorator registered in the map under its
// plan node (Gather workers carry their own maps, merged when the gather
// drains). When env.span is non-nil every operator is additionally wrapped
// with a trace decorator emitting one span per operator into the request's
// trace tree.
func build(n plan.Node, params []sqltypes.Value, env buildEnv) (Operator, error) {
	tsp := env.span.StartChild("op." + opName(n))
	env.span = tsp
	op, err := buildOp(n, params, env)
	if err != nil {
		tsp.End()
		return op, err
	}
	if env.stats != nil {
		st := &OpStats{}
		env.stats[n] = st
		op = &statsOp{op: op, st: st}
	}
	if tsp != nil {
		op = &traceOp{op: op, sp: tsp}
	}
	return op, nil
}

// opName renders a plan node's operator name ("SeqScan", "Gather", ...).
func opName(n plan.Node) string {
	s := fmt.Sprintf("%T", n)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// traceOp decorates an operator with one request-trace span covering its
// Open→Close interval, annotated with the produced row count. Allocated only
// when the request is traced.
type traceOp struct {
	op     Operator
	sp     *obs.ActiveSpan
	rows   int64
	closed bool
}

func (t *traceOp) Open() error {
	t.sp.MarkStart()
	return t.op.Open()
}

func (t *traceOp) Next() (sqltypes.Row, bool, error) {
	row, ok, err := t.op.Next()
	if ok {
		t.rows++
	}
	return row, ok, err
}

func (t *traceOp) Close() {
	t.op.Close()
	if !t.closed {
		t.closed = true
		t.sp.Arg("rows", t.rows).End()
	}
}

func buildOp(n plan.Node, params []sqltypes.Value, env buildEnv) (Operator, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		return newSeqScan(x, params, env), nil
	case *plan.IndexScan:
		return newIndexScan(x, params, env), nil
	case *plan.Filter:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &filterOp{input: in, pred: x.Pred, env: &expr.Env{Params: params}}, nil
	case *plan.Project:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &projectOp{input: in, exprs: x.Exprs, env: &expr.Env{Params: params}}, nil
	case *plan.Trim:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &trimOp{input: in, keep: x.Keep}, nil
	case *plan.Sort:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &sortOp{input: in, keys: x.Keys, env: &expr.Env{Params: params}, gov: env.newTick()}, nil
	case *plan.Limit:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &limitOp{input: in, node: x, env: &expr.Env{Params: params}}, nil
	case *plan.Distinct:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &distinctOp{input: in, gov: env.newTick()}, nil
	case *plan.HashJoin:
		l, err := build(x.Left, params, env)
		if err != nil {
			return nil, err
		}
		r, err := build(x.Right, params, env)
		if err != nil {
			return nil, err
		}
		return &hashJoinOp{node: x, left: l, right: r, env: &expr.Env{Params: params},
			gov: env.newTick(), rightWidth: len(x.Right.Schema())}, nil
	case *plan.PartitionedHashJoin:
		l, err := build(x.Left, params, env)
		if err != nil {
			return nil, err
		}
		r, err := build(x.Right, params, env)
		if err != nil {
			return nil, err
		}
		return &partHashJoinOp{node: x, left: l, right: r, params: params, env: env,
			rightWidth: len(x.Right.Schema())}, nil
	case *plan.Gather:
		return &gatherOp{node: x, params: params, env: env}, nil
	case *plan.IndexNLJoin:
		l, err := build(x.Left, params, env)
		if err != nil {
			return nil, err
		}
		return newIndexNLJoin(x, l, params, env), nil
	case *plan.NLJoin:
		l, err := build(x.Left, params, env)
		if err != nil {
			return nil, err
		}
		r, err := build(x.Right, params, env)
		if err != nil {
			return nil, err
		}
		return &nlJoinOp{node: x, left: l, right: r, env: &expr.Env{Params: params},
			gov: env.newTick(), rightWidth: len(x.Right.Schema())}, nil
	case *plan.HashAggregate:
		in, err := build(x.Input, params, env)
		if err != nil {
			return nil, err
		}
		return &hashAggOp{node: x, input: in, env: &expr.Env{Params: params}, gov: env.newTick()}, nil
	default:
		return nil, fmt.Errorf("exec: no operator for %T", n)
	}
}

// Run executes a SELECT plan to completion against the given view (nil for
// live storage).
func Run(n plan.Node, params []sqltypes.Value, view *catalog.View) (*Result, error) {
	return RunSpan(n, params, view, nil)
}

// RunSpan executes a SELECT plan like Run, hanging one trace span per
// operator off sp when sp is non-nil.
func RunSpan(n plan.Node, params []sqltypes.Value, view *catalog.View, sp *obs.ActiveSpan) (*Result, error) {
	return RunGoverned(nil, n, params, view, sp, nil)
}

// RunGoverned executes a SELECT plan under query governance: scans poll ctx
// every govern.PollInterval rows (aborting with the typed cancellation
// errors), and materializing operators plus the result buffer charge mem.
// Both may be nil for an ungoverned run.
func RunGoverned(ctx context.Context, n plan.Node, params []sqltypes.Value,
	view *catalog.View, sp *obs.ActiveSpan, mem *govern.Accountant) (*Result, error) {
	env := buildEnv{view: view, span: sp, ctx: ctx, mem: mem}
	op, err := build(n, params, env)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	schema := n.Schema()
	res := &Result{Columns: make([]string, len(schema))}
	for i, c := range schema {
		res.Columns[i] = c.Column
	}
	tick := env.newTick()
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		if err := tick.step(); err != nil {
			return nil, err
		}
		if err := tick.chargeRow(row); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row.Clone())
	}
}

// OpenGoverned compiles and opens a governed operator tree without draining
// it, for streaming consumers (the engine's cursor API). On success the
// caller owns the operator and must Close it exactly once — Close releases
// buffer-pool pins and reaps Gather workers even when the stream is only
// partially consumed. On error nothing is retained.
func OpenGoverned(ctx context.Context, n plan.Node, params []sqltypes.Value,
	view *catalog.View, sp *obs.ActiveSpan, mem *govern.Accountant) (Operator, error) {
	op, err := build(n, params, buildEnv{view: view, span: sp, ctx: ctx, mem: mem})
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	return op, nil
}

// RunInsert executes an insert plan, returning the number of rows inserted.
func RunInsert(p *plan.InsertPlan, params []sqltypes.Value) (int, error) {
	env := &expr.Env{Params: params}
	count := 0
	for _, exprRow := range p.Rows {
		row := make(sqltypes.Row, len(p.Table.Columns))
		for i := range row {
			row[i] = sqltypes.NullValue()
		}
		for vi, e := range exprRow {
			v, err := expr.Eval(e, env)
			if err != nil {
				return count, err
			}
			row[p.Columns[vi]] = v
		}
		if _, err := p.Table.Insert(row); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// RunUpdate executes an update plan, returning the number of rows updated.
// Matching rows are materialized before any mutation so the scan never
// observes its own writes.
func RunUpdate(p *plan.UpdatePlan, params []sqltypes.Value) (int, error) {
	matches, err := collectDML(p.Scan, params)
	if err != nil {
		return 0, err
	}
	env := &expr.Env{Params: params}
	count := 0
	for _, m := range matches {
		env.Row = m.row
		newRow := m.row[:len(p.Table.Columns)].Clone()
		for si, col := range p.SetCols {
			v, err := expr.Eval(p.SetExprs[si], env)
			if err != nil {
				return count, err
			}
			newRow[col] = v
		}
		if _, err := p.Table.Update(m.rid, newRow); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// RunDelete executes a delete plan, returning the number of rows deleted.
func RunDelete(p *plan.DeletePlan, params []sqltypes.Value) (int, error) {
	matches, err := collectDML(p.Scan, params)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, m := range matches {
		if err := p.Table.Delete(m.rid); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

type dmlMatch struct {
	rid heap.RID
	row sqltypes.Row
}

func collectDML(scan plan.Node, params []sqltypes.Value) ([]dmlMatch, error) {
	op, err := Build(scan, params, nil)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []dmlMatch
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		ridVal := row[len(row)-1]
		out = append(out, dmlMatch{rid: DecodeRIDInt(ridVal.Int()), row: row.Clone()})
	}
}
