package exec

import (
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// hashJoinOp builds a hash table on the right input keyed by the join
// columns, then streams the left input probing it. Rows with NULL key values
// never match (SQL equality semantics).
type hashJoinOp struct {
	node       *plan.HashJoin
	left       Operator
	right      Operator
	env        *expr.Env
	gov        *govTick
	rightWidth int

	table   map[string][]sqltypes.Row
	buf     sqltypes.Row
	pending []sqltypes.Row // matches for the current left row
	leftRow sqltypes.Row
}

func (j *hashJoinOp) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	// The build side is closed on every exit so an abort mid-build (budget,
	// cancellation) still reaps a Gather running beneath it.
	j.table = map[string][]sqltypes.Row{}
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			j.right.Close()
			return err
		}
		if !ok {
			break
		}
		key, hasNull, err := j.keyFor(row, j.node.RightKeys)
		if err != nil {
			j.right.Close()
			return err
		}
		if hasNull {
			continue
		}
		// The build hash table holds the right input: charge each entry.
		if err := j.gov.chargeRow(row); err != nil {
			j.right.Close()
			return err
		}
		j.table[key] = append(j.table[key], row.Clone())
	}
	j.right.Close()
	return j.left.Open()
}

func (j *hashJoinOp) keyFor(row sqltypes.Row, keys []expr.Expr) (string, bool, error) {
	j.env.Row = row
	var buf []byte
	for _, k := range keys {
		v, err := expr.Eval(k, j.env)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		buf = sqltypes.EncodeKey(buf, v)
	}
	return string(buf), false, nil
}

func (j *hashJoinOp) Next() (sqltypes.Row, bool, error) {
	for {
		if len(j.pending) > 0 {
			match := j.pending[0]
			j.pending = j.pending[1:]
			return j.combine(j.leftRow, match), true, nil
		}
		leftRow, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.leftRow = leftRow.Clone()
		key, hasNull, err := j.keyFor(leftRow, j.node.LeftKeys)
		if err != nil {
			return nil, false, err
		}
		var matches []sqltypes.Row
		if !hasNull {
			for _, cand := range j.table[key] {
				combined := j.combine(j.leftRow, cand)
				if j.node.Residual != nil {
					j.env.Row = combined
					pass, err := expr.EvalBool(j.node.Residual, j.env)
					if err != nil {
						return nil, false, err
					}
					if !pass {
						continue
					}
				}
				matches = append(matches, cand)
			}
		}
		if len(matches) == 0 {
			if j.node.Outer {
				return j.combine(j.leftRow, make(sqltypes.Row, j.rightWidth)), true, nil
			}
			continue
		}
		j.pending = matches
	}
}

func (j *hashJoinOp) combine(l, r sqltypes.Row) sqltypes.Row {
	if j.buf == nil {
		j.buf = make(sqltypes.Row, len(l)+len(r))
	}
	copy(j.buf, l)
	copy(j.buf[len(l):], r)
	return j.buf
}

func (j *hashJoinOp) Close() { j.left.Close() }

// nlJoinOp materializes the right input and loops it per left row.
type nlJoinOp struct {
	node       *plan.NLJoin
	left       Operator
	right      Operator
	env        *expr.Env
	gov        *govTick
	rightWidth int

	rightRows []sqltypes.Row
	leftRow   sqltypes.Row
	rightPos  int
	matched   bool
	haveLeft  bool
	buf       sqltypes.Row
}

func (j *nlJoinOp) Open() error {
	if err := j.right.Open(); err != nil {
		return err
	}
	j.rightRows = nil
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			j.right.Close()
			return err
		}
		if !ok {
			break
		}
		if err := j.gov.chargeRow(row); err != nil {
			j.right.Close()
			return err
		}
		j.rightRows = append(j.rightRows, row.Clone())
	}
	j.right.Close()
	j.haveLeft = false
	return j.left.Open()
}

func (j *nlJoinOp) Next() (sqltypes.Row, bool, error) {
	for {
		if !j.haveLeft {
			leftRow, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = leftRow.Clone()
			j.rightPos = 0
			j.matched = false
			j.haveLeft = true
		}
		for j.rightPos < len(j.rightRows) {
			cand := j.rightRows[j.rightPos]
			j.rightPos++
			combined := j.combine(j.leftRow, cand)
			if j.node.On != nil {
				j.env.Row = combined
				pass, err := expr.EvalBool(j.node.On, j.env)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			j.matched = true
			return combined, true, nil
		}
		j.haveLeft = false
		if j.node.Outer && !j.matched {
			return j.combine(j.leftRow, make(sqltypes.Row, j.rightWidth)), true, nil
		}
	}
}

func (j *nlJoinOp) combine(l, r sqltypes.Row) sqltypes.Row {
	if j.buf == nil {
		j.buf = make(sqltypes.Row, len(l)+len(r))
	}
	copy(j.buf, l)
	copy(j.buf[len(l):], r)
	return j.buf
}

func (j *nlJoinOp) Close() { j.left.Close() }

// hashAggOp groups rows and folds aggregates.
type hashAggOp struct {
	node  *plan.HashAggregate
	input Operator
	env   *expr.Env
	gov   *govTick

	groups []sqltypes.Row
	pos    int
}

type aggGroup struct {
	key    sqltypes.Row
	states []*expr.AggState
}

func (a *hashAggOp) Open() error {
	if err := a.input.Open(); err != nil {
		return err
	}
	groups := map[string]*aggGroup{}
	var order []string
	newGroup := func(key sqltypes.Row) (*aggGroup, error) {
		g := &aggGroup{key: key, states: make([]*expr.AggState, len(a.node.Aggs))}
		for i, agg := range a.node.Aggs {
			st, err := expr.NewAggState(agg.Name, agg.Distinct)
			if err != nil {
				return nil, err
			}
			g.states[i] = st
		}
		return g, nil
	}
	for {
		row, ok, err := a.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		a.env.Row = row
		key := make(sqltypes.Row, len(a.node.GroupBy))
		for i, g := range a.node.GroupBy {
			v, err := expr.Eval(g, a.env)
			if err != nil {
				return err
			}
			key[i] = v
		}
		ks := string(sqltypes.EncodeKey(nil, key...))
		g, exists := groups[ks]
		if !exists {
			if g, err = newGroup(key); err != nil {
				return err
			}
			// The group table grows with distinct keys: charge the key row
			// plus a fixed overhead per aggregate state.
			if err := a.gov.charge(key.Memory() + int64(64*(len(a.node.Aggs)+1))); err != nil {
				return err
			}
			groups[ks] = g
			order = append(order, ks)
		}
		for i, agg := range a.node.Aggs {
			if agg.Star {
				g.states[i].AddStar()
				continue
			}
			v, err := expr.Eval(agg.Arg, a.env)
			if err != nil {
				return err
			}
			if err := g.states[i].Add(v); err != nil {
				return err
			}
		}
	}
	if a.node.Global && len(groups) == 0 {
		g, err := newGroup(nil)
		if err != nil {
			return err
		}
		groups[""] = g
		order = append(order, "")
	}
	a.groups = nil
	for _, ks := range order {
		g := groups[ks]
		out := make(sqltypes.Row, 0, len(g.key)+len(g.states))
		out = append(out, g.key...)
		for _, st := range g.states {
			out = append(out, st.Result())
		}
		if a.node.Having != nil {
			a.env.Row = out
			pass, err := expr.EvalBool(a.node.Having, a.env)
			if err != nil {
				return err
			}
			if !pass {
				continue
			}
		}
		a.groups = append(a.groups, out)
	}
	return nil
}

func (a *hashAggOp) Next() (sqltypes.Row, bool, error) {
	if a.pos >= len(a.groups) {
		return nil, false, nil
	}
	row := a.groups[a.pos]
	a.pos++
	return row, true, nil
}

func (a *hashAggOp) Close() { a.input.Close() }
