package exec

import (
	"sort"

	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// filterOp drops rows failing the predicate.
type filterOp struct {
	input Operator
	pred  expr.Expr
	env   *expr.Env
}

func (f *filterOp) Open() error { return f.input.Open() }

func (f *filterOp) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.Row = row
		pass, err := expr.EvalBool(f.pred, f.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

func (f *filterOp) Close() { f.input.Close() }

// projectOp evaluates the output expressions.
type projectOp struct {
	input Operator
	exprs []expr.Expr
	env   *expr.Env
	buf   sqltypes.Row
}

func (p *projectOp) Open() error {
	p.buf = make(sqltypes.Row, len(p.exprs))
	return p.input.Open()
}

func (p *projectOp) Next() (sqltypes.Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.env.Row = row
	for i, e := range p.exprs {
		v, err := expr.Eval(e, p.env)
		if err != nil {
			return nil, false, err
		}
		p.buf[i] = v
	}
	return p.buf, true, nil
}

func (p *projectOp) Close() { p.input.Close() }

// trimOp drops hidden trailing columns.
type trimOp struct {
	input Operator
	keep  int
}

func (t *trimOp) Open() error { return t.input.Open() }

func (t *trimOp) Next() (sqltypes.Row, bool, error) {
	row, ok, err := t.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return row[:t.keep], true, nil
}

func (t *trimOp) Close() { t.input.Close() }

// sortOp materializes and sorts its input.
type sortOp struct {
	input Operator
	keys  []plan.SortKey
	env   *expr.Env
	gov   *govTick
	rows  []sqltypes.Row
	pos   int
}

func (s *sortOp) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	type keyed struct {
		row  sqltypes.Row
		keys sqltypes.Row
	}
	var items []keyed
	for {
		row, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// The sort buffer holds the whole input: charge every buffered row.
		if err := s.gov.chargeRow(row); err != nil {
			return err
		}
		k := keyed{row: row.Clone(), keys: make(sqltypes.Row, len(s.keys))}
		s.env.Row = k.row
		for i, sk := range s.keys {
			v, err := expr.Eval(sk.Expr, s.env)
			if err != nil {
				return err
			}
			k.keys[i] = v
		}
		items = append(items, k)
	}
	sort.SliceStable(items, func(a, b int) bool {
		for i, sk := range s.keys {
			c := sqltypes.Compare(items[a].keys[i], items[b].keys[i])
			if c == 0 {
				continue
			}
			if sk.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]sqltypes.Row, len(items))
	for i, it := range items {
		s.rows[i] = it.row
	}
	return nil
}

func (s *sortOp) Next() (sqltypes.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *sortOp) Close() { s.input.Close() }

// limitOp applies LIMIT/OFFSET.
type limitOp struct {
	input   Operator
	node    *plan.Limit
	env     *expr.Env
	skip    int64
	remain  int64
	bounded bool
}

func (l *limitOp) Open() error {
	l.skip, l.remain, l.bounded = 0, 0, false
	if l.node.Offset != nil {
		v, err := expr.Eval(l.node.Offset, l.env)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			cv, err := sqltypes.Coerce(v, sqltypes.Int)
			if err != nil {
				return err
			}
			l.skip = cv.Int()
		}
	}
	if l.node.Limit != nil {
		v, err := expr.Eval(l.node.Limit, l.env)
		if err != nil {
			return err
		}
		if !v.IsNull() {
			cv, err := sqltypes.Coerce(v, sqltypes.Int)
			if err != nil {
				return err
			}
			l.remain = cv.Int()
			l.bounded = true
		}
	}
	return l.input.Open()
}

func (l *limitOp) Next() (sqltypes.Row, bool, error) {
	for l.skip > 0 {
		_, ok, err := l.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		l.skip--
	}
	if l.bounded {
		if l.remain <= 0 {
			return nil, false, nil
		}
		l.remain--
	}
	return l.input.Next()
}

func (l *limitOp) Close() { l.input.Close() }

// distinctOp suppresses duplicate rows.
type distinctOp struct {
	input Operator
	gov   *govTick
	seen  map[string]struct{}
}

func (d *distinctOp) Open() error {
	d.seen = map[string]struct{}{}
	return d.input.Open()
}

func (d *distinctOp) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := string(sqltypes.EncodeKey(nil, row...))
		if _, dup := d.seen[key]; dup {
			continue
		}
		// The seen-set grows with distinct output: charge each retained key.
		if err := d.gov.charge(int64(len(key)) + 48); err != nil {
			return nil, false, err
		}
		d.seen[key] = struct{}{}
		return row, true, nil
	}
}

func (d *distinctOp) Close() { d.input.Close() }
