package exec

import (
	"fmt"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// seqScanOp streams every table row through the residual filters. A parallel
// scan (beneath a Gather) claims page ranges from the shared cursor instead
// of iterating the whole heap, so the Gather's workers cover disjoint slices
// of the table.
type seqScanOp struct {
	node *plan.SeqScan
	env  *expr.Env
	data *catalog.TableData
	iter *catalog.RowIter
	buf  sqltypes.Row
	gov  *govTick

	cursor *pageCursor // non-nil only for a partitioned parallel scan
	done   bool
}

func newSeqScan(n *plan.SeqScan, params []sqltypes.Value, env buildEnv) *seqScanOp {
	s := &seqScanOp{node: n, env: &expr.Env{Params: params}, data: env.data(n.Table), gov: env.newTick()}
	if n.Parallel && env.shared != nil && s.data.CanPartition() {
		s.cursor = env.shared.pageCursor(n, s.data.Pages())
	}
	return s
}

func (s *seqScanOp) Open() error {
	s.done = false
	if s.cursor != nil {
		s.iter = nil // ranges claimed lazily in Next
	} else {
		s.iter = s.data.RowIter()
	}
	width := len(s.node.Table.Columns)
	if s.node.EmitRID {
		width++
	}
	s.buf = make(sqltypes.Row, width)
	return nil
}

func (s *seqScanOp) Next() (sqltypes.Row, bool, error) {
	for {
		// Scans are the leaves under nearly every plan, so polling here gives
		// the whole tree cooperative cancellation.
		if err := s.gov.step(); err != nil {
			return nil, false, err
		}
		if s.iter == nil {
			if s.cursor == nil || s.done {
				return nil, false, nil
			}
			lo, hi, ok := s.cursor.claim()
			if !ok {
				s.done = true
				return nil, false, nil
			}
			s.iter = s.data.RowIterRange(lo, hi)
		}
		rid, row, ok, err := s.iter.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.iter = nil
			if s.cursor == nil {
				return nil, false, nil
			}
			continue
		}
		copy(s.buf, row)
		if s.node.EmitRID {
			s.buf[len(s.buf)-1] = sqltypes.NewInt(EncodeRIDInt(rid))
		}
		s.env.Row = s.buf
		pass, err := passesAll(s.node.Filters, s.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return s.buf, true, nil
		}
	}
}

func (s *seqScanOp) Close() {}

func passesAll(filters []expr.Expr, env *expr.Env) (bool, error) {
	for _, f := range filters {
		ok, err := expr.EvalBool(f, env)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// indexScanOp streams rows matching an index range. A parallel scan shares
// one index cursor among the Gather's workers: each worker pulls RID batches
// under the cursor's lock and performs the heap fetches concurrently.
type indexScanOp struct {
	node  *plan.IndexScan
	env   *expr.Env
	data  *catalog.TableData
	iter  *catalog.IndexIter
	empty bool
	buf   sqltypes.Row
	gov   *govTick

	shared *gatherShared
	cursor *ridCursor
	batch  []heap.RID
	pos    int
}

func newIndexScan(n *plan.IndexScan, params []sqltypes.Value, env buildEnv) *indexScanOp {
	s := &indexScanOp{node: n, env: &expr.Env{Params: params}, data: env.data(n.Table), gov: env.newTick()}
	if n.Parallel && env.shared != nil {
		s.shared = env.shared
	}
	return s
}

// bound evaluates a row-independent bound expression and coerces it to the
// index column's type so key encoding matches stored keys. A NULL bound makes
// the scan empty (SQL comparisons with NULL never hold).
func (s *indexScanOp) bound(e expr.Expr, col int) (*sqltypes.Value, error) {
	v, err := expr.Eval(e, s.env)
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	t := s.node.Table.Columns[s.node.Index.Columns[col]].Type
	cv, err := sqltypes.Coerce(v, t)
	if err != nil {
		return nil, fmt.Errorf("index %s column %d: %w", s.node.Index.Name, col, err)
	}
	return &cv, nil
}

// openIter evaluates the scan bounds and opens the index iterator; a nil
// result means no rows can match (a NULL bound).
func (s *indexScanOp) openIter() (*catalog.IndexIter, error) {
	eq := make([]sqltypes.Value, len(s.node.Eq))
	for i, e := range s.node.Eq {
		v, err := s.bound(e, i)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		eq[i] = *v
	}
	var low, high *sqltypes.Value
	if s.node.Low != nil {
		v, err := s.bound(s.node.Low, len(eq))
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		low = v
	}
	if s.node.High != nil {
		v, err := s.bound(s.node.High, len(eq))
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		high = v
	}
	return s.data.IndexIter(s.node.Index, eq, low, high, s.node.LowExcl, s.node.HighExcl), nil
}

func (s *indexScanOp) Open() error {
	s.empty = false
	s.iter = nil
	s.cursor = nil
	s.batch = nil
	s.pos = 0
	if s.shared != nil {
		cur, err := s.shared.ridCursor(s.node, s.openIter)
		if err != nil {
			return err
		}
		s.cursor = cur
		s.batch = make([]heap.RID, 0, ridBatchSize)
	} else {
		it, err := s.openIter()
		if err != nil {
			return err
		}
		if it == nil {
			s.empty = true
		}
		s.iter = it
	}
	width := len(s.node.Table.Columns)
	if s.node.EmitRID {
		width++
	}
	s.buf = make(sqltypes.Row, width)
	return nil
}

func (s *indexScanOp) Next() (sqltypes.Row, bool, error) {
	if s.empty {
		return nil, false, nil
	}
	for {
		if err := s.gov.step(); err != nil {
			return nil, false, err
		}
		var rid heap.RID
		if s.cursor != nil {
			if s.pos >= len(s.batch) {
				s.batch = s.cursor.nextBatch(s.batch[:0])
				s.pos = 0
				if len(s.batch) == 0 {
					return nil, false, nil
				}
			}
			rid = s.batch[s.pos]
			s.pos++
		} else {
			r, ok := s.iter.Next()
			if !ok {
				return nil, false, nil
			}
			rid = r
		}
		row, err := s.data.Fetch(rid)
		if err != nil {
			return nil, false, fmt.Errorf("index %s points at missing row: %w", s.node.Index.Name, err)
		}
		copy(s.buf, row)
		if s.node.EmitRID {
			s.buf[len(s.buf)-1] = sqltypes.NewInt(EncodeRIDInt(rid))
		}
		s.env.Row = s.buf
		pass, err := passesAll(s.node.Filters, s.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return s.buf, true, nil
		}
	}
}

func (s *indexScanOp) Close() {}
