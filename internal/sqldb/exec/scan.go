package exec

import (
	"fmt"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// seqScanOp streams every table row through the residual filters.
type seqScanOp struct {
	node *plan.SeqScan
	env  *expr.Env
	iter *catalog.RowIter
	buf  sqltypes.Row
}

func newSeqScan(n *plan.SeqScan, params []sqltypes.Value) *seqScanOp {
	return &seqScanOp{node: n, env: &expr.Env{Params: params}}
}

func (s *seqScanOp) Open() error {
	s.iter = s.node.Table.RowIter()
	width := len(s.node.Table.Columns)
	if s.node.EmitRID {
		width++
	}
	s.buf = make(sqltypes.Row, width)
	return nil
}

func (s *seqScanOp) Next() (sqltypes.Row, bool, error) {
	for {
		rid, row, ok, err := s.iter.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		copy(s.buf, row)
		if s.node.EmitRID {
			s.buf[len(s.buf)-1] = sqltypes.NewInt(EncodeRIDInt(rid))
		}
		s.env.Row = s.buf
		pass, err := passesAll(s.node.Filters, s.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return s.buf, true, nil
		}
	}
}

func (s *seqScanOp) Close() {}

func passesAll(filters []expr.Expr, env *expr.Env) (bool, error) {
	for _, f := range filters {
		ok, err := expr.EvalBool(f, env)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// indexScanOp streams rows matching an index range.
type indexScanOp struct {
	node  *plan.IndexScan
	env   *expr.Env
	iter  *catalog.IndexIter
	empty bool
	buf   sqltypes.Row
}

func newIndexScan(n *plan.IndexScan, params []sqltypes.Value) *indexScanOp {
	return &indexScanOp{node: n, env: &expr.Env{Params: params}}
}

// bound evaluates a row-independent bound expression and coerces it to the
// index column's type so key encoding matches stored keys. A NULL bound makes
// the scan empty (SQL comparisons with NULL never hold).
func (s *indexScanOp) bound(e expr.Expr, col int) (*sqltypes.Value, error) {
	v, err := expr.Eval(e, s.env)
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, nil
	}
	t := s.node.Table.Columns[s.node.Index.Columns[col]].Type
	cv, err := sqltypes.Coerce(v, t)
	if err != nil {
		return nil, fmt.Errorf("index %s column %d: %w", s.node.Index.Name, col, err)
	}
	return &cv, nil
}

func (s *indexScanOp) Open() error {
	eq := make([]sqltypes.Value, len(s.node.Eq))
	for i, e := range s.node.Eq {
		v, err := s.bound(e, i)
		if err != nil {
			return err
		}
		if v == nil {
			s.empty = true
			return nil
		}
		eq[i] = *v
	}
	var low, high *sqltypes.Value
	if s.node.Low != nil {
		v, err := s.bound(s.node.Low, len(eq))
		if err != nil {
			return err
		}
		if v == nil {
			s.empty = true
			return nil
		}
		low = v
	}
	if s.node.High != nil {
		v, err := s.bound(s.node.High, len(eq))
		if err != nil {
			return err
		}
		if v == nil {
			s.empty = true
			return nil
		}
		high = v
	}
	s.iter = s.node.Table.IndexIter(s.node.Index, eq, low, high, s.node.LowExcl, s.node.HighExcl)
	width := len(s.node.Table.Columns)
	if s.node.EmitRID {
		width++
	}
	s.buf = make(sqltypes.Row, width)
	return nil
}

func (s *indexScanOp) Next() (sqltypes.Row, bool, error) {
	if s.empty {
		return nil, false, nil
	}
	for {
		rid, ok := s.iter.Next()
		if !ok {
			return nil, false, nil
		}
		row, err := s.node.Table.Fetch(rid)
		if err != nil {
			return nil, false, fmt.Errorf("index %s points at missing row: %w", s.node.Index.Name, err)
		}
		copy(s.buf, row)
		if s.node.EmitRID {
			s.buf[len(s.buf)-1] = sqltypes.NewInt(EncodeRIDInt(rid))
		}
		s.env.Row = s.buf
		pass, err := passesAll(s.node.Filters, s.env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return s.buf, true, nil
		}
	}
}

func (s *indexScanOp) Close() {}
