package exec

import (
	"fmt"
	"strings"
	"time"

	"ordxml/internal/obs"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqltypes"
)

// OpStats holds the runtime counters for one plan node, collected when a
// query runs under EXPLAIN ANALYZE. Time is inclusive: a parent's duration
// contains the time spent pulling rows from its children, mirroring the
// convention of Postgres' EXPLAIN ANALYZE output.
type OpStats struct {
	Rows  int64
	Loops int64
	Time  time.Duration
	// Workers holds the per-worker breakdown for operators that ran under a
	// Gather (one entry per worker, in worker order) or for a partitioned
	// hash join (one entry per partition). For such operators the top-level
	// Rows/Loops are sums across workers and Time is the slowest worker.
	Workers []*OpStats
}

// statsOp decorates an operator, attributing wall time and row counts to its
// plan node. The decorator exists only on the analyze path: plain Build never
// allocates it, so normal execution pays nothing.
type statsOp struct {
	op Operator
	st *OpStats
}

func (s *statsOp) Open() error {
	start := time.Now()
	err := s.op.Open()
	s.st.Time += time.Since(start)
	s.st.Loops++
	return err
}

func (s *statsOp) Next() (sqltypes.Row, bool, error) {
	start := time.Now()
	row, ok, err := s.op.Next()
	s.st.Time += time.Since(start)
	if ok {
		s.st.Rows++
	}
	return row, ok, err
}

func (s *statsOp) Close() { s.op.Close() }

// BuildInstrumented compiles a plan into an operator tree where every node is
// wrapped with a stats decorator. The returned map is keyed by plan node and
// is filled in as the query executes.
func BuildInstrumented(n plan.Node, params []sqltypes.Value, view *catalog.View) (Operator, map[plan.Node]*OpStats, error) {
	stats := make(map[plan.Node]*OpStats)
	op, err := build(n, params, buildEnv{view: view, stats: stats})
	if err != nil {
		return nil, nil, err
	}
	return op, stats, nil
}

// RunAnalyze executes a SELECT plan with per-operator instrumentation
// against the given view and returns both the result and the collected
// stats. A non-nil sp additionally emits one trace span per operator.
func RunAnalyze(n plan.Node, params []sqltypes.Value, view *catalog.View, sp *obs.ActiveSpan) (*Result, map[plan.Node]*OpStats, error) {
	stats := make(map[plan.Node]*OpStats)
	op, err := build(n, params, buildEnv{view: view, stats: stats, span: sp})
	if err != nil {
		return nil, nil, err
	}
	if err := op.Open(); err != nil {
		return nil, nil, err
	}
	defer op.Close()
	schema := n.Schema()
	res := &Result{Columns: make([]string, len(schema))}
	for i, c := range schema {
		res.Columns[i] = c.Column
	}
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return res, stats, nil
		}
		res.Rows = append(res.Rows, row.Clone())
	}
}

// FormatAnalyze renders the plan tree with per-operator actuals appended to
// each line, e.g.
//
//	SeqScan edge (actual rows=42 loops=1 time=17µs)
//
// Operators that ran across Gather workers (or join partitions) additionally
// report each worker's row count:
//
//	SeqScan parallel edge (actual rows=42 loops=4 time=9µs) [workers rows=11/10/12/9]
func FormatAnalyze(n plan.Node, stats map[plan.Node]*OpStats) string {
	return plan.ExplainAnnotated(n, func(node plan.Node, b *strings.Builder) {
		st := stats[node]
		if st == nil {
			return
		}
		fmt.Fprintf(b, " (actual rows=%d loops=%d time=%s)",
			st.Rows, st.Loops, st.Time.Round(time.Microsecond))
		if len(st.Workers) > 0 {
			b.WriteString(" [workers rows=")
			for i, w := range st.Workers {
				if i > 0 {
					b.WriteByte('/')
				}
				fmt.Fprintf(b, "%d", w.Rows)
			}
			b.WriteByte(']')
		}
	})
}
