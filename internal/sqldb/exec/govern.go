package exec

import (
	"context"

	"ordxml/internal/govern"
	"ordxml/internal/sqldb/sqltypes"
)

// Operator-level governance: every leaf and pipeline-breaking operator holds
// a govTick built from the query's buildEnv. step() polls the statement
// context once per govern.PollInterval rows, so cancellation and deadlines
// abort a scan mid-flight; charge() books materialized bytes against the
// query's shared memory accountant, so hash tables, sort buffers and result
// sets cannot silently outgrow the configured budget. Both are nil-safe and
// cost one branch per row on ungoverned queries.

// govTick is one operator's governance handle. Each operator instance gets
// its own (the row counter must not be shared across Gather workers); the
// context and accountant behind it are shared query-wide.
type govTick struct {
	ctx  context.Context
	mem  *govern.Accountant
	rows int
}

// newTick returns the governance handle for an operator built under env, or
// nil when the query is ungoverned.
func (e buildEnv) newTick() *govTick {
	if e.ctx == nil && e.mem == nil {
		return nil
	}
	return &govTick{ctx: e.ctx, mem: e.mem}
}

// step counts one row and polls the context every govern.PollInterval rows.
func (g *govTick) step() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	g.rows++
	if g.rows%govern.PollInterval != 0 {
		return nil
	}
	return govern.CtxErr(g.ctx)
}

// charge books n bytes against the query's memory budget.
func (g *govTick) charge(n int64) error {
	if g == nil {
		return nil
	}
	return g.mem.Charge(n)
}

// chargeRow books one materialized row.
func (g *govTick) chargeRow(r sqltypes.Row) error {
	if g == nil || g.mem == nil {
		return nil
	}
	return g.mem.Charge(r.Memory())
}
