package exec_test

import (
	"strings"
	"testing"
	"testing/quick"

	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/exec"
	"ordxml/internal/sqldb/heap"
)

// Property: the hidden-column RID codec round-trips.
func TestRIDCodecProperty(t *testing.T) {
	f := func(page uint32, slot uint16) bool {
		rid := heap.RID{Page: page & 0xFFFFFF, Slot: slot}
		return exec.DecodeRIDInt(exec.EncodeRIDInt(rid)) == rid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func setup(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open()
	mustExec(t, db, "CREATE TABLE t (k INT PRIMARY KEY, grp TEXT, v INT)")
	mustExec(t, db, `INSERT INTO t VALUES
		(1, 'a', 10), (2, 'a', 20), (3, 'b', 30), (4, 'b', NULL), (5, 'c', 50)`)
	return db
}

func mustExec(t *testing.T, db *sqldb.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

func TestLimitEdges(t *testing.T) {
	db := setup(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT k FROM t ORDER BY k LIMIT 0", 0},
		{"SELECT k FROM t ORDER BY k LIMIT 100", 5},
		{"SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 4", 1},
		{"SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 99", 0},
		{"SELECT k FROM t ORDER BY k LIMIT NULL", 5}, // NULL limit = unlimited
	}
	for _, c := range cases {
		res, err := db.Query(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if len(res.Rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestSortStability(t *testing.T) {
	db := setup(t)
	// Equal keys keep input order (stable sort): grp 'a' rows keep k order.
	res, err := db.Query("SELECT k FROM t ORDER BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Errorf("unstable sort: %v", res.Rows)
	}
}

func TestSortNullsFirst(t *testing.T) {
	db := setup(t)
	res, err := db.Query("SELECT k FROM t ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 4 { // NULL v sorts first
		t.Errorf("NULL ordering: %v", res.Rows)
	}
	res, _ = db.Query("SELECT k FROM t ORDER BY v DESC")
	if res.Rows[len(res.Rows)-1][0].Int() != 4 {
		t.Errorf("NULL DESC ordering: %v", res.Rows)
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	db := setup(t)
	if _, err := db.Query("SELECT 1 / (k - k) FROM t"); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Errorf("division by zero not surfaced: %v", err)
	}
	if _, err := db.Query("SELECT k + grp FROM t"); err == nil {
		t.Error("type error not surfaced")
	}
}

func TestGroupByNullGroups(t *testing.T) {
	db := setup(t)
	// NULL forms its own group.
	res, err := db.Query("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || !res.Rows[0][0].IsNull() {
		t.Errorf("groups = %v", res.Rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := setup(t)
	mustExec(t, db, "CREATE TABLE u (v INT, lbl TEXT)")
	mustExec(t, db, "INSERT INTO u VALUES (NULL, 'nil'), (10, 'ten')")
	res, err := db.Query("SELECT t.k, u.lbl FROM t JOIN u ON t.v = u.v")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Text() != "ten" {
		t.Errorf("NULL join keys matched: %v", res.Rows)
	}
}

func TestLeftJoinNonEquiViaNL(t *testing.T) {
	db := setup(t)
	mustExec(t, db, "CREATE TABLE bounds (lo INT, hi INT, name TEXT)")
	mustExec(t, db, "INSERT INTO bounds VALUES (0, 25, 'low'), (25, 100, 'high'), (200, 300, 'none')")
	res, err := db.Query(`SELECT b.name, COUNT(t.k) FROM bounds b
		LEFT JOIN t ON t.v >= b.lo AND t.v < b.hi
		GROUP BY b.name ORDER BY b.name`)
	if err != nil {
		t.Fatal(err)
	}
	// low: v=10,20 -> 2; high: 30,50 -> 2; none: 0 (COUNT of NULL-extended = 0).
	got := map[string]int64{}
	for _, r := range res.Rows {
		got[r[0].Text()] = r[1].Int()
	}
	if got["low"] != 2 || got["high"] != 2 || got["none"] != 0 {
		t.Errorf("left join counts = %v", got)
	}
}

func TestUpdateSelfReferencingSet(t *testing.T) {
	db := setup(t)
	// SET v = v + k must read pre-update values for each row.
	if _, err := db.Exec("UPDATE t SET v = v + k WHERE v IS NOT NULL"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT v FROM t WHERE k = 2")
	if res.Rows[0][0].Int() != 22 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
}

func TestDeleteDuringIndexScanSnapshot(t *testing.T) {
	db := setup(t)
	// DELETE with an index-driven predicate removes exactly the matching
	// rows even though deletion mutates the structures being scanned.
	n, err := db.Exec("DELETE FROM t WHERE k >= 2 AND k <= 4")
	if err != nil || n != 3 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	res, _ := db.Query("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
}
