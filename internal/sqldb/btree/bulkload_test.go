package btree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"ordxml/internal/sqldb/heap"
)

// randomSortedItems builds n strictly ascending items with variable-length
// random keys.
func randomSortedItems(rng *rand.Rand, n int) []Item {
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		k := make([]byte, 1+rng.Intn(24))
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	items := make([]Item, n)
	for i, k := range keys {
		items[i] = Item{Key: k, RID: heap.RID{Page: uint32(i), Slot: uint16(i % 500)}}
	}
	return items
}

// TestBulkLoadEquivalence is the property test behind the bulk loader: for
// random sorted inputs, a bulk-built tree must be observationally equivalent
// to one built by repeated Insert — same Len, Get, Seek ranges and prefix
// scans — and must stay correct under further Inserts and Deletes.
func TestBulkLoadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 47, 48, 49, 64, 65, 100, 1000, 5000} {
		items := randomSortedItems(rng, n)
		bulk, err := BulkLoad(items)
		if err != nil {
			t.Fatalf("n=%d: BulkLoad: %v", n, err)
		}
		ref := New()
		for _, it := range items {
			if err := ref.Insert(it.Key, it.RID); err != nil {
				t.Fatalf("n=%d: Insert: %v", n, err)
			}
		}
		checkEquivalent(t, bulk, ref, items, rng)

		// The bulk-built tree must keep working as a normal tree: trickle
		// inserts and deletes after the load.
		extra := randomSortedItems(rng, 50)
		for _, it := range extra {
			ebulk := bulk.Insert(it.Key, it.RID)
			eref := ref.Insert(it.Key, it.RID)
			if (ebulk == nil) != (eref == nil) {
				t.Fatalf("n=%d: post-load insert disagreement: %v vs %v", n, ebulk, eref)
			}
		}
		for i := 0; i < len(items); i += 3 {
			if err := bulk.Delete(items[i].Key); err != nil {
				t.Fatalf("n=%d: post-load delete: %v", n, err)
			}
			if err := ref.Delete(items[i].Key); err != nil {
				t.Fatalf("n=%d: ref delete: %v", n, err)
			}
		}
		if bulk.Len() != ref.Len() {
			t.Fatalf("n=%d: after churn Len %d != %d", n, bulk.Len(), ref.Len())
		}
		all := collect(bulk.Seek(nil, nil))
		refAll := collect(ref.Seek(nil, nil))
		if len(all) != len(refAll) {
			t.Fatalf("n=%d: after churn scan %d != %d entries", n, len(all), len(refAll))
		}
	}
}

func checkEquivalent(t *testing.T, bulk, ref *Tree, items []Item, rng *rand.Rand) {
	t.Helper()
	if bulk.Len() != ref.Len() {
		t.Fatalf("Len %d != %d", bulk.Len(), ref.Len())
	}
	for _, it := range items {
		got, ok := bulk.Get(it.Key)
		if !ok || got != it.RID {
			t.Fatalf("Get(%x) = %v, %v; want %v", it.Key, got, ok, it.RID)
		}
	}
	if _, ok := bulk.Get([]byte("\xfe\xfd no such key")); ok {
		t.Fatal("Get of absent key succeeded")
	}
	// Full scans agree and come back sorted.
	ba, ra := collect(bulk.Seek(nil, nil)), collect(ref.Seek(nil, nil))
	if len(ba) != len(items) {
		t.Fatalf("full scan returned %d of %d entries", len(ba), len(items))
	}
	for i := range ba {
		if !bytes.Equal(ba[i], ra[i]) {
			t.Fatalf("scan entry %d: %x != %x", i, ba[i], ra[i])
		}
		if i > 0 && bytes.Compare(ba[i-1], ba[i]) >= 0 {
			t.Fatalf("scan not strictly ascending at %d", i)
		}
	}
	// Random sub-ranges agree.
	for trial := 0; trial < 20; trial++ {
		lo := items[rng.Intn(len(items))].Key
		hi := items[rng.Intn(len(items))].Key
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		if got, want := collect(bulk.Seek(lo, hi)), collect(ref.Seek(lo, hi)); len(got) != len(want) {
			t.Fatalf("Seek(%x, %x): %d != %d entries", lo, hi, len(got), len(want))
		}
	}
	// Prefix scans agree.
	for trial := 0; trial < 20; trial++ {
		k := items[rng.Intn(len(items))].Key
		p := k[:1+rng.Intn(len(k))]
		if got, want := collect(bulk.ScanPrefix(p)), collect(ref.ScanPrefix(p)); len(got) != len(want) {
			t.Fatalf("ScanPrefix(%x): %d != %d entries", p, len(got), len(want))
		}
	}
}

func collect(it *Iterator) [][]byte {
	var out [][]byte
	for ; it.Valid(); it.Next() {
		out = append(out, append([]byte(nil), it.Key()...))
	}
	return out
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Insert([]byte("a"), heap.RID{}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	cases := [][]Item{
		{{Key: []byte("b")}, {Key: []byte("a")}},                     // descending
		{{Key: []byte("a")}, {Key: []byte("a")}},                     // duplicate
		{{Key: []byte("a")}, {Key: []byte("c")}, {Key: []byte("b")}}, // out of order tail
	}
	for i, items := range cases {
		if _, err := BulkLoad(items); err != ErrUnsorted {
			t.Fatalf("case %d: err = %v, want ErrUnsorted", i, err)
		}
	}
}

// TestBulkLoadIterationOrder checks the property range iteration depends on:
// every key must be reachable by a full-range iterator, in strictly
// ascending order, from well-formed leaves.
func TestBulkLoadIterationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomSortedItems(rng, 3000)
	tr, err := BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for it := tr.Seek(nil, nil); it.Valid(); it.Next() {
		leaf := it.stack[len(it.stack)-1].n
		if len(leaf.keys) == 0 {
			t.Fatal("empty leaf reached by iterator")
		}
		if len(leaf.keys) > maxKeys {
			t.Fatalf("overfull leaf: %d keys", len(leaf.keys))
		}
		k := it.Key()
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iteration out of order at %x", k)
		}
		prev = append(prev[:0], k...)
		count++
	}
	if count != len(items) {
		t.Fatalf("iterator visited %d keys, want %d", count, len(items))
	}
}
