// Package btree implements a B+tree mapping byte-string keys to heap record
// ids. It is the index structure of the relational engine: keys are produced
// by the order-preserving sqltypes key codec, so lexicographic byte order
// equals SQL value order and every index scan is a byte-range scan. Keys are
// unique; the index layer suffixes non-unique entries with the RID to
// disambiguate.
//
// Mutations are copy-on-write against the most recently published Snapshot:
// every node carries the epoch it was created in, and Insert/Delete clone any
// node stamped in an earlier epoch before touching it (path copying, plus
// siblings during rebalancing). A Snapshot is therefore an immutable root
// that concurrent readers can traverse without locks while the tree keeps
// changing; superseded nodes are reclaimed by the garbage collector once the
// last Snapshot referencing them is dropped.
//
// Trees are in-RAM by default. A pooled tree (Restore, or AdoptFrom on a
// fresh build) additionally pages itself to a buffer pool: WritePages
// serializes every node changed since the last call to fresh page-file pages
// (shadow paging — existing pages are never overwritten), and restored trees
// start as a single root stub whose nodes materialize lazily from their
// pages on first touch, so a tree larger than the pool faults in only what a
// query actually visits. See pageio.go.
package btree

import (
	"bytes"
	"errors"
	"sync/atomic"

	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/heap"
)

// maxKeys is the fan-out bound: nodes split when they exceed maxKeys keys.
const maxKeys = 64

// minKeys is the underflow bound for rebalancing on delete.
const minKeys = maxKeys / 2

// ErrDuplicate is returned when inserting a key that already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// ErrNotFound is returned when deleting or fetching an absent key.
var ErrNotFound = errors.New("btree: key not found")

// ErrKeyTooLarge is returned for keys that could not be serialized into a
// single tree page.
var ErrKeyTooLarge = errors.New("btree: key larger than a tree page")

// MaxKeySize is the largest key Insert and BulkLoad accept: one key must fit
// a serialized one-key node (page payload minus node header and per-entry
// overhead, with slack for the interior layout).
const MaxKeySize = bufpool.PayloadSize - 16

type node struct {
	// keys has len <= maxKeys (transiently maxKeys+1 before a split).
	keys [][]byte
	// children is nil for leaves; len(children) == len(keys)+1 otherwise.
	children []*node
	// rids is parallel to keys in leaves.
	rids []heap.RID
	// stamp is the tree epoch the node was created or cloned in. Nodes
	// stamped before the current epoch may be shared with a published
	// Snapshot and must be cloned before mutation. (Leaves carry no next
	// pointer: a sideways link would force cloning the whole left leaf
	// chain on every copy-on-write; iterators keep a descent stack instead.)
	stamp uint64
	// pid is the page-file page holding this node's serialized image, or 0
	// if the node has changed since it was last written (WritePages assigns
	// a fresh page — shadow paging). Stubs (lazy != nil) always have pid != 0.
	pid bufpool.PageID
	// lazy, when non-nil, means keys/children/rids may not be populated yet:
	// the node is a stub created from a parent's child-pid list and
	// materializes from its page on first touch. Never reset to nil — ensure
	// goes through lazy.once so concurrent snapshot readers race safely.
	lazy *lazyNode
}

// leaf reports whether the node is a leaf. The node must be materialized
// (ensure called) first: stubs keep children nil until they load.
func (n *node) leaf() bool { return n.children == nil }

// search returns the index of the first key >= k.
func (n *node) search(k []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tree is a B+tree. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
	// epoch advances each time a Snapshot is published; nodes stamped before
	// the current epoch are frozen and cloned on write.
	epoch uint64
	// snap caches the last published Snapshot; mutations invalidate it.
	snap *Snapshot
	// NodeReads, when set, is incremented once per tree node visited by
	// lookups, seeks and iterator advances. The catalog points it at a
	// shared engine counter; the nil check keeps the package dependency-free.
	NodeReads *atomic.Int64
	// pool backs pooled trees; nil means a pure in-RAM tree.
	pool *bufpool.Pool
	// freed collects page ids superseded by committed copy-on-write since
	// the last WritePages; they return to the pool's allocator there. A pid
	// joins this list only after the mutation that superseded its node
	// succeeds, and cloning materializes the node in place, so no snapshot
	// reader — nor the live tree, if the mutation fails — can fault the page
	// again.
	freed []bufpool.PageID
	// pendingFree stages pids superseded during the mutation in flight. A
	// failed mutation against a frozen root discards the whole cloned path,
	// leaving t.root referencing the original nodes, so their pids must not
	// reach freed (releasing them would let WritePages hand checkpoint-live
	// pages back to the allocator). installRoot commits this list on
	// success; abortMutation resolves it on failure.
	pendingFree []bufpool.PageID
}

// readNodes bumps the read counter by n visited nodes.
func (t *Tree) readNodes(n int64) {
	if t.NodeReads != nil {
		t.NodeReads.Add(n)
	}
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// clone returns a mutable copy of n stamped with the current epoch. Key and
// payload bytes are shared (they are immutable); only the slice spines are
// copied. The clone has no page yet (pid 0): WritePages gives changed nodes
// fresh pages. Cloning materializes n, so once a node is superseded its
// in-memory content — not its page — serves any snapshot still holding it.
func (t *Tree) clone(n *node) *node {
	n.ensure()
	c := &node{stamp: t.epoch}
	c.keys = append(make([][]byte, 0, len(n.keys)), n.keys...)
	if n.children != nil {
		c.children = append(make([]*node, 0, len(n.children)), n.children...)
	}
	if n.rids != nil {
		c.rids = append(make([]heap.RID, 0, len(n.rids)), n.rids...)
	}
	return c
}

// freePid stages a superseded page id for release once the mutation in
// flight commits (it reaches the allocator at the next WritePages after
// that). Only call for nodes that were just cloned (and are therefore
// materialized).
func (t *Tree) freePid(pid bufpool.PageID) {
	if t.pool != nil && pid != 0 {
		t.pendingFree = append(t.pendingFree, pid)
	}
}

// commitFreed moves the pids staged by the current mutation onto the freed
// list, scheduling their release at the next WritePages.
func (t *Tree) commitFreed() {
	t.freed = append(t.freed, t.pendingFree...)
	t.pendingFree = t.pendingFree[:0]
}

// abortMutation resolves pendingFree after a failed Insert or Delete, given
// the root the mutation ran against. If that root was a clone (the tree was
// frozen by a snapshot), the clone and every node linked into it are
// discarded and t.root still references the originals — their pids must
// stay live, so the staged ids are dropped. If the mutation ran in place on
// the live root, clones relinked during the descent remain reachable and
// their originals really are superseded, so the staged ids are committed.
func (t *Tree) abortMutation(root *node) {
	if root == t.root {
		t.commitFreed()
		return
	}
	t.pendingFree = t.pendingFree[:0]
}

// writableChild returns child i of the (already writable) node n, cloning it
// and relinking it into n first if it is frozen in an earlier epoch. Linking
// a clone is harmless even if the operation later fails: the clone holds
// identical content (and the superseded page would be rewritten by the next
// WritePages anyway).
func (t *Tree) writableChild(n *node, i int) *node {
	c := n.children[i]
	if c.stamp != t.epoch {
		nc := t.clone(c)
		t.freePid(c.pid)
		n.children[i] = nc
		c = nc
	}
	return c
}

// writableRoot returns the root, cloned if frozen. The caller installs it
// into t.root (and releases the old root's page) only once the mutation
// succeeds.
func (t *Tree) writableRoot() *node {
	if t.root.stamp != t.epoch {
		return t.clone(t.root)
	}
	return t.root
}

// installRoot publishes the successfully mutated root, releasing the
// superseded root's page if the mutation started by cloning it, and commits
// every pid the mutation staged for release.
func (t *Tree) installRoot(root *node) {
	if root != t.root {
		t.freePid(t.root.pid)
	}
	t.root = root
	t.commitFreed()
}

// Get returns the RID stored under key.
func (t *Tree) Get(key []byte) (heap.RID, bool) {
	return get(t.root, key, t.NodeReads)
}

func get(root *node, key []byte, reads *atomic.Int64) (heap.RID, bool) {
	n := root
	n.ensure()
	visited := int64(1)
	for !n.leaf() {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // interior separator equal to key: key lives in right subtree
		}
		n = n.children[i]
		n.ensure()
		visited++
	}
	if reads != nil {
		reads.Add(visited)
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.rids[i], true
	}
	return heap.RID{}, false
}

// Insert adds key -> rid. The key bytes are copied.
func (t *Tree) Insert(key []byte, rid heap.RID) error {
	if len(key) > MaxKeySize {
		return ErrKeyTooLarge
	}
	k := make([]byte, len(key))
	copy(k, key)
	t.snap = nil
	root := t.writableRoot()
	promoted, right, err := t.insert(root, k, rid)
	if err != nil {
		t.abortMutation(root)
		return err
	}
	t.installRoot(root)
	if right != nil {
		t.root = &node{
			keys:     [][]byte{promoted},
			children: []*node{root, right},
			stamp:    t.epoch,
		}
	}
	t.size++
	return nil
}

// insert descends to the leaf; on split it returns the promoted separator and
// the new right sibling. n must already be writable (current epoch).
func (t *Tree) insert(n *node, key []byte, rid heap.RID) ([]byte, *node, error) {
	if n.leaf() {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			return nil, nil, ErrDuplicate
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rids = append(n.rids, heap.RID{})
		copy(n.rids[i+1:], n.rids[i:])
		n.rids[i] = rid
		if overfull(n) {
			return t.splitLeaf(n)
		}
		return nil, nil, nil
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	promoted, right, err := t.insert(t.writableChild(n, i), key, rid)
	if err != nil || right == nil {
		return nil, nil, err
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if overfull(n) {
		return t.splitInterior(n)
	}
	return nil, nil, nil
}

// overfull reports whether a node must split: above the fan-out bound, or
// (with at least two keys, so a split is possible) too large to serialize
// comfortably into a page. The byte bound is a safety valve for long keys;
// typical key sizes hit maxKeys long before it.
func overfull(n *node) bool {
	return len(n.keys) > maxKeys || (len(n.keys) > 1 && nodeBytes(n) > nodeByteBudget)
}

func (t *Tree) splitLeaf(n *node) ([]byte, *node, error) {
	mid := len(n.keys) / 2
	right := &node{
		keys:  append([][]byte(nil), n.keys[mid:]...),
		rids:  append([]heap.RID(nil), n.rids[mid:]...),
		stamp: t.epoch,
	}
	n.keys = n.keys[:mid:mid]
	n.rids = n.rids[:mid:mid]
	return right.keys[0], right, nil
}

func (t *Tree) splitInterior(n *node) ([]byte, *node, error) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
		stamp:    t.epoch,
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, right, nil
}

// Delete removes key.
func (t *Tree) Delete(key []byte) error {
	t.snap = nil
	root := t.writableRoot()
	if err := t.delete(root, key); err != nil {
		t.abortMutation(root)
		return err
	}
	t.installRoot(root)
	if !root.leaf() && len(root.keys) == 0 {
		// The emptied interior root collapses away; it was writable (pid 0),
		// so there is no page to release.
		t.root = root.children[0]
	}
	t.size--
	return nil
}

// delete removes key from the subtree under the writable node n.
func (t *Tree) delete(n *node, key []byte) error {
	if n.leaf() {
		i := n.search(key)
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return ErrNotFound
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.rids = append(n.rids[:i], n.rids[i+1:]...)
		return nil
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	if err := t.delete(t.writableChild(n, i), key); err != nil {
		return err
	}
	if len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return nil
}

// rebalance fixes an underflowing child i of n by borrowing from or merging
// with a sibling. n and child i are writable; the sibling touched is cloned
// here if frozen.
func (t *Tree) rebalance(n *node, i int) {
	child := n.children[i]
	// Sibling fill checks read frozen siblings, which may be stubs.
	if i > 0 {
		n.children[i-1].ensure()
	}
	if i < len(n.children)-1 {
		n.children[i+1].ensure()
	}
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		left := t.writableChild(n, i-1)
		if child.leaf() {
			last := len(left.keys) - 1
			child.keys = append([][]byte{left.keys[last]}, child.keys...)
			child.rids = append([]heap.RID{left.rids[last]}, child.rids...)
			left.keys = left.keys[:last]
			left.rids = left.rids[:last]
			n.keys[i-1] = child.keys[0]
		} else {
			last := len(left.keys) - 1
			child.keys = append([][]byte{n.keys[i-1]}, child.keys...)
			child.children = append([]*node{left.children[last+1]}, child.children...)
			n.keys[i-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		return
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		right := t.writableChild(n, i+1)
		if child.leaf() {
			child.keys = append(child.keys, right.keys[0])
			child.rids = append(child.rids, right.rids[0])
			right.keys = right.keys[1:]
			right.rids = right.rids[1:]
			n.keys[i] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[i])
			child.children = append(child.children, right.children[0])
			n.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling. Byte-budget splits (long keys) leave nodes near
	// nodeByteBudget with few keys; recombining two such nodes could build
	// one that no longer serializes into a page, wedging every subsequent
	// WritePages. mergeChildren therefore refuses any merge whose result
	// would exceed the byte budget — checked before cloning anything — and
	// the underflowing child tries its other neighbor, or simply stays
	// underfull by key count (it is byte-heavy, so the page is well used).
	if i > 0 && t.mergeChildren(n, i-1) {
		return
	}
	if i < len(n.children)-1 {
		t.mergeChildren(n, i)
	}
}

// mergeChildren merges children li and li+1 of the writable node n, pulling
// down the separator between them when they are interior. It reports whether
// the merge happened: a merge whose result would serialize above
// nodeByteBudget is skipped. Both children must be materialized (rebalance
// ensures the siblings it touches).
func (t *Tree) mergeChildren(n *node, li int) bool {
	if mergedNodeBytes(n, li) > nodeByteBudget {
		return false
	}
	left := t.writableChild(n, li)
	right := t.writableChild(n, li+1)
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.rids = append(left.rids, right.rids...)
	} else {
		left.keys = append(left.keys, n.keys[li])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:li], n.keys[li+1:]...)
	n.children = append(n.children[:li+1], n.children[li+2:]...)
	return true
}

// Snapshot is an immutable point-in-time view of a tree, safe for concurrent
// lock-free traversal while the owning tree keeps changing.
type Snapshot struct {
	root  *node
	size  int
	reads *atomic.Int64
}

// Snapshot publishes the current tree as an immutable Snapshot and advances
// the copy-on-write epoch. The result is cached: snapshotting an unmodified
// tree returns the same Snapshot without copying anything. Snapshot must be
// called from the writer side; the returned Snapshot itself is safe for
// concurrent use.
func (t *Tree) Snapshot() *Snapshot {
	if t.snap == nil {
		t.epoch++
		t.snap = &Snapshot{root: t.root, size: t.size, reads: t.NodeReads}
	}
	return t.snap
}

// Len returns the number of entries in the snapshot.
func (s *Snapshot) Len() int { return s.size }

// Get returns the RID stored under key.
func (s *Snapshot) Get(key []byte) (heap.RID, bool) {
	return get(s.root, key, s.reads)
}

// Seek returns an iterator positioned at the first key >= start. A nil start
// begins at the smallest key. end, when non-nil, is an exclusive upper bound.
func (s *Snapshot) Seek(start, end []byte) *Iterator {
	return seek(s.root, start, end, s.reads)
}

// ScanPrefix returns an iterator over all keys with the given prefix.
func (s *Snapshot) ScanPrefix(prefix []byte) *Iterator {
	return s.Seek(prefix, prefixSuccessor(prefix))
}

// iterFrame is one level of an iterator's descent stack: a node plus the
// index of the key (leaf) or child (interior) the iterator is at.
type iterFrame struct {
	n *node
	i int
}

// Iterator walks entries in ascending key order. It keeps the root-to-leaf
// descent stack instead of following sideways leaf links, so it works over
// copy-on-write snapshots whose leaves carry no next pointers.
type Iterator struct {
	stack []iterFrame   // path from root (bottom) to current leaf (top)
	end   []byte        // exclusive upper bound; nil = none
	reads *atomic.Int64 // owning tree's node-read counter; may be nil
}

// Seek returns an iterator positioned at the first key >= start. A nil start
// begins at the smallest key. end, when non-nil, is an exclusive upper bound.
func (t *Tree) Seek(start, end []byte) *Iterator {
	return seek(t.root, start, end, t.NodeReads)
}

func seek(root *node, start, end []byte, reads *atomic.Int64) *Iterator {
	it := &Iterator{end: end, reads: reads}
	n := root
	n.ensure()
	visited := int64(1)
	for !n.leaf() {
		i := 0
		if start != nil {
			i = n.search(start)
			if i < len(n.keys) && bytes.Equal(n.keys[i], start) {
				i++
			}
		}
		it.stack = append(it.stack, iterFrame{n: n, i: i})
		n = n.children[i]
		n.ensure()
		visited++
	}
	if reads != nil {
		reads.Add(visited)
	}
	i := 0
	if start != nil {
		i = n.search(start)
	}
	it.stack = append(it.stack, iterFrame{n: n, i: i})
	it.advance()
	return it
}

// ScanPrefix returns an iterator over all keys with the given prefix.
func (t *Tree) ScanPrefix(prefix []byte) *Iterator {
	return t.Seek(prefix, prefixSuccessor(prefix))
}

func prefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// advance moves the iterator to the next positioned leaf entry, popping
// exhausted frames and descending into the leftmost path of the next
// sibling subtree.
func (it *Iterator) advance() {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.n.leaf() {
			if top.i < len(top.n.keys) {
				return
			}
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		top.i++
		if top.i >= len(top.n.children) {
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		// Descend to the leftmost leaf of the next child subtree.
		n := top.n.children[top.i]
		n.ensure()
		visited := int64(1)
		for !n.leaf() {
			it.stack = append(it.stack, iterFrame{n: n, i: 0})
			n = n.children[0]
			n.ensure()
			visited++
		}
		it.stack = append(it.stack, iterFrame{n: n, i: 0})
		if it.reads != nil {
			it.reads.Add(visited)
		}
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	if len(it.stack) == 0 {
		return false
	}
	top := it.stack[len(it.stack)-1]
	if top.i >= len(top.n.keys) {
		return false
	}
	return it.end == nil || bytes.Compare(top.n.keys[top.i], it.end) < 0
}

// Key returns the current key. Valid only while Valid() is true. The slice
// aliases tree memory and must not be mutated.
func (it *Iterator) Key() []byte {
	top := it.stack[len(it.stack)-1]
	return top.n.keys[top.i]
}

// RID returns the current record id.
func (it *Iterator) RID() heap.RID {
	top := it.stack[len(it.stack)-1]
	return top.n.rids[top.i]
}

// Next advances the iterator.
func (it *Iterator) Next() {
	it.stack[len(it.stack)-1].i++
	it.advance()
}
