// Package btree implements an in-memory B+tree mapping byte-string keys to
// heap record ids. It is the index structure of the relational engine: keys
// are produced by the order-preserving sqltypes key codec, so lexicographic
// byte order equals SQL value order and every index scan is a byte-range
// scan. Keys are unique; the index layer suffixes non-unique entries with the
// RID to disambiguate.
package btree

import (
	"bytes"
	"errors"
	"sync/atomic"

	"ordxml/internal/sqldb/heap"
)

// maxKeys is the fan-out bound: nodes split when they exceed maxKeys keys.
const maxKeys = 64

// minKeys is the underflow bound for rebalancing on delete.
const minKeys = maxKeys / 2

// ErrDuplicate is returned when inserting a key that already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// ErrNotFound is returned when deleting or fetching an absent key.
var ErrNotFound = errors.New("btree: key not found")

type node struct {
	// keys has len <= maxKeys (transiently maxKeys+1 before a split).
	keys [][]byte
	// children is nil for leaves; len(children) == len(keys)+1 otherwise.
	children []*node
	// rids is parallel to keys in leaves.
	rids []heap.RID
	// next links leaves for range scans.
	next *node
}

func (n *node) leaf() bool { return n.children == nil }

// search returns the index of the first key >= k.
func (n *node) search(k []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Tree is a B+tree. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
	// NodeReads, when set, is incremented once per tree node visited by
	// lookups, seeks and leaf-chain advances. The catalog points it at a
	// shared engine counter; the nil check keeps the package dependency-free.
	NodeReads *atomic.Int64
}

// readNodes bumps the read counter by n visited nodes.
func (t *Tree) readNodes(n int64) {
	if t.NodeReads != nil {
		t.NodeReads.Add(n)
	}
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the RID stored under key.
func (t *Tree) Get(key []byte) (heap.RID, bool) {
	n := t.root
	visited := int64(1)
	for !n.leaf() {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // interior separator equal to key: key lives in right subtree
		}
		n = n.children[i]
		visited++
	}
	t.readNodes(visited)
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.rids[i], true
	}
	return heap.RID{}, false
}

// Insert adds key -> rid. The key bytes are copied.
func (t *Tree) Insert(key []byte, rid heap.RID) error {
	k := make([]byte, len(key))
	copy(k, key)
	promoted, right, err := t.insert(t.root, k, rid)
	if err != nil {
		return err
	}
	if right != nil {
		t.root = &node{
			keys:     [][]byte{promoted},
			children: []*node{t.root, right},
		}
	}
	t.size++
	return nil
}

// insert descends to the leaf; on split it returns the promoted separator and
// the new right sibling.
func (t *Tree) insert(n *node, key []byte, rid heap.RID) ([]byte, *node, error) {
	if n.leaf() {
		i := n.search(key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			return nil, nil, ErrDuplicate
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rids = append(n.rids, heap.RID{})
		copy(n.rids[i+1:], n.rids[i:])
		n.rids[i] = rid
		if len(n.keys) > maxKeys {
			return t.splitLeaf(n)
		}
		return nil, nil, nil
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	promoted, right, err := t.insert(n.children[i], key, rid)
	if err != nil || right == nil {
		return nil, nil, err
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) > maxKeys {
		return t.splitInterior(n)
	}
	return nil, nil, nil
}

func (t *Tree) splitLeaf(n *node) ([]byte, *node, error) {
	mid := len(n.keys) / 2
	right := &node{
		keys: append([][]byte(nil), n.keys[mid:]...),
		rids: append([]heap.RID(nil), n.rids[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.rids = n.rids[:mid:mid]
	n.next = right
	return right.keys[0], right, nil
}

func (t *Tree) splitInterior(n *node) ([]byte, *node, error) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, right, nil
}

// Delete removes key.
func (t *Tree) Delete(key []byte) error {
	if err := t.delete(t.root, key); err != nil {
		return err
	}
	if !t.root.leaf() && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	t.size--
	return nil
}

func (t *Tree) delete(n *node, key []byte) error {
	if n.leaf() {
		i := n.search(key)
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return ErrNotFound
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.rids = append(n.rids[:i], n.rids[i+1:]...)
		return nil
	}
	i := n.search(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	if err := t.delete(n.children[i], key); err != nil {
		return err
	}
	if len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return nil
}

// rebalance fixes an underflowing child i of n by borrowing from or merging
// with a sibling.
func (t *Tree) rebalance(n *node, i int) {
	child := n.children[i]
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		left := n.children[i-1]
		if child.leaf() {
			last := len(left.keys) - 1
			child.keys = append([][]byte{left.keys[last]}, child.keys...)
			child.rids = append([]heap.RID{left.rids[last]}, child.rids...)
			left.keys = left.keys[:last]
			left.rids = left.rids[:last]
			n.keys[i-1] = child.keys[0]
		} else {
			last := len(left.keys) - 1
			child.keys = append([][]byte{n.keys[i-1]}, child.keys...)
			child.children = append([]*node{left.children[last+1]}, child.children...)
			n.keys[i-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		return
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		right := n.children[i+1]
		if child.leaf() {
			child.keys = append(child.keys, right.keys[0])
			child.rids = append(child.rids, right.rids[0])
			right.keys = right.keys[1:]
			right.rids = right.rids[1:]
			n.keys[i] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[i])
			child.children = append(child.children, right.children[0])
			n.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling.
	if i > 0 {
		i-- // merge children[i] (left) and children[i+1] (the underflowing one)
	}
	left, right := n.children[i], n.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.rids = append(left.rids, right.rids...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Iterator walks entries in ascending key order.
type Iterator struct {
	n     *node
	i     int
	end   []byte        // exclusive upper bound; nil = none
	reads *atomic.Int64 // owning tree's node-read counter; may be nil
}

// Seek returns an iterator positioned at the first key >= start. A nil start
// begins at the smallest key. end, when non-nil, is an exclusive upper bound.
func (t *Tree) Seek(start, end []byte) *Iterator {
	n := t.root
	visited := int64(1)
	for !n.leaf() {
		i := 0
		if start != nil {
			i = n.search(start)
			if i < len(n.keys) && bytes.Equal(n.keys[i], start) {
				i++
			}
		}
		n = n.children[i]
		visited++
	}
	t.readNodes(visited)
	i := 0
	if start != nil {
		i = n.search(start)
	}
	it := &Iterator{n: n, i: i, end: end, reads: t.NodeReads}
	it.skipExhausted()
	return it
}

// ScanPrefix returns an iterator over all keys with the given prefix.
func (t *Tree) ScanPrefix(prefix []byte) *Iterator {
	return t.Seek(prefix, prefixSuccessor(prefix))
}

func prefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

func (it *Iterator) skipExhausted() {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
		if it.reads != nil && it.n != nil {
			it.reads.Add(1)
		}
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	if it.n == nil || it.i >= len(it.n.keys) {
		return false
	}
	return it.end == nil || bytes.Compare(it.n.keys[it.i], it.end) < 0
}

// Key returns the current key. Valid only while Valid() is true. The slice
// aliases tree memory and must not be mutated.
func (it *Iterator) Key() []byte { return it.n.keys[it.i] }

// RID returns the current record id.
func (it *Iterator) RID() heap.RID { return it.n.rids[it.i] }

// Next advances the iterator.
func (it *Iterator) Next() {
	it.i++
	it.skipExhausted()
}
