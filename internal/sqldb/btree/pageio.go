package btree

// Paging support: serializing tree nodes to buffer-pool pages and
// materializing them back lazily.
//
// A pooled tree is shadow-paged. WritePages walks the tree post-order and
// gives every node changed since the last call (pid 0) a freshly allocated
// page; unchanged subtrees keep their pages and are not visited. Pages are
// therefore written exactly once and never updated in place — superseded
// pids queue on Tree.freed and return to the allocator at the next
// WritePages, where the pool's shadow-paging rules keep checkpoint-
// referenced pages intact until the next checkpoint commits.
//
// Restore rebuilds a tree from its root pid alone: nodes start as stubs
// (pid + lazy loader) and materialize from their pages on first touch, so
// opening a store reads nothing and a query faults in only the nodes it
// visits. Materialization runs under a sync.Once per node — concurrent
// snapshot readers race safely, and a node, once loaded, never reloads: by
// the time a page id is freed its node has been materialized (cloning does
// so), so no reader can fault a reused page.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/heap"
)

// Node page layout (within one bufpool.PayloadSize page):
//
//	kind     uint8   1 = leaf, 2 = interior
//	nkeys    uint16
//	keys     nkeys × (klen uint16, key bytes)
//	leaf:     nkeys × (page uint32, slot uint16)      — RIDs, parallel to keys
//	interior: (nkeys+1) × (pid uint32)                — child page ids
const (
	nodeKindLeaf     = 1
	nodeKindInterior = 2
	nodeHeaderBytes  = 3
	ridBytes         = 6
	childPidBytes    = 4
)

// nodeByteBudget is the serialized-size split threshold: half a page, so a
// node split on bytes leaves both halves comfortably below the page size.
const nodeByteBudget = bufpool.PayloadSize / 2

// lazyNode carries what a stub needs to materialize itself.
type lazyNode struct {
	once sync.Once
	pool *bufpool.Pool
}

// ensure materializes a stub node from its page; a no-op for nodes built in
// memory. Safe to call concurrently from snapshot readers.
func (n *node) ensure() {
	if n.lazy == nil {
		return
	}
	n.lazy.once.Do(n.materialize)
}

// materialize loads and decodes the node's page. Fail stop on unreadable or
// malformed pages, mirroring the pool's fault policy: the page was written
// and checksummed by us, so an undecodable image is storage corruption.
func (n *node) materialize() {
	pool := n.lazy.pool
	fr := pool.Fetch(n.pid)
	b := fr.Bytes()
	defer fr.Unpin()
	kind := b[0]
	nkeys := int(binary.LittleEndian.Uint16(b[1:3]))
	off := nodeHeaderBytes
	keys := make([][]byte, nkeys)
	for i := 0; i < nkeys; i++ {
		klen := int(binary.LittleEndian.Uint16(b[off : off+2]))
		off += 2
		// Keys alias the page payload: evicted buffers are dropped, never
		// recycled, so the slices stay valid for the node's lifetime.
		keys[i] = b[off : off+klen : off+klen]
		off += klen
	}
	switch kind {
	case nodeKindLeaf:
		rids := make([]heap.RID, nkeys)
		for i := 0; i < nkeys; i++ {
			rids[i] = heap.RID{
				Page: binary.LittleEndian.Uint32(b[off : off+4]),
				Slot: binary.LittleEndian.Uint16(b[off+4 : off+6]),
			}
			off += ridBytes
		}
		n.rids = rids
		n.keys = keys
	case nodeKindInterior:
		children := make([]*node, nkeys+1)
		for i := range children {
			pid := bufpool.PageID(binary.LittleEndian.Uint32(b[off : off+4]))
			off += childPidBytes
			children[i] = &node{pid: pid, lazy: &lazyNode{pool: pool}}
		}
		n.keys = keys
		n.children = children
	default:
		panic(fmt.Sprintf("btree: page %d has unknown node kind %d", n.pid, kind))
	}
}

// mergedNodeBytes returns the serialized size of the node that merging
// children li and li+1 of n would produce: both nodes' bytes sharing one
// header, plus the pulled-down separator when they are interior. Both
// children must be materialized.
func mergedNodeBytes(n *node, li int) int {
	sz := nodeBytes(n.children[li]) + nodeBytes(n.children[li+1]) - nodeHeaderBytes
	if !n.children[li].leaf() {
		sz += 2 + len(n.keys[li]) // the separator joins the merged node's keys
	}
	return sz
}

// nodeBytes returns the node's serialized size.
func nodeBytes(n *node) int {
	sz := nodeHeaderBytes
	for _, k := range n.keys {
		sz += 2 + len(k)
	}
	if n.leaf() {
		sz += ridBytes * len(n.rids)
	} else {
		sz += childPidBytes * len(n.children)
	}
	return sz
}

// encodeNode serializes a materialized node into a page payload. Interior
// children are referenced by the already-assigned pids in childPids.
func encodeNode(b []byte, n *node, childPids []bufpool.PageID) {
	if n.leaf() {
		b[0] = nodeKindLeaf
	} else {
		b[0] = nodeKindInterior
	}
	binary.LittleEndian.PutUint16(b[1:3], uint16(len(n.keys)))
	off := nodeHeaderBytes
	for _, k := range n.keys {
		binary.LittleEndian.PutUint16(b[off:off+2], uint16(len(k)))
		off += 2
		copy(b[off:], k)
		off += len(k)
	}
	if n.leaf() {
		for _, r := range n.rids {
			binary.LittleEndian.PutUint32(b[off:off+4], r.Page)
			binary.LittleEndian.PutUint16(b[off+4:off+6], r.Slot)
			off += ridBytes
		}
	} else {
		for _, pid := range childPids {
			binary.LittleEndian.PutUint32(b[off:off+4], uint32(pid))
			off += childPidBytes
		}
	}
}

// NewPaged returns an empty tree that pages itself to pool.
func NewPaged(pool *bufpool.Pool) *Tree {
	t := New()
	t.pool = pool
	return t
}

// Pooled reports whether the tree pages itself to a buffer pool.
func (t *Tree) Pooled() bool { return t.pool != nil }

// WritePages serializes every node changed since the last call to fresh
// pool pages and returns the root's page id. Unchanged subtrees are not
// visited. Superseded page ids collected by copy-on-write are released to
// the allocator. Writer side only; the caller flushes and syncs the pool
// afterwards (the checkpoint does both).
func (t *Tree) WritePages() (bufpool.PageID, error) {
	if t.pool == nil {
		return 0, errors.New("btree: WritePages on an unpooled tree")
	}
	// Freeze the tree first: a published snapshot means every node is
	// immutable, so the images written here cannot go stale before the
	// flush. (Snapshot is cached — this is free when already frozen.)
	t.Snapshot()
	if _, err := t.writeNode(t.root); err != nil {
		return 0, err
	}
	for _, pid := range t.freed {
		t.pool.FreeID(pid)
	}
	t.freed = t.freed[:0]
	return t.root.pid, nil
}

// writeNode assigns pages post-order so children have pids before their
// parent serializes. Nodes with a pid are unchanged and keep their page;
// stubs always carry a pid, so recursion never materializes anything.
func (t *Tree) writeNode(n *node) (bufpool.PageID, error) {
	if n.pid != 0 {
		return n.pid, nil
	}
	var childPids []bufpool.PageID
	if !n.leaf() {
		childPids = make([]bufpool.PageID, len(n.children))
		for i, c := range n.children {
			pid, err := t.writeNode(c)
			if err != nil {
				return 0, err
			}
			childPids[i] = pid
		}
	}
	if sz := nodeBytes(n); sz > bufpool.PayloadSize {
		return 0, fmt.Errorf("btree: node serializes to %d bytes, above the %d-byte page", sz, bufpool.PayloadSize)
	}
	fr, err := t.pool.Alloc()
	if err != nil {
		return 0, err
	}
	encodeNode(fr.MarkDirty(), n, childPids)
	n.pid = fr.ID()
	fr.Unpin()
	return n.pid, nil
}

// Restore rebuilds a pooled tree from a checkpoint manifest: the root page
// id and entry count. No I/O happens here — the root is a stub and the tree
// materializes lazily as queries touch it. The tree starts at epoch 1 with
// every node frozen (stamp 0), so the first mutation copies nodes to fresh
// pages, preserving the checkpoint's on-disk image.
func Restore(pool *bufpool.Pool, rootPid bufpool.PageID, size int) *Tree {
	return &Tree{
		pool:  pool,
		size:  size,
		epoch: 1,
		root:  &node{pid: rootPid, lazy: &lazyNode{pool: pool}},
	}
}

// AdoptFrom makes t pooled with old's pool and schedules all of old's pages
// for release. Used when the catalog replaces a tree wholesale — CREATE
// INDEX backfill, bulk load into an empty table — so the superseded tree's
// pages do not leak.
func (t *Tree) AdoptFrom(old *Tree) {
	if old == nil || old.pool == nil {
		return
	}
	t.pool = old.pool
	// Pids old had already superseded are safe to release at t's next
	// WritePages, exactly as old's own WritePages would have.
	t.freed = append(t.freed, old.freed...)
	old.freed = nil
	old.ReleaseOnGC()
}

// ReleaseOnGC arranges for every page the tree references to return to the
// allocator once no published snapshot can reach it (the tree's root node
// becoming unreachable implies no iterator or snapshot survives, since all
// of them hold the root). Page ids are collected eagerly — faulting interior
// nodes only — so the deferred release does no I/O. Used by DropIndex and
// AdoptFrom; the tree must not be mutated afterwards.
func (t *Tree) ReleaseOnGC() {
	if t.pool == nil {
		return
	}
	for _, pid := range t.freed {
		t.pool.FreeID(pid)
	}
	t.freed = nil
	pids := t.allPids()
	if len(pids) == 0 {
		return
	}
	pool := t.pool
	runtime.SetFinalizer(t.root, func(*node) {
		for _, pid := range pids {
			pool.FreeID(pid)
		}
	})
}

// allPids returns the page id of every node in the tree. Leaf pids come
// from their parents' child lists, so only interior pages fault in.
func (t *Tree) allPids() []bufpool.PageID {
	var pids []bufpool.PageID
	level := []*node{t.root}
	for len(level) > 0 {
		// All leaves sit at the same depth: materializing the first node of
		// a level reveals whether the whole level is leaves.
		level[0].ensure()
		for _, n := range level {
			if n.pid != 0 {
				pids = append(pids, n.pid)
			}
		}
		if level[0].leaf() {
			break
		}
		var next []*node
		for _, n := range level {
			n.ensure()
			next = append(next, n.children...)
		}
		level = next
	}
	return pids
}
