package btree

import (
	"bytes"
	"errors"

	"ordxml/internal/sqldb/heap"
)

// ErrUnsorted is returned by BulkLoad when the input is not strictly
// ascending (out of order, or containing duplicate keys).
var ErrUnsorted = errors.New("btree: bulk-load input not strictly sorted")

// Item is one key → RID pair for BulkLoad. The key bytes are copied into the
// tree, so callers may reuse their buffers.
type Item struct {
	Key []byte
	RID heap.RID
}

// bulkFill is the per-node fill target for bulk-built trees: 3/4 of the
// split bound, leaving headroom so the first trickle inserts after a bulk
// load do not immediately split every node.
const bulkFill = maxKeys * 3 / 4

// BulkLoad builds a tree from items sorted by strictly ascending key. It
// constructs the leaf level left to right and then each interior level
// bottom-up, instead of N root-to-leaf inserts: O(n) with no node splits,
// versus O(n log n) with one tree descent (and amortized splits) per key.
// The resulting tree is equivalent to one built by repeated Insert.
func BulkLoad(items []Item) (*Tree, error) {
	if len(items) == 0 {
		return New(), nil
	}

	// Leaf level: distribute the items evenly over the minimum number of
	// leaves with at most bulkFill keys each, so no leaf ends up with a
	// tiny remainder. Key copies share one arena allocation. With long keys
	// the leaf count grows further so every leaf stays within the page-size
	// byte budget (assuming roughly uniform key sizes; WritePages rejects
	// pathological skew explicitly).
	n := len(items)
	total := 0
	entryBytes := 0
	for i := range items {
		if len(items[i].Key) > MaxKeySize {
			return nil, ErrKeyTooLarge
		}
		total += len(items[i].Key)
		entryBytes += 2 + len(items[i].Key) + 6
	}
	arena := make([]byte, 0, total)
	numLeaves := (n + bulkFill - 1) / bulkFill
	if byBytes := (entryBytes + nodeByteBudget - 1) / nodeByteBudget; byBytes > numLeaves {
		numLeaves = byBytes
	}
	base, extra := n/numLeaves, n%numLeaves
	level := make([]*node, 0, numLeaves)
	// firsts[i] is the smallest key under level[i] — the separator a parent
	// places before its i-th child.
	firsts := make([][]byte, 0, numLeaves)
	idx := 0
	for i := 0; i < numLeaves; i++ {
		cnt := base
		if i < extra {
			cnt++
		}
		nd := &node{
			keys: make([][]byte, cnt),
			rids: make([]heap.RID, cnt),
		}
		for j := 0; j < cnt; j++ {
			// Ordering is verified here, fused with the copy pass; a violation
			// aborts before any existing tree is touched (the caller swaps the
			// returned tree in only on success).
			if idx > 0 && bytes.Compare(items[idx-1].Key, items[idx].Key) >= 0 {
				return nil, ErrUnsorted
			}
			start := len(arena)
			arena = append(arena, items[idx].Key...)
			nd.keys[j] = arena[start:len(arena):len(arena)]
			nd.rids[j] = items[idx].RID
			idx++
		}
		level = append(level, nd)
		firsts = append(firsts, nd.keys[0])
	}

	// Interior levels: group children until one root remains. A node with c
	// children carries c-1 separators, each the smallest key of the child to
	// its right — consistent with the search convention (equal separator
	// descends right).
	for len(level) > 1 {
		fanout := bulkFill + 1
		numParents := (len(level) + fanout - 1) / fanout
		base, extra := len(level)/numParents, len(level)%numParents
		parents := make([]*node, 0, numParents)
		parentFirsts := make([][]byte, 0, numParents)
		idx = 0
		for i := 0; i < numParents; i++ {
			cnt := base
			if i < extra {
				cnt++
			}
			nd := &node{
				keys:     make([][]byte, cnt-1),
				children: make([]*node, cnt),
			}
			for j := 0; j < cnt; j++ {
				nd.children[j] = level[idx+j]
				if j > 0 {
					nd.keys[j-1] = firsts[idx+j]
				}
			}
			parents = append(parents, nd)
			parentFirsts = append(parentFirsts, firsts[idx])
			idx += cnt
		}
		level, firsts = parents, parentFirsts
	}
	return &Tree{root: level[0], size: n}, nil
}
