package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ordxml/internal/sqldb/heap"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func rid(i int) heap.RID {
	return heap.RID{Page: uint32(i / 100), Slot: uint16(i % 100)}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	const n = 10000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		got, ok := tr.Get(key(i))
		if !ok || got != rid(i) {
			t.Fatalf("Get(%d) = %v, %v", i, got, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) succeeded")
	}
}

func TestDuplicate(t *testing.T) {
	tr := New()
	if err := tr.Insert([]byte("a"), rid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("a"), rid(2)); err != ErrDuplicate {
		t.Fatalf("duplicate insert: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after rejected duplicate", tr.Len())
	}
}

func TestInsertCopiesKey(t *testing.T) {
	tr := New()
	k := []byte("abc")
	tr.Insert(k, rid(1))
	k[0] = 'z'
	if _, ok := tr.Get([]byte("abc")); !ok {
		t.Fatal("tree aliased caller's key buffer")
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	if err := tr.Delete([]byte("nope")); err != ErrNotFound {
		t.Fatalf("Delete(missing) = %v", err)
	}
	tr.Insert([]byte("a"), rid(1))
	if err := tr.Delete([]byte("b")); err != ErrNotFound {
		t.Fatalf("Delete(missing) = %v", err)
	}
}

func TestInsertDeleteAll(t *testing.T) {
	tr := New()
	const n = 5000
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(n)
	for _, i := range perm {
		tr.Insert(key(i), rid(i))
	}
	perm2 := r.Perm(n)
	for j, i := range perm2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
		if tr.Len() != n-j-1 {
			t.Fatalf("Len = %d, want %d", tr.Len(), n-j-1)
		}
	}
	it := tr.Seek(nil, nil)
	if it.Valid() {
		t.Fatal("iterator valid on empty tree")
	}
}

func TestSeekRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i += 2 { // even keys only
		tr.Insert(key(i), rid(i))
	}
	// Range [key(100), key(200)) should see even keys 100..198.
	it := tr.Seek(key(100), key(200))
	want := 100
	for ; it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(want)) {
			t.Fatalf("got %q want %q", it.Key(), key(want))
		}
		if it.RID() != rid(want) {
			t.Fatalf("rid mismatch at %d", want)
		}
		want += 2
	}
	if want != 200 {
		t.Fatalf("range stopped at %d", want)
	}
	// Seek to a key between entries starts at the next entry.
	it = tr.Seek(key(101), nil)
	if !it.Valid() || !bytes.Equal(it.Key(), key(102)) {
		t.Fatalf("seek between keys: %q", it.Key())
	}
	// Full scan from nil.
	count := 0
	for it := tr.Seek(nil, nil); it.Valid(); it.Next() {
		count++
	}
	if count != 500 {
		t.Fatalf("full scan saw %d", count)
	}
	// Seek past the end.
	if it := tr.Seek([]byte("zzz"), nil); it.Valid() {
		t.Fatal("seek past end is valid")
	}
}

func TestScanPrefix(t *testing.T) {
	tr := New()
	tr.Insert([]byte("a"), rid(0))
	tr.Insert([]byte("ab"), rid(1))
	tr.Insert([]byte("ab\x00"), rid(2))
	tr.Insert([]byte("ab\xff"), rid(3))
	tr.Insert([]byte("ac"), rid(4))
	var got []string
	for it := tr.ScanPrefix([]byte("ab")); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := []string{"ab", "ab\x00", "ab\xff"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan = %q, want %q", got, want)
		}
	}
	// All-0xFF prefix has no successor: scans to the end.
	tr.Insert([]byte{0xFF, 0xFF, 0x01}, rid(5))
	n := 0
	for it := tr.ScanPrefix([]byte{0xFF, 0xFF}); it.Valid(); it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("0xFF prefix scan saw %d", n)
	}
}

// Torture test: random operations mirrored against a sorted reference.
func TestRandomAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New()
	ref := map[string]heap.RID{}
	randKey := func() []byte {
		// Small key space forces collisions, duplicates and heavy
		// delete/reinsert of the same keys.
		return []byte(fmt.Sprintf("k%04d", r.Intn(3000)))
	}
	for op := 0; op < 60000; op++ {
		k := randKey()
		switch r.Intn(3) {
		case 0:
			v := rid(r.Intn(1 << 20))
			err := tr.Insert(k, v)
			if _, exists := ref[string(k)]; exists {
				if err != ErrDuplicate {
					t.Fatalf("op %d: expected duplicate error", op)
				}
			} else if err != nil {
				t.Fatalf("op %d: %v", op, err)
			} else {
				ref[string(k)] = v
			}
		case 1:
			err := tr.Delete(k)
			if _, exists := ref[string(k)]; exists {
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				delete(ref, string(k))
			} else if err != ErrNotFound {
				t.Fatalf("op %d: expected not found", op)
			}
		default:
			got, ok := tr.Get(k)
			want, exists := ref[string(k)]
			if ok != exists || (ok && got != want) {
				t.Fatalf("op %d: Get(%q) = %v,%v want %v,%v", op, k, got, ok, want, exists)
			}
		}
		if op%5000 == 0 {
			checkAgainstRef(t, tr, ref)
		}
	}
	checkAgainstRef(t, tr, ref)
}

func checkAgainstRef(t *testing.T, tr *Tree, ref map[string]heap.RID) {
	t.Helper()
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	for it := tr.Seek(nil, nil); it.Valid(); it.Next() {
		if i >= len(keys) {
			t.Fatal("iterator has extra entries")
		}
		if string(it.Key()) != keys[i] {
			t.Fatalf("scan order: got %q want %q at %d", it.Key(), keys[i], i)
		}
		if it.RID() != ref[keys[i]] {
			t.Fatalf("rid mismatch at %q", keys[i])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("iterator saw %d entries, want %d", i, len(keys))
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(i), rid(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(key(i), rid(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}
