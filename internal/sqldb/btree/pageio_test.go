package btree

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/pagefile"
)

func newTestPool(t *testing.T, frames int) *bufpool.Pool {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return bufpool.New(pf, frames)
}

// buildPooled returns a pooled tree holding n entries, written to pages.
func buildPooled(t *testing.T, pool *bufpool.Pool, n int) (*Tree, bufpool.PageID) {
	t.Helper()
	tr := NewPaged(pool)
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tr.WritePages()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return tr, root
}

func TestWritePagesRestoreRoundTrip(t *testing.T) {
	pool := newTestPool(t, 16)
	_, root := buildPooled(t, pool, 5000)

	rt := Restore(pool, root, 5000)
	if rt.Len() != 5000 {
		t.Fatalf("Len = %d", rt.Len())
	}
	for i := 0; i < 5000; i += 17 {
		got, ok := rt.Get(key(i))
		if !ok || got != rid(i) {
			t.Fatalf("Get(%s) = %v, %v", key(i), got, ok)
		}
	}
	// Full ordered iteration across lazy faults.
	it := rt.Seek(nil, nil)
	count := 0
	var prev []byte
	for it.Valid() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iteration out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
		it.Next()
	}
	if count != 5000 {
		t.Fatalf("iterated %d entries", count)
	}
	if problems := rt.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
}

func TestWritePagesIncremental(t *testing.T) {
	pool := newTestPool(t, 64)
	tr, _ := buildPooled(t, pool, 5000)
	flushed := pool.Stats().DirtyFlushes

	// A single mutation rewrites only the root-to-leaf path, not the tree.
	if err := tr.Insert([]byte("zzz-one-more"), rid(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WritePages(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	delta := pool.Stats().DirtyFlushes - flushed
	if delta > 8 {
		t.Fatalf("one insert flushed %d pages; want a short path", delta)
	}

	// No mutations: nothing to write at all.
	flushed = pool.Stats().DirtyFlushes
	if _, err := tr.WritePages(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if delta := pool.Stats().DirtyFlushes - flushed; delta != 0 {
		t.Fatalf("idle WritePages flushed %d pages", delta)
	}
}

func TestRestoredTreeMutationAndSnapshotIsolation(t *testing.T) {
	pool := newTestPool(t, 16)
	_, root := buildPooled(t, pool, 2000)

	rt := Restore(pool, root, 2000)
	snap := rt.Snapshot()
	for i := 0; i < 2000; i += 3 {
		if err := rt.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot still sees every key; the tree sees the deletes.
	for i := 0; i < 2000; i++ {
		if _, ok := snap.Get(key(i)); !ok {
			t.Fatalf("snapshot lost %s", key(i))
		}
		_, ok := rt.Get(key(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("tree Get(%s) = %v, want %v", key(i), ok, want)
		}
	}
	if _, err := rt.WritePages(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if problems := rt.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
}

func TestByteBudgetSplit(t *testing.T) {
	pool := newTestPool(t, 32)
	tr := NewPaged(pool)
	// Keys big enough that maxKeys of them cannot share a page.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("%04d-%s", i, strings.Repeat("k", 400)))
		if err := tr.Insert(k, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.WritePages(); err != nil {
		t.Fatal(err)
	}
	if problems := tr.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
	if err := tr.Insert(make([]byte, MaxKeySize+1), rid(0)); err != ErrKeyTooLarge {
		t.Fatalf("oversized key: %v", err)
	}
}

func TestReleaseOnGCReturnsPages(t *testing.T) {
	pool := newTestPool(t, 16)
	tr, _ := buildPooled(t, pool, 3000)
	before := pool.PlannedState()

	tr.ReleaseOnGC()
	tr = nil
	for i := 0; i < 10; i++ {
		runtime.GC()
	}
	after := pool.PlannedState()
	if len(after.Free) <= len(before.Free) {
		t.Fatalf("free list did not grow after release: %d -> %d", len(before.Free), len(after.Free))
	}
}
