package btree

import (
	"bytes"
	"fmt"
)

// minFill is the lowest legal key count for a non-root node. Splits and
// rebalancing keep nodes at minKeys (32) or better, but BulkLoad distributes
// items evenly over ceil(n/bulkFill) nodes, which can legally produce nodes
// holding as few as bulkFill/2 keys (n = bulkFill+1 builds two 24/25 leaves).
const minFill = bulkFill / 2

// Validate checks the tree's structural invariants and returns a description
// of every violation found (nil for a healthy tree):
//
//   - node shape: interior nodes have len(children) == len(keys)+1, leaves
//     have parallel keys/rids;
//   - fill: no node exceeds maxKeys; non-root nodes hold at least minFill
//     keys;
//   - order: keys are strictly ascending within every node, and every key in
//     child i of an interior node n satisfies n.keys[i-1] <= key < n.keys[i]
//     (equal separators descend right, matching the search convention);
//   - balance: every leaf is at the same depth;
//   - size: Len() equals the total number of leaf keys.
//
// Validate is a diagnostic: it reads the whole tree and is not meant for hot
// paths.
func (t *Tree) Validate() []string {
	var problems []string
	report := func(format string, args ...any) {
		if len(problems) < 64 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	if t.root == nil {
		return []string{"tree has nil root (use New)"}
	}

	leafDepth := -1
	total := 0
	var walk func(n *node, depth int, lower, upper []byte)
	walk = func(n *node, depth int, lower, upper []byte) {
		n.ensure()
		if len(n.keys) > maxKeys {
			report("node at depth %d holds %d keys, above the split bound %d", depth, len(n.keys), maxKeys)
		}
		for i, k := range n.keys {
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				report("node at depth %d has keys out of order at index %d (%x >= %x)", depth, i, n.keys[i-1], k)
			}
			if lower != nil && bytes.Compare(k, lower) < 0 {
				report("node at depth %d has key %x below its separator lower bound %x", depth, k, lower)
			}
			if upper != nil && bytes.Compare(k, upper) >= 0 {
				report("node at depth %d has key %x at or above its separator upper bound %x", depth, k, upper)
			}
		}
		if n.leaf() {
			if len(n.rids) != len(n.keys) {
				report("leaf at depth %d has %d rids for %d keys", depth, len(n.rids), len(n.keys))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				report("leaf at depth %d but first leaf at depth %d: tree unbalanced", depth, leafDepth)
			}
			total += len(n.keys)
			return
		}
		if len(n.children) != len(n.keys)+1 {
			report("interior node at depth %d has %d children for %d keys", depth, len(n.children), len(n.keys))
			return
		}
		for i, c := range n.children {
			childLower, childUpper := lower, upper
			if i > 0 {
				childLower = n.keys[i-1]
			}
			if i < len(n.keys) {
				childUpper = n.keys[i]
			}
			walk(c, depth+1, childLower, childUpper)
		}
		// Fill is checked from the parent so neighbor context is available:
		// byte-budget splits and byte-blocked merges (long keys) legally
		// produce nodes with few keys. A child is underfull only when it is
		// small by both measures AND rebalance could have merged it — some
		// neighbor merge fits the byte budget. (walk has materialized every
		// child by this point, so nodeBytes is safe.)
		for i, c := range n.children {
			if len(c.keys) >= minFill || nodeBytes(c) >= nodeByteBudget/2 {
				continue
			}
			leftFits := i > 0 && mergedNodeBytes(n, i-1) <= nodeByteBudget
			rightFits := i < len(n.children)-1 && mergedNodeBytes(n, i) <= nodeByteBudget
			if leftFits || rightFits {
				report("child %d at depth %d holds %d keys, below the minimum fill %d, with a byte-legal merge available",
					i, depth+1, len(c.keys), minFill)
			}
		}
	}
	walk(t.root, 0, nil, nil)
	if total != t.size {
		report("tree size %d but leaves hold %d keys", t.size, total)
	}
	return problems
}
