package btree

import (
	"fmt"
	"strings"
	"testing"
)

// TestFailedMutationDoesNotFreeLivePages covers the shadow-paging hazard of
// a mutation that fails mid-descent against a frozen (checkpointed) tree:
// writableChild stages the pids of the nodes it clones, but installRoot
// never runs, so t.root keeps referencing the originals. Those pids must
// not reach the freed list — the next WritePages would hand
// checkpoint-referenced pages back to the allocator for reuse, silently
// corrupting the durable tree.
func TestFailedMutationDoesNotFreeLivePages(t *testing.T) {
	pool := newTestPool(t, 16)
	tr, root := buildPooled(t, pool, 500) // WritePages freezes the tree
	pool.CommitCheckpoint()

	if err := tr.Insert(key(3), rid(7)); err != ErrDuplicate {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := tr.Delete([]byte("no-such-key")); err != ErrNotFound {
		t.Fatalf("absent delete: %v", err)
	}
	if n := len(tr.freed) + len(tr.pendingFree); n != 0 {
		t.Fatalf("failed mutations staged %d page frees", n)
	}
	// WritePages after the failures must release nothing: every page is
	// still referenced by the durable root.
	if _, err := tr.WritePages(); err != nil {
		t.Fatal(err)
	}
	if free := pool.PlannedState().Free; len(free) != 0 {
		t.Fatalf("planned free list %v after failed mutations; durable pages would be reused", free)
	}
	// The durable image still reads back intact, unchanged values included.
	rt := Restore(pool, root, 500)
	for i := 0; i < 500; i++ {
		if got, ok := rt.Get(key(i)); !ok || got != rid(i) {
			t.Fatalf("Get(%s) = %v, %v", key(i), got, ok)
		}
	}
}

// TestDeleteMergeRespectsPageByteBudget drives the delete path over keys
// long enough that byte-budget splits keep every node under minKeys: each
// delete rebalances, and with borrowing impossible the only options are
// merging or leaving the node small. Unchecked merges compound until a node
// no longer serializes into a page and every WritePages (and therefore every
// checkpoint) fails; merges above the byte budget must be skipped instead.
func TestDeleteMergeRespectsPageByteBudget(t *testing.T) {
	pool := newTestPool(t, 64)
	tr := NewPaged(pool)
	longKey := func(i int) []byte {
		return []byte(fmt.Sprintf("%06d-%s", i, strings.Repeat("x", 130)))
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(longKey(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.WritePages(); err != nil {
		t.Fatal(err)
	}
	// Mass ascending deletion (keep every 10th key) drives repeated merges.
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			continue
		}
		if err := tr.Delete(longKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.WritePages(); err != nil {
		t.Fatalf("WritePages after merge-heavy deletes: %v", err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if problems := tr.Validate(); problems != nil {
		t.Fatalf("validate: %v", problems)
	}
	for i := 0; i < n; i += 10 {
		if got, ok := tr.Get(longKey(i)); !ok || got != rid(i) {
			t.Fatalf("Get(%d) = %v, %v", i, got, ok)
		}
	}
}
