// Package sqldb is the embedded relational engine's public face: a DB value
// that parses, plans and executes SQL statements over in-memory slotted-page
// storage with B+tree indexes. The engine exists as the substrate the paper
// assumes ("a relational database system"); the ordered-XML layer issues all
// of its SQL through this package.
//
// Concurrency: a DB is safe for concurrent use. Mutating statements (DML and
// DDL) serialize on the engine's write lock; after every mutation the engine
// publishes an immutable catalog View (copy-on-write snapshots of every
// table's heap and indexes) through an atomic pointer. Queries load that
// pointer and plan + execute entirely against the snapshot with no lock
// held, so readers never block behind writers and scale with cores. A
// Snapshot() pins one View across multiple statements for repeatable reads.
// Old snapshot versions are reclaimed by the garbage collector once the last
// reader drops them.
package sqldb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ordxml/internal/govern"
	"ordxml/internal/obs"
	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/exec"
	"ordxml/internal/sqldb/heap"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqlparse"
	"ordxml/internal/sqldb/sqltypes"
)

// DB is one embedded database instance.
type DB struct {
	mu      sync.RWMutex
	cat     *catalog.Catalog
	plans   *planCache
	metrics *dbMetrics
	// view is the last published catalog snapshot; queries load it with no
	// lock held. Mutating statements republish it (cheap: unchanged tables
	// reuse their cached storage snapshots).
	view atomic.Pointer[catalog.View]
	// workers is the session parallelism degree handed to the planner;
	// 1 (the default) plans serially.
	workers atomic.Int32
	// atomicDepth > 0 defers view publication to the enclosing Atomically
	// call, so a multi-statement operation appears to readers all at once.
	atomicDepth atomic.Int32
	publishes   *obs.Counter
	// tracer records the request-scoped span tree (disabled by default; one
	// atomic load per query when off).
	tracer *obs.Tracer
	// memBudget, when > 0, caps each statement's materialized footprint
	// (hash tables, sort buffers, result rows); over-budget statements abort
	// with govern.ErrMemoryBudget. A request-scoped accountant in the context
	// (govern.WithAccountant) takes precedence, so multi-statement requests
	// can share one budget.
	memBudget  atomic.Int64
	memMetrics *govern.MemMetrics
	// openCursors counts live streaming Rows cursors (published as
	// sqldb.cursors.open); a nonzero steady-state value indicates a caller
	// leaking cursors and the snapshot views pinned under them.
	openCursors atomic.Int64
}

// Result is re-exported for callers of Query.
type Result = exec.Result

// Open creates an empty database.
func Open() *DB { return openCat(catalog.New()) }

// OpenPooled creates an empty database whose heaps and index trees page
// through pool instead of plain RAM, enabling datasets larger than memory.
// The pool's metrics are published on the database's registry.
func OpenPooled(pool *bufpool.Pool) *DB {
	db := openCat(catalog.NewPooled(pool))
	pool.RegisterMetrics(db.metrics.reg)
	return db
}

func openCat(cat *catalog.Catalog) *DB {
	reg := obs.NewRegistry()
	db := &DB{cat: cat, plans: newPlanCache(reg), metrics: newDBMetrics(reg),
		tracer: obs.NewTracer(0), memMetrics: govern.NewMemMetrics(reg)}
	db.workers.Store(1)
	db.publishes = reg.Counter("sqldb.view.publishes")
	reg.RegisterFunc("sqldb.view.version", func() int64 {
		return int64(db.view.Load().Version())
	})
	reg.RegisterFunc("sqldb.cursors.open", db.openCursors.Load)
	db.registerStorageFuncs()
	db.publish()
	return db
}

// Pool returns the buffer pool backing this database's storage, or nil for an
// all-RAM database.
func (db *DB) Pool() *bufpool.Pool { return db.cat.Pool() }

// Tracer returns the request tracer. It is always non-nil; recording is off
// until SetEnabled(true).
func (db *DB) Tracer() *obs.Tracer { return db.tracer }

// rootSpan begins a new trace root when tracing is enabled and ctx carries
// no span yet; with an ambient span (or tracing off) it returns (ctx, nil)
// so nested engine calls join the caller's trace instead of forking one.
func (db *DB) rootSpan(ctx context.Context, name string) (context.Context, *obs.ActiveSpan) {
	if obs.FromContext(ctx) != nil {
		return ctx, nil
	}
	return db.tracer.StartRoot(ctx, name)
}

// publish rebuilds and atomically installs the readers' catalog view. The
// caller must hold the write lock (or be the only goroutine with the DB, as
// in Open/Load). Inside an Atomically window publication is deferred to the
// window's end — any skipped publish is covered by that final one, which
// rebuilds the view from the live catalog.
func (db *DB) publish() {
	if db.atomicDepth.Load() > 0 {
		return
	}
	db.view.Store(db.cat.BuildView())
	db.publishes.Inc()
}

// Atomically runs fn — typically several mutating statements — and publishes
// a single catalog view when it returns, so concurrent readers observe all
// of fn's effects or none of them (statements before fn's first mutation
// keep seeing the prior view). Statements inside fn read the view published
// *before* the window: fn must issue its reads before the writes whose
// effects they would observe, which every multi-statement operation in this
// codebase already does. Nested calls publish once, at the outermost exit;
// the publish happens even when fn fails, since a failed multi-statement
// operation may have applied a prefix.
func (db *DB) Atomically(fn func() error) error {
	db.atomicDepth.Add(1)
	err := fn()
	if db.atomicDepth.Add(-1) == 0 {
		db.mu.Lock()
		db.publish()
		db.mu.Unlock()
	}
	return err
}

// SetParallelism sets the worker count the planner may use for parallel
// operators (Gather, PartitionedHashJoin); n <= 1 plans serially. Cached
// plans embed the old setting, so the plan cache is invalidated.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.workers.Store(int32(n))
	db.plans.invalidate()
}

// Parallelism returns the current planner worker count.
func (db *DB) Parallelism() int { return int(db.workers.Load()) }

// SetMemoryBudget caps the bytes a single statement may materialize in
// pipeline-breaking operators (hash-join builds, sort buffers, DISTINCT and
// GROUP BY state) and the result set itself; statements that exceed it abort
// with an error matching govern.ErrMemoryBudget. n <= 0 removes the cap.
// A request-scoped accountant installed with govern.WithAccountant overrides
// the per-statement default, letting one budget govern a whole request.
func (db *DB) SetMemoryBudget(n int64) {
	if n < 0 {
		n = 0
	}
	db.memBudget.Store(n)
}

// MemoryBudget returns the per-statement memory cap (0 = unlimited).
func (db *DB) MemoryBudget() int64 { return db.memBudget.Load() }

// RequestAccountant returns a fresh accountant enforcing the DB's memory
// budget, for callers that want one budget to span a whole multi-statement
// request (install it with govern.WithAccountant on the request context).
// Returns nil when no budget is configured.
func (db *DB) RequestAccountant() *govern.Accountant {
	if b := db.memBudget.Load(); b > 0 {
		return govern.NewAccountant(b, db.memMetrics)
	}
	return nil
}

// accountant resolves the memory accountant for one statement: the request's
// own (carried in ctx, shared across every statement the request issues), or
// a fresh per-statement one when the DB has a budget configured, or nil.
func (db *DB) accountant(ctx context.Context) *govern.Accountant {
	if a := govern.AccountantFrom(ctx); a != nil {
		return a
	}
	if b := db.memBudget.Load(); b > 0 {
		return govern.NewAccountant(b, db.memMetrics)
	}
	return nil
}

func (db *DB) planOpts() plan.Options {
	return plan.Options{Workers: int(db.workers.Load())}
}

// Catalog exposes the live catalog (used by tests and the stats reporting in
// the benchmark harness). Callers must not mutate tables concurrently with
// statements.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Counters returns a snapshot of the engine work counters.
func (db *DB) Counters() catalog.Snapshot { return db.cat.Counters.Snapshot() }

// CheckIntegrity validates the physical invariants of every table in the
// database — heap page structure, B+tree structure, and index/heap agreement
// — and returns a description of each violation (nil for a healthy
// database). It takes the database read lock for its full duration.
func (db *DB) CheckIntegrity() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	problems := db.cat.Validate()
	if pool := db.cat.Pool(); pool != nil {
		// Pooled storage adds an on-disk dimension: re-read every page the
		// last checkpoint references and verify its checksum.
		problems = append(problems, pool.VerifyDisk()...)
	}
	return problems
}

// Exec runs a statement that returns no rows (DDL or DML) and reports the
// number of rows affected (0 for DDL). DML plans are cached by SQL text, so
// repeated Exec calls skip parse and plan entirely.
func (db *DB) Exec(sql string, params ...sqltypes.Value) (int, error) {
	start := time.Now()
	n, err := db.exec(sql, params)
	db.metrics.recordExec(sql, time.Since(start), err)
	return n, err
}

// ExecCtx is Exec with a caller context: when tracing is enabled the
// statement records a span — a new root when ctx carries none, otherwise a
// child of the ambient span (e.g. the durable store's mutation root).
func (db *DB) ExecCtx(ctx context.Context, sql string, params ...sqltypes.Value) (int, error) {
	_, root := db.rootSpan(ctx, "sql.exec")
	sp := root
	if sp == nil {
		sp = obs.FromContext(ctx).StartChild("sql.exec")
	}
	sp.ArgStr("sql", truncForTrace(sql))
	n, err := db.Exec(sql, params...)
	sp.Arg("rows", int64(n)).End()
	return n, err
}

func (db *DB) exec(sql string, params []sqltypes.Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Republish the readers' view even on error: a failed multi-row DML may
	// have applied a prefix of its writes.
	defer db.publish()
	stmt, cached := db.plans.lookup(sql, db.cat.Version())
	if cached != nil {
		if isDMLPlan(cached) {
			return runDML(cached, params)
		}
		return 0, fmt.Errorf("use Query for SELECT statements")
	}
	if stmt == nil {
		var err error
		if stmt, err = sqlparse.Parse(sql); err != nil {
			return 0, err
		}
	}
	return db.execParsed(sql, stmt, params)
}

func isDMLPlan(p any) bool {
	switch p.(type) {
	case *plan.InsertPlan, *plan.UpdatePlan, *plan.DeletePlan:
		return true
	}
	return false
}

// execParsed runs a parsed statement. The caller holds the write lock; sql
// keys the plan cache for DML (DDL is executed directly and, by bumping the
// catalog version, invalidates every cached plan).
func (db *DB) execParsed(sql string, stmt sqlparse.Statement, params []sqltypes.Value) (int, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		return 0, db.createTable(s)
	case *sqlparse.CreateIndex:
		_, err := db.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
		return 0, err
	case *sqlparse.DropTable:
		return 0, db.cat.DropTable(s.Name)
	case *sqlparse.DropIndex:
		return 0, db.cat.DropIndex(s.Name)
	case *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		ver := db.cat.Version()
		p, err := plan.Plan(db.cat, stmt)
		if err != nil {
			return 0, err
		}
		db.plans.store(sql, stmt, ver, p)
		return runDML(p, params)
	case *sqlparse.Select:
		return 0, fmt.Errorf("use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("cannot execute %T", stmt)
	}
}

func runDML(p any, params []sqltypes.Value) (int, error) {
	switch pl := p.(type) {
	case *plan.InsertPlan:
		return exec.RunInsert(pl, params)
	case *plan.UpdatePlan:
		return exec.RunUpdate(pl, params)
	case *plan.DeletePlan:
		return exec.RunDelete(pl, params)
	default:
		return 0, fmt.Errorf("unexpected plan %T", p)
	}
}

func (db *DB) createTable(s *sqlparse.CreateTable) error {
	cols := make([]catalog.Column, len(s.Columns))
	var pk []string
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if _, err := db.cat.CreateTable(s.Name, cols); err != nil {
		return err
	}
	if len(pk) > 0 {
		if _, err := db.cat.CreateIndex(s.Name+"_pkey", s.Name, pk, true); err != nil {
			db.cat.DropTable(s.Name)
			return err
		}
	}
	return nil
}

// Query runs a SELECT and materializes the result. It takes no lock: the
// query plans and executes against the last published catalog view, while
// writers proceed concurrently. Plans are cached by SQL text and revalidated
// against the catalog version, so repeated queries skip parse and plan.
// EXPLAIN and EXPLAIN ANALYZE statements are also accepted: they return a
// single "plan" column with one row per plan line.
func (db *DB) Query(sql string, params ...sqltypes.Value) (*Result, error) {
	return db.QueryCtx(context.Background(), sql, params...)
}

// QueryCtx is Query with a caller context: when the request tracer is
// enabled, a trace root (or a child of the ambient span in ctx) covers
// planning and every operator of the execution.
func (db *DB) QueryCtx(ctx context.Context, sql string, params ...sqltypes.Value) (*Result, error) {
	ctx, root := db.rootSpan(ctx, "sql.query")
	root.ArgStr("sql", truncForTrace(sql))
	start := time.Now()
	res, err := db.queryAt(ctx, db.view.Load(), sql, nil, params)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	db.metrics.recordQuery(sql, time.Since(start), rows, err)
	root.Arg("rows", int64(rows)).End()
	return res, err
}

// truncForTrace bounds SQL text attached as a span annotation.
func truncForTrace(sql string) string {
	const max = 200
	if len(sql) > max {
		return sql[:max] + "…"
	}
	return sql
}

func (db *DB) queryAt(ctx context.Context, v *catalog.View, sql string, preparsed sqlparse.Statement, params []sqltypes.Value) (res *Result, err error) {
	// Contain executor panics at the statement boundary: a query runs against
	// an immutable snapshot and can corrupt nothing, so a panicking operator
	// (or a poisoned page read surfacing as a panic) fails this statement
	// with govern.ErrInternal instead of the process.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, govern.Recovered(p)
		}
	}()
	sp := obs.FromContext(ctx)
	psp := sp.StartChild("plan")
	node, ex, err := db.selectPlan(v, sql, preparsed)
	psp.End()
	if err != nil {
		return nil, err
	}
	if ex != nil {
		return db.runExplain(ctx, v, ex, params)
	}
	if planParallelism(node) > 0 {
		db.metrics.parallelQ.Inc()
	}
	return exec.RunGoverned(ctx, node, params, v, sp, db.accountant(ctx))
}

// planParallelism returns the widest worker count of any exchange operator
// in the plan, or 0 for a serial plan.
func planParallelism(n plan.Node) int {
	w := 0
	switch x := n.(type) {
	case *plan.Gather:
		w = x.Workers
	case *plan.PartitionedHashJoin:
		w = x.Workers
	}
	for _, c := range plan.Children(n) {
		if cw := planParallelism(c); cw > w {
			w = cw
		}
	}
	return w
}

// selectPlan compiles (or fetches from the cache) the plan for a SELECT
// against catalog view v. preparsed, when non-nil, is the already-parsed AST
// (prepared statements) used on a cache miss. Plans are keyed by the view's
// catalog version: a concurrent DDL publishes a newer version, so its
// readers miss and replan rather than reuse schema objects that are not in
// their view. EXPLAIN statements are returned unplanned (and are never
// cached): the caller runs them through runExplain.
func (db *DB) selectPlan(v *catalog.View, sql string, preparsed sqlparse.Statement) (plan.Node, *sqlparse.Explain, error) {
	ver := v.Version()
	stmt, cached := db.plans.lookup(sql, ver)
	if cached != nil {
		if node, ok := cached.(plan.Node); ok {
			return node, nil, nil
		}
		return nil, nil, fmt.Errorf("Query requires a SELECT statement")
	}
	if stmt == nil {
		stmt = preparsed
	}
	if stmt == nil {
		var err error
		if stmt, err = sqlparse.Parse(sql); err != nil {
			return nil, nil, err
		}
	}
	if ex, ok := stmt.(*sqlparse.Explain); ok {
		return nil, ex, nil
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, nil, fmt.Errorf("Query requires a SELECT statement")
	}
	node, err := plan.PlanSelectOpts(v, sel, db.planOpts())
	if err != nil {
		return nil, nil, err
	}
	db.plans.store(sql, stmt, ver, node)
	return node, nil, nil
}

// runExplain executes an EXPLAIN [ANALYZE] statement against view v, with no
// lock held. The result has one "plan" column with a row per line.
func (db *DB) runExplain(ctx context.Context, v *catalog.View, ex *sqlparse.Explain, params []sqltypes.Value) (*Result, error) {
	if !ex.Analyze {
		text, err := db.explainText(v, ex.Stmt)
		if err != nil {
			return nil, err
		}
		return planTextResult(text), nil
	}
	sel, ok := ex.Stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN ANALYZE supports only SELECT statements")
	}
	sp := obs.FromContext(ctx)
	psp := sp.StartChild("plan")
	node, err := plan.PlanSelectOpts(v, sel, db.planOpts())
	psp.End()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, stats, err := exec.RunAnalyze(node, params, v, sp)
	total := time.Since(start)
	if err != nil {
		return nil, err
	}
	text := exec.FormatAnalyze(node, stats)
	text += fmt.Sprintf("Total: rows=%d time=%s\n", len(res.Rows), total.Round(time.Microsecond))
	return planTextResult(text), nil
}

// planTextResult wraps multi-line plan text as a one-column result.
func planTextResult(text string) *Result {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(l)})
	}
	return res
}

// ExplainAnalyze executes a SELECT with per-operator instrumentation and
// returns the plan tree annotated with actual row counts, loop counts and
// inclusive wall time per operator.
func (db *DB) ExplainAnalyze(sql string, params ...sqltypes.Value) (string, error) {
	return db.ExplainAnalyzeCtx(context.Background(), sql, params...)
}

// ExplainAnalyzeCtx is ExplainAnalyze with a caller context, so an analyzed
// query records a full span tree (planner + per-operator spans) when the
// tracer is enabled.
func (db *DB) ExplainAnalyzeCtx(ctx context.Context, sql string, params ...sqltypes.Value) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if e, ok := stmt.(*sqlparse.Explain); ok {
		stmt = e.Stmt
	}
	ctx, root := db.rootSpan(ctx, "sql.analyze")
	root.ArgStr("sql", truncForTrace(sql))
	defer root.End()
	res, err := db.runExplain(ctx, db.view.Load(), &sqlparse.Explain{Stmt: stmt, Analyze: true}, params)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Text())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// BulkInsert appends full-width rows (one value per table column, in
// declaration order) through the batch fast path: one write-lock
// acquisition, no SQL parse or plan, one heap append pass, and one sorted
// index-maintenance pass per index. Rows are constraint-checked exactly like
// INSERT, and an error leaves the table unchanged.
func (db *DB) BulkInsert(table string, rows []sqltypes.Row) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.publish()
	t := db.cat.Table(table)
	if t == nil {
		return 0, fmt.Errorf("no such table %s", table)
	}
	if _, err := t.BulkInsert(rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Explain returns the physical plan of a statement as text.
func (db *DB) Explain(sql string, params ...sqltypes.Value) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if e, ok := stmt.(*sqlparse.Explain); ok {
		stmt = e.Stmt
	}
	return db.explainText(db.view.Load(), stmt)
}

// explainText formats the plan of a parsed statement. SELECTs plan against
// view v with the session's parallelism options (matching what Query runs);
// DML plans against the live catalog under the read lock, matching Exec.
func (db *DB) explainText(v *catalog.View, stmt sqlparse.Statement) (string, error) {
	var p any
	var err error
	if sel, ok := stmt.(*sqlparse.Select); ok {
		p, err = plan.PlanSelectOpts(v, sel, db.planOpts())
	} else {
		db.mu.RLock()
		p, err = plan.Plan(db.cat, stmt)
		db.mu.RUnlock()
	}
	if err != nil {
		return "", err
	}
	switch pl := p.(type) {
	case plan.Node:
		return plan.Explain(pl), nil
	case *plan.InsertPlan:
		return fmt.Sprintf("Insert %s (%d rows)\n", pl.Table.Name, len(pl.Rows)), nil
	case *plan.UpdatePlan:
		return "Update " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	case *plan.DeletePlan:
		return "Delete " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	default:
		return "", fmt.Errorf("cannot explain %T", p)
	}
}

// Stmt is a prepared statement: parsed once, with its plan cached in the
// engine's shared plan cache (keyed by SQL text, validated against the
// catalog version). Hot loops (the shredder, the update manager, the XPath
// evaluator) therefore pay parse and plan once per schema version, not per
// Run.
type Stmt struct {
	db   *DB
	sql  string
	stmt sqlparse.Statement
}

// Prepare parses a statement for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, stmt: stmt}, nil
}

// Exec runs a prepared DML statement.
func (s *Stmt) Exec(params ...sqltypes.Value) (int, error) {
	start := time.Now()
	n, err := s.exec(params)
	s.db.metrics.recordExec(s.sql, time.Since(start), err)
	return n, err
}

func (s *Stmt) exec(params []sqltypes.Value) (int, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	defer s.db.publish()
	if _, cached := s.db.plans.lookup(s.sql, s.db.cat.Version()); cached != nil && isDMLPlan(cached) {
		return runDML(cached, params)
	}
	return s.db.execParsed(s.sql, s.stmt, params)
}

// Query runs a prepared SELECT against the latest published view, with no
// lock held.
func (s *Stmt) Query(params ...sqltypes.Value) (*Result, error) {
	return s.QueryAt(nil, params...)
}

// QueryAt runs a prepared SELECT against a pinned snapshot (nil means the
// latest published view).
func (s *Stmt) QueryAt(snap *Snap, params ...sqltypes.Value) (*Result, error) {
	return s.QueryAtCtx(context.Background(), snap, params...)
}

// QueryAtCtx is QueryAt with a caller context: with an ambient span in ctx
// (the XPath pipeline threads one per request) the statement's planning and
// operators join that trace.
func (s *Stmt) QueryAtCtx(ctx context.Context, snap *Snap, params ...sqltypes.Value) (*Result, error) {
	v := s.db.view.Load()
	if snap != nil {
		v = snap.v
	}
	start := time.Now()
	res, err := s.db.queryAt(ctx, v, s.sql, s.stmt, params)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.db.metrics.recordQuery(s.sql, time.Since(start), rows, err)
	return res, err
}

// Snap pins one published catalog view so several statements observe the
// same snapshot — no writer, concurrent or otherwise, is visible through it.
// A Snap is immutable and safe for concurrent use; dropping every reference
// releases the underlying storage snapshots to the garbage collector.
type Snap struct {
	db *DB
	v  *catalog.View
}

// Snapshot pins the current published view.
func (db *DB) Snapshot() *Snap { return &Snap{db: db, v: db.view.Load()} }

// TableStats reports a table's heap occupancy as of the last published view,
// without locking (safe against concurrent writers). ok is false when the
// table does not exist.
func (db *DB) TableStats(name string) (st heap.Stats, ok bool) {
	v := db.view.Load()
	t := v.Table(name)
	if t == nil {
		return heap.Stats{}, false
	}
	return v.Data(t).HeapStats(), true
}

// Version reports the catalog version the snapshot was published at.
func (s *Snap) Version() uint64 { return s.v.Version() }

// Query runs a SELECT against the pinned snapshot.
func (s *Snap) Query(sql string, params ...sqltypes.Value) (*Result, error) {
	start := time.Now()
	res, err := s.db.queryAt(context.Background(), s.v, sql, nil, params)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.db.metrics.recordQuery(sql, time.Since(start), rows, err)
	return res, err
}

// Convenience constructors so engine callers do not import sqltypes
// everywhere.

// I returns an INT parameter value.
func I(v int64) sqltypes.Value { return sqltypes.NewInt(v) }

// S returns a TEXT parameter value.
func S(v string) sqltypes.Value { return sqltypes.NewText(v) }

// B returns a BLOB parameter value.
func B(v []byte) sqltypes.Value { return sqltypes.NewBlob(v) }

// F returns a REAL parameter value.
func F(v float64) sqltypes.Value { return sqltypes.NewReal(v) }

// Null returns the NULL parameter value.
func Null() sqltypes.Value { return sqltypes.NullValue() }
