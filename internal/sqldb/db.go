// Package sqldb is the embedded relational engine's public face: a DB value
// that parses, plans and executes SQL statements over in-memory slotted-page
// storage with B+tree indexes. The engine exists as the substrate the paper
// assumes ("a relational database system"); the ordered-XML layer issues all
// of its SQL through this package.
//
// Concurrency: a DB is safe for concurrent use; statements take a
// reader/writer lock (queries share, DML/DDL are exclusive). There is no
// transaction log or MVCC — the paper's experiments are single-user — but
// every statement is applied atomically with respect to other statements.
package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ordxml/internal/obs"
	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/exec"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqlparse"
	"ordxml/internal/sqldb/sqltypes"
)

// DB is one embedded database instance.
type DB struct {
	mu      sync.RWMutex
	cat     *catalog.Catalog
	plans   *planCache
	metrics *dbMetrics
}

// Result is re-exported for callers of Query.
type Result = exec.Result

// Open creates an empty database.
func Open() *DB {
	reg := obs.NewRegistry()
	db := &DB{cat: catalog.New(), plans: newPlanCache(reg), metrics: newDBMetrics(reg)}
	db.registerStorageFuncs()
	return db
}

// Catalog exposes the live catalog (used by tests and the stats reporting in
// the benchmark harness). Callers must not mutate tables concurrently with
// statements.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Counters returns a snapshot of the engine work counters.
func (db *DB) Counters() catalog.Snapshot { return db.cat.Counters.Snapshot() }

// CheckIntegrity validates the physical invariants of every table in the
// database — heap page structure, B+tree structure, and index/heap agreement
// — and returns a description of each violation (nil for a healthy
// database). It takes the database read lock for its full duration.
func (db *DB) CheckIntegrity() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat.Validate()
}

// Exec runs a statement that returns no rows (DDL or DML) and reports the
// number of rows affected (0 for DDL). DML plans are cached by SQL text, so
// repeated Exec calls skip parse and plan entirely.
func (db *DB) Exec(sql string, params ...sqltypes.Value) (int, error) {
	start := time.Now()
	n, err := db.exec(sql, params)
	db.metrics.recordExec(sql, time.Since(start), err)
	return n, err
}

func (db *DB) exec(sql string, params []sqltypes.Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	stmt, cached := db.plans.lookup(sql, db.cat.Version())
	if cached != nil {
		if isDMLPlan(cached) {
			return runDML(cached, params)
		}
		return 0, fmt.Errorf("use Query for SELECT statements")
	}
	if stmt == nil {
		var err error
		if stmt, err = sqlparse.Parse(sql); err != nil {
			return 0, err
		}
	}
	return db.execParsed(sql, stmt, params)
}

func isDMLPlan(p any) bool {
	switch p.(type) {
	case *plan.InsertPlan, *plan.UpdatePlan, *plan.DeletePlan:
		return true
	}
	return false
}

// execParsed runs a parsed statement. The caller holds the write lock; sql
// keys the plan cache for DML (DDL is executed directly and, by bumping the
// catalog version, invalidates every cached plan).
func (db *DB) execParsed(sql string, stmt sqlparse.Statement, params []sqltypes.Value) (int, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		return 0, db.createTable(s)
	case *sqlparse.CreateIndex:
		_, err := db.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
		return 0, err
	case *sqlparse.DropTable:
		return 0, db.cat.DropTable(s.Name)
	case *sqlparse.DropIndex:
		return 0, db.cat.DropIndex(s.Name)
	case *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		ver := db.cat.Version()
		p, err := plan.Plan(db.cat, stmt)
		if err != nil {
			return 0, err
		}
		db.plans.store(sql, stmt, ver, p)
		return runDML(p, params)
	case *sqlparse.Select:
		return 0, fmt.Errorf("use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("cannot execute %T", stmt)
	}
}

func runDML(p any, params []sqltypes.Value) (int, error) {
	switch pl := p.(type) {
	case *plan.InsertPlan:
		return exec.RunInsert(pl, params)
	case *plan.UpdatePlan:
		return exec.RunUpdate(pl, params)
	case *plan.DeletePlan:
		return exec.RunDelete(pl, params)
	default:
		return 0, fmt.Errorf("unexpected plan %T", p)
	}
}

func (db *DB) createTable(s *sqlparse.CreateTable) error {
	cols := make([]catalog.Column, len(s.Columns))
	var pk []string
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if _, err := db.cat.CreateTable(s.Name, cols); err != nil {
		return err
	}
	if len(pk) > 0 {
		if _, err := db.cat.CreateIndex(s.Name+"_pkey", s.Name, pk, true); err != nil {
			db.cat.DropTable(s.Name)
			return err
		}
	}
	return nil
}

// Query runs a SELECT and materializes the result. Plans are cached by SQL
// text and revalidated against the catalog version, so repeated queries skip
// parse and plan. EXPLAIN and EXPLAIN ANALYZE statements are also accepted:
// they return a single "plan" column with one row per plan line.
func (db *DB) Query(sql string, params ...sqltypes.Value) (*Result, error) {
	start := time.Now()
	res, err := db.query(sql, nil, params)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	db.metrics.recordQuery(sql, time.Since(start), rows, err)
	return res, err
}

func (db *DB) query(sql string, preparsed sqlparse.Statement, params []sqltypes.Value) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	node, ex, err := db.selectPlan(sql, preparsed)
	if err != nil {
		return nil, err
	}
	if ex != nil {
		return db.runExplain(ex, params)
	}
	return exec.Run(node, params)
}

// selectPlan compiles (or fetches from the cache) the plan for a SELECT.
// preparsed, when non-nil, is the already-parsed AST (prepared statements)
// used on a cache miss. The caller holds at least the read lock, so the
// catalog version cannot change between lookup and store. EXPLAIN statements
// are returned unplanned (and are never cached): the caller runs them
// through runExplain.
func (db *DB) selectPlan(sql string, preparsed sqlparse.Statement) (plan.Node, *sqlparse.Explain, error) {
	ver := db.cat.Version()
	stmt, cached := db.plans.lookup(sql, ver)
	if cached != nil {
		if node, ok := cached.(plan.Node); ok {
			return node, nil, nil
		}
		return nil, nil, fmt.Errorf("Query requires a SELECT statement")
	}
	if stmt == nil {
		stmt = preparsed
	}
	if stmt == nil {
		var err error
		if stmt, err = sqlparse.Parse(sql); err != nil {
			return nil, nil, err
		}
	}
	if ex, ok := stmt.(*sqlparse.Explain); ok {
		return nil, ex, nil
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, nil, fmt.Errorf("Query requires a SELECT statement")
	}
	node, err := plan.PlanSelect(db.cat, sel)
	if err != nil {
		return nil, nil, err
	}
	db.plans.store(sql, stmt, ver, node)
	return node, nil, nil
}

// runExplain executes an EXPLAIN [ANALYZE] statement. The caller holds at
// least the read lock. The result has one "plan" column with a row per line.
func (db *DB) runExplain(ex *sqlparse.Explain, params []sqltypes.Value) (*Result, error) {
	if !ex.Analyze {
		text, err := db.explainText(ex.Stmt)
		if err != nil {
			return nil, err
		}
		return planTextResult(text), nil
	}
	sel, ok := ex.Stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN ANALYZE supports only SELECT statements")
	}
	node, err := plan.PlanSelect(db.cat, sel)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, stats, err := exec.RunAnalyze(node, params)
	total := time.Since(start)
	if err != nil {
		return nil, err
	}
	text := exec.FormatAnalyze(node, stats)
	text += fmt.Sprintf("Total: rows=%d time=%s\n", len(res.Rows), total.Round(time.Microsecond))
	return planTextResult(text), nil
}

// planTextResult wraps multi-line plan text as a one-column result.
func planTextResult(text string) *Result {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewText(l)})
	}
	return res
}

// ExplainAnalyze executes a SELECT with per-operator instrumentation and
// returns the plan tree annotated with actual row counts, loop counts and
// inclusive wall time per operator.
func (db *DB) ExplainAnalyze(sql string, params ...sqltypes.Value) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if e, ok := stmt.(*sqlparse.Explain); ok {
		stmt = e.Stmt
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	res, err := db.runExplain(&sqlparse.Explain{Stmt: stmt, Analyze: true}, params)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].Text())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// BulkInsert appends full-width rows (one value per table column, in
// declaration order) through the batch fast path: one write-lock
// acquisition, no SQL parse or plan, one heap append pass, and one sorted
// index-maintenance pass per index. Rows are constraint-checked exactly like
// INSERT, and an error leaves the table unchanged.
func (db *DB) BulkInsert(table string, rows []sqltypes.Row) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.cat.Table(table)
	if t == nil {
		return 0, fmt.Errorf("no such table %s", table)
	}
	if _, err := t.BulkInsert(rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Explain returns the physical plan of a statement as text.
func (db *DB) Explain(sql string, params ...sqltypes.Value) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if e, ok := stmt.(*sqlparse.Explain); ok {
		stmt = e.Stmt
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.explainText(stmt)
}

// explainText formats the plan of a parsed statement. The caller holds at
// least the read lock.
func (db *DB) explainText(stmt sqlparse.Statement) (string, error) {
	p, err := plan.Plan(db.cat, stmt)
	if err != nil {
		return "", err
	}
	switch pl := p.(type) {
	case plan.Node:
		return plan.Explain(pl), nil
	case *plan.InsertPlan:
		return fmt.Sprintf("Insert %s (%d rows)\n", pl.Table.Name, len(pl.Rows)), nil
	case *plan.UpdatePlan:
		return "Update " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	case *plan.DeletePlan:
		return "Delete " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	default:
		return "", fmt.Errorf("cannot explain %T", p)
	}
}

// Stmt is a prepared statement: parsed once, with its plan cached in the
// engine's shared plan cache (keyed by SQL text, validated against the
// catalog version). Hot loops (the shredder, the update manager, the XPath
// evaluator) therefore pay parse and plan once per schema version, not per
// Run.
type Stmt struct {
	db   *DB
	sql  string
	stmt sqlparse.Statement
}

// Prepare parses a statement for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, stmt: stmt}, nil
}

// Exec runs a prepared DML statement.
func (s *Stmt) Exec(params ...sqltypes.Value) (int, error) {
	start := time.Now()
	n, err := s.exec(params)
	s.db.metrics.recordExec(s.sql, time.Since(start), err)
	return n, err
}

func (s *Stmt) exec(params []sqltypes.Value) (int, error) {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if _, cached := s.db.plans.lookup(s.sql, s.db.cat.Version()); cached != nil && isDMLPlan(cached) {
		return runDML(cached, params)
	}
	return s.db.execParsed(s.sql, s.stmt, params)
}

// Query runs a prepared SELECT.
func (s *Stmt) Query(params ...sqltypes.Value) (*Result, error) {
	start := time.Now()
	res, err := s.db.query(s.sql, s.stmt, params)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.db.metrics.recordQuery(s.sql, time.Since(start), rows, err)
	return res, err
}

// Convenience constructors so engine callers do not import sqltypes
// everywhere.

// I returns an INT parameter value.
func I(v int64) sqltypes.Value { return sqltypes.NewInt(v) }

// S returns a TEXT parameter value.
func S(v string) sqltypes.Value { return sqltypes.NewText(v) }

// B returns a BLOB parameter value.
func B(v []byte) sqltypes.Value { return sqltypes.NewBlob(v) }

// F returns a REAL parameter value.
func F(v float64) sqltypes.Value { return sqltypes.NewReal(v) }

// Null returns the NULL parameter value.
func Null() sqltypes.Value { return sqltypes.NullValue() }
