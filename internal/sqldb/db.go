// Package sqldb is the embedded relational engine's public face: a DB value
// that parses, plans and executes SQL statements over in-memory slotted-page
// storage with B+tree indexes. The engine exists as the substrate the paper
// assumes ("a relational database system"); the ordered-XML layer issues all
// of its SQL through this package.
//
// Concurrency: a DB is safe for concurrent use; statements take a
// reader/writer lock (queries share, DML/DDL are exclusive). There is no
// transaction log or MVCC — the paper's experiments are single-user — but
// every statement is applied atomically with respect to other statements.
package sqldb

import (
	"fmt"
	"sync"

	"ordxml/internal/sqldb/catalog"
	"ordxml/internal/sqldb/exec"
	"ordxml/internal/sqldb/plan"
	"ordxml/internal/sqldb/sqlparse"
	"ordxml/internal/sqldb/sqltypes"
)

// DB is one embedded database instance.
type DB struct {
	mu  sync.RWMutex
	cat *catalog.Catalog
}

// Result is re-exported for callers of Query.
type Result = exec.Result

// Open creates an empty database.
func Open() *DB {
	return &DB{cat: catalog.New()}
}

// Catalog exposes the live catalog (used by tests and the stats reporting in
// the benchmark harness). Callers must not mutate tables concurrently with
// statements.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Counters returns a snapshot of the engine work counters.
func (db *DB) Counters() catalog.Snapshot { return db.cat.Counters.Snapshot() }

// Exec runs a statement that returns no rows (DDL or DML) and reports the
// number of rows affected (0 for DDL).
func (db *DB) Exec(sql string, params ...sqltypes.Value) (int, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.execStmt(stmt, params)
}

func (db *DB) execStmt(stmt sqlparse.Statement, params []sqltypes.Value) (int, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		return 0, db.createTable(s)
	case *sqlparse.CreateIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		_, err := db.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
		return 0, err
	case *sqlparse.DropTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		return 0, db.cat.DropTable(s.Name)
	case *sqlparse.DropIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		return 0, db.cat.DropIndex(s.Name)
	case *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete:
		db.mu.Lock()
		defer db.mu.Unlock()
		p, err := plan.Plan(db.cat, stmt)
		if err != nil {
			return 0, err
		}
		return runDML(p, params)
	case *sqlparse.Select:
		return 0, fmt.Errorf("use Query for SELECT statements")
	default:
		return 0, fmt.Errorf("cannot execute %T", stmt)
	}
}

func runDML(p any, params []sqltypes.Value) (int, error) {
	switch pl := p.(type) {
	case *plan.InsertPlan:
		return exec.RunInsert(pl, params)
	case *plan.UpdatePlan:
		return exec.RunUpdate(pl, params)
	case *plan.DeletePlan:
		return exec.RunDelete(pl, params)
	default:
		return 0, fmt.Errorf("unexpected plan %T", p)
	}
}

func (db *DB) createTable(s *sqlparse.CreateTable) error {
	cols := make([]catalog.Column, len(s.Columns))
	var pk []string
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
		if c.PrimaryKey {
			pk = append(pk, c.Name)
		}
	}
	if _, err := db.cat.CreateTable(s.Name, cols); err != nil {
		return err
	}
	if len(pk) > 0 {
		if _, err := db.cat.CreateIndex(s.Name+"_pkey", s.Name, pk, true); err != nil {
			db.cat.DropTable(s.Name)
			return err
		}
	}
	return nil
}

// Query runs a SELECT and materializes the result.
func (db *DB) Query(sql string, params ...sqltypes.Value) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	node, err := plan.PlanSelect(db.cat, sel)
	if err != nil {
		return nil, err
	}
	return exec.Run(node, params)
}

// Explain returns the physical plan of a statement as text.
func (db *DB) Explain(sql string, params ...sqltypes.Value) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if e, ok := stmt.(*sqlparse.Explain); ok {
		stmt = e.Stmt
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := plan.Plan(db.cat, stmt)
	if err != nil {
		return "", err
	}
	switch pl := p.(type) {
	case plan.Node:
		return plan.Explain(pl), nil
	case *plan.InsertPlan:
		return fmt.Sprintf("Insert %s (%d rows)\n", pl.Table.Name, len(pl.Rows)), nil
	case *plan.UpdatePlan:
		return "Update " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	case *plan.DeletePlan:
		return "Delete " + pl.Table.Name + "\n" + plan.Explain(pl.Scan), nil
	default:
		return "", fmt.Errorf("cannot explain %T", p)
	}
}

// Stmt is a prepared statement: parsed once, planned per Run against the
// current catalog. Preparing skips reparsing in hot loops (the shredder and
// update manager run millions of parameterized statements).
type Stmt struct {
	db   *DB
	stmt sqlparse.Statement
}

// Prepare parses a statement for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, stmt: stmt}, nil
}

// Exec runs a prepared DML statement.
func (s *Stmt) Exec(params ...sqltypes.Value) (int, error) {
	return s.db.execStmt(s.stmt, params)
}

// Query runs a prepared SELECT.
func (s *Stmt) Query(params ...sqltypes.Value) (*Result, error) {
	sel, ok := s.stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("Query requires a SELECT statement")
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	node, err := plan.PlanSelect(s.db.cat, sel)
	if err != nil {
		return nil, err
	}
	return exec.Run(node, params)
}

// Convenience constructors so engine callers do not import sqltypes
// everywhere.

// I returns an INT parameter value.
func I(v int64) sqltypes.Value { return sqltypes.NewInt(v) }

// S returns a TEXT parameter value.
func S(v string) sqltypes.Value { return sqltypes.NewText(v) }

// B returns a BLOB parameter value.
func B(v []byte) sqltypes.Value { return sqltypes.NewBlob(v) }

// F returns a REAL parameter value.
func F(v float64) sqltypes.Value { return sqltypes.NewReal(v) }

// Null returns the NULL parameter value.
func Null() sqltypes.Value { return sqltypes.NullValue() }
