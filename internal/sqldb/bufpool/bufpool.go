// Package bufpool implements a fixed-capacity buffer pool over a page file:
// the layer that lets heap and B+tree storage exceed RAM. Callers hold
// *Frame handles; a frame's payload may or may not be resident. Access
// follows fetch→pin→use→unpin: Pin (or Pool.Fetch/Alloc) returns the
// payload bytes and takes a pin reference, Unpin drops it. The pool keeps at
// most its configured number of frames resident, evicting clean unpinned
// frames with a clock sweep when a fault or allocation would exceed the
// capacity.
//
// Two properties make lock-free readers (the engine's published storage
// snapshots) safe above this layer:
//
//   - Eviction drops the pool's reference to a payload buffer; it never
//     recycles the memory. A reader that obtained the bytes before the
//     eviction keeps reading valid, immutable memory and the garbage
//     collector reclaims it when the last reference drops — the same
//     lifetime rule the engine already uses for snapshots.
//   - A frame's payload is dropped only when the frame is clean, and a frame
//     becomes clean only after its payload has been fully written to the
//     page file. A fault therefore never observes a torn or stale page: any
//     frame with a nil payload has its exact bytes on disk.
//
// Writes are single-threaded above this package (the engine's writer lock),
// so dirty-page bookkeeping needs no cross-writer coordination: MarkDirty,
// Alloc, FlushAll and the dirty half of eviction run only on the writer
// side. Reader-side faults evict clean frames only.
//
// The pool also owns page-id allocation with shadow-paging semantics: page
// slots referenced by the last durable checkpoint (the "durable set") are
// never handed out again until a later checkpoint commits without them, so
// a crash at any moment leaves the previous checkpoint's pages intact on
// disk. FreeID routes superseded ids to a pending list when they are still
// checkpoint-referenced; CommitCheckpoint drains it.
package bufpool

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ordxml/internal/failpoint"
	"ordxml/internal/obs"
	olog "ordxml/internal/obs/log"
	"ordxml/internal/sqldb/pagefile"
)

// PageID identifies a page slot in the underlying page file.
type PageID = pagefile.PageID

// PayloadSize is the usable byte size of every frame payload.
const PayloadSize = pagefile.PayloadSize

// Failpoints on the flush and eviction paths; the crash-torture harness
// kills the process here to prove recovery copes with partial flushes.
var (
	fpFlush = failpoint.New("bufpool.flush")
	fpEvict = failpoint.New("bufpool.evict")
)

// Frame is the handle to one logical page. Unpooled frames (NewFrame) hold
// their payload forever — the in-RAM mode with zero eviction machinery —
// while pool-backed frames fault their payload in from the page file on
// demand.
type Frame struct {
	pool *Pool  // nil for unpooled in-RAM frames
	id   PageID // 0 for unpooled frames
	// data points at the resident payload, or nil when evicted. The payload
	// buffer is never reused after eviction: readers holding the slice keep
	// valid memory, and faulting allocates a fresh buffer.
	data atomic.Pointer[[]byte]
	pins atomic.Int32
	// dirty marks payload bytes newer than the page file. Set and cleared on
	// the writer side under the frame's shard lock; read by evicting readers.
	dirty atomic.Bool
	// ref is the clock sweep's second-chance bit.
	ref atomic.Bool
	// recLSN is the WAL position when the frame was first dirtied since its
	// last flush. Writer-side only.
	recLSN uint64
}

// NewFrame returns an unpooled frame with a zeroed resident payload of
// PayloadSize bytes: the in-RAM storage mode. Pin/Unpin/MarkDirty are cheap
// no-ops beyond the pin count and the payload is never evicted.
func NewFrame() *Frame { return NewFrameSize(PayloadSize) }

// NewFrameSize returns an unpooled frame with a zeroed resident payload of n
// bytes. Unpooled frames never touch the page file, so their payloads need
// not match the disk payload size: the in-RAM heap keeps its legacy 8 KiB
// page payload (PayloadSize plus the page-file header it never pays for).
func NewFrameSize(n int) *Frame {
	f := &Frame{}
	b := make([]byte, n)
	f.data.Store(&b)
	return f
}

// ID returns the frame's page id (0 for unpooled frames).
func (f *Frame) ID() PageID { return f.id }

// Pooled reports whether the frame is backed by a pool.
func (f *Frame) Pooled() bool { return f.pool != nil }

// Pin takes a pin reference and returns the payload bytes, faulting them in
// from the page file if evicted. Every Pin must be paired with an Unpin on
// all paths (the ordlint pinpair analyzer enforces this). Faults fail stop:
// an unreadable or corrupt page panics, because it means the store's own
// page file lied to us mid-operation.
func (f *Frame) Pin() []byte {
	f.pins.Add(1)
	if p := f.pool; p != nil {
		p.pinned.Add(1)
	}
	return f.Bytes()
}

// Unpin drops one pin reference.
func (f *Frame) Unpin() {
	f.pins.Add(-1)
	if p := f.pool; p != nil {
		p.pinned.Add(-1)
	}
}

// Bytes returns the payload without pinning, faulting it in if needed. The
// returned slice stays valid (immutable once the frame is frozen by a
// snapshot) even if the frame is evicted afterwards; it just stops being
// the frame's current payload if a writer re-dirties the page.
func (f *Frame) Bytes() []byte {
	if b := f.data.Load(); b != nil {
		if p := f.pool; p != nil {
			p.hits.Add(1)
			f.ref.Store(true)
		}
		return *b
	}
	return f.pool.fault(f)
}

// MarkDirty flags the payload as newer than the page file, faulting it in
// first if needed, and stamps the frame with the current WAL position.
// Writer side only. It returns the payload for the caller to mutate.
func (f *Frame) MarkDirty() []byte {
	p := f.pool
	if p == nil {
		b := f.data.Load()
		return *b
	}
	sh := p.shard(f.id)
	sh.mu.Lock()
	if !f.dirty.Load() {
		f.dirty.Store(true)
		p.dirtyCount.Add(1)
		if p.CurrentLSN != nil {
			f.recLSN = p.CurrentLSN()
		}
	}
	b := f.data.Load()
	faulted := false
	if b == nil {
		b, faulted = p.faultLocked(f)
	}
	f.ref.Store(true)
	sh.mu.Unlock()
	if faulted {
		p.addToClock(f)
	}
	return *b
}

// shardCount must be a power of two; 16 shards keep PR 6's parallel scans
// from serializing on one page-table mutex.
const shardCount = 16

type shard struct {
	mu     sync.Mutex
	frames map[PageID]*Frame
}

// Stats is a point-in-time summary of pool activity.
type Stats struct {
	Hits         int64
	Misses       int64
	Evictions    int64
	DirtyFlushes int64
	Overshoots   int64
	Resident     int64
	Dirty        int64
	Pinned       int64
	Capacity     int
}

// Pool is a fixed-capacity page cache over one page file.
type Pool struct {
	file *pagefile.File
	cap  int

	shards [shardCount]shard

	// evictMu serializes the clock sweep.
	evictMu sync.Mutex
	clock   []*Frame
	hand    int

	// mu guards the page-id allocator and checkpoint bookkeeping.
	mu      sync.Mutex
	next    PageID              // next never-used id (1-based; 0 is the file header)
	free    []PageID            // reusable ids not referenced by any checkpoint
	pending []PageID            // durable ids freed since the last checkpoint commit
	durable map[PageID]struct{} // ids referenced by the last durable checkpoint
	newborn map[PageID]struct{} // live ids allocated since the last commit

	// CurrentLSN, when set, supplies the WAL position stamped onto dirtied
	// frames and written into flushed page headers.
	CurrentLSN func() uint64
	// EnsureDurable, when set, is called before a dirty frame's payload is
	// written to the page file, with the WAL position the flush will stamp.
	// It must not return until the log is durable through that position —
	// the WAL-before-data rule.
	EnsureDurable func(lsn uint64) error
	// OnWriteError, when set, is told about every dirty-page flush failure
	// (page-file write or WAL-before-data error), including ones the eviction
	// path swallows and retries. The durable store uses it to enter degraded
	// read-only mode: a page file that cannot take writes means mutations can
	// no longer be made durable, while already-written pages still read fine.
	OnWriteError func(error)

	hits, misses, evictions atomic.Int64
	dirtyFlushes, overshoot atomic.Int64
	resident, dirtyCount    atomic.Int64
	pinned                  atomic.Int64

	// logger reports eviction pressure; set by RegisterMetrics (nil before,
	// and every log call is nil-safe).
	logger atomic.Pointer[olog.Logger]
}

// New returns a pool of at most frames resident pages over file. A frames
// value below 8 is raised to 8: the engine pins a handful of pages inside
// one operation window, and a pool smaller than that could wedge.
func New(file *pagefile.File, frames int) *Pool {
	if frames < 8 {
		frames = 8
	}
	p := &Pool{file: file, cap: frames, next: 1,
		durable: map[PageID]struct{}{}, newborn: map[PageID]struct{}{}}
	for i := range p.shards {
		p.shards[i].frames = map[PageID]*Frame{}
	}
	return p
}

// File returns the underlying page file.
func (p *Pool) File() *pagefile.File { return p.file }

// Capacity returns the configured frame capacity.
func (p *Pool) Capacity() int { return p.cap }

func (p *Pool) shard(id PageID) *shard { return &p.shards[id&(shardCount-1)] }

// Alloc assigns a fresh page id and returns its frame, pinned and dirty,
// with a zeroed resident payload. Writer side only. Callers must Unpin.
func (p *Pool) Alloc() (*Frame, error) {
	p.mu.Lock()
	var id PageID
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		id = p.next
		p.next++
	}
	p.newborn[id] = struct{}{}
	p.mu.Unlock()

	if err := p.file.EnsureSize(id); err != nil {
		p.mu.Lock()
		delete(p.newborn, id)
		p.free = append(p.free, id)
		p.mu.Unlock()
		return nil, err
	}

	f := &Frame{pool: p, id: id}
	b := make([]byte, PayloadSize)
	f.data.Store(&b)
	f.dirty.Store(true)
	if p.CurrentLSN != nil {
		f.recLSN = p.CurrentLSN()
	}
	f.pins.Store(1)
	p.pinned.Add(1)
	p.dirtyCount.Add(1)

	sh := p.shard(id)
	sh.mu.Lock()
	sh.frames[id] = f
	sh.mu.Unlock()
	p.resident.Add(1)
	p.addToClock(f)
	p.makeRoom(true)
	return f, nil
}

// Fetch returns the frame for an existing page id, pinned with its payload
// resident. Callers must Unpin. Like Pin, faults fail stop on corrupt or
// unreadable pages.
func (p *Pool) Fetch(id PageID) *Frame {
	f := p.Adopt(id)
	f.pins.Add(1)
	p.pinned.Add(1)
	f.Bytes()
	return f
}

// Adopt returns the frame handle for a page id known to be on disk (from a
// checkpoint manifest), creating the metadata without any I/O. The payload
// faults in on first access.
func (p *Pool) Adopt(id PageID) *Frame {
	sh := p.shard(id)
	sh.mu.Lock()
	f := sh.frames[id]
	if f == nil {
		f = &Frame{pool: p, id: id}
		sh.frames[id] = f
	}
	sh.mu.Unlock()
	return f
}

// fault loads the frame's payload from the page file.
func (p *Pool) fault(f *Frame) []byte {
	sh := p.shard(f.id)
	sh.mu.Lock()
	b, faulted := p.faultLocked(f)
	sh.mu.Unlock()
	if faulted {
		p.addToClock(f)
	}
	p.makeRoom(false)
	return *b
}

// faultLocked reads the payload under the frame's shard lock, so concurrent
// faults of the same page do one read, and eviction (which also takes the
// shard lock) cannot interleave with the residency transition. It reports
// whether it faulted (the nil→resident transition): the caller must then
// register the frame with the clock sweep via addToClock — only after
// releasing the shard lock, because the sweep holds evictMu while taking
// shard locks and nesting evictMu inside a shard lock would deadlock.
func (p *Pool) faultLocked(f *Frame) (*[]byte, bool) {
	if b := f.data.Load(); b != nil {
		p.hits.Add(1)
		return b, false
	}
	p.misses.Add(1)
	_, payload, err := p.file.ReadPage(f.id)
	if err != nil {
		// Fail stop: the pool only faults pages it previously wrote (or that
		// a verified checkpoint manifest references), so an unreadable page
		// is unrecoverable storage corruption, mirroring the WAL's policy.
		panic(fmt.Sprintf("bufpool: fault page %d: %v", f.id, err))
	}
	f.data.Store(&payload)
	p.resident.Add(1)
	return &payload, true
}

// addToClock registers a resident frame with the clock sweep. Lock order:
// makeRoom acquires shard locks (via evictFrame) while holding evictMu, so
// addToClock must never be called with a shard lock held.
func (p *Pool) addToClock(f *Frame) {
	p.evictMu.Lock()
	p.clock = append(p.clock, f)
	p.evictMu.Unlock()
}

// makeRoom runs the clock sweep until the resident count is back under
// capacity. Reader-side callers (writer=false) evict clean unpinned frames
// only; the writer may also flush-and-evict dirty frames, honoring
// WAL-before-data. When every frame is pinned or (for readers) dirty, the
// pool overshoots its capacity rather than blocking — the overshoot counter
// records it.
func (p *Pool) makeRoom(writer bool) {
	if int(p.resident.Load()) <= p.cap {
		return
	}
	p.evictMu.Lock()
	defer p.evictMu.Unlock()
	// Each lap visits every clock entry once; two laps let the first clear
	// reference bits and the second collect.
	budget := 2 * len(p.clock)
	for int(p.resident.Load()) > p.cap && budget > 0 && len(p.clock) > 0 {
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		f := p.clock[p.hand]
		budget--
		if f.data.Load() == nil {
			// Stale entry (evicted or freed elsewhere): compact.
			last := len(p.clock) - 1
			p.clock[p.hand] = p.clock[last]
			p.clock = p.clock[:last]
			continue
		}
		if f.ref.Swap(false) {
			p.hand++
			continue
		}
		if f.pins.Load() > 0 {
			p.hand++
			continue
		}
		if f.dirty.Load() {
			if !writer {
				p.hand++
				continue
			}
			if err := p.flushFrame(f); err != nil {
				// Flush failed (failpoint or I/O): leave the frame dirty and
				// resident; the next checkpoint will retry and surface it.
				p.hand++
				continue
			}
		}
		if fpEvict.Hit() != nil {
			return
		}
		if !p.evictFrame(f) {
			// The frame was re-pinned or re-dirtied between the unlocked
			// checks above and evictFrame's shard-locked recheck: keep its
			// clock entry so a later sweep revisits it.
			p.hand++
			continue
		}
		last := len(p.clock) - 1
		p.clock[p.hand] = p.clock[last]
		p.clock = p.clock[:last]
	}
	if int(p.resident.Load()) > p.cap {
		p.overshoot.Add(1)
		// Sustained overshoot means the working set of pinned+dirty pages
		// exceeds capacity — the pool is thrashing, not just warm.
		p.logger.Load().Every("bufpool.overshoot", 5*time.Second, olog.LevelWarn,
			"bufpool: eviction pressure, resident frames exceed capacity",
			olog.Int("resident", p.resident.Load()),
			olog.Int("capacity", int64(p.cap)),
			olog.Int("dirty", p.dirtyCount.Load()),
			olog.Int("pinned", p.pinned.Load()))
	}
}

// evictFrame drops a clean frame's payload under its shard lock, so a
// concurrent MarkDirty either completes first (the frame is dirty, caller
// re-checks) or faults the page back in afterwards. It reports whether the
// payload was actually dropped: a false return means the frame stays
// resident and must keep its clock entry.
func (p *Pool) evictFrame(f *Frame) bool {
	sh := p.shard(f.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins.Load() == 0 && !f.dirty.Load() && f.data.Load() != nil {
		f.data.Store(nil)
		p.resident.Add(-1)
		p.evictions.Add(1)
		return true
	}
	return false
}

// flushFrame writes one dirty frame's payload to the page file and marks it
// clean. Writer side only. The frame stays resident.
func (p *Pool) flushFrame(f *Frame) error {
	b := f.data.Load()
	if b == nil {
		return fmt.Errorf("bufpool: dirty frame %d has no payload", f.id)
	}
	lsn := f.recLSN
	if p.CurrentLSN != nil {
		lsn = p.CurrentLSN()
	}
	if p.EnsureDurable != nil {
		if err := p.EnsureDurable(lsn); err != nil {
			return p.writeError(fmt.Errorf("bufpool: wal-before-data for page %d: %w", f.id, err))
		}
	}
	if err := fpFlush.Hit(); err != nil {
		return p.writeError(err)
	}
	if err := p.file.WritePage(f.id, lsn, *b); err != nil {
		return p.writeError(err)
	}
	f.dirty.Store(false)
	p.dirtyCount.Add(-1)
	p.dirtyFlushes.Add(1)
	return nil
}

// writeError reports a flush failure to OnWriteError and passes it through.
func (p *Pool) writeError(err error) error {
	if p.OnWriteError != nil {
		p.OnWriteError(err)
	}
	return err
}

// FlushAll writes every dirty frame to the page file (WAL-before-data
// enforced per frame) and then trims the resident set back under capacity.
// Writer side only; it does not sync the file — the checkpoint does that
// once, after all writes.
func (p *Pool) FlushAll() error {
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		dirty := make([]*Frame, 0, 8)
		for _, f := range sh.frames {
			if f.dirty.Load() {
				dirty = append(dirty, f)
			}
		}
		sh.mu.Unlock()
		sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
		for _, f := range dirty {
			if err := p.flushFrame(f); err != nil {
				return err
			}
		}
	}
	p.makeRoom(true)
	return nil
}

// FreeID releases a page id. If the id is referenced by the last durable
// checkpoint it joins the pending list (reusable only after the next
// CommitCheckpoint); otherwise it is immediately reusable. The cached frame
// (if any) is dropped. Safe to call from finalizers.
func (p *Pool) FreeID(id PageID) {
	if id == 0 {
		return
	}
	p.mu.Lock()
	if _, isNew := p.newborn[id]; isNew {
		delete(p.newborn, id)
		p.dropFrame(id)
		p.free = append(p.free, id)
	} else if _, dur := p.durable[id]; dur {
		p.dropFrame(id)
		p.pending = append(p.pending, id)
	} else {
		p.dropFrame(id)
		p.free = append(p.free, id)
	}
	p.mu.Unlock()
}

// dropFrame removes the cached frame for id. Caller holds p.mu; the shard
// lock nests inside it (never the reverse).
func (p *Pool) dropFrame(id PageID) {
	sh := p.shard(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		delete(sh.frames, id)
		if f.data.Swap(nil) != nil {
			p.resident.Add(-1)
		}
		if f.dirty.Swap(false) {
			p.dirtyCount.Add(-1)
		}
	}
	sh.mu.Unlock()
}

// AllocState is the page-id allocator's persistent state, written into
// checkpoint manifests.
type AllocState struct {
	Next PageID
	Free []PageID
}

// PlannedState returns the allocator state as it will be after the next
// CommitCheckpoint: the current free list plus every pending id. The
// checkpoint writes this into the manifest before committing, so the
// manifest and the in-memory allocator agree the moment the rename lands.
func (p *Pool) PlannedState() AllocState {
	p.mu.Lock()
	defer p.mu.Unlock()
	free := make([]PageID, 0, len(p.free)+len(p.pending))
	free = append(free, p.free...)
	free = append(free, p.pending...)
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	return AllocState{Next: p.next, Free: free}
}

// CommitCheckpoint marks the checkpoint durable: pending ids become
// reusable and ids allocated since the last commit join the durable set.
// Call only after the manifest rename has landed.
func (p *Pool) CommitCheckpoint() {
	p.mu.Lock()
	for _, id := range p.pending {
		delete(p.durable, id)
		p.free = append(p.free, id)
	}
	p.pending = p.pending[:0]
	for id := range p.newborn {
		p.durable[id] = struct{}{}
	}
	clear(p.newborn)
	p.mu.Unlock()
}

// Restore initializes the allocator from a checkpoint manifest: every id
// below next that is not on the free list is durable (checkpoint
// referenced).
func (p *Pool) Restore(st AllocState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next = st.Next
	if p.next < 1 {
		p.next = 1
	}
	p.free = append([]PageID(nil), st.Free...)
	p.pending = nil
	p.durable = make(map[PageID]struct{}, int(p.next))
	onFree := make(map[PageID]struct{}, len(st.Free))
	for _, id := range st.Free {
		onFree[id] = struct{}{}
	}
	for id := PageID(1); id < p.next; id++ {
		if _, ok := onFree[id]; !ok {
			p.durable[id] = struct{}{}
		}
	}
	clear(p.newborn)
}

// DurableIDs returns the ids referenced by the last durable checkpoint,
// sorted — the set whose on-disk checksums CheckIntegrity validates.
func (p *Pool) DurableIDs() []PageID {
	p.mu.Lock()
	ids := make([]PageID, 0, len(p.durable))
	for id := range p.durable {
		ids = append(ids, id)
	}
	p.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// VerifyDisk reads every durable page directly from the page file and
// checks its checksum, returning one problem string per bad page. It
// bypasses the cache, so it validates what a post-crash recovery would
// actually read.
func (p *Pool) VerifyDisk() []string {
	var problems []string
	for _, id := range p.DurableIDs() {
		if _, _, err := p.file.ReadPage(id); err != nil {
			problems = append(problems, fmt.Sprintf("pagefile: %v", err))
		}
	}
	return problems
}

// Stats returns a point-in-time activity summary.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		Evictions:    p.evictions.Load(),
		DirtyFlushes: p.dirtyFlushes.Load(),
		Overshoots:   p.overshoot.Load(),
		Resident:     p.resident.Load(),
		Dirty:        p.dirtyCount.Load(),
		Pinned:       p.pinned.Load(),
		Capacity:     p.cap,
	}
}

// RegisterMetrics publishes the pool's counters and gauges on reg under the
// bufpool.* namespace, including a derived hit-ratio gauge (percent).
func (p *Pool) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterFunc("bufpool.hits", p.hits.Load)
	reg.RegisterFunc("bufpool.misses", p.misses.Load)
	reg.RegisterFunc("bufpool.evictions", p.evictions.Load)
	reg.RegisterFunc("bufpool.dirty_flushes", p.dirtyFlushes.Load)
	reg.RegisterFunc("bufpool.overshoots", p.overshoot.Load)
	reg.RegisterFunc("bufpool.resident_frames", p.resident.Load)
	reg.RegisterFunc("bufpool.dirty_frames", p.dirtyCount.Load)
	reg.RegisterFunc("bufpool.pinned_frames", p.pinned.Load)
	reg.RegisterFunc("bufpool.capacity", func() int64 { return int64(p.cap) })
	reg.RegisterFunc("bufpool.hit_ratio_pct", func() int64 {
		h, m := p.hits.Load(), p.misses.Load()
		if h+m == 0 {
			return 100
		}
		return 100 * h / (h + m)
	})
	reg.RegisterFunc("bufpool.dirty_ratio_pct", func() int64 {
		return 100 * p.dirtyCount.Load() / int64(p.cap)
	})
	p.logger.Store(reg.Log())
}
