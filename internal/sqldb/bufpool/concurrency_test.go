package bufpool

import (
	"sync"
	"testing"
)

// TestConcurrentFaultAndSweep hammers reader-side faults from many
// goroutines over a pool much smaller than the page set, so faults (which
// hold a shard lock during the residency transition) constantly overlap
// with clock sweeps (which hold evictMu while taking shard locks inside
// evictFrame). Before addToClock was hoisted out of the shard critical
// section this interleaving deadlocked: one reader held shard S wanting
// evictMu while the sweep held evictMu wanting shard S.
func TestConcurrentFaultAndSweep(t *testing.T) {
	p := newTestPool(t, 8)
	const pages = 64
	for i := 0; i < pages; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := f.MarkDirty()
		b[0] = byte(i)
		f.Unpin()
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// 32 goroutines x 20k fetches reproduces the pre-fix deadlock reliably;
	// short mode keeps a scaled-down version for quick dev loops.
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				id := PageID(1 + (seed*2003+n*31)%pages)
				f := p.Fetch(id)
				b := f.Bytes()
				if b[0] != byte(id-1) {
					t.Errorf("page %d payload = %d, want %d", id, b[0], id-1)
				}
				f.Unpin()
			}
		}(g)
	}
	wg.Wait()

	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("thrashing a pool 8x smaller than the page set evicted nothing")
	}
	// Declined evictions must not leak frames out of the sweep's reach:
	// after one more sweep the pool settles back under capacity.
	p.makeRoom(false)
	if st = p.Stats(); st.Resident > int64(p.Capacity()) {
		t.Fatalf("resident = %d after sweep, capacity = %d", st.Resident, p.Capacity())
	}
}
