package bufpool

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ordxml/internal/sqldb/pagefile"
)

func newTestPool(t *testing.T, frames int) *Pool {
	t.Helper()
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return New(pf, frames)
}

func TestUnpooledFrame(t *testing.T) {
	f := NewFrame()
	if f.Pooled() {
		t.Fatal("NewFrame reported pooled")
	}
	if f.ID() != 0 {
		t.Fatalf("unpooled frame id = %d", f.ID())
	}
	b := f.Pin()
	if len(b) != PayloadSize {
		t.Fatalf("payload len = %d", len(b))
	}
	copy(b, "hello")
	f.Unpin()
	if got := f.MarkDirty(); !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatal("MarkDirty returned a different buffer")
	}
	if got := f.Bytes(); !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatal("Bytes returned a different buffer")
	}
}

func TestAllocFlushEvictFetchRoundTrip(t *testing.T) {
	p := newTestPool(t, 8)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if id == 0 {
		t.Fatal("Alloc handed out page 0")
	}
	b := f.MarkDirty()
	copy(b, "page payload round trip")
	f.Unpin()

	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d := p.Stats().Dirty; d != 0 {
		t.Fatalf("dirty frames after FlushAll = %d", d)
	}

	// Force the payload out and fault it back via Fetch.
	p.evictFrame(f)
	if f.data.Load() != nil {
		t.Fatal("clean unpinned frame did not evict")
	}
	g := p.Fetch(id)
	got := g.Bytes()
	g.Unpin()
	if !bytes.Equal(got[:23], []byte("page payload round trip")) {
		t.Fatal("payload mismatch after evict+fault")
	}
	if p.Stats().Misses == 0 {
		t.Fatal("fault did not count a miss")
	}
}

func TestResidencyBoundedByCapacity(t *testing.T) {
	p := newTestPool(t, 8)
	// Allocate, fill, and release 50 pages; the pool must keep eviction
	// ahead of allocation so residency stays at (or near) capacity.
	for i := 0; i < 50; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		b := f.MarkDirty()
		b[0] = byte(i)
		f.Unpin()
	}
	st := p.Stats()
	// Alloc flushes dirty frames when over capacity, so residency should be
	// bounded; allow one page of slack for the in-flight allocation.
	if st.Resident > int64(p.Capacity())+1 {
		t.Fatalf("resident = %d, capacity = %d", st.Resident, p.Capacity())
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite over-capacity allocation")
	}
	// Every page must still read back intact.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for id := PageID(1); id <= 50; id++ {
		f := p.Fetch(id)
		b := f.Bytes()
		f.Unpin()
		if b[0] != byte(id-1) {
			t.Fatalf("page %d payload = %d, want %d", id, b[0], id-1)
		}
	}
}

func TestReadersDoNotEvictDirtyOrPinned(t *testing.T) {
	p := newTestPool(t, 8)
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f) // keep pinned
	}
	// All 8 frames are pinned and dirty; a reader-side makeRoom must not
	// drop any of them even when over capacity.
	f9, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.makeRoom(false)
	for i, f := range frames {
		if f.data.Load() == nil {
			t.Fatalf("pinned dirty frame %d was evicted", i)
		}
	}
	if p.Stats().Overshoots == 0 {
		t.Fatal("over-capacity with nothing evictable did not record an overshoot")
	}
	f9.Unpin()
	for _, f := range frames {
		f.Unpin()
	}
}

func TestEnsureDurableCalledBeforeFlush(t *testing.T) {
	p := newTestPool(t, 8)
	lsn := uint64(41)
	p.CurrentLSN = func() uint64 { return lsn }
	var durableThrough []uint64
	p.EnsureDurable = func(l uint64) error {
		durableThrough = append(durableThrough, l)
		return nil
	}
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Unpin()
	lsn = 42
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(durableThrough) != 1 || durableThrough[0] != 42 {
		t.Fatalf("EnsureDurable calls = %v, want [42]", durableThrough)
	}
	// The flushed page header must carry the same LSN the hook saw.
	h, _, err := p.File().ReadPage(f.ID())
	if err != nil {
		t.Fatal(err)
	}
	if h.LSN != 42 {
		t.Fatalf("flushed page LSN = %d, want 42", h.LSN)
	}
}

func TestFreeIDRoutingAndCheckpointCommit(t *testing.T) {
	p := newTestPool(t, 8)
	a, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	a.Unpin()
	b, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b.Unpin()

	// Newborn id freed before any checkpoint: immediately reusable.
	p.FreeID(a.ID())
	c, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin()
	if c.ID() != a.ID() {
		t.Fatalf("freed newborn id %d not reused, got %d", a.ID(), c.ID())
	}

	// Checkpoint: b and c become durable.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := p.PlannedState()
	p.CommitCheckpoint()
	if len(st.Free) != 0 {
		t.Fatalf("planned free list = %v, want empty", st.Free)
	}

	// Durable id freed: must go pending, not reusable until the next commit.
	p.FreeID(b.ID())
	d, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	d.Unpin()
	if d.ID() == b.ID() {
		t.Fatal("durable id reused before checkpoint commit")
	}
	// The planned state for the NEXT checkpoint includes b's id as free.
	next := p.PlannedState()
	found := false
	for _, id := range next.Free {
		if id == b.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("planned free list %v missing freed durable id %d", next.Free, b.ID())
	}
	p.CommitCheckpoint()
	e, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	e.Unpin()
	if e.ID() != b.ID() {
		t.Fatalf("pending id %d not reusable after commit, got %d", b.ID(), e.ID())
	}
}

func TestRestoreRebuildsDurableSet(t *testing.T) {
	p := newTestPool(t, 8)
	p.Restore(AllocState{Next: 6, Free: []PageID{2, 4}})
	ids := p.DurableIDs()
	want := []PageID{1, 3, 5}
	if len(ids) != len(want) {
		t.Fatalf("durable ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("durable ids = %v, want %v", ids, want)
		}
	}
	// Allocation must draw from the free list first, then next.
	a, _ := p.Alloc()
	a.Unpin()
	bF, _ := p.Alloc()
	bF.Unpin()
	cF, _ := p.Alloc()
	cF.Unpin()
	got := []PageID{a.ID(), bF.ID(), cF.ID()}
	seen := map[PageID]bool{}
	for _, id := range got {
		seen[id] = true
	}
	if !seen[2] || !seen[4] || !seen[6] {
		t.Fatalf("allocated ids = %v, want {2,4,6}", got)
	}
}

func TestVerifyDiskDetectsCorruption(t *testing.T) {
	pf, err := pagefile.Create(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	p := New(pf, 8)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b := f.MarkDirty()
	copy(b, "verify me")
	f.Unpin()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	p.CommitCheckpoint()
	if problems := p.VerifyDisk(); len(problems) != 0 {
		t.Fatalf("clean store reported problems: %v", problems)
	}

	// Corrupt the page on disk behind the pool's back.
	raw, err := os.ReadFile(pf.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[int(f.ID())*pagefile.PageSize+pagefile.HeaderSize] ^= 0xFF
	if err := os.WriteFile(pf.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if problems := p.VerifyDisk(); len(problems) == 0 {
		t.Fatal("VerifyDisk missed an on-disk corruption")
	}
}

func TestMetricsRegistered(t *testing.T) {
	p := newTestPool(t, 8)
	st := p.Stats()
	if st.Capacity != 8 {
		t.Fatalf("capacity = %d", st.Capacity)
	}
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Pinned; got != 1 {
		t.Fatalf("pinned = %d, want 1", got)
	}
	f.Unpin()
	if got := p.Stats().Pinned; got != 0 {
		t.Fatalf("pinned = %d, want 0", got)
	}
}
