package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

func cacheDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec := func(sql string) {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE items (id INT PRIMARY KEY, cat TEXT NOT NULL, qty INT)`)
	mustExec(`CREATE INDEX items_cat ON items (cat)`)
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT INTO items (id, cat, qty) VALUES (?, ?, ?)`,
			I(int64(i)), S(fmt.Sprintf("c%d", i%10)), I(int64(i)*2)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPlanCacheHits: repeating the same SELECT must hit the cache, and the
// hit must return the same rows as the first (planned) execution.
func TestPlanCacheHits(t *testing.T) {
	db := cacheDB(t)
	const q = `SELECT id FROM items WHERE cat = ? ORDER BY id`

	base := db.PlanCacheStats()
	first, err := db.Query(q, S("c3"))
	if err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Misses != base.Misses+1 || after.Hits != base.Hits {
		t.Fatalf("first run: stats %+v -> %+v, want one miss", base, after)
	}

	for i := 0; i < 5; i++ {
		res, err := db.Query(q, S("c3"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(first.Rows) {
			t.Fatalf("run %d: %d rows, want %d", i, len(res.Rows), len(first.Rows))
		}
	}
	final := db.PlanCacheStats()
	if final.Hits != after.Hits+5 {
		t.Fatalf("hits = %d, want %d", final.Hits, after.Hits+5)
	}
	if final.Misses != after.Misses {
		t.Fatalf("misses grew on repeat: %d -> %d", after.Misses, final.Misses)
	}
}

// TestPlanCacheInvalidation: DDL must invalidate cached plans. A query whose
// plan used an index must re-plan (and stay correct) after that index is
// dropped, and again after it is recreated.
func TestPlanCacheInvalidation(t *testing.T) {
	db := cacheDB(t)
	const q = `SELECT id FROM items WHERE cat = ? ORDER BY id`

	want, err := db.Query(q, S("c7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 20 {
		t.Fatalf("baseline rows = %d, want 20", len(want.Rows))
	}
	plan1, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan1, "items_cat") {
		t.Fatalf("baseline plan does not use items_cat:\n%s", plan1)
	}

	if _, err := db.Exec(`DROP INDEX items_cat`); err != nil {
		t.Fatal(err)
	}
	pre := db.PlanCacheStats()
	got, err := db.Query(q, S("c7"))
	if err != nil {
		t.Fatal(err)
	}
	post := db.PlanCacheStats()
	if post.Misses != pre.Misses+1 {
		t.Fatalf("stale plan not invalidated: %+v -> %+v", pre, post)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("after DROP INDEX: %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	plan2, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan2, "items_cat") {
		t.Fatalf("plan still references dropped index:\n%s", plan2)
	}

	if _, err := db.Exec(`CREATE INDEX items_cat ON items (cat)`); err != nil {
		t.Fatal(err)
	}
	got, err = db.Query(q, S("c7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("after CREATE INDEX: %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	plan3, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan3, "items_cat") {
		t.Fatalf("plan does not use recreated index:\n%s", plan3)
	}
}

// TestPlanCacheDML: repeated Exec of the same DML text should hit the cache.
func TestPlanCacheDML(t *testing.T) {
	db := cacheDB(t)
	const u = `UPDATE items SET qty = ? WHERE id = ?`
	if _, err := db.Exec(u, I(1), I(3)); err != nil {
		t.Fatal(err)
	}
	pre := db.PlanCacheStats()
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(u, I(int64(i)), I(3)); err != nil {
			t.Fatal(err)
		}
	}
	post := db.PlanCacheStats()
	if post.Hits != pre.Hits+4 {
		t.Fatalf("DML hits = %d, want %d", post.Hits, pre.Hits+4)
	}
	res, err := db.Query(`SELECT qty FROM items WHERE id = ?`, I(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("qty = %v, want 3", res.Rows[0])
	}
	// A SELECT's cached plan must not be runnable through Exec.
	if _, err := db.Query(`SELECT id FROM items`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT id FROM items`); err == nil {
		t.Fatal("Exec of cached SELECT succeeded")
	}
}

// TestPlanCacheEviction: the LRU must stay bounded and keep working past
// capacity.
func TestPlanCacheEviction(t *testing.T) {
	db := cacheDB(t)
	for i := 0; i < planCacheCap+50; i++ {
		q := fmt.Sprintf(`SELECT id FROM items WHERE qty = %d`, i)
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.PlanCacheStats().Entries; n > planCacheCap {
		t.Fatalf("cache holds %d entries, cap %d", n, planCacheCap)
	}
}

// TestConcurrentQueries hammers one cached plan from many goroutines (run
// with -race): plan sharing across concurrent executions must be safe, and
// every execution must see consistent results.
func TestConcurrentQueries(t *testing.T) {
	db := cacheDB(t)
	const q = `SELECT id, qty FROM items WHERE cat = ? ORDER BY id`
	want, err := db.Query(q, S("c1"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cat := fmt.Sprintf("c%d", g%4)
			for i := 0; i < 50; i++ {
				res, err := db.Query(q, S(cat))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, len(res.Rows), len(want.Rows))
					return
				}
			}
		}(g)
	}
	// Concurrent writers through the same cached DML plan.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Exec(`UPDATE items SET qty = ? WHERE id = ?`,
					I(int64(i)), I(int64(g*7))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStmtReplanAfterDDL: prepared statements share the cache and must
// survive DDL between executions.
func TestStmtReplanAfterDDL(t *testing.T) {
	db := cacheDB(t)
	stmt, err := db.Prepare(`SELECT id FROM items WHERE cat = ?`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := stmt.Query(S("c2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DROP INDEX items_cat`); err != nil {
		t.Fatal(err)
	}
	r2, err := stmt.Query(S("c2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("rows changed across DDL: %d -> %d", len(r1.Rows), len(r2.Rows))
	}
}

// TestBulkInsertThroughDB covers the engine-level bulk fast path: RIDs in
// row order, constraint checks, and all-or-nothing failure.
func TestBulkInsertThroughDB(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	rows := make([]sqltypes.Row, 100)
	for i := range rows {
		rows[i] = sqltypes.Row{I(int64(i)), S(fmt.Sprintf("n%d", i))}
	}
	n, err := db.BulkInsert("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("inserted %d, want 100", n)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("count = %d", got)
	}

	// Duplicate against existing data: nothing may stick.
	if _, err := db.BulkInsert("t", []sqltypes.Row{
		{I(500), S("ok")}, {I(42), S("dup")},
	}); err == nil {
		t.Fatal("duplicate batch succeeded")
	}
	// Duplicate within the batch.
	if _, err := db.BulkInsert("t", []sqltypes.Row{
		{I(600), S("a")}, {I(600), S("b")},
	}); err == nil {
		t.Fatal("batch with internal duplicate succeeded")
	}
	// NOT NULL violation mid-batch.
	if _, err := db.BulkInsert("t", []sqltypes.Row{
		{I(700), S("a")}, {I(701), Null()},
	}); err == nil {
		t.Fatal("batch with NULL name succeeded")
	}
	res, err = db.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 100 {
		t.Fatalf("failed batches changed the table: count = %d", got)
	}
	if _, err := db.BulkInsert("nope", rows); err == nil {
		t.Fatal("BulkInsert into missing table succeeded")
	}
}
