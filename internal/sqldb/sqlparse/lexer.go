// Package sqlparse implements the SQL front end of the engine: a lexer and a
// recursive-descent parser producing statement ASTs over the expr package's
// expression nodes.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokParam // ?
	tokOp    // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents original
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "DROP": true, "NOT": true, "NULL": true, "AND": true,
	"OR": true, "IN": true, "IS": true, "BETWEEN": true, "LIKE": true,
	"AS": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"DISTINCT": true, "PRIMARY": true, "KEY": true, "TRUE": true, "FALSE": true,
	"EXPLAIN": true, "ANALYZE": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("SQL syntax error at byte %d: %s", pos, fmt.Sprintf(format, args...))
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.scanString()
	case c >= '0' && c <= '9':
		return l.scanNumber()
	case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		return l.scanNumber()
	case isIdentStart(rune(c)):
		return l.scanIdent()
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == '"':
		return l.scanQuotedIdent()
	}
	// Operators, longest first.
	twoCharOps := []string{"<>", "!=", "<=", ">=", "||"}
	for _, op := range twoCharOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += 2
			if op == "!=" {
				op = "<>"
			}
			return token{kind: tokOp, text: op, pos: start}, nil
		}
	}
	oneChar := "(),*=<>+-/%."
	if strings.IndexByte(oneChar, c) >= 0 {
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) scanIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return token{kind: tokKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

// scanQuotedIdent handles "identifier" quoting.
func (l *lexer) scanQuotedIdent() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token{kind: tokIdent, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated quoted identifier")
}

func (l *lexer) scanString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	kind := tokInt
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			kind = tokFloat
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}
