package sqlparse

import "testing"

// FuzzParse checks the SQL parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE a = 1 AND b LIKE 'x%' ORDER BY a DESC LIMIT 3",
		"INSERT INTO t (a) VALUES (1), (?)",
		"UPDATE t SET a = a + 1 WHERE b IN (1, 2)",
		"DELETE FROM t WHERE a BETWEEN 1 AND 2",
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT NOT NULL)",
		"CREATE UNIQUE INDEX i ON t (a, b)",
		"SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 1",
		"SELECT * FROM t JOIN u ON t.a = u.b LEFT JOIN v ON 1 = 1",
		"EXPLAIN SELECT 'it''s' || x FROM \"order\"",
		"SELECT -1.5e3 FROM t -- comment",
		"SELEC",
		"SELECT a FROM t WHERE a = 'unterminated",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = Parse(input) // must not panic
	})
}
