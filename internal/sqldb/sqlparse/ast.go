package sqlparse

import (
	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface{ isStmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Type
	NotNull    bool
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty = declaration order
	Rows    [][]expr.Expr
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the visible name of the reference.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinKind distinguishes inner and left outer joins.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
)

// Join is one JOIN clause attached to a Select.
type Join struct {
	Kind  JoinKind
	Table TableRef
	On    expr.Expr
}

// SelectItem is one output expression; Star marks `*` (Expr nil).
type SelectItem struct {
	Expr  expr.Expr
	Alias string
	Star  bool
	// StarTable qualifies `t.*`; empty for bare `*`.
	StarTable string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is a SELECT statement over base tables with optional joins.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    expr.Expr // nil = none
	Offset   expr.Expr // nil = none
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  expr.Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table TableRef
	Sets  []SetClause
	Where expr.Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table TableRef
	Where expr.Expr
}

// Explain wraps a statement for plan display. With Analyze set the wrapped
// statement is executed with per-operator instrumentation (EXPLAIN ANALYZE).
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*CreateTable) isStmt() {}
func (*CreateIndex) isStmt() {}
func (*DropTable) isStmt()   {}
func (*DropIndex) isStmt()   {}
func (*Insert) isStmt()      {}
func (*Select) isStmt()      {}
func (*Update) isStmt()      {}
func (*Delete) isStmt()      {}
func (*Explain) isStmt()     {}
