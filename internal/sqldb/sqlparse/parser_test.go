package sqlparse

import (
	"strings"
	"testing"

	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqltypes"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE users (
		id INT PRIMARY KEY,
		name TEXT NOT NULL,
		age INT,
		bio BLOB
	)`).(*CreateTable)
	if stmt.Name != "users" || len(stmt.Columns) != 4 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if !stmt.Columns[0].PrimaryKey || !stmt.Columns[0].NotNull {
		t.Error("PRIMARY KEY flags not set")
	}
	if !stmt.Columns[1].NotNull || stmt.Columns[1].Type != sqltypes.Text {
		t.Error("NOT NULL TEXT column wrong")
	}
	if stmt.Columns[3].Type != sqltypes.Blob {
		t.Error("BLOB type wrong")
	}
}

func TestCreateIndex(t *testing.T) {
	stmt := mustParse(t, "CREATE UNIQUE INDEX ux ON t (a, b)").(*CreateIndex)
	if !stmt.Unique || stmt.Name != "ux" || stmt.Table != "t" || len(stmt.Columns) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
	stmt2 := mustParse(t, "CREATE INDEX ix ON t (a)").(*CreateIndex)
	if stmt2.Unique {
		t.Error("non-unique index parsed as unique")
	}
}

func TestDrop(t *testing.T) {
	if s := mustParse(t, "DROP TABLE t").(*DropTable); s.Name != "t" {
		t.Errorf("DropTable = %+v", s)
	}
	if s := mustParse(t, "DROP INDEX i").(*DropIndex); s.Name != "i" {
		t.Errorf("DropIndex = %+v", s)
	}
}

func TestInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)").(*Insert)
	if stmt.Table != "t" || len(stmt.Columns) != 2 || len(stmt.Rows) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if p, ok := stmt.Rows[1][0].(*expr.Param); !ok || p.Index != 0 {
		t.Errorf("param = %+v", stmt.Rows[1][0])
	}
	// Without column list.
	stmt2 := mustParse(t, "INSERT INTO t VALUES (1)").(*Insert)
	if stmt2.Columns != nil {
		t.Error("column list not empty")
	}
}

func TestParamNumbering(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a = ? AND b = ? AND c = ?").(*Select)
	// Walk the WHERE tree collecting params.
	var idxs []int
	expr.Walk(stmt.Where, func(e expr.Expr) bool {
		if p, ok := e.(*expr.Param); ok {
			idxs = append(idxs, p.Index)
		}
		return true
	})
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Errorf("param indexes = %v", idxs)
	}
}

func TestSelectFull(t *testing.T) {
	stmt := mustParse(t, `SELECT DISTINCT t.a, u.b AS bee, COUNT(*) cnt
		FROM t1 t
		JOIN t2 AS u ON t.id = u.id
		LEFT JOIN t3 v ON v.k = t.id
		WHERE t.a > 5 AND u.b LIKE 'x%'
		GROUP BY t.a, u.b
		HAVING COUNT(*) > 1
		ORDER BY t.a DESC, bee
		LIMIT 10 OFFSET 5`).(*Select)
	if !stmt.Distinct || len(stmt.Items) != 3 {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if stmt.Items[1].Alias != "bee" || stmt.Items[2].Alias != "cnt" {
		t.Errorf("aliases = %q, %q", stmt.Items[1].Alias, stmt.Items[2].Alias)
	}
	if stmt.From.Table != "t1" || stmt.From.Alias != "t" {
		t.Errorf("from = %+v", stmt.From)
	}
	if len(stmt.Joins) != 2 || stmt.Joins[0].Kind != JoinInner || stmt.Joins[1].Kind != JoinLeft {
		t.Fatalf("joins = %+v", stmt.Joins)
	}
	if stmt.Where == nil || len(stmt.GroupBy) != 2 || stmt.Having == nil {
		t.Error("where/group/having missing")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit == nil || stmt.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestSelectStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t").(*Select)
	if !stmt.Items[0].Star || stmt.Items[0].StarTable != "" {
		t.Errorf("items = %+v", stmt.Items)
	}
	stmt2 := mustParse(t, "SELECT u.*, a FROM t u").(*Select)
	if !stmt2.Items[0].Star || stmt2.Items[0].StarTable != "u" {
		t.Errorf("items = %+v", stmt2.Items)
	}
	if stmt2.Items[1].Star {
		t.Error("plain column parsed as star")
	}
}

func TestCommaJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t, u WHERE t.id = u.id").(*Select)
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins = %+v", stmt.Joins)
	}
	if lit, ok := stmt.Joins[0].On.(*expr.Literal); !ok || !lit.Val.Bool() {
		t.Error("comma join ON is not TRUE literal")
	}
}

func TestUpdateDelete(t *testing.T) {
	u := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").(*Update)
	if u.Table.Table != "t" || len(u.Sets) != 2 || u.Where == nil {
		t.Fatalf("update = %+v", u)
	}
	d := mustParse(t, "DELETE FROM t WHERE a < 5").(*Delete)
	if d.Table.Table != "t" || d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	d2 := mustParse(t, "DELETE FROM t").(*Delete)
	if d2.Where != nil {
		t.Error("bare delete has WHERE")
	}
}

func TestExplain(t *testing.T) {
	e := mustParse(t, "EXPLAIN SELECT a FROM t").(*Explain)
	if _, ok := e.Stmt.(*Select); !ok {
		t.Fatalf("explain wraps %T", e.Stmt)
	}
}

func TestExprPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a + 1 * 2 = 3 OR NOT b = 4 AND c < 5").(*Select)
	// Expect: (((a + (1*2)) = 3) OR ((NOT (b=4)) AND (c<5)))
	want := "(((a + (1 * 2)) = 3) OR (NOT (b = 4) AND (c < 5)))"
	if got := stmt.Where.String(); got != want {
		t.Errorf("precedence tree = %s, want %s", got, want)
	}
}

func TestExprForms(t *testing.T) {
	cases := map[string]string{
		"a BETWEEN 1 AND 2":     "(a BETWEEN 1 AND 2)",
		"a NOT BETWEEN 1 AND 2": "(a NOT BETWEEN 1 AND 2)",
		"a IN (1, 2, 3)":        "(a IN (1, 2, 3))",
		"a NOT IN (1)":          "(a NOT IN (1))",
		"a IS NULL":             "(a IS NULL)",
		"a IS NOT NULL":         "(a IS NOT NULL)",
		"a LIKE 'x%'":           "(a LIKE 'x%')",
		"a NOT LIKE 'x%'":       "NOT (a LIKE 'x%')",
		"name || '!'":           "(name || '!')",
		"-a":                    "-a",
		"-5":                    "-5",
		"-2.5":                  "-2.5",
		"LENGTH(a)":             "LENGTH(a)",
		"SUBSTR(a, 1, 2)":       "SUBSTR(a, 1, 2)",
		"COUNT(DISTINCT a)":     "COUNT(DISTINCT a)",
		"MIN(a + 1)":            "MIN((a + 1))",
		"TRUE":                  "TRUE",
		"(a = 1)":               "(a = 1)",
		"'it''s'":               "'it''s'",
		"a % 2 = 0":             "((a % 2) = 0)",
		"t.a <> u.b":            "(t.a <> u.b)",
		"a != 1":                "(a <> 1)",
	}
	for in, want := range cases {
		stmt := mustParse(t, "SELECT "+in+" x FROM t").(*Select)
		if got := stmt.Items[0].Expr.String(); got != want {
			t.Errorf("%q parsed to %s, want %s", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a t", // missing FROM
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"INSERT INTO t VALUES (1",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FROB)",
		"CREATE UNIQUE TABLE t (a INT)",
		"CREATE INDEX i ON t a",
		"DROP VIEW v",
		"UPDATE t SET",
		"UPDATE t SET a",
		"DELETE t",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT SUM(*) FROM t",
		"SELECT NOPE(a) FROM t",
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t extra garbage here",
		"SELECT a FROM t WHERE a IS 1",
		"SELECT a FROM t WHERE a IN ()",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	stmt := mustParse(t, "select a from t where a = 1 order by a desc limit 2").(*Select)
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc || stmt.Limit == nil {
		t.Fatalf("lower-case SQL misparsed: %+v", stmt)
	}
}

func TestComments(t *testing.T) {
	stmt := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\n").(*Select)
	if stmt.From.Table != "t" {
		t.Fatalf("comment handling broke FROM: %+v", stmt)
	}
}

func TestQuotedIdent(t *testing.T) {
	stmt := mustParse(t, `SELECT "select" FROM "order"`).(*Select)
	if stmt.From.Table != "order" {
		t.Errorf("quoted table = %q", stmt.From.Table)
	}
	if c, ok := stmt.Items[0].Expr.(*expr.ColRef); !ok || c.Column != "select" {
		t.Errorf("quoted column = %+v", stmt.Items[0].Expr)
	}
}

func TestNumericLiterals(t *testing.T) {
	stmt := mustParse(t, "SELECT 1, 2.5, 1e3, 2E-2 FROM t").(*Select)
	wantTypes := []sqltypes.Type{sqltypes.Int, sqltypes.Real, sqltypes.Real, sqltypes.Real}
	for i, w := range wantTypes {
		l, ok := stmt.Items[i].Expr.(*expr.Literal)
		if !ok || l.Val.Type() != w {
			t.Errorf("literal %d = %v, want %v", i, stmt.Items[i].Expr, w)
		}
	}
	if stmt.Items[2].Expr.(*expr.Literal).Val.Real() != 1000 {
		t.Error("1e3 misparsed")
	}
}

func TestErrorMessagesMentionPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE a ~ 1")
	if err == nil || !strings.Contains(err.Error(), "byte") {
		t.Errorf("error lacks position: %v", err)
	}
}
