package sqlparse

import "testing"

func scanAll(t *testing.T, src string) []token {
	t.Helper()
	l := lexer{src: src}
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerTokens(t *testing.T) {
	toks := scanAll(t, `SELECT a1, "quo ted", 'str''ing', 42, 4.5, 1e3, ?, <>, !=, <=, >= || -- c`)
	type want struct {
		kind tokenKind
		text string
	}
	wants := []want{
		{tokKeyword, "SELECT"},
		{tokIdent, "a1"}, {tokOp, ","},
		{tokIdent, "quo ted"}, {tokOp, ","},
		{tokString, "str'ing"}, {tokOp, ","},
		{tokInt, "42"}, {tokOp, ","},
		{tokFloat, "4.5"}, {tokOp, ","},
		{tokFloat, "1e3"}, {tokOp, ","},
		{tokParam, "?"}, {tokOp, ","},
		{tokOp, "<>"}, {tokOp, ","},
		{tokOp, "<>"}, {tokOp, ","}, // != normalizes
		{tokOp, "<="}, {tokOp, ","},
		{tokOp, ">="}, {tokOp, "||"},
	}
	if len(toks) != len(wants) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(wants), toks)
	}
	for i, w := range wants {
		if toks[i].kind != w.kind || toks[i].text != w.text {
			t.Errorf("token %d = (%d, %q), want (%d, %q)", i, toks[i].kind, toks[i].text, w.kind, w.text)
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := map[string]struct {
		kind tokenKind
		text string
	}{
		"7":    {tokInt, "7"},
		"7.25": {tokFloat, "7.25"},
		"2e10": {tokFloat, "2e10"},
		"2E-3": {tokFloat, "2E-3"},
		"2e+3": {tokFloat, "2e+3"},
		".5":   {tokFloat, ".5"},
		"3.":   {tokInt, "3"}, // trailing dot is a separate op
	}
	for src, w := range cases {
		toks := scanAll(t, src)
		if toks[0].kind != w.kind || toks[0].text != w.text {
			t.Errorf("%q -> (%d, %q), want (%d, %q)", src, toks[0].kind, toks[0].text, w.kind, w.text)
		}
	}
	// 2e without digits: the e binds as an identifier start, not an exponent.
	toks := scanAll(t, "2e ")
	if toks[0].text != "2" || toks[1].text != "e" {
		t.Errorf("2e -> %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "@"} {
		l := lexer{src: src}
		var err error
		for err == nil {
			var tok token
			tok, err = l.next()
			if err == nil && tok.kind == tokEOF {
				t.Fatalf("lex %q reached EOF without error", src)
			}
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := scanAll(t, "a -- everything here\n-- and here\nb")
	if len(toks) != 2 || toks[0].text != "a" || toks[1].text != "b" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestTokenString(t *testing.T) {
	if (token{kind: tokEOF}).String() != "end of input" {
		t.Error("EOF render")
	}
	if (token{kind: tokString, text: "x"}).String() != "'x'" {
		t.Error("string render")
	}
	if (token{kind: tokIdent, text: "id"}).String() != "id" {
		t.Error("ident render")
	}
}
