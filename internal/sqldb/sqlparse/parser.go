package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"ordxml/internal/sqldb/expr"
	"ordxml/internal/sqldb/sqltypes"
)

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	p := &parser{lex: lexer{src: sql}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.unexpected("end of statement")
	}
	return stmt, nil
}

type parser struct {
	lex       lexer
	tok       token
	numParams int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) unexpected(want string) error {
	return fmt.Errorf("SQL syntax error at byte %d: unexpected %s, want %s", p.tok.pos, p.tok, want)
}

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) (bool, error) {
	if p.isKw(kw) {
		return true, p.advance()
	}
	return false, nil
}

// expectKw requires the keyword.
func (p *parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return p.unexpected(kw)
	}
	return p.advance()
}

// isOp reports whether the current token is the given operator.
func (p *parser) isOp(op string) bool {
	return p.tok.kind == tokOp && p.tok.text == op
}

func (p *parser) acceptOp(op string) (bool, error) {
	if p.isOp(op) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.unexpected(fmt.Sprintf("%q", op))
	}
	return p.advance()
}

// ident requires an identifier (or non-reserved keyword used as a name).
func (p *parser) ident() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.unexpected("identifier")
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("EXPLAIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		analyze, err := p.acceptKw("ANALYZE")
		if err != nil {
			return nil, err
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	default:
		return nil, p.unexpected("statement keyword")
	}
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	unique, err := p.acceptKw("UNIQUE")
	if err != nil {
		return nil, err
	}
	switch {
	case p.isKw("TABLE"):
		if unique {
			return nil, p.unexpected("INDEX after UNIQUE")
		}
		return p.parseCreateTable()
	case p.isKw("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.unexpected("TABLE or INDEX")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.advance(); err != nil { // TABLE
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := sqltypes.ParseType(tname)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", cname, err)
		}
		col := ColumnDef{Name: cname, Type: typ}
		for {
			switch {
			case p.isKw("NOT"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
			case p.isKw("PRIMARY"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
				col.NotNull = true
			default:
				goto colDone
			}
		}
	colDone:
		cols = append(cols, col)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	if err := p.advance(); err != nil { // INDEX
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.advance(); err != nil { // DROP
		return nil, err
	}
	switch {
	case p.isKw("TABLE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.isKw("INDEX"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name}, nil
	default:
		return nil, p.unexpected("TABLE or INDEX")
	}
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &Insert{Table: table}
	if ok, err := p.acceptOp("("); err != nil {
		return nil, err
	} else if ok {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if ok, err := p.acceptKw("AS"); err != nil {
		return TableRef{}, err
	} else if ok {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
		return ref, nil
	}
	if p.tok.kind == tokIdent {
		ref.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
	}
	return ref, nil
}

func (p *parser) parseSelect() (Statement, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	stmt := &Select{}
	var err error
	if stmt.Distinct, err = p.acceptKw("DISTINCT"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	if stmt.From, err = p.parseTableRef(); err != nil {
		return nil, err
	}
	// JOINs (explicit) and comma joins (cross with WHERE).
	for {
		switch {
		case p.isKw("JOIN") || p.isKw("INNER") || p.isKw("LEFT"):
			j := Join{Kind: JoinInner}
			if ok, err := p.acceptKw("LEFT"); err != nil {
				return nil, err
			} else if ok {
				j.Kind = JoinLeft
				if _, err := p.acceptKw("OUTER"); err != nil {
					return nil, err
				}
			} else if _, err := p.acceptKw("INNER"); err != nil {
				return nil, err
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			if j.Table, err = p.parseTableRef(); err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			if j.On, err = p.parseExpr(); err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, j)
		case p.isOp(","):
			if err := p.advance(); err != nil {
				return nil, err
			}
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, Join{Kind: JoinInner, Table: ref,
				On: &expr.Literal{Val: sqltypes.NewBool(true)}})
		default:
			goto fromDone
		}
	}
fromDone:
	if ok, err := p.acceptKw("WHERE"); err != nil {
		return nil, err
	} else if ok {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptKw("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKw("HAVING"); err != nil {
		return nil, err
	} else if ok {
		if stmt.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptKw("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKw("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if _, err := p.acceptKw("ASC"); err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKw("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		if stmt.Limit, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptKw("OFFSET"); err != nil {
			return nil, err
		} else if ok {
			if stmt.Offset, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if ok, err := p.acceptOp("*"); err != nil {
		return SelectItem{}, err
	} else if ok {
		return SelectItem{Star: true}, nil
	}
	// t.* needs two-token lookahead; handle it by peeking after parsing an
	// identifier followed by `.` `*`.
	if p.tok.kind == tokIdent {
		save := *p
		name := p.tok.text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			if ok, err := p.acceptOp("*"); err != nil {
				return SelectItem{}, err
			} else if ok {
				return SelectItem{Star: true, StarTable: name}, nil
			}
		}
		*p = save // not t.*: rewind and parse as expression
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if ok, err := p.acceptKw("AS"); err != nil {
		return SelectItem{}, err
	} else if ok {
		if item.Alias, err = p.ident(); err != nil {
			return SelectItem{}, err
		}
	} else if p.tok.kind == tokIdent {
		item.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	stmt := &Update{Table: ref}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Column: col, Value: val})
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if ok, err := p.acceptKw("WHERE"); err != nil {
		return nil, err
	} else if ok {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt := &Delete{Table: ref}
	if ok, err := p.acceptKw("WHERE"); err != nil {
		return nil, err
	} else if ok {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// Expression grammar, loosest first:
//
//	expr      := orExpr
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := addExpr ((=|<>|<|<=|>|>=|LIKE) addExpr
//	           | [NOT] BETWEEN addExpr AND addExpr
//	           | [NOT] IN (expr, ...)
//	           | IS [NOT] NULL)?
//	addExpr   := mulExpr ((+|-|'||') mulExpr)*
//	mulExpr   := unary ((*|/|%) unary)*
//	unary     := - unary | primary
//	primary   := literal | ? | name | name.name | func(args) | (expr)

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.isKw("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNot, X: x}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: left, R: right}, nil
		}
	}
	not := false
	if p.isKw("NOT") {
		// Lookahead for NOT BETWEEN / NOT IN / NOT LIKE.
		save := *p
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKw("BETWEEN") && !p.isKw("IN") && !p.isKw("LIKE") {
			*p = save
			return left, nil
		}
		not = true
	}
	switch {
	case p.isKw("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var e expr.Expr = &expr.Binary{Op: expr.OpLike, L: left, R: right}
		if not {
			e = &expr.Unary{Op: expr.OpNot, X: e}
		}
		return e, nil
	case p.isKw("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.isKw("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &expr.In{X: left, List: list, Not: not}, nil
	case p.isKw("IS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot, err := p.acceptKw("NOT")
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{X: left, Not: isNot}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-" || p.tok.text == "||") {
		op := expr.OpAdd
		switch p.tok.text {
		case "-":
			op = expr.OpSub
		case "||":
			op = expr.OpConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMul() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		op := expr.OpMul
		switch p.tok.text {
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if l, ok := x.(*expr.Literal); ok {
			// Fold -literal for numeric literals.
			switch l.Val.Type() {
			case sqltypes.Int:
				return &expr.Literal{Val: sqltypes.NewInt(-l.Val.Int())}, nil
			case sqltypes.Real:
				return &expr.Literal{Val: sqltypes.NewReal(-l.Val.Real())}, nil
			}
		}
		return &expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer literal %q: %w", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.Literal{Val: sqltypes.NewInt(v)}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float literal %q: %w", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.Literal{Val: sqltypes.NewReal(v)}, nil
	case tokString:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.Literal{Val: sqltypes.NewText(v)}, nil
	case tokParam:
		idx := p.numParams
		p.numParams++
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &expr.Param{Index: idx}, nil
	case tokKeyword:
		switch p.tok.text {
		case "NULL":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &expr.Literal{Val: sqltypes.NullValue()}, nil
		case "TRUE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &expr.Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &expr.Literal{Val: sqltypes.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseAggregate()
		}
		return nil, p.unexpected("expression")
	case tokOp:
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.unexpected("expression")
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isOp("("): // function call
			if err := p.advance(); err != nil {
				return nil, err
			}
			upper := strings.ToUpper(name)
			var args []expr.Expr
			if !p.isOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if ok, err := p.acceptOp(","); err != nil {
						return nil, err
					} else if !ok {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			if !expr.IsScalarFunc(upper) {
				return nil, fmt.Errorf("unknown function %s", name)
			}
			return &expr.Call{Name: upper, Args: args}, nil
		case p.isOp("."):
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &expr.ColRef{Table: name, Column: col, Idx: -1}, nil
		default:
			return &expr.ColRef{Column: name, Idx: -1}, nil
		}
	default:
		return nil, p.unexpected("expression")
	}
}

func (p *parser) parseAggregate() (expr.Expr, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	agg := &expr.Aggregate{Name: name, Idx: -1}
	if ok, err := p.acceptOp("*"); err != nil {
		return nil, err
	} else if ok {
		if name != "COUNT" {
			return nil, fmt.Errorf("%s(*) is not valid", name)
		}
		agg.Star = true
	} else {
		if agg.Distinct, err = p.acceptKw("DISTINCT"); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return agg, nil
}
