package sqldb

import (
	"fmt"
	"strings"
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

// mustExec fails the test on error.
func mustExec(t *testing.T, db *DB, sql string, params ...sqltypes.Value) int {
	t.Helper()
	n, err := db.Exec(sql, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, params ...sqltypes.Value) *Result {
	t.Helper()
	res, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

// rowsAsStrings renders rows for compact comparison.
func rowsAsStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func wantRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowsAsStrings(res)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func setupEmployees(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE dept (id INT PRIMARY KEY, name TEXT NOT NULL)`)
	mustExec(t, db, `CREATE TABLE emp (
		id INT PRIMARY KEY, name TEXT NOT NULL, dept INT, salary INT, title TEXT)`)
	mustExec(t, db, `CREATE INDEX emp_dept ON emp (dept, salary)`)
	mustExec(t, db, `INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')`)
	mustExec(t, db, `INSERT INTO emp VALUES
		(1, 'ann', 1, 100, 'dev'),
		(2, 'bob', 1, 90, 'dev'),
		(3, 'cal', 2, 80, 'rep'),
		(4, 'dee', 2, 120, 'mgr'),
		(5, 'eve', NULL, 70, 'tmp')`)
	return db
}

func TestBasicSelect(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name, salary FROM emp WHERE salary >= 90 ORDER BY salary DESC")
	wantRows(t, res, "dee|120", "ann|100", "bob|90")
	if res.Columns[0] != "name" || res.Columns[1] != "salary" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT * FROM dept ORDER BY id")
	wantRows(t, res, "1|eng", "2|sales", "3|empty")
}

func TestParams(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name FROM emp WHERE dept = ? AND salary > ? ORDER BY name",
		I(1), I(95))
	wantRows(t, res, "ann")
}

func TestExpressionsInSelect(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name || '!' , salary * 2 FROM emp WHERE id = 1")
	wantRows(t, res, "ann!|200")
}

func TestInnerJoin(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT e.name, d.name FROM emp e
		JOIN dept d ON e.dept = d.id WHERE e.salary > 85 ORDER BY e.name`)
	wantRows(t, res, "ann|eng", "bob|eng", "dee|sales")
}

func TestCommaJoin(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT e.name, d.name FROM emp e, dept d
		WHERE e.dept = d.id AND d.name = 'sales' ORDER BY e.name`)
	wantRows(t, res, "cal|sales", "dee|sales")
}

func TestLeftJoin(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT d.name, e.name FROM dept d
		LEFT JOIN emp e ON e.dept = d.id ORDER BY d.name, e.name`)
	wantRows(t, res, "empty|NULL", "eng|ann", "eng|bob", "sales|cal", "sales|dee")
}

func TestLeftJoinWhereAfter(t *testing.T) {
	db := setupEmployees(t)
	// WHERE on the nullable side applies after the join: drops NULL-extended rows.
	res := mustQuery(t, db, `SELECT d.name, e.name FROM dept d
		LEFT JOIN emp e ON e.dept = d.id WHERE e.salary > 100 ORDER BY d.name`)
	wantRows(t, res, "sales|dee")
}

func TestGroupBy(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary)
		FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept`)
	wantRows(t, res, "1|2|190|90|100", "2|2|200|80|120")
}

func TestGroupByHaving(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT title, COUNT(*) FROM emp
		GROUP BY title HAVING COUNT(*) > 1 ORDER BY title`)
	wantRows(t, res, "dev|2")
}

func TestGlobalAggregate(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT COUNT(*), AVG(salary) FROM emp")
	wantRows(t, res, "5|92")
	// Global aggregate over an empty selection still yields one row.
	res = mustQuery(t, db, "SELECT COUNT(*), SUM(salary) FROM emp WHERE salary > 1000")
	wantRows(t, res, "0|NULL")
}

func TestOrderByAggregate(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, `SELECT title, COUNT(*) c FROM emp GROUP BY title
		ORDER BY c DESC, title LIMIT 2`)
	wantRows(t, res, "dev|2", "mgr|1")
}

func TestDistinct(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT DISTINCT title FROM emp ORDER BY title")
	wantRows(t, res, "dev", "mgr", "rep", "tmp")
}

func TestCountDistinct(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT COUNT(DISTINCT title) FROM emp")
	wantRows(t, res, "4")
}

func TestLimitOffset(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name FROM emp ORDER BY salary LIMIT 2 OFFSET 1")
	wantRows(t, res, "cal", "bob")
	res = mustQuery(t, db, "SELECT name FROM emp ORDER BY salary LIMIT ?", I(1))
	wantRows(t, res, "eve")
}

func TestLikeAndFunctions(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT UPPER(name) FROM emp WHERE name LIKE 'a%'")
	wantRows(t, res, "ANN")
	res = mustQuery(t, db, "SELECT name FROM emp WHERE LENGTH(title) = 3 AND name NOT LIKE '%e%' ORDER BY name")
	wantRows(t, res, "ann", "bob", "cal")
}

func TestInBetween(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name FROM emp WHERE salary BETWEEN 80 AND 100 ORDER BY name")
	wantRows(t, res, "ann", "bob", "cal")
	res = mustQuery(t, db, "SELECT name FROM emp WHERE title IN ('mgr', 'rep') ORDER BY name")
	wantRows(t, res, "cal", "dee")
}

func TestNullHandling(t *testing.T) {
	db := setupEmployees(t)
	// dept = NULL never matches; IS NULL does.
	res := mustQuery(t, db, "SELECT name FROM emp WHERE dept = NULL")
	wantRows(t, res)
	res = mustQuery(t, db, "SELECT name FROM emp WHERE dept IS NULL")
	wantRows(t, res, "eve")
}

func TestUpdate(t *testing.T) {
	db := setupEmployees(t)
	n := mustExec(t, db, "UPDATE emp SET salary = salary + 10 WHERE dept = 1")
	if n != 2 {
		t.Fatalf("updated %d rows", n)
	}
	res := mustQuery(t, db, "SELECT salary FROM emp WHERE id IN (1, 2) ORDER BY id")
	wantRows(t, res, "110", "100")
	// Update via unique index must keep the index consistent.
	mustExec(t, db, "UPDATE emp SET id = 10 WHERE id = 1")
	res = mustQuery(t, db, "SELECT name FROM emp WHERE id = 10")
	wantRows(t, res, "ann")
	res = mustQuery(t, db, "SELECT name FROM emp WHERE id = 1")
	wantRows(t, res)
}

func TestDelete(t *testing.T) {
	db := setupEmployees(t)
	n := mustExec(t, db, "DELETE FROM emp WHERE salary < 85")
	if n != 2 {
		t.Fatalf("deleted %d rows", n)
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM emp")
	wantRows(t, res, "3")
	n = mustExec(t, db, "DELETE FROM emp")
	if n != 3 {
		t.Fatalf("deleted %d rows", n)
	}
	res = mustQuery(t, db, "SELECT COUNT(*) FROM emp")
	wantRows(t, res, "0")
}

func TestUniqueViolation(t *testing.T) {
	db := setupEmployees(t)
	if _, err := db.Exec("INSERT INTO emp VALUES (1, 'dup', 1, 1, 'x')"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if _, err := db.Exec("UPDATE emp SET id = 2 WHERE id = 1"); err == nil {
		t.Fatal("duplicate key via update accepted")
	}
}

func TestIndexScanChosen(t *testing.T) {
	db := setupEmployees(t)
	p, err := db.Explain("SELECT name FROM emp WHERE dept = 1 AND salary > 50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "IndexScan emp using emp_dept") {
		t.Errorf("plan does not use composite index:\n%s", p)
	}
	// Equality on pk.
	p, _ = db.Explain("SELECT name FROM emp WHERE id = 3")
	if !strings.Contains(p, "IndexScan emp using emp_pkey") {
		t.Errorf("plan does not use pkey:\n%s", p)
	}
	// No usable index -> seq scan.
	p, _ = db.Explain("SELECT name FROM emp WHERE salary = 100")
	if !strings.Contains(p, "SeqScan") {
		t.Errorf("expected seq scan:\n%s", p)
	}
}

func TestIndexProvidesOrder(t *testing.T) {
	db := setupEmployees(t)
	p, err := db.Explain("SELECT name FROM emp WHERE dept = 1 ORDER BY salary")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p, "Sort") {
		t.Errorf("sort not elided by index order:\n%s", p)
	}
	res := mustQuery(t, db, "SELECT name FROM emp WHERE dept = 1 ORDER BY salary")
	wantRows(t, res, "bob", "ann")
}

func TestLikePrefixUsesIndex(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE paths (p TEXT PRIMARY KEY, v INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO paths VALUES (?, ?)", S(fmt.Sprintf("1.%d", i)), I(int64(i)))
	}
	mustExec(t, db, "INSERT INTO paths VALUES ('2.1', 99)")
	p, err := db.Explain("SELECT v FROM paths WHERE p LIKE '1.4%'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "IndexScan") {
		t.Errorf("LIKE prefix did not use index:\n%s", p)
	}
	res := mustQuery(t, db, "SELECT v FROM paths WHERE p LIKE '1.4%' ORDER BY v")
	wantRows(t, res, "4", "40", "41", "42", "43", "44", "45", "46", "47", "48", "49")
}

func TestJoinAlgorithmChoice(t *testing.T) {
	db := setupEmployees(t)
	// Inner table with a matching index: correlated index nested loops.
	p, err := db.Explain("SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "IndexNLJoin dept using dept_pkey") {
		t.Errorf("equi join with inner index did not use IndexNLJoin:\n%s", p)
	}
	// A correlated range also drives IndexNLJoin.
	p, _ = db.Explain("SELECT e.name FROM emp e JOIN dept d ON e.dept < d.id")
	if !strings.Contains(p, "IndexNLJoin dept using dept_pkey") {
		t.Errorf("range join with inner index did not use IndexNLJoin:\n%s", p)
	}
	// No usable inner index: hash join for equality.
	mustExec(t, db, "CREATE TABLE noix (k INT, v TEXT)")
	mustExec(t, db, "INSERT INTO noix VALUES (1, 'x')")
	p, _ = db.Explain("SELECT e.name FROM emp e JOIN noix n ON n.k = e.dept")
	if !strings.Contains(p, "HashJoin") {
		t.Errorf("equi join without inner index did not use hash join:\n%s", p)
	}
	// Neither index nor equality: nested loops.
	p, _ = db.Explain("SELECT e.name FROM emp e JOIN noix n ON n.k < e.dept")
	if !strings.Contains(p, "NestedLoopJoin") {
		t.Errorf("non-equi join without index did not use NL join:\n%s", p)
	}
}

func TestIndexNLJoinResults(t *testing.T) {
	db := setupEmployees(t)
	// Same queries as TestInnerJoin but verifying correctness through the
	// IndexNLJoin path.
	res := mustQuery(t, db, `SELECT e.name, d.name FROM emp e
		JOIN dept d ON e.dept = d.id WHERE e.salary > 85 ORDER BY e.name`)
	wantRows(t, res, "ann|eng", "bob|eng", "dee|sales")
	// NULL join keys never match.
	res = mustQuery(t, db, `SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id
		WHERE e.name = 'eve'`)
	wantRows(t, res)
	// Correlated range join.
	res = mustQuery(t, db, `SELECT e.name, d.id FROM emp e JOIN dept d ON d.id > e.dept
		WHERE e.name = 'ann' ORDER BY d.id`)
	wantRows(t, res, "ann|2", "ann|3")
}

func TestThreeWayJoin(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE a (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE TABLE b (id INT PRIMARY KEY, aid INT)")
	mustExec(t, db, "CREATE TABLE c (id INT PRIMARY KEY, bid INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 'x'), (2, 'y')")
	mustExec(t, db, "INSERT INTO b VALUES (10, 1), (11, 2)")
	mustExec(t, db, "INSERT INTO c VALUES (100, 10), (101, 11), (102, 10)")
	res := mustQuery(t, db, `SELECT a.v, c.id FROM a
		JOIN b ON b.aid = a.id JOIN c ON c.bid = b.id ORDER BY c.id`)
	wantRows(t, res, "x|100", "y|101", "x|102")
}

func TestPrepared(t *testing.T) {
	db := setupEmployees(t)
	q, err := db.Prepare("SELECT name FROM emp WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int64]string{1: "ann", 3: "cal"} {
		res, err := q.Query(I(id))
		if err != nil {
			t.Fatal(err)
		}
		wantRows(t, res, want)
	}
	ins, err := db.Prepare("INSERT INTO dept VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(I(7), S("ops")); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT name FROM dept WHERE id = 7")
	wantRows(t, res, "ops")
}

func TestErrors(t *testing.T) {
	db := setupEmployees(t)
	bad := []string{
		"SELECT nope FROM emp",
		"SELECT name FROM nope",
		"SELECT e.name FROM emp e JOIN emp e ON 1 = 1", // duplicate alias
		"SELECT name, COUNT(*) FROM emp",               // bare column with aggregate
		"INSERT INTO emp (nope) VALUES (1)",
		"INSERT INTO emp (id, id) VALUES (1, 2)",
		"INSERT INTO emp VALUES (1)",
		"UPDATE emp SET nope = 1",
		"UPDATE emp SET id = 1, id = 2",
		"DELETE FROM nope",
		"SELECT name FROM emp LIMIT name",
		"SELECT name FROM emp ORDER BY salary LIMIT salary",
	}
	for _, sql := range bad {
		_, qerr := db.Query(sql)
		_, eerr := db.Exec(sql)
		if qerr == nil && eerr == nil {
			t.Errorf("%q did not error", sql)
		}
	}
	if _, err := db.Exec("SELECT name FROM emp"); err == nil {
		t.Error("Exec accepted SELECT")
	}
	if _, err := db.Query("DELETE FROM emp"); err == nil {
		t.Error("Query accepted DELETE")
	}
}

func TestAliasInOrderBy(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name, salary * 2 AS double FROM emp ORDER BY double DESC LIMIT 1")
	wantRows(t, res, "dee|240")
}

func TestOrderByExpressionNotInSelect(t *testing.T) {
	db := setupEmployees(t)
	res := mustQuery(t, db, "SELECT name FROM emp ORDER BY salary % 7, name LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", rowsAsStrings(res))
	}
	// Hidden sort column must not leak.
	if len(res.Columns) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("hidden sort key leaked: %v / %v", res.Columns, res.Rows[0])
	}
}

func TestCounters(t *testing.T) {
	db := setupEmployees(t)
	before := db.Counters()
	mustQuery(t, db, "SELECT name FROM emp WHERE dept = 1")
	d := db.Counters().Sub(before)
	if d.IndexProbes == 0 {
		t.Errorf("index query did no probes: %+v", d)
	}
	if d.RowsScanned != 0 {
		t.Errorf("index query did a seq scan: %+v", d)
	}
	before = db.Counters()
	mustQuery(t, db, "SELECT name FROM emp WHERE salary = 100")
	d = db.Counters().Sub(before)
	if d.RowsScanned != 5 {
		t.Errorf("seq scan scanned %d rows", d.RowsScanned)
	}
}

func TestExplainDML(t *testing.T) {
	db := setupEmployees(t)
	p, err := db.Explain("EXPLAIN UPDATE emp SET salary = 1 WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "Update emp") || !strings.Contains(p, "IndexScan") {
		t.Errorf("explain update:\n%s", p)
	}
	p, _ = db.Explain("DELETE FROM emp WHERE id = 2")
	if !strings.Contains(p, "Delete emp") {
		t.Errorf("explain delete:\n%s", p)
	}
	p, _ = db.Explain("INSERT INTO dept VALUES (9, 'x')")
	if !strings.Contains(p, "Insert dept") {
		t.Errorf("explain insert:\n%s", p)
	}
}

func TestDDLRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "CREATE INDEX i ON t (a)")
	mustExec(t, db, "DROP INDEX i")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestValueHelpers(t *testing.T) {
	if I(1).Int() != 1 || S("x").Text() != "x" || F(1.5).Real() != 1.5 ||
		string(B([]byte("b")).Blob()) != "b" || !Null().IsNull() {
		t.Error("value helpers broken")
	}
}
