package expr

import (
	"strings"
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

func lit(v sqltypes.Value) Expr { return &Literal{Val: v} }
func i(n int64) Expr            { return lit(sqltypes.NewInt(n)) }
func s(v string) Expr           { return lit(sqltypes.NewText(v)) }
func b(v bool) Expr             { return lit(sqltypes.NewBool(v)) }
func null() Expr                { return lit(sqltypes.NullValue()) }

func evalOK(t *testing.T, e Expr) sqltypes.Value {
	t.Helper()
	v, err := Eval(e, &Env{})
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{&Binary{OpEq, i(1), i(1)}, true},
		{&Binary{OpNe, i(1), i(2)}, true},
		{&Binary{OpLt, i(1), i(2)}, true},
		{&Binary{OpLe, i(2), i(2)}, true},
		{&Binary{OpGt, i(3), i(2)}, true},
		{&Binary{OpGe, i(1), i(2)}, false},
		{&Binary{OpEq, s("a"), s("a")}, true},
		{&Binary{OpLt, s("a"), s("b")}, true},
		{&Binary{OpEq, i(2), lit(sqltypes.NewReal(2.0))}, true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e); got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Incomparable types error out.
	if _, err := Eval(&Binary{OpEq, i(1), s("a")}, &Env{}); err == nil {
		t.Error("INT = TEXT evaluated")
	}
}

func TestNullPropagation(t *testing.T) {
	exprs := []Expr{
		&Binary{OpEq, null(), i(1)},
		&Binary{OpAdd, null(), i(1)},
		&Unary{OpNeg, null()},
		&Unary{OpNot, null()},
		&Between{X: null(), Lo: i(1), Hi: i(2)},
	}
	for _, e := range exprs {
		if got := evalOK(t, e); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", e, got)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T, F, N := b(true), b(false), null()
	cases := []struct {
		e    Expr
		want string
	}{
		{&Binary{OpAnd, T, T}, "TRUE"},
		{&Binary{OpAnd, T, F}, "FALSE"},
		{&Binary{OpAnd, F, N}, "FALSE"}, // short-circuit
		{&Binary{OpAnd, N, F}, "FALSE"},
		{&Binary{OpAnd, T, N}, "NULL"},
		{&Binary{OpAnd, N, N}, "NULL"},
		{&Binary{OpOr, F, F}, "FALSE"},
		{&Binary{OpOr, T, N}, "TRUE"},
		{&Binary{OpOr, N, T}, "TRUE"},
		{&Binary{OpOr, F, N}, "NULL"},
		{&Binary{OpOr, N, N}, "NULL"},
	}
	for _, c := range cases {
		got := evalOK(t, c.e)
		if got.String() != c.want {
			t.Errorf("%s = %v, want %s", c.e, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{&Binary{OpAdd, i(2), i(3)}, sqltypes.NewInt(5)},
		{&Binary{OpSub, i(2), i(3)}, sqltypes.NewInt(-1)},
		{&Binary{OpMul, i(4), i(3)}, sqltypes.NewInt(12)},
		{&Binary{OpDiv, i(7), i(2)}, sqltypes.NewInt(3)},
		{&Binary{OpMod, i(7), i(2)}, sqltypes.NewInt(1)},
		{&Binary{OpAdd, i(1), lit(sqltypes.NewReal(0.5))}, sqltypes.NewReal(1.5)},
		{&Unary{OpNeg, i(5)}, sqltypes.NewInt(-5)},
		{&Binary{OpConcat, s("a"), s("b")}, sqltypes.NewText("ab")},
		{&Binary{OpConcat, s("n"), i(1)}, sqltypes.NewText("n1")},
	}
	for _, c := range cases {
		got := evalOK(t, c.e)
		if !sqltypes.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	for _, e := range []Expr{
		&Binary{OpDiv, i(1), i(0)},
		&Binary{OpMod, i(1), i(0)},
		&Binary{OpAdd, s("a"), i(1)},
	} {
		if _, err := Eval(e, &Env{}); err == nil {
			t.Errorf("%s evaluated without error", e)
		}
	}
}

func TestBetweenInIsNull(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&Between{X: i(5), Lo: i(1), Hi: i(10)}, "TRUE"},
		{&Between{X: i(0), Lo: i(1), Hi: i(10)}, "FALSE"},
		{&Between{X: i(5), Lo: i(1), Hi: i(10), Not: true}, "FALSE"},
		{&In{X: i(2), List: []Expr{i(1), i(2)}}, "TRUE"},
		{&In{X: i(3), List: []Expr{i(1), i(2)}}, "FALSE"},
		{&In{X: i(3), List: []Expr{i(1), i(2)}, Not: true}, "TRUE"},
		{&In{X: i(3), List: []Expr{i(1), null()}}, "NULL"},
		{&In{X: i(1), List: []Expr{null(), i(1)}}, "TRUE"},
		{&IsNull{X: null()}, "TRUE"},
		{&IsNull{X: i(1)}, "FALSE"},
		{&IsNull{X: null(), Not: true}, "FALSE"},
	}
	for _, c := range cases {
		got := evalOK(t, c.e)
		if got.String() != c.want {
			t.Errorf("%s = %v, want %s", c.e, got, c.want)
		}
	}
}

func TestColRefAndParams(t *testing.T) {
	env := &Env{
		Row:    sqltypes.Row{sqltypes.NewInt(10), sqltypes.NewText("x")},
		Params: []sqltypes.Value{sqltypes.NewInt(99)},
	}
	c := &ColRef{Column: "a", Idx: 0}
	v, err := Eval(c, env)
	if err != nil || v.Int() != 10 {
		t.Fatalf("ColRef = %v, %v", v, err)
	}
	p, err := Eval(&Param{Index: 0}, env)
	if err != nil || p.Int() != 99 {
		t.Fatalf("Param = %v, %v", p, err)
	}
	if _, err := Eval(&Param{Index: 5}, env); err == nil {
		t.Error("unbound param evaluated")
	}
	if _, err := Eval(&ColRef{Column: "z", Idx: 9}, env); err == nil {
		t.Error("out-of-range colref evaluated")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want sqltypes.Value
	}{
		{&Call{Name: "LENGTH", Args: []Expr{s("abc")}}, sqltypes.NewInt(3)},
		{&Call{Name: "UPPER", Args: []Expr{s("ab")}}, sqltypes.NewText("AB")},
		{&Call{Name: "LOWER", Args: []Expr{s("AB")}}, sqltypes.NewText("ab")},
		{&Call{Name: "ABS", Args: []Expr{i(-4)}}, sqltypes.NewInt(4)},
		{&Call{Name: "SUBSTR", Args: []Expr{s("hello"), i(2)}}, sqltypes.NewText("ello")},
		{&Call{Name: "SUBSTR", Args: []Expr{s("hello"), i(2), i(3)}}, sqltypes.NewText("ell")},
		{&Call{Name: "SUBSTR", Args: []Expr{s("hi"), i(9)}}, sqltypes.NewText("")},
		{&Call{Name: "COALESCE", Args: []Expr{null(), i(2), i(3)}}, sqltypes.NewInt(2)},
		{&Call{Name: "LENGTH", Args: []Expr{null()}}, sqltypes.NullValue()},
	}
	for _, c := range cases {
		got := evalOK(t, c.e)
		if !sqltypes.Equal(got, c.want) || got.IsNull() != c.want.IsNull() {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := Eval(&Call{Name: "NOPE", Args: nil}, &Env{}); err == nil {
		t.Error("unknown function evaluated")
	}
	if !IsScalarFunc("LENGTH") || IsScalarFunc("NOPE") {
		t.Error("IsScalarFunc misreports")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "ab", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%pi", true},
		{"1.2.3", "1.2.%", true},
		{"1.22.3", "1.2.%", false},
	}
	for _, c := range cases {
		e := &Binary{OpLike, s(c.s), s(c.p)}
		if got := evalOK(t, e); got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikePrefix(t *testing.T) {
	cases := []struct {
		p      string
		prefix string
		exact  bool
	}{
		{"abc%", "abc", true},
		{"abc", "abc", false},
		{"a%c", "a", false},
		{"a_", "a", false},
		{"%", "", true},
	}
	for _, c := range cases {
		prefix, exact := LikePrefix(c.p)
		if prefix != c.prefix || exact != c.exact {
			t.Errorf("LikePrefix(%q) = %q,%v want %q,%v", c.p, prefix, exact, c.prefix, c.exact)
		}
	}
}

func TestEvalBool(t *testing.T) {
	for _, c := range []struct {
		e    Expr
		want bool
	}{
		{b(true), true},
		{b(false), false},
		{null(), false},
	} {
		got, err := EvalBool(c.e, &Env{})
		if err != nil || got != c.want {
			t.Errorf("EvalBool(%s) = %v, %v", c.e, got, err)
		}
	}
	if _, err := EvalBool(i(1), &Env{}); err == nil {
		t.Error("EvalBool of INT succeeded")
	}
}

func TestResolve(t *testing.T) {
	schema := Schema{
		{Table: "t", Column: "a", Type: sqltypes.Int},
		{Table: "t", Column: "b", Type: sqltypes.Text},
		{Table: "u", Column: "a", Type: sqltypes.Int},
	}
	e := &Binary{OpEq, &ColRef{Table: "t", Column: "a"}, &ColRef{Table: "u", Column: "A"}}
	if err := Resolve(e, schema); err != nil {
		t.Fatal(err)
	}
	if e.L.(*ColRef).Idx != 0 || e.R.(*ColRef).Idx != 2 {
		t.Errorf("resolved idx = %d, %d", e.L.(*ColRef).Idx, e.R.(*ColRef).Idx)
	}
	// Unqualified ambiguous reference.
	if err := Resolve(&ColRef{Column: "a"}, schema); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous resolve: %v", err)
	}
	// Unqualified unique reference.
	c := &ColRef{Column: "b"}
	if err := Resolve(c, schema); err != nil || c.Idx != 1 {
		t.Errorf("resolve b: %v idx=%d", err, c.Idx)
	}
	if err := Resolve(&ColRef{Column: "zz"}, schema); err == nil {
		t.Error("missing column resolved")
	}
}

func TestAggState(t *testing.T) {
	add := func(st *AggState, vals ...sqltypes.Value) {
		t.Helper()
		for _, v := range vals {
			if err := st.Add(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	vi := sqltypes.NewInt
	count, _ := NewAggState("COUNT", false)
	add(count, vi(1), sqltypes.NullValue(), vi(2))
	if got := count.Result(); got.Int() != 2 {
		t.Errorf("COUNT = %v", got)
	}
	sum, _ := NewAggState("SUM", false)
	add(sum, vi(1), vi(2), vi(3))
	if got := sum.Result(); got.Int() != 6 {
		t.Errorf("SUM = %v", got)
	}
	sumEmpty, _ := NewAggState("SUM", false)
	if got := sumEmpty.Result(); !got.IsNull() {
		t.Errorf("SUM of nothing = %v", got)
	}
	avg, _ := NewAggState("AVG", false)
	add(avg, vi(1), vi(2))
	if got := avg.Result(); got.Real() != 1.5 {
		t.Errorf("AVG = %v", got)
	}
	min, _ := NewAggState("MIN", false)
	add(min, vi(5), vi(2), vi(9))
	if got := min.Result(); got.Int() != 2 {
		t.Errorf("MIN = %v", got)
	}
	max, _ := NewAggState("MAX", false)
	add(max, vi(5), vi(9), vi(2))
	if got := max.Result(); got.Int() != 9 {
		t.Errorf("MAX = %v", got)
	}
	dist, _ := NewAggState("COUNT", true)
	add(dist, vi(1), vi(1), vi(2))
	if got := dist.Result(); got.Int() != 2 {
		t.Errorf("COUNT DISTINCT = %v", got)
	}
	star, _ := NewAggState("COUNT", false)
	star.AddStar()
	star.AddStar()
	if got := star.Result(); got.Int() != 2 {
		t.Errorf("COUNT(*) = %v", got)
	}
	if _, err := NewAggState("WAT", false); err == nil {
		t.Error("unknown aggregate accepted")
	}
	bad, _ := NewAggState("SUM", false)
	if err := bad.Add(sqltypes.NewText("x")); err == nil {
		t.Error("SUM of TEXT accepted")
	}
}

func TestWalkAndHasAggregate(t *testing.T) {
	agg := &Aggregate{Name: "COUNT", Star: true}
	e := &Binary{OpAnd,
		&Binary{OpGt, agg, i(1)},
		&In{X: &ColRef{Column: "c"}, List: []Expr{i(1), i(2)}},
	}
	if !HasAggregate(e) {
		t.Error("HasAggregate missed COUNT(*)")
	}
	if HasAggregate(&Binary{OpEq, i(1), i(1)}) {
		t.Error("HasAggregate false positive")
	}
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	if n != 8 {
		t.Errorf("Walk visited %d nodes, want 8", n)
	}
}

func TestStrings(t *testing.T) {
	e := &Binary{OpAnd,
		&Between{X: &ColRef{Table: "t", Column: "a"}, Lo: i(1), Hi: i(2), Not: true},
		&IsNull{X: &Param{}},
	}
	want := "((t.a NOT BETWEEN 1 AND 2) AND (? IS NULL))"
	if got := e.String(); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
	a := &Aggregate{Name: "SUM", Arg: &ColRef{Column: "x"}, Distinct: true}
	if a.String() != "SUM(DISTINCT x)" {
		t.Errorf("agg String = %s", a.String())
	}
}
