package expr

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/sqltypes"
)

// SchemaColumn describes one column of a runtime row for name resolution.
type SchemaColumn struct {
	Table  string // alias under which the column is visible (may be empty)
	Column string
	Type   sqltypes.Type
}

// Schema is the ordered column layout of rows flowing through an operator.
type Schema []SchemaColumn

// Find returns the index of the column matching the reference, or an error
// if it is absent or ambiguous. Matching is case-insensitive.
func (s Schema) Find(table, column string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Column, column) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("ambiguous column reference %s", refName(table, column))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("no such column %s", refName(table, column))
	}
	return found, nil
}

func refName(table, column string) string {
	if table != "" {
		return table + "." + column
	}
	return column
}

// Resolve fills in ColRef.Idx for every column reference in e against the
// schema. Aggregates' arguments are resolved too.
func Resolve(e Expr, s Schema) error {
	var rerr error
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*ColRef); ok {
			idx, err := s.Find(c.Table, c.Column)
			if err != nil {
				rerr = err
				return false
			}
			c.Idx = idx
		}
		return true
	})
	return rerr
}

// AggState accumulates one aggregate over a group of rows.
type AggState struct {
	name     string
	distinct bool
	seen     map[string]struct{}
	count    int64
	sumI     int64
	sumF     float64
	isReal   bool
	minMax   sqltypes.Value
	hasVal   bool
}

// NewAggState returns an accumulator for the named aggregate
// (COUNT/SUM/AVG/MIN/MAX, upper-case).
func NewAggState(name string, distinct bool) (*AggState, error) {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
	default:
		return nil, fmt.Errorf("unknown aggregate %s", name)
	}
	st := &AggState{name: name, distinct: distinct}
	if distinct {
		st.seen = map[string]struct{}{}
	}
	return st, nil
}

// AddStar counts a row for COUNT(*).
func (a *AggState) AddStar() { a.count++ }

// Add folds one argument value into the aggregate. NULLs are ignored per SQL.
func (a *AggState) Add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		key := string(sqltypes.EncodeKey(nil, v))
		if _, dup := a.seen[key]; dup {
			return nil
		}
		a.seen[key] = struct{}{}
	}
	a.count++
	switch a.name {
	case "COUNT":
	case "SUM", "AVG":
		switch v.Type() {
		case sqltypes.Int:
			a.sumI += v.Int()
			a.sumF += float64(v.Int())
		case sqltypes.Real:
			a.isReal = true
			a.sumF += v.Real()
		default:
			return fmt.Errorf("%s of %s", a.name, v.Type())
		}
	case "MIN":
		if !a.hasVal || sqltypes.Compare(v, a.minMax) < 0 {
			a.minMax = v
		}
		a.hasVal = true
	case "MAX":
		if !a.hasVal || sqltypes.Compare(v, a.minMax) > 0 {
			a.minMax = v
		}
		a.hasVal = true
	}
	return nil
}

// Result produces the aggregate value; SUM/AVG/MIN/MAX of no rows is NULL,
// COUNT is 0.
func (a *AggState) Result() sqltypes.Value {
	switch a.name {
	case "COUNT":
		return sqltypes.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return sqltypes.NullValue()
		}
		if a.isReal {
			return sqltypes.NewReal(a.sumF)
		}
		return sqltypes.NewInt(a.sumI)
	case "AVG":
		if a.count == 0 {
			return sqltypes.NullValue()
		}
		return sqltypes.NewReal(a.sumF / float64(a.count))
	default: // MIN, MAX
		if !a.hasVal {
			return sqltypes.NullValue()
		}
		return a.minMax
	}
}
