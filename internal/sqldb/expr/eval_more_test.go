package expr

import (
	"testing"

	"ordxml/internal/sqldb/sqltypes"
)

// Additional evaluator branch coverage: logical type errors, PREFIX_SUCC,
// function arity, clone independence.

func TestLogicalTypeErrors(t *testing.T) {
	bad := []Expr{
		&Binary{OpAnd, i(1), b(true)},
		&Binary{OpOr, b(false), i(1)},
		&Binary{OpAnd, b(true), i(1)}, // right side checked after short-circuit fails
		&Unary{OpNot, i(3)},
		&Unary{OpNeg, s("x")},
		&Binary{OpLike, i(1), s("%")},
		&Binary{OpLike, s("x"), i(1)},
		&Binary{OpMod, lit(sqltypes.NewReal(1.5)), i(2)},
	}
	for _, e := range bad {
		if _, err := Eval(e, &Env{}); err == nil {
			t.Errorf("%s evaluated without error", e)
		}
	}
	// AND short-circuits before seeing a bad right side.
	ok := &Binary{OpAnd, b(false), i(1)}
	v, err := Eval(ok, &Env{})
	if err != nil || v.Bool() {
		t.Errorf("short circuit: %v, %v", v, err)
	}
}

func TestPrefixSuccFunction(t *testing.T) {
	succ := func(arg sqltypes.Value) sqltypes.Value {
		v, err := Eval(&Call{Name: "PREFIX_SUCC", Args: []Expr{lit(arg)}}, &Env{})
		if err != nil {
			t.Fatalf("PREFIX_SUCC(%v): %v", arg, err)
		}
		return v
	}
	if got := succ(sqltypes.NewBlob([]byte{1, 2})); string(got.Blob()) != string([]byte{1, 3}) {
		t.Errorf("blob succ = %x", got.Blob())
	}
	if got := succ(sqltypes.NewBlob([]byte{1, 0xFF})); string(got.Blob()) != string([]byte{2}) {
		t.Errorf("blob succ with 0xFF = %x", got.Blob())
	}
	if got := succ(sqltypes.NewBlob([]byte{0xFF})); !got.IsNull() {
		t.Errorf("all-0xFF succ = %v", got)
	}
	if got := succ(sqltypes.NewText("ab")); got.Text() != "ac" {
		t.Errorf("text succ = %q", got.Text())
	}
	if got := succ(sqltypes.NullValue()); !got.IsNull() {
		t.Errorf("NULL succ = %v", got)
	}
	if _, err := Eval(&Call{Name: "PREFIX_SUCC", Args: []Expr{i(1)}}, &Env{}); err == nil {
		t.Error("PREFIX_SUCC of INT accepted")
	}
	if _, err := Eval(&Call{Name: "PREFIX_SUCC", Args: []Expr{s("a"), s("b")}}, &Env{}); err == nil {
		t.Error("PREFIX_SUCC arity not enforced")
	}
}

func TestFunctionArityAndTypes(t *testing.T) {
	bad := []Expr{
		&Call{Name: "LENGTH", Args: []Expr{s("a"), s("b")}},
		&Call{Name: "LENGTH", Args: []Expr{i(1)}},
		&Call{Name: "UPPER", Args: []Expr{i(1)}},
		&Call{Name: "ABS", Args: []Expr{s("x")}},
		&Call{Name: "SUBSTR", Args: []Expr{s("x")}},
		&Call{Name: "SUBSTR", Args: []Expr{s("x"), s("y")}},
		&Call{Name: "SUBSTR", Args: []Expr{s("x"), i(1), s("z")}},
		&Call{Name: "COALESCE", Args: nil},
	}
	for _, e := range bad {
		if _, err := Eval(e, &Env{}); err == nil {
			t.Errorf("%s evaluated without error", e)
		}
	}
	// ABS of real; LENGTH of blob.
	v, err := Eval(&Call{Name: "ABS", Args: []Expr{lit(sqltypes.NewReal(-2.5))}}, &Env{})
	if err != nil || v.Real() != 2.5 {
		t.Errorf("ABS(-2.5) = %v, %v", v, err)
	}
	v, err = Eval(&Call{Name: "LENGTH", Args: []Expr{lit(sqltypes.NewBlob([]byte{1, 2, 3}))}}, &Env{})
	if err != nil || v.Int() != 3 {
		t.Errorf("LENGTH(blob) = %v, %v", v, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := &Binary{OpAnd,
		&Between{X: &ColRef{Column: "a", Idx: 1}, Lo: i(1), Hi: i(2)},
		&In{X: &ColRef{Column: "b", Idx: 2}, List: []Expr{s("x")}, Not: true},
	}
	c := Clone(orig).(*Binary)
	c.L.(*Between).X.(*ColRef).Idx = 99
	c.R.(*In).List[0] = s("changed")
	if orig.L.(*Between).X.(*ColRef).Idx != 1 {
		t.Error("clone aliased ColRef")
	}
	if orig.R.(*In).List[0].(*Literal).Val.Text() != "x" {
		t.Error("clone aliased In list")
	}
	// Clone of every node type.
	all := []Expr{
		&Literal{Val: sqltypes.NewInt(1)},
		&Param{Index: 2},
		&Unary{Op: OpNot, X: b(true)},
		&IsNull{X: i(1), Not: true},
		&Call{Name: "LENGTH", Args: []Expr{s("q")}},
		&Aggregate{Name: "SUM", Arg: &ColRef{Column: "x"}},
		&Aggregate{Name: "COUNT", Star: true},
	}
	for _, e := range all {
		if got := Clone(e).String(); got != e.String() {
			t.Errorf("Clone(%s) = %s", e, got)
		}
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestBoolCoercionInComparison(t *testing.T) {
	// BOOL compares numerically with INT (engine convention).
	v, err := Eval(&Binary{OpLt, b(false), i(1)}, &Env{})
	if err != nil || !v.Bool() {
		t.Errorf("FALSE < 1 = %v, %v", v, err)
	}
}

func TestConcatCoercesBlobFails(t *testing.T) {
	_, err := Eval(&Binary{OpConcat, lit(sqltypes.NewBlob([]byte{1})), s("x")}, &Env{})
	if err != nil {
		// Blob-to-text is a defined coercion; concat should succeed.
		t.Errorf("blob || text: %v", err)
	}
}
