package expr

import "fmt"

// Clone returns a deep copy of e. The planner rewrites cloned trees (e.g.
// replacing aggregate calls with output references) without disturbing the
// parsed statement.
func Clone(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *x
		return &c
	case *Param:
		c := *x
		return &c
	case *ColRef:
		c := *x
		return &c
	case *Unary:
		return &Unary{Op: x.Op, X: Clone(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: Clone(x.L), R: Clone(x.R)}
	case *Between:
		return &Between{X: Clone(x.X), Lo: Clone(x.Lo), Hi: Clone(x.Hi), Not: x.Not}
	case *In:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = Clone(it)
		}
		return &In{X: Clone(x.X), List: list, Not: x.Not}
	case *IsNull:
		return &IsNull{X: Clone(x.X), Not: x.Not}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Clone(a)
		}
		return &Call{Name: x.Name, Args: args}
	case *Aggregate:
		c := *x
		if x.Arg != nil {
			c.Arg = Clone(x.Arg)
		}
		return &c
	default:
		panic(fmt.Sprintf("expr: cannot clone %T", e))
	}
}
