package expr

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/sqltypes"
)

// Env supplies runtime bindings to the evaluator.
type Env struct {
	// Row is the current (possibly join-concatenated) tuple; ColRef.Idx
	// indexes into it.
	Row sqltypes.Row
	// Params are the values bound to `?` placeholders.
	Params []sqltypes.Value
	// Aggregates holds computed aggregate values for post-GROUP BY
	// expressions; Aggregate.Idx indexes into it.
	Aggregates sqltypes.Row
}

// Eval computes the value of e under env, with SQL NULL semantics: any
// comparison or arithmetic over NULL yields NULL; AND/OR use three-valued
// logic.
func Eval(e Expr, env *Env) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Index < 0 || x.Index >= len(env.Params) {
			return sqltypes.Value{}, fmt.Errorf("parameter %d not bound (%d given)", x.Index+1, len(env.Params))
		}
		return env.Params[x.Index], nil
	case *ColRef:
		if x.Idx < 0 || x.Idx >= len(env.Row) {
			return sqltypes.Value{}, fmt.Errorf("column %s unresolved (idx %d, row width %d)", x, x.Idx, len(env.Row))
		}
		return env.Row[x.Idx], nil
	case *Unary:
		return evalUnary(x, env)
	case *Binary:
		return evalBinary(x, env)
	case *Between:
		return evalBetween(x, env)
	case *In:
		return evalIn(x, env)
	case *IsNull:
		v, err := Eval(x.X, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(v.IsNull() != x.Not), nil
	case *Call:
		return evalCall(x, env)
	case *Aggregate:
		if x.Idx < 0 || x.Idx >= len(env.Aggregates) {
			return sqltypes.Value{}, fmt.Errorf("aggregate %s evaluated outside GROUP BY context", x)
		}
		return env.Aggregates[x.Idx], nil
	default:
		return sqltypes.Value{}, fmt.Errorf("cannot evaluate %T", e)
	}
}

// EvalBool evaluates e as a WHERE-style predicate: NULL and FALSE both
// reject.
func EvalBool(e Expr, env *Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Type() != sqltypes.Bool {
		return false, fmt.Errorf("predicate %s evaluated to %s, want BOOL", e, v.Type())
	}
	return v.Bool(), nil
}

func evalUnary(x *Unary, env *Env) (sqltypes.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if v.IsNull() {
		return sqltypes.NullValue(), nil
	}
	switch x.Op {
	case OpNot:
		if v.Type() != sqltypes.Bool {
			return sqltypes.Value{}, fmt.Errorf("NOT applied to %s", v.Type())
		}
		return sqltypes.NewBool(!v.Bool()), nil
	case OpNeg:
		switch v.Type() {
		case sqltypes.Int:
			return sqltypes.NewInt(-v.Int()), nil
		case sqltypes.Real:
			return sqltypes.NewReal(-v.Real()), nil
		}
		return sqltypes.Value{}, fmt.Errorf("unary - applied to %s", v.Type())
	}
	return sqltypes.Value{}, fmt.Errorf("bad unary op %v", x.Op)
}

func evalBinary(x *Binary, env *Env) (sqltypes.Value, error) {
	// AND/OR need three-valued logic with short-circuiting.
	if x.Op == OpAnd || x.Op == OpOr {
		return evalLogical(x, env)
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.NullValue(), nil
	}
	switch x.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if !comparable(l, r) {
			return sqltypes.Value{}, fmt.Errorf("cannot compare %s with %s", l.Type(), r.Type())
		}
		c := sqltypes.Compare(l, r)
		var out bool
		switch x.Op {
		case OpEq:
			out = c == 0
		case OpNe:
			out = c != 0
		case OpLt:
			out = c < 0
		case OpLe:
			out = c <= 0
		case OpGt:
			out = c > 0
		case OpGe:
			out = c >= 0
		}
		return sqltypes.NewBool(out), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(x.Op, l, r)
	case OpConcat:
		ls, err := sqltypes.Coerce(l, sqltypes.Text)
		if err != nil {
			return sqltypes.Value{}, err
		}
		rs, err := sqltypes.Coerce(r, sqltypes.Text)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewText(ls.Text() + rs.Text()), nil
	case OpLike:
		if l.Type() != sqltypes.Text || r.Type() != sqltypes.Text {
			return sqltypes.Value{}, fmt.Errorf("LIKE needs TEXT operands, got %s LIKE %s", l.Type(), r.Type())
		}
		return sqltypes.NewBool(likeMatch(l.Text(), r.Text())), nil
	}
	return sqltypes.Value{}, fmt.Errorf("bad binary op %v", x.Op)
}

func comparable(l, r sqltypes.Value) bool {
	num := func(t sqltypes.Type) bool {
		return t == sqltypes.Int || t == sqltypes.Real || t == sqltypes.Bool
	}
	if num(l.Type()) && num(r.Type()) {
		return true
	}
	return l.Type() == r.Type()
}

func evalLogical(x *Binary, env *Env) (sqltypes.Value, error) {
	l, err := Eval(x.L, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if !l.IsNull() && l.Type() != sqltypes.Bool {
		return sqltypes.Value{}, fmt.Errorf("%s applied to %s", x.Op, l.Type())
	}
	if x.Op == OpAnd && !l.IsNull() && !l.Bool() {
		return sqltypes.NewBool(false), nil
	}
	if x.Op == OpOr && !l.IsNull() && l.Bool() {
		return sqltypes.NewBool(true), nil
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if !r.IsNull() && r.Type() != sqltypes.Bool {
		return sqltypes.Value{}, fmt.Errorf("%s applied to %s", x.Op, r.Type())
	}
	if x.Op == OpAnd {
		switch {
		case !r.IsNull() && !r.Bool():
			return sqltypes.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return sqltypes.NullValue(), nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.Bool():
		return sqltypes.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return sqltypes.NullValue(), nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

func evalArith(op Op, l, r sqltypes.Value) (sqltypes.Value, error) {
	num := func(v sqltypes.Value) bool {
		return v.Type() == sqltypes.Int || v.Type() == sqltypes.Real
	}
	if !num(l) || !num(r) {
		return sqltypes.Value{}, fmt.Errorf("arithmetic on %s and %s", l.Type(), r.Type())
	}
	if l.Type() == sqltypes.Real || r.Type() == sqltypes.Real {
		lf, rf := l.Real(), r.Real()
		switch op {
		case OpAdd:
			return sqltypes.NewReal(lf + rf), nil
		case OpSub:
			return sqltypes.NewReal(lf - rf), nil
		case OpMul:
			return sqltypes.NewReal(lf * rf), nil
		case OpDiv:
			if rf == 0 {
				return sqltypes.Value{}, fmt.Errorf("division by zero")
			}
			return sqltypes.NewReal(lf / rf), nil
		case OpMod:
			return sqltypes.Value{}, fmt.Errorf("%% on REAL")
		}
	}
	li, ri := l.Int(), r.Int()
	switch op {
	case OpAdd:
		return sqltypes.NewInt(li + ri), nil
	case OpSub:
		return sqltypes.NewInt(li - ri), nil
	case OpMul:
		return sqltypes.NewInt(li * ri), nil
	case OpDiv:
		if ri == 0 {
			return sqltypes.Value{}, fmt.Errorf("division by zero")
		}
		return sqltypes.NewInt(li / ri), nil
	case OpMod:
		if ri == 0 {
			return sqltypes.Value{}, fmt.Errorf("division by zero")
		}
		return sqltypes.NewInt(li % ri), nil
	}
	return sqltypes.Value{}, fmt.Errorf("bad arith op %v", op)
}

func evalBetween(x *Between, env *Env) (sqltypes.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	lo, err := Eval(x.Lo, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	hi, err := Eval(x.Hi, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqltypes.NullValue(), nil
	}
	in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
	return sqltypes.NewBool(in != x.Not), nil
}

func evalIn(x *In, env *Env) (sqltypes.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if v.IsNull() {
		return sqltypes.NullValue(), nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := Eval(item, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if sqltypes.Compare(v, iv) == 0 {
			return sqltypes.NewBool(!x.Not), nil
		}
	}
	if sawNull {
		return sqltypes.NullValue(), nil
	}
	return sqltypes.NewBool(x.Not), nil
}

func evalCall(x *Call, env *Env) (sqltypes.Value, error) {
	args := make([]sqltypes.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(a, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		args[i] = v
	}
	fn, ok := scalarFuncs[x.Name]
	if !ok {
		return sqltypes.Value{}, fmt.Errorf("unknown function %s", x.Name)
	}
	return fn(args)
}

type scalarFunc func([]sqltypes.Value) (sqltypes.Value, error)

var scalarFuncs = map[string]scalarFunc{
	"LENGTH": func(a []sqltypes.Value) (sqltypes.Value, error) {
		if err := arity("LENGTH", a, 1); err != nil {
			return sqltypes.Value{}, err
		}
		if a[0].IsNull() {
			return sqltypes.NullValue(), nil
		}
		switch a[0].Type() {
		case sqltypes.Text:
			return sqltypes.NewInt(int64(len(a[0].Text()))), nil
		case sqltypes.Blob:
			return sqltypes.NewInt(int64(len(a[0].Blob()))), nil
		}
		return sqltypes.Value{}, fmt.Errorf("LENGTH of %s", a[0].Type())
	},
	"UPPER": textFunc("UPPER", strings.ToUpper),
	"LOWER": textFunc("LOWER", strings.ToLower),
	"ABS": func(a []sqltypes.Value) (sqltypes.Value, error) {
		if err := arity("ABS", a, 1); err != nil {
			return sqltypes.Value{}, err
		}
		switch a[0].Type() {
		case sqltypes.Null:
			return sqltypes.NullValue(), nil
		case sqltypes.Int:
			v := a[0].Int()
			if v < 0 {
				v = -v
			}
			return sqltypes.NewInt(v), nil
		case sqltypes.Real:
			v := a[0].Real()
			if v < 0 {
				v = -v
			}
			return sqltypes.NewReal(v), nil
		}
		return sqltypes.Value{}, fmt.Errorf("ABS of %s", a[0].Type())
	},
	"SUBSTR": func(a []sqltypes.Value) (sqltypes.Value, error) {
		if len(a) != 2 && len(a) != 3 {
			return sqltypes.Value{}, fmt.Errorf("SUBSTR takes 2 or 3 arguments, got %d", len(a))
		}
		for _, v := range a {
			if v.IsNull() {
				return sqltypes.NullValue(), nil
			}
		}
		if a[0].Type() != sqltypes.Text || a[1].Type() != sqltypes.Int {
			return sqltypes.Value{}, fmt.Errorf("SUBSTR(%s, %s)", a[0].Type(), a[1].Type())
		}
		s := a[0].Text()
		start := int(a[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(a) == 3 {
			if a[2].Type() != sqltypes.Int {
				return sqltypes.Value{}, fmt.Errorf("SUBSTR length is %s", a[2].Type())
			}
			if n := int(a[2].Int()); n >= 0 && start+n < end {
				end = start + n
			}
		}
		return sqltypes.NewText(s[start:end]), nil
	},
	// PREFIX_SUCC returns the smallest value strictly greater than every
	// value having the argument as a prefix — the exclusive upper bound of a
	// prefix range. Defined for BLOB and TEXT. It is the primitive that turns
	// "descendant of path P" into the index range [P, PREFIX_SUCC(P)).
	"PREFIX_SUCC": func(a []sqltypes.Value) (sqltypes.Value, error) {
		if err := arity("PREFIX_SUCC", a, 1); err != nil {
			return sqltypes.Value{}, err
		}
		if a[0].IsNull() {
			return sqltypes.NullValue(), nil
		}
		succ := func(b []byte) []byte {
			out := make([]byte, len(b))
			copy(out, b)
			for i := len(out) - 1; i >= 0; i-- {
				if out[i] != 0xFF {
					out[i]++
					return out[:i+1]
				}
			}
			return nil
		}
		switch a[0].Type() {
		case sqltypes.Blob:
			s := succ(a[0].Blob())
			if s == nil {
				return sqltypes.NullValue(), nil
			}
			return sqltypes.NewBlob(s), nil
		case sqltypes.Text:
			s := succ([]byte(a[0].Text()))
			if s == nil {
				return sqltypes.NullValue(), nil
			}
			return sqltypes.NewText(string(s)), nil
		}
		return sqltypes.Value{}, fmt.Errorf("PREFIX_SUCC of %s", a[0].Type())
	},
	"COALESCE": func(a []sqltypes.Value) (sqltypes.Value, error) {
		if len(a) == 0 {
			return sqltypes.Value{}, fmt.Errorf("COALESCE needs at least one argument")
		}
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.NullValue(), nil
	},
}

func textFunc(name string, f func(string) string) scalarFunc {
	return func(a []sqltypes.Value) (sqltypes.Value, error) {
		if err := arity(name, a, 1); err != nil {
			return sqltypes.Value{}, err
		}
		if a[0].IsNull() {
			return sqltypes.NullValue(), nil
		}
		if a[0].Type() != sqltypes.Text {
			return sqltypes.Value{}, fmt.Errorf("%s of %s", name, a[0].Type())
		}
		return sqltypes.NewText(f(a[0].Text())), nil
	}
}

func arity(name string, a []sqltypes.Value, n int) error {
	if len(a) != n {
		return fmt.Errorf("%s takes %d argument(s), got %d", name, n, len(a))
	}
	return nil
}

// IsScalarFunc reports whether name (upper-case) is a known scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[name]
	return ok
}

// likeMatch implements SQL LIKE: % matches any run, _ matches one byte.
func likeMatch(s, pattern string) bool {
	// Iterative matcher with backtracking over the last %.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikePrefix decomposes a LIKE pattern into a literal prefix and whether the
// pattern is exactly `prefix%` (no other wildcards). Such patterns become
// index range scans.
func LikePrefix(pattern string) (prefix string, exact bool) {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern, false
	}
	return pattern[:i], i == len(pattern)-1 && pattern[i] == '%'
}
