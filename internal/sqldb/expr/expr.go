// Package expr defines the expression AST shared by the SQL parser, planner
// and executor, plus the evaluator with SQL three-valued NULL semantics.
package expr

import (
	"fmt"
	"strings"

	"ordxml/internal/sqldb/sqltypes"
)

// Op enumerates unary and binary operators.
type Op uint8

// Operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpNot
	OpNeg
	OpConcat
	OpLike
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-", OpConcat: "||", OpLike: "LIKE",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// Expr is a node of the expression tree.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Literal is a constant value.
type Literal struct{ Val sqltypes.Value }

// Param is a positional `?` parameter (0-based).
type Param struct{ Index int }

// ColRef is a (possibly qualified) column reference. Idx is filled in by
// Resolve and indexes into the runtime row.
type ColRef struct {
	Table  string // alias or table name; may be empty
	Column string
	Idx    int
}

// Unary applies OpNot or OpNeg.
type Unary struct {
	Op Op
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	L, R Expr
}

// Between is X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// In is X [NOT] IN (list...).
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a scalar function call.
type Call struct {
	Name string // upper-case
	Args []Expr
}

// Aggregate is an aggregate function reference (COUNT/SUM/AVG/MIN/MAX).
// During GROUP BY execution the aggregator computes its value; Idx is the
// position assigned by the planner in the aggregate output row.
type Aggregate struct {
	Name     string // upper-case
	Arg      Expr   // nil for COUNT(*)
	Star     bool
	Distinct bool
	Idx      int
}

func (*Literal) isExpr()   {}
func (*Param) isExpr()     {}
func (*ColRef) isExpr()    {}
func (*Unary) isExpr()     {}
func (*Binary) isExpr()    {}
func (*Between) isExpr()   {}
func (*In) isExpr()        {}
func (*IsNull) isExpr()    {}
func (*Call) isExpr()      {}
func (*Aggregate) isExpr() {}

func (e *Literal) String() string { return e.Val.SQLLiteral() }
func (e *Param) String() string   { return "?" }
func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}
func (e *Unary) String() string {
	if e.Op == OpNot {
		return "NOT " + e.X.String()
	}
	return "-" + e.X.String()
}
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}
func (e *Between) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}
func (e *In) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.String() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}
func (e *IsNull) String() string {
	if e.Not {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, x := range e.Args {
		parts[i] = x.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}
func (e *Aggregate) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + e.Arg.String() + ")"
}

// Walk visits e and all children in depth-first order. It stops early when
// fn returns false.
func Walk(e Expr, fn func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !fn(e) {
		return false
	}
	switch x := e.(type) {
	case *Unary:
		return Walk(x.X, fn)
	case *Binary:
		return Walk(x.L, fn) && Walk(x.R, fn)
	case *Between:
		return Walk(x.X, fn) && Walk(x.Lo, fn) && Walk(x.Hi, fn)
	case *In:
		if !Walk(x.X, fn) {
			return false
		}
		for _, it := range x.List {
			if !Walk(it, fn) {
				return false
			}
		}
	case *IsNull:
		return Walk(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			if !Walk(a, fn) {
				return false
			}
		}
	case *Aggregate:
		if x.Arg != nil {
			return Walk(x.Arg, fn)
		}
	}
	return true
}

// HasAggregate reports whether e contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if _, ok := n.(*Aggregate); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
