package sqldb

import (
	"sync"
	"sync/atomic"
	"time"

	"ordxml/internal/obs"
	olog "ordxml/internal/obs/log"
)

// slowLogCap bounds the slow-query ring buffer.
const slowLogCap = 64

// DefaultSlowQueryThreshold is the initial slow-query log threshold.
const DefaultSlowQueryThreshold = 100 * time.Millisecond

// SlowQuery is one entry of the slow-query log.
type SlowQuery struct {
	SQL      string        `json:"sql"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int           `json:"rows"`
}

// dbMetrics bundles the DB's instruments. All fields are resolved from the
// registry once at Open, so statement paths touch only atomics.
type dbMetrics struct {
	reg *obs.Registry

	queries     *obs.Counter   // sqldb.queries: SELECT statements executed
	queryErrors *obs.Counter   // sqldb.query.errors
	parallelQ   *obs.Counter   // sqldb.query.parallel: SELECTs run on a parallel plan
	execs       *obs.Counter   // sqldb.execs: DDL/DML statements executed
	execErrors  *obs.Counter   // sqldb.exec.errors
	queryLat    *obs.Histogram // sqldb.query.latency
	execLat     *obs.Histogram // sqldb.exec.latency

	// Slow-query log: a preallocated ring so recording never allocates
	// beyond the SQL string already in hand.
	slowMu        sync.Mutex
	slowBuf       [slowLogCap]SlowQuery
	slowNext      int
	slowLen       int
	slowThreshold atomic.Int64 // nanoseconds; 0 disables
}

func newDBMetrics(reg *obs.Registry) *dbMetrics {
	m := &dbMetrics{
		reg:         reg,
		queries:     reg.Counter("sqldb.queries"),
		queryErrors: reg.Counter("sqldb.query.errors"),
		parallelQ:   reg.Counter("sqldb.query.parallel"),
		execs:       reg.Counter("sqldb.execs"),
		execErrors:  reg.Counter("sqldb.exec.errors"),
		queryLat:    reg.Histogram("sqldb.query.latency"),
		execLat:     reg.Histogram("sqldb.exec.latency"),
	}
	m.slowThreshold.Store(int64(DefaultSlowQueryThreshold))
	return m
}

// recordQuery accounts one Query call. Zero allocations when the statement is
// not slow: two counter adds, one histogram observe, one atomic load.
func (m *dbMetrics) recordQuery(sql string, d time.Duration, rows int, err error) {
	m.queries.Inc()
	m.queryLat.Observe(d)
	if err != nil {
		m.queryErrors.Inc()
		return
	}
	if thr := m.slowThreshold.Load(); thr > 0 && int64(d) >= thr {
		m.recordSlow(sql, d, rows)
	}
}

// recordExec accounts one Exec call.
func (m *dbMetrics) recordExec(sql string, d time.Duration, err error) {
	m.execs.Inc()
	m.execLat.Observe(d)
	if err != nil {
		m.execErrors.Inc()
		return
	}
	if thr := m.slowThreshold.Load(); thr > 0 && int64(d) >= thr {
		m.recordSlow(sql, d, -1)
	}
}

func (m *dbMetrics) recordSlow(sql string, d time.Duration, rows int) {
	m.slowMu.Lock()
	m.slowBuf[m.slowNext] = SlowQuery{SQL: sql, Duration: d, Rows: rows}
	m.slowNext = (m.slowNext + 1) % slowLogCap
	if m.slowLen < slowLogCap {
		m.slowLen++
	}
	m.slowMu.Unlock()
	// Rate-limited so a burst of slow statements costs one line, not 64.
	m.reg.Log().Every("sqldb.slow_query", time.Second, olog.LevelWarn,
		"slow query",
		olog.Str("sql", sql),
		olog.Dur("duration", d),
		olog.Int("rows", int64(rows)))
}

// slowQueries returns the logged entries, most recent last.
func (m *dbMetrics) slowQueries() []SlowQuery {
	m.slowMu.Lock()
	defer m.slowMu.Unlock()
	out := make([]SlowQuery, 0, m.slowLen)
	start := (m.slowNext - m.slowLen + slowLogCap) % slowLogCap
	for i := 0; i < m.slowLen; i++ {
		out = append(out, m.slowBuf[(start+i)%slowLogCap])
	}
	return out
}

// Registry exposes the DB's metrics registry so upper layers (the XPath
// evaluator, the benchmark harness) can hang their own instruments on it.
func (db *DB) Registry() *obs.Registry { return db.metrics.reg }

// Metrics returns a point-in-time snapshot of every engine metric: statement
// counts and latency histograms, plan-cache hit/miss counters, and the
// storage-layer heap-page/btree-node read counters.
func (db *DB) Metrics() obs.Snapshot { return db.metrics.reg.Snapshot() }

// SlowQueries returns the slow-query log, oldest first. The log keeps the
// last 64 statements whose wall time met the threshold.
func (db *DB) SlowQueries() []SlowQuery { return db.metrics.slowQueries() }

// SetSlowQueryThreshold sets the slow-query log threshold; 0 disables the
// log. The default is DefaultSlowQueryThreshold.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.metrics.slowThreshold.Store(int64(d))
}

// SlowQueryThreshold returns the current slow-query threshold.
func (db *DB) SlowQueryThreshold() time.Duration {
	return time.Duration(db.metrics.slowThreshold.Load())
}

// registerStorageFuncs publishes the catalog's storage counters as read-only
// gauges so they appear in Metrics() snapshots alongside the SQL metrics.
func (db *DB) registerStorageFuncs() {
	c := &db.cat.Counters
	db.metrics.reg.RegisterFunc("storage.heap.page_reads", c.HeapPageReads.Load)
	db.metrics.reg.RegisterFunc("storage.btree.node_reads", c.BtreeNodeReads.Load)
	db.metrics.reg.RegisterFunc("storage.rows_scanned", c.RowsScanned.Load)
	db.metrics.reg.RegisterFunc("storage.index_probes", c.IndexProbes.Load)
}
