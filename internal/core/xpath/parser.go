package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a path expression.
//
//	path  := ('/' | '//') step (('/' | '//') step)*   -- absolute
//	       | step (('/' | '//') step)*                -- relative (predicates)
//	step  := axis? nodetest predicate*  |  '..'  |  '.'
//	axis  := '@' | 'following-sibling::' | 'preceding-sibling::'
//	       | 'parent::' | 'child::'
//	nodetest  := NAME | '*' | 'text()'
//	predicate := '[' INT ']'
//	           | '[' 'position()' cmp INT ']'
//	           | '[' 'last()' ']'
//	           | '[' relpath (('='|'!=') literal)? ']'
func Parse(input string) (*Path, error) {
	p := &parser{src: input}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	return path, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath syntax error at byte %d of %q: %s", p.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) accept(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	first := true
	for {
		var axisFromSlash Axis = Child
		switch {
		case p.accept("//"):
			axisFromSlash = Descendant
			path.Absolute = path.Absolute || first
		case p.accept("/"):
			path.Absolute = path.Absolute || first
		default:
			if first {
				// Relative path (used inside predicates).
				if p.pos >= len(p.src) {
					return nil, p.errf("empty path")
				}
			} else {
				return path, nil
			}
		}
		if first && !path.Absolute && p.pos >= len(p.src) {
			return nil, p.errf("empty path")
		}
		step, err := p.parseStep(axisFromSlash)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		first = false
		if !p.peek("/") {
			return path, nil
		}
	}
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	p.skipSpace()
	step := Step{Axis: axis}
	switch {
	case p.accept(".."):
		if axis == Descendant {
			return Step{}, p.errf("'//..' is not supported")
		}
		step.Axis = Parent
		step.Test = NodeTest{Any: true}
		return step, nil
	case p.accept("@"):
		if axis == Descendant {
			return Step{}, p.errf("'//@' is not supported; use //*/@name")
		}
		step.Axis = Attribute
	case p.accept("following-sibling::"):
		step.Axis = FollowingSibling
	case p.accept("preceding-sibling::"):
		step.Axis = PrecedingSibling
	case p.accept("parent::"):
		step.Axis = Parent
	case p.accept("ancestor::"):
		step.Axis = Ancestor
	case p.accept("descendant::"):
		step.Axis = Descendant
	case p.accept("child::"):
		// Explicit child spelling; Descendant from '//' stays.
		if axis == Child {
			step.Axis = Child
		}
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return Step{}, err
	}
	step.Test = test
	for p.peek("[") {
		pred, err := p.parsePredicate()
		if err != nil {
			return Step{}, err
		}
		step.Preds = append(step.Preds, pred)
	}
	normalizePreds(step.Preds)
	return step, nil
}

// normalizePreds orders a step's predicates value/exists-first,
// positional-last (stable). The two orders only differ when one step mixes
// both kinds; fixing the order lets the relational translation evaluate
// value predicates inside SQL and positional ones as an ordered
// post-processing step, with semantics identical to the oracle's sequential
// application.
func normalizePreds(preds []Predicate) {
	var values, positions []Predicate
	for _, p := range preds {
		if p.Kind == PredPos || p.Kind == PredLast {
			positions = append(positions, p)
		} else {
			values = append(values, p)
		}
	}
	copy(preds, values)
	copy(preds[len(values):], positions)
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	p.skipSpace()
	if p.accept("*") {
		return NodeTest{Any: true}, nil
	}
	if p.accept("text()") {
		return NodeTest{TextTest: true}, nil
	}
	name := p.parseName()
	if name == "" {
		return NodeTest{}, p.errf("expected node test")
	}
	return NodeTest{Name: name}, nil
}

func (p *parser) parseName() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *parser) parsePredicate() (Predicate, error) {
	if !p.accept("[") {
		return Predicate{}, p.errf("expected '['")
	}
	p.skipSpace()
	// Number: positional shorthand.
	if n, ok := p.tryNumber(); ok {
		if !p.accept("]") {
			return Predicate{}, p.errf("expected ']'")
		}
		if n <= 0 {
			return Predicate{}, p.errf("position %d out of range", n)
		}
		return Predicate{Kind: PredPos, Op: CmpEq, Pos: n}, nil
	}
	if p.accept("position()") {
		op, err := p.parseCmp()
		if err != nil {
			return Predicate{}, err
		}
		n, ok := p.tryNumber()
		if !ok {
			return Predicate{}, p.errf("expected number after position()%s", op)
		}
		if !p.accept("]") {
			return Predicate{}, p.errf("expected ']'")
		}
		return Predicate{Kind: PredPos, Op: op, Pos: n}, nil
	}
	if p.accept("last()") {
		if !p.accept("]") {
			return Predicate{}, p.errf("expected ']'")
		}
		return Predicate{Kind: PredLast}, nil
	}
	// Relative path, possibly compared to a literal. `.` means self.
	var rel *Path
	if p.accept(".") {
		rel = nil
	} else {
		end := p.findPredPathEnd()
		sub := p.src[p.pos:end]
		inner, err := Parse(strings.TrimSpace(sub))
		if err != nil {
			return Predicate{}, err
		}
		if inner.Absolute {
			return Predicate{}, p.errf("absolute paths are not allowed in predicates")
		}
		rel = inner
		p.pos = end
	}
	p.skipSpace()
	if p.accept("=") {
		return p.finishValuePred(rel, CmpEq)
	}
	if p.accept("!=") {
		return p.finishValuePred(rel, CmpNe)
	}
	if rel == nil {
		return Predicate{}, p.errf("'.' predicate requires a comparison")
	}
	if !p.accept("]") {
		return Predicate{}, p.errf("expected ']'")
	}
	return Predicate{Kind: PredExists, Path: rel}, nil
}

// findPredPathEnd locates the end of the relative path inside a predicate:
// the first '=', '!' or ']' at depth zero.
func (p *parser) findPredPathEnd() int {
	for i := p.pos; i < len(p.src); i++ {
		switch p.src[i] {
		case '=', '!', ']':
			return i
		}
	}
	return len(p.src)
}

func (p *parser) finishValuePred(rel *Path, op CmpOp) (Predicate, error) {
	p.skipSpace()
	lit, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	if !p.accept("]") {
		return Predicate{}, p.errf("expected ']'")
	}
	return Predicate{Kind: PredValue, Path: rel, Value: lit, ValOp: op}, nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", p.errf("expected literal")
	}
	quote := p.src[p.pos]
	if quote == '\'' || quote == '"' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated literal")
		}
		lit := p.src[start:p.pos]
		p.pos++
		return lit, nil
	}
	// Bare number literal.
	if n, ok := p.tryNumberString(); ok {
		return n, nil
	}
	return "", p.errf("expected quoted string or number")
}

func (p *parser) tryNumber() (int, bool) {
	s, ok := p.tryNumberString()
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (p *parser) tryNumberString() (string, bool) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return "", false
	}
	return p.src[start:p.pos], true
}

// parseCmp reads a comparison operator for position() predicates.
func (p *parser) parseCmp() (CmpOp, error) {
	p.skipSpace()
	switch {
	case p.accept("!="):
		return CmpNe, nil
	case p.accept("<="):
		return CmpLe, nil
	case p.accept(">="):
		return CmpGe, nil
	case p.accept("="):
		return CmpEq, nil
	case p.accept("<"):
		return CmpLt, nil
	case p.accept(">"):
		return CmpGt, nil
	default:
		return 0, p.errf("expected comparison operator")
	}
}
