package xpath

import (
	"testing"

	"ordxml/internal/xmltree"
)

// FuzzParse checks the parser never panics and that accepted paths render
// and re-parse to the same AST (String is a normal form).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"/a/b/c", "//x", "/a[1]", "/a[position() <= 3]", "/a[@id = 'x']",
		"/a/b[c/d = 'y']/following-sibling::e", "/a/text()", "/*", "/a/..",
		"[", "/a[", "///", "/a[==]", "/a[last()]", "/a[. = '1']",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered form %q of %q does not re-parse: %v", rendered, input, err)
		}
		if p2.String() != rendered {
			t.Fatalf("render not a fixed point: %q -> %q", rendered, p2.String())
		}
	})
}

// FuzzEval checks the oracle never panics on arbitrary accepted paths.
func FuzzEval(f *testing.F) {
	f.Add("/a/b[1]")
	f.Add("//c/following-sibling::*")
	f.Add("/a/*[last()]/@x")
	doc, err := xmltree.ParseString(`<a x="1"><b><c/><c>t</c></b><b y="2">mix<c/></b></a>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := EvalString(doc, input); err != nil {
			return
		}
	})
}
