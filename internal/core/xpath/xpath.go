// Package xpath implements the ordered XPath fragment of the paper: child,
// descendant-or-self, attribute, parent and the ordered sibling axes, with
// positional, value and existence predicates. It provides the shared AST,
// the parser, and a reference evaluator over in-memory trees that the test
// suite uses as the correctness oracle for the relational translations.
package xpath

import (
	"fmt"
	"strings"
)

// Axis selects the node set relative to a context node.
type Axis int

// Supported axes.
const (
	Child Axis = iota
	// DescendantOrSelf is spelled `//` (it abbreviates
	// /descendant-or-self::node()/child:: as in XPath, folded into one step
	// here: `//x` selects every descendant x).
	Descendant
	Attribute
	FollowingSibling
	PrecedingSibling
	Parent
	// Ancestor selects all proper ancestors (nearest first on the axis,
	// document order in results, like every reverse axis).
	Ancestor
)

// String returns the XPath spelling.
func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case Attribute:
		return "attribute"
	case FollowingSibling:
		return "following-sibling"
	case PrecedingSibling:
		return "preceding-sibling"
	case Parent:
		return "parent"
	case Ancestor:
		return "ancestor"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// NodeTest filters nodes on a step.
type NodeTest struct {
	// Name matches elements (or attributes) with this tag; empty with Any
	// or TextTest set.
	Name string
	// Any is `*`.
	Any bool
	// TextTest is `text()`.
	TextTest bool
}

// String returns the XPath spelling.
func (t NodeTest) String() string {
	switch {
	case t.TextTest:
		return "text()"
	case t.Any:
		return "*"
	default:
		return t.Name
	}
}

// PredKind classifies predicates.
type PredKind int

// Predicate kinds.
const (
	// PredPos is a positional predicate: [k] or [position() op k].
	PredPos PredKind = iota
	// PredLast is [last()].
	PredLast
	// PredValue compares a relative path's string value: [price = '10'],
	// [@id = 'x'], [. = 'y']. True when any selected node matches.
	PredValue
	// PredExists tests non-emptiness of a relative path: [keyword].
	PredExists
)

// CmpOp is a comparison operator in predicates.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the operator spelling.
func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Predicate is one [...] filter on a step.
type Predicate struct {
	Kind PredKind
	// Op and Pos configure PredPos ([k] is position() = k).
	Op  CmpOp
	Pos int
	// Path is the relative path of PredValue/PredExists; nil means `.`
	// (the context node itself).
	Path *Path
	// Value is the literal of PredValue.
	Value string
	// ValOp is the comparison of PredValue (string or numeric equality
	// rules; this fragment compares string values with CmpEq/CmpNe only).
	ValOp CmpOp
}

// String renders the predicate.
func (p Predicate) String() string {
	switch p.Kind {
	case PredPos:
		if p.Op == CmpEq {
			return fmt.Sprintf("[%d]", p.Pos)
		}
		return fmt.Sprintf("[position() %s %d]", p.Op, p.Pos)
	case PredLast:
		return "[last()]"
	case PredValue:
		lhs := "."
		if p.Path != nil {
			lhs = p.Path.String()
		}
		return fmt.Sprintf("[%s %s '%s']", lhs, p.ValOp, p.Value)
	default:
		return fmt.Sprintf("[%s]", p.Path)
	}
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Predicate
}

// String renders the step.
func (s Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case Attribute:
		sb.WriteByte('@')
	case FollowingSibling:
		sb.WriteString("following-sibling::")
	case PrecedingSibling:
		sb.WriteString("preceding-sibling::")
	case Parent:
		sb.WriteString("parent::")
	case Ancestor:
		sb.WriteString("ancestor::")
	}
	sb.WriteString(s.Test.String())
	for _, p := range s.Preds {
		sb.WriteString(p.String())
	}
	return sb.String()
}

// Path is a parsed path expression.
type Path struct {
	// Absolute paths start at the document root.
	Absolute bool
	Steps    []Step
}

// String renders the path.
func (p *Path) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		if s.Axis == Descendant {
			sb.WriteString("//")
		} else if i > 0 || p.Absolute {
			sb.WriteByte('/')
		}
		// Descendant is rendered by the leading //.
		step := s
		sb.WriteString(step.String())
	}
	return sb.String()
}
