package xpath

import (
	"strings"
	"testing"

	"ordxml/internal/xmltree"
)

func mustParsePath(t *testing.T, s string) *Path {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

func TestParseShapes(t *testing.T) {
	cases := map[string]string{
		"/a/b/c":                         "/a/b/c",
		"//keyword":                      "//keyword",
		"/a//b":                          "/a//b",
		"/a/*":                           "/a/*",
		"/a/text()":                      "/a/text()",
		"/a/@id":                         "/a/@id",
		"/a/b[3]":                        "/a/b[3]",
		"/a/b[position() <= 5]":          "/a/b[position() <= 5]",
		"/a/b[last()]":                   "/a/b[last()]",
		"/a/b[@id = 'x']":                "/a/b[@id = 'x']",
		"/a/b[c = 'y']":                  "/a/b[c = 'y']",
		"/a/b[c/d = 'y']":                "/a/b[c/d = 'y']",
		"/a/b[c]":                        "/a/b[c]",
		"/a/b[. = 'z']":                  "/a/b[. = 'z']",
		"/a/b[2]/following-sibling::b":   "/a/b[2]/following-sibling::b",
		"/a/b[2]/preceding-sibling::*":   "/a/b[2]/preceding-sibling::*",
		"/a/b/parent::a":                 "/a/b/parent::a",
		"/a/b/..":                        "/a/b/parent::*",
		"/a/child::b":                    "/a/b",
		"/a/b[position() = 2]":           "/a/b[2]",
		`/a/b[@id = "dq"]`:               "/a/b[@id = 'dq']",
		"/a/b[c != 'y']":                 "/a/b[c != 'y']",
		"/a/b[price = 10]":               "/a/b[price = '10']",
		"/regions/namerica/item[5]/name": "/regions/namerica/item[5]/name",
	}
	for in, want := range cases {
		p := mustParsePath(t, in)
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
		if !p.Absolute {
			t.Errorf("Parse(%q) not absolute", in)
		}
	}
}

func TestParseRelative(t *testing.T) {
	p := mustParsePath(t, "b/c")
	if p.Absolute || len(p.Steps) != 2 {
		t.Fatalf("relative parse = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/",
		"/a[",
		"/a[]",
		"/a[0]",
		"/a[b = ]",
		"/a[b = 'x",
		"/a[. ]",
		"/a[position() 5]",
		"/a[position() =]",
		"/a/b[/abs = 'x']",
		"//..",
		"//@id",
		"/a/b!",
		"/a b",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

const evalDoc = `<site>
  <regions>
    <namerica>
      <item id="i1"><name>widget</name><price>10</price></item>
      <item id="i2"><name>gadget</name><price>20</price>
        <description>nice <keyword>rare</keyword> thing</description>
      </item>
      <item id="i3"><name>gizmo</name><price>10</price></item>
    </namerica>
    <europe>
      <item id="e1"><name>widget</name><price>30</price></item>
    </europe>
  </regions>
</site>`

func evalOn(t *testing.T, doc *xmltree.Node, path string) []string {
	t.Helper()
	nodes, err := EvalString(doc, path)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", path, err)
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = Describe(n)
	}
	return out
}

func wantList(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEvalBasics(t *testing.T) {
	doc, err := xmltree.ParseString(evalDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Child chains.
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item"), "<item>", "<item>", "<item>")
	// Attribute step.
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item/@id"), "@id=i1", "@id=i2", "@id=i3")
	// Positional.
	nodes, _ := EvalString(doc, "/site/regions/namerica/item[2]")
	if len(nodes) != 1 {
		t.Fatalf("item[2] = %d nodes", len(nodes))
	}
	if v, _ := nodes[0].GetAttr("id"); v != "i2" {
		t.Errorf("item[2] id = %s", v)
	}
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[position() >= 2]/@id"), "@id=i2", "@id=i3")
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[last()]/@id"), "@id=i3")
	// Descendant.
	wantList(t, evalOn(t, doc, "//keyword"), "<keyword>")
	wantList(t, evalOn(t, doc, "//item/@id"), "@id=i1", "@id=i2", "@id=i3", "@id=e1")
	// Wildcard and text().
	wantList(t, evalOn(t, doc, "/site/regions/*"), "<namerica>", "<europe>")
	got := evalOn(t, doc, "//description/text()")
	wantList(t, got, "\"nice\"", "\"thing\"")
}

func TestEvalValuePredicates(t *testing.T) {
	doc, _ := xmltree.ParseString(evalDoc)
	wantList(t, evalOn(t, doc, "//item[@id = 'i2']/name"), "<name>")
	wantList(t, evalOn(t, doc, "//item[price = '10']/@id"), "@id=i1", "@id=i3")
	wantList(t, evalOn(t, doc, "//item[price = 10]/@id"), "@id=i1", "@id=i3")
	wantList(t, evalOn(t, doc, "//item[name = 'widget']/@id"), "@id=i1", "@id=e1")
	wantList(t, evalOn(t, doc, "//item[description]/@id"), "@id=i2")
	wantList(t, evalOn(t, doc, "//item[description/keyword = 'rare']/@id"), "@id=i2")
	wantList(t, evalOn(t, doc, "//name[. = 'gizmo']"), "<name>")
	// != matches when any selected node differs.
	wantList(t, evalOn(t, doc, "//item[price != '10']/@id"), "@id=i2", "@id=e1")
}

func TestEvalSiblingAxes(t *testing.T) {
	doc, _ := xmltree.ParseString(evalDoc)
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[1]/following-sibling::item/@id"),
		"@id=i2", "@id=i3")
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[3]/preceding-sibling::item/@id"),
		"@id=i1", "@id=i2")
	// position() on the preceding axis counts backwards: [1] is nearest.
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[3]/preceding-sibling::item[1]/@id"),
		"@id=i2")
	wantList(t, evalOn(t, doc, "/site/regions/namerica/item[1]/following-sibling::item[1]/@id"),
		"@id=i2")
	// Results are document-ordered even for the reverse axis.
	wantList(t, evalOn(t, doc, "//item[name = 'gizmo']/preceding-sibling::*/@id"),
		"@id=i1", "@id=i2")
}

func TestEvalAncestorAxis(t *testing.T) {
	doc, _ := xmltree.ParseString(evalDoc)
	wantList(t, evalOn(t, doc, "//keyword/ancestor::item/@id"), "@id=i2")
	wantList(t, evalOn(t, doc, "//keyword/ancestor::*"),
		"<site>", "<regions>", "<namerica>", "<item>", "<description>")
	// Reverse-axis position: [1] is the nearest ancestor.
	wantList(t, evalOn(t, doc, "//keyword/ancestor::*[1]"), "<description>")
	wantList(t, evalOn(t, doc, "//keyword/ancestor::*[last()]"), "<site>")
	// Ancestors of multiple contexts dedup in document order.
	wantList(t, evalOn(t, doc, "//item/ancestor::*"), "<site>", "<regions>", "<namerica>", "<europe>")
	if p := mustParsePath(t, "/a/b/ancestor::c"); p.String() != "/a/b/ancestor::c" {
		t.Errorf("ancestor render = %s", p.String())
	}
}

func TestEvalParentAxis(t *testing.T) {
	doc, _ := xmltree.ParseString(evalDoc)
	wantList(t, evalOn(t, doc, "//keyword/parent::description"), "<description>")
	wantList(t, evalOn(t, doc, "//keyword/.."), "<description>")
	// Parent axis deduplicates.
	wantList(t, evalOn(t, doc, "//item/parent::*"), "<namerica>", "<europe>")
}

func TestEvalEmptyAndMisses(t *testing.T) {
	doc, _ := xmltree.ParseString(evalDoc)
	for _, path := range []string{
		"/nothere",
		"/site/item",
		"//item[99]",
		"//item[@id = 'zz']",
		"/site/regions/namerica/item[1]/preceding-sibling::item",
	} {
		if got := evalOn(t, doc, path); len(got) != 0 {
			t.Errorf("%q = %v, want empty", path, got)
		}
	}
}

func TestEvalDocumentOrderAndDedup(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b><c/><c/></b><b><c/></b></a>`)
	// //c via two different b parents: 3 nodes in document order.
	nodes, _ := EvalString(doc, "//b/c")
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	// //b//c and //c same set.
	n2, _ := EvalString(doc, "//c")
	if len(n2) != 3 {
		t.Fatalf("//c = %d", len(n2))
	}
	// Dedup through parent axis.
	n3, _ := EvalString(doc, "//c/parent::b")
	if len(n3) != 2 {
		t.Fatalf("parents = %d", len(n3))
	}
}

func TestNestedDescendant(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><d><d><x/></d></d></a>`)
	nodes, _ := EvalString(doc, "//d")
	if len(nodes) != 2 {
		t.Fatalf("//d = %d", len(nodes))
	}
	nodes, _ = EvalString(doc, "//d//x")
	if len(nodes) != 1 {
		t.Fatalf("//d//x = %d (dedup through nesting)", len(nodes))
	}
}

func TestRelativeEvalInPredicate(t *testing.T) {
	doc, _ := xmltree.ParseString(`<r><e><f><g>v</g></f></e><e/></r>`)
	nodes, _ := EvalString(doc, "/r/e[f/g = 'v']")
	if len(nodes) != 1 {
		t.Fatalf("deep value predicate = %d", len(nodes))
	}
}

func TestStringValuesHelper(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b>x</b><b>y</b></a>`)
	nodes, _ := EvalString(doc, "/a/b")
	got := StringValues(nodes)
	if strings.Join(got, ",") != "x,y" {
		t.Errorf("StringValues = %v", got)
	}
}
