package xpath

import (
	"strings"

	"ordxml/internal/xmltree"
)

// Eval evaluates an absolute path against a document tree and returns the
// matching nodes in document order. It is the reference implementation
// ("oracle") that the relational translations are validated against.
func Eval(root *xmltree.Node, p *Path) []*xmltree.Node {
	e := &evaluator{order: documentOrder(root)}
	// The virtual document node: its only child is the root element.
	ctx := []*xmltree.Node{{Kind: xmltree.Element, Children: []*xmltree.Node{root}}}
	// Wire the virtual parent so sibling/parent axes at the top behave.
	// (The root's real Parent stays nil; steps never navigate above it
	// because the virtual node is not any real node's parent.)
	for _, s := range p.Steps {
		ctx = e.step(ctx, s)
		if len(ctx) == 0 {
			return nil
		}
	}
	return e.sortUnique(ctx)
}

// EvalString is a convenience wrapper: parse and evaluate.
func EvalString(root *xmltree.Node, path string) ([]*xmltree.Node, error) {
	p, err := Parse(path)
	if err != nil {
		return nil, err
	}
	if !p.Absolute {
		p = &Path{Absolute: true, Steps: p.Steps}
	}
	return Eval(root, p), nil
}

type evaluator struct {
	order map[*xmltree.Node]int
}

// documentOrder numbers every node of the tree in document order.
func documentOrder(root *xmltree.Node) map[*xmltree.Node]int {
	order := make(map[*xmltree.Node]int)
	i := 0
	root.Walk(func(n *xmltree.Node) bool {
		order[n] = i
		i++
		return true
	})
	return order
}

// step applies one location step to a context list, deduplicating results.
func (e *evaluator) step(ctx []*xmltree.Node, s Step) []*xmltree.Node {
	var out []*xmltree.Node
	seen := map[*xmltree.Node]bool{}
	for _, c := range e.sortUnique(ctx) {
		for _, n := range e.applyStep(c, s) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// applyStep evaluates axis, node test and predicates for one context node.
// Candidates are kept in axis order so position() is correct (reverse
// document order for preceding-sibling, per XPath).
func (e *evaluator) applyStep(c *xmltree.Node, s Step) []*xmltree.Node {
	var cands []*xmltree.Node
	switch s.Axis {
	case Child:
		cands = append(cands, c.Children...)
	case Descendant:
		// descendant (elements and text; attributes are not on this axis).
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			for _, ch := range n.Children {
				cands = append(cands, ch)
				walk(ch)
			}
		}
		walk(c)
	case Attribute:
		cands = append(cands, c.Attrs...)
	case FollowingSibling:
		if c.Parent != nil && c.Kind != xmltree.Attr {
			idx := c.ChildIndex()
			if idx >= 0 {
				cands = append(cands, c.Parent.Children[idx+1:]...)
			}
		}
	case PrecedingSibling:
		if c.Parent != nil && c.Kind != xmltree.Attr {
			idx := c.ChildIndex()
			for i := idx - 1; i >= 0; i-- { // reverse document order
				cands = append(cands, c.Parent.Children[i])
			}
		}
	case Parent:
		if c.Parent != nil {
			cands = append(cands, c.Parent)
		}
	case Ancestor:
		for a := c.Parent; a != nil; a = a.Parent {
			cands = append(cands, a) // nearest first (reverse axis)
		}
	}
	matched := cands[:0:0]
	for _, n := range cands {
		if matchTest(n, s.Axis, s.Test) {
			matched = append(matched, n)
		}
	}
	for _, pred := range s.Preds {
		matched = e.applyPred(matched, pred)
	}
	return matched
}

func matchTest(n *xmltree.Node, axis Axis, t NodeTest) bool {
	if axis == Attribute {
		if n.Kind != xmltree.Attr {
			return false
		}
		return t.Any || n.Tag == t.Name
	}
	switch {
	case t.TextTest:
		return n.Kind == xmltree.Text
	case t.Any:
		return n.Kind == xmltree.Element
	default:
		return n.Kind == xmltree.Element && n.Tag == t.Name
	}
}

// applyPred filters an axis-ordered candidate list.
func (e *evaluator) applyPred(nodes []*xmltree.Node, p Predicate) []*xmltree.Node {
	out := nodes[:0:0]
	for i, n := range nodes {
		pos := i + 1
		keep := false
		switch p.Kind {
		case PredPos:
			switch p.Op {
			case CmpEq:
				keep = pos == p.Pos
			case CmpNe:
				keep = pos != p.Pos
			case CmpLt:
				keep = pos < p.Pos
			case CmpLe:
				keep = pos <= p.Pos
			case CmpGt:
				keep = pos > p.Pos
			case CmpGe:
				keep = pos >= p.Pos
			}
		case PredLast:
			keep = pos == len(nodes)
		case PredValue:
			keep = e.valueMatch(n, p)
		case PredExists:
			keep = len(e.evalRelative(n, p.Path)) > 0
		}
		if keep {
			out = append(out, n)
		}
	}
	return out
}

// valueMatch implements [path = 'lit'] with XPath any-match semantics; a nil
// path compares the context node's own string value.
func (e *evaluator) valueMatch(n *xmltree.Node, p Predicate) bool {
	var values []string
	if p.Path == nil {
		values = []string{n.TextContent()}
	} else {
		for _, m := range e.evalRelative(n, p.Path) {
			values = append(values, m.TextContent())
		}
	}
	for _, v := range values {
		eq := v == p.Value
		if (p.ValOp == CmpEq && eq) || (p.ValOp == CmpNe && !eq) {
			return true
		}
	}
	return false
}

func (e *evaluator) evalRelative(n *xmltree.Node, p *Path) []*xmltree.Node {
	ctx := []*xmltree.Node{n}
	for _, s := range p.Steps {
		ctx = e.step(ctx, s)
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// sortUnique returns the nodes deduplicated in document order. Nodes outside
// the order map (the virtual document node) keep position 0.
func (e *evaluator) sortUnique(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	seen := map[*xmltree.Node]bool{}
	out := make([]*xmltree.Node, 0, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	// Insertion sort keeps it simple; context lists are small relative to
	// documents and often already ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && e.order[out[j]] < e.order[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// StringValues returns the XPath string values of nodes, a convenience for
// tests and examples.
func StringValues(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.TextContent()
	}
	return out
}

// Describe renders a result node compactly for display: elements as
// <tag>, attributes as @name=value, text as quoted content.
func Describe(n *xmltree.Node) string {
	switch n.Kind {
	case xmltree.Attr:
		return "@" + n.Tag + "=" + n.Value
	case xmltree.Text:
		return "\"" + strings.TrimSpace(n.Value) + "\""
	default:
		return "<" + n.Tag + ">"
	}
}
