package encoding

import (
	"strings"
	"testing"

	"ordxml/internal/sqldb"
)

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Global, Local, Dewey} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v round trip: %v, %v", k, back, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("bad kind parsed")
	}
}

func TestValidate(t *testing.T) {
	good := []Options{
		{Kind: Global},
		{Kind: Local, Gap: 100},
		{Kind: Dewey, DeweyAsText: true},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", o, err)
		}
	}
	bad := []Options{
		{Kind: Kind(7)},
		{Kind: Global, DeweyAsText: true},
		{Kind: Local, DeweyAsText: true},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed", o)
		}
	}
}

func TestEffectiveGap(t *testing.T) {
	if (Options{}).EffectiveGap() != 1 {
		t.Error("zero gap should default to 1")
	}
	if (Options{Gap: 9}).EffectiveGap() != 9 {
		t.Error("explicit gap lost")
	}
}

func TestTableAndColumnNames(t *testing.T) {
	cases := []struct {
		o   Options
		tbl string
		col string
	}{
		{Options{Kind: Global}, "xg_nodes", "gorder"},
		{Options{Kind: Local}, "xl_nodes", "lorder"},
		{Options{Kind: Dewey}, "xd_nodes", "path"},
		{Options{Kind: Dewey, DeweyAsText: true}, "xs_nodes", "path"},
	}
	for _, c := range cases {
		if c.o.NodesTable() != c.tbl || c.o.OrderColumn() != c.col {
			t.Errorf("%+v: %s/%s", c.o, c.o.NodesTable(), c.o.OrderColumn())
		}
	}
}

func TestDDLShapes(t *testing.T) {
	// Local must not have a document-order unique index; the others must.
	localDDL := strings.Join(Options{Kind: Local}.DDL(), "\n")
	if strings.Contains(localDDL, "xl_nodes_order") {
		t.Error("local has a document-order index")
	}
	if !strings.Contains(localDDL, "UNIQUE INDEX xl_nodes_parent") {
		t.Error("local sibling index not unique")
	}
	globalDDL := strings.Join(Options{Kind: Global}.DDL(), "\n")
	if !strings.Contains(globalDDL, "UNIQUE INDEX xg_nodes_order") {
		t.Error("global lacks unique order index")
	}
	deweyDDL := strings.Join(Options{Kind: Dewey}.DDL(), "\n")
	if !strings.Contains(deweyDDL, "path BLOB NOT NULL") {
		t.Error("dewey path not BLOB")
	}
	textDDL := strings.Join(Options{Kind: Dewey, DeweyAsText: true}.DDL(), "\n")
	if !strings.Contains(textDDL, "path TEXT NOT NULL") {
		t.Error("text dewey path not TEXT")
	}
}

func TestInstall(t *testing.T) {
	db := sqldb.Open()
	if err := Install(db, Options{Kind: Global}); err != nil {
		t.Fatal(err)
	}
	if !Installed(db, Options{Kind: Global}) {
		t.Error("Installed = false after Install")
	}
	// Side-by-side encodings share the docs table.
	if err := Install(db, Options{Kind: Dewey}); err != nil {
		t.Fatal(err)
	}
	if db.Catalog().Table("docs") == nil {
		t.Error("docs table missing")
	}
	// Double install of the same encoding fails.
	if err := Install(db, Options{Kind: Global}); err == nil {
		t.Error("double install succeeded")
	}
	// Invalid options rejected.
	if err := Install(db, Options{Kind: Kind(9)}); err == nil {
		t.Error("invalid options installed")
	}
	if Installed(db, Options{Kind: Local}) {
		t.Error("local reported installed")
	}
}
