// Package encoding defines the three relational order encodings of the
// paper — Global, Local and Dewey — as concrete schemas over the embedded
// engine, plus the options (gap-based sparse orders, string-vs-binary Dewey
// keys) that the experiments vary.
//
// All encodings shred a document into one node table:
//
//	<nodes>(doc, id, parent, kind, tag, value, <order key>)
//
// where id is a stable surrogate node id (so the public API is
// encoding-agnostic), kind is elem/attr/text, tag is the element tag or
// attribute name, and value is the text or attribute value. The encodings
// differ only in the order key:
//
//	GLOBAL: gorder INT — absolute position in document order.
//	LOCAL:  lorder INT — position among siblings.
//	DEWEY:  path BLOB (or TEXT) — the Dewey path of sibling ordinals.
//
// A shared docs table registers documents. Multiple encodings can be
// installed in one database; their tables are disjoint, which is how the
// benchmark harness compares them on identical data.
package encoding

import (
	"fmt"

	"ordxml/internal/sqldb"
	"ordxml/internal/sqlgen"
)

// Kind selects the order encoding.
type Kind int

// The three encodings.
const (
	Global Kind = iota
	Local
	Dewey
)

// String returns the encoding name.
func (k Kind) String() string {
	switch k {
	case Global:
		return "global"
	case Local:
		return "local"
	case Dewey:
		return "dewey"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind reads an encoding name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "global":
		return Global, nil
	case "local":
		return Local, nil
	case "dewey":
		return Dewey, nil
	default:
		return 0, fmt.Errorf("unknown encoding %q (want global, local or dewey)", s)
	}
}

// Options configure one encoding instance.
type Options struct {
	Kind Kind
	// Gap is the spacing between consecutive order values (sibling ordinals
	// for Local/Dewey, document positions for Global). Gap 1 is the dense
	// encoding; larger gaps let inserts claim unused values and amortize
	// renumbering, as §5 of the paper discusses. Zero means 1.
	Gap uint32
	// DeweyAsText stores Dewey keys as fixed-width padded strings instead of
	// the binary codec — the E8 storage/performance ablation. Only
	// meaningful with Kind == Dewey.
	DeweyAsText bool
}

// EffectiveGap returns the gap with the zero default applied.
func (o Options) EffectiveGap() uint32 {
	if o.Gap == 0 {
		return 1
	}
	return o.Gap
}

// Validate rejects incoherent options.
func (o Options) Validate() error {
	if o.Kind < Global || o.Kind > Dewey {
		return fmt.Errorf("invalid encoding kind %d", o.Kind)
	}
	if o.DeweyAsText && o.Kind != Dewey {
		return fmt.Errorf("DeweyAsText requires the Dewey encoding")
	}
	return nil
}

// NodesTable returns the node-table name for this encoding instance.
func (o Options) NodesTable() string {
	switch o.Kind {
	case Global:
		return "xg_nodes"
	case Local:
		return "xl_nodes"
	case Dewey:
		if o.DeweyAsText {
			return "xs_nodes"
		}
		return "xd_nodes"
	default:
		panic(fmt.Sprintf("encoding: unknown kind %d", int(o.Kind)))
	}
}

// OrderColumn returns the name of the order-key column.
func (o Options) OrderColumn() string {
	switch o.Kind {
	case Global:
		return "gorder"
	case Local:
		return "lorder"
	case Dewey:
		return "path"
	default:
		panic(fmt.Sprintf("encoding: unknown kind %d", int(o.Kind)))
	}
}

// DocsDDL returns the statements creating the shared docs table.
func DocsDDL() []string {
	return []string{
		`CREATE TABLE docs (doc INT PRIMARY KEY, name TEXT NOT NULL, root INT NOT NULL, nodes INT NOT NULL)`,
	}
}

// DDL returns the statements creating this encoding's node table and its
// indexes. Index design follows the paper's query needs:
//
//   - a unique (doc, <order key>) index for document-order scans — for Dewey
//     this is also the ancestry index (prefix ranges);
//   - a unique (doc, id) index for point lookups by surrogate id;
//   - a (doc, parent, <order key>) index driving child and sibling axes;
//   - a (doc, tag, <order key>) index driving tag lookups in document order.
func (o Options) DDL() []string {
	tbl := o.NodesTable()
	ordCol := o.OrderColumn()
	ordType := "INT"
	if o.Kind == Dewey {
		if o.DeweyAsText {
			ordType = "TEXT"
		} else {
			ordType = "BLOB"
		}
	}
	stmts := []string{
		sqlgen.SQL(`CREATE TABLE %s (
			doc INT NOT NULL,
			id INT NOT NULL,
			parent INT,
			kind TEXT NOT NULL,
			tag TEXT,
			value TEXT,
			%s %s NOT NULL)`, tbl, ordCol, ordType),
		sqlgen.SQL(`CREATE UNIQUE INDEX %s_id ON %s (doc, id)`, tbl, tbl),
	}
	if o.Kind == Local {
		// A local order value is unique only among siblings: the sibling
		// index is the unique one, and there is no document-order index —
		// the defining weakness of the encoding.
		stmts = append(stmts,
			sqlgen.SQL(`CREATE UNIQUE INDEX %s_parent ON %s (doc, parent, %s)`, tbl, tbl, ordCol),
			sqlgen.SQL(`CREATE INDEX %s_tag ON %s (doc, tag)`, tbl, tbl),
		)
	} else {
		stmts = append(stmts,
			sqlgen.SQL(`CREATE UNIQUE INDEX %s_order ON %s (doc, %s)`, tbl, tbl, ordCol),
			sqlgen.SQL(`CREATE INDEX %s_parent ON %s (doc, parent, %s)`, tbl, tbl, ordCol),
			sqlgen.SQL(`CREATE INDEX %s_tag ON %s (doc, tag, %s)`, tbl, tbl, ordCol),
		)
	}
	return stmts
}

// Install creates the docs table (once) and this encoding's tables in db.
// Installing the same encoding twice is an error; installing different
// encodings side by side is supported.
func Install(db *sqldb.DB, o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if db.Catalog().Table("docs") == nil {
		for _, stmt := range DocsDDL() {
			if _, err := db.Exec(stmt); err != nil {
				return fmt.Errorf("install docs schema: %w", err)
			}
		}
	}
	for _, stmt := range o.DDL() {
		if _, err := db.Exec(stmt); err != nil {
			return fmt.Errorf("install %s schema: %w", o.Kind, err)
		}
	}
	return nil
}

// Installed reports whether this encoding's node table exists in db.
func Installed(db *sqldb.DB, o Options) bool {
	return db.Catalog().Table(o.NodesTable()) != nil
}
