// Package check verifies the structural invariants of a shredded document —
// the consistency contract between the relational rows and the ordered XML
// they encode. It is the storage-level sanity tool (exposed as Store.Check):
// after any sequence of updates, a document must still satisfy every
// invariant of its encoding.
package check

import (
	"fmt"

	"ordxml/internal/core/dewey"
	"ordxml/internal/core/encoding"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// Checker verifies documents stored under one encoding.
type Checker struct {
	db   *sqldb.DB
	opts encoding.Options
	all  *sqldb.Stmt
	meta *sqldb.Stmt
}

// New prepares a checker.
func New(db *sqldb.DB, opts encoding.Options) (*Checker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	c := &Checker{db: db, opts: opts}
	var err error
	if c.all, err = db.Prepare(sqlgen.SQL(
		`SELECT id, parent, kind, tag, value, %s FROM %s WHERE doc = ?`,
		opts.OrderColumn(), opts.NodesTable())); err != nil {
		return nil, err
	}
	if c.meta, err = db.Prepare(`SELECT nodes FROM docs WHERE doc = ?`); err != nil {
		return nil, err
	}
	return c, nil
}

// row is one decoded node row.
type row struct {
	id     int64
	parent int64
	kind   xmltree.Kind
	tag    string
	hasTag bool
	value  sqltypes.Value
	order  sqltypes.Value
}

// Document verifies every invariant for one document and returns the list of
// violations (empty means consistent).
func (c *Checker) Document(doc int64) ([]string, error) {
	res, err := c.all.Query(sqldb.I(doc))
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	rows := make(map[int64]row, len(res.Rows))
	var roots []int64
	for _, r := range res.Rows {
		kind, err := xmltree.ParseKind(r[2].Text())
		if err != nil {
			report("node %d: bad kind %q", r[0].Int(), r[2].Text())
			continue
		}
		n := row{id: r[0].Int(), kind: kind, value: r[4], order: r[5]}
		if !r[1].IsNull() {
			n.parent = r[1].Int()
		} else {
			roots = append(roots, n.id)
		}
		if !r[3].IsNull() {
			n.tag, n.hasTag = r[3].Text(), true
		}
		rows[n.id] = n
	}
	if len(res.Rows) == 0 {
		return []string{fmt.Sprintf("document %d has no rows", doc)}, nil
	}

	// Registry consistency.
	meta, err := c.meta.Query(sqldb.I(doc))
	if err != nil {
		return nil, err
	}
	if len(meta.Rows) == 0 {
		report("document %d missing from docs registry", doc)
	} else if got := meta.Rows[0][0].Int(); got != int64(len(rows)) {
		report("docs.nodes = %d but %d rows stored", got, len(rows))
	}

	// Exactly one root, and it is an element.
	if len(roots) != 1 {
		report("document has %d roots, want 1", len(roots))
	} else if rows[roots[0]].kind != xmltree.Element {
		report("root %d is %s, want element", roots[0], rows[roots[0]].kind)
	}

	// Per-node shape invariants.
	for _, n := range rows {
		switch n.kind {
		case xmltree.Element:
			if !n.hasTag || n.tag == "" {
				report("element %d has no tag", n.id)
			}
			if !n.value.IsNull() {
				report("element %d has a value", n.id)
			}
		case xmltree.Attr:
			if !n.hasTag || n.tag == "" {
				report("attribute %d has no name", n.id)
			}
			if n.value.IsNull() {
				report("attribute %d has no value", n.id)
			}
		case xmltree.Text:
			if n.hasTag {
				report("text node %d has a tag", n.id)
			}
			if n.value.IsNull() {
				report("text node %d has no value", n.id)
			}
		}
		if n.parent != 0 {
			p, ok := rows[n.parent]
			switch {
			case !ok:
				report("node %d has missing parent %d", n.id, n.parent)
			case p.kind != xmltree.Element:
				report("node %d has non-element parent %d (%s)", n.id, n.parent, p.kind)
			}
		}
	}

	// Encoding-specific order invariants.
	switch c.opts.Kind {
	case encoding.Global:
		c.checkGlobal(rows, report)
	case encoding.Local:
		c.checkLocal(rows, report)
	case encoding.Dewey:
		c.checkDewey(rows, report)
	default:
		return nil, fmt.Errorf("check: unknown encoding kind %d", int(c.opts.Kind))
	}
	return problems, nil
}

// checkGlobal: every node's global order exceeds its parent's (a parent
// precedes its whole subtree in document order); orders are unique.
func (c *Checker) checkGlobal(rows map[int64]row, report func(string, ...any)) {
	seen := map[int64]int64{}
	for _, n := range rows {
		g := n.order.Int()
		if prev, dup := seen[g]; dup {
			report("nodes %d and %d share gorder %d", prev, n.id, g)
		}
		seen[g] = n.id
		if n.parent != 0 {
			if p, ok := rows[n.parent]; ok && p.order.Int() >= g {
				report("node %d (gorder %d) does not follow its parent %d (gorder %d)",
					n.id, g, p.id, p.order.Int())
			}
		}
	}
}

// checkLocal: sibling orders are unique per parent and positive.
func (c *Checker) checkLocal(rows map[int64]row, report func(string, ...any)) {
	type slot struct{ parent, order int64 }
	seen := map[slot]int64{}
	for _, n := range rows {
		l := n.order.Int()
		if l <= 0 {
			report("node %d has non-positive lorder %d", n.id, l)
		}
		key := slot{n.parent, l}
		if prev, dup := seen[key]; dup {
			report("nodes %d and %d share lorder %d under parent %d", prev, n.id, l, n.parent)
		}
		seen[key] = n.id
	}
}

// checkDewey: each node's path is its parent's path plus exactly one
// component; the root path has depth 1; paths are unique (enforced by the
// index, re-verified here).
func (c *Checker) checkDewey(rows map[int64]row, report func(string, ...any)) {
	paths := make(map[int64]dewey.Path, len(rows))
	for _, n := range rows {
		var p dewey.Path
		var err error
		if c.opts.DeweyAsText {
			p, err = dewey.ParsePadded(n.order.Text())
		} else {
			p, err = dewey.FromBytes(n.order.Blob())
		}
		if err != nil {
			report("node %d has undecodable path: %v", n.id, err)
			continue
		}
		paths[n.id] = p
	}
	for _, n := range rows {
		p, ok := paths[n.id]
		if !ok {
			continue
		}
		if n.parent == 0 {
			if p.Depth() != 1 {
				report("root %d has path %s, want depth 1", n.id, p)
			}
			continue
		}
		pp, ok := paths[n.parent]
		if !ok {
			continue // missing parent already reported
		}
		if p.Depth() != pp.Depth()+1 || !pp.IsAncestorOf(p) {
			report("node %d path %s is not a direct extension of parent %d path %s",
				n.id, p, n.parent, pp)
		}
	}
}
