package check

import (
	"fmt"

	"ordxml/internal/core/encoding"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqlgen"
)

// Verify is the deep integrity check for a whole store: it validates the
// physical storage invariants of every table (heap pages, B+tree key order
// and balance, index/heap agreement via DB.CheckIntegrity), then runs the
// logical per-document invariants of the encoding (Checker.Document) for
// every registered document, and finally sweeps the nodes table for orphan
// rows whose document is missing from the registry.
//
// It returns every violation found, each prefixed with where it was found.
// An empty slice means the store is consistent at both levels.
func Verify(db *sqldb.DB, opts encoding.Options) ([]string, error) {
	var problems []string
	for _, p := range db.CheckIntegrity() {
		problems = append(problems, "storage: "+p)
	}

	c, err := New(db, opts)
	if err != nil {
		return nil, err
	}
	docs, err := db.Query(`SELECT doc FROM docs ORDER BY doc`)
	if err != nil {
		return nil, err
	}
	registered := make(map[int64]bool, len(docs.Rows))
	for _, r := range docs.Rows {
		doc := r[0].Int()
		registered[doc] = true
		ps, err := c.Document(doc)
		if err != nil {
			// A document so damaged the checker cannot even read it is a
			// finding, not a reason to abort the rest of the sweep.
			problems = append(problems, fmt.Sprintf("document %d: check failed: %v", doc, err))
			continue
		}
		for _, p := range ps {
			problems = append(problems, fmt.Sprintf("document %d: %s", doc, p))
		}
	}

	// Orphan sweep: node rows referencing a document the registry does not
	// know cannot be reached by any query that joins through docs — silent
	// dead weight, and a sign of a botched delete.
	orphans, err := db.Query(sqlgen.SQL(
		`SELECT DISTINCT doc FROM %s ORDER BY doc`, opts.NodesTable()))
	if err != nil {
		return nil, err
	}
	for _, r := range orphans.Rows {
		if doc := r[0].Int(); !registered[doc] {
			problems = append(problems, fmt.Sprintf(
				"document %d has rows in %s but no docs registry entry", doc, opts.NodesTable()))
		}
	}
	return problems, nil
}
