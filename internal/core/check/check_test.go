package check

import (
	"fmt"
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/shred"
	"ordxml/internal/core/update"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmlgen"
)

func allOptions() []encoding.Options {
	return []encoding.Options{
		{Kind: encoding.Global},
		{Kind: encoding.Local},
		{Kind: encoding.Dewey},
		{Kind: encoding.Dewey, Gap: 8},
		{Kind: encoding.Dewey, DeweyAsText: true},
	}
}

func load(t *testing.T, opts encoding.Options, seed int64) (*sqldb.DB, int64, *Checker) {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	sh, err := shred.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sh.LoadTree("d", xmlgen.Random(xmlgen.DefaultRandom(seed)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, doc, c
}

// Freshly shredded documents are consistent under every encoding, and stay
// consistent through an edit sequence.
func TestConsistentAfterShredAndUpdates(t *testing.T) {
	for _, opts := range allOptions() {
		db, doc, c := load(t, opts, 3)
		problems, err := c.Document(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 0 {
			t.Fatalf("%s: fresh document inconsistent: %v", opts.Kind, problems)
		}
		// Drive updates and re-check.
		mgr, err := update.New(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := mgr.InsertXML(doc, 1, update.FirstChild,
				fmt.Sprintf("<edit n=\"%d\"><t>v</t></edit>", i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mgr.Delete(doc, 2); err != nil {
			t.Fatal(err)
		}
		problems, err = c.Document(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) != 0 {
			t.Fatalf("%s: post-update inconsistent: %v", opts.Kind, problems)
		}
	}
}

// Corrupting rows through raw SQL must be detected.
func TestDetectsCorruption(t *testing.T) {
	cases := []struct {
		opts    encoding.Options
		corrupt string
		want    string
	}{
		{encoding.Options{Kind: encoding.Global},
			"UPDATE xg_nodes SET parent = 9999 WHERE doc = 1 AND id = 3",
			"missing parent"},
		{encoding.Options{Kind: encoding.Global},
			"UPDATE xg_nodes SET gorder = 0 WHERE doc = 1 AND id = 3",
			"does not follow its parent"},
		{encoding.Options{Kind: encoding.Local},
			"UPDATE xl_nodes SET lorder = -1 WHERE doc = 1 AND id = 3",
			"non-positive lorder"},
		{encoding.Options{Kind: encoding.Dewey},
			"UPDATE xd_nodes SET parent = 1 WHERE doc = 1 AND id = 4",
			"not a direct extension"},
		{encoding.Options{Kind: encoding.Global},
			"UPDATE xg_nodes SET kind = 'text' WHERE doc = 1 AND id = 1",
			"want element"},
		{encoding.Options{Kind: encoding.Global},
			"UPDATE xg_nodes SET tag = NULL WHERE doc = 1 AND id = 1 AND kind = 'elem'",
			"has no tag"},
		{encoding.Options{Kind: encoding.Global},
			"UPDATE docs SET nodes = 99999 WHERE doc = 1",
			"docs.nodes"},
		{encoding.Options{Kind: encoding.Global},
			"DELETE FROM docs WHERE doc = 1",
			"missing from docs registry"},
	}
	for _, tc := range cases {
		db, doc, c := load(t, tc.opts, 5)
		if _, err := db.Exec(tc.corrupt); err != nil {
			t.Fatalf("corrupt %q: %v", tc.corrupt, err)
		}
		problems, err := c.Document(doc)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range problems {
			if contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: corruption %q not detected; problems: %v", tc.opts.Kind, tc.corrupt, problems)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMissingDocument(t *testing.T) {
	_, _, c := load(t, encoding.Options{Kind: encoding.Dewey}, 1)
	problems, err := c.Document(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !contains(problems[0], "no rows") {
		t.Errorf("missing doc: %v", problems)
	}
}

func TestNewValidation(t *testing.T) {
	db := sqldb.Open()
	if _, err := New(db, encoding.Options{Kind: encoding.Kind(8)}); err == nil {
		t.Error("bad options accepted")
	}
	if _, err := New(db, encoding.Options{Kind: encoding.Global}); err == nil {
		t.Error("uninstalled encoding accepted")
	}
}
