package update

import (
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// insertLocal places the fragment under its parent with a fresh sibling
// ordinal. Only following siblings can need renumbering; the fragment's
// interior gets fresh per-parent numbering, so subtree size never matters —
// the local encoding's defining strength.
func (m *Manager) insertLocal(doc int64, t node, mode Mode, frag *xmltree.Node) (Stats, error) {
	parentID := insertionParent(t, mode)
	anchor, err := m.localAnchor(doc, t, mode)
	if err != nil {
		return Stats{}, err
	}
	gap := int64(m.opts.EffectiveGap())
	stats := Stats{RowsInserted: int64(frag.Size())}

	var rootOrd int64
	if anchor == nil {
		maxL, err := m.maxChildOrder(doc, parentID)
		if err != nil {
			return stats, err
		}
		rootOrd = maxL + gap
	} else {
		aPos := anchor.order.Int()
		prev, err := m.maxChildOrderBelow(doc, parentID, aPos)
		if err != nil {
			return stats, err
		}
		if aPos-prev > 1 {
			rootOrd = prev + (aPos-prev)/2
		} else {
			renumbered, err := m.shiftSiblings(doc, parentID, aPos, gap)
			if err != nil {
				return stats, err
			}
			stats.RowsRenumbered = renumbered
			rootOrd = aPos
		}
	}

	base, err := m.nextID(doc)
	if err != nil {
		return stats, err
	}
	rows := flattenFragment(frag)
	batch := make([]sqltypes.Row, 0, len(rows))
	for i := range rows {
		rows[i].id += base - 1
		pid := rows[i].parent
		ord := int64(rows[i].ordinal) * gap
		if pid == 0 {
			pid = parentID
			ord = rootOrd
		} else {
			pid += base - 1
		}
		batch = append(batch, m.buildRow(doc, rows[i], pid, sqldb.I(ord)))
	}
	if err := m.insertRows(batch); err != nil {
		return stats, err
	}
	stats.NewID = base
	return stats, nil
}

// localAnchor finds the sibling the new node goes in front of (nil: append).
func (m *Manager) localAnchor(doc int64, t node, mode Mode) (*node, error) {
	switch mode {
	case Before:
		return &t, nil
	case After:
		return m.nextSibling(doc, t)
	case FirstChild:
		return m.firstNonAttrChild(doc, t.id)
	default: // LastChild
		return nil, nil
	}
}

func (m *Manager) maxChildOrder(doc, parent int64) (int64, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT MAX(%s) FROM %s WHERE doc = ? AND parent = ?`, m.ord, m.tbl))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(parent))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

func (m *Manager) maxChildOrderBelow(doc, parent, below int64) (int64, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT MAX(%s) FROM %s WHERE doc = ? AND parent = ? AND %s < ?`, m.ord, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(parent), sqldb.I(below))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

// shiftSiblings adds delta to the sibling order of every child of parent at
// or after from, in descending order to respect the unique sibling index.
func (m *Manager) shiftSiblings(doc, parent, from, delta int64) (int64, error) {
	sel, err := m.prepare(sqlgen.SQL(
		`SELECT id, %s FROM %s WHERE doc = ? AND parent = ? AND %s >= ? ORDER BY %s DESC`,
		m.ord, m.tbl, m.ord, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := sel.Query(sqldb.I(doc), sqldb.I(parent), sqldb.I(from))
	if err != nil {
		return 0, err
	}
	upd, err := m.prepare(sqlgen.SQL(
		`UPDATE %s SET %s = ? WHERE doc = ? AND id = ?`, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	for _, r := range res.Rows {
		if _, err := upd.Exec(sqldb.I(r[1].Int()+delta), sqldb.I(doc), sqldb.I(r[0].Int())); err != nil {
			return 0, err
		}
	}
	return int64(len(res.Rows)), nil
}

// deleteLocal removes the subtree by walking children (the local encoding
// has no subtree range).
func (m *Manager) deleteLocal(doc int64, t node) (Stats, error) {
	childSel, err := m.prepare(sqlgen.SQL(
		`SELECT id FROM %s WHERE doc = ? AND parent = ?`, m.tbl))
	if err != nil {
		return Stats{}, err
	}
	del, err := m.prepare(sqlgen.SQL(
		`DELETE FROM %s WHERE doc = ? AND id = ?`, m.tbl))
	if err != nil {
		return Stats{}, err
	}
	var count int64
	var walk func(id int64) error
	walk = func(id int64) error {
		res, err := childSel.Query(sqldb.I(doc), sqldb.I(id))
		if err != nil {
			return err
		}
		for _, r := range res.Rows {
			if err := walk(r[0].Int()); err != nil {
				return err
			}
		}
		if _, err := del.Exec(sqldb.I(doc), sqldb.I(id)); err != nil {
			return err
		}
		count++
		return nil
	}
	if err := walk(t.id); err != nil {
		return Stats{RowsDeleted: count}, err
	}
	return Stats{RowsDeleted: count}, nil
}
