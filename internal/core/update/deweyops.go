package update

import (
	"fmt"

	"ordxml/internal/core/dewey"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// pathOf decodes a node's stored Dewey key.
func (m *Manager) pathOf(order sqltypes.Value) (dewey.Path, error) {
	if m.opts.DeweyAsText {
		return dewey.ParsePadded(order.Text())
	}
	return dewey.FromBytes(order.Blob())
}

// keyOf encodes a path for storage.
func (m *Manager) keyOf(p dewey.Path) sqltypes.Value {
	if m.opts.DeweyAsText {
		return sqldb.S(p.PaddedString())
	}
	return sqldb.B(p.Bytes())
}

// insertDewey assigns the fragment root a fresh sibling ordinal under its
// parent's path. When the local ordinal gap is exhausted, following siblings
// are renumbered — and, unlike the local encoding, each renumbered sibling
// drags its whole subtree along, because the sibling ordinal is a prefix
// component of every descendant path.
func (m *Manager) insertDewey(doc int64, t node, mode Mode, frag *xmltree.Node) (Stats, error) {
	tPath, err := m.pathOf(t.order)
	if err != nil {
		return Stats{}, err
	}
	var parentID int64
	var parentPath dewey.Path
	switch mode {
	case FirstChild, LastChild:
		parentID = t.id
		parentPath = tPath
	default:
		parentID = t.parent
		parentPath = tPath.Parent()
	}
	anchor, err := m.localAnchor(doc, t, mode)
	if err != nil {
		return Stats{}, err
	}
	gap := m.opts.EffectiveGap()
	stats := Stats{RowsInserted: int64(frag.Size())}

	var rootComp uint32
	if anchor == nil {
		last, err := m.lastChildComponent(doc, parentID)
		if err != nil {
			return stats, err
		}
		rootComp = last + gap
	} else {
		aPath, err := m.pathOf(anchor.order)
		if err != nil {
			return stats, err
		}
		aComp := aPath.Last()
		prevComp, err := m.prevSiblingComponent(doc, parentID, anchor.order)
		if err != nil {
			return stats, err
		}
		if aComp-prevComp > 1 {
			rootComp = prevComp + (aComp-prevComp)/2
		} else {
			renumbered, err := m.shiftDeweySiblings(doc, parentID, aPath, gap)
			if err != nil {
				return stats, err
			}
			stats.RowsRenumbered = renumbered
			rootComp = aComp
		}
	}

	var rootPath dewey.Path
	if parentPath == nil {
		// Inserting a sibling of the root is rejected earlier; parentPath is
		// nil only for first/last child of the root, where tPath is depth 1.
		return stats, fmt.Errorf("internal: no parent path")
	}
	rootPath = parentPath.Child(rootComp)

	base, err := m.nextID(doc)
	if err != nil {
		return stats, err
	}
	rows := flattenFragment(frag)
	paths := map[int64]dewey.Path{}
	batch := make([]sqltypes.Row, 0, len(rows))
	for i := range rows {
		rows[i].id += base - 1
		pid := rows[i].parent
		var p dewey.Path
		if pid == 0 {
			pid = parentID
			p = rootPath
		} else {
			pid += base - 1
			p = paths[pid].Child(rows[i].ordinal * gap)
		}
		paths[rows[i].id] = p
		batch = append(batch, m.buildRow(doc, rows[i], pid, m.keyOf(p)))
	}
	if err := m.insertRows(batch); err != nil {
		return stats, err
	}
	stats.NewID = base
	return stats, nil
}

// lastChildComponent returns the sibling ordinal of parent's last child, or
// 0 when childless.
func (m *Manager) lastChildComponent(doc, parent int64) (uint32, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ? AND parent = ? ORDER BY %s DESC LIMIT 1`,
		m.ord, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(parent))
	if err != nil || len(res.Rows) == 0 {
		return 0, err
	}
	p, err := m.pathOf(res.Rows[0][0])
	if err != nil {
		return 0, err
	}
	return p.Last(), nil
}

// prevSiblingComponent returns the ordinal of the sibling immediately before
// the anchor, or 0.
func (m *Manager) prevSiblingComponent(doc, parent int64, anchorKey sqltypes.Value) (uint32, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ? AND parent = ? AND %s < ? ORDER BY %s DESC LIMIT 1`,
		m.ord, m.tbl, m.ord, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(parent), anchorKey)
	if err != nil || len(res.Rows) == 0 {
		return 0, err
	}
	p, err := m.pathOf(res.Rows[0][0])
	if err != nil {
		return 0, err
	}
	return p.Last(), nil
}

// shiftDeweySiblings renumbers every sibling at or after the anchor path by
// +delta ordinals, re-pathing each sibling's entire subtree. The affected
// rows form one contiguous key range — from the anchor path to the end of
// the parent's subtree — so a single range scan finds them all; rows are
// rewritten in descending key order so new paths never collide with unmoved
// ones.
func (m *Manager) shiftDeweySiblings(doc, parent int64, from dewey.Path, delta uint32) (int64, error) {
	parentPath := from.Parent()
	if parentPath == nil {
		return 0, fmt.Errorf("internal: anchor %s has no parent path", from)
	}
	var highKey sqltypes.Value
	if m.opts.DeweyAsText {
		highKey = sqldb.S(parentPath.PaddedPrefixSuccessor())
	} else {
		high := parentPath.PrefixSuccessor()
		if high == nil {
			return 0, fmt.Errorf("parent path has no successor")
		}
		highKey = sqldb.B(high)
	}
	sel, err := m.prepare(sqlgen.SQL(
		`SELECT id, %s FROM %s WHERE doc = ? AND %s >= ? AND %s < ? ORDER BY %s DESC`,
		m.ord, m.tbl, m.ord, m.ord, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := sel.Query(sqldb.I(doc), m.keyOf(from), highKey)
	if err != nil {
		return 0, err
	}
	upd, err := m.prepare(sqlgen.SQL(
		`UPDATE %s SET %s = ? WHERE doc = ? AND id = ?`, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	comp := len(parentPath) // index of the sibling ordinal in each path
	for _, r := range res.Rows {
		p, err := m.pathOf(r[1])
		if err != nil {
			return 0, err
		}
		np := p.Clone()
		np[comp] += delta
		if _, err := upd.Exec(m.keyOf(np), sqldb.I(doc), sqldb.I(r[0].Int())); err != nil {
			return 0, err
		}
	}
	return int64(len(res.Rows)), nil
}

// deleteDewey removes the subtree with one path-range delete.
func (m *Manager) deleteDewey(doc int64, t node) (Stats, error) {
	p, err := m.pathOf(t.order)
	if err != nil {
		return Stats{}, err
	}
	var low, high sqltypes.Value
	if m.opts.DeweyAsText {
		low = sqldb.S(p.PaddedString())
		high = sqldb.S(p.PaddedPrefixSuccessor())
	} else {
		low = sqldb.B(p.Bytes())
		succ := p.PrefixSuccessor()
		if succ == nil {
			return Stats{}, fmt.Errorf("path has no successor")
		}
		high = sqldb.B(succ)
	}
	stmt, err := m.prepare(sqlgen.SQL(
		`DELETE FROM %s WHERE doc = ? AND %s >= ? AND %s < ?`, m.tbl, m.ord, m.ord))
	if err != nil {
		return Stats{}, err
	}
	n, err := stmt.Exec(sqldb.I(doc), low, high)
	if err != nil {
		return Stats{}, err
	}
	return Stats{RowsDeleted: int64(n)}, nil
}
