package update

import (
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// insertGlobal places the fragment in the global order. The insertion point
// is expressed as the "anchor": the existing node that will immediately
// follow the new subtree in document order (nil when appending at the end).
// If the gap before the anchor cannot hold the subtree, every node from the
// anchor onward is shifted — the global encoding's worst case.
func (m *Manager) insertGlobal(doc int64, t node, mode Mode, frag *xmltree.Node) (Stats, error) {
	anchor, err := m.globalAnchor(doc, t, mode)
	if err != nil {
		return Stats{}, err
	}
	rows := flattenFragment(frag)
	k := int64(len(rows))
	gap := int64(m.opts.EffectiveGap())
	stats := Stats{RowsInserted: k}

	positions := make([]int64, k)
	switch {
	case anchor == nil:
		maxG, err := m.maxOrder(doc)
		if err != nil {
			return stats, err
		}
		for i := range positions {
			positions[i] = maxG + gap*int64(i+1)
		}
	default:
		aPos := anchor.order.Int()
		prev, err := m.maxOrderBelow(doc, aPos)
		if err != nil {
			return stats, err
		}
		if avail := aPos - prev - 1; avail >= k {
			// The subtree fits in the existing gap: spread it evenly, no
			// renumbering.
			step := (aPos - prev) / (k + 1)
			if step < 1 {
				step = 1
			}
			for i := range positions {
				positions[i] = prev + step*int64(i+1)
			}
		} else {
			delta := k * gap
			renumbered, err := m.shiftGlobal(doc, aPos, delta)
			if err != nil {
				return stats, err
			}
			stats.RowsRenumbered = renumbered
			for i := range positions {
				positions[i] = aPos + gap*int64(i)
			}
		}
	}

	base, err := m.nextID(doc)
	if err != nil {
		return stats, err
	}
	rootParent := insertionParent(t, mode)
	batch := make([]sqltypes.Row, 0, len(rows))
	for i := range rows {
		rows[i].id += base - 1
		parentID := rows[i].parent
		if parentID == 0 {
			parentID = rootParent
		} else {
			parentID += base - 1
		}
		batch = append(batch, m.buildRow(doc, rows[i], parentID, sqldb.I(positions[i])))
	}
	if err := m.insertRows(batch); err != nil {
		return stats, err
	}
	stats.NewID = base
	return stats, nil
}

// insertionParent resolves which node becomes the fragment root's parent.
func insertionParent(t node, mode Mode) int64 {
	if mode == FirstChild || mode == LastChild {
		return t.id
	}
	return t.parent
}

// globalAnchor finds the node that will follow the inserted subtree.
func (m *Manager) globalAnchor(doc int64, t node, mode Mode) (*node, error) {
	switch mode {
	case Before:
		return &t, nil
	case FirstChild:
		first, err := m.firstNonAttrChild(doc, t.id)
		if err != nil {
			return nil, err
		}
		if first != nil {
			return first, nil
		}
		return m.successorAfterSubtree(doc, t)
	default: // After, LastChild
		return m.successorAfterSubtree(doc, t)
	}
}

// successorAfterSubtree is the first node in document order after t's
// subtree: t's next sibling, or the nearest ancestor's next sibling.
func (m *Manager) successorAfterSubtree(doc int64, t node) (*node, error) {
	for {
		if t.parent == 0 {
			return nil, nil
		}
		next, err := m.nextSibling(doc, t)
		if err != nil {
			return nil, err
		}
		if next != nil {
			return next, nil
		}
		parent, err := m.fetch(doc, t.parent)
		if err != nil {
			return nil, err
		}
		t = parent
	}
}

func (m *Manager) nextSibling(doc int64, t node) (*node, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT id, parent, kind, %s FROM %s WHERE doc = ? AND parent = ? AND %s > ? ORDER BY %s LIMIT 1`,
		m.ord, m.tbl, m.ord, m.ord))
	if err != nil {
		return nil, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(t.parent), t.order)
	if err != nil || len(res.Rows) == 0 {
		return nil, err
	}
	n, err := decodeNode(res.Rows[0])
	return &n, err
}

func (m *Manager) firstNonAttrChild(doc, parent int64) (*node, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT id, parent, kind, %s FROM %s WHERE doc = ? AND parent = ? AND kind <> 'attr' ORDER BY %s LIMIT 1`,
		m.ord, m.tbl, m.ord))
	if err != nil {
		return nil, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(parent))
	if err != nil || len(res.Rows) == 0 {
		return nil, err
	}
	n, err := decodeNode(res.Rows[0])
	return &n, err
}

func (m *Manager) maxOrder(doc int64) (int64, error) {
	stmt, err := m.prepare(sqlgen.SQL(`SELECT MAX(%s) FROM %s WHERE doc = ?`, m.ord, m.tbl))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

func (m *Manager) maxOrderBelow(doc, below int64) (int64, error) {
	stmt, err := m.prepare(sqlgen.SQL(
		`SELECT MAX(%s) FROM %s WHERE doc = ? AND %s < ?`, m.ord, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := stmt.Query(sqldb.I(doc), sqldb.I(below))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

// shiftGlobal adds delta to the global order of every node at or after
// from. Rows are rewritten in descending order so the unique (doc, gorder)
// index never sees a transient collision.
func (m *Manager) shiftGlobal(doc, from, delta int64) (int64, error) {
	sel, err := m.prepare(sqlgen.SQL(
		`SELECT id, %s FROM %s WHERE doc = ? AND %s >= ? ORDER BY %s DESC`,
		m.ord, m.tbl, m.ord, m.ord))
	if err != nil {
		return 0, err
	}
	res, err := sel.Query(sqldb.I(doc), sqldb.I(from))
	if err != nil {
		return 0, err
	}
	upd, err := m.prepare(sqlgen.SQL(
		`UPDATE %s SET %s = ? WHERE doc = ? AND id = ?`, m.tbl, m.ord))
	if err != nil {
		return 0, err
	}
	for _, r := range res.Rows {
		if _, err := upd.Exec(sqldb.I(r[1].Int()+delta), sqldb.I(doc), sqldb.I(r[0].Int())); err != nil {
			return 0, err
		}
	}
	return int64(len(res.Rows)), nil
}

// deleteGlobal removes the contiguous global-order range of t's subtree.
func (m *Manager) deleteGlobal(doc int64, t node) (Stats, error) {
	succ, err := m.successorAfterSubtree(doc, t)
	if err != nil {
		return Stats{}, err
	}
	var n int
	if succ == nil {
		stmt, err := m.prepare(sqlgen.SQL(
			`DELETE FROM %s WHERE doc = ? AND %s >= ?`, m.tbl, m.ord))
		if err != nil {
			return Stats{}, err
		}
		n, err = stmt.Exec(sqldb.I(doc), t.order)
		if err != nil {
			return Stats{}, err
		}
	} else {
		stmt, err := m.prepare(sqlgen.SQL(
			`DELETE FROM %s WHERE doc = ? AND %s >= ? AND %s < ?`, m.tbl, m.ord, m.ord))
		if err != nil {
			return Stats{}, err
		}
		n, err = stmt.Exec(sqldb.I(doc), t.order, succ.order)
		if err != nil {
			return Stats{}, err
		}
	}
	return Stats{RowsDeleted: int64(n)}, nil
}
