// Package update implements ordered XML updates over the relational
// encodings: subtree insertion at any position and subtree deletion. The
// renumbering behaviour is the paper's central trade-off:
//
//   - GLOBAL: inserting k nodes shifts the global order of every node after
//     the insertion point — potentially the rest of the document.
//   - LOCAL: only following siblings of the insertion point shift.
//   - DEWEY: following siblings shift and their entire subtrees must be
//     re-pathed (a sibling ordinal is a prefix component of its descendants).
//
// Gap-based (sparse) order values amortize all three: an insert first tries
// to claim an unused value between its neighbours and only renumbers when
// the local gap is exhausted. Stats report rows inserted and rows renumbered
// so experiments can separate the two costs.
package update

import (
	"fmt"

	"ordxml/internal/core/encoding"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// Mode places an inserted subtree relative to the target node.
type Mode int

// Insertion modes.
const (
	// FirstChild inserts as the target's first child (after its attributes).
	FirstChild Mode = iota
	// LastChild appends as the target's last child.
	LastChild
	// Before inserts as the sibling immediately preceding the target.
	Before
	// After inserts as the sibling immediately following the target.
	After
)

// String returns the mode name.
func (m Mode) String() string {
	return [...]string{"first-child", "last-child", "before", "after"}[m]
}

// ParseMode reads a mode name as spelled by String. The WAL records insert
// positions by name, so the two must stay inverse.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{FirstChild, LastChild, Before, After} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("update: unknown insert mode %q", s)
}

// Stats reports the work an update performed.
type Stats struct {
	// RowsInserted is the size of the inserted subtree (0 for deletes).
	RowsInserted int64
	// RowsRenumbered counts existing rows whose order key was rewritten.
	RowsRenumbered int64
	// RowsDeleted counts removed rows (0 for inserts).
	RowsDeleted int64
	// NewID is the surrogate id of the inserted subtree root.
	NewID int64
}

// Manager performs updates for one encoding.
type Manager struct {
	db   *sqldb.DB
	opts encoding.Options
	tbl  string
	ord  string

	byID        *sqldb.Stmt
	maxID       *sqldb.Stmt
	bumpDocSize *sqldb.Stmt
	stmts       map[string]*sqldb.Stmt
}

// node mirrors one row's identity fields.
type node struct {
	id     int64
	parent int64
	kind   xmltree.Kind
	order  sqltypes.Value
}

// New prepares a manager. The encoding must be installed.
func New(db *sqldb.DB, opts encoding.Options) (*Manager, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	m := &Manager{db: db, opts: opts, tbl: opts.NodesTable(), ord: opts.OrderColumn(),
		stmts: map[string]*sqldb.Stmt{}}
	var err error
	if m.byID, err = db.Prepare(sqlgen.SQL(
		`SELECT id, parent, kind, %s FROM %s WHERE doc = ? AND id = ?`, m.ord, m.tbl)); err != nil {
		return nil, err
	}
	if m.maxID, err = db.Prepare(sqlgen.SQL(
		`SELECT MAX(id) FROM %s WHERE doc = ?`, m.tbl)); err != nil {
		return nil, err
	}
	if m.bumpDocSize, err = db.Prepare(`UPDATE docs SET nodes = nodes + ? WHERE doc = ?`); err != nil {
		return nil, err
	}
	return m, nil
}

// Options returns the manager's encoding options.
func (m *Manager) Options() encoding.Options { return m.opts }

func (m *Manager) prepare(sql string) (*sqldb.Stmt, error) {
	if s, ok := m.stmts[sql]; ok {
		return s, nil
	}
	s, err := m.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	m.stmts[sql] = s
	return s, nil
}

func (m *Manager) fetch(doc, id int64) (node, error) {
	res, err := m.byID.Query(sqldb.I(doc), sqldb.I(id))
	if err != nil {
		return node{}, err
	}
	if len(res.Rows) == 0 {
		return node{}, fmt.Errorf("document %d has no node %d", doc, id)
	}
	return decodeNode(res.Rows[0])
}

func decodeNode(r sqltypes.Row) (node, error) {
	kind, err := xmltree.ParseKind(r[2].Text())
	if err != nil {
		return node{}, err
	}
	n := node{id: r[0].Int(), kind: kind, order: r[3]}
	if !r[1].IsNull() {
		n.parent = r[1].Int()
	}
	return n, nil
}

// InsertXML parses a fragment and inserts it.
func (m *Manager) InsertXML(doc, target int64, mode Mode, fragment string) (Stats, error) {
	frag, err := xmltree.ParseString(fragment)
	if err != nil {
		return Stats{}, err
	}
	return m.InsertTree(doc, target, mode, frag)
}

// InsertTree inserts a parsed fragment relative to the target node.
func (m *Manager) InsertTree(doc, target int64, mode Mode, frag *xmltree.Node) (Stats, error) {
	if frag.Kind != xmltree.Element {
		return Stats{}, fmt.Errorf("inserted fragment must be an element")
	}
	t, err := m.fetch(doc, target)
	if err != nil {
		return Stats{}, err
	}
	if t.kind == xmltree.Attr {
		return Stats{}, fmt.Errorf("cannot insert relative to an attribute node")
	}
	switch mode {
	case FirstChild, LastChild:
		if t.kind != xmltree.Element {
			return Stats{}, fmt.Errorf("%s requires an element target", mode)
		}
	case Before, After:
		if t.parent == 0 {
			return Stats{}, fmt.Errorf("cannot insert a sibling of the document root")
		}
	default:
		return Stats{}, fmt.Errorf("bad insert mode %d", mode)
	}

	// One view publication for the whole renumber+insert sequence: readers
	// see the document before or after the insert, never mid-operation.
	// Safe because every insert path issues its reads (anchors, max order,
	// max id) before the writes whose effects those reads would observe.
	var stats Stats
	err = m.db.Atomically(func() error {
		var err error
		switch m.opts.Kind {
		case encoding.Global:
			stats, err = m.insertGlobal(doc, t, mode, frag)
		case encoding.Local:
			stats, err = m.insertLocal(doc, t, mode, frag)
		case encoding.Dewey:
			stats, err = m.insertDewey(doc, t, mode, frag)
		default:
			return fmt.Errorf("update: unknown encoding kind %d", int(m.opts.Kind))
		}
		if err != nil {
			return err
		}
		_, err = m.bumpDocSize.Exec(sqldb.I(stats.RowsInserted), sqldb.I(doc))
		return err
	})
	return stats, err
}

// nextID allocates fresh surrogate ids.
func (m *Manager) nextID(doc int64) (int64, error) {
	res, err := m.maxID.Query(sqldb.I(doc))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 1, nil
	}
	return res.Rows[0][0].Int() + 1, nil
}

// Delete removes the subtree rooted at id.
func (m *Manager) Delete(doc, id int64) (Stats, error) {
	t, err := m.fetch(doc, id)
	if err != nil {
		return Stats{}, err
	}
	// Published as one view change even for the Local encoding's
	// multi-statement recursion — a concurrent reader never sees a
	// half-deleted subtree (e.g. an element whose text child is gone).
	// The recursion reads each node's child list before deleting inside
	// that subtree, so running it against the pre-delete view is exact.
	var stats Stats
	err = m.db.Atomically(func() error {
		var err error
		switch m.opts.Kind {
		case encoding.Global:
			stats, err = m.deleteGlobal(doc, t)
		case encoding.Local:
			stats, err = m.deleteLocal(doc, t)
		case encoding.Dewey:
			stats, err = m.deleteDewey(doc, t)
		default:
			return fmt.Errorf("update: unknown encoding kind %d", int(m.opts.Kind))
		}
		if err != nil {
			return err
		}
		_, err = m.bumpDocSize.Exec(sqldb.I(-stats.RowsDeleted), sqldb.I(doc))
		return err
	})
	return stats, err
}

// fragRows flattens a fragment in document order for insertion: each entry
// carries its position in the parent-ordinal numbering used by all
// encodings.
type fragRow struct {
	n       *xmltree.Node
	id      int64
	parent  int64  // surrogate id of parent within fragment; 0 = fragment root
	ordinal uint32 // 1-based sibling ordinal within the fragment
}

// flattenFragment assigns fragment-internal ids 1..size; callers rebase
// them onto freshly allocated surrogate ids. The root's parent is 0.
func flattenFragment(frag *xmltree.Node) []fragRow {
	var rows []fragRow
	var walk func(n *xmltree.Node, parent int64, ordinal uint32)
	next := int64(1)
	walk = func(n *xmltree.Node, parent int64, ordinal uint32) {
		id := next
		next++
		rows = append(rows, fragRow{n: n, id: id, parent: parent, ordinal: ordinal})
		ord := uint32(1)
		for _, a := range n.Attrs {
			walk(a, id, ord)
			ord++
		}
		for _, c := range n.Children {
			walk(c, id, ord)
			ord++
		}
	}
	walk(frag, 0, 1)
	return rows
}

// buildRow encodes one new node row in the node table's column order
// (doc, id, parent, kind, tag, value, order key).
func (m *Manager) buildRow(doc int64, fr fragRow, parentID int64, orderKey sqltypes.Value) sqltypes.Row {
	parent := sqldb.Null()
	if parentID != 0 {
		parent = sqldb.I(parentID)
	}
	tag := sqldb.Null()
	if fr.n.Kind != xmltree.Text {
		tag = sqldb.S(fr.n.Tag)
	}
	value := sqldb.Null()
	if fr.n.Kind != xmltree.Element {
		value = sqldb.S(fr.n.Value)
	}
	return sqltypes.Row{sqldb.I(doc), sqldb.I(fr.id), parent,
		sqldb.S(fr.n.Kind.String()), tag, value, orderKey}
}

// insertRows writes a fragment's node rows in one bulk statement, so the
// whole inserted subtree appears in a single published snapshot — concurrent
// readers see the fragment entirely or not at all, never a partial subtree.
func (m *Manager) insertRows(batch []sqltypes.Row) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := m.db.BulkInsert(m.tbl, batch)
	return err
}

// SetValue rewrites the value of a text or attribute node in place. No
// order keys change, so the operation is renumbering-free under every
// encoding.
func (m *Manager) SetValue(doc, id int64, value string) error {
	t, err := m.fetch(doc, id)
	if err != nil {
		return err
	}
	if t.kind == xmltree.Element {
		return fmt.Errorf("node %d is an element; set the value of its text child", id)
	}
	upd, err := m.prepare(sqlgen.SQL(
		`UPDATE %s SET value = ? WHERE doc = ? AND id = ?`, m.tbl))
	if err != nil {
		return err
	}
	_, err = upd.Exec(sqldb.S(value), sqldb.I(doc), sqldb.I(id))
	return err
}

// Rename changes an element tag or attribute name in place.
func (m *Manager) Rename(doc, id int64, name string) error {
	t, err := m.fetch(doc, id)
	if err != nil {
		return err
	}
	if t.kind == xmltree.Text {
		return fmt.Errorf("node %d is a text node and has no name", id)
	}
	upd, err := m.prepare(sqlgen.SQL(
		`UPDATE %s SET tag = ? WHERE doc = ? AND id = ?`, m.tbl))
	if err != nil {
		return err
	}
	_, err = upd.Exec(sqldb.S(name), sqldb.I(doc), sqldb.I(id))
	return err
}

// Node returns the parent id of a node (0 for the root), for ancestry
// checks by higher layers.
func (m *Manager) Node(doc, id int64) (int64, error) {
	t, err := m.fetch(doc, id)
	if err != nil {
		return 0, err
	}
	return t.parent, nil
}
