package update

import (
	"fmt"
	"math/rand"
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/publish"
	"ordxml/internal/core/shred"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

func allOptions() []encoding.Options {
	return []encoding.Options{
		{Kind: encoding.Global},
		{Kind: encoding.Local},
		{Kind: encoding.Dewey},
		{Kind: encoding.Global, Gap: 16},
		{Kind: encoding.Local, Gap: 16},
		{Kind: encoding.Dewey, Gap: 16},
		{Kind: encoding.Dewey, DeweyAsText: true},
	}
}

func optName(o encoding.Options) string {
	n := o.Kind.String()
	if o.Gap > 1 {
		n += "_gap"
	}
	if o.DeweyAsText {
		n += "_text"
	}
	return n
}

// store is one encoding instance under test, with the oracle-node -> db-id
// mapping maintained across edits.
type store struct {
	opts encoding.Options
	db   *sqldb.DB
	mgr  *Manager
	pub  *publish.Publisher
	doc  int64
	ids  map[*xmltree.Node]int64
}

func newStore(t *testing.T, opts encoding.Options, tree *xmltree.Node) *store {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	sh, err := shred.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sh.LoadTree("d", tree)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := publish.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := &store{opts: opts, db: db, mgr: mgr, pub: pub, doc: doc,
		ids: map[*xmltree.Node]int64{}}
	next := int64(1)
	tree.Walk(func(n *xmltree.Node) bool {
		s.ids[n] = next
		next++
		return true
	})
	return s
}

// mapFragment extends the id mapping for an inserted fragment, mirroring
// flattenFragment's walk order.
func (s *store) mapFragment(frag *xmltree.Node, base int64) {
	next := base
	frag.Walk(func(n *xmltree.Node) bool {
		s.ids[n] = next
		next++
		return true
	})
}

// oracleInsert applies the same insertion to the in-memory tree.
func oracleInsert(target *xmltree.Node, mode Mode, frag *xmltree.Node) {
	switch mode {
	case FirstChild:
		frag.Parent = target
		target.Children = append([]*xmltree.Node{frag}, target.Children...)
	case LastChild:
		target.AddChild(frag)
	case Before, After:
		p := target.Parent
		idx := target.ChildIndex()
		if mode == After {
			idx++
		}
		frag.Parent = p
		p.Children = append(p.Children, nil)
		copy(p.Children[idx+1:], p.Children[idx:])
		p.Children[idx] = frag
	}
}

// oracleDelete removes the node from the in-memory tree.
func oracleDelete(target *xmltree.Node) {
	p := target.Parent
	idx := target.ChildIndex()
	p.Children = append(p.Children[:idx], p.Children[idx+1:]...)
}

func (s *store) verify(t *testing.T, oracle *xmltree.Node) {
	t.Helper()
	got, err := s.pub.Document(s.doc)
	if err != nil {
		t.Fatalf("%s: publish: %v", optName(s.opts), err)
	}
	if !xmltree.Equal(oracle, got) {
		t.Fatalf("%s: document diverged\nwant: %s\ngot:  %s",
			optName(s.opts), clip(oracle.String()), clip(got.String()))
	}
}

func clip(s string) string {
	if len(s) > 500 {
		return s[:500] + "..."
	}
	return s
}

func TestInsertModes(t *testing.T) {
	const base = `<r><a/><b><x/><y/></b><c/></r>`
	cases := []struct {
		name   string
		target func(root *xmltree.Node) *xmltree.Node
		mode   Mode
		want   string
	}{
		{"before_first", func(r *xmltree.Node) *xmltree.Node { return r.Children[0] }, Before,
			`<r><new/><a/><b><x/><y/></b><c/></r>`},
		{"after_first", func(r *xmltree.Node) *xmltree.Node { return r.Children[0] }, After,
			`<r><a/><new/><b><x/><y/></b><c/></r>`},
		{"before_mid", func(r *xmltree.Node) *xmltree.Node { return r.Children[1] }, Before,
			`<r><a/><new/><b><x/><y/></b><c/></r>`},
		{"after_last", func(r *xmltree.Node) *xmltree.Node { return r.Children[2] }, After,
			`<r><a/><b><x/><y/></b><c/><new/></r>`},
		{"first_child_root", func(r *xmltree.Node) *xmltree.Node { return r }, FirstChild,
			`<r><new/><a/><b><x/><y/></b><c/></r>`},
		{"last_child_root", func(r *xmltree.Node) *xmltree.Node { return r }, LastChild,
			`<r><a/><b><x/><y/></b><c/><new/></r>`},
		{"first_child_nested", func(r *xmltree.Node) *xmltree.Node { return r.Children[1] }, FirstChild,
			`<r><a/><b><new/><x/><y/></b><c/></r>`},
		{"last_child_leaf", func(r *xmltree.Node) *xmltree.Node { return r.Children[2] }, LastChild,
			`<r><a/><b><x/><y/></b><c><new/></c></r>`},
		{"after_inner", func(r *xmltree.Node) *xmltree.Node { return r.Children[1].Children[0] }, After,
			`<r><a/><b><x/><new/><y/></b><c/></r>`},
	}
	for _, opts := range allOptions() {
		for _, c := range cases {
			t.Run(optName(opts)+"/"+c.name, func(t *testing.T) {
				tree, err := xmltree.ParseString(base)
				if err != nil {
					t.Fatal(err)
				}
				s := newStore(t, opts, tree)
				target := c.target(tree)
				stats, err := s.mgr.InsertXML(s.doc, s.ids[target], c.mode, "<new/>")
				if err != nil {
					t.Fatal(err)
				}
				if stats.RowsInserted != 1 {
					t.Errorf("RowsInserted = %d", stats.RowsInserted)
				}
				got, err := s.pub.Document(s.doc)
				if err != nil {
					t.Fatal(err)
				}
				if got.String() != c.want {
					t.Errorf("document = %s, want %s", got.String(), c.want)
				}
			})
		}
	}
}

func TestInsertSubtreeWithStructure(t *testing.T) {
	frag := `<section title="s"><para>one</para><para>two <b>bold</b></para></section>`
	for _, opts := range allOptions() {
		tree, _ := xmltree.ParseString(`<doc><chapter/><chapter/></doc>`)
		s := newStore(t, opts, tree)
		target := tree.Children[0]
		stats, err := s.mgr.InsertXML(s.doc, s.ids[target], LastChild, frag)
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if stats.RowsInserted != 8 { // section+title attr+2 para+3 texts+b
			t.Errorf("%s: RowsInserted = %d", optName(opts), stats.RowsInserted)
		}
		got, _ := s.pub.Document(s.doc)
		want := `<doc><chapter>` + frag + `</chapter><chapter/></doc>`
		if got.String() != want {
			t.Errorf("%s: %s", optName(opts), got.String())
		}
	}
}

func TestRenumberingCosts(t *testing.T) {
	// 20 sibling leaves, dense encodings: inserting before the first child
	// must renumber per the paper's cost model.
	mk := func() *xmltree.Node {
		r := xmltree.NewElement("r")
		for i := 0; i < 20; i++ {
			c := r.AddChild(xmltree.NewElement("c"))
			c.AddChild(xmltree.NewText(fmt.Sprintf("t%d", i)))
		}
		return r
	}
	// Expected renumber counts for insert-before-first-child:
	//   global: every following node (root excluded): 40 rows
	//   local:  the 20 following siblings
	//   dewey:  the 20 siblings plus their text children = 40
	expect := map[string]int64{"global": 40, "local": 20, "dewey": 40, "dewey_text": 40}
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local}, {Kind: encoding.Dewey},
		{Kind: encoding.Dewey, DeweyAsText: true},
	} {
		tree := mk()
		s := newStore(t, opts, tree)
		first := tree.Children[0]
		stats, err := s.mgr.InsertXML(s.doc, s.ids[first], Before, "<new/>")
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if want := expect[optName(opts)]; stats.RowsRenumbered != want {
			t.Errorf("%s: RowsRenumbered = %d, want %d", optName(opts), stats.RowsRenumbered, want)
		}
	}
	// Appending at the end renumbers nothing under any encoding.
	for _, opts := range allOptions() {
		tree := mk()
		s := newStore(t, opts, tree)
		stats, err := s.mgr.InsertXML(s.doc, s.ids[tree], LastChild, "<new/>")
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if stats.RowsRenumbered != 0 {
			t.Errorf("%s: append renumbered %d rows", optName(opts), stats.RowsRenumbered)
		}
	}
	// Gap encodings absorb the first midpoint insert without renumbering.
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global, Gap: 16},
		{Kind: encoding.Local, Gap: 16},
		{Kind: encoding.Dewey, Gap: 16},
	} {
		tree := mk()
		s := newStore(t, opts, tree)
		first := tree.Children[0]
		stats, err := s.mgr.InsertXML(s.doc, s.ids[first], Before, "<new/>")
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if stats.RowsRenumbered != 0 {
			t.Errorf("%s gap: renumbered %d rows", optName(opts), stats.RowsRenumbered)
		}
	}
}

func TestDeleteSubtree(t *testing.T) {
	for _, opts := range allOptions() {
		tree, _ := xmltree.ParseString(`<r><a><x/><y>t</y></a><b/><c/></r>`)
		s := newStore(t, opts, tree)
		target := tree.Children[0] // <a> subtree: a,x,y,text = 4 rows
		stats, err := s.mgr.Delete(s.doc, s.ids[target])
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if stats.RowsDeleted != 4 {
			t.Errorf("%s: RowsDeleted = %d", optName(opts), stats.RowsDeleted)
		}
		got, _ := s.pub.Document(s.doc)
		if got.String() != `<r><b/><c/></r>` {
			t.Errorf("%s: %s", optName(opts), got.String())
		}
		// Deleting the last child then reinserting keeps order sane.
		if _, err := s.mgr.Delete(s.doc, s.ids[tree.Children[2]]); err != nil {
			t.Fatal(err)
		}
		got, _ = s.pub.Document(s.doc)
		if got.String() != `<r><b/></r>` {
			t.Errorf("%s after second delete: %s", optName(opts), got.String())
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	tree, _ := xmltree.ParseString(`<r a="1"><b>text</b></r>`)
	s := newStore(t, encoding.Options{Kind: encoding.Dewey}, tree)
	rootID := s.ids[tree]
	attrID := s.ids[tree.Attrs[0]]
	textID := s.ids[tree.Children[0].Children[0]]
	if _, err := s.mgr.InsertXML(s.doc, rootID, Before, "<x/>"); err == nil {
		t.Error("sibling of root accepted")
	}
	if _, err := s.mgr.InsertXML(s.doc, attrID, After, "<x/>"); err == nil {
		t.Error("insert relative to attribute accepted")
	}
	if _, err := s.mgr.InsertXML(s.doc, textID, FirstChild, "<x/>"); err == nil {
		t.Error("child of text node accepted")
	}
	if _, err := s.mgr.InsertXML(s.doc, 9999, After, "<x/>"); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := s.mgr.InsertXML(s.doc, rootID, LastChild, "<bad"); err == nil {
		t.Error("malformed fragment accepted")
	}
	if _, err := s.mgr.Delete(s.doc, 9999); err == nil {
		t.Error("delete of missing node accepted")
	}
}

// TestRandomEditScripts is the cross-encoding equivalence property: a random
// sequence of inserts and deletes applied to every encoding and to the
// in-memory oracle must leave identical documents.
func TestRandomEditScripts(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		oracle := xmlgen.Random(xmlgen.DefaultRandom(seed + 100))
		var stores []*store
		for _, opts := range allOptions() {
			stores = append(stores, newStore(t, opts, oracle))
		}
		for op := 0; op < 25; op++ {
			// Collect current element nodes as insertion targets.
			var elems []*xmltree.Node
			oracle.Walk(func(n *xmltree.Node) bool {
				if n.Kind == xmltree.Element {
					elems = append(elems, n)
				}
				return true
			})
			target := elems[r.Intn(len(elems))]
			isRoot := target.Parent == nil
			switch {
			case r.Intn(4) == 0 && !isRoot && len(elems) > 3:
				// Delete.
				for _, s := range stores {
					if _, err := s.mgr.Delete(s.doc, s.ids[target]); err != nil {
						t.Fatalf("seed %d op %d %s: delete: %v", seed, op, optName(s.opts), err)
					}
				}
				oracleDelete(target)
			default:
				mode := Mode(r.Intn(4))
				if isRoot && (mode == Before || mode == After) {
					mode = LastChild
				}
				fragXML := fmt.Sprintf(`<ins n="%d"><leaf>v%d</leaf></ins>`, op, op)
				oracleFrag, _ := xmltree.ParseString(fragXML)
				for _, s := range stores {
					frag, _ := xmltree.ParseString(fragXML)
					stats, err := s.mgr.InsertTree(s.doc, s.ids[target], mode, frag)
					if err != nil {
						t.Fatalf("seed %d op %d %s: insert %s: %v", seed, op, optName(s.opts), mode, err)
					}
					s.mapFragment(oracleFrag, stats.NewID)
				}
				oracleInsert(target, mode, oracleFrag)
			}
		}
		for _, s := range stores {
			s.verify(t, oracle)
		}
	}
}

// TestGapExhaustion drives repeated inserts at the same point until gaps run
// out, checking the document stays correct and renumbering eventually kicks
// in.
func TestGapExhaustion(t *testing.T) {
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global, Gap: 8},
		{Kind: encoding.Local, Gap: 8},
		{Kind: encoding.Dewey, Gap: 8},
	} {
		tree, _ := xmltree.ParseString(`<r><a/><b/></r>`)
		s := newStore(t, opts, tree)
		oracle := tree
		bID := s.ids[oracle.Children[1]]
		renumberEvents := 0
		for i := 0; i < 12; i++ {
			stats, err := s.mgr.InsertXML(s.doc, bID, Before, "<n/>")
			if err != nil {
				t.Fatalf("%s insert %d: %v", optName(s.opts), i, err)
			}
			if stats.RowsRenumbered > 0 {
				renumberEvents++
			}
		}
		if renumberEvents == 0 {
			t.Errorf("%s: gap never exhausted in 12 inserts", optName(s.opts))
		}
		got, err := s.pub.Document(s.doc)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, c := range got.Children {
			if c.Tag == "n" {
				count++
			}
		}
		if count != 12 || got.Children[0].Tag != "a" || got.Children[len(got.Children)-1].Tag != "b" {
			t.Errorf("%s: document wrong after gap exhaustion: %s", optName(s.opts), got.String())
		}
	}
}

func TestSetValueAndRename(t *testing.T) {
	for _, opts := range allOptions() {
		tree, _ := xmltree.ParseString(`<r a="old"><b>text</b></r>`)
		s := newStore(t, opts, tree)
		attrID := s.ids[tree.Attrs[0]]
		textID := s.ids[tree.Children[0].Children[0]]
		elemID := s.ids[tree.Children[0]]
		if err := s.mgr.SetValue(s.doc, attrID, "new"); err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if err := s.mgr.SetValue(s.doc, textID, "edited"); err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if err := s.mgr.SetValue(s.doc, elemID, "x"); err == nil {
			t.Errorf("%s: SetValue on element accepted", optName(opts))
		}
		if err := s.mgr.Rename(s.doc, elemID, "c"); err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if err := s.mgr.Rename(s.doc, textID, "x"); err == nil {
			t.Errorf("%s: Rename on text accepted", optName(opts))
		}
		if err := s.mgr.SetValue(s.doc, 999, "x"); err == nil {
			t.Errorf("%s: SetValue on missing node accepted", optName(opts))
		}
		got, _ := s.pub.Document(s.doc)
		want := `<r a="new"><c>edited</c></r>`
		if got.String() != want {
			t.Errorf("%s: %s, want %s", optName(opts), got.String(), want)
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{FirstChild, LastChild, Before, After} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, bad := range []string{"", "first", "FIRST-CHILD", "sibling"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}
