package dewey

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func p(comps ...uint32) Path { return Path(comps) }

func TestStringRoundTrip(t *testing.T) {
	cases := []Path{
		p(1),
		p(1, 2, 3),
		p(126, 127, 128),
		p(1, MaxComponent),
	}
	for _, in := range cases {
		s := in.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if Compare(in, got) != 0 {
			t.Errorf("round trip %q -> %v", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "1..2", "a", "1.b", "0", "1.0", "-1", "99999999999"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestNavigation(t *testing.T) {
	q := p(1, 2, 3)
	if got := q.Parent(); Compare(got, p(1, 2)) != 0 {
		t.Errorf("Parent = %v", got)
	}
	if got := p(1).Parent(); got != nil {
		t.Errorf("root Parent = %v", got)
	}
	if got := q.Child(7); Compare(got, p(1, 2, 3, 7)) != 0 {
		t.Errorf("Child = %v", got)
	}
	if got := q.WithLast(9); Compare(got, p(1, 2, 9)) != 0 {
		t.Errorf("WithLast = %v", got)
	}
	if q.Last() != 3 || q.Depth() != 3 {
		t.Errorf("Last/Depth = %d/%d", q.Last(), q.Depth())
	}
	// Child must not alias the parent's backing array.
	base := p(1, 2)
	c1 := base.Child(1)
	_ = base.Child(2)
	if c1[2] != 1 {
		t.Error("Child aliased shared backing array")
	}
}

func TestCompareAndAncestor(t *testing.T) {
	cases := []struct {
		a, b Path
		want int
	}{
		{p(1), p(1), 0},
		{p(1), p(2), -1},
		{p(1, 5), p(1, 6), -1},
		{p(1), p(1, 1), -1},     // ancestor before descendant
		{p(1, 2), p(1, 10), -1}, // numeric, not lexicographic
		{p(2), p(1, 9), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
	if !p(1, 2).IsAncestorOf(p(1, 2, 3)) {
		t.Error("direct ancestor not detected")
	}
	if !p(1).IsAncestorOf(p(1, 2, 3)) {
		t.Error("transitive ancestor not detected")
	}
	if p(1, 2).IsAncestorOf(p(1, 2)) {
		t.Error("self reported as ancestor")
	}
	if p(1, 2).IsAncestorOf(p(1, 3, 1)) {
		t.Error("non-ancestor reported")
	}
	if p(1, 2, 3).IsAncestorOf(p(1, 2)) {
		t.Error("descendant reported as ancestor")
	}
}

// randPath generates components across all four code lengths.
func randPath(r *rand.Rand) Path {
	depth := 1 + r.Intn(6)
	out := make(Path, depth)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			out[i] = 1 + uint32(r.Intn(125))
		case 1:
			out[i] = 127 + uint32(r.Intn(1<<14))
		case 2:
			out[i] = max2 + uint32(r.Intn(1<<21))
		default:
			out[i] = max3 + uint32(r.Intn(1<<28))
		}
	}
	return out
}

// Property: binary codec round-trips.
func TestBytesRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randPath(r)
		got, err := FromBytes(in.Bytes())
		return err == nil && Compare(in, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: byte order equals document order. This is the core claim that
// makes Dewey indexes work.
func TestBytesOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPath(r), randPath(r)
		return sign(bytes.Compare(a.Bytes(), b.Bytes())) == sign(Compare(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: ancestor-or-self iff byte prefix.
func TestBytesPrefixProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPath(r), randPath(r)
		if r.Intn(2) == 0 {
			// Make a an ancestor of b half the time.
			b = append(a.Clone(), randPath(r)...)
		}
		isPrefix := bytes.HasPrefix(b.Bytes(), a.Bytes())
		wantPrefix := a.IsAncestorOf(b) || Compare(a, b) == 0
		return isPrefix == wantPrefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: PrefixSuccessor bounds exactly the descendant-or-self set.
func TestPrefixSuccessorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPath(r)
		succ := a.PrefixSuccessor()
		ab := a.Bytes()
		for i := 0; i < 20; i++ {
			q := randPath(r)
			if r.Intn(2) == 0 {
				q = append(a.Clone(), randPath(r)...)
			}
			qb := q.Bytes()
			inRange := bytes.Compare(qb, ab) >= 0 && (succ == nil || bytes.Compare(qb, succ) < 0)
			wantIn := Compare(a, q) == 0 || a.IsAncestorOf(q)
			if inRange != wantIn {
				t.Logf("a=%v q=%v inRange=%v want=%v", a, q, inRange, wantIn)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFromBytesErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0x7F},       // unused lead byte
		{0xFF},       // sentinel range
		{0x80},       // truncated 2-byte
		{0xC0, 0x01}, // truncated 3-byte
		{0xE0, 1, 2}, // truncated 4-byte
		{0x00},       // zero component
	}
	for _, b := range bad {
		if _, err := FromBytes(b); err == nil {
			t.Errorf("FromBytes(%x) succeeded", b)
		}
	}
}

func TestComponentBoundaries(t *testing.T) {
	// Each boundary value must round-trip and order correctly vs neighbours.
	boundaries := []uint32{1, 2, 125, 126, 127, 128, max2 - 1, max2, max2 + 1,
		max3 - 1, max3, max3 + 1, MaxComponent - 1, MaxComponent}
	var prev []byte
	for i, c := range boundaries {
		path := p(c)
		got, err := FromBytes(path.Bytes())
		if err != nil || got[0] != c {
			t.Fatalf("component %d: round trip %v, %v", c, got, err)
		}
		if i > 0 && bytes.Compare(prev, path.Bytes()) >= 0 {
			t.Fatalf("order broken at component %d", c)
		}
		prev = path.Bytes()
	}
}

func TestEncodeOutOfRangePanics(t *testing.T) {
	for _, c := range []uint32{0, MaxComponent + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes with component %d did not panic", c)
				}
			}()
			p(c).Bytes()
		}()
	}
}

func TestPaddedCodec(t *testing.T) {
	in := p(1, 42, 100000)
	s := in.PaddedString()
	if s != "00000001.00000042.00100000" {
		t.Errorf("PaddedString = %s", s)
	}
	got, err := ParsePadded(s)
	if err != nil || Compare(in, got) != 0 {
		t.Errorf("ParsePadded = %v, %v", got, err)
	}
	// String order must equal document order (that's the codec's purpose).
	pairs := [][2]Path{
		{p(2), p(10)},
		{p(1, 2), p(1, 10)},
		{p(1), p(1, 1)},
		{p(1, 9), p(2)},
	}
	for _, pair := range pairs {
		a, b := pair[0], pair[1]
		if !(strings.Compare(a.PaddedString(), b.PaddedString()) < 0) {
			t.Errorf("padded order broken: %v vs %v", a, b)
		}
	}
	// Descendant range bounds.
	a := p(1, 2)
	low, high := a.PaddedDescendantLow(), a.PaddedPrefixSuccessor()
	desc := p(1, 2, 3).PaddedString()
	sib := p(1, 3).PaddedString()
	if !(desc >= low && desc < high) {
		t.Error("descendant outside padded range")
	}
	if sib >= low && sib < high {
		t.Error("sibling inside padded range")
	}
	if self := a.PaddedString(); self >= low && self < high {
		t.Error("self inside proper-descendant padded range")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
