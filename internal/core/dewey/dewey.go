// Package dewey implements the paper's Dewey order encoding: every node is
// identified by the path of sibling ordinals from the root (e.g. 1.2.3 is
// the third child of the second child of the root). Two codecs are provided:
//
//   - the binary codec (Bytes/FromBytes): each component is a self-delimiting
//     prefix-free byte code chosen so that byte-wise lexicographic comparison
//     of encoded paths equals component-wise numeric comparison — document
//     order — and "p is an ancestor-or-self of q" is exactly "Bytes(p) is a
//     byte prefix of Bytes(q)". Descendant axes become index range scans.
//     This is the UTF-8-style encoding the paper recommends.
//
//   - the padded string codec (PaddedString/ParsePadded): fixed-width decimal
//     components joined with '.', order-preserving under string comparison
//     but much larger; it exists for the storage/performance ablation (E8).
package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// Path is a Dewey path: the sibling ordinal at each level from the root.
// Ordinals are positive (gap-based orders use spaced positive values). The
// root of a document is the one-component path.
type Path []uint32

// Component range boundaries of the binary codec. The ranges are increasing
// and the first byte determines the code length, making codes prefix-free
// and order-preserving.
const (
	max1 = 0x7F         // 1 byte: 0x01..0x7E encode 1..126
	max2 = max1 + 1<<14 // 2 bytes: lead 0x80..0xBF
	max3 = max2 + 1<<21 // 3 bytes: lead 0xC0..0xDF
	// MaxComponent is the largest encodable ordinal; 4-byte codes use lead
	// bytes 0xE0..0xEF, keeping 0xF0..0xFF free (so a 0xFF sentinel can
	// never be confused with a lead byte).
	MaxComponent = uint32(max3 + 1<<28 - 1)
)

// String renders the path in dotted form, e.g. "1.2.3".
func (p Path) String() string {
	if len(p) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, c := range p {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// Parse reads dotted form.
func Parse(s string) (Path, error) {
	if s == "" {
		return nil, fmt.Errorf("dewey: empty path")
	}
	parts := strings.Split(s, ".")
	p := make(Path, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: bad component %q: %w", part, err)
		}
		if v == 0 || uint32(v) > MaxComponent {
			return nil, fmt.Errorf("dewey: component %d out of range", v)
		}
		p[i] = uint32(v)
	}
	return p, nil
}

// Clone copies the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Parent returns the path with the last component removed, or nil for a
// root path.
func (p Path) Parent() Path {
	if len(p) <= 1 {
		return nil
	}
	return p[:len(p)-1].Clone()
}

// Child returns p extended with ordinal ord.
func (p Path) Child(ord uint32) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = ord
	return out
}

// WithLast returns a copy of p whose final component is ord.
func (p Path) WithLast(ord uint32) Path {
	out := p.Clone()
	out[len(out)-1] = ord
	return out
}

// Last returns the final component (the sibling ordinal).
func (p Path) Last() uint32 { return p[len(p)-1] }

// Depth returns the number of components.
func (p Path) Depth() int { return len(p) }

// Compare orders paths in document order (component-wise; a proper ancestor
// precedes its descendants).
func Compare(a, b Path) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// IsAncestorOf reports whether p is a proper ancestor of q.
func (p Path) IsAncestorOf(q Path) bool {
	if len(p) >= len(q) {
		return false
	}
	for i, c := range p {
		if q[i] != c {
			return false
		}
	}
	return true
}

// Bytes encodes the path with the binary codec. Panics on zero or
// out-of-range components (they cannot be produced by the public
// constructors).
func (p Path) Bytes() []byte {
	return p.AppendBytes(make([]byte, 0, len(p)*2))
}

// AppendBytes appends the binary encoding of p to dst and returns the
// extended slice, letting hot loops share one buffer across many paths.
func (p Path) AppendBytes(dst []byte) []byte {
	for _, c := range p {
		dst = appendComponent(dst, c)
	}
	return dst
}

func appendComponent(dst []byte, c uint32) []byte {
	if c == 0 || c > MaxComponent {
		panic(fmt.Sprintf("dewey: component %d out of range", c))
	}
	switch {
	case c < max1:
		return append(dst, byte(c))
	case c < max2:
		v := c - max1
		return append(dst, 0x80|byte(v>>8), byte(v))
	case c < max3:
		v := c - max2
		return append(dst, 0xC0|byte(v>>16), byte(v>>8), byte(v))
	default:
		v := c - max3
		return append(dst, 0xE0|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// FromBytes decodes a binary path.
func FromBytes(b []byte) (Path, error) {
	var p Path
	i := 0
	for i < len(b) {
		first := b[i]
		var need int
		switch {
		case first < 0x7F:
			need = 1
		case first >= 0x80 && first < 0xC0:
			need = 2
		case first >= 0xC0 && first < 0xE0:
			need = 3
		case first >= 0xE0 && first < 0xF0:
			need = 4
		default:
			return nil, fmt.Errorf("dewey: bad lead byte 0x%02x at %d", first, i)
		}
		if i+need > len(b) {
			return nil, fmt.Errorf("dewey: truncated component at %d", i)
		}
		var c uint32
		switch need {
		case 1:
			c = uint32(first)
		case 2:
			c = max1 + uint32(first&0x3F)<<8 + uint32(b[i+1])
		case 3:
			c = max2 + uint32(first&0x1F)<<16 + uint32(b[i+1])<<8 + uint32(b[i+2])
		case 4:
			c = max3 + uint32(first&0x0F)<<24 + uint32(b[i+1])<<16 + uint32(b[i+2])<<8 + uint32(b[i+3])
		}
		if c == 0 {
			return nil, fmt.Errorf("dewey: zero component at %d", i)
		}
		p = append(p, c)
		i += need
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("dewey: empty encoding")
	}
	return p, nil
}

// PrefixSuccessor returns the exclusive upper bound of the byte range
// containing every descendant-or-self encoding of p: keys k with
// Bytes(p) <= k < PrefixSuccessor(p) are exactly p and its descendants.
func (p Path) PrefixSuccessor() []byte {
	b := p.Bytes()
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			out := make([]byte, i+1)
			copy(out, b[:i+1])
			out[i]++
			return out
		}
	}
	return nil
}

// PaddedWidth is the component width of the padded string codec: documents
// with sibling ordinals up to 10^8-1 stay order-preserving.
const PaddedWidth = 8

// PaddedString renders the path with fixed-width zero-padded components so
// that plain string comparison preserves document order ("00000002" <
// "00000010"). This is the string-Dewey variant measured by ablation E8.
func (p Path) PaddedString() string {
	var sb strings.Builder
	for i, c := range p {
		if i > 0 {
			sb.WriteByte('.')
		}
		fmt.Fprintf(&sb, "%0*d", PaddedWidth, c)
	}
	return sb.String()
}

// ParsePadded reads the padded form.
func ParsePadded(s string) (Path, error) {
	return Parse(trimZeroes(s))
}

func trimZeroes(s string) string {
	parts := strings.Split(s, ".")
	for i, part := range parts {
		trimmed := strings.TrimLeft(part, "0")
		if trimmed == "" {
			trimmed = "0"
		}
		parts[i] = trimmed
	}
	return strings.Join(parts, ".")
}

// PaddedPrefixSuccessor is the string-codec analogue of PrefixSuccessor: the
// exclusive upper bound for descendants of p under string comparison. With
// the padded codec, every descendant string starts with p's padded form
// followed by '.', so the bound is that prefix with '.'+1.
func (p Path) PaddedPrefixSuccessor() string {
	return p.PaddedString() + string(rune('.'+1))
}

// PaddedDescendantLow is the inclusive lower bound for proper descendants.
func (p Path) PaddedDescendantLow() string {
	return p.PaddedString() + "."
}
