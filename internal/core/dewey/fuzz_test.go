package dewey

import (
	"bytes"
	"testing"
)

// FuzzFromBytes checks the binary decoder never panics and that accepted
// inputs re-encode to the identical bytes (the codec is bijective on its
// image).
func FuzzFromBytes(f *testing.F) {
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(Path{1, 127, 200000, MaxComponent}.Bytes())
	f.Add([]byte{0xFF})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := FromBytes(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.Bytes(), data) {
			t.Fatalf("decode/encode not identity: %x -> %v -> %x", data, p, p.Bytes())
		}
	})
}

// FuzzParse checks the dotted-string parser.
func FuzzParse(f *testing.F) {
	f.Add("1.2.3")
	f.Add("1")
	f.Add("0")
	f.Add("1..2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(p.String())
		if err != nil || Compare(p, back) != 0 {
			t.Fatalf("string round trip: %q -> %v -> %v (%v)", s, p, back, err)
		}
	})
}
