package translate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/shred"
	"ordxml/internal/core/xpath"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

// allOptions are the encoding configurations cross-validated against the
// oracle.
func allOptions() []encoding.Options {
	return []encoding.Options{
		{Kind: encoding.Global},
		{Kind: encoding.Local},
		{Kind: encoding.Dewey},
		{Kind: encoding.Global, Gap: 8},
		{Kind: encoding.Local, Gap: 8},
		{Kind: encoding.Dewey, Gap: 8},
		{Kind: encoding.Dewey, DeweyAsText: true},
	}
}

func optName(o encoding.Options) string {
	n := o.Kind.String()
	if o.Gap > 1 {
		n += "_gap"
	}
	if o.DeweyAsText {
		n += "_text"
	}
	return n
}

// loadedDoc couples an in-memory tree with its shredded form and the
// tree-node -> surrogate-id mapping (both sides number nodes in the same
// pre-order walk).
type loadedDoc struct {
	tree  *xmltree.Node
	docID int64
	ids   map[*xmltree.Node]int64
	eval  *Evaluator
}

func load(t *testing.T, opts encoding.Options, tree *xmltree.Node) *loadedDoc {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	s, err := shred.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	docID, err := s.LoadTree("doc", tree)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[*xmltree.Node]int64{}
	next := int64(1)
	tree.Walk(func(n *xmltree.Node) bool {
		ids[n] = next
		next++
		return true
	})
	return &loadedDoc{tree: tree, docID: docID, ids: ids, eval: ev}
}

// check runs one query against both the oracle and the relational
// evaluator and compares the ordered id sequences.
func (ld *loadedDoc) check(t *testing.T, query string) {
	t.Helper()
	oracle, err := xpath.EvalString(ld.tree, query)
	if err != nil {
		t.Fatalf("oracle %q: %v", query, err)
	}
	want := make([]int64, len(oracle))
	for i, n := range oracle {
		want[i] = ld.ids[n]
	}
	got, err := ld.eval.Query(ld.docID, query)
	if err != nil {
		t.Fatalf("%s: translate %q: %v", optName(ld.eval.opts), query, err)
	}
	gotIDs := make([]int64, len(got))
	for i, r := range got {
		gotIDs[i] = r.ID
	}
	if len(gotIDs) != len(want) {
		t.Fatalf("%s: %q: got %v, want %v\nSQL: %v",
			optName(ld.eval.opts), query, gotIDs, want, ld.eval.LastSQL())
	}
	for i := range want {
		if gotIDs[i] != want[i] {
			t.Fatalf("%s: %q: got %v, want %v\nSQL: %v",
				optName(ld.eval.opts), query, gotIDs, want, ld.eval.LastSQL())
		}
	}
}

const fixtureDoc = `<site>
  <regions>
    <namerica>
      <item id="i1" featured="yes"><name>widget</name><price>10</price></item>
      <item id="i2"><name>gadget</name><price>20</price>
        <description>nice <keyword>rare</keyword> and <keyword>vintage</keyword> thing</description>
      </item>
      <item id="i3"><name>gizmo</name><price>10</price></item>
      <item id="i4"><name>widget</name><price>30</price></item>
    </namerica>
    <europe>
      <item id="e1"><name>widget</name><price>30</price></item>
      <item id="e2"><name>doohickey</name><price>5</price>
        <description><keyword>rare</keyword></description>
      </item>
    </europe>
  </regions>
  <people>
    <person id="p1"><name>ann</name></person>
    <person id="p2"><name>bob</name></person>
  </people>
</site>`

// fixtureQueries is the hand-written battery covering every axis and
// predicate class (the E3 query suite shapes are among them).
var fixtureQueries = []string{
	"/site",
	"/site/regions/namerica/item",
	"/site/regions/namerica/item/name",
	"/site/regions/*",
	"/site/regions/namerica/item/@id",
	"/site/regions/namerica/item[2]",
	"/site/regions/namerica/item[4]",
	"/site/regions/namerica/item[99]",
	"/site/regions/namerica/item[last()]",
	"/site/regions/namerica/item[position() <= 2]",
	"/site/regions/namerica/item[position() > 1]",
	"/site/regions/namerica/item[position() != 2]",
	"/site/regions/namerica/item[2]/following-sibling::item",
	"/site/regions/namerica/item[3]/preceding-sibling::item",
	"/site/regions/namerica/item[3]/preceding-sibling::item[1]",
	"/site/regions/namerica/item[1]/following-sibling::item[2]",
	"/site/regions/namerica/item[2]/following-sibling::item[last()]",
	"/site/regions/namerica/item/following-sibling::*",
	"//keyword",
	"//item",
	"//item/@id",
	"//item[2]",
	"//description/keyword",
	"//description//keyword",
	"//namerica//keyword",
	"//regions//item/name",
	"//item[@id = 'i2']",
	"//item[@id = 'i2']/name",
	"//item[price = '10']",
	"//item[price = '10']/@id",
	"//item[price != '10']",
	"//item[name = 'widget'][2]",
	"//item[description]",
	"//item[description/keyword = 'rare']",
	"//item[description/keyword = 'rare'][1]",
	"//name[. = 'gizmo']",
	"//keyword/parent::description",
	"//keyword/..",
	"//item/parent::*",
	"//description/text()",
	"/site/people/person[@id = 'p2']/name",
	"/site/regions/europe/item[1]/name",
	"//europe/item[price = '30']/following-sibling::item",
	"/site/regions/namerica/item[price = '10'][2]",
	"//item[price = '10']/following-sibling::item[1]",
	// Mixed-content and text positions.
	"//description/text()[1]",
	"//description/text()[2]",
	"//description/text()[last()]",
	"//item/name/text()",
	// Attribute positional (attributes occupy leading sibling ordinals).
	"/site/regions/namerica/item[1]/@id",
	"/site/regions/namerica/item[1]/@featured",
	"//item[@featured = 'yes']",
	"//item[@featured != 'yes']",
	// Wildcards at various depths.
	"/*",
	"/*/*",
	"/site/*/namerica/item/name",
	"//*[@id = 'e2']",
	"/site/regions/*/item[1]",
	// Multi-predicate steps.
	"//item[price = '10'][name = 'widget']",
	"//item[name = 'widget'][price = '10']",
	"//item[@id = 'i1'][1]",
	"//item[keyword]",
	"//item[description][price = '20']",
	"/site/regions/namerica/item[position() >= 2][position() <= 2]",
	// Predicates with deeper relative paths.
	"//regions[namerica/item/name = 'gizmo']",
	"/site[regions/namerica/item]/people/person",
	"//item[description/keyword]",
	// Chained sibling hops.
	"/site/regions/namerica/item[1]/following-sibling::item[1]/following-sibling::item",
	"/site/regions/namerica/item[2]/preceding-sibling::item/following-sibling::item",
	"/site/regions/namerica/item[2]/following-sibling::*[last()]",
	// Parent/ancestor compositions.
	"//keyword/../..",
	"//keyword/parent::*/parent::item/name",
	"//name/ancestor::*[2]",
	"//keyword/ancestor::item/following-sibling::item",
	// Descendant compositions.
	"//regions//keyword",
	"/site//europe//keyword",
	"//item//text()",
	"/site//item[2]",
	"//description//keyword[2]",
	// Descendant with explicit spelling.
	"/site/descendant::keyword",
	"/site/regions/descendant::item[position() <= 3]",
	// Misses mixed with hits.
	"//item[price = '999']",
	"//item[@id = 'i1']/keyword",
	"/site/people/person/following-sibling::person[2]",
	"//keyword/ancestor::item",
	"//keyword/ancestor::*",
	"//keyword/ancestor::item/@id",
	"//keyword/ancestor::*[1]",
	"//keyword/ancestor::*[2]",
	"//keyword/ancestor::*[last()]",
	"//name/ancestor::item/price",
	"/site/regions/namerica/item[2]/name/ancestor::item",
	"//item/ancestor::regions",
	"/nothere",
	"/site/nothere/item",
	"//nothere",
}

func TestFixtureQueriesAllEncodings(t *testing.T) {
	tree, err := xmltree.ParseString(fixtureDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range allOptions() {
		t.Run(optName(opts), func(t *testing.T) {
			ld := load(t, opts, tree)
			for _, q := range fixtureQueries {
				ld.check(t, q)
			}
		})
	}
}

// randQuery builds a random query from the tags and attribute names that
// actually occur in the generated documents, plus misses.
func randQuery(r *rand.Rand) string {
	tags := []string{"a", "b", "c", "d", "zz"}
	attrs := []string{"quick", "brown", "fox", "none"}
	steps := 1 + r.Intn(3)
	q := ""
	for i := 0; i < steps; i++ {
		if r.Intn(4) == 0 {
			q += "//"
		} else {
			q += "/"
		}
		switch r.Intn(10) {
		case 0:
			q += "*"
		case 1:
			if i > 0 {
				q += "text()"
				return q
			}
			q += tags[r.Intn(len(tags))]
		default:
			q += tags[r.Intn(len(tags))]
		}
		// Predicates.
		for p := r.Intn(3); p > 0; p-- {
			switch r.Intn(6) {
			case 0:
				q += fmt.Sprintf("[%d]", 1+r.Intn(3))
			case 1:
				q += fmt.Sprintf("[position() %s %d]",
					[]string{"<=", ">=", "<", ">", "="}[r.Intn(5)], 1+r.Intn(3))
			case 2:
				q += "[last()]"
			case 3:
				q += fmt.Sprintf("[@%s = 'x']", attrs[r.Intn(len(attrs))])
			case 4:
				q += fmt.Sprintf("[%s]", tags[r.Intn(len(tags))])
			default:
				q += fmt.Sprintf("[@%s != 'x']", attrs[r.Intn(len(attrs))])
			}
		}
		if r.Intn(5) == 0 && i == steps-1 {
			ax := []string{"/following-sibling::", "/preceding-sibling::", "/parent::", "/ancestor::"}[r.Intn(4)]
			q += ax + tags[r.Intn(len(tags))]
		}
	}
	return q
}

// TestRandomQueriesAgainstOracle is the main correctness property: random
// documents x random queries x every encoding must equal the oracle.
func TestRandomQueriesAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is slow")
	}
	opts := allOptions()
	for docSeed := int64(0); docSeed < 10; docSeed++ {
		tree := xmlgen.Random(xmlgen.DefaultRandom(docSeed))
		var lds []*loadedDoc
		for _, o := range opts {
			lds = append(lds, load(t, o, tree))
		}
		r := rand.New(rand.NewSource(docSeed * 977))
		for qi := 0; qi < 90; qi++ {
			q := randQuery(r)
			if _, err := xpath.Parse(q); err != nil {
				continue
			}
			for _, ld := range lds {
				ld.check(t, q)
			}
		}
	}
}

func TestEvaluatorErrors(t *testing.T) {
	tree, _ := xmltree.ParseString("<a><b/></a>")
	ld := load(t, encoding.Options{Kind: encoding.Dewey}, tree)
	if _, err := ld.eval.Query(ld.docID, "not a path ("); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := ld.eval.Query(ld.docID, "/a/b[following-sibling::c]"); err == nil {
		t.Error("unsupported predicate axis accepted")
	}
	// Missing document: no rows, no error.
	refs, err := ld.eval.Query(999, "/a")
	if err != nil || len(refs) != 0 {
		t.Errorf("missing doc: %v, %v", refs, err)
	}
}

func TestLastSQLExposed(t *testing.T) {
	tree, _ := xmltree.ParseString("<a><b><c/></b></a>")
	ld := load(t, encoding.Options{Kind: encoding.Dewey}, tree)
	if _, err := ld.eval.Query(ld.docID, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	sqls := ld.eval.LastSQL()
	if len(sqls) != 1 {
		t.Fatalf("LastSQL = %v", sqls)
	}
	if got := sqls[0]; !contains(got, "xd_nodes n3") || !contains(got, "ORDER BY n3.path") {
		t.Errorf("generated SQL unexpected: %s", got)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
