package translate

import (
	"context"
	"fmt"
	"sort"

	"ordxml/internal/core/dewey"
	"ordxml/internal/core/encoding"
	"ordxml/internal/core/xpath"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/xmltree"
)

// binding is one SQL result row: the chain of matched step nodes plus the
// context node that anchored it.
type binding struct {
	steps []NodeRef
	ctxID int64
}

// runSegment executes one segment against the context set and returns the
// matched final-step nodes.
func (r *run) runSegment(doc int64, seg segment, ctx []NodeRef, first bool) ([]NodeRef, error) {
	if seg.steps[0].Axis == xpath.Ancestor {
		sp := r.trace.Start(StagePost)
		defer sp.End()
		return r.runAncestorSegment(doc, seg, ctx)
	}
	sp := r.trace.Start(StageTranslate)
	cs, err := r.buildChainSQL(doc, seg, first)
	sp.End()
	if err != nil {
		return nil, err
	}
	if cs.anchor == anchorEmpty {
		return nil, nil
	}
	r.sqls = append(r.sqls, cs.sql)
	stmt, err := r.prepare(cs.sql)
	if err != nil {
		return nil, err
	}

	var bindings []binding
	runOnce := func(params []sqltypes.Value, ctxID int64) error {
		// One statement per context node: poll here so huge context sets
		// observe cancellation between statements.
		if err := r.poll(); err != nil {
			return err
		}
		sp := r.trace.Start(StageExec)
		var res *sqldb.Result
		err := r.tracedExec(func(ctx context.Context) error {
			var qerr error
			res, qerr = stmt.QueryAtCtx(ctx, r.snap, params...)
			return qerr
		})
		sp.End()
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			b, err := decodeBinding(row, cs)
			if err != nil {
				return err
			}
			b.ctxID = ctxID
			bindings = append(bindings, b)
		}
		return nil
	}

	switch cs.anchor {
	case anchorRoot, anchorScan:
		if first || !seg.ancestryCheck {
			if err := runOnce(nil, 0); err != nil {
				return nil, err
			}
		} else {
			// Global/Local descendant: one tag scan, then client-side
			// ancestry filtering against the context set.
			if err := runOnce(nil, 0); err != nil {
				return nil, err
			}
			sp := r.trace.Start(StagePost)
			bindings, err = r.ancestryFilter(doc, bindings, ctx)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
	case anchorChildOf:
		for _, c := range ctx {
			if c.Kind != xmltree.Element {
				continue
			}
			if err := runOnce([]sqltypes.Value{sqldb.I(c.ID)}, c.ID); err != nil {
				return nil, err
			}
		}
	case anchorParentOf:
		for _, c := range ctx {
			if c.Parent == 0 {
				continue
			}
			if err := runOnce([]sqltypes.Value{sqldb.I(c.Parent)}, c.ID); err != nil {
				return nil, err
			}
		}
	case anchorFollowing, anchorPreceding:
		for _, c := range ctx {
			if c.Parent == 0 || c.Kind == xmltree.Attr {
				continue
			}
			if err := runOnce([]sqltypes.Value{sqldb.I(c.Parent), c.Order}, c.ID); err != nil {
				return nil, err
			}
		}
	case anchorDeweyDesc:
		for _, c := range ctx {
			if c.Kind != xmltree.Element {
				continue
			}
			high, err := r.deweySuccessor(c.Order)
			if err != nil {
				return nil, err
			}
			if err := runOnce([]sqltypes.Value{c.Order, high}, c.ID); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("internal: unhandled anchor mode %d", cs.anchor)
	}

	lastStep := seg.steps[len(seg.steps)-1]
	if hasPosPred(lastStep) {
		sp := r.trace.Start(StagePost)
		bindings, err = r.applyPositional(doc, bindings, seg, lastStep)
		sp.End()
		if err != nil {
			return nil, err
		}
	}

	// Distinct final nodes, preserving first-seen order (the caller sorts
	// into document order at the end).
	seen := map[int64]bool{}
	var out []NodeRef
	for _, b := range bindings {
		final := b.steps[len(b.steps)-1]
		if !seen[final.ID] {
			seen[final.ID] = true
			out = append(out, final)
		}
	}
	return out, nil
}

// deweySuccessor computes the exclusive upper bound of a node's descendant
// range from its stored order key.
func (e *Evaluator) deweySuccessor(order sqltypes.Value) (sqltypes.Value, error) {
	if e.opts.DeweyAsText {
		p, err := dewey.ParsePadded(order.Text())
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqldb.S(p.PaddedPrefixSuccessor()), nil
	}
	p, err := dewey.FromBytes(order.Blob())
	if err != nil {
		return sqltypes.Value{}, err
	}
	succ := p.PrefixSuccessor()
	if succ == nil {
		return sqltypes.Value{}, fmt.Errorf("dewey path has no successor")
	}
	return sqldb.B(succ), nil
}

func decodeBinding(row sqltypes.Row, cs chainSQL) (binding, error) {
	b := binding{steps: make([]NodeRef, len(cs.stepCols))}
	for i, off := range cs.stepCols {
		ref := NodeRef{ID: row[off].Int(), Order: row[off+2]}
		if !row[off+1].IsNull() {
			ref.Parent = row[off+1].Int()
		}
		b.steps[i] = ref
	}
	final := &b.steps[len(b.steps)-1]
	kind, err := xmltree.ParseKind(row[cs.finalExt].Text())
	if err != nil {
		return binding{}, err
	}
	final.Kind = kind
	if !row[cs.finalExt+1].IsNull() {
		final.Tag = row[cs.finalExt+1].Text()
	}
	if !row[cs.finalExt+2].IsNull() {
		final.Value = row[cs.finalExt+2].Text()
	}
	return b, nil
}

// ancestryFilter keeps bindings whose first-step node properly descends from
// a context node, expanding a binding once per context ancestor (nested
// context nodes each get their own positional group, as in the oracle).
// Ancestry is verified by walking parent links with memoized point lookups.
func (r *run) ancestryFilter(doc int64, bindings []binding, ctx []NodeRef) ([]binding, error) {
	ctxSet := make(map[int64]bool, len(ctx))
	for _, c := range ctx {
		if c.Kind == xmltree.Element {
			ctxSet[c.ID] = true
		}
	}
	var out []binding
	for _, b := range bindings {
		id := b.steps[0].Parent
		for id != 0 {
			if ctxSet[id] {
				nb := b
				nb.ctxID = id
				out = append(out, nb)
			}
			info, err := r.parentOf(doc, id)
			if err != nil {
				return nil, err
			}
			if !info.known {
				return nil, fmt.Errorf("node %d missing during ancestry walk", id)
			}
			id = info.parent
		}
	}
	return out, nil
}

// applyPositional filters bindings by the final step's positional
// predicates, per context group, in axis order.
func (r *run) applyPositional(doc int64, bindings []binding, seg segment, step xpath.Step) ([]binding, error) {
	// Group key: the previous chain step's node, or the anchor context for
	// single-step segments.
	groupOf := func(b binding) int64 {
		if len(b.steps) > 1 {
			return b.steps[len(b.steps)-2].ID
		}
		return b.ctxID
	}
	type group struct {
		order []int64 // first-seen order of member ids
		refs  map[int64]NodeRef
	}
	groups := map[int64]*group{}
	var groupOrder []int64
	for _, b := range bindings {
		k := groupOf(b)
		g := groups[k]
		if g == nil {
			g = &group{refs: map[int64]NodeRef{}}
			groups[k] = g
			groupOrder = append(groupOrder, k)
		}
		final := b.steps[len(b.steps)-1]
		if _, dup := g.refs[final.ID]; !dup {
			g.refs[final.ID] = final
			g.order = append(g.order, final.ID)
		}
	}

	surviving := map[int64]map[int64]bool{} // group -> surviving final ids
	for _, gk := range groupOrder {
		g := groups[gk]
		members := make([]NodeRef, 0, len(g.order))
		for _, id := range g.order {
			members = append(members, g.refs[id])
		}
		if err := r.sortAxisOrder(doc, members, step.Axis); err != nil {
			return nil, err
		}
		for _, pred := range step.Preds {
			if pred.Kind != xpath.PredPos && pred.Kind != xpath.PredLast {
				continue
			}
			members = filterPositional(members, pred)
		}
		keep := map[int64]bool{}
		for _, m := range members {
			keep[m.ID] = true
		}
		surviving[gk] = keep
	}

	var out []binding
	for _, b := range bindings {
		final := b.steps[len(b.steps)-1]
		if surviving[groupOf(b)][final.ID] {
			out = append(out, b)
		}
	}
	return out, nil
}

// sortAxisOrder puts group members in axis order: document order, reversed
// for the reverse axes (preceding-sibling, ancestor).
func (r *run) sortAxisOrder(doc int64, members []NodeRef, axis xpath.Axis) error {
	if r.opts.Kind == encoding.Local && (axis == xpath.Descendant || axis == xpath.Ancestor) {
		// Members span multiple parents: materialize ancestor-chain keys.
		if err := r.sortDocOrder(doc, members); err != nil {
			return err
		}
	} else {
		// Same-parent groups (child/sibling/attribute) order by the order
		// key under every encoding; Global/Dewey order keys are global.
		sort.SliceStable(members, func(i, j int) bool {
			return sqltypes.Compare(members[i].Order, members[j].Order) < 0
		})
	}
	if axis == xpath.PrecedingSibling || axis == xpath.Ancestor {
		for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
			members[i], members[j] = members[j], members[i]
		}
	}
	return nil
}

// fetchNode loads one node's full NodeRef through the memoized point-lookup
// path.
func (r *run) fetchNode(doc, id int64) (NodeRef, bool, error) {
	if err := r.poll(); err != nil {
		return NodeRef{}, false, err
	}
	if ref, ok := r.nodeMemo[id]; ok {
		return ref, ref.ID != 0, nil
	}
	res, err := r.nodeStmt.QueryAtCtx(r.ctx, r.snap, sqldb.I(doc), sqldb.I(id))
	if err != nil {
		return NodeRef{}, false, err
	}
	if len(res.Rows) == 0 {
		r.nodeMemo[id] = NodeRef{}
		return NodeRef{}, false, nil
	}
	row := res.Rows[0]
	ref := NodeRef{ID: row[0].Int(), Order: row[2]}
	if !row[1].IsNull() {
		ref.Parent = row[1].Int()
	}
	kind, err := xmltree.ParseKind(row[3].Text())
	if err != nil {
		return NodeRef{}, false, err
	}
	ref.Kind = kind
	if !row[4].IsNull() {
		ref.Tag = row[4].Text()
	}
	if !row[5].IsNull() {
		ref.Value = row[5].Text()
	}
	r.nodeMemo[id] = ref
	return ref, true, nil
}

// runAncestorSegment evaluates an ancestor step by walking parent links from
// each context node. (Under Dewey the ancestors are exactly the prefixes of
// the context path, but each still needs its row for the node test, so the
// walk costs the same point lookups under every encoding.)
func (r *run) runAncestorSegment(doc int64, seg segment, ctx []NodeRef) ([]NodeRef, error) {
	step := seg.steps[0]
	var bindings []binding
	for _, c := range ctx {
		id := c.Parent
		for id != 0 {
			ref, ok, err := r.fetchNode(doc, id)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("node %d missing during ancestor walk", id)
			}
			if matchAncestorTest(ref, step.Test) {
				bindings = append(bindings, binding{steps: []NodeRef{ref}, ctxID: c.ID})
			}
			id = ref.Parent
		}
	}
	var err error
	if hasPosPred(step) {
		bindings, err = r.applyPositional(doc, bindings, seg, step)
		if err != nil {
			return nil, err
		}
	}
	seen := map[int64]bool{}
	var out []NodeRef
	for _, b := range bindings {
		final := b.steps[0]
		if !seen[final.ID] {
			seen[final.ID] = true
			out = append(out, final)
		}
	}
	return out, nil
}

// matchAncestorTest applies an element node test (ancestors are always
// elements; text() never matches).
func matchAncestorTest(ref NodeRef, t xpath.NodeTest) bool {
	if ref.Kind != xmltree.Element || t.TextTest {
		return false
	}
	return t.Any || ref.Tag == t.Name
}

func filterPositional(members []NodeRef, pred xpath.Predicate) []NodeRef {
	out := members[:0:0]
	for i, m := range members {
		pos := i + 1
		keep := false
		if pred.Kind == xpath.PredLast {
			keep = pos == len(members)
		} else {
			switch pred.Op {
			case xpath.CmpEq:
				keep = pos == pred.Pos
			case xpath.CmpNe:
				keep = pos != pred.Pos
			case xpath.CmpLt:
				keep = pos < pred.Pos
			case xpath.CmpLe:
				keep = pos <= pred.Pos
			case xpath.CmpGt:
				keep = pos > pred.Pos
			case xpath.CmpGe:
				keep = pos >= pred.Pos
			}
		}
		if keep {
			out = append(out, m)
		}
	}
	return out
}
