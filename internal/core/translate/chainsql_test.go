package translate

import (
	"strings"
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/shred"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmltree"
)

// These tests pin the shape of the generated SQL per encoding — the
// reproduction's analogue of the paper's translation examples.

func evalFor(t *testing.T, opts encoding.Options) (*Evaluator, int64) {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	sh, err := shred.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := xmltree.ParseString(
		`<site><regions><namerica><item id="i1"><name>x</name><keyword>k</keyword></item></namerica></regions></site>`)
	doc, err := sh.LoadTree("d", tree)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ev, doc
}

func sqlFor(t *testing.T, opts encoding.Options, query string) []string {
	t.Helper()
	ev, doc := evalFor(t, opts)
	if _, err := ev.Query(doc, query); err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	return ev.LastSQL()
}

func TestChainSQLChildPath(t *testing.T) {
	// A pure child chain is one self-join statement under every encoding.
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local}, {Kind: encoding.Dewey},
	} {
		sqls := sqlFor(t, opts, "/site/regions/namerica/item")
		if len(sqls) != 1 {
			t.Fatalf("%s: %d statements", opts.Kind, len(sqls))
		}
		sql := sqls[0]
		if got := strings.Count(sql, opts.NodesTable()+" n"); got != 4 {
			t.Errorf("%s: %d aliases, want 4:\n%s", opts.Kind, got, sql)
		}
		if !strings.Contains(sql, "n1.parent IS NULL") {
			t.Errorf("%s: root anchor missing:\n%s", opts.Kind, sql)
		}
		if !strings.Contains(sql, "n4.parent = n3.id") {
			t.Errorf("%s: parent join missing:\n%s", opts.Kind, sql)
		}
		ordered := strings.Contains(sql, "ORDER BY n4."+opts.OrderColumn())
		if opts.Kind == encoding.Local && ordered {
			t.Errorf("local must not ORDER BY lorder globally:\n%s", sql)
		}
		if opts.Kind != encoding.Local && !ordered {
			t.Errorf("%s: ORDER BY missing:\n%s", opts.Kind, sql)
		}
	}
}

func TestChainSQLDeweyDescendant(t *testing.T) {
	// Mid-path // under Dewey is a PREFIX_SUCC range join in one statement.
	sqls := sqlFor(t, encoding.Options{Kind: encoding.Dewey}, "/site/regions//keyword")
	if len(sqls) != 1 {
		t.Fatalf("%d statements: %v", len(sqls), sqls)
	}
	if !strings.Contains(sqls[0], "n3.path > n2.path") ||
		!strings.Contains(sqls[0], "n3.path < PREFIX_SUCC(n2.path)") {
		t.Errorf("dewey descendant join missing:\n%s", sqls[0])
	}
	// Under Global the same path splits: prefix chain, then a tag scan that
	// gets ancestry-checked client-side.
	sqls = sqlFor(t, encoding.Options{Kind: encoding.Global}, "/site/regions//keyword")
	if len(sqls) != 2 {
		t.Fatalf("global statements = %d: %v", len(sqls), sqls)
	}
	if !strings.Contains(sqls[1], "n1.tag = 'keyword'") || strings.Contains(sqls[1], "parent =") {
		t.Errorf("global descendant segment should be an unanchored tag scan:\n%s", sqls[1])
	}
}

func TestChainSQLSiblingAnchor(t *testing.T) {
	// A sibling step after a positional break becomes a per-context query
	// with parent and order parameters.
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Dewey},
	} {
		sqls := sqlFor(t, opts, "/site/regions/namerica/item[1]/following-sibling::item")
		last := sqls[len(sqls)-1]
		ord := opts.OrderColumn()
		if !strings.Contains(last, "n1.parent = ?") || !strings.Contains(last, "n1."+ord+" > ?") {
			t.Errorf("%s: sibling anchor missing:\n%s", opts.Kind, last)
		}
	}
}

func TestChainSQLValuePredicate(t *testing.T) {
	// [name = 'x'] joins the name element and its text child.
	sqls := sqlFor(t, encoding.Options{Kind: encoding.Dewey}, "//item[name = 'x']")
	sql := sqls[0]
	for _, want := range []string{
		"n2.tag = 'name'", "n2.parent = n1.id",
		"n3.kind = 'text'", "n3.parent = n2.id", "n3.value = 'x'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("value predicate fragment %q missing:\n%s", want, sql)
		}
	}
	// Attribute predicates compare the attr node's value directly.
	sqls = sqlFor(t, encoding.Options{Kind: encoding.Dewey}, "//item[@id = 'i1']")
	if !strings.Contains(sqls[0], "n2.kind = 'attr'") || !strings.Contains(sqls[0], "n2.value = 'i1'") {
		t.Errorf("attribute predicate:\n%s", sqls[0])
	}
}

func TestChainSQLLiteralEscaping(t *testing.T) {
	// XPath uses the other quote kind for embedded quotes; the SQL literal
	// must escape them (no injection through predicate values).
	sqls := sqlFor(t, encoding.Options{Kind: encoding.Dewey}, `//item[name = "o'brien"]`)
	if !strings.Contains(sqls[0], "'o''brien'") {
		t.Errorf("quote escaping:\n%s", sqls[0])
	}
	ev, doc := evalFor(t, encoding.Options{Kind: encoding.Dewey})
	if _, err := ev.Query(doc, `//item[name = "'; DROP TABLE xd_nodes --"]`); err != nil {
		t.Fatalf("quoted literal broke the statement: %v", err)
	}
}
