package translate

import (
	"fmt"
	"strings"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/xpath"
	"ordxml/internal/sqldb/sqltypes"
)

// anchorMode describes how a segment's first step binds to the incoming
// context and which parameters each per-context execution needs.
type anchorMode int

const (
	anchorRoot      anchorMode = iota // document root: parent IS NULL
	anchorScan                        // no structural condition (tag scan)
	anchorChildOf                     // parent = ?        (ctx id)
	anchorParentOf                    // id = ?            (ctx parent)
	anchorFollowing                   // parent = ? AND ord > ?
	anchorPreceding                   // parent = ? AND ord < ?
	anchorDeweyDesc                   // ord > ? AND ord < ?  (path range)
	anchorEmpty                       // statically empty (e.g. sibling of root)
)

// chainSQL is a compiled segment.
type chainSQL struct {
	sql    string
	anchor anchorMode
	// stepCols[i] is the column offset of step i's (id, parent, ord)
	// triple; the final step additionally exposes kind/tag/value.
	stepCols []int
	finalExt int // offset of kind,tag,value
}

// buildChainSQL compiles a segment into one SELECT.
func (e *Evaluator) buildChainSQL(doc int64, seg segment, first bool) (chainSQL, error) {
	b := &chainBuilder{ev: e, doc: doc}
	out := chainSQL{}

	for i, s := range seg.steps {
		alias := b.addNodeAlias()
		if i == 0 {
			mode, err := b.anchorConds(alias, s, first, seg.ancestryCheck)
			if err != nil {
				return chainSQL{}, err
			}
			out.anchor = mode
			if mode == anchorEmpty {
				return out, nil
			}
		} else {
			b.stepConds(alias, b.prevAlias, s)
		}
		b.testConds(alias, s.Axis, s.Test)
		for _, pred := range s.Preds {
			if pred.Kind == xpath.PredValue || pred.Kind == xpath.PredExists {
				selfLeaf := s.Axis == xpath.Attribute || s.Test.TextTest
				if err := b.predConds(alias, pred, selfLeaf); err != nil {
					return chainSQL{}, err
				}
			}
		}
		out.stepCols = append(out.stepCols, len(b.sel))
		b.sel = append(b.sel,
			alias+".id", alias+".parent", alias+"."+e.ord)
		b.prevAlias = alias
	}
	final := b.prevAlias
	out.finalExt = len(b.sel)
	b.sel = append(b.sel, final+".kind", final+".tag", final+".value")

	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(strings.Join(b.sel, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(b.from, ", "))
	sb.WriteString(" WHERE ")
	sb.WriteString(strings.Join(b.where, " AND "))
	if e.opts.Kind != encoding.Local {
		sb.WriteString(" ORDER BY " + final + "." + e.ord)
	}
	out.sql = sb.String()
	return out, nil
}

type chainBuilder struct {
	ev        *Evaluator
	doc       int64
	nAlias    int
	prevAlias string
	sel       []string
	from      []string
	where     []string
}

func (b *chainBuilder) addNodeAlias() string {
	b.nAlias++
	alias := fmt.Sprintf("n%d", b.nAlias)
	b.from = append(b.from, b.ev.tbl+" "+alias)
	b.where = append(b.where, fmt.Sprintf("%s.doc = %d", alias, b.doc))
	return alias
}

// anchorConds emits the first step's binding conditions.
func (b *chainBuilder) anchorConds(alias string, s xpath.Step, first, ancestry bool) (anchorMode, error) {
	ord := b.ev.ord
	if first {
		switch s.Axis {
		case xpath.Child:
			b.where = append(b.where, alias+".parent IS NULL")
			return anchorRoot, nil
		case xpath.Attribute:
			// Attributes of the virtual document node: none.
			return anchorEmpty, nil
		case xpath.Descendant:
			// Every node descends from the virtual document node.
			return anchorScan, nil
		default:
			// Siblings/parent of the virtual document node: none.
			return anchorEmpty, nil
		}
	}
	switch s.Axis {
	case xpath.Child, xpath.Attribute:
		b.where = append(b.where, alias+".parent = ?")
		return anchorChildOf, nil
	case xpath.Parent:
		b.where = append(b.where, alias+".id = ?")
		return anchorParentOf, nil
	case xpath.FollowingSibling:
		b.where = append(b.where, alias+".parent = ?", alias+"."+ord+" > ?")
		return anchorFollowing, nil
	case xpath.PrecedingSibling:
		b.where = append(b.where, alias+".parent = ?", alias+"."+ord+" < ?")
		return anchorPreceding, nil
	case xpath.Descendant:
		if b.ev.opts.Kind == encoding.Dewey {
			b.where = append(b.where, alias+"."+ord+" > ?", alias+"."+ord+" < ?")
			return anchorDeweyDesc, nil
		}
		if !ancestry {
			return 0, fmt.Errorf("internal: %s descendant segment lacks ancestry check", b.ev.opts.Kind)
		}
		return anchorScan, nil
	default:
		return 0, fmt.Errorf("internal: bad anchor axis %s", s.Axis)
	}
}

// stepConds emits the structural join between consecutive chain steps.
func (b *chainBuilder) stepConds(alias, prev string, s xpath.Step) {
	ord := b.ev.ord
	switch s.Axis {
	case xpath.Child, xpath.Attribute:
		b.where = append(b.where, fmt.Sprintf("%s.parent = %s.id", alias, prev))
	case xpath.Parent:
		b.where = append(b.where, fmt.Sprintf("%s.id = %s.parent", alias, prev))
	case xpath.FollowingSibling:
		b.where = append(b.where,
			fmt.Sprintf("%s.parent = %s.parent", alias, prev),
			fmt.Sprintf("%s.%s > %s.%s", alias, ord, prev, ord))
	case xpath.PrecedingSibling:
		b.where = append(b.where,
			fmt.Sprintf("%s.parent = %s.parent", alias, prev),
			fmt.Sprintf("%s.%s < %s.%s", alias, ord, prev, ord))
	case xpath.Descendant:
		// Only reachable under Dewey (splitSegments isolates the rest).
		b.where = append(b.where,
			fmt.Sprintf("%s.%s > %s.%s", alias, ord, prev, ord),
			fmt.Sprintf("%s.%s < PREFIX_SUCC(%s.%s)", alias, ord, prev, ord))
	}
}

// testConds emits node-test conditions.
func (b *chainBuilder) testConds(alias string, axis xpath.Axis, t xpath.NodeTest) {
	kind := "elem"
	if axis == xpath.Attribute {
		kind = "attr"
	} else if t.TextTest {
		kind = "text"
	}
	b.where = append(b.where, fmt.Sprintf("%s.kind = '%s'", alias, kind))
	if !t.Any && !t.TextTest {
		b.where = append(b.where, fmt.Sprintf("%s.tag = %s", alias, sqlString(t.Name)))
	}
}

// predConds emits the joins implementing a value or existence predicate.
// Value comparison against an element compares a text child, matching the
// oracle for simple-content elements (the standard shredding assumption).
// ctxIsLeaf reports that the context node itself is an attribute or text
// node, whose value column is compared directly for a '.' predicate.
func (b *chainBuilder) predConds(ctxAlias string, p xpath.Predicate, ctxIsLeaf bool) error {
	cur := ctxAlias
	curIsAttrOrText := ctxIsLeaf
	if p.Path != nil {
		for _, ps := range p.Path.Steps {
			alias := b.addNodeAlias()
			b.where = append(b.where, fmt.Sprintf("%s.parent = %s.id", alias, cur))
			b.testConds(alias, ps.Axis, ps.Test)
			cur = alias
			curIsAttrOrText = ps.Axis == xpath.Attribute || ps.Test.TextTest
		}
	}
	if p.Kind == xpath.PredExists {
		return nil
	}
	op := "="
	if p.ValOp == xpath.CmpNe {
		op = "<>"
	}
	if curIsAttrOrText {
		b.where = append(b.where, fmt.Sprintf("%s.value %s %s", cur, op, sqlString(p.Value)))
		return nil
	}
	// Element (or '.') comparison: join its text child.
	alias := b.addNodeAlias()
	b.where = append(b.where,
		fmt.Sprintf("%s.parent = %s.id", alias, cur),
		fmt.Sprintf("%s.kind = 'text'", alias),
		fmt.Sprintf("%s.value %s %s", alias, op, sqlString(p.Value)))
	return nil
}

func sqlString(s string) string {
	return sqltypes.NewText(s).SQLLiteral()
}
