// Package translate evaluates the ordered XPath fragment over the
// relational encodings by compiling location paths into SQL. Per the paper:
//
//   - Structural joins (child, parent, sibling ranges, Dewey descendant
//     prefixes) become self-joins of the node table that the engine executes
//     as correlated index lookups.
//   - Ordered output comes from ORDER BY on the order key (Global, Dewey);
//     the Local encoding has no document-order column, so results are sorted
//     client-side using ancestor chains fetched through point lookups — the
//     cost the paper attributes to local order.
//   - The descendant axis is a pure index range scan under Dewey; under
//     Global and Local, ancestry is verified by walking parent links with
//     point lookups (there is no recursive SQL), which experiment E3
//     quantifies.
//   - Positional predicates ([k], [position() op k], [last()]) are applied
//     by an ordered post-processing step over the SQL result, grouped by
//     context node; the SQL carries every step's id/parent/order key so the
//     grouping needs no further queries.
//
// A path is split into segments: a maximal chain of steps is compiled into
// one SQL statement; segment boundaries fall after any step with positional
// predicates and before a descendant step that the encoding cannot express
// in SQL (Global/Local). Follow-up segments run one indexed query per
// context node.
package translate

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/xpath"
	"ordxml/internal/govern"
	"ordxml/internal/obs"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/xmltree"
)

// NodeRef identifies one matched node.
type NodeRef struct {
	ID     int64
	Parent int64 // 0 for the document root
	Kind   xmltree.Kind
	Tag    string
	Value  string
	// Order is the encoding-specific order key (INT for global/local, BLOB
	// or TEXT for Dewey).
	Order sqltypes.Value
}

// Evaluator compiles and runs XPath queries for one encoding.
type Evaluator struct {
	db   *sqldb.DB
	opts encoding.Options
	tbl  string
	ord  string

	// mu guards the prepared-statement cache and lastSQL; per-query scratch
	// state lives in a run value so concurrent readers never share it.
	mu      sync.Mutex
	stmts   map[string]*sqldb.Stmt
	lastSQL []string

	parentStmt *sqldb.Stmt
	nodeStmt   *sqldb.Stmt

	met evalMetrics
}

// evalMetrics are the evaluator's always-on instruments, hung on the DB's
// registry so Store.Metrics() sees the XPath pipeline next to the SQL engine.
type evalMetrics struct {
	queries *obs.Counter   // xpath.queries
	total   *obs.Histogram // xpath.query.latency
	stages  map[string]*obs.Histogram
}

// Stage names of the XPath pipeline, in execution order: parsing the path,
// compiling segments to SQL, running the statements, client-side
// post-processing (positional predicates, ancestry walks) and the final
// document-order sort.
const (
	StageParse     = "parse"
	StageTranslate = "translate"
	StageExec      = "exec"
	StagePost      = "post"
	StageSort      = "sort"
)

// stageNames lists every pipeline stage for metric registration.
var stageNames = []string{StageParse, StageTranslate, StageExec, StagePost, StageSort}

func newEvalMetrics(reg *obs.Registry) evalMetrics {
	m := evalMetrics{
		queries: reg.Counter("xpath.queries"),
		total:   reg.Histogram("xpath.query.latency"),
		stages:  make(map[string]*obs.Histogram, len(stageNames)),
	}
	for _, name := range stageNames {
		m.stages[name] = reg.Histogram("xpath.stage." + name)
	}
	return m
}

// record folds one query's trace into the per-stage histograms.
func (m *evalMetrics) record(total time.Duration, tr *obs.Trace) {
	m.queries.Inc()
	m.total.Observe(total)
	for _, s := range tr.Stages() {
		if h := m.stages[s.Name]; h != nil {
			h.Observe(s.Dur)
		}
	}
}

// run is the per-query evaluation context: the pinned storage snapshot every
// statement of the query reads (one XPath query = one consistent view, even
// across the many SQL statements of a multi-segment path), memoized point
// lookups (reset per query so work counters stay honest), the generated SQL
// trace, and the stage trace that feeds the pipeline histograms.
type run struct {
	*Evaluator
	snap       *sqldb.Snap
	parentMemo map[int64]parentInfo
	nodeMemo   map[int64]NodeRef
	sqls       []string
	trace      *obs.Trace
	// ctx carries the request span when the query is traced; statements run
	// through it so planner and operator spans land in the request's tree.
	ctx context.Context
	// pool, when non-nil alongside an active span, lets each statement
	// execution emit a bufpool fetch/evict/flush delta event.
	pool *bufpool.Pool
	// polls counts client-side loop iterations for cooperative cancellation
	// (see run.poll).
	polls int
}

// poll checks the request context once per govern.PollInterval iterations of
// a client-side loop (per-context statement fan-out, ancestry walks, local
// order-key construction). The executor polls inside each statement, but a
// point lookup returns long before its first poll interval — a path that
// fans out into thousands of tiny statements would otherwise never observe
// cancellation.
func (r *run) poll() error {
	r.polls++
	if r.polls%govern.PollInterval != 0 {
		return nil
	}
	return govern.CtxErr(r.ctx)
}

// tracedExec runs fn (one SQL statement execution) under the request trace:
// a per-statement bufpool delta event is attached when the store is pooled.
func (r *run) tracedExec(fn func(ctx context.Context) error) error {
	sp := obs.FromContext(r.ctx)
	if sp == nil || r.pool == nil {
		return fn(r.ctx)
	}
	before := r.pool.Stats()
	err := fn(r.ctx)
	after := r.pool.Stats()
	sp.Event("bufpool.delta",
		obs.Arg{Key: "hits", Val: after.Hits - before.Hits},
		obs.Arg{Key: "misses", Val: after.Misses - before.Misses},
		obs.Arg{Key: "evictions", Val: after.Evictions - before.Evictions},
		obs.Arg{Key: "dirty_flushes", Val: after.DirtyFlushes - before.DirtyFlushes})
	return err
}

type parentInfo struct {
	parent int64
	lorder int64
	known  bool
}

// New prepares an evaluator. The encoding must be installed.
func New(db *sqldb.DB, opts encoding.Options) (*Evaluator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	e := &Evaluator{
		db: db, opts: opts,
		tbl: opts.NodesTable(), ord: opts.OrderColumn(),
		stmts: map[string]*sqldb.Stmt{},
		met:   newEvalMetrics(db.Registry()),
	}
	var err error
	e.parentStmt, err = db.Prepare(fmt.Sprintf(
		`SELECT parent, %s FROM %s WHERE doc = ? AND id = ?`, e.ord, e.tbl))
	if err != nil {
		return nil, err
	}
	e.nodeStmt, err = db.Prepare(fmt.Sprintf(
		`SELECT id, parent, %s, kind, tag, value FROM %s WHERE doc = ? AND id = ?`, e.ord, e.tbl))
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Options returns the evaluator's encoding options.
func (e *Evaluator) Options() encoding.Options { return e.opts }

// LastSQL returns the SQL statements generated by the most recent Query, in
// execution order (deduplicated per segment; per-context executions reuse
// one statement). With concurrent queries it reflects whichever finished
// last.
func (e *Evaluator) LastSQL() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.lastSQL...)
}

// Query parses and evaluates an absolute XPath expression against one
// document, returning matches in document order. The whole evaluation runs
// against one pinned storage snapshot, so concurrent updates are invisible
// to a query in flight.
func (e *Evaluator) Query(doc int64, path string) ([]NodeRef, error) {
	refs, _, err := e.queryTraced(context.Background(), doc, path, nil)
	return refs, err
}

// QueryCtx is Query with a caller context: when the engine's request tracer
// is enabled the whole pipeline (parse, translate, every SQL statement with
// planner and operator spans, post, sort) records one span tree.
func (e *Evaluator) QueryCtx(ctx context.Context, doc int64, path string) ([]NodeRef, error) {
	refs, _, err := e.queryTraced(ctx, doc, path, nil)
	return refs, err
}

// QueryAt evaluates a path against an externally pinned snapshot, letting a
// caller compose the query with other snapshot reads (e.g. value extraction)
// at the same version.
func (e *Evaluator) QueryAt(snap *sqldb.Snap, doc int64, path string) ([]NodeRef, error) {
	refs, _, err := e.queryTraced(context.Background(), doc, path, snap)
	return refs, err
}

// QueryAtCtx is QueryAt with a caller context (see QueryCtx).
func (e *Evaluator) QueryAtCtx(ctx context.Context, snap *sqldb.Snap, doc int64, path string) ([]NodeRef, error) {
	refs, _, err := e.queryTraced(ctx, doc, path, snap)
	return refs, err
}

// QueryTraced evaluates a path like Query and additionally returns the
// per-stage wall-time breakdown of this evaluation (parse, translate, exec,
// post, sort). Stage durations also feed the xpath.stage.* histograms.
func (e *Evaluator) QueryTraced(doc int64, path string) ([]NodeRef, []obs.Stage, error) {
	return e.queryTraced(context.Background(), doc, path, nil)
}

func (e *Evaluator) queryTraced(ctx context.Context, doc int64, path string, snap *sqldb.Snap) ([]NodeRef, []obs.Stage, error) {
	var root *obs.ActiveSpan
	if obs.FromContext(ctx) == nil {
		ctx, root = e.db.Tracer().StartRoot(ctx, "xpath.query")
		root.ArgStr("path", path)
	}
	defer root.End()
	tr := obs.NewTrace()
	start := time.Now()
	sp := tr.Start(StageParse)
	psp := obs.FromContext(ctx).StartChild("parse")
	p, err := xpath.Parse(path)
	psp.End()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	refs, err := e.queryPath(ctx, doc, p, tr, snap)
	e.met.record(time.Since(start), tr)
	if err != nil {
		return nil, nil, err
	}
	if root != nil {
		root.Arg("results", int64(len(refs)))
	}
	return refs, tr.Stages(), nil
}

// QueryPath evaluates a parsed path.
func (e *Evaluator) QueryPath(doc int64, p *xpath.Path) ([]NodeRef, error) {
	tr := obs.NewTrace()
	start := time.Now()
	refs, err := e.queryPath(context.Background(), doc, p, tr, nil)
	e.met.record(time.Since(start), tr)
	return refs, err
}

func (e *Evaluator) queryPath(ctx context.Context, doc int64, p *xpath.Path, tr *obs.Trace, snap *sqldb.Snap) ([]NodeRef, error) {
	if snap == nil {
		snap = e.db.Snapshot()
	}
	r := &run{
		Evaluator:  e,
		snap:       snap,
		parentMemo: map[int64]parentInfo{},
		nodeMemo:   map[int64]NodeRef{},
		trace:      tr,
		ctx:        ctx,
		pool:       e.db.Pool(),
	}
	sp := tr.Start(StageTranslate)
	tsp := obs.FromContext(ctx).StartChild("translate")
	segs, err := splitSegments(p, e.opts.Kind)
	tsp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	var nodes []NodeRef
	first := true
	for i, seg := range segs {
		segSp := obs.FromContext(ctx).StartChild("segment").Arg("index", int64(i))
		r.ctx = obs.ContextWith(ctx, segSp)
		nodes, err = r.runSegment(doc, seg, nodes, first)
		segSp.End()
		if err != nil {
			return nil, err
		}
		first = false
		if len(nodes) == 0 {
			break
		}
	}
	e.mu.Lock()
	e.lastSQL = r.sqls
	e.mu.Unlock()
	if len(nodes) == 0 {
		return nil, nil
	}
	sp = tr.Start(StageSort)
	ssp := obs.FromContext(ctx).StartChild("sort")
	err = r.sortDocOrder(doc, nodes)
	ssp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	return nodes, nil
}

// segment is a run of steps compiled into one SQL statement. ancestryCheck
// marks a Global/Local descendant segment whose results must be filtered by
// walking parent chains against the context set.
type segment struct {
	steps         []xpath.Step
	ancestryCheck bool
}

// splitSegments partitions the path. Boundaries fall after a step carrying
// positional predicates and around descendant steps that Global/Local
// cannot express in SQL.
func splitSegments(p *xpath.Path, kind encoding.Kind) ([]segment, error) {
	if !p.Absolute {
		return nil, fmt.Errorf("only absolute paths can be evaluated against a document")
	}
	var segs []segment
	cur := segment{}
	flush := func() {
		if len(cur.steps) > 0 {
			segs = append(segs, cur)
			cur = segment{}
		}
	}
	for i, s := range p.Steps {
		if err := validateStep(s); err != nil {
			return nil, err
		}
		if s.Axis == xpath.Ancestor {
			// Ancestor steps are evaluated client-side by walking parent
			// links (under Dewey the ancestors are the path's prefixes; the
			// walk is equivalent and uniform): always their own segment.
			if i == 0 {
				return nil, fmt.Errorf("ancestor axis cannot start an absolute path")
			}
			flush()
			cur = segment{steps: []xpath.Step{s}}
			flush()
			continue
		}
		if s.Axis == xpath.Descendant && kind != encoding.Dewey && i > 0 {
			// Global/Local descendant: its own segment with ancestry check.
			flush()
			cur = segment{steps: []xpath.Step{s}, ancestryCheck: true}
			if hasPosPred(s) {
				flush()
				continue
			}
			// Later steps cannot join below a client-filtered set in the
			// same statement.
			flush()
			continue
		}
		cur.steps = append(cur.steps, s)
		if hasPosPred(s) {
			flush()
		}
	}
	flush()
	return segs, nil
}

func hasPosPred(s xpath.Step) bool {
	for _, p := range s.Preds {
		if p.Kind == xpath.PredPos || p.Kind == xpath.PredLast {
			return true
		}
	}
	return false
}

// validateStep rejects constructs outside the supported fragment.
func validateStep(s xpath.Step) error {
	if s.Axis == xpath.Ancestor {
		for _, p := range s.Preds {
			if p.Kind == xpath.PredValue || p.Kind == xpath.PredExists {
				return fmt.Errorf("value predicates on the ancestor axis are not supported")
			}
		}
	}
	for _, p := range s.Preds {
		if p.Path == nil {
			continue
		}
		for _, ps := range p.Path.Steps {
			if ps.Axis != xpath.Child && ps.Axis != xpath.Attribute {
				return fmt.Errorf("predicate paths support child and attribute steps only, got %s", ps.Axis)
			}
			if len(ps.Preds) > 0 {
				return fmt.Errorf("nested predicates are not supported")
			}
		}
	}
	return nil
}

// prepare caches prepared statements by SQL text (shared across queries).
func (e *Evaluator) prepare(sql string) (*sqldb.Stmt, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.stmts[sql]; ok {
		return s, nil
	}
	s, err := e.db.Prepare(sql)
	if err != nil {
		return nil, fmt.Errorf("generated SQL failed to prepare: %w\nSQL: %s", err, sql)
	}
	e.stmts[sql] = s
	return s, nil
}

// parentOf returns (parent id, local order) of a node through the memoized
// point-lookup path.
func (r *run) parentOf(doc, id int64) (parentInfo, error) {
	if err := r.poll(); err != nil {
		return parentInfo{}, err
	}
	if info, ok := r.parentMemo[id]; ok {
		return info, nil
	}
	res, err := r.parentStmt.QueryAtCtx(r.ctx, r.snap, sqldb.I(doc), sqldb.I(id))
	if err != nil {
		return parentInfo{}, err
	}
	info := parentInfo{}
	if len(res.Rows) > 0 {
		info.known = true
		if !res.Rows[0][0].IsNull() {
			info.parent = res.Rows[0][0].Int()
		}
		if r.opts.Kind == encoding.Local {
			info.lorder = res.Rows[0][1].Int()
		}
	}
	r.parentMemo[id] = info
	return info, nil
}

// sortDocOrder sorts refs into document order. Global and Dewey order keys
// compare directly; Local materializes ancestor-chain keys through point
// lookups (the encoding's documented cost).
func (r *run) sortDocOrder(doc int64, refs []NodeRef) error {
	if r.opts.Kind != encoding.Local {
		sort.SliceStable(refs, func(i, j int) bool {
			return sqltypes.Compare(refs[i].Order, refs[j].Order) < 0
		})
		return nil
	}
	keys := make(map[int64][]int64, len(refs))
	for _, ref := range refs {
		k, err := r.localKey(doc, ref)
		if err != nil {
			return err
		}
		keys[ref.ID] = k
	}
	sort.SliceStable(refs, func(i, j int) bool {
		return compareIntSlices(keys[refs[i].ID], keys[refs[j].ID]) < 0
	})
	return nil
}

// localKey builds the root-to-node lorder vector.
func (r *run) localKey(doc int64, ref NodeRef) ([]int64, error) {
	var rev []int64
	rev = append(rev, ref.Order.Int())
	id := ref.Parent
	for id != 0 {
		info, err := r.parentOf(doc, id)
		if err != nil {
			return nil, err
		}
		if !info.known {
			return nil, fmt.Errorf("node %d missing while building local order", id)
		}
		rev = append(rev, info.lorder)
		id = info.parent
	}
	out := make([]int64, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out, nil
}

func compareIntSlices(a, b []int64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
