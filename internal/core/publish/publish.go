// Package publish reconstructs XML from the relational encodings — the
// inverse of shredding. Reconstruction cost differs sharply by encoding,
// which experiment E7 quantifies:
//
//   - Global and Dewey: one index scan in order-key order yields the
//     document in pre-order; the tree is rebuilt with a single pass.
//   - Local: sibling order is only meaningful per parent, so the publisher
//     fetches all rows and sorts each sibling group (or, for subtrees,
//     descends with one indexed child query per element).
//   - Subtrees: Dewey extracts a subtree with a single path-prefix range
//     scan; Global and Local must recurse through parent links.
package publish

import (
	"context"
	"fmt"
	"sort"

	"ordxml/internal/core/dewey"
	"ordxml/internal/core/encoding"
	"ordxml/internal/govern"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// Publisher reconstructs documents from one encoding's tables.
type Publisher struct {
	db   *sqldb.DB
	opts encoding.Options

	allOrdered *sqldb.Stmt // doc rows in order-key order (global/dewey)
	allRows    *sqldb.Stmt // doc rows unordered (local)
	children   *sqldb.Stmt // rows under one parent in sibling order
	byID       *sqldb.Stmt
	pathRange  *sqldb.Stmt // dewey subtree range
}

// New prepares a publisher for the encoding.
func New(db *sqldb.DB, opts encoding.Options) (*Publisher, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	tbl, ord := opts.NodesTable(), opts.OrderColumn()
	p := &Publisher{db: db, opts: opts}
	var err error
	cols := sqlgen.List("id", "parent", "kind", "tag", "value", ord)
	if p.allOrdered, err = db.Prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ? ORDER BY %s`, cols, tbl, ord)); err != nil {
		return nil, err
	}
	if p.allRows, err = db.Prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ?`, cols, tbl)); err != nil {
		return nil, err
	}
	if p.children, err = db.Prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ? AND parent = ? ORDER BY %s`, cols, tbl, ord)); err != nil {
		return nil, err
	}
	if p.byID, err = db.Prepare(sqlgen.SQL(
		`SELECT %s FROM %s WHERE doc = ? AND id = ?`, cols, tbl)); err != nil {
		return nil, err
	}
	if opts.Kind == encoding.Dewey {
		if p.pathRange, err = db.Prepare(sqlgen.SQL(
			`SELECT %s FROM %s WHERE doc = ? AND %s >= ? AND %s < ? ORDER BY %s`,
			cols, tbl, ord, ord, ord)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// nodeRow is one decoded node record.
type nodeRow struct {
	id     int64
	parent int64 // 0 = none
	kind   xmltree.Kind
	tag    string
	value  string
	order  sqltypes.Value
}

func decodeRow(r sqltypes.Row) (nodeRow, error) {
	kind, err := xmltree.ParseKind(r[2].Text())
	if err != nil {
		return nodeRow{}, err
	}
	n := nodeRow{id: r[0].Int(), kind: kind, order: r[5]}
	if !r[1].IsNull() {
		n.parent = r[1].Int()
	}
	if !r[3].IsNull() {
		n.tag = r[3].Text()
	}
	if !r[4].IsNull() {
		n.value = r[4].Text()
	}
	return n, nil
}

func (r nodeRow) toNode() *xmltree.Node {
	switch r.kind {
	case xmltree.Element:
		return xmltree.NewElement(r.tag)
	case xmltree.Attr:
		return xmltree.NewAttr(r.tag, r.value)
	default:
		return xmltree.NewText(r.value)
	}
}

// attach links child into parent respecting node kind.
func attach(parent, child *xmltree.Node) {
	if child.Kind == xmltree.Attr {
		child.Parent = parent
		parent.Attrs = append(parent.Attrs, child)
		return
	}
	parent.AddChild(child)
}

// Document reconstructs the whole document. The reconstruction pins one
// storage snapshot, so every row it reads — across however many statements
// the encoding needs — comes from the same store version.
func (p *Publisher) Document(doc int64) (*xmltree.Node, error) {
	return p.DocumentAt(nil, doc)
}

// DocumentAt reconstructs the document as of a pinned snapshot (nil pins the
// current version).
func (p *Publisher) DocumentAt(snap *sqldb.Snap, doc int64) (*xmltree.Node, error) {
	return p.DocumentCtx(context.Background(), snap, doc)
}

// DocumentCtx is DocumentAt with a caller context: the reconstruction's
// statements run governed (cancellation, deadline, memory budget) and join
// the request trace.
func (p *Publisher) DocumentCtx(ctx context.Context, snap *sqldb.Snap, doc int64) (*xmltree.Node, error) {
	if snap == nil {
		snap = p.db.Snapshot()
	}
	if p.opts.Kind == encoding.Local {
		return p.documentLocal(ctx, snap, doc)
	}
	res, err := p.allOrdered.QueryAtCtx(ctx, snap, sqldb.I(doc))
	if err != nil {
		return nil, err
	}
	return buildPreOrder(res.Rows, 0)
}

// buildPreOrder rebuilds a tree from rows sorted in document (pre-)order.
// rootParent identifies the parent id that marks the subtree root row.
func buildPreOrder(rows []sqltypes.Row, rootParent int64) (*xmltree.Node, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("no rows to publish")
	}
	byID := make(map[int64]*xmltree.Node, len(rows))
	var root *xmltree.Node
	for i, r := range rows {
		nr, err := decodeRow(r)
		if err != nil {
			return nil, err
		}
		n := nr.toNode()
		byID[nr.id] = n
		if i == 0 {
			if nr.parent != rootParent && rootParent != 0 {
				return nil, fmt.Errorf("subtree root mismatch: row parent %d", nr.parent)
			}
			root = n
			continue
		}
		parent, ok := byID[nr.parent]
		if !ok {
			return nil, fmt.Errorf("row %d arrived before its parent %d (order key corrupt?)", nr.id, nr.parent)
		}
		attach(parent, n)
	}
	return root, nil
}

// documentLocal rebuilds from the local encoding: one unordered scan, then a
// per-parent sibling sort.
func (p *Publisher) documentLocal(ctx context.Context, snap *sqldb.Snap, doc int64) (*xmltree.Node, error) {
	res, err := p.allRows.QueryAtCtx(ctx, snap, sqldb.I(doc))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("no rows to publish")
	}
	type entry struct {
		row  nodeRow
		node *xmltree.Node
	}
	byParent := map[int64][]entry{}
	var root *entry
	for _, r := range res.Rows {
		nr, err := decodeRow(r)
		if err != nil {
			return nil, err
		}
		e := entry{row: nr, node: nr.toNode()}
		if nr.parent == 0 {
			root = &e
			continue
		}
		byParent[nr.parent] = append(byParent[nr.parent], e)
	}
	if root == nil {
		return nil, fmt.Errorf("document %d has no root row", doc)
	}
	var link func(e *entry)
	link = func(e *entry) {
		kids := byParent[e.row.id]
		sort.Slice(kids, func(a, b int) bool {
			return kids[a].row.order.Int() < kids[b].row.order.Int()
		})
		for i := range kids {
			attach(e.node, kids[i].node)
			link(&kids[i])
		}
	}
	link(root)
	return root.node, nil
}

// Subtree reconstructs the subtree rooted at the node with the given
// surrogate id, against one pinned storage snapshot.
func (p *Publisher) Subtree(doc, id int64) (*xmltree.Node, error) {
	return p.SubtreeAt(nil, doc, id)
}

// SubtreeAt reconstructs a subtree as of a pinned snapshot (nil pins the
// current version).
func (p *Publisher) SubtreeAt(snap *sqldb.Snap, doc, id int64) (*xmltree.Node, error) {
	return p.SubtreeCtx(context.Background(), snap, doc, id)
}

// SubtreeCtx is SubtreeAt with a caller context (see DocumentCtx).
func (p *Publisher) SubtreeCtx(ctx context.Context, snap *sqldb.Snap, doc, id int64) (*xmltree.Node, error) {
	if snap == nil {
		snap = p.db.Snapshot()
	}
	res, err := p.byID.QueryAtCtx(ctx, snap, sqldb.I(doc), sqldb.I(id))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("document %d has no node %d", doc, id)
	}
	rootRow, err := decodeRow(res.Rows[0])
	if err != nil {
		return nil, err
	}
	if p.opts.Kind == encoding.Dewey {
		return p.subtreeDewey(ctx, snap, doc, rootRow)
	}
	// Global and Local: recurse through the (doc, parent, order) index —
	// there is no single range containing exactly the subtree.
	node := rootRow.toNode()
	if err := p.fillChildren(ctx, snap, doc, rootRow.id, node); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *Publisher) fillChildren(ctx context.Context, snap *sqldb.Snap, doc, id int64, node *xmltree.Node) error {
	// One child query per element: the statements are too small to reach the
	// executor's poll interval, so the recursion checks the context itself.
	if err := govern.CtxErr(ctx); err != nil {
		return err
	}
	res, err := p.children.QueryAtCtx(ctx, snap, sqldb.I(doc), sqldb.I(id))
	if err != nil {
		return err
	}
	for _, r := range res.Rows {
		nr, err := decodeRow(r)
		if err != nil {
			return err
		}
		child := nr.toNode()
		attach(node, child)
		if err := p.fillChildren(ctx, snap, doc, nr.id, child); err != nil {
			return err
		}
	}
	return nil
}

// subtreeDewey extracts the subtree with one path-prefix range scan.
func (p *Publisher) subtreeDewey(ctx context.Context, snap *sqldb.Snap, doc int64, rootRow nodeRow) (*xmltree.Node, error) {
	var low, high sqltypes.Value
	if p.opts.DeweyAsText {
		ps := rootRow.order.Text()
		path, err := dewey.ParsePadded(ps)
		if err != nil {
			return nil, err
		}
		low = sqldb.S(ps)
		high = sqldb.S(path.PaddedPrefixSuccessor())
	} else {
		path, err := dewey.FromBytes(rootRow.order.Blob())
		if err != nil {
			return nil, err
		}
		low = sqldb.B(path.Bytes())
		succ := path.PrefixSuccessor()
		if succ == nil {
			return nil, fmt.Errorf("path has no prefix successor")
		}
		high = sqldb.B(succ)
	}
	res, err := p.pathRange.QueryAtCtx(ctx, snap, sqldb.I(doc), low, high)
	if err != nil {
		return nil, err
	}
	return buildPreOrder(res.Rows, rootRow.parent)
}
