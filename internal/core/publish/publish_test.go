package publish

import (
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/shred"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmltree"
)

// Round trips across encodings live in the shred package; these tests cover
// the publisher's own edge cases and failure paths.

func setup(t *testing.T, opts encoding.Options, xml string) (*Publisher, int64, *sqldb.DB) {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	sh, err := shred.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sh.LoadTree("d", tree)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, doc, db
}

func TestMissingDocument(t *testing.T) {
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local}, {Kind: encoding.Dewey},
	} {
		p, _, _ := setup(t, opts, "<a/>")
		if _, err := p.Document(99); err == nil {
			t.Errorf("%s: missing document published", opts.Kind)
		}
		if _, err := p.Subtree(99, 1); err == nil {
			t.Errorf("%s: subtree of missing document published", opts.Kind)
		}
		if _, err := p.Subtree(1, 42); err == nil {
			t.Errorf("%s: missing node published", opts.Kind)
		}
	}
}

func TestSubtreeOfLeaf(t *testing.T) {
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local}, {Kind: encoding.Dewey},
		{Kind: encoding.Dewey, DeweyAsText: true},
	} {
		p, doc, db := setup(t, opts, `<a><b x="1">hi</b></a>`)
		// Find the text node's id.
		res, err := db.Query(
			"SELECT id FROM "+opts.NodesTable()+" WHERE doc = ? AND kind = 'text'", sqldb.I(doc))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("%v rows, %v", len(res.Rows), err)
		}
		textID := res.Rows[0][0].Int()
		sub, err := p.Subtree(doc, textID)
		if err != nil {
			t.Fatalf("%s: %v", opts.Kind, err)
		}
		if sub.Kind != xmltree.Text || sub.Value != "hi" {
			t.Errorf("%s: leaf subtree = %+v", opts.Kind, sub)
		}
		// Attribute node as subtree.
		res, _ = db.Query(
			"SELECT id FROM "+opts.NodesTable()+" WHERE doc = ? AND kind = 'attr'", sqldb.I(doc))
		attrID := res.Rows[0][0].Int()
		sub, err = p.Subtree(doc, attrID)
		if err != nil || sub.Kind != xmltree.Attr || sub.Tag != "x" {
			t.Errorf("%s: attr subtree = %+v, %v", opts.Kind, sub, err)
		}
	}
}

func TestDocumentAfterSubtreeDeletion(t *testing.T) {
	// Publishing must tolerate order keys with holes (post-delete state is
	// simulated by loading with a gap).
	opts := encoding.Options{Kind: encoding.Global, Gap: 32}
	p, doc, _ := setup(t, opts, `<a><b/><c/><d/></a>`)
	tree, err := p.Document(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 3 {
		t.Errorf("children = %d", len(tree.Children))
	}
}

func TestMixedContentOrder(t *testing.T) {
	const xml = `<p>one <b>two</b> three <i>four</i> five</p>`
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local}, {Kind: encoding.Dewey},
	} {
		p, doc, _ := setup(t, opts, xml)
		tree, err := p.Document(doc)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.String(); got != xml {
			t.Errorf("%s: mixed content order lost: %s", opts.Kind, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	db := sqldb.Open()
	if _, err := New(db, encoding.Options{Kind: encoding.Kind(9)}); err == nil {
		t.Error("bad options accepted")
	}
	if _, err := New(db, encoding.Options{Kind: encoding.Global}); err == nil {
		t.Error("uninstalled encoding accepted")
	}
}
