// Package shred loads XML documents into the relational encodings: it walks
// a document tree in document order, assigns surrogate ids and order keys
// (global position, sibling ordinal, or Dewey path — gap-adjusted), and
// inserts one row per node.
package shred

import (
	"fmt"
	"io"

	"ordxml/internal/core/dewey"
	"ordxml/internal/core/encoding"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/sqlgen"
	"ordxml/internal/xmltree"
)

// Shredder loads documents into one encoding's tables.
type Shredder struct {
	db   *sqldb.DB
	opts encoding.Options

	insertDoc *sqldb.Stmt
	maxDoc    *sqldb.Stmt
	docByID   *sqldb.Stmt
	deleteDoc *sqldb.Stmt
	deleteReg *sqldb.Stmt

	// nextDoc is the cached high-water mark for document ids: the next id to
	// hand out, 0 until seeded by the first load. It replaces a full-scan
	// MAX(doc) per load with one indexed point probe.
	nextDoc int64
}

// New prepares a shredder. The encoding's schema must already be installed.
func New(db *sqldb.DB, opts encoding.Options) (*Shredder, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	tbl := opts.NodesTable()
	s := &Shredder{db: db, opts: opts}
	var err error
	if s.insertDoc, err = db.Prepare(`INSERT INTO docs (doc, name, root, nodes) VALUES (?, ?, ?, ?)`); err != nil {
		return nil, err
	}
	if s.maxDoc, err = db.Prepare(`SELECT MAX(doc) FROM docs`); err != nil {
		return nil, err
	}
	if s.docByID, err = db.Prepare(`SELECT doc FROM docs WHERE doc = ?`); err != nil {
		return nil, err
	}
	if s.deleteDoc, err = db.Prepare(sqlgen.SQL(`DELETE FROM %s WHERE doc = ?`, tbl)); err != nil {
		return nil, err
	}
	if s.deleteReg, err = db.Prepare(`DELETE FROM docs WHERE doc = ?`); err != nil {
		return nil, err
	}
	return s, nil
}

// Options returns the shredder's encoding options.
func (s *Shredder) Options() encoding.Options { return s.opts }

// Load parses XML from r and stores it under the given name, returning the
// new document id.
func (s *Shredder) Load(name string, r io.Reader) (int64, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return s.LoadTree(name, root)
}

// LoadTree stores an already-parsed document. The whole tree is shredded
// into rows in memory first and inserted through the engine's bulk fast
// path (one batch heap append plus one sorted pass per index), instead of
// one parse/plan/execute round trip per node.
func (s *Shredder) LoadTree(name string, root *xmltree.Node) (int64, error) {
	docID, err := s.nextDocID()
	if err != nil {
		return 0, err
	}
	size := root.Size()
	w := &walker{
		s: s, doc: docID,
		rows: make([]sqltypes.Row, 0, size),
		vals: make([]sqltypes.Value, 0, size*nodeCols),
	}
	if err := w.walk(root, 0, 1); err != nil {
		return 0, err
	}
	if _, err := s.db.BulkInsert(s.opts.NodesTable(), w.rows); err != nil {
		return 0, err
	}
	if _, err := s.insertDoc.Exec(sqldb.I(docID), sqldb.S(name), sqldb.I(1), sqldb.I(w.nextID-1)); err != nil {
		return 0, err
	}
	s.nextDoc = docID + 1
	return docID, nil
}

// DropDocument removes a document and all its rows.
func (s *Shredder) DropDocument(docID int64) error {
	n, err := s.deleteDoc.Exec(sqldb.I(docID))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("document %d has no rows in %s", docID, s.opts.NodesTable())
	}
	if _, err := s.deleteReg.Exec(sqldb.I(docID)); err != nil {
		return err
	}
	return nil
}

// nextDocID returns the next unused document id. The first call seeds the
// high-water mark with one MAX(doc) scan; every later call costs a single
// point probe through the docs primary-key index — the probe guards against
// other writers on the shared docs table (e.g. a second shredder for another
// encoding in the same database).
func (s *Shredder) nextDocID() (int64, error) {
	if s.nextDoc == 0 {
		res, err := s.maxDoc.Query()
		if err != nil {
			return 0, err
		}
		if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
			s.nextDoc = 1
		} else {
			s.nextDoc = res.Rows[0][0].Int() + 1
		}
		return s.nextDoc, nil
	}
	for {
		res, err := s.docByID.Query(sqldb.I(s.nextDoc))
		if err != nil {
			return 0, err
		}
		if len(res.Rows) == 0 {
			return s.nextDoc, nil
		}
		s.nextDoc++
	}
}

// nodeCols is the node-table row width: doc, id, parent, kind, tag, value
// and one order-key column.
const nodeCols = 7

// walker assigns ids and order keys during the pre-order traversal,
// accumulating one row per node for the bulk insert. Root id is always 1.
// Row values are carved out of one shared backing slice (vals), sized for the
// whole document up front.
type walker struct {
	s      *Shredder
	doc    int64
	nextID int64
	gpos   int64 // running global position (document order)
	rows   []sqltypes.Row
	vals   []sqltypes.Value
	// stack is the Dewey path of the node currently being visited, shared
	// across the walk (push before insert, pop after the subtree) so path
	// construction costs no allocation per node. pathBuf is the shared
	// backing for the encoded order-key blobs.
	stack   dewey.Path
	pathBuf []byte
}

func (w *walker) walk(n *xmltree.Node, parentID int64, ordinal uint32) error {
	if w.nextID == 0 {
		w.nextID = 1
	}
	id := w.nextID
	w.nextID++
	gap := int64(w.s.opts.EffectiveGap())
	w.gpos += gap

	var path dewey.Path
	isDewey := w.s.opts.Kind == encoding.Dewey
	if isDewey {
		w.stack = append(w.stack, ordinal*w.s.opts.EffectiveGap())
		path = w.stack
	}
	if err := w.insert(n, id, parentID, ordinal, path); err != nil {
		return err
	}
	// Attributes take the first sibling ordinals, then element/text children
	// continue the numbering — one consistent sibling order for every
	// encoding.
	ord := uint32(1)
	for _, a := range n.Attrs {
		if err := w.walk(a, id, ord); err != nil {
			return err
		}
		ord++
	}
	for _, c := range n.Children {
		if err := w.walk(c, id, ord); err != nil {
			return err
		}
		ord++
	}
	// Pop this node's path component. Error returns above skip the pop; an
	// error aborts the whole load, so the stack's state no longer matters.
	if isDewey {
		w.stack = w.stack[:len(w.stack)-1]
	}
	return nil
}

// insert buffers one node row in the node table's column order
// (doc, id, parent, kind, tag, value, <order key>).
func (w *walker) insert(n *xmltree.Node, id, parentID int64, ordinal uint32, path dewey.Path) error {
	parent := sqldb.Null()
	if parentID != 0 {
		parent = sqldb.I(parentID)
	}
	tag := sqldb.Null()
	if n.Kind != xmltree.Text {
		tag = sqldb.S(n.Tag)
	}
	value := sqldb.Null()
	if n.Kind != xmltree.Element {
		value = sqldb.S(n.Value)
	}
	var orderKey sqltypes.Value
	switch w.s.opts.Kind {
	case encoding.Global:
		orderKey = sqldb.I(w.gpos)
	case encoding.Local:
		orderKey = sqldb.I(int64(ordinal) * int64(w.s.opts.EffectiveGap()))
	case encoding.Dewey:
		if w.s.opts.DeweyAsText {
			orderKey = sqldb.S(path.PaddedString())
		} else {
			off := len(w.pathBuf)
			w.pathBuf = path.AppendBytes(w.pathBuf)
			orderKey = sqldb.B(w.pathBuf[off:len(w.pathBuf):len(w.pathBuf)])
		}
	default:
		panic(fmt.Sprintf("shred: unknown encoding kind %d", int(w.s.opts.Kind)))
	}
	start := len(w.vals)
	w.vals = append(w.vals,
		sqldb.I(w.doc), sqldb.I(id), parent,
		sqldb.S(n.Kind.String()), tag, value, orderKey,
	)
	w.rows = append(w.rows, sqltypes.Row(w.vals[start:len(w.vals):len(w.vals)]))
	return nil
}

// DocInfo describes one stored document.
type DocInfo struct {
	Doc   int64
	Name  string
	Root  int64
	Nodes int64
}

// Documents lists the stored documents (shared across encodings).
func Documents(db *sqldb.DB) ([]DocInfo, error) {
	res, err := db.Query(`SELECT doc, name, root, nodes FROM docs ORDER BY doc`)
	if err != nil {
		return nil, err
	}
	out := make([]DocInfo, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = DocInfo{Doc: r[0].Int(), Name: r[1].Text(), Root: r[2].Int(), Nodes: r[3].Int()}
	}
	return out, nil
}
