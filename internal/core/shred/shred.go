// Package shred loads XML documents into the relational encodings: it walks
// a document tree in document order, assigns surrogate ids and order keys
// (global position, sibling ordinal, or Dewey path — gap-adjusted), and
// inserts one row per node.
package shred

import (
	"fmt"
	"io"

	"ordxml/internal/core/dewey"
	"ordxml/internal/core/encoding"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/xmltree"
)

// Shredder loads documents into one encoding's tables.
type Shredder struct {
	db   *sqldb.DB
	opts encoding.Options

	insertNode *sqldb.Stmt
	insertDoc  *sqldb.Stmt
	maxDoc     *sqldb.Stmt
	deleteDoc  *sqldb.Stmt
	deleteReg  *sqldb.Stmt
}

// New prepares a shredder. The encoding's schema must already be installed.
func New(db *sqldb.DB, opts encoding.Options) (*Shredder, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !encoding.Installed(db, opts) {
		return nil, fmt.Errorf("encoding %s is not installed", opts.Kind)
	}
	tbl := opts.NodesTable()
	s := &Shredder{db: db, opts: opts}
	var err error
	if s.insertNode, err = db.Prepare(fmt.Sprintf(
		`INSERT INTO %s (doc, id, parent, kind, tag, value, %s) VALUES (?, ?, ?, ?, ?, ?, ?)`,
		tbl, opts.OrderColumn())); err != nil {
		return nil, err
	}
	if s.insertDoc, err = db.Prepare(`INSERT INTO docs (doc, name, root, nodes) VALUES (?, ?, ?, ?)`); err != nil {
		return nil, err
	}
	if s.maxDoc, err = db.Prepare(`SELECT MAX(doc) FROM docs`); err != nil {
		return nil, err
	}
	if s.deleteDoc, err = db.Prepare(fmt.Sprintf(`DELETE FROM %s WHERE doc = ?`, tbl)); err != nil {
		return nil, err
	}
	if s.deleteReg, err = db.Prepare(`DELETE FROM docs WHERE doc = ?`); err != nil {
		return nil, err
	}
	return s, nil
}

// Options returns the shredder's encoding options.
func (s *Shredder) Options() encoding.Options { return s.opts }

// Load parses XML from r and stores it under the given name, returning the
// new document id.
func (s *Shredder) Load(name string, r io.Reader) (int64, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return s.LoadTree(name, root)
}

// LoadTree stores an already-parsed document.
func (s *Shredder) LoadTree(name string, root *xmltree.Node) (int64, error) {
	docID, err := s.nextDocID()
	if err != nil {
		return 0, err
	}
	w := &walker{s: s, doc: docID}
	if err := w.walk(root, 0, nil, 1); err != nil {
		return 0, err
	}
	if _, err := s.insertDoc.Exec(sqldb.I(docID), sqldb.S(name), sqldb.I(1), sqldb.I(w.nextID-1)); err != nil {
		return 0, err
	}
	return docID, nil
}

// DropDocument removes a document and all its rows.
func (s *Shredder) DropDocument(docID int64) error {
	n, err := s.deleteDoc.Exec(sqldb.I(docID))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("document %d has no rows in %s", docID, s.opts.NodesTable())
	}
	if _, err := s.deleteReg.Exec(sqldb.I(docID)); err != nil {
		return err
	}
	return nil
}

func (s *Shredder) nextDocID() (int64, error) {
	res, err := s.maxDoc.Query()
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return 1, nil
	}
	return res.Rows[0][0].Int() + 1, nil
}

// walker assigns ids and order keys during the pre-order traversal. Root id
// is always 1.
type walker struct {
	s      *Shredder
	doc    int64
	nextID int64
	gpos   int64 // running global position (document order)
}

func (w *walker) walk(n *xmltree.Node, parentID int64, parentPath dewey.Path, ordinal uint32) error {
	if w.nextID == 0 {
		w.nextID = 1
	}
	id := w.nextID
	w.nextID++
	gap := int64(w.s.opts.EffectiveGap())
	w.gpos += gap

	var path dewey.Path
	if w.s.opts.Kind == encoding.Dewey {
		spaced := ordinal * w.s.opts.EffectiveGap()
		if parentPath == nil {
			path = dewey.Path{spaced}
		} else {
			path = parentPath.Child(spaced)
		}
	}
	if err := w.insert(n, id, parentID, ordinal, path); err != nil {
		return err
	}
	// Attributes take the first sibling ordinals, then element/text children
	// continue the numbering — one consistent sibling order for every
	// encoding.
	ord := uint32(1)
	for _, a := range n.Attrs {
		if err := w.walk(a, id, path, ord); err != nil {
			return err
		}
		ord++
	}
	for _, c := range n.Children {
		if err := w.walk(c, id, path, ord); err != nil {
			return err
		}
		ord++
	}
	return nil
}

// insert writes one node row.
func (w *walker) insert(n *xmltree.Node, id, parentID int64, ordinal uint32, path dewey.Path) error {
	parent := sqldb.Null()
	if parentID != 0 {
		parent = sqldb.I(parentID)
	}
	tag := sqldb.Null()
	if n.Kind != xmltree.Text {
		tag = sqldb.S(n.Tag)
	}
	value := sqldb.Null()
	if n.Kind != xmltree.Element {
		value = sqldb.S(n.Value)
	}
	var orderKey sqltypes.Value
	switch w.s.opts.Kind {
	case encoding.Global:
		orderKey = sqldb.I(w.gpos)
	case encoding.Local:
		orderKey = sqldb.I(int64(ordinal) * int64(w.s.opts.EffectiveGap()))
	default:
		if w.s.opts.DeweyAsText {
			orderKey = sqldb.S(path.PaddedString())
		} else {
			orderKey = sqldb.B(path.Bytes())
		}
	}
	_, err := w.s.insertNode.Exec(
		sqldb.I(w.doc), sqldb.I(id), parent,
		sqldb.S(n.Kind.String()), tag, value, orderKey)
	return err
}

// DocInfo describes one stored document.
type DocInfo struct {
	Doc   int64
	Name  string
	Root  int64
	Nodes int64
}

// Documents lists the stored documents (shared across encodings).
func Documents(db *sqldb.DB) ([]DocInfo, error) {
	res, err := db.Query(`SELECT doc, name, root, nodes FROM docs ORDER BY doc`)
	if err != nil {
		return nil, err
	}
	out := make([]DocInfo, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = DocInfo{Doc: r[0].Int(), Name: r[1].Text(), Root: r[2].Int(), Nodes: r[3].Int()}
	}
	return out, nil
}
