package shred

import (
	"strings"
	"testing"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/publish"
	"ordxml/internal/sqldb"
	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

// allOptions is every encoding configuration exercised by the round-trip
// suites: the three encodings, gap variants, and string Dewey.
func allOptions() []encoding.Options {
	return []encoding.Options{
		{Kind: encoding.Global},
		{Kind: encoding.Local},
		{Kind: encoding.Dewey},
		{Kind: encoding.Global, Gap: 16},
		{Kind: encoding.Local, Gap: 16},
		{Kind: encoding.Dewey, Gap: 16},
		{Kind: encoding.Dewey, DeweyAsText: true},
	}
}

func newStore(t *testing.T, opts encoding.Options) (*sqldb.DB, *Shredder, *publish.Publisher) {
	t.Helper()
	db := sqldb.Open()
	if err := encoding.Install(db, opts); err != nil {
		t.Fatal(err)
	}
	s, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := publish.New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, s, p
}

func TestRoundTripAllEncodings(t *testing.T) {
	doc := xmlgen.Catalog(xmlgen.CatalogConfig{
		Regions: 2, ItemsPerRegion: 5, KeywordsPerItem: 2, DescriptionWords: 4, Seed: 3})
	for _, opts := range allOptions() {
		t.Run(optName(opts), func(t *testing.T) {
			db, s, p := newStore(t, opts)
			id, err := s.LoadTree("cat", doc)
			if err != nil {
				t.Fatal(err)
			}
			if id != 1 {
				t.Errorf("first doc id = %d", id)
			}
			back, err := p.Document(id)
			if err != nil {
				t.Fatal(err)
			}
			if !xmltree.Equal(doc, back) {
				t.Fatalf("round trip mismatch:\nwant %s\ngot  %s",
					trunc(doc.String()), trunc(back.String()))
			}
			// Row count matches tree size.
			res, err := db.Query("SELECT nodes FROM docs WHERE doc = ?", sqldb.I(id))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Rows[0][0].Int(); got != int64(doc.Size()) {
				t.Errorf("docs.nodes = %d, tree size = %d", got, doc.Size())
			}
		})
	}
}

func optName(o encoding.Options) string {
	name := o.Kind.String()
	if o.Gap > 1 {
		name += "_gap"
	}
	if o.DeweyAsText {
		name += "_text"
	}
	return name
}

func trunc(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

func TestRoundTripRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		doc := xmlgen.Random(xmlgen.DefaultRandom(seed))
		for _, opts := range allOptions() {
			_, s, p := newStore(t, opts)
			id, err := s.LoadTree("r", doc)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, optName(opts), err)
			}
			back, err := p.Document(id)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, optName(opts), err)
			}
			if !xmltree.Equal(doc, back) {
				t.Fatalf("seed %d %s: round trip mismatch", seed, optName(opts))
			}
		}
	}
}

func TestSubtreePublish(t *testing.T) {
	doc := xmlgen.Play(xmlgen.PlayConfig{Acts: 2, ScenesPerAct: 2, SpeechesPerScene: 2, LinesPerSpeech: 2, Seed: 1})
	for _, opts := range allOptions() {
		t.Run(optName(opts), func(t *testing.T) {
			db, s, p := newStore(t, opts)
			id, err := s.LoadTree("play", doc)
			if err != nil {
				t.Fatal(err)
			}
			// Find the id of the first ACT via SQL.
			res, err := db.Query(
				"SELECT id FROM "+opts.NodesTable()+" WHERE doc = ? AND tag = 'ACT' ORDER BY id LIMIT 1",
				sqldb.I(id))
			if err != nil {
				t.Fatal(err)
			}
			actID := res.Rows[0][0].Int()
			sub, err := p.Subtree(id, actID)
			if err != nil {
				t.Fatal(err)
			}
			// First ACT subtree equals the corresponding in-memory subtree.
			var wantAct *xmltree.Node
			for _, c := range doc.Children {
				if c.Tag == "ACT" {
					wantAct = c
					break
				}
			}
			if !xmltree.Equal(wantAct, sub) {
				t.Fatalf("subtree mismatch:\nwant %s\ngot  %s", trunc(wantAct.String()), trunc(sub.String()))
			}
			// Whole document as subtree of the root.
			whole, err := p.Subtree(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !xmltree.Equal(doc, whole) {
				t.Fatal("root subtree differs from document")
			}
		})
	}
}

func TestMultipleDocuments(t *testing.T) {
	opts := encoding.Options{Kind: encoding.Dewey}
	_, s, p := newStore(t, opts)
	d1 := xmlgen.Random(xmlgen.DefaultRandom(1))
	d2 := xmlgen.Random(xmlgen.DefaultRandom(2))
	id1, err := s.LoadTree("one", d1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.LoadTree("two", d2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate doc ids")
	}
	b1, err := p.Document(id1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Document(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(d1, b1) || !xmltree.Equal(d2, b2) {
		t.Fatal("documents interfered")
	}
	docs, err := Documents(s.db)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Name != "one" || docs[1].Name != "two" {
		t.Fatalf("Documents = %+v", docs)
	}
}

func TestDropDocument(t *testing.T) {
	opts := encoding.Options{Kind: encoding.Global}
	db, s, _ := newStore(t, opts)
	id, err := s.LoadTree("d", xmlgen.Random(xmlgen.DefaultRandom(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DropDocument(id); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*) FROM xg_nodes WHERE doc = ?", sqldb.I(id))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Error("rows remain after drop")
	}
	if err := s.DropDocument(id); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestLoadFromReader(t *testing.T) {
	opts := encoding.Options{Kind: encoding.Local}
	_, s, p := newStore(t, opts)
	id, err := s.Load("r", strings.NewReader(`<a x="1"><b>hi</b><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Document(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != `<a x="1"><b>hi</b><c/></a>` {
		t.Errorf("round trip = %s", back.String())
	}
	if _, err := s.Load("bad", strings.NewReader("<a>")); err == nil {
		t.Error("malformed XML loaded")
	}
}

func TestShredderErrors(t *testing.T) {
	db := sqldb.Open()
	if _, err := New(db, encoding.Options{Kind: encoding.Dewey}); err == nil {
		t.Error("shredder created without installed schema")
	}
	if _, err := New(db, encoding.Options{Kind: 99}); err == nil {
		t.Error("invalid options accepted")
	}
	if _, err := publish.New(db, encoding.Options{Kind: encoding.Dewey}); err == nil {
		t.Error("publisher created without installed schema")
	}
}

func TestGapValuesStored(t *testing.T) {
	opts := encoding.Options{Kind: encoding.Local, Gap: 10}
	db, s, _ := newStore(t, opts)
	id, err := s.Load("g", strings.NewReader(`<a><b/><c/><d/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT lorder FROM xl_nodes WHERE doc = ? AND parent = 1 ORDER BY lorder", sqldb.I(id))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	for i, r := range res.Rows {
		if r[0].Int() != want[i] {
			t.Errorf("lorder[%d] = %d, want %d", i, r[0].Int(), want[i])
		}
	}
}

func TestEdgeDocuments(t *testing.T) {
	cases := []string{
		`<only/>`,
		`<a x="1" y="2" z="3"/>`, // attribute-only
		`<a>just text</a>`,       // text-only child
		`<a><b><c><d><e><f><g>deep</g></f></e></d></c></b></a>`, // narrow and deep
	}
	for _, xml := range cases {
		for _, opts := range allOptions() {
			_, s, p := newStore(t, opts)
			id, err := s.Load("e", strings.NewReader(xml))
			if err != nil {
				t.Fatalf("%s %q: %v", optName(opts), xml, err)
			}
			back, err := p.Document(id)
			if err != nil {
				t.Fatalf("%s %q: %v", optName(opts), xml, err)
			}
			if back.String() != xml {
				t.Errorf("%s: %q -> %q", optName(opts), xml, back.String())
			}
		}
	}
}

func TestVeryDeepNesting(t *testing.T) {
	// 300 levels deep: exercises long Dewey paths (multi-byte keys) and deep
	// recursion in local/global reconstruction.
	depth := 300
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("bottom")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	xml := sb.String()
	for _, opts := range []encoding.Options{
		{Kind: encoding.Global}, {Kind: encoding.Local},
		{Kind: encoding.Dewey}, {Kind: encoding.Dewey, Gap: 64},
		{Kind: encoding.Dewey, DeweyAsText: true},
	} {
		_, s, p := newStore(t, opts)
		id, err := s.Load("deep", strings.NewReader(xml))
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		back, err := p.Document(id)
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if back.String() != xml {
			t.Errorf("%s: deep round trip mismatch", optName(opts))
		}
	}
}

func TestWideFanout(t *testing.T) {
	// 5000 siblings: exercises multi-byte Dewey components (ordinals beyond
	// the 1-byte range) and big sibling groups.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("<c/>")
	}
	sb.WriteString("</r>")
	xml := sb.String()
	for _, opts := range []encoding.Options{
		{Kind: encoding.Dewey}, {Kind: encoding.Dewey, Gap: 64}, {Kind: encoding.Local},
	} {
		_, s, p := newStore(t, opts)
		id, err := s.Load("wide", strings.NewReader(xml))
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		back, err := p.Document(id)
		if err != nil {
			t.Fatalf("%s: %v", optName(opts), err)
		}
		if len(back.Children) != 5000 {
			t.Errorf("%s: %d children", optName(opts), len(back.Children))
		}
	}
}

// TestNextDocIDNoFullScan is the regression test for the doc-id high-water
// mark: after the first load seeds it, later loads must not scan any table
// to find the next free document id (the old implementation ran a full-table
// SELECT MAX(doc) per load).
func TestNextDocIDNoFullScan(t *testing.T) {
	db, s, _ := newStore(t, encoding.Options{Kind: encoding.Global})
	doc := xmlgen.Catalog(xmlgen.CatalogConfig{
		Regions: 2, ItemsPerRegion: 3, KeywordsPerItem: 1, DescriptionWords: 3, Seed: 1})
	if _, err := s.LoadTree("first", doc); err != nil {
		t.Fatal(err)
	}
	before := db.Counters()
	for i := 0; i < 5; i++ {
		if _, err := s.LoadTree("more", doc); err != nil {
			t.Fatal(err)
		}
	}
	delta := db.Counters().Sub(before)
	if delta.RowsScanned != 0 {
		t.Fatalf("loads after the first scanned %d rows, want 0", delta.RowsScanned)
	}
}

// TestNextDocIDSharedDocsTable: two shredders over one database share the
// docs registry; the cached high-water mark must not hand out an id the
// other shredder already took.
func TestNextDocIDSharedDocsTable(t *testing.T) {
	db := sqldb.Open()
	for _, opts := range []encoding.Options{{Kind: encoding.Global}, {Kind: encoding.Local}} {
		if err := encoding.Install(db, opts); err != nil {
			t.Fatal(err)
		}
	}
	sg, err := New(db, encoding.Options{Kind: encoding.Global})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := New(db, encoding.Options{Kind: encoding.Local})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmlgen.Catalog(xmlgen.CatalogConfig{
		Regions: 1, ItemsPerRegion: 2, KeywordsPerItem: 1, DescriptionWords: 2, Seed: 2})
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		for _, sh := range []*Shredder{sg, sl} {
			id, err := sh.LoadTree("d", doc)
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("doc id %d handed out twice", id)
			}
			seen[id] = true
		}
	}
	// Dropping and reloading must also not reuse a live id.
	if err := sg.DropDocument(1); err != nil {
		t.Fatal(err)
	}
	id, err := sg.LoadTree("again", doc)
	if err != nil {
		t.Fatal(err)
	}
	if seen[id] && id != 1 {
		t.Fatalf("reload returned live id %d", id)
	}
}
