package atomicmix_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/atomicmix"
)

// TestAtomicMix runs the analyzer over a package mixing raw sync/atomic
// calls with plain accesses: the plain reads and writes of marked locations
// are flagged; atomic argument positions, composite-literal keys, typed
// atomics and unmarked fields are not.
func TestAtomicMix(t *testing.T) {
	framework.RunTest(t, atomicmix.Analyzer, "testdata/src/a")
}
