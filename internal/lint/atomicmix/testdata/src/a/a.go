// Package a exercises atomicmix: fields and package variables touched by
// raw sync/atomic calls must never be accessed plainly; typed atomics and
// untouched fields are out of scope.
package a

import "sync/atomic"

type Counter struct {
	n    uint64
	safe atomic.Uint64
	gen  int
}

var hits uint64

func Inc(c *Counter) {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&hits, 1)
	c.safe.Add(1)
}

func Read(c *Counter) uint64 {
	return atomic.LoadUint64(&c.n) + atomic.LoadUint64(&hits)
}

// Racy mixes plain accesses into locations the functions above treat as
// atomic: every one is a data race against Inc/Read.
func Racy(c *Counter) uint64 {
	c.n = 0 // want `mixed atomic and plain access: n is accessed with sync/atomic elsewhere`
	v := c.n + hits // want `mixed atomic and plain access: n is accessed with sync/atomic elsewhere` `mixed atomic and plain access: hits is accessed with sync/atomic elsewhere`
	return v
}

// Fresh constructs a Counter: a composite-literal key is the field name,
// not an access.
func Fresh() *Counter {
	return &Counter{gen: 1}
}

// Calm touches only unmarked locations: the typed atomic cannot be accessed
// plainly at all, and gen is never accessed atomically.
func Calm(c *Counter) {
	c.gen++
	c.safe.Store(0)
}
