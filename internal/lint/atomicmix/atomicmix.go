// Package atomicmix implements the atomic-access consistency analyzer: a
// variable or struct field that is ever accessed through the sync/atomic
// package-level functions (atomic.AddUint64(&x.n, 1) and friends) must be
// accessed that way everywhere. A single plain read or write of such a
// location races with the atomic accessors — the compiler and CPU are free
// to tear, cache or reorder the plain access — and the race detector only
// catches it on the schedules the tests happen to run.
//
// The analysis is program-wide and two-phase: first every address-taking
// argument to a sync/atomic function is collected, marking the underlying
// package-level variable or struct-field object as atomic; then every other
// use of a marked object is reported. Appearing as the &-argument of a
// sync/atomic call is sanctioned; appearing as a composite-literal field key
// is declaration, not access; everything else — plain reads, plain writes,
// and taking the address for a non-atomic callee — is flagged.
//
// The typed atomics (atomic.Int64, atomic.Pointer[T], ...) need no analyzer:
// their representation is unexported, so plain access does not compile. The
// engine uses typed atomics exclusively; this analyzer keeps the raw-call
// style from creeping in half-converted, the state in which one forgotten
// plain access looks exactly like working code.
package atomicmix

import (
	"go/ast"
	"go/types"

	"ordxml/internal/lint/framework"
)

// Analyzer is the atomic/plain access consistency pass.
var Analyzer = &framework.Analyzer{
	Name:       "atomicmix",
	Doc:        "locations accessed via sync/atomic functions must never be read or written plainly",
	RunProgram: run,
}

func run(pass *framework.ProgramPass) error {
	prog := pass.Prog

	// Phase 1: collect the atomic objects and the sanctioned expression
	// nodes (the operands of & in sync/atomic argument position).
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[ast.Expr]bool{}
	forEachFile(prog, func(pkg *framework.Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				target := ast.Unparen(un.X)
				if obj := addressableObject(pkg.Info, target); obj != nil {
					atomicObjs[obj] = true
					sanctioned[target] = true
				}
			}
			return true
		})
	})
	if len(atomicObjs) == 0 {
		return nil
	}

	// Phase 2: flag every unsanctioned use. Composite-literal keys are
	// field names, not accesses.
	forEachFile(prog, func(pkg *framework.Package, file *ast.File) {
		litKeys := map[ast.Expr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						litKeys[kv.Key] = true
					}
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			var obj types.Object
			var expr ast.Expr
			switch x := n.(type) {
			case *ast.SelectorExpr:
				obj = pkg.Info.ObjectOf(x.Sel)
				expr = x
			case *ast.Ident:
				obj = pkg.Info.Uses[x]
				expr = x
			default:
				return true
			}
			if obj == nil || !atomicObjs[obj] || sanctioned[expr] || litKeys[expr] {
				return true
			}
			// A selector's leaf ident is visited again on its own; the
			// selector node already reported it.
			if id, ok := expr.(*ast.Ident); ok {
				if sanctionedLeaf(sanctioned, id) {
					return true
				}
			}
			pass.Reportf(expr.Pos(),
				"mixed atomic and plain access: %s is accessed with sync/atomic elsewhere; this plain access races with it (use the atomic API consistently, or a mutex)",
				obj.Name())
			return false // don't re-report the selector's own ident
		})
	})
	return nil
}

// sanctionedLeaf reports whether id is the field ident of a sanctioned
// selector (x.Sel of some sanctioned SelectorExpr): Inspect visits it as a
// separate node and it must not be double-counted.
func sanctionedLeaf(sanctioned map[ast.Expr]bool, id *ast.Ident) bool {
	for e := range sanctioned {
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel == id {
			return true
		}
	}
	return false
}

func forEachFile(prog *framework.Program, f func(*framework.Package, *ast.File)) {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			f(pkg, file)
		}
	}
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (the raw Add/Load/Store/Swap/CompareAndSwap family; typed
// atomic methods are safe by construction and ignored).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	callee := framework.StaticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressableObject resolves the &-operand to the object the analyzer
// tracks: a struct field (through a selector) or a package-level variable.
// Locals are skipped — an atomic local is pointless but races with nothing
// beyond what escape analysis already shares.
func addressableObject(info *types.Info, target ast.Expr) types.Object {
	switch x := target.(type) {
	case *ast.SelectorExpr:
		if obj := info.ObjectOf(x.Sel); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return obj
			}
		}
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj
			}
		}
	}
	return nil
}
