// Package a exercises the rawsql analyzer: SQL text assembled with
// fmt.Sprintf or concatenation outside the blessed SQL-generation packages.
package a

import "fmt"

func exec(sql string, args ...any) {}

func sprintfSQL(tbl string) {
	q := fmt.Sprintf("SELECT id FROM %s WHERE doc = ?", tbl) // want `built with fmt.Sprintf`
	exec(q, 1)
}

func sprintSQL(tbl string) {
	q := fmt.Sprint("DELETE FROM ", tbl, " WHERE id = ?") // want `built with fmt.Sprint`
	exec(q, 1)
}

func concatSQL(tbl string) {
	q := "SELECT id FROM " + tbl // want `built by string concatenation`
	exec(q)
}

func augmentedSQL(cond bool) {
	q := ""
	q += "SELECT id FROM docs" // want `built by \+= concatenation`
	if cond {
		q += " WHERE id = ?"
	}
	exec(q)
}

// constSQL splits a constant statement across literals: no construction, not
// flagged.
func constSQL() {
	const q = "SELECT id, parent " +
		"FROM xg_nodes WHERE doc = ?"
	exec(q, 1)
}

// errorfSQL quotes SQL in an error message; fmt.Errorf is exempt.
func errorfSQL(tbl string) error {
	return fmt.Errorf("statement %q failed on SELECT count(*) FROM %s", "q", tbl)
}

// plainSprintf formats non-SQL text; not flagged.
func plainSprintf(n int) string {
	return fmt.Sprintf("node %d selected for update", n)
}
