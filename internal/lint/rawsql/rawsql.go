// Package rawsql implements the raw-SQL-construction analyzer: SQL statement
// text may not be assembled with fmt.Sprintf-style formatting or string
// concatenation outside the designated SQL-generation packages.
//
// The engine binds all values through `?` placeholders, so the classic
// injection vector is identifier interpolation — table and order-key column
// names vary per encoding and are spliced into statement text. Uncontrolled
// splicing is both injection-shaped (a hostile identifier breaks out of the
// statement) and cache-hostile (value splicing would make every statement
// text unique, defeating the plan cache keyed by SQL text). All construction
// must therefore go through the audited helpers: internal/sqlgen (which
// validates every interpolated identifier), or live inside the two packages
// whose whole job is SQL generation — internal/core/translate and
// internal/sqldb/sqlparse.
package rawsql

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"ordxml/internal/lint/framework"
)

// Analyzer is the raw-SQL-construction pass.
var Analyzer = &framework.Analyzer{
	Name: "rawsql",
	Doc: "SQL text must not be built with fmt.Sprintf or string concatenation " +
		"outside the designated SQL-generation packages (use internal/sqlgen)",
	Run: run,
}

// blessedSuffixes are import-path suffixes of packages allowed to assemble
// SQL text directly.
var blessedSuffixes = []string{
	"internal/core/translate",
	"internal/sqldb/sqlparse",
	"internal/sqlgen",
}

// sqlShaped matches string literals that begin like a SQL statement (or a
// statement fragment that only makes sense spliced into one).
var sqlShaped = regexp.MustCompile(`(?is)^\s*(select\s|insert\s+into\s|update\s+\S+\s+set\s|delete\s+from\s|create\s+(unique\s+)?(table|index)\s|drop\s+(table|index)\s|explain\s)`)

// sprintfFamily are the fmt functions whose use on SQL-shaped literals is
// flagged. fmt.Errorf is deliberately absent: error messages legitimately
// quote SQL.
var sprintfFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func run(pass *framework.Pass) error {
	if pkgBlessed(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, e)
			case *ast.BinaryExpr:
				checkConcat(pass, e)
			case *ast.AssignStmt:
				checkAugmented(pass, e)
			}
			return true
		})
	}
	return nil
}

func pkgBlessed(path string) bool {
	for _, s := range blessedSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// checkCall flags fmt.Sprintf-family calls whose arguments include a
// SQL-shaped string literal.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sprintfFamily[sel.Sel.Name] {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok || pkgID.Name != "fmt" {
		return
	}
	for _, arg := range call.Args {
		if lit, text := sqlLiteral(arg); lit != nil {
			pass.Reportf(call.Pos(),
				"SQL text %q built with fmt.%s outside a SQL-generation package; use sqlgen.SQL with validated identifiers",
				truncate(text), sel.Sel.Name)
			return
		}
	}
}

// checkConcat flags `+` concatenation where either operand is a SQL-shaped
// literal. Only the outermost `+` of a chain reports, anchored at the
// literal.
func checkConcat(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	for _, operand := range []ast.Expr{be.X, be.Y} {
		// Literal-only chains (const SQL split over lines) are fine: flag
		// only when the other side is non-literal (actual construction).
		lit, text := sqlLiteral(operand)
		if lit == nil {
			continue
		}
		other := be.Y
		if operand == be.Y {
			other = be.X
		}
		if allLiterals(other) {
			continue
		}
		pass.Reportf(lit.Pos(),
			"SQL text %q built by string concatenation outside a SQL-generation package; use sqlgen.SQL with validated identifiers",
			truncate(text))
	}
}

// checkAugmented flags `s += "SELECT ..."` style construction.
func checkAugmented(pass *framework.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ADD_ASSIGN {
		return
	}
	for _, rhs := range as.Rhs {
		if lit, text := sqlLiteral(rhs); lit != nil {
			pass.Reportf(lit.Pos(),
				"SQL text %q built by += concatenation outside a SQL-generation package; use sqlgen.SQL with validated identifiers",
				truncate(text))
		}
	}
}

// sqlLiteral returns the basic literal and its decoded text when e is a
// SQL-shaped string literal.
func sqlLiteral(e ast.Expr) (*ast.BasicLit, string) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil, ""
	}
	text, err := strconv.Unquote(lit.Value)
	if err != nil || !sqlShaped.MatchString(text) {
		return nil, ""
	}
	return lit, text
}

// allLiterals reports whether e is built purely from string literals
// (possibly concatenated), i.e. a compile-time constant SQL string.
func allLiterals(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.STRING
	case *ast.BinaryExpr:
		return v.Op == token.ADD && allLiterals(v.X) && allLiterals(v.Y)
	case *ast.ParenExpr:
		return allLiterals(v.X)
	}
	return false
}

func truncate(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 32 {
		return s[:29] + "..."
	}
	return s
}
