package rawsql_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/rawsql"
)

func TestRawSQL(t *testing.T) {
	framework.RunTest(t, rawsql.Analyzer, "testdata/src/a")
}
