package wraperr_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/wraperr"
)

func TestWrapErr(t *testing.T) {
	framework.RunTest(t, wraperr.Analyzer, "testdata/src/a")
}
