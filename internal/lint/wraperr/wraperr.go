// Package wraperr implements the error-wrapping analyzer: an error value
// formatted into a new error with fmt.Errorf must use the %w verb, not %v or
// %s, so the cause survives for errors.Is / errors.As across package
// boundaries.
//
// A %v-swallowed cause looks identical in the log line but severs the chain:
// callers can no longer match sentinel errors (sql driver errors, io.EOF,
// catalog constraint sentinels) through the wrapper, so error-branching code
// silently degrades to string matching. The analyzer parses the format
// string, maps each verb to its argument, and flags any error-typed argument
// consumed by a %v/%s (including flagged forms like %+v) instead of %w.
package wraperr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"ordxml/internal/lint/framework"
)

// Analyzer is the error-wrapping pass.
var Analyzer = &framework.Analyzer{
	Name: "wraperr",
	Doc:  "errors formatted into fmt.Errorf must use %w (not %v/%s) so the cause chain survives",
	Run:  run,
}

func run(pass *framework.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorf(pass, call, errType)
			return true
		})
	}
	return nil
}

func checkErrorf(pass *framework.Pass, call *ast.CallExpr, errType *types.Interface) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok || pkgID.Name != "fmt" {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		if v.argIndex >= len(args) {
			continue
		}
		arg := args[v.argIndex]
		t := pass.TypeOf(arg)
		if t == nil || !types.Implements(t, errType) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error formatted with %%%c loses the cause chain: use %%w (or a sentinel) so errors.Is/As keep working",
			v.verb)
	}
}

// verb is one conversion in a format string, mapped to the index of the
// argument it consumes (after any * width/precision arguments).
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs walks a Printf-style format string and returns each conversion
// verb with the index of its operand. It handles %%, flags, * width and
// precision (each consuming an argument), and explicit argument indexes
// like %[1]v.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// flags
		for i < len(runes) && (runes[i] == '+' || runes[i] == '-' || runes[i] == '#' || runes[i] == ' ' || runes[i] == '0') {
			i++
		}
		// width
		for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
			i++
		}
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		}
		// precision
		if i < len(runes) && runes[i] == '.' {
			i++
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			}
		}
		// explicit argument index: %[n]v
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verb{verb: runes[i], argIndex: arg})
		arg++
	}
	return out
}
