// Package a exercises the wraperr analyzer.
package a

import (
	"errors"
	"fmt"
)

var sentinel = errors.New("sentinel")

func swallowedV(err error) error {
	return fmt.Errorf("load document: %v", err) // want `error formatted with %v loses the cause chain`
}

func swallowedS(err error) error {
	return fmt.Errorf("load document: %s", err) // want `error formatted with %s loses the cause chain`
}

func swallowedPlusV(err error) error {
	return fmt.Errorf("load document: %+v", err) // want `error formatted with %v loses the cause chain`
}

func wrapped(err error) error {
	return fmt.Errorf("load document: %w", err)
}

func positional(n int, err error) error {
	return fmt.Errorf("shred %d nodes: %v", n, err) // want `error formatted with %v loses the cause chain`
}

func positionalWrapped(n int, err error) error {
	return fmt.Errorf("shred %d nodes: %w", n, err)
}

func notAnError(name string) error {
	return fmt.Errorf("unknown table %v", name)
}

func indexed(err error) error {
	return fmt.Errorf("retry: %[1]v after %[1]v", err) // want `error formatted with %v` `error formatted with %v`
}

func customError() error {
	return fmt.Errorf("codec: %v", &codecError{}) // want `error formatted with %v loses the cause chain`
}

type codecError struct{}

func (*codecError) Error() string { return "codec" }
