// Package pinpair implements the pin-pair analyzer: every buffer-pool frame
// pinned — by Pool.Fetch, Pool.Alloc, or Frame.Pin — must be unpinned, via
// `defer fr.Unpin()` or an `fr.Unpin()` call on every path out of the block
// that owns the pin.
//
// A leaked pin is silent until it isn't: pinned frames are ineligible for
// eviction, so a missing Unpin slowly wedges a small pool until every frame
// is pinned and the clock sweep overshoots capacity for every new fault. The
// analyzer recognizes frames structurally (a named type `Frame` declared in
// a package named `bufpool`) and runs the same conservative path walk as
// spanfinish:
//
//   - a deferred Unpin anywhere in the function discharges the pin;
//   - otherwise every return statement — and the fall-through exit of the
//     statement list that owns the pin — must be preceded by an Unpin;
//   - a frame that escapes as a value (passed to a call, returned, stored,
//     captured) is assumed to be unpinned by its new owner and is not
//     flagged — but method calls on the frame itself (Bytes, MarkDirty, ID)
//     are ordinary use, not escapes;
//   - a pinned frame that is immediately discarded is always flagged.
package pinpair

import (
	"go/ast"
	"go/types"
	"strings"

	"ordxml/internal/lint/framework"
)

// Analyzer is the pin-pair pass.
var Analyzer = &framework.Analyzer{
	Name: "pinpair",
	Doc:  "every buffer-pool pin (Fetch/Alloc/Pin) must be released on all paths (defer fr.Unpin() or Unpin before every exit)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// isFrameType reports whether t is (a pointer to) a named type Frame
// declared in a package named bufpool.
func isFrameType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Frame" && obj.Pkg() != nil && obj.Pkg().Name() == "bufpool"
}

// isPinProducer reports whether call pins a frame and yields it as (part of)
// its result: Fetch returning *Frame, or Alloc returning (*Frame, error).
func isPinProducer(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Fetch" && sel.Sel.Name != "Alloc") {
		return false
	}
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		return t.Len() > 0 && isFrameType(t.At(0).Type())
	case types.Type:
		return isFrameType(t)
	}
	return false
}

// pinReceiver returns the identifier of the frame being pinned when call is
// `fr.Pin()` on an identifier of frame type, else nil.
func pinReceiver(pass *framework.Pass, call *ast.CallExpr) *ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Pin" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	t := pass.TypeOf(sel.X)
	if t == nil || !isFrameType(t) {
		return nil
	}
	return id
}

// checkFunc analyzes one function body. Nested function literals are walked
// separately by run; identifiers inside them count as escapes for outer
// frames.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	type pinDef struct {
		obj    types.Object
		errObj types.Object // error assigned alongside the frame (Alloc), or nil
		pos    ast.Node
		owner  []ast.Stmt // statement list containing the pin
		index  int        // position of the pin within owner
	}
	var defs []pinDef
	var walkList func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isPinProducer(pass, call) {
					// fr := pool.Fetch(id) or fr, err := pool.Alloc().
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.ObjectOf(id); obj != nil {
							d := pinDef{obj: obj, pos: call, owner: list, index: i}
							if len(as.Lhs) == 2 {
								if errID, ok := as.Lhs[1].(*ast.Ident); ok {
									d.errObj = pass.ObjectOf(errID)
								}
							}
							defs = append(defs, d)
						}
						continue
					}
					pass.Reportf(call.Pos(), "pinned frame discarded: assign it and call Unpin, or drop the call")
					continue
				}
				// b := fr.Pin(): the pin obligation lands on the receiver.
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					if id := pinReceiver(pass, call); id != nil {
						if obj := pass.ObjectOf(id); obj != nil {
							defs = append(defs, pinDef{obj: obj, pos: call, owner: list, index: i})
						}
						continue
					}
				}
			}
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if isPinProducer(pass, call) {
						pass.Reportf(call.Pos(), "pinned frame discarded: assign it and call Unpin, or drop the call")
						continue
					}
					if id := pinReceiver(pass, call); id != nil {
						if obj := pass.ObjectOf(id); obj != nil {
							defs = append(defs, pinDef{obj: obj, pos: call, owner: list, index: i})
						}
						continue
					}
				}
			}
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkList(st.List)
		case *ast.IfStmt:
			walkList(st.Body.List)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *ast.ForStmt:
			walkList(st.Body.List)
		case *ast.RangeStmt:
			walkList(st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt)
		}
	}
	walkList(body.List)

	for _, d := range defs {
		if hasDeferredUnpin(pass, body, d.obj) {
			continue
		}
		if escapes(pass, body, d.obj) {
			continue
		}
		w := &walker{pass: pass, obj: d.obj, errObj: d.errObj}
		ended, terminated := w.walkList(d.owner[d.index+1:], false)
		if w.violated || (!ended && !terminated) {
			pass.Reportf(d.pos.Pos(),
				"frame %s is pinned but not unpinned on all paths: defer %s.Unpin() or call Unpin before every exit",
				d.obj.Name(), d.obj.Name())
		}
	}
}

// isUnpinCall reports whether e is obj.Unpin().
func isUnpinCall(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unpin" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// hasDeferredUnpin reports whether the function defers obj.Unpin(), directly
// or through a deferred closure that calls it.
func hasDeferredUnpin(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isUnpinCall(pass, ds.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isUnpinCall(pass, e, obj) {
					found = true
					return false
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// escapes reports whether obj is used as a value — passed as an argument,
// returned, stored into a struct or slice, reassigned, captured — anywhere
// in the function. Method calls with obj as the receiver (fr.Bytes(),
// fr.MarkDirty(), fr.Unpin(), ...) are ordinary use of a pinned frame, not
// escapes. An escaped frame's pin is assumed to be released by its new
// owner.
func escapes(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	benign := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			benign[id] = true
		}
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj || benign[id] {
			return true
		}
		if pass.TypesInfo != nil && pass.TypesInfo.Defs[id] == obj {
			return true // the definition itself
		}
		escaped = true
		return false
	})
	return escaped
}

// walker performs the conservative all-paths-unpin analysis for one pin.
type walker struct {
	pass     *framework.Pass
	obj      types.Object
	errObj   types.Object
	violated bool
}

// isErrGuard reports whether cond is `err != nil` for the error produced
// alongside the frame: on that path the pin was never taken, so a bare
// return is fine.
func (w *walker) isErrGuard(cond ast.Expr) bool {
	if w.errObj == nil {
		return false
	}
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	id, ok := bin.X.(*ast.Ident)
	if !ok || w.pass.ObjectOf(id) != w.errObj {
		return false
	}
	nilID, ok := bin.Y.(*ast.Ident)
	return ok && nilID.Name == "nil"
}

// walkList walks a statement list with the given entry state and returns
// whether the pin is definitely released at the fall-through exit, and
// whether control cannot fall through (all paths returned or panicked).
func (w *walker) walkList(list []ast.Stmt, ended bool) (bool, bool) {
	terminated := false
	for _, s := range list {
		if terminated {
			break // unreachable
		}
		ended, terminated = w.walkStmt(s, ended)
	}
	return ended, terminated
}

func (w *walker) walkStmt(s ast.Stmt, ended bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if isUnpinCall(w.pass, st.X, w.obj) {
			return true, false
		}
		if isTerminalCall(st.X) {
			return ended, true
		}
	case *ast.DeferStmt:
		if isUnpinCall(w.pass, st.Call, w.obj) {
			return true, false
		}
	case *ast.ReturnStmt:
		if !ended {
			w.violated = true
		}
		return ended, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; the pin may still be released
		// on the resumed path, which a one-pass walk cannot see. Treat as a
		// terminator without judgement (conservatively no violation).
		return ended, true
	case *ast.BlockStmt:
		return w.walkList(st.List, ended)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, ended)
	case *ast.IfStmt:
		if w.isErrGuard(st.Cond) {
			// Error path of the producing call: no pin exists there.
			return ended, false
		}
		bEnded, bTerm := w.walkList(st.Body.List, ended)
		if st.Else == nil {
			return ended, false
		}
		eEnded, eTerm := w.walkStmt(st.Else, ended)
		merged := ended || ((bEnded || bTerm) && (eEnded || eTerm))
		return merged, bTerm && eTerm
	case *ast.ForStmt:
		w.walkList(st.Body.List, ended)
		return ended, false
	case *ast.RangeStmt:
		w.walkList(st.Body.List, ended)
		return ended, false
	case *ast.SwitchStmt:
		w.walkCases(st.Body, ended)
		return ended, false
	case *ast.TypeSwitchStmt:
		w.walkCases(st.Body, ended)
		return ended, false
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkList(cc.Body, ended)
			}
		}
		return ended, false
	}
	return ended, false
}

func (w *walker) walkCases(body *ast.BlockStmt, ended bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			w.walkList(cc.Body, ended)
		}
	}
}

// isTerminalCall reports whether e is a call that never returns: panic, or a
// Fatal/Exit-style function.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		return strings.HasPrefix(fn.Sel.Name, "Fatal") ||
			strings.HasPrefix(fn.Sel.Name, "Panic") || fn.Sel.Name == "Exit"
	}
	return false
}
