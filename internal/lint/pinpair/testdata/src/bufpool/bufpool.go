// Package bufpool is a miniature stand-in for the engine's buffer pool: the
// pinpair analyzer recognizes frame values structurally (a named type Frame
// in a package named bufpool), so this double triggers it without importing
// the engine.
package bufpool

type PageID uint32

type Frame struct {
	id   PageID
	pins int
	data []byte
}

type Pool struct{}

func (p *Pool) Fetch(id PageID) *Frame { return &Frame{id: id} }

func (p *Pool) Alloc() (*Frame, error) { return &Frame{}, nil }

func (f *Frame) Pin() []byte {
	f.pins++
	return f.data
}

func (f *Frame) Unpin() { f.pins-- }

func (f *Frame) Bytes() []byte { return f.data }

func (f *Frame) MarkDirty() []byte { return f.data }

func (f *Frame) ID() PageID { return f.id }
