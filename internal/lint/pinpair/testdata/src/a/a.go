// Package a exercises the pinpair analyzer.
package a

import (
	"encoding/binary"
	"errors"

	"ordxml/internal/lint/pinpair/testdata/src/bufpool"
)

func work()                 {}
func use(b []byte)          { _ = b }
func keep(f *bufpool.Frame) {}

func deferred(p *bufpool.Pool) {
	fr := p.Fetch(1)
	defer fr.Unpin()
	use(fr.Bytes())
}

func deferredClosure(p *bufpool.Pool) {
	fr := p.Fetch(1)
	defer func() {
		fr.Unpin()
	}()
	use(fr.Bytes())
}

func straightLine(p *bufpool.Pool) {
	fr := p.Fetch(1)
	use(fr.Bytes())
	fr.Unpin()
}

func allocGuarded(p *bufpool.Pool) error {
	fr, err := p.Alloc()
	if err != nil {
		return err
	}
	use(fr.MarkDirty())
	fr.Unpin()
	return nil
}

func allocIDAfterUnpin(p *bufpool.Pool) (bufpool.PageID, error) {
	fr, err := p.Alloc()
	if err != nil {
		return 0, err
	}
	binary.LittleEndian.PutUint16(fr.MarkDirty(), 7)
	id := fr.ID()
	fr.Unpin()
	return id, nil
}

func earlyReturnLeak(p *bufpool.Pool, fail bool) error {
	fr := p.Fetch(1) // want `frame fr is pinned but not unpinned on all paths`
	if fail {
		return errors.New("bail")
	}
	use(fr.Bytes())
	fr.Unpin()
	return nil
}

func earlyReturnUnpinned(p *bufpool.Pool, fail bool) error {
	fr := p.Fetch(1)
	if fail {
		fr.Unpin()
		return errors.New("bail")
	}
	use(fr.Bytes())
	fr.Unpin()
	return nil
}

func fallthroughLeak(p *bufpool.Pool, ok bool) {
	fr := p.Fetch(1) // want `frame fr is pinned but not unpinned on all paths`
	if ok {
		fr.Unpin()
	}
	work()
}

func allocLeak(p *bufpool.Pool) error {
	fr, err := p.Alloc() // want `frame fr is pinned but not unpinned on all paths`
	if err != nil {
		return err
	}
	use(fr.MarkDirty())
	return nil
}

func dropped(p *bufpool.Pool) {
	p.Fetch(1) // want `pinned frame discarded`
}

func pinReceiverBalanced(fr *bufpool.Frame) {
	b := fr.Pin()
	use(b)
	fr.Unpin()
}

func pinReceiverDeferred(fr *bufpool.Frame) {
	b := fr.Pin()
	defer fr.Unpin()
	use(b)
}

func pinReceiverLeak(fr *bufpool.Frame, fail bool) error {
	b := fr.Pin() // want `frame fr is pinned but not unpinned on all paths`
	if fail {
		return errors.New("bail")
	}
	use(b)
	fr.Unpin()
	return nil
}

func escapesToCallee(p *bufpool.Pool) {
	fr := p.Fetch(1)
	keep(fr) // ownership transferred: the callee unpins
}

func escapesToStruct(p *bufpool.Pool) *holder {
	fr := p.Fetch(1)
	return &holder{fr: fr}
}

type holder struct {
	fr *bufpool.Frame
}

func panicPath(p *bufpool.Pool, bad bool) {
	fr := p.Fetch(1)
	if bad {
		panic("corrupt page")
	}
	use(fr.Bytes())
	fr.Unpin()
}

// Table-style Fetch on a non-frame type must not trigger the analyzer.
type table struct{}

func (t *table) Fetch(id int) []byte { return nil }

func unrelatedFetch(t *table) {
	row := t.Fetch(3)
	use(row)
}
