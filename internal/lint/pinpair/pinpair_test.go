package pinpair_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/pinpair"
)

func TestPinPair(t *testing.T) {
	framework.RunTest(t, pinpair.Analyzer, "testdata/src/a")
}
