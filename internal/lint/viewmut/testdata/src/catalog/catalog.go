// Package catalog is a miniature stand-in for the engine's catalog: the
// viewmut analyzer seeds its frozen set on a type named View in a package
// named catalog, chases it to TableData and the Snapshot publication types,
// and stops at the Table boundary (shared with the writer side).
package catalog

type Table struct {
	Name string
	Rows int
}

type Snapshot struct {
	rows []int
}

type TableData struct {
	t     *Table
	heap  *Snapshot
	trees map[int]int
}

type View struct {
	version uint64
	tables  map[string]*Table
	data    map[*Table]*TableData
}

// BuildView constructs a fresh view: in the builder cone by return type, so
// its writes to View fields are construction, not mutation.
func BuildView(version uint64, ts []*Table) *View {
	v := &View{version: version, tables: map[string]*Table{}, data: map[*Table]*TableData{}}
	for _, t := range ts {
		v.tables[t.Name] = t
		v.data[t] = snapshotData(t)
	}
	return v
}

// snapshotData returns a frozen type: in the cone directly.
func snapshotData(t *Table) *TableData {
	td := &TableData{t: t, trees: map[int]int{}}
	td.heap = newSnapshot(t)
	fill(td)
	return td
}

func newSnapshot(t *Table) *Snapshot {
	s := &Snapshot{}
	s.rows = append(s.rows, t.Rows)
	return s
}

// fill returns nothing frozen but is called only from the cone: the caller
// fixpoint must admit it.
func fill(td *TableData) {
	td.trees[0] = 1
}

// Refresh mutates a published view in place — the contract violation.
func Refresh(v *View, t *Table) {
	v.version++           // want `mutation of published snapshot: write to catalog.View.version outside the view builders`
	v.tables[t.Name] = t  // want `mutation of published snapshot: write to catalog.View.tables outside the view builders`
	v.data[t].heap = nil  // want `mutation of published snapshot: write to catalog.TableData.heap outside the view builders`
}

// evict mutates a published TableData through a method: its only caller is
// Refresh (not in the cone), so the fixpoint must keep it out too.
func (td *TableData) evict() {
	td.trees[1] = 0 // want `mutation of published snapshot: write to catalog.TableData.trees outside the view builders`
}

// Compact drives evict from outside the cone.
func Compact(v *View, t *Table) {
	v.data[t].evict()
}

// Bump writes through the Table boundary: the writer side owns *Table under
// its own lock, so this is not a view mutation.
func Bump(t *Table) {
	t.Rows++
}
