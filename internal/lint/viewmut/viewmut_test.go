package viewmut_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/viewmut"
)

// TestViewMut runs the analyzer over a miniature catalog: builder-cone
// writes (BuildView, snapshotData, newSnapshot, and the fill helper admitted
// by the caller fixpoint) pass; in-place mutation of a published View,
// directly or through a method, is flagged; Table-boundary writes are not.
func TestViewMut(t *testing.T) {
	framework.RunTest(t, viewmut.Analyzer, "testdata/src/catalog")
}
