// Package viewmut implements the published-snapshot immutability analyzer.
// The engine's readers are lock-free because a query runs against a frozen
// catalog.View: once a view is published (stored where readers can load it),
// nothing reachable from it may be mutated — writers build a fresh view and
// swap the pointer. A single post-publication field write silently breaks
// every in-flight reader, so the contract is enforced statically.
//
// The frozen set is computed from the types: starting at catalog.View, field
// types are chased through pointers, slices, arrays and maps; a named struct
// is frozen (and recursed into) when it is declared in the catalog package
// or is named Snapshot (the heap and btree publication types). Table and
// Index stop the chase: a view shares live *Table/*Index pointers with the
// writer side, whose mutations are governed by the engine's write lock, not
// by view immutability. sync and sync/atomic types also stop it.
//
// A write to a frozen struct's field (or into a map/slice held in one) is
// allowed only inside the builder cone — the functions that construct
// snapshots before publication: any function returning a frozen type, plus,
// by fixpoint, any function called exclusively from cone members (the
// build-helper shape, e.g. snapshotData filling a TableData it was handed).
// Everything outside the cone that writes a frozen field is a finding.
//
// The analysis is alias-unaware by design: it tracks syntactic field writes
// through typed bases, not heap shapes. That catches the realistic failure
// mode (a method or helper "fixing up" a view in place) without a points-to
// analysis; copying a frozen pointer into an interface and mutating through
// it would evade the check, but nothing in the engine does.
package viewmut

import (
	"go/ast"
	"go/types"

	"ordxml/internal/lint/framework"
)

// Analyzer is the published-snapshot immutability pass.
var Analyzer = &framework.Analyzer{
	Name:       "viewmut",
	Doc:        "structures reachable from a published catalog.View must not be mutated after construction",
	RunProgram: run,
}

// boundary names stop the reachability chase: these are shared with the
// writer side (or are synchronization primitives) and have their own rules.
var boundaryType = map[string]bool{"Table": true, "Index": true}

func boundaryPkg(path string) bool {
	return path == "sync" || path == "sync/atomic"
}

func run(pass *framework.ProgramPass) error {
	prog := pass.Prog
	frozen := frozenSet(prog)
	if len(frozen) == 0 {
		return nil // no catalog.View in this program
	}
	allowed := builderCone(prog, frozen)
	for _, fn := range prog.Functions() {
		if allowed[fn] {
			continue
		}
		checkWrites(pass, fn, frozen)
	}
	return nil
}

// typeKey identifies a named type across packages by path and name (the
// loader may materialize a package once as a root and once as a dependency,
// so pointer identity on types is not relied upon).
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// frozenSet seeds on every type named View in a package named catalog and
// chases field types, freezing named structs declared in the catalog package
// or named Snapshot, stopping at boundary types and packages.
func frozenSet(prog *framework.Program) map[string]bool {
	frozen := map[string]bool{}
	var work []*types.Named
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil || pkg.Types.Name() != "catalog" {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup("View").(*types.TypeName); ok {
			if named, ok := obj.Type().(*types.Named); ok {
				if frozen[typeKey(named)] {
					continue
				}
				frozen[typeKey(named)] = true
				work = append(work, named)
			}
		}
	}
	for len(work) > 0 {
		named := work[len(work)-1]
		work = work[:len(work)-1]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			for _, cand := range namedIn(st.Field(i).Type()) {
				obj := cand.Obj()
				if obj.Pkg() == nil || boundaryType[obj.Name()] || boundaryPkg(obj.Pkg().Path()) {
					continue
				}
				if obj.Pkg().Name() != "catalog" && obj.Name() != "Snapshot" {
					continue
				}
				if _, isStruct := cand.Underlying().(*types.Struct); !isStruct {
					continue
				}
				if !frozen[typeKey(cand)] {
					frozen[typeKey(cand)] = true
					work = append(work, cand)
				}
			}
		}
	}
	return frozen
}

// namedIn collects the named types a field type leads to, through pointers,
// slices, arrays and both sides of maps.
func namedIn(t types.Type) []*types.Named {
	switch t := t.(type) {
	case *types.Named:
		return []*types.Named{t}
	case *types.Pointer:
		return namedIn(t.Elem())
	case *types.Slice:
		return namedIn(t.Elem())
	case *types.Array:
		return namedIn(t.Elem())
	case *types.Map:
		return append(namedIn(t.Key()), namedIn(t.Elem())...)
	}
	return nil
}

// builderCone returns the functions allowed to write frozen fields: those
// returning a frozen type, closed under "called only from cone members".
func builderCone(prog *framework.Program, frozen map[string]bool) map[*framework.Func]bool {
	allowed := map[*framework.Func]bool{}
	funcs := prog.Functions()
	for _, fn := range funcs {
		sig, ok := fn.Obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if isFrozenType(sig.Results().At(i).Type(), frozen) {
				allowed[fn] = true
				break
			}
		}
	}
	callers := prog.Callers()
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if allowed[fn] || len(callers[fn]) == 0 {
				continue
			}
			all := true
			for _, c := range callers[fn] {
				if !allowed[c] {
					all = false
					break
				}
			}
			if all {
				allowed[fn] = true
				changed = true
			}
		}
	}
	return allowed
}

func isFrozenType(t types.Type, frozen map[string]bool) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && frozen[typeKey(named)]
}

// checkWrites reports every write to a frozen struct's field — plain
// assignment, op-assignment, ++/--, or an index write into a map or slice
// held in a frozen field — inside one non-cone function.
func checkWrites(pass *framework.ProgramPass, fn *framework.Func, frozen map[string]bool) {
	report := func(lhs ast.Expr) {
		named, field := frozenFieldWrite(fn.Pkg.Info, lhs, frozen)
		if named == nil {
			return
		}
		pass.Reportf(lhs.Pos(),
			"mutation of published snapshot: write to %s.%s.%s outside the view builders (View-reachable structures are immutable once published; build a new view instead)",
			named.Obj().Pkg().Name(), named.Obj().Name(), field)
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}

// frozenFieldWrite resolves an assignment target to (frozen struct type,
// field name), peeling index and deref layers, or (nil, "") when the target
// does not write through a frozen struct.
func frozenFieldWrite(info *types.Info, lhs ast.Expr, frozen map[string]bool) (*types.Named, string) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !frozen[typeKey(named)] {
		return nil, ""
	}
	return named, sel.Sel.Name
}
