package framework_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"ordxml/internal/lint/framework"
)

// TestWriteSARIF checks the shape consumers depend on: schema/version, one
// rule per analyzer with the first doc line, one result per finding with a
// root-relative forward-slash URI, and level "warning".
func TestWriteSARIF(t *testing.T) {
	analyzers := []*framework.Analyzer{
		{Name: "lockorder", Doc: "lock order must be acyclic\n\nLonger explanation."},
		{Name: "walfirst", Doc: "WAL before apply"},
	}
	findings := []framework.Finding{{
		Analyzer: "lockorder",
		Posn:     token.Position{Filename: "/repo/internal/wal/wal.go", Line: 360, Column: 9},
		Message:  "lock order cycle",
	}}
	var buf bytes.Buffer
	if err := framework.WriteSARIF(&buf, analyzers, findings, "/repo"); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct{ Text string }
					}
				}
			}
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct {
							StartLine   int
							StartColumn int
						}
					}
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ordlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(run.Tool.Driver.Rules))
	}
	if r := run.Tool.Driver.Rules[0]; r.ID != "lockorder" || r.ShortDescription.Text != "lock order must be acyclic" {
		t.Errorf("rule[0] = %+v: want id lockorder with first doc line only", r)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "lockorder" || res.Level != "warning" || res.Message.Text != "lock order cycle" {
		t.Errorf("result = %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/wal/wal.go" {
		t.Errorf("uri = %q, want root-relative internal/wal/wal.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 360 || loc.Region.StartColumn != 9 {
		t.Errorf("region = %+v", loc.Region)
	}
}
