package framework

import (
	"os"
	"strings"
)

// Finding suppression: a justified annotation silences one analyzer at one
// site. The form is
//
//	//ordlint:ignore <analyzer> <reason...>
//
// either trailing the flagged line or on its own line immediately above it.
// The reason is mandatory — an annotation without one suppresses nothing, so
// lazy or truncated markers surface as ordinary findings instead of silently
// rotting. There is no wildcard: each analyzer to be silenced needs its own
// annotation, which keeps every suppression attributable to one contract and
// one justification.

const ignoreMarker = "//ordlint:ignore"

// FilterSuppressed drops findings covered by an //ordlint:ignore annotation
// naming their analyzer. Files that cannot be read (e.g. findings synthesized
// by tests against virtual positions) pass through unfiltered.
func FilterSuppressed(findings []Finding) []Finding {
	if len(findings) == 0 {
		return findings
	}
	cache := map[string]map[int]map[string]bool{}
	out := make([]Finding, 0, len(findings))
	for _, f := range findings {
		lines, ok := cache[f.Posn.Filename]
		if !ok {
			lines = suppressedLines(f.Posn.Filename)
			cache[f.Posn.Filename] = lines
		}
		if lines[f.Posn.Line][f.Analyzer] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// suppressedLines parses one file's //ordlint:ignore annotations into a map
// from 1-based line number to the analyzer names suppressed on that line.
func suppressedLines(filename string) map[int]map[string]bool {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil
	}
	out := map[int]map[string]bool{}
	for i, line := range strings.Split(string(src), "\n") {
		_, after, ok := strings.Cut(line, ignoreMarker)
		if !ok {
			continue
		}
		fields := strings.Fields(after)
		if len(fields) < 2 {
			continue // no analyzer name, or no reason: not a valid suppression
		}
		name := fields[0]
		mark := func(n int) {
			if out[n] == nil {
				out[n] = map[string]bool{}
			}
			out[n][name] = true
		}
		mark(i + 1) // trailing annotation covers its own line
		if strings.HasPrefix(strings.TrimSpace(line), "//") {
			mark(i + 2) // whole-line annotation covers the next line
		}
	}
	return out
}
