package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file adds the interprocedural substrate: a call graph over every
// function declared in the analyzed packages, resolved from the type-checker's
// results. Program-level analyzers (Analyzer.RunProgram) receive it through
// ProgramPass and derive whole-repo facts — lock acquisition orders, WAL-append
// reachability, snapshot-construction cones — from function summaries computed
// over it (see summary.go).
//
// Resolution is static: direct calls, method calls (including promoted methods
// through embedding) and package-qualified calls resolve to one callee;
// interface method calls fan out to every program method that implements the
// interface; calls through plain function values (fields, parameters, locals)
// resolve to nothing. Calls written inside a function literal are attributed
// to the enclosing declared function — the literal usually runs on behalf of
// its definer (immediately, deferred, or as a registered callback), and
// attributing its calls there keeps reachability conservative without
// modeling closure values.

// Program is the whole analyzed unit: the loaded root packages linked by one
// call graph.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	// Funcs indexes every declared function or method that has a body, by its
	// type-checker object (generic instantiations are folded into their
	// origin).
	Funcs map[*types.Func]*Func

	// funcs holds the same functions in deterministic (package, source)
	// order, the iteration order for every derived computation.
	funcs []*Func

	callers map[*Func][]*Func
}

// Func is one declared function or method with a body, plus its resolved
// call sites in source order.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every statically resolvable call in the body, including
	// calls inside function literals (attributed here), in source order.
	Calls []*CallSite
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the static callee object — possibly a function outside the
	// program (standard library, dependency) or an interface method.
	Callee *types.Func
	// Targets are the program functions the call may dispatch to: one for a
	// static call whose body is in the program, several for an interface
	// method call, none for calls leaving the program.
	Targets []*Func
}

// Name renders the function as package.Name or package.Recv.Name for
// diagnostics.
func (f *Func) Name() string {
	obj := f.Obj
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// BuildProgram links packages into a Program: it indexes every declared
// function with a body and resolves each call site to its static callee and
// the program functions it can dispatch to.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, Funcs: map[*types.Func]*Func{}}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				p.Funcs[obj] = fn
				p.funcs = append(p.funcs, fn)
			}
		}
	}
	for _, fn := range p.funcs {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			fn.Calls = append(fn.Calls, &CallSite{
				Call:    call,
				Callee:  callee,
				Targets: p.resolveTargets(callee),
			})
			return true
		})
	}
	return p
}

// Functions returns every program function in deterministic source order.
func (p *Program) Functions() []*Func { return p.funcs }

// StaticCallee resolves a call expression to its callee object: a declared
// function, a method (through any embedding depth), or an interface method.
// It returns nil for dynamic calls through function values, conversions, and
// builtins. Generic instantiations resolve to their origin.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.Origin()
			}
			return nil // field access producing a func value: dynamic
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.Origin()
		}
	}
	return nil
}

// resolveTargets maps a static callee to the program functions the call may
// execute: the callee's own body when it is in the program, or — for an
// interface method — every program method of the same name whose receiver
// implements the interface.
func (p *Program) resolveTargets(callee *types.Func) []*Func {
	sig, ok := callee.Type().(*types.Signature)
	if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		var out []*Func
		for _, fn := range p.funcs {
			msig, ok := fn.Obj.Type().(*types.Signature)
			if !ok || msig.Recv() == nil || fn.Obj.Name() != callee.Name() {
				continue
			}
			recv := msig.Recv().Type()
			if types.Implements(recv, iface) {
				out = append(out, fn)
				continue
			}
			if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), iface) {
				out = append(out, fn)
			}
		}
		return out
	}
	if fn := p.Funcs[callee]; fn != nil {
		return []*Func{fn}
	}
	return nil
}

// Callers returns the reverse call graph: for every program function, the
// functions holding a call site that may dispatch to it. The map is computed
// once and cached.
func (p *Program) Callers() map[*Func][]*Func {
	if p.callers != nil {
		return p.callers
	}
	callers := map[*Func][]*Func{}
	for _, fn := range p.funcs {
		seen := map[*Func]bool{}
		for _, cs := range fn.Calls {
			for _, t := range cs.Targets {
				if !seen[t] {
					seen[t] = true
					callers[t] = append(callers[t], fn)
				}
			}
		}
	}
	p.callers = callers
	return callers
}
