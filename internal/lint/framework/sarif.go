package framework

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output: the static-analysis interchange format CI code-scanning
// surfaces ingest. One run, one driver (ordlint), one reportingDescriptor per
// analyzer, one result per finding. Only the fields those consumers read are
// emitted; the structs mirror the spec's names.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Rules are emitted for
// every registered analyzer (sorted by the caller) so a clean run still
// documents what was checked. File URIs are made relative to root (with
// forward slashes) when possible, keeping the log portable across checkouts.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Posn.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Posn.Line, StartColumn: f.Posn.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ordlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
