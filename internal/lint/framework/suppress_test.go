package framework_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ordxml/internal/lint/framework"
)

// TestFilterSuppressed covers the //ordlint:ignore grammar: a trailing
// annotation silences its own line, a whole-line annotation the next line,
// only the named analyzer is silenced, and an annotation without a reason
// suppresses nothing.
func TestFilterSuppressed(t *testing.T) {
	src := strings.Join([]string{
		"package p",
		"var a = 1 //ordlint:ignore rawsql trailing annotation with a reason",
		"//ordlint:ignore wraperr whole-line annotation with a reason",
		"var b = 2",
		"var c = 3 //ordlint:ignore rawsql",
		"var d = 4",
	}, "\n")
	file := filepath.Join(t.TempDir(), "p.go")
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}

	mk := func(analyzer string, line int) framework.Finding {
		return framework.Finding{
			Analyzer: analyzer,
			Posn:     token.Position{Filename: file, Line: line},
			Message:  "m",
		}
	}
	in := []framework.Finding{
		mk("rawsql", 2),  // suppressed: trailing annotation
		mk("wraperr", 2), // kept: annotation names a different analyzer
		mk("wraperr", 4), // suppressed: whole-line annotation above
		mk("rawsql", 4),  // kept: annotation names a different analyzer
		mk("rawsql", 5),  // kept: no reason given, annotation is void
		mk("rawsql", 6),  // kept: line 5's trailing annotation covers line 5 only
	}
	out := framework.FilterSuppressed(in)
	var kept []string
	for _, f := range out {
		kept = append(kept, f.Analyzer+":"+strconv.Itoa(f.Posn.Line))
	}
	want := []string{"wraperr:2", "rawsql:4", "rawsql:5", "rawsql:6"}
	if strings.Join(kept, " ") != strings.Join(want, " ") {
		t.Errorf("kept %v, want %v", kept, want)
	}
}

// TestFilterSuppressedUnreadableFile keeps findings whose file cannot be
// read (e.g. synthesized positions) rather than dropping them.
func TestFilterSuppressedUnreadableFile(t *testing.T) {
	in := []framework.Finding{{
		Analyzer: "rawsql",
		Posn:     token.Position{Filename: "/nonexistent/x.go", Line: 3},
	}}
	if out := framework.FilterSuppressed(in); len(out) != 1 {
		t.Errorf("findings in unreadable files must pass through, got %d", len(out))
	}
}
