// Package framework is a self-contained substrate for writing static
// analyzers against the standard library's go/ast and go/types, mirroring
// the golang.org/x/tools/go/analysis API surface (Analyzer, Pass, Diagnostic,
// an analysistest-style test runner) without the external dependency.
//
// The mirror is deliberate: each analyzer in internal/lint/... is written
// exactly as it would be against x/tools — a Name, a Doc string and a
// Run(*Pass) function reporting position-anchored diagnostics — so the suite
// can be lifted onto the real multichecker/unitchecker unchanged if the
// dependency ever becomes available. Until then, cmd/ordlint drives these
// analyzers with the loader in this package (go list -deps -json plus a
// go/types source type-checker), which resolves the whole dependency closure,
// standard library included, from source.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static analysis: a named pass over a type-checked
// package, or — when RunProgram is set — over the whole loaded program at
// once. The per-package shape matches golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By convention a
	// short lower-case word ("rawsql", "wraperr").
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analysis to one package. Optional when RunProgram is
	// set.
	Run func(*Pass) error
	// RunProgram applies the analysis once to the whole set of loaded
	// packages, linked by a call graph — the hook for interprocedural
	// contract analyzers (lockorder, walfirst, viewmut, atomicmix). Optional.
	RunProgram func(*ProgramPass) error
}

// Pass provides one analyzed package to an Analyzer's Run function: its
// syntax trees, type information and a Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (non-test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files. Type-check errors
	// degrade the maps (missing entries) rather than aborting the pass;
	// analyzers must tolerate nil lookups.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown (for example
// inside code that failed to type-check).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// ProgramPass provides the whole analyzed program to an Analyzer's
// RunProgram function: every loaded package plus the call graph linking them.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a rendered diagnostic: the analyzer that produced it plus its
// resolved position.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Posn, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package — and every
// program-level analyzer once to the linked program — and returns the
// findings, filtered through //ordlint:ignore suppressions and sorted by
// position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		name := a.Name
		pp := &ProgramPass{
			Analyzer: a,
			Prog:     prog,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: name,
					Posn:     prog.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.RunProgram(pp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Posn:     pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	findings = FilterSuppressed(findings)
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, then analyzer.
func SortFindings(fs []Finding) {
	sortSlice(fs, func(a, b Finding) bool {
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

func sortSlice[T any](s []T, less func(a, b T) bool) {
	// Insertion sort: finding lists are short and this avoids importing sort
	// with interface shims.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
