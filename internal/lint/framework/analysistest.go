package framework

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted or backquoted expectation patterns from a
// `// want "..."` comment, x/tools analysistest style.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// RunTest loads the package rooted at dir (conventionally
// testdata/src/<name> relative to the analyzer's test file), runs the
// analyzer over it, and compares the diagnostics against `// want "regexp"`
// comments: every diagnostic must match a want pattern on its source line,
// and every want pattern must be matched by a diagnostic.
func RunTest(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolve %s: %v", dir, err)
	}
	pkgs, err := Load(abs, abs)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	findings, err := RunAnalyzers(pkgs, []*Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s: %v", analyzer.Name, err)
	}

	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[key][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				_, after, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				k := key{name, i + 1}
				for _, m := range wantRe.FindAllStringSubmatch(after, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					} else {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Posn.Filename, f.Posn.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

// ExpectFindings is a convenience for driver-level tests: it asserts the
// findings, rendered, contain each substring.
func ExpectFindings(t *testing.T, findings []Finding, substrings ...string) {
	t.Helper()
	rendered := make([]string, len(findings))
	for i, f := range findings {
		rendered[i] = f.String()
	}
	all := strings.Join(rendered, "\n")
	for _, s := range substrings {
		if !strings.Contains(all, s) {
			t.Errorf("findings missing %q in:\n%s", s, all)
		}
	}
}
