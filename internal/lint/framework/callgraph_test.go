package framework_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"ordxml/internal/lint/framework"
)

// loadProgram builds the Program over the synthetic callgraph fixture.
func loadProgram(t *testing.T) *framework.Program {
	t.Helper()
	abs, err := filepath.Abs("testdata/src/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := framework.Load(abs, abs)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return framework.BuildProgram(pkgs)
}

// funcNamed finds a program function by its rendered name.
func funcNamed(t *testing.T, prog *framework.Program, name string) *framework.Func {
	t.Helper()
	for _, fn := range prog.Functions() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not in program", name)
	return nil
}

// targetNames renders the resolved targets of every call site of fn.
func targetNames(fn *framework.Func) map[string]bool {
	out := map[string]bool{}
	for _, cs := range fn.Calls {
		for _, tgt := range cs.Targets {
			out[tgt.Name()] = true
		}
	}
	return out
}

func TestBuildProgramResolution(t *testing.T) {
	prog := loadProgram(t)

	// Every declared function is indexed.
	for _, name := range []string{
		"callgraph.Twice", "callgraph.Direct", "callgraph.helper", "callgraph.leaf",
		"callgraph.UsesClosure", "callgraph.CallsGeneric", "callgraph.Generic",
		"callgraph.Dog.Speak", "callgraph.Cat.Speak",
	} {
		funcNamed(t, prog, name)
	}

	// Static chain: Direct resolves to helper, helper to leaf.
	if tn := targetNames(funcNamed(t, prog, "callgraph.Direct")); !tn["callgraph.helper"] {
		t.Errorf("Direct targets = %v, want callgraph.helper", tn)
	}
	if tn := targetNames(funcNamed(t, prog, "callgraph.helper")); !tn["callgraph.leaf"] {
		t.Errorf("helper targets = %v, want callgraph.leaf", tn)
	}

	// Interface dispatch fans out to both implementations (value and
	// pointer receiver).
	tn := targetNames(funcNamed(t, prog, "callgraph.Twice"))
	if !tn["callgraph.Dog.Speak"] || !tn["callgraph.Cat.Speak"] {
		t.Errorf("Twice targets = %v, want both Speak implementations", tn)
	}

	// A call inside a function literal is attributed to the enclosing
	// declared function.
	if tn := targetNames(funcNamed(t, prog, "callgraph.UsesClosure")); !tn["callgraph.leaf"] {
		t.Errorf("UsesClosure targets = %v, want callgraph.leaf (closure call attributed)", tn)
	}

	// A generic instantiation resolves to its origin.
	if tn := targetNames(funcNamed(t, prog, "callgraph.CallsGeneric")); !tn["callgraph.Generic"] {
		t.Errorf("CallsGeneric targets = %v, want callgraph.Generic", tn)
	}
}

func TestCallers(t *testing.T) {
	prog := loadProgram(t)
	callers := prog.Callers()
	got := map[string]bool{}
	for _, c := range callers[funcNamed(t, prog, "callgraph.leaf")] {
		got[c.Name()] = true
	}
	if !got["callgraph.helper"] || !got["callgraph.UsesClosure"] {
		t.Errorf("callers(leaf) = %v, want helper and UsesClosure", got)
	}
	if got["callgraph.Direct"] {
		t.Errorf("callers(leaf) includes Direct, which only reaches it transitively")
	}
}

func TestReaches(t *testing.T) {
	prog := loadProgram(t)
	leaf := funcNamed(t, prog, "callgraph.leaf")
	reached := prog.Reaches(func(f *types.Func) bool { return f == leaf.Obj })

	want := map[string]bool{
		"callgraph.helper": true, "callgraph.Direct": true, "callgraph.UsesClosure": true,
	}
	for name := range want {
		if !reached[funcNamed(t, prog, name)] {
			t.Errorf("%s should reach leaf", name)
		}
	}
	if reached[funcNamed(t, prog, "callgraph.Twice")] {
		t.Errorf("Twice should not reach leaf")
	}

	// Call-site reachability: Direct's call to helper reaches leaf one hop
	// down; Twice's dispatch does not.
	dcall := funcNamed(t, prog, "callgraph.Direct").Calls[0]
	if !dcall.Reaches(func(f *types.Func) bool { return f == leaf.Obj }, reached) {
		t.Errorf("Direct's call site should reach leaf through helper")
	}
}

func TestUnionSummaries(t *testing.T) {
	prog := loadProgram(t)
	// Seed one fact on leaf and one on Dog.Speak; the fixpoint must carry
	// leaf's fact up the whole chain and Speak's through the dispatch.
	sums := prog.UnionSummaries(func(fn *framework.Func) []string {
		switch fn.Name() {
		case "callgraph.leaf":
			return []string{"leaf-fact"}
		case "callgraph.Dog.Speak":
			return []string{"dog-fact"}
		}
		return nil
	})
	for _, name := range []string{"callgraph.helper", "callgraph.Direct", "callgraph.UsesClosure"} {
		if !sums[funcNamed(t, prog, name)]["leaf-fact"] {
			t.Errorf("summary of %s missing leaf-fact", name)
		}
	}
	if !sums[funcNamed(t, prog, "callgraph.Twice")]["dog-fact"] {
		t.Errorf("summary of Twice missing dog-fact (interface dispatch)")
	}
	if sums[funcNamed(t, prog, "callgraph.Twice")]["leaf-fact"] {
		t.Errorf("summary of Twice has leaf-fact, but Twice never reaches leaf")
	}
}
