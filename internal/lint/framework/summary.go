package framework

import "go/types"

// Function-summary dataflow over the call graph: whole-program facts computed
// as fixpoints so they stay correct through helper indirection and recursion.
// Two shapes cover the contract analyzers:
//
//   - Reaches: "can this function end up calling X?" — the reachability
//     summary behind WAL-append and state-apply classification (walfirst).
//   - UnionSummaries: "which facts accumulate over everything this function
//     may execute?" — the transitive lock-acquisition sets behind the lock
//     order graph (lockorder).
//
// Both evaluate predicates on static callees, so anchors may live outside the
// analyzed program (standard library, another module package not in the load).

// Reaches returns the set of program functions that can reach — directly or
// through any chain of program calls, interface dispatch included — a callee
// matching match.
func (p *Program) Reaches(match func(*types.Func) bool) map[*Func]bool {
	reached := map[*Func]bool{}
	var work []*Func
	for _, fn := range p.funcs {
		for _, cs := range fn.Calls {
			if match(cs.Callee) {
				reached[fn] = true
				work = append(work, fn)
				break
			}
		}
	}
	callers := p.Callers()
	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range callers[g] {
			if !reached[c] {
				reached[c] = true
				work = append(work, c)
			}
		}
	}
	return reached
}

// Reaches reports whether this call site can execute a matching callee: its
// static callee matches directly, or one of its resolved program targets is
// in reached (a map previously computed by Program.Reaches with the same
// predicate).
func (cs *CallSite) Reaches(match func(*types.Func) bool, reached map[*Func]bool) bool {
	if match(cs.Callee) {
		return true
	}
	for _, t := range cs.Targets {
		if reached[t] {
			return true
		}
	}
	return false
}

// UnionSummaries computes the bottom-up union fixpoint over the call graph:
//
//	S(f) = direct(f) ∪ ⋃ { S(g) : f may call g }
//
// Recursive cycles converge because the lattice is finite sets under union.
// The result maps every program function to its accumulated fact set.
func (p *Program) UnionSummaries(direct func(*Func) []string) map[*Func]map[string]bool {
	sum := make(map[*Func]map[string]bool, len(p.funcs))
	for _, fn := range p.funcs {
		s := map[string]bool{}
		for _, k := range direct(fn) {
			s[k] = true
		}
		sum[fn] = s
	}
	callers := p.Callers()
	work := append([]*Func(nil), p.funcs...)
	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range callers[g] {
			grew := false
			for k := range sum[g] {
				if !sum[c][k] {
					sum[c][k] = true
					grew = true
				}
			}
			if grew {
				work = append(work, c)
			}
		}
	}
	return sum
}
