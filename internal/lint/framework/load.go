package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints. Analyzers still run over
	// packages with errors (with degraded type information).
	TypeErrors []error
}

// listedPackage mirrors the fields of `go list -json` output this loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (import paths, ./... wildcards, or directories) with
// the go tool, parses every package in the dependency closure, and
// type-checks them in dependency order — the standard library included, from
// source, so no compiled export data or external loader library is needed.
// It returns only the packages matching the patterns (the "roots"); their
// dependencies are type-checked but not analyzed.
//
// dir is the working directory for the go tool (any directory inside the
// target module). The loader pins CGO_ENABLED=0 so the file sets it
// type-checks are the pure-Go ones, and GOPROXY=off since the closure is
// module-local plus the standard library.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no packages to load")
	}
	roots, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}

	rootSet := make(map[string]bool, len(roots))
	for _, p := range roots {
		rootSet[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	typed := make(map[string]*types.Package, len(deps))
	loaded := make(map[string]*Package, len(deps))
	sizes := types.SizesFor("gc", runtime.GOARCH)

	// go list -deps emits dependencies before dependents, so a single forward
	// pass type-checks every import before its importers.
	for _, lp := range deps {
		if lp.ImportPath == "unsafe" {
			typed["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Fset:       fset,
		}
		for _, f := range lp.GoFiles {
			path := filepath.Join(lp.Dir, f)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", path, err)
			}
			pkg.Files = append(pkg.Files, file)
		}
		pkg.Info = newInfo()
		conf := types.Config{
			Importer:    &mapImporter{typed: typed, importMap: lp.ImportMap},
			Sizes:       sizes,
			FakeImportC: true,
			Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		pkg.Types = tpkg
		typed[lp.ImportPath] = tpkg
		loaded[lp.ImportPath] = pkg
	}

	out := make([]*Package, 0, len(roots))
	for _, lp := range roots {
		if p := loaded[lp.ImportPath]; p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// mapImporter resolves imports against the already-type-checked closure,
// honouring the per-package ImportMap (vendored standard-library paths).
type mapImporter struct {
	typed     map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	if p, ok := m.typed[path]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not in load closure", path)
}

// goList shells out to `go list -e -json`, optionally with -deps, and
// decodes the JSON stream.
func goList(dir string, patterns []string, deps bool) ([]*listedPackage, error) {
	args := []string{"list", "-e", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOPROXY=off", "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
