// Package callgraph is the synthetic fixture for the framework's call-graph
// and summary-dataflow tests: a small package whose resolution results —
// direct calls, a two-deep helper chain, interface dispatch with two
// implementations, a closure, and a generic instantiation — are asserted
// exactly by the tests.
package callgraph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (c *Cat) Speak() string { return "meow" }

// Twice dispatches through the interface: its Speak call must fan out to
// both implementations.
func Twice(s Speaker) string { return s.Speak() + s.Speak() }

// Direct → helper → leaf is the static chain for reachability fixpoints.
func Direct() string { return helper() }

func helper() string { return leaf() }

func leaf() string { return "leaf" }

// UsesClosure calls leaf from inside a function literal; the call is
// attributed to UsesClosure.
func UsesClosure() string {
	f := func() string { return leaf() }
	return f()
}

// Generic's instantiation must resolve to its origin object.
func Generic[T any](v T) T { return v }

func CallsGeneric() int { return Generic(1) }
