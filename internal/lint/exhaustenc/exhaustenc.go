// Package exhaustenc implements the exhaustive-encoding analyzer: every
// switch or if-chain dispatching on an order-encoding kind must handle all
// three encodings of the paper — Global, Local and Dewey — explicitly, or
// carry a default that fails loudly.
//
// The motivating bug class: the engine's original dispatch sites spelled
// Dewey as the `default:` arm. That compiles, but it silently routes any
// future (or corrupt) kind value through the Dewey code path instead of
// failing — and a wrong order encoding corrupts document order without
// crashing. The analyzer recognizes "order-encoding enum" types
// structurally: any defined integer type whose package also declares
// constants named Global, Local and Dewey of that exact type (this matches
// both encoding.Kind and the public ordxml.Encoding, as well as test
// doubles).
package exhaustenc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ordxml/internal/lint/framework"
)

// Analyzer is the exhaustive-encoding pass.
var Analyzer = &framework.Analyzer{
	Name: "exhaustenc",
	Doc: "dispatch on an order-encoding kind must cover Global, Local and Dewey " +
		"or have a default that panics or returns an error",
	Run: run,
}

// kindNames are the constant names that identify an order-encoding enum.
var kindNames = [...]string{"Global", "Local", "Dewey"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, stmt)
			case *ast.IfStmt:
				checkIfChain(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// encodingConsts returns the Global/Local/Dewey constant objects when t is a
// defined integer type whose package declares all three with type t, else nil.
func encodingConsts(t types.Type) map[string]*types.Const {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil // universe types
	}
	out := make(map[string]*types.Const, len(kindNames))
	for _, name := range kindNames {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			return nil
		}
		out[name] = c
	}
	return out
}

// checkSwitch enforces exhaustiveness on a tagged switch over an
// order-encoding enum.
func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := pass.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	consts := encodingConsts(tagType)
	if consts == nil {
		return
	}
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			markCovered(pass, e, consts, covered)
		}
	}
	missing := missingNames(covered)
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && failsLoudly(defaultClause.Body) {
		return
	}
	if defaultClause != nil {
		pass.Reportf(sw.Switch,
			"switch on %s does not handle %s explicitly and its default does not fail: "+
				"add the missing case(s) or make the default panic or return an error",
			types.TypeString(tagType, relativeTo(pass.Pkg)), strings.Join(missing, ", "))
		return
	}
	pass.Reportf(sw.Switch,
		"switch on %s does not handle %s: add the missing case(s) or a default that fails",
		types.TypeString(tagType, relativeTo(pass.Pkg)), strings.Join(missing, ", "))
}

// checkIfChain enforces exhaustiveness on if/else-if chains comparing one
// expression against two or more of the encoding constants. A chain that
// tests a single constant (a special-case branch, not a dispatch) is left
// alone.
func checkIfChain(pass *framework.Pass, ifStmt *ast.IfStmt) {
	// Only consider the head of a chain: an IfStmt that is the Else of
	// another IfStmt was already checked as part of its head.
	if isElseBranch(pass, ifStmt) {
		return
	}
	covered := map[string]bool{}
	var tagType types.Type
	var tagRepr string
	hasFinalElse := false
	var finalElse *ast.BlockStmt
	for cur := ifStmt; cur != nil; {
		name, t, repr := encodingEquality(pass, cur.Cond)
		if name == "" {
			return // a non-dispatch condition breaks the chain pattern
		}
		if tagType == nil {
			tagType, tagRepr = t, repr
		} else if repr != tagRepr {
			return // comparing different expressions; not one dispatch
		}
		covered[name] = true
		switch e := cur.Else.(type) {
		case *ast.IfStmt:
			cur = e
		case *ast.BlockStmt:
			hasFinalElse, finalElse = true, e
			cur = nil
		default:
			cur = nil
		}
	}
	if len(covered) < 2 {
		return
	}
	missing := missingNames(covered)
	if len(missing) == 0 {
		return
	}
	if hasFinalElse && failsLoudly(finalElse.List) {
		return
	}
	if hasFinalElse {
		pass.Reportf(ifStmt.If,
			"if-chain on %s does not handle %s explicitly and its else does not fail",
			types.TypeString(tagType, relativeTo(pass.Pkg)), strings.Join(missing, ", "))
		return
	}
	pass.Reportf(ifStmt.If,
		"if-chain on %s does not handle %s and has no else",
		types.TypeString(tagType, relativeTo(pass.Pkg)), strings.Join(missing, ", "))
}

// isElseBranch reports whether stmt appears as the Else of some IfStmt in
// the same file.
func isElseBranch(pass *framework.Pass, stmt *ast.IfStmt) bool {
	for _, f := range pass.Files {
		if f.Pos() <= stmt.Pos() && stmt.Pos() < f.End() {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				if p, ok := n.(*ast.IfStmt); ok && p.Else == stmt {
					found = true
					return false
				}
				return true
			})
			return found
		}
	}
	return false
}

// encodingEquality matches `x == Const` (either order) where Const is one of
// the encoding constants; it returns the constant name, the enum type, and a
// canonical rendering of x.
func encodingEquality(pass *framework.Pass, cond ast.Expr) (string, types.Type, string) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return "", nil, ""
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		tag, c := pair[0], pair[1]
		t := pass.TypeOf(c)
		if t == nil {
			continue
		}
		consts := encodingConsts(t)
		if consts == nil {
			continue
		}
		if name := constName(pass, c, consts); name != "" {
			return name, t, types.ExprString(tag)
		}
	}
	return "", nil, ""
}

// markCovered records which encoding constant a case expression denotes.
func markCovered(pass *framework.Pass, e ast.Expr, consts map[string]*types.Const, covered map[string]bool) {
	if name := constName(pass, e, consts); name != "" {
		covered[name] = true
	}
}

// constName resolves e to one of the encoding constants by value, returning
// its canonical name ("" when e is not one of them).
func constName(pass *framework.Pass, e ast.Expr, consts map[string]*types.Const) string {
	if pass.TypesInfo == nil {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return ""
	}
	for name, c := range consts {
		if constant.Compare(tv.Value, token.EQL, c.Val()) {
			return name
		}
	}
	return ""
}

// failsLoudly reports whether a default/else body fails the unknown case:
// it panics, returns or assigns a freshly constructed error, or calls a
// fatal/unreachable helper.
func failsLoudly(body []ast.Stmt) bool {
	found := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "panic" || strings.Contains(fn.Name, "unreachable") {
					found = true
				}
			case *ast.SelectorExpr:
				name := fn.Sel.Name
				if name == "Errorf" || name == "New" && isErrorsPkg(fn.X) ||
					strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isErrorsPkg(x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == "errors"
}

func missingNames(covered map[string]bool) []string {
	var missing []string
	for _, n := range kindNames {
		if !covered[n] {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	return missing
}

func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}
