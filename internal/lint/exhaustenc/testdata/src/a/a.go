// Package a exercises the exhaustenc analyzer. The Kind enum here mirrors
// the engine's order-encoding kind structurally: a defined integer type with
// package-level constants Global, Local and Dewey.
package a

import (
	"errors"
	"fmt"
)

type Kind int

const (
	Global Kind = iota
	Local
	Dewey
)

// Other is an integer enum without the three encoding constants; dispatch on
// it is none of the analyzer's business.
type Other int

const (
	A Other = iota
	B
)

func covered(k Kind) string {
	switch k {
	case Global:
		return "g"
	case Local:
		return "l"
	case Dewey:
		return "d"
	}
	return ""
}

func missingNoDefault(k Kind) string {
	switch k { // want `switch on Kind does not handle Dewey`
	case Global:
		return "g"
	case Local:
		return "l"
	}
	return ""
}

func missingSilentDefault(k Kind) string {
	switch k { // want `switch on Kind does not handle Dewey explicitly and its default does not fail`
	case Global:
		return "g"
	case Local:
		return "l"
	default:
		return "d" // silently treats every other kind as Dewey
	}
}

func missingLoudDefault(k Kind) string {
	switch k {
	case Global:
		return "g"
	case Local:
		return "l"
	default:
		panic(fmt.Sprintf("unknown encoding kind %d", k))
	}
}

func missingErroringDefault(k Kind) (string, error) {
	switch k {
	case Global:
		return "g", nil
	case Dewey:
		return "d", nil
	default:
		return "", errors.New("unknown encoding kind")
	}
}

func chainSilentElse(k Kind) string {
	if k == Global { // want `if-chain on Kind does not handle Dewey explicitly and its else does not fail`
		return "g"
	} else if k == Local {
		return "l"
	} else {
		return "d"
	}
}

func chainNoElse(k Kind) string {
	out := ""
	if k == Global { // want `if-chain on Kind does not handle Dewey and has no else`
		out = "g"
	} else if k == Local {
		out = "l"
	}
	return out
}

func chainLoudElse(k Kind) string {
	if k == Global {
		return "g"
	} else if k == Local {
		return "l"
	} else {
		panic("unknown encoding kind")
	}
}

// specialCase tests a single constant; that is a branch, not a dispatch.
func specialCase(k Kind) bool {
	if k == Dewey {
		return true
	}
	return false
}

// otherEnum dispatches on an unrelated enum; not flagged.
func otherEnum(o Other) string {
	switch o {
	case A:
		return "a"
	}
	return ""
}
