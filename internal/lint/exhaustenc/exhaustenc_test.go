package exhaustenc_test

import (
	"testing"

	"ordxml/internal/lint/exhaustenc"
	"ordxml/internal/lint/framework"
)

func TestExhaustEnc(t *testing.T) {
	framework.RunTest(t, exhaustenc.Analyzer, "testdata/src/a")
}
